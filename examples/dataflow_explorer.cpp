/// \file dataflow_explorer.cpp
/// Command-line dataflow workbench over the whole library:
///
///   dataflow_explorer --op M K L [options]
///
/// options:
///   --buffer SIZE     on-chip buffer (bytes; accepts 512KB / 8MB), default 512KB
///   --elem BYTES      bytes per element, default 2 (bf16)
///   --arch NAME       constrain to a platform space: tpu|gemmini|planaria|unfcu|fusecu
///   --fuse N          treat the op as a chain A x B = C, C x D(L,N) = E and
///                     optimize the fused pair
///   --two-level N     also optimize the buffer <-> register level for an
///                     N x N PE array
///   --validate        cross-check the principles against exhaustive, GA and
///                     SA search
///   --seed N          RNG seed for the stochastic searches (default 0x5eed),
///                     decimal or 0x-hex; fixed seed = reproducible runs
///   --trace FILE      write a chrome-tracing JSON of the double-buffered
///                     execution timeline of the optimized schedule
///
/// Examples:
///   dataflow_explorer --op 1024 768 768 --buffer 1MB --validate
///   dataflow_explorer --op 4096 128 4096 --fuse 128
///   dataflow_explorer --op 16384 768 768 --arch tpu

#include <cstdio>

#include <fstream>

#include "arch/dataflow_space.hpp"
#include "common/cli.hpp"
#include "common/units.hpp"
#include "fusion/fusion_principles.hpp"
#include "principles/two_level.hpp"
#include "search/annealing.hpp"
#include "search/exhaustive.hpp"
#include "search/genetic.hpp"
#include "sim/timeline.hpp"
#include "obs/obs_session.hpp"

using namespace fusecu;

namespace {

int run(int argc, char** argv) {
  ArgParser args({"--validate"}, {"--op", "--buffer", "--elem", "--arch", "--fuse", "--two-level",
                                  "--trace", "--seed"});
  args.parse(argc, argv);

  // --op consumes one value via the parser plus two positionals.
  auto op_first = args.option("--op");
  if (!op_first || args.positional().size() != 2) {
    std::fprintf(stderr, "usage: dataflow_explorer --op M K L [--buffer SIZE] [--arch NAME]\n"
                         "                         [--fuse N] [--two-level N] [--validate]\n");
    return 1;
  }
  const Index m = std::atoll(op_first->c_str());
  const Index k = std::atoll(args.positional()[0].c_str());
  const Index l = std::atoll(args.positional()[1].c_str());
  const std::int64_t buffer_bytes = args.option_bytes("--buffer", 512 * kKiB);
  const Index elem = args.option_int("--elem", 2);
  const BufferSize bs = buffer_bytes / elem;

  TensorOp op = TensorOp::matmul("cli", m, k, l);
  std::printf("operator: %s\n", op.to_string().c_str());
  std::printf("buffer: %s = %lld elements (%lld B/element)\n\n",
              format_bytes(buffer_bytes).c_str(), static_cast<long long>(bs),
              static_cast<long long>(elem));

  if (auto arch_name = args.option("--arch")) {
    ArchSpec arch = make_fusecu(buffer_bytes);
    if (*arch_name == "tpu") {
      arch = make_tpu_v4i(buffer_bytes);
    } else if (*arch_name == "gemmini") {
      arch = make_gemmini(buffer_bytes);
    } else if (*arch_name == "planaria") {
      arch = make_planaria(buffer_bytes);
    } else if (*arch_name == "unfcu") {
      arch = make_unfcu(buffer_bytes);
    } else if (*arch_name != "fusecu") {
      std::fprintf(stderr, "unknown --arch %s\n", arch_name->c_str());
      return 1;
    }
    ArchIntraOpt r = optimize_intra_for_arch(op, arch);
    std::printf("[%s space] %s\n", arch.name.c_str(), r.rule.c_str());
    std::printf("  dataflow: %s\n", r.dataflow.to_string(op).c_str());
    std::printf("  memory access: %s (ideal bound %s)\n",
                format_count(r.access.total).c_str(),
                format_count(op.ideal_min_access()).c_str());
    return 0;
  }

  IntraOptResult r = optimize_intra(op, bs);
  std::printf("[principles] class %s -> %s via %s\n", to_string(r.buffer_class),
              to_string(r.nra), r.rule.c_str());
  std::printf("  dataflow: %s\n", r.dataflow.to_string(op).c_str());
  std::printf("  memory access: %s (%.3fx the ideal bound)\n",
              format_count(r.access.total).c_str(),
              static_cast<double>(r.access.total) /
                  static_cast<double>(op.ideal_min_access()));

  if (args.has_flag("--validate")) {
    const std::uint64_t seed = args.option_uint64("--seed", 0x5eed);
    auto exact = exhaustive_intra(op, bs);
    if (exact) {
      std::printf("[exhaustive] %s -> %s\n", format_count(exact->access.total).c_str(),
                  exact->access.total >= r.access.total ? "principles match or beat the search"
                                                        : "SEARCH WON — please report this");
    }
    if (auto ga = ga_intra(op, bs, GaParams{}, seed)) {
      std::printf("[GA, seed 0x%llx] %s -> %s\n", static_cast<unsigned long long>(seed),
                  format_count(ga->access.total).c_str(),
                  ga->access.total >= r.access.total ? "principles match or beat the search"
                                                     : "SEARCH WON — please report this");
    }
    if (auto sa = sa_intra(op, bs, SaParams{}, seed)) {
      std::printf("[SA, seed 0x%llx] %s -> %s\n", static_cast<unsigned long long>(seed),
                  format_count(sa->access.total).c_str(),
                  sa->access.total >= r.access.total ? "principles match or beat the search"
                                                     : "SEARCH WON — please report this");
    }
  }

  if (auto fuse_n = args.option("--fuse")) {
    const Index n = std::atoll(fuse_n->c_str());
    FusedPair pair = FusedPair::make(m, k, l, n);
    FusionDecision d = decide_fusion(pair, bs);
    std::printf("\n[fusion with D(%lld,%lld)] Principle 4 says: %s\n", static_cast<long long>(l),
                static_cast<long long>(n), d.principle4_predicts ? "fuse" : "do not fuse");
    std::printf("  unfused: %s   fused: %s   (%s)\n", format_count(d.unfused_ma).c_str(),
                d.fusable ? format_count(d.fused_ma).c_str() : "-",
                d.fused ? d.fused->chosen.rule.c_str() : "no feasible fused dataflow");
  }

  if (auto trace_path = args.option("--trace")) {
    TraceRecorder recorder;
    TimelineResult tl = simulate_timeline(op, r.dataflow, make_fusecu(buffer_bytes), 1.0,
                                          &recorder);
    std::ofstream out(*trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot open trace file %s\n", trace_path->c_str());
      return 1;
    }
    write_chrome_trace(out, recorder);
    std::printf("\n[timeline] %lld cycles over %lld iterations (roofline %lld, serialized %lld)\n",
                static_cast<long long>(tl.cycles), static_cast<long long>(tl.iterations),
                static_cast<long long>(tl.roofline()), static_cast<long long>(tl.serialized()));
    std::printf("  chrome trace written to %s (%zu events, %zu dropped)\n", trace_path->c_str(),
                recorder.events().size(), recorder.dropped());
  }

  if (auto tl = args.option("--two-level")) {
    const Index array_n = std::atoll(tl->c_str());
    TwoLevelResult two = optimize_two_level(op, bs, array_n * array_n);
    std::printf("\n[two-level, %lldx%lld array]\n", static_cast<long long>(array_n),
                static_cast<long long>(array_n));
    std::printf("  DRAM <-> buffer : %s (%s, %s)\n", format_count(two.dram_traffic).c_str(),
                to_string(two.outer.nra), two.outer.rule.c_str());
    std::printf("  buffer <-> regs : %s over %lld tile passes (%s)\n",
                format_count(two.buffer_traffic).c_str(),
                static_cast<long long>(two.outer_iterations), to_string(two.inner.nra));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    fusecu::ObsSession obs(argc, argv);
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
