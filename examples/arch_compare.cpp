/// \file arch_compare.cpp
/// Bring-your-own-operator platform comparison: describe any matmul chain
/// on the command line and see how the five platforms schedule it — the
/// chosen dataflow rule, memory access, cycles, and whether FuseCU fuses.
///
/// Usage: arch_compare [M K L [N]]
///   M K L      a single matmul A(M,K) x B(K,L)
///   M K L N    a chain A(M,K) x B(K,L) = C, C x D(L,N) = E
/// Default: the DeBERTa-v2 attention pair (1024, 64, 1024, 64).

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/perf_model.hpp"
#include "obs/obs_session.hpp"

using namespace fusecu;

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  Index m = 1024, k = 64, l = 1024, n = 64;
  bool chain = true;
  if (argc == 4 || argc == 5) {
    m = std::atoll(argv[1]);
    k = std::atoll(argv[2]);
    l = std::atoll(argv[3]);
    chain = argc == 5;
    if (chain) n = std::atoll(argv[4]);
    if (m < 1 || k < 1 || l < 1 || (chain && n < 1)) {
      std::fprintf(stderr, "usage: %s [M K L [N]]\n", argv[0]);
      return 1;
    }
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [M K L [N]]\n", argv[0]);
    return 1;
  }

  OperatorGraph graph;
  if (chain) {
    graph = MatMulChainBuilder(m, {k, l, n}, "user").graph();
    std::printf("chain: A(%lld,%lld) x B -> C(%lld,%lld) x D -> E(%lld,%lld)\n\n",
                (long long)m, (long long)k, (long long)m, (long long)l, (long long)m,
                (long long)n);
  } else {
    graph.add_op(TensorOp::matmul("user", m, k, l));
    std::printf("operator: A(%lld,%lld) x B(%lld,%lld)\n\n", (long long)m, (long long)k,
                (long long)k, (long long)l);
  }

  TextTable t({"platform", "memory access", "cycles", "utilization", "fused", "dataflow"});
  for (const ArchSpec& arch : all_platforms()) {
    ArchPlan plan = plan_chain_for_arch(graph, arch);
    PlanPerf perf = evaluate_plan_perf(plan, arch);
    std::string rules;
    for (const ArchPlanStep& s : plan.steps) {
      if (!rules.empty()) rules += " | ";
      rules += s.rule;
    }
    char util[16];
    std::snprintf(util, sizeof(util), "%.3f", perf.utilization(arch));
    t.add_row({arch.name, format_count(perf.access), format_count(perf.cycles), util,
               std::to_string(plan.fused_pair_count()), rules});
  }
  t.print(std::cout);
  return 0;
}
