/// \file llama_sweep.cpp
/// Sequence-length sensitivity study (the Fig. 11 scenario) as a library
/// consumer would run it: sweep LLaMA2 from a short-context to a
/// long-context configuration and watch FuseCU's memory-access advantage
/// grow with the quadratic attention intermediate.
///
/// Usage: llama_sweep [max_seq]   (default 16384)

#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "workloads/model_eval.hpp"
#include "obs/obs_session.hpp"

#include <iostream>

using namespace fusecu;

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  Index max_seq = 16384;
  if (argc > 1) {
    max_seq = std::atoll(argv[1]);
    if (max_seq < 256) {
      std::fprintf(stderr, "usage: %s [max_seq >= 256]\n", argv[0]);
      return 1;
    }
  }

  TextTable t({"seq", "TPUv4i MA", "FuseCU MA", "saving", "TPUv4i util", "FuseCU util",
               "speedup"});
  for (Index seq = 256; seq <= max_seq; seq *= 2) {
    ModelConfig model = llama2_at_seq(seq);
    ModelEval tpu = evaluate_model(model, make_tpu_v4i());
    ModelEval fcu = evaluate_model(model, make_fusecu());
    char saving[16], ut[16], uf[16], sp[16];
    std::snprintf(saving, sizeof(saving), "%5.1f%%",
                  100.0 * (1.0 - static_cast<double>(fcu.access) / static_cast<double>(tpu.access)));
    std::snprintf(ut, sizeof(ut), "%.3f", tpu.utilization);
    std::snprintf(uf, sizeof(uf), "%.3f", fcu.utilization);
    std::snprintf(sp, sizeof(sp), "%.2fx",
                  static_cast<double>(tpu.cycles) / static_cast<double>(fcu.cycles));
    t.add_row({std::to_string(seq), std::to_string(tpu.access), std::to_string(fcu.access),
               saving, ut, uf, sp});
  }
  std::printf("LLaMA2 (32 heads, hidden 4096, batch 16), one layer, FuseCU vs TPUv4i:\n");
  t.print(std::cout);
  std::printf("\nLonger sequences -> larger attention intermediates -> bigger fusion wins.\n");
  return 0;
}
