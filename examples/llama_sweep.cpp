/// \file llama_sweep.cpp
/// Sequence-length sensitivity study (the Fig. 11 scenario) as a library
/// consumer would run it: sweep LLaMA2 from a short-context to a
/// long-context configuration and watch FuseCU's memory-access advantage
/// grow with the quadratic attention intermediate.
///
/// The sweep runs through the plan service: each (seq, platform) evaluation
/// is a job on the worker pool, and the service's interceptors cache every
/// intra-op / fused-pair / arch plan — across sequence lengths most
/// projection shapes repeat, so later rows plan almost entirely from cache.
///
/// Usage: llama_sweep [max_seq] [--threads N] [--cache-mb MB] [--stats]

#include <cstdio>
#include <cstdlib>
#include <future>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "obs/obs_session.hpp"
#include "serve/plan_service.hpp"
#include "workloads/model_eval.hpp"

#include <iostream>

using namespace fusecu;

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  try {
    ArgParser args({"--stats"}, {"--threads", "--cache-mb"});
    args.parse(argc, argv);
    Index max_seq = 16384;
    if (!args.positional().empty()) {
      max_seq = std::atoll(args.positional()[0].c_str());
      if (max_seq < 256) {
        std::fprintf(stderr, "usage: %s [max_seq >= 256] [--threads N] [--cache-mb MB]\n",
                     argv[0]);
        return 1;
      }
    }

    ServeOptions options;
    options.threads = static_cast<int>(args.option_int("--threads", 4));
    options.cache_bytes =
        static_cast<std::size_t>(args.option_int("--cache-mb", 64)) * 1024 * 1024;
    PlanService service(options);

    struct Row {
      Index seq;
      std::future<ModelEval> tpu;
      std::future<ModelEval> fcu;
    };
    std::vector<Row> rows;
    for (Index seq = 256; seq <= max_seq; seq *= 2) {
      Row row;
      row.seq = seq;
      row.tpu = service.pool().submit(
          [seq]() { return evaluate_model(llama2_at_seq(seq), make_tpu_v4i()); });
      row.fcu = service.pool().submit(
          [seq]() { return evaluate_model(llama2_at_seq(seq), make_fusecu()); });
      rows.push_back(std::move(row));
    }

    TextTable t({"seq", "TPUv4i MA", "FuseCU MA", "saving", "TPUv4i util", "FuseCU util",
                 "speedup"});
    for (Row& row : rows) {
      ModelEval tpu = row.tpu.get();
      ModelEval fcu = row.fcu.get();
      char saving[16], ut[16], uf[16], sp[16];
      std::snprintf(saving, sizeof(saving), "%5.1f%%",
                    100.0 * (1.0 - static_cast<double>(fcu.access) /
                                       static_cast<double>(tpu.access)));
      std::snprintf(ut, sizeof(ut), "%.3f", tpu.utilization);
      std::snprintf(uf, sizeof(uf), "%.3f", fcu.utilization);
      std::snprintf(sp, sizeof(sp), "%.2fx",
                    static_cast<double>(tpu.cycles) / static_cast<double>(fcu.cycles));
      t.add_row({std::to_string(row.seq), std::to_string(tpu.access), std::to_string(fcu.access),
                 saving, ut, uf, sp});
    }
    std::printf("LLaMA2 (32 heads, hidden 4096, batch 16), one layer, FuseCU vs TPUv4i:\n");
    t.print(std::cout);
    std::printf("\nLonger sequences -> larger attention intermediates -> bigger fusion wins.\n");
    if (args.has_flag("--stats")) {
      const CacheStats all = service.stats().combined();
      std::fprintf(stderr, "plan cache: %lld hits, %lld misses, %lld evictions\n",
                   static_cast<long long>(all.hits), static_cast<long long>(all.misses),
                   static_cast<long long>(all.evictions));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
