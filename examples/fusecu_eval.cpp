/// \file fusecu_eval.cpp
/// Config-driven evaluation tool: run any subset of models on any subset of
/// platforms and emit a machine-readable report.
///
///   fusecu_eval --config eval.cfg [--format csv|json] [--decode CONTEXT]
///
/// With no --config, evaluates all of Table II on all five platforms at the
/// default configuration.  --decode switches to the autoregressive decode
/// workload with the given KV-cache length.
///
/// Example configuration:
///   buffer    = 512KB
///   platforms = TPUv4i, FuseCU
///   models    = BERT, tiny
///   [model tiny]
///   heads = 8
///   seq = 512
///   hidden = 512

#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "workloads/report.hpp"
#include "workloads/run_config.hpp"

using namespace fusecu;

int main(int argc, char** argv) {
  try {
    ArgParser args({}, {"--config", "--format", "--decode"});
    args.parse(argc, argv);

    RunConfig config;
    if (auto path = args.option("--config")) {
      std::ifstream in(*path);
      if (!in) {
        std::fprintf(stderr, "cannot open config file: %s\n", path->c_str());
        return 1;
      }
      config = parse_run_config(in);
    } else {
      config.models = table2_models();
    }
    const std::string format = args.option("--format").value_or("csv");
    const Index decode_context = args.option_int("--decode", 0);

    std::vector<ModelEval> evals;
    for (const ArchSpec& arch : resolve_platforms(config)) {
      for (const ModelConfig& model : config.models) {
        evals.push_back(decode_context > 0 ? evaluate_decode(model, decode_context, arch)
                                           : evaluate_model(model, arch));
      }
    }

    if (format == "csv") {
      write_evaluation_csv(std::cout, evals);
    } else if (format == "json") {
      write_evaluation_json(std::cout, evals);
    } else {
      std::fprintf(stderr, "unknown --format %s (use csv or json)\n", format.c_str());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
