/// \file fusecu_eval.cpp
/// Config-driven evaluation tool: run any subset of models on any subset of
/// platforms and emit a machine-readable report.
///
///   fusecu_eval --config eval.cfg [--format csv|json] [--decode CONTEXT]
///               [--metrics-out m.json] [--trace-out t.json]
///
/// With no --config, evaluates all of Table II on all five platforms at the
/// default configuration.  --decode switches to the autoregressive decode
/// workload with the given KV-cache length.
///
/// --metrics-out dumps the global metrics registry (optimizer-phase
/// wall-time histograms, planner/search counters) as JSON (CSV when the
/// path ends in .csv).  --trace-out additionally replays the first
/// evaluated (platform, model) pair's representative matmul through the
/// timeline simulator and writes a Perfetto-loadable trace with DMA/compute
/// duration events and counter tracks (busy cycles, traffic vs. the
/// analytical optimum, buffer occupancy).
///
/// Example configuration:
///   buffer    = 512KB
///   platforms = TPUv4i, FuseCU
///   models    = BERT, tiny
///   [model tiny]
///   heads = 8
///   seq = 512
///   hidden = 512

#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "fusion/graph_planner.hpp"
#include "obs/obs_session.hpp"
#include "obs/timer.hpp"
#include "principles/principle_optimizer.hpp"
#include "sim/timeline.hpp"
#include "workloads/report.hpp"
#include "workloads/run_config.hpp"

using namespace fusecu;

namespace {

/// Replay a representative matmul of (model, arch) — the first matmul of
/// the first lowered chain, under its principle-optimal dataflow — through
/// the timeline simulator so the trace shows real DMA/compute interleaving
/// and counter tracks.
void record_representative_trace(const ModelConfig& model, const ArchSpec& arch,
                                 TraceRecorder& trace) {
  for (const WorkloadChain& chain : lower_layer(model)) {
    for (int i = 0; i < chain.graph.num_ops(); ++i) {
      const TensorOp& op = chain.graph.op(i);
      if (!is_matmul_shaped(op)) continue;
      const BufferSize bs = arch.buffer_bytes / arch.bytes_per_element;
      IntraOptResult opt = optimize_intra(op, bs);
      TimelineResult r = simulate_timeline(op, opt.dataflow, arch, 1.0, &trace);
      // Anchor track: the analytical communication lower bound the
      // traffic_elements counter should approach.
      trace.record_counter("analytical_lower_bound_elements", static_cast<double>(r.cycles),
                           static_cast<double>(opt.access.total));
      return;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ObsSession obs(argc, argv);
    ArgParser args({}, {"--config", "--format", "--decode"});
    args.parse(argc, argv);

    RunConfig config;
    if (auto path = args.option("--config")) {
      std::ifstream in(*path);
      if (!in) {
        std::fprintf(stderr, "cannot open config file: %s\n", path->c_str());
        return 1;
      }
      config = parse_run_config(in);
    } else {
      config.models = table2_models();
    }
    const std::string format = args.option("--format").value_or("csv");
    const Index decode_context = args.option_int("--decode", 0);

    std::vector<ModelEval> evals;
    for (const ArchSpec& arch : resolve_platforms(config)) {
      for (const ModelConfig& model : config.models) {
        ScopedTimer timer("evaluate/" + arch.name);
        evals.push_back(decode_context > 0 ? evaluate_decode(model, decode_context, arch)
                                           : evaluate_model(model, arch));
        // Gate on engine events, not empty(): request spans flow into the
        // recorder via the span sink and must not suppress the one-shot
        // representative timeline.
        if (obs.trace_enabled() && obs.recorder().events().empty()) {
          record_representative_trace(model, arch, obs.recorder());
        }
      }
    }
    MetricsRegistry::global().counter("eval/evaluations").add(
        static_cast<std::int64_t>(evals.size()));

    if (format == "csv") {
      write_evaluation_csv(std::cout, evals);
    } else if (format == "json") {
      write_evaluation_json(std::cout, evals);
    } else {
      std::fprintf(stderr, "unknown --format %s (use csv or json)\n", format.c_str());
      return 1;
    }
    obs.flush();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
