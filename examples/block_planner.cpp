/// \file block_planner.cpp
/// Plan a full transformer block — the real DAG with softmax, GeLU,
/// residual adds and layernorms, not just the matmul chains — and show
/// where fusion absorbs the elementwise structure.
///
/// Usage: block_planner [seq [hidden [heads]]]   (default 1024 768 12)

#include <cstdio>
#include <cstdlib>

#include "common/units.hpp"
#include "fusion/graph_planner.hpp"
#include "workloads/transformer.hpp"
#include "obs/obs_session.hpp"

using namespace fusecu;

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  ModelConfig model{"block", 12, 1024, 768};
  if (argc > 1) model.seq = std::atoll(argv[1]);
  if (argc > 2) model.hidden = std::atoll(argv[2]);
  if (argc > 3) model.heads = std::atoi(argv[3]);

  OperatorGraph block = transformer_block_graph(model);
  std::printf("transformer block (per-head slice): seq=%lld hidden=%lld head_dim=%lld\n",
              static_cast<long long>(model.seq), static_cast<long long>(model.hidden),
              static_cast<long long>(model.head_dim()));
  std::printf("%d operators, %zu intermediates, %s MACs\n\n", block.num_ops(),
              block.intermediate_tensors().size(), format_count(block.macs()).c_str());

  const BufferSize bs = 512 * 1024 / 2;  // the evaluation buffer in elements
  for (PlannerPolicy policy :
       {PlannerPolicy::kNoFusion, PlannerPolicy::kPrinciple4, PlannerPolicy::kCostOnly}) {
    GraphPlan plan = plan_graph(block, bs, policy);
    std::printf("[%s] total MA = %s  (elementwise share %s)\n", to_string(policy),
                format_count(plan.total_access).c_str(),
                format_count(plan.elementwise_access).c_str());
    std::printf("  pointwise absorbed: %d, row-wise absorbed: %d, row-wise spilled: %d\n",
                plan.absorbed_pointwise, plan.absorbed_rowwise, plan.spilled_rowwise);
    for (const GraphPlanChain& chain : plan.chains) {
      std::printf("  chain {");
      for (std::size_t i = 0; i < chain.op_indices.size(); ++i) {
        std::printf("%s%s", i ? " -> " : "",
                    block.op(chain.op_indices[i]).name().c_str());
      }
      std::printf("}:");
      for (const PlanStep& s : chain.plan.steps) {
        std::printf(" [%zu op%s: %s]", s.op_indices.size(),
                    s.op_indices.size() > 1 ? "s" : "", s.description.c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
