/// \file quickstart.cpp
/// Five-minute tour of the library, following Sec. III of the paper:
///
///  1. describe a matrix multiplication as a tensor operator;
///  2. score a hand-written dataflow with the reuse-based access model;
///  3. let the principle optimizer derive the optimal dataflow in one shot
///     (the paper's worked BERT example);
///  4. check a fusion decision with Principle 4.

#include <cstdio>

#include "common/units.hpp"
#include "fusion/fusion_principles.hpp"
#include "principles/principle_optimizer.hpp"
#include "obs/obs_session.hpp"

using namespace fusecu;

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  // --- 1. The paper's running example: a BERT projection MM.
  TensorOp op = TensorOp::matmul("bert_mm", /*m=*/1024, /*k=*/768, /*l=*/768);
  std::printf("operator: %s\n", op.to_string().c_str());
  std::printf("MACs: %s, ideal minimal memory access: %s elements\n\n",
              format_count(op.macs()).c_str(), format_count(op.ideal_min_access()).c_str());

  // --- 2. Score the classic output-stationary dataflow by hand (Fig. 2(b)).
  Dataflow os = make_dataflow(op, {"M", "L", "K"}, {{"M", 64}, {"L", 64}, {"K", 1}});
  AccessBreakdown b = evaluate_access(op, os);
  std::printf("hand-written OS dataflow %s\n", os.to_string(op).c_str());
  std::printf("  accesses: A=%s B=%s C=%s total=%s (%s)\n\n",
              format_count(b.per_tensor[mm::kTensorA]).c_str(),
              format_count(b.per_tensor[mm::kTensorB]).c_str(),
              format_count(b.per_tensor[mm::kTensorC]).c_str(),
              format_count(b.total).c_str(), to_string(classify_nra(op, os)));

  // --- 3. One-shot optimal dataflow for a 512 KB buffer (Sec. III-A4).
  const BufferSize bs = 512 * 1024;  // elements
  IntraOptResult r = optimize_intra(op, bs);
  std::printf("principle-optimized dataflow at BS = 512K elements:\n");
  std::printf("  buffer class: %s  ->  regime: %s  (rule %s)\n", to_string(r.buffer_class),
              to_string(r.nra), r.rule.c_str());
  std::printf("  dataflow: %s\n", r.dataflow.to_string(op).c_str());
  std::printf("  accesses: A=%s B=%s C=%s total=%s\n",
              format_count(r.access.per_tensor[mm::kTensorA]).c_str(),
              format_count(r.access.per_tensor[mm::kTensorB]).c_str(),
              format_count(r.access.per_tensor[mm::kTensorC]).c_str(),
              format_count(r.access.total).c_str());
  std::printf("  (paper: Two-NRA, K untiled, B accessed 2KL — A and C non-redundant)\n\n");

  // --- 4. Should two chained MMs be fused?  Principle 4 in one call.
  FusedPair attention = FusedPair::make(/*m=*/1024, /*k=*/64, /*l=*/1024, /*n=*/64);
  FusionDecision d = decide_fusion(attention, bs);
  std::printf("attention pair S = Q K^T -> O = S V at the same buffer:\n");
  std::printf("  Principle 4 (same NRA regime): %s\n", d.principle4_predicts ? "fuse" : "don't");
  std::printf("  unfused MA: %s, fused MA: %s  (%.1f%% saved, pattern %s)\n",
              format_count(d.unfused_ma).c_str(), format_count(d.fused_ma).c_str(),
              100.0 * (1.0 - static_cast<double>(d.fused_ma) / static_cast<double>(d.unfused_ma)),
              d.fused ? d.fused->chosen.rule.c_str() : "-");
  return 0;
}
