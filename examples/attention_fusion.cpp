/// \file attention_fusion.cpp
/// End-to-end attention-core walkthrough: plan the fused dataflow for
/// S = Q K^T -> O = S V analytically, then *execute* a scaled-down tile of
/// it on the functional FuseCU simulator — both the tile-fusion mapping
/// (intermediate stationary in the PE accumulators, Fig. 5(a)) and the
/// column-fusion mapping (intermediate streamed CU-to-CU, Fig. 5(b)) —
/// verifying bit-exact results against a reference matmul chain and
/// reporting the on-chip traffic the fusion avoided.

#include <cstdio>

#include "arch/dataflow_space.hpp"
#include "common/units.hpp"
#include "sim/fusecu_quad.hpp"
#include "workloads/transformer.hpp"
#include "obs/obs_session.hpp"

using namespace fusecu;

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  // --- Plan: one BERT layer's attention chain on FuseCU vs UnfCU.
  ModelConfig bert = table2_models()[0];
  std::printf("model: %s (heads=%d, seq=%lld, hidden=%lld)\n\n", bert.name.c_str(), bert.heads,
              static_cast<long long>(bert.seq), static_cast<long long>(bert.hidden));

  for (const WorkloadChain& chain : lower_layer(bert)) {
    if (chain.label != "attention") continue;
    for (const ArchSpec& arch : {make_unfcu(), make_fusecu()}) {
      ArchPlan plan = plan_chain_for_arch(chain.graph, arch);
      std::printf("%-7s attention plan: %d fused pair(s), MA per head = %s elements\n",
                  arch.name.c_str(), plan.fused_pair_count(),
                  format_count(plan.total_access).c_str());
      for (const ArchPlanStep& s : plan.steps) {
        std::printf("         step ops={");
        for (std::size_t i = 0; i < s.op_indices.size(); ++i) {
          std::printf("%s%d", i ? "," : "", s.op_indices[i]);
        }
        std::printf("} %s, spatial tile %lldx%lld\n", s.rule.c_str(),
                    static_cast<long long>(s.spatial_rows),
                    static_cast<long long>(s.spatial_cols));
      }
    }
  }

  // --- Execute: a scaled-down head (tile) on the cycle-stepped simulator.
  const Index m = 8, dh = 8, l = 8;
  Matrix q = make_test_matrix(m, dh, 1);
  Matrix kt = make_test_matrix(dh, l, 2);
  Matrix v = make_test_matrix(l, dh, 3);
  Matrix expected = matmul_reference(matmul_reference(q, kt), v);

  FuseCuQuad quad(8);

  std::printf("\n--- tile fusion on one CU (Fig. 5(a)): OS phase -> promote -> IS phase ---\n");
  quad.reset_traffic();
  auto tile = quad.run_tile_fusion(q, kt, v);
  std::printf("result %s reference, %lld cycles, traffic in/out/preload = %lld/%lld/%lld\n",
              tile.output == expected ? "==" : "!=", static_cast<long long>(tile.cycles),
              static_cast<long long>(quad.input_traffic()),
              static_cast<long long>(quad.output_traffic()),
              static_cast<long long>(quad.preload_traffic()));

  std::printf("\n--- column fusion across two CUs (Fig. 5(b)): IS producer -> OS consumer ---\n");
  quad.reset_traffic();
  auto column = quad.run_column_fusion(q, kt, v);
  std::printf("result %s reference, %lld cycles, traffic in/out/preload = %lld/%lld/%lld\n",
              column.output == expected ? "==" : "!=", static_cast<long long>(column.cycles),
              static_cast<long long>(quad.input_traffic()),
              static_cast<long long>(quad.output_traffic()),
              static_cast<long long>(quad.preload_traffic()));
  std::printf("(the %lld-element intermediate S crossed no array edge in either mapping)\n",
              static_cast<long long>(m * l));
  return 0;
}
