/// \file fusecu_serve.cpp
/// JSONL planning server front-end for the concurrent plan service.
///
///   fusecu_serve [--input FILE] [--threads N] [--cache-mb MB] [--shards N]
///                [--stats] [--stats-interval SEC] [--stats-out FILE]
///                [--metrics-out m.json] [--trace-out t.json]
///                [--log-out l.jsonl] [--log-level LEVEL] [--flight-out f.json]
///
/// Reads one JSON planning request per line (stdin by default), answers one
/// JSON response per request line on stdout, in request order.  Requests are
/// planned concurrently on a worker pool; canonicalized repeats are served
/// from the sharded plan cache and identical in-flight requests are
/// deduplicated.  See src/serve/plan_request.hpp for the wire format.
///
/// A malformed line never kills the stream: it produces an ok=false response
/// whose error message names the input, line and expected token.
///
///   $ echo '{"id":"q","op":"matmul","m":512,"k":512,"l":512,"buffer":"512KB"}' |
///       fusecu_serve
///   {"id":"q","ok":true,"kind":"matmul","rule":"P2(untile=K)",...}
///
/// --stats prints cache hit/miss/eviction totals to stderr on exit.
/// --stats-interval SEC emits one stats line per period while serving —
/// qps and cache hit rate over the period, latency p50/p95/p99 cumulative —
/// to stderr, or to --stats-out FILE when given.

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>

#include "common/cli.hpp"
#include "obs/obs_session.hpp"
#include "serve/plan_service.hpp"

using namespace fusecu;

namespace {

/// Background periodic stats line:
///
///   stats: qps=120.0 hit_rate=0.83 p50_us=42 p95_us=310 p99_us=900 \
///     requests=1200 errors=0 entries=57
///
/// qps / hit_rate are deltas over the period; the latency percentiles come
/// from merging the per-class request histograms (Histogram::merge is exact
/// bucket-by-bucket), so they are cumulative over the process lifetime.
class StatsReporter {
 public:
  StatsReporter(PlanService& service, double interval_s, std::ostream& os)
      : service_(service), interval_s_(interval_s), os_(os), thread_([this] { run(); }) {}

  ~StatsReporter() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    MetricsRegistry& reg = MetricsRegistry::global();
    Counter& requests = reg.counter("serve/requests");
    Counter& errors = reg.counter("serve/request_errors");
    std::int64_t prev_requests = requests.value();
    CacheStats prev_cache = service_.stats().combined();
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::duration<double>(interval_s_),
                         [this] { return stop_; })) {
      const std::int64_t now_requests = requests.value();
      const CacheStats now_cache = service_.stats().combined();
      const double qps = static_cast<double>(now_requests - prev_requests) / interval_s_;
      const std::int64_t lookups =
          (now_cache.hits - prev_cache.hits) + (now_cache.misses - prev_cache.misses);
      const double hit_rate =
          lookups > 0 ? static_cast<double>(now_cache.hits - prev_cache.hits) /
                            static_cast<double>(lookups)
                      : 0.0;
      Histogram merged;
      merged.merge(reg.histogram("serve/latency_us/matmul"));
      merged.merge(reg.histogram("serve/latency_us/fused_pair"));
      const HistogramSnapshot lat = merged.snapshot();
      os_ << "stats: qps=" << qps << " hit_rate=" << hit_rate
          << " p50_us=" << lat.p50 << " p95_us=" << lat.p95 << " p99_us=" << lat.p99
          << " requests=" << now_requests << " errors=" << errors.value()
          << " entries=" << now_cache.entries << "\n"
          << std::flush;
      prev_requests = now_requests;
      prev_cache = now_cache;
    }
  }

  PlanService& service_;
  double interval_s_;
  std::ostream& os_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  try {
    ArgParser args({"--stats"},
                   {"--input", "--threads", "--cache-mb", "--shards", "--stats-interval",
                    "--stats-out"});
    args.parse(argc, argv);

    ServeOptions options;
    options.threads = static_cast<int>(args.option_int("--threads", 4));
    options.cache_bytes =
        static_cast<std::size_t>(args.option_int("--cache-mb", 64)) * 1024 * 1024;
    options.shards = static_cast<int>(args.option_int("--shards", 8));
    PlanService service(options);

    std::unique_ptr<std::ofstream> stats_file;
    std::unique_ptr<StatsReporter> reporter;
    if (auto interval = args.option("--stats-interval")) {
      const double seconds = std::stod(*interval);
      if (!(seconds > 0.0)) {
        std::cerr << "error: --stats-interval expects a positive number of seconds\n";
        return 1;
      }
      std::ostream* sink = &std::cerr;
      if (auto stats_path = args.option("--stats-out")) {
        stats_file = std::make_unique<std::ofstream>(*stats_path);
        if (!*stats_file) {
          std::cerr << "error: cannot open " << *stats_path << "\n";
          return 1;
        }
        sink = stats_file.get();
      }
      reporter = std::make_unique<StatsReporter>(service, seconds, *sink);
    }

    int served = 0;
    if (auto path = args.option("--input")) {
      std::ifstream in(*path);
      if (!in) {
        std::cerr << "error: cannot open " << *path << "\n";
        return 1;
      }
      served = service.serve_stream(in, std::cout, *path);
    } else {
      served = service.serve_stream(std::cin, std::cout, "<stdin>");
    }
    reporter.reset();  // final partial period is dropped, not misreported

    if (args.has_flag("--stats")) {
      const PlanService::Stats stats = service.stats();
      const CacheStats all = stats.combined();
      std::cerr << "served " << served << " requests; cache hits " << all.hits << ", misses "
                << all.misses << ", evictions " << all.evictions << ", entries " << all.entries
                << "; single-flight shared " << stats.single_flight_shared << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
