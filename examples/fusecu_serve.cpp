/// \file fusecu_serve.cpp
/// JSONL planning server front-end for the concurrent plan service.
///
///   fusecu_serve [--input FILE] [--threads N] [--cache-mb MB] [--shards N]
///                [--stats] [--metrics-out m.json] [--trace-out t.json]
///
/// Reads one JSON planning request per line (stdin by default), answers one
/// JSON response per request line on stdout, in request order.  Requests are
/// planned concurrently on a worker pool; canonicalized repeats are served
/// from the sharded plan cache and identical in-flight requests are
/// deduplicated.  See src/serve/plan_request.hpp for the wire format.
///
/// A malformed line never kills the stream: it produces an ok=false response
/// whose error message names the input, line and expected token.
///
///   $ echo '{"id":"q","op":"matmul","m":512,"k":512,"l":512,"buffer":"512KB"}' |
///       fusecu_serve
///   {"id":"q","ok":true,"kind":"matmul","rule":"P2(untile=K)",...}
///
/// --stats prints cache hit/miss/eviction totals to stderr on exit.

#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "obs/obs_session.hpp"
#include "serve/plan_service.hpp"

using namespace fusecu;

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  try {
    ArgParser args({"--stats"}, {"--input", "--threads", "--cache-mb", "--shards"});
    args.parse(argc, argv);

    ServeOptions options;
    options.threads = static_cast<int>(args.option_int("--threads", 4));
    options.cache_bytes =
        static_cast<std::size_t>(args.option_int("--cache-mb", 64)) * 1024 * 1024;
    options.shards = static_cast<int>(args.option_int("--shards", 8));
    PlanService service(options);

    int served = 0;
    if (auto path = args.option("--input")) {
      std::ifstream in(*path);
      if (!in) {
        std::cerr << "error: cannot open " << *path << "\n";
        return 1;
      }
      served = service.serve_stream(in, std::cout, *path);
    } else {
      served = service.serve_stream(std::cin, std::cout, "<stdin>");
    }

    if (args.has_flag("--stats")) {
      const PlanService::Stats stats = service.stats();
      const CacheStats all = stats.combined();
      std::cerr << "served " << served << " requests; cache hits " << all.hits << ", misses "
                << all.misses << ", evictions " << all.evictions << ", entries " << all.entries
                << "; single-flight shared " << stats.single_flight_shared << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
