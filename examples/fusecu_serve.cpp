/// \file fusecu_serve.cpp
/// JSONL planning server front-end for the concurrent plan service.
///
///   fusecu_serve [--input FILE] [--threads N] [--cache-mb MB] [--shards N]
///                [--listen HOST:PORT] [--reactors N] [--accept MODE]
///                [--max-conns N] [--queue-depth N]
///                [--request-timeout-ms MS] [--idle-timeout-ms MS]
///                [--watchdog-ms MS] [--target-delay-ms MS]
///                [--max-line-bytes BYTES] [--port-file FILE]
///                [--fault-plan FILE]
///                [--stats] [--stats-interval SEC] [--stats-out FILE]
///                [--metrics-out m.json] [--trace-out t.json]
///                [--log-out l.jsonl] [--log-level LEVEL] [--flight-out f.json]
///
/// Reads one JSON planning request per line (stdin by default), answers one
/// JSON response per request line on stdout, in request order.  Requests are
/// planned concurrently on a worker pool; canonicalized repeats are served
/// from the sharded plan cache and identical in-flight requests are
/// deduplicated.  See src/serve/plan_request.hpp for the wire format.
///
/// A malformed line never kills the stream: it produces an ok=false response
/// whose error message names the input, line and expected token.  Lines
/// longer than --max-line-bytes (default 1 MiB) are answered the same way
/// instead of being buffered without bound.
///
///   $ echo '{"id":"q","op":"matmul","m":512,"k":512,"l":512,"buffer":"512KB"}' |
///       fusecu_serve
///   {"id":"q","ok":true,"kind":"matmul","rule":"P2(untile=K)",...}
///
/// With --listen HOST:PORT the same JSONL protocol is served over TCP by
/// --reactors N sharded event loops (src/net/server.hpp; default = hardware
/// threads, 0 = the legacy single inline loop) with SO_REUSEPORT kernel
/// accept distribution when available (--accept auto|reuseport|handoff):
/// pipelined requests per connection answered in order, a bounded
/// per-reactor admission queue (--queue-depth)
/// in front of the worker pool with ok=false "overloaded" shedding past the
/// high-water mark, per-request deadlines (--request-timeout-ms),
/// idle-connection timeouts (--idle-timeout-ms) and SIGINT/SIGTERM graceful
/// drain (stop accepting, finish in-flight, flush stats/metrics/trace; a
/// second signal hard-stops).  Port 0 picks a free port; the bound address
/// is printed to stderr and written to --port-file when given.
///
/// --watchdog-ms MS (0 = off) arms supervision: a watchdog thread samples
/// per-reactor and per-pool-worker heartbeats and reports a source whose
/// heartbeat misses the budget (`net/watchdog/stalls`, structured log,
/// flight-recorder dump), and any request unanswered 2x the budget after
/// admission is cancelled with an in-order ok=false "timed_out" response.
/// --target-delay-ms MS (0 = off) replaces the fixed-depth-only shed with
/// CoDel-style adaptive admission: when the standing (window-minimum)
/// pool-queue delay exceeds the target for an interval the server enters
/// brownout — cold request shapes are shed with a retry_after_ms hint while
/// plan-cache-warm shapes keep being served — and recovers with hysteresis
/// once the standing delay halves.
///
///   $ fusecu_serve --listen 127.0.0.1:7411 --threads 8 --queue-depth 256 &
///   $ printf '%s\n' '{"id":"q","op":"matmul",...}' | nc 127.0.0.1 7411
///
/// --fault-plan FILE arms a deterministic fault-injection schedule (a
/// fusecu_fault_plan/1 JSON document — see src/common/fault.hpp; a chaos
/// repro's "plan"/"shrunk_plan" member is one) before serving:
/// short reads/writes, EINTR, connection resets, deferred accepts, spurious
/// wakeups, clock skew, pool stalls, worker hangs and reactor stalls fire
/// at their scheduled sites.
/// Debug/ops tooling only — never enable in production.
///
/// --stats prints cache hit/miss/eviction totals to stderr on exit.
/// --stats-interval SEC emits one stats line per period while serving —
/// qps and cache hit rate over the period, latency p50/p95/p99 cumulative —
/// to stderr, or to --stats-out FILE when given; the final partial period
/// is flushed as one last line on shutdown.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include <sstream>

#include "common/cli.hpp"
#include "common/fault.hpp"
#include "net/server.hpp"
#include "obs/obs_session.hpp"
#include "serve/plan_service.hpp"
#include "serve/stats_reporter.hpp"

using namespace fusecu;

namespace {

/// Signal-handler target: handlers may only do async-signal-safe work, and
/// NetServer::request_drain (atomic bump + pipe write) qualifies.
std::atomic<NetServer*> g_net_server{nullptr};

void on_stop_signal(int) {
  if (NetServer* server = g_net_server.load(std::memory_order_acquire)) {
    server->request_drain();
  }
}

void install_stop_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = on_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: the loop's poll should wake immediately
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  // A dead client mid-write must be a connection error, not process death.
  signal(SIGPIPE, SIG_IGN);
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  try {
    ArgParser args({"--stats"},
                   {"--input", "--threads", "--cache-mb", "--shards", "--stats-interval",
                    "--stats-out", "--listen", "--reactors", "--accept", "--max-conns",
                    "--queue-depth", "--request-timeout-ms", "--idle-timeout-ms",
                    "--watchdog-ms", "--target-delay-ms",
                    "--max-line-bytes", "--port-file", "--fault-plan"});
    args.parse(argc, argv);

    // Armed before the service exists so pool-stall events cover the whole
    // serving lifetime; disarmed implicitly at process exit.
    if (auto fault_path = args.option("--fault-plan")) {
      std::ifstream fault_file(*fault_path);
      if (!fault_file) {
        std::cerr << "error: cannot open --fault-plan " << *fault_path << "\n";
        return 1;
      }
      std::stringstream fault_text;
      fault_text << fault_file.rdbuf();
      const fault::FaultPlan plan = fault::FaultPlan::from_json(fault_text.str(), *fault_path);
      fault::arm(plan);
      std::cerr << "fault plan armed: " << plan.events.size() << " events (seed " << plan.seed
                << ") — debug mode, not for production\n";
    }

    ServeOptions options;
    options.threads = static_cast<int>(args.option_int("--threads", 4));
    options.cache_bytes =
        static_cast<std::size_t>(args.option_int("--cache-mb", 64)) * 1024 * 1024;
    options.shards = static_cast<int>(args.option_int("--shards", 8));
    options.max_line_bytes =
        static_cast<std::size_t>(args.option_bytes("--max-line-bytes", 1 << 20));
    PlanService service(options);

    std::unique_ptr<std::ofstream> stats_file;
    std::unique_ptr<StatsReporter> reporter;
    if (auto interval = args.option("--stats-interval")) {
      const double seconds = std::stod(*interval);
      if (!(seconds > 0.0)) {
        std::cerr << "error: --stats-interval expects a positive number of seconds\n";
        return 1;
      }
      std::ostream* sink = &std::cerr;
      if (auto stats_path = args.option("--stats-out")) {
        stats_file = std::make_unique<std::ofstream>(*stats_path);
        if (!*stats_file) {
          std::cerr << "error: cannot open " << *stats_path << "\n";
          return 1;
        }
        sink = stats_file.get();
      }
      reporter = std::make_unique<StatsReporter>(service, seconds, *sink);
    }

    std::int64_t served = 0;
    if (auto listen = args.option("--listen")) {
      std::optional<HostPort> hp = parse_host_port(*listen);
      if (!hp) {
        std::cerr << "error: --listen expects HOST:PORT, got \"" << *listen << "\"\n";
        return 1;
      }
      NetServerOptions net;
      net.host = hp->host.empty() ? "127.0.0.1" : hp->host;
      net.port = hp->port;
      net.max_conns = static_cast<int>(args.option_int("--max-conns", 256));
      net.queue_depth = static_cast<int>(args.option_int("--queue-depth", 128));
      net.request_timeout_ms = args.option_int("--request-timeout-ms", 0);
      net.idle_timeout_ms = args.option_int("--idle-timeout-ms", 60'000);
      net.watchdog_ms = args.option_int("--watchdog-ms", 0);
      net.target_delay_ms = args.option_int("--target-delay-ms", 0);
      net.max_line_bytes = options.max_line_bytes;
      const int hw = static_cast<int>(std::thread::hardware_concurrency());
      net.reactors = static_cast<int>(args.option_int("--reactors", std::max(1, hw)));
      if (auto accept_mode = args.option("--accept")) {
        if (*accept_mode == "auto") {
          net.accept_mode = NetServerOptions::AcceptMode::kAuto;
        } else if (*accept_mode == "reuseport") {
          net.accept_mode = NetServerOptions::AcceptMode::kReusePort;
        } else if (*accept_mode == "handoff") {
          net.accept_mode = NetServerOptions::AcceptMode::kHandoff;
        } else {
          std::cerr << "error: --accept expects auto|reuseport|handoff, got \"" << *accept_mode
                    << "\"\n";
          return 1;
        }
      }
      NetServer server(service, net);
      std::cerr << "listening on " << server.bound().host << ":" << server.port() << " ("
                << server.reactor_count() << " reactor"
                << (server.reactor_count() == 1 ? "" : "s") << ", "
                << server.accept_mode_used() << " accept)\n";
      if (auto port_path = args.option("--port-file")) {
        std::ofstream port_file(*port_path);
        if (!port_file) {
          std::cerr << "error: cannot open " << *port_path << "\n";
          return 1;
        }
        port_file << server.port() << "\n";
      }
      g_net_server.store(&server, std::memory_order_release);
      install_stop_handlers();
      server.run();  // returns after SIGINT/SIGTERM drain
      g_net_server.store(nullptr, std::memory_order_release);
      const NetServer::Stats net_stats = server.stats();
      served = net_stats.responses;
      std::cerr << "drained: " << net_stats.responses << " responses over "
                << net_stats.accepted << " connections; shed " << net_stats.shed
                << ", parse errors " << net_stats.parse_errors << ", deadline expired "
                << net_stats.deadline_expired << ", watchdog cancelled "
                << net_stats.timed_out << "\n";
    } else if (auto path = args.option("--input")) {
      std::ifstream in(*path);
      if (!in) {
        std::cerr << "error: cannot open " << *path << "\n";
        return 1;
      }
      served = service.serve_stream(in, std::cout, *path);
    } else {
      served = service.serve_stream(std::cin, std::cout, "<stdin>");
    }
    reporter.reset();  // flushes the final partial stats period

    if (args.has_flag("--stats")) {
      const PlanService::Stats stats = service.stats();
      const CacheStats all = stats.combined();
      std::cerr << "served " << served << " requests; cache hits " << all.hits << ", misses "
                << all.misses << ", evictions " << all.evictions << ", entries " << all.entries
                << "; single-flight shared " << stats.single_flight_shared << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
