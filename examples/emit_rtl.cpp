/// \file emit_rtl.cpp
/// Emit the FuseCU Verilog RTL (XS PE + compute unit + 4-CU top) to stdout
/// — the counterpart of the paper's open-sourced Chisel flow.
///
/// Usage: emit_rtl [--n SIZE] [--data-width W] [--acc-width W] > fusecu.v

#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "rtl/verilog_gen.hpp"
#include "obs/obs_session.hpp"

using namespace fusecu;

int main(int argc, char** argv) {
  try {
    fusecu::ObsSession obs(argc, argv);
    ArgParser args({}, {"--n", "--data-width", "--acc-width"});
    args.parse(argc, argv);
    RtlParams params;
    params.unit_size = args.option_int("--n", 8);
    params.data_width = static_cast<int>(args.option_int("--data-width", 16));
    params.acc_width = static_cast<int>(args.option_int("--acc-width", 32));

    const std::string rtl = generate_all(params);
    RtlLintResult lint = lint_verilog(rtl);
    if (!lint.ok) {
      std::fprintf(stderr, "internal error: generated RTL failed lint: %s\n",
                   lint.message.c_str());
      return 1;
    }
    std::cout << rtl;
    std::fprintf(stderr, "emitted %d modules (%d instantiations), lint clean\n",
                 lint.module_count, lint.instance_count);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
