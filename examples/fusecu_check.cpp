// fusecu_check — differential conformance harness driver.
//
// Random mode (default): derive one workload per trial from --seed, run the
// full oracle stack (floors, exhaustive search, functional simulation, serve
// byte-identity), shrink any counterexample and optionally dump it as a
// self-contained JSON repro:
//
//   fusecu_check --trials 500 --seed 1 --repro-out repro.json
//
// Replay mode: re-run the shrunk workload of a repro artifact:
//
//   fusecu_check --replay repro.json
//
// Chaos mode (--chaos-trials N): instead of optimizer conformance, run
// seeded fault-injection trials against a real PlanService + NetServer on a
// loopback port — each trial arms a seed-derived fault schedule (short
// reads/writes, EINTR, connection resets at byte offsets, deferred/EMFILE
// accepts, spurious poller wakeups, clock skew, pool stalls) and asserts
// the serving invariants: per-connection response order, id preservation on
// shed, byte identity with the stdin path, graceful drain, no lost
// responses.  Failing fault schedules are shrunk and dumped with
// --chaos-repro-out, replayable with --chaos-replay.  --chaos-bug reorder
// arms an intentional server bug to prove the harness detects violations.
//
//   fusecu_check --chaos-trials 500 --seed 7 --chaos-repro-out chaos.json
//   fusecu_check --chaos-replay chaos.json
//
// Shared observability flags (--metrics-out / --trace-out / --log-out /
// --flight-out) publish the check/... counters: trials, per-buffer-class
// coverage, failures, executor runs vs skips.  With --flight-out, a failing
// run dumps the flight recorder (last spans, log lines and a metrics
// snapshot) as JSON to that path — the same file a crash would dump to.
// Exit status: 0 clean, 1 mismatches found, 2 usage error.

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "check/chaos.hpp"
#include "check/harness.hpp"
#include "common/cli.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs_session.hpp"

using namespace fusecu;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--trials N] [--seed S] [--max-extent N] [--jobs N]\n"
               "       [--repro-out FILE] [--replay FILE]\n"
               "       [--chaos-trials N] [--chaos-max-events N] [--chaos-bug reorder]\n"
               "       [--chaos-reactors N] [--chaos-repro-out FILE] [--chaos-replay FILE]\n"
               "       [--no-exec] [--no-serve] [--no-arch] [--no-shrink]\n"
               "       [--metrics-out FILE] [--trace-out FILE] [--log-out FILE]\n"
               "       [--log-level LEVEL] [--flight-out FILE]\n";
  return 2;
}

void print_coverage(std::ostream& os) {
  MetricsRegistry& reg = MetricsRegistry::global();
  os << "regime coverage:";
  for (const char* cls : {"tiny", "small", "medium", "large"}) {
    os << " " << cls << "=" << reg.counter(std::string("check/regime/") + cls).value();
  }
  os << "\nexecutor: runs=" << reg.counter("check/executor_runs").value()
     << " skips=" << reg.counter("check/executor_skips").value()
     << "  serve checks=" << reg.counter("check/serve_checks").value() << "\n";
}

/// On failure with --flight-out, replace the (empty) crash dump with a full
/// JSON flight dump: the retained spans and log lines of the failing trials
/// plus a metrics snapshot.
void dump_flight(const ObsSession& obs) {
  if (!obs.flight_enabled()) return;
  std::ofstream os(obs.flight_out());
  if (!os) {
    std::cerr << "fusecu_check: cannot write flight dump to " << obs.flight_out() << "\n";
    return;
  }
  FlightRecorder::global().dump_json(os);
  std::cout << "flight dump written to " << obs.flight_out() << "\n";
}

std::optional<fault::TestBug> parse_chaos_bug(const std::string& name) {
  if (name == "none") return fault::TestBug::kNone;
  if (name == "reorder") return fault::TestBug::kReorderResponses;
  return std::nullopt;
}

int run_chaos_replay(const std::string& path, const ChaosOptions& opts, const ObsSession& obs) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fusecu_check: cannot open chaos replay file " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const ChaosFailure failure = chaos_repro_from_json(buffer.str(), path);

  std::cout << "replaying chaos trial " << failure.trial << " (seed " << failure.seed << ", "
            << failure.shrunk.plan.events.size() << " shrunk fault events)\n";
  const ChaosTrialReport report = replay_chaos_repro(failure, opts);
  if (report.ok()) {
    std::cout << "no violations (the failure did not reproduce)\n";
    return 0;
  }
  for (const ChaosViolation& v : report.violations) {
    std::cout << v.invariant << ": " << v.detail << "\n";
  }
  dump_flight(obs);
  return 1;
}

int run_chaos_mode(const ChaosOptions& opts, const ArgParser& parser, const ObsSession& obs,
                   const char* argv0) {
  std::cout << "fusecu_check: " << opts.trials << " chaos trials, seed " << opts.seed << "\n";
  const ChaosResult result = run_chaos(opts, &std::cout);
  std::cout << result.trials_run << " trials, " << result.checks_run << " checks, "
            << result.failed_trials << " failing trial(s)\n";

  if (!result.ok()) {
    if (auto out = parser.option("--chaos-repro-out")) {
      std::ofstream os(*out);
      if (!os) {
        std::cerr << "fusecu_check: cannot write chaos repro to " << *out << "\n";
      } else {
        os << chaos_repro_to_json(result.failures.front()) << "\n";
        std::cout << "chaos repro written to " << *out << "\n";
      }
    }
    dump_flight(obs);
    std::cout << "replay any failure with: " << argv0 << " --chaos-replay <chaos-repro.json>\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}

int run_replay(const std::string& path, const CheckOptions& check, const ObsSession& obs) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "fusecu_check: cannot open replay file " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  Repro repro = repro_from_json(buffer.str(), path);

  std::cout << "replaying " << repro.shrunk.to_string() << " (original "
            << repro.original.to_string() << ")\n";
  CheckReport report = replay_repro(repro, check);
  std::cout << report.summary() << "\n";
  if (!report.ok()) dump_flight(obs);
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  ArgParser parser({"--no-exec", "--no-serve", "--no-arch", "--no-shrink", "--help"},
                   {"--trials", "--seed", "--max-extent", "--jobs", "--repro-out", "--replay",
                    "--chaos-trials", "--chaos-max-events", "--chaos-bug", "--chaos-reactors",
                    "--chaos-repro-out", "--chaos-replay"});
  try {
    parser.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "fusecu_check: " << e.what() << "\n";
    return usage(argv[0]);
  }
  if (parser.has_flag("--help")) return usage(argv[0]);

  HarnessOptions opts;
  opts.seed = parser.option_uint64("--seed", 1);
  opts.trials = static_cast<int>(parser.option_int("--trials", 100));
  opts.limits.max_extent = parser.option_int("--max-extent", opts.limits.max_extent);
  opts.jobs = static_cast<int>(parser.option_int("--jobs", 1));
  opts.check.with_executor = !parser.has_flag("--no-exec");
  opts.check.with_serve = !parser.has_flag("--no-serve");
  opts.check.with_arch = !parser.has_flag("--no-arch");
  opts.shrink = !parser.has_flag("--no-shrink");

  ChaosOptions chaos;
  chaos.seed = opts.seed;
  chaos.trials = static_cast<int>(parser.option_int("--chaos-trials", 0));
  chaos.max_events = static_cast<int>(parser.option_int("--chaos-max-events", chaos.max_events));
  chaos.reactors = static_cast<int>(parser.option_int("--chaos-reactors", chaos.reactors));
  chaos.shrink = opts.shrink;
  if (auto bug_name = parser.option("--chaos-bug")) {
    const std::optional<fault::TestBug> bug = parse_chaos_bug(*bug_name);
    if (!bug) {
      std::cerr << "fusecu_check: unknown --chaos-bug " << *bug_name << " (try: reorder)\n";
      return usage(argv[0]);
    }
    chaos.bug = *bug;
  }

  try {
    if (auto chaos_replay = parser.option("--chaos-replay")) {
      return run_chaos_replay(*chaos_replay, chaos, obs);
    }
    if (chaos.trials > 0) {
      return run_chaos_mode(chaos, parser, obs, argv[0]);
    }
    if (auto replay = parser.option("--replay")) {
      return run_replay(*replay, opts.check, obs);
    }

    std::cout << "fusecu_check: " << opts.trials << " trials, seed " << opts.seed << "\n";
    HarnessResult result = run_conformance(opts, &std::cout);

    std::cout << result.trials_run << " trials, " << result.checks_run << " checks, "
              << result.failed_trials << " failing trial(s)\n";
    print_coverage(std::cout);

    if (!result.ok()) {
      if (auto out = parser.option("--repro-out")) {
        std::ofstream os(*out);
        if (!os) {
          std::cerr << "fusecu_check: cannot write repro to " << *out << "\n";
        } else {
          os << repro_to_json(make_repro(result.failures.front())) << "\n";
          std::cout << "repro written to " << *out << "\n";
        }
      }
      dump_flight(obs);
      std::cout << "replay any failure with: " << argv[0]
                << " --replay <repro.json>, or regenerate it from its reported seed\n";
      return 1;
    }
    std::cout << "OK\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fusecu_check: " << e.what() << "\n";
    return 2;
  }
}
