/// \file conv_workloads.cpp
/// Extension bench: the principles applied beyond matrix multiplication
/// (Sec. III-B2: "Principle 1-4 can be extended to other tensor operators").
/// Evaluates representative ResNet-50 convolution layers through the
/// im2col view on all five platforms, and cross-checks the analytical MA of
/// a direct 7-loop weight-stationary conv dataflow against the im2col
/// equivalent.

#include <cstdio>
#include <iostream>

#include "arch/dataflow_space.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "principles/principle_optimizer.hpp"
#include "tensor/conv.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

std::vector<Conv2dConfig> resnet_layers() {
  auto layer = [](const char* name, Index c, Index k, Index hw, Index kernel, Index stride) {
    Conv2dConfig cfg;
    cfg.name = name;
    cfg.batch = 8;
    cfg.in_channels = c;
    cfg.out_channels = k;
    cfg.in_h = cfg.in_w = hw;
    cfg.kernel_h = cfg.kernel_w = kernel;
    cfg.stride = stride;
    return cfg;
  };
  return {
      layer("conv2_3x3 (64->64, 56x56)", 64, 64, 58, 3, 1),
      layer("conv3_3x3 (128->128, 28x28)", 128, 128, 30, 3, 1),
      layer("conv4_1x1 (256->1024, 14x14)", 256, 1024, 14, 1, 1),
      layer("conv5_3x3 (512->512, 7x7)", 512, 512, 9, 3, 1),
  };
}

void platform_comparison() {
  std::printf("--- ResNet-50 layers (im2col) across platforms: normalized MA ---\n");
  TextTable t({"layer", "MACs", "TPUv4i", "Gemmini", "Planaria", "UnfCU/FuseCU"});
  for (const Conv2dConfig& cfg : resnet_layers()) {
    TensorOp mm = conv_as_matmul(cfg);
    const double base =
        static_cast<double>(optimize_intra_for_arch(mm, make_tpu_v4i()).access.total);
    std::vector<double> vals = {1.0};
    for (const ArchSpec& arch : {make_gemmini(), make_planaria(), make_unfcu()}) {
      vals.push_back(static_cast<double>(optimize_intra_for_arch(mm, arch).access.total) / base);
    }
    std::vector<std::string> row = {cfg.name, format_count(cfg.macs())};
    char buf[16];
    for (double v : vals) {
      std::snprintf(buf, sizeof(buf), "%.3f", v);
      row.emplace_back(buf);
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::printf("(convolution has no profitable pairwise fusion here, so UnfCU == FuseCU;\n"
              " the flexible-tiling MA advantage carries over from the matmul study)\n\n");
}

void direct_vs_im2col() {
  std::printf("--- direct 7-loop nest vs im2col view (weight-stationary schedule) ---\n");
  TextTable t({"layer", "direct-nest MA", "im2col MA", "direct / im2col"});
  for (const Conv2dConfig& cfg : resnet_layers()) {
    TensorOp nest = conv_as_loop_nest(cfg);
    // Weight-stationary: all weight dims untiled, spatial output tiled.
    Dataflow df = make_dataflow(
        nest, {"K", "C", "R", "S", "N", "P", "Q"},
        {{"K", cfg.out_channels},
         {"C", cfg.in_channels},
         {"R", cfg.kernel_h},
         {"S", cfg.kernel_w},
         {"N", 1},
         {"P", std::min<Index>(cfg.out_h(), 8)},
         {"Q", std::min<Index>(cfg.out_w(), 8)}});
    AccessCount direct = evaluate_access(nest, df).total;

    TensorOp mm = conv_as_matmul(cfg);
    AccessCount im2col =
        optimize_intra(mm, make_fusecu().buffer_elements()).access.total;
    char ratio[16];
    std::snprintf(ratio, sizeof(ratio), "%.3f",
                  static_cast<double>(direct) / static_cast<double>(im2col));
    t.add_row({cfg.name, format_count(direct), format_count(im2col), ratio});
  }
  t.print(std::cout);
  std::printf("(the decoupled-index direct view overcounts patch overlap; im2col is the\n"
              " execution model of the GEMM-based platforms studied here)\n");
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  std::printf("=== Convolution workloads (extension) ===\n\n");
  fusecu::platform_comparison();
  fusecu::direct_vs_im2col();
  return 0;
}
