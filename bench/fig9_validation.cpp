/// \file fig9_validation.cpp
/// Regenerates Fig. 9: memory access of the principle-optimized dataflow
/// validated against the DAT-style searching optimizer across buffer sizes
/// from 32 KB to 32 MB.
///
/// For each representative MM layer (drawn from the Table II models) and
/// each buffer size, the bench prints MA normalized to the operator's ideal
/// lower bound (every tensor accessed once) for:
///   * principles  — one-shot analytical optimum (the paper's line);
///   * DAT (GA)    — genetic-algorithm search (the paper's points);
///   * exhaustive  — ground-truth grid search.
/// The expected shape: principles == exhaustive everywhere; the GA
/// occasionally lands slightly above (it "does not guarantee global
/// optimization"), never below.

#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "principles/principle_optimizer.hpp"
#include "search/annealing.hpp"
#include "search/dat_optimizer.hpp"
#include "workloads/transformer.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

struct Layer {
  const char* name;
  Index m, k, l;
};

void run(std::uint64_t seed) {
  // Representative MM layers: projection and attention ops from BERT and
  // LLaMA2, plus the paper's worked example.
  const Layer layers[] = {
      {"BERT.proj (16384x768x768)", 16384, 768, 768},
      {"BERT.score (1024x64x1024)", 1024, 64, 1024},
      {"LLaMA2.score (4096x128x4096)", 4096, 128, 4096},
      {"LLaMA2.ffn (65536x4096x16384)", 65536, 4096, 16384},
      {"paper-example (1024x768x768)", 1024, 768, 768},
  };

  std::printf("=== Fig. 9: normalized memory access, principles vs DAT ===\n");
  std::printf("(normalized to the ideal lower bound; lower is better, 1.0 is optimal-infinite-buffer)\n\n");

  DatParams dat_params;
  dat_params.ga.generations = 60;
  dat_params.seed = seed;
  DatOptimizer dat(dat_params);

  for (const Layer& layer : layers) {
    TensorOp op = TensorOp::matmul(layer.name, layer.m, layer.k, layer.l);
    const double ideal = static_cast<double>(op.ideal_min_access());
    TextTable table({"buffer", "class", "principles (line)", "DAT-GA (points)", "SA",
                     "exhaustive", "principles rule"});
    for (std::int64_t kb = 32; kb <= 32 * 1024; kb *= 4) {
      const BufferSize bs = kb * 1024 / 2;  // bytes -> bf16 elements
      IntraOptResult ours = optimize_intra(op, bs);
      auto ga = dat.optimize_intra(op, bs);
      auto sa = sa_intra(op, bs, SaParams{}, seed);
      auto exact = exhaustive_intra(op, bs);
      char ours_s[32], ga_s[32], sa_s[32], exact_s[32];
      std::snprintf(ours_s, sizeof(ours_s), "%.4f", static_cast<double>(ours.access.total) / ideal);
      std::snprintf(ga_s, sizeof(ga_s), "%.4f",
                    ga ? static_cast<double>(ga->access.total) / ideal : -1.0);
      std::snprintf(sa_s, sizeof(sa_s), "%.4f",
                    sa ? static_cast<double>(sa->access.total) / ideal : -1.0);
      std::snprintf(exact_s, sizeof(exact_s), "%.4f",
                    exact ? static_cast<double>(exact->access.total) / ideal : -1.0);
      table.add_row({format_bytes(kb * 1024), to_string(ours.buffer_class), ours_s, ga_s, sa_s,
                     exact_s, ours.rule});
    }
    std::printf("--- %s ---\n", layer.name);
    table.print(std::cout);
    std::printf("\n");
  }

  // Fused-pair validation: the attention pair, principles vs DAT fused GA.
  std::printf("--- fused attention pair (1024, 64, 1024, 64): principles vs DAT ---\n");
  FusedPair pair = FusedPair::make(1024, 64, 1024, 64);
  const double fused_ideal = static_cast<double>(pair.ideal_min_access());
  TextTable table({"buffer", "principles", "DAT-GA", "exhaustive"});
  for (std::int64_t kb = 32; kb <= 32 * 1024; kb *= 4) {
    const BufferSize bs = kb * 1024 / 2;
    auto ours = optimize_fused_pair(pair, bs);
    auto ga = dat.optimize_pair(pair, bs);
    auto exact = exhaustive_fused(pair, bs);
    char ours_s[32], ga_s[32], exact_s[32];
    std::snprintf(ours_s, sizeof(ours_s), "%.4f",
                  ours ? static_cast<double>(ours->access.total) / fused_ideal : -1.0);
    std::snprintf(ga_s, sizeof(ga_s), "%.4f",
                  ga ? static_cast<double>(ga->access.total) / fused_ideal : -1.0);
    std::snprintf(exact_s, sizeof(exact_s), "%.4f",
                  exact ? static_cast<double>(exact->access.total) / fused_ideal : -1.0);
    table.add_row({format_bytes(kb * 1024), ours_s, ga_s, exact_s});
  }
  table.print(std::cout);

  // End-to-end planning: whole BERT-layer chains, principle planner vs the
  // DAT reconstruction (searched costs + the same partitioning DP).
  std::printf("\n--- whole-layer chains: principle planner vs DAT planner ---\n");
  TextTable chains({"chain", "buffer", "principles MA", "DAT MA", "both fuse?"});
  for (const WorkloadChain& chain : lower_layer(table2_models()[0])) {
    if (chain.graph.num_ops() < 2) continue;
    for (std::int64_t kb : {128, 512}) {
      const BufferSize bs = kb * 1024 / 2;
      FusionPlan ours = plan_chain(chain.graph, bs, PlannerPolicy::kPrinciple4);
      FusionPlan theirs = dat.plan_chain(chain.graph, bs);
      chains.add_row({chain.label, format_bytes(kb * 1024), format_count(ours.total_access),
                      format_count(theirs.total_access),
                      ours.fused_pair_count() == theirs.fused_pair_count() ? "yes" : "NO"});
    }
  }
  chains.print(std::cout);
  std::printf("expected: the one-shot planner never exceeds the searched plan and both\n"
              "reach the same fusion decisions at these buffer sizes.\n");
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  try {
    fusecu::ArgParser args({}, {"--seed"});
    args.parse(argc, argv);
    fusecu::run(args.option_uint64("--seed", 0x5eed));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
