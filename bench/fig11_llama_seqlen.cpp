/// \file fig11_llama_seqlen.cpp
/// Regenerates Fig. 11: LLaMA2 normalized memory access and utilization
/// across sequence lengths 256 .. 16K on the five platforms.  Expected
/// shape: FuseCU's memory-access reduction *grows* with sequence length
/// (the attention intermediate scales as s^2 while external tensors scale
/// as s), and utilization stays robust at both ends.

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "workloads/model_eval.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

void run() {
  std::printf("=== Fig. 11: LLaMA2 across sequence lengths (256 .. 16K) ===\n");
  std::printf("(memory access normalized to TPUv4i at the same sequence length)\n\n");

  std::vector<ArchSpec> platforms = all_platforms();
  TextTable ma({"seq", "TPUv4i", "Gemmini", "Planaria", "UnfCU", "FuseCU", "FuseCU saving"});
  TextTable util({"seq", "TPUv4i", "Gemmini", "Planaria", "UnfCU", "FuseCU"});
  for (Index seq = 256; seq <= 16384; seq *= 2) {
    ModelConfig model = llama2_at_seq(seq);
    std::vector<ModelEval> evals;
    for (const ArchSpec& a : platforms) evals.push_back(evaluate_model(model, a));
    const double base = static_cast<double>(evals[0].access);

    std::vector<double> ma_vals, util_vals;
    for (const ModelEval& e : evals) {
      ma_vals.push_back(static_cast<double>(e.access) / base);
      util_vals.push_back(e.utilization);
    }
    ma_vals.push_back(1.0 - static_cast<double>(evals.back().access) / base);
    ma.add_row_numeric(std::to_string(seq), ma_vals, 3);
    util.add_row_numeric(std::to_string(seq), util_vals, 3);
  }
  std::printf("--- normalized memory access ---\n");
  ma.print(std::cout);
  std::printf("\n--- utilization ---\n");
  util.print(std::cout);
  std::printf("\nExpected: the FuseCU saving column increases with sequence length\n"
              "(greater memory-access reduction for longer sequences, Sec. V-C).\n");
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  fusecu::run();
  return 0;
}
