/// \file ablation_hierarchy.cpp
/// Two-level hierarchy ablation: compose the principles at the
/// DRAM <-> buffer level and the buffer <-> register level (Sec. IV's
/// "BS corresponds to the register size now") and sweep both capacities.
/// Shows (a) buffer-level traffic dwarfs DRAM traffic — the register-level
/// regime matters even when the DRAM side is already optimal — and (b) how
/// array size moves the inner regime across the 2N boundary.

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "principles/two_level.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

void run() {
  std::printf("=== Two-level hierarchy ablation ===\n\n");
  const struct {
    const char* name;
    Index m, k, l;
  } ops[] = {
      {"BERT proj (16384x768x768)", 16384, 768, 768},
      {"attention score (1024x64x1024)", 1024, 64, 1024},
  };

  for (const auto& o : ops) {
    TensorOp op = TensorOp::matmul(o.name, o.m, o.k, o.l);
    const std::int64_t buffer_bytes = 4ll * 1024 * 1024;
    std::printf("--- %s, buffer = %s ---\n", o.name, format_bytes(buffer_bytes).c_str());
    TextTable t({"array", "registers", "DRAM traffic", "buffer traffic", "inner regime",
                 "buffer/DRAM"});
    for (Index n = 32; n <= 256; n *= 2) {
      TwoLevelResult r = optimize_two_level(op, buffer_bytes / 2, n * n);
      char ratio[16];
      std::snprintf(ratio, sizeof(ratio), "%.1f",
                    static_cast<double>(r.buffer_traffic) /
                        static_cast<double>(r.dram_traffic));
      t.add_row({std::to_string(n) + "x" + std::to_string(n), std::to_string(n * n),
                 format_count(r.dram_traffic), format_count(r.buffer_traffic),
                 to_string(r.inner.nra), ratio});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf("The buffer<->register level moves 60-400x more elements than DRAM, which\n"
              "is why the register-level principles (Sec. IV) matter for energy even when\n"
              "the DRAM side is already optimal.  The inner regime crosses Two->Three-NRA\n"
              "as N^2 clears the 2N rule; once it reaches Three-NRA the inner traffic is\n"
              "the per-tile ideal and stops improving with array size.\n");
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  fusecu::run();
  return 0;
}
