/// \file ablation_fidelity.cpp
/// Model-fidelity ablation: the Fig. 10 speedups under the roofline
/// aggregation vs the tile-schedule replay (double-buffered DMA/compute
/// timeline).  Quantifies deviation 3 of EXPERIMENTS.md: how much of the
/// speedup overshoot comes from the roofline's perfect-overlap assumption.

#include <cstdio>
#include <iostream>

#include "common/math_util.hpp"
#include "common/table.hpp"
#include "sim/fidelity.hpp"
#include "workloads/transformer.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

struct ModelCycles {
  CycleCount roofline = 0;
  CycleCount timeline = 0;
};

ModelCycles evaluate(const ModelConfig& model, const ArchSpec& arch) {
  ModelCycles total;
  for (const WorkloadChain& chain : lower_layer(model)) {
    ArchPlan plan = plan_chain_for_arch(chain.graph, arch);
    FidelityPerf f = evaluate_plan_fidelity(chain.graph, plan, arch, chain.count);
    total.roofline += f.roofline_cycles;
    total.timeline += f.timeline_cycles;
    if (plan.fused_pair_count() == 0 && chain.unfused_intermediate_penalty > 0) {
      const CycleCount extra = static_cast<CycleCount>(
          static_cast<double>(chain.unfused_intermediate_penalty * chain.count) *
          arch.bytes_per_element / arch.bandwidth_bytes_per_cycle);
      total.roofline += extra;
      total.timeline += extra;
    }
  }
  return total;
}

void run() {
  std::printf("=== Fidelity ablation: roofline vs tile-schedule replay ===\n\n");
  TextTable t({"Model", "speedup vs TPUv4i (roofline)", "speedup vs TPUv4i (replay)",
               "TPUv4i overlap gap", "FuseCU overlap gap"});
  std::vector<double> roofline_speedups, replay_speedups;
  for (const ModelConfig& m : table2_models()) {
    ModelCycles tpu = evaluate(m, make_tpu_v4i());
    ModelCycles fcu = evaluate(m, make_fusecu());
    const double roofline = static_cast<double>(tpu.roofline) / static_cast<double>(fcu.roofline);
    const double replay = static_cast<double>(tpu.timeline) / static_cast<double>(fcu.timeline);
    roofline_speedups.push_back(roofline);
    replay_speedups.push_back(replay);
    char a[16], b[16], c[16], d[16];
    std::snprintf(a, sizeof(a), "%.2fx", roofline);
    std::snprintf(b, sizeof(b), "%.2fx", replay);
    std::snprintf(c, sizeof(c), "%.3f",
                  static_cast<double>(tpu.timeline) / static_cast<double>(tpu.roofline));
    std::snprintf(d, sizeof(d), "%.3f",
                  static_cast<double>(fcu.timeline) / static_cast<double>(fcu.roofline));
    t.add_row({m.name, a, b, c, d});
  }
  t.print(std::cout);
  std::printf("\naverage speedup: roofline %.2fx, replay %.2fx  [paper: 1.33x]\n",
              arith_mean(roofline_speedups), arith_mean(replay_speedups));
  std::printf("The replay charges startup skew and per-iteration imbalance the roofline\n"
              "ignores (the per-model overlap gaps above); it trims the overshoot only\n"
              "slightly -- most of the residual gap vs the paper's 1.33x comes from the\n"
              "compute/bandwidth balance point, not from overlap modelling (see the\n"
              "bandwidth sensitivity note in DESIGN.md Sec. 5.6).\n");
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  fusecu::run();
  return 0;
}
