/// \file ablation_scheduling.cpp
/// Scheduling ablation: ganged execution (all four compute units on one
/// operator, the Fig. 10 aggregation) versus job-level scheduling (each
/// per-head instance on one unit, four heads in flight, LPT-balanced,
/// shared DMA).  Job-level scheduling is how multi-tenant arrays like
/// Planaria actually run small operators; the comparison shows when the
/// distinction matters.

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "sim/cu_scheduler.hpp"
#include "sim/perf_model.hpp"
#include "workloads/transformer.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

void run() {
  std::printf("=== Scheduling ablation: ganged vs per-unit job scheduling ===\n\n");
  TextTable t({"model", "chain", "copies", "ganged cycles", "per-unit cycles", "balance",
               "per-unit / ganged"});
  for (const ModelConfig& m : {table2_models()[0], table2_models()[5]}) {  // BERT, LLaMA2
    for (const ArchSpec& arch : {make_fusecu()}) {
      for (const WorkloadChain& chain : lower_layer(m)) {
        ArchPlan plan = plan_chain_for_arch(chain.graph, arch);
        PlanPerf ganged = evaluate_plan_perf(plan, arch, chain.count);
        CuScheduleResult per_unit = schedule_plan_per_unit(plan, arch, chain.count);
        char balance[16], ratio[16];
        std::snprintf(balance, sizeof(balance), "%.3f", per_unit.load_balance());
        std::snprintf(ratio, sizeof(ratio), "%.2f",
                      static_cast<double>(per_unit.makespan) /
                          static_cast<double>(ganged.cycles));
        t.add_row({m.name, chain.label, std::to_string(chain.count),
                   std::to_string(ganged.cycles), std::to_string(per_unit.makespan), balance,
                   ratio});
      }
    }
  }
  t.print(std::cout);
  std::printf("\nWhen many identical per-head jobs exist, per-unit scheduling matches the\n"
              "ganged model (same aggregate throughput, perfectly balanced); single big\n"
              "operators see the ganged model's intra-operator parallelism instead.\n");
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  fusecu::run();
  return 0;
}
