/// \file ablation_fusion_profit.cpp
/// Design-choice ablations behind Principles 1-4:
///
///  1. The Single/Two-NRA shift point: sweeping buffer size across
///     D_min^2/4 .. D_min^2/2 and reporting which regime the optimizer
///     realizes (Sec. III-A4's shift band).
///  2. Principle 4 prediction accuracy: same-regime prediction vs measured
///     fusion profitability across shapes and buffer sizes, including the
///     deep-tiny corner where attention-shaped fusion stops paying
///     (documented deviation, see EXPERIMENTS.md).
///  3. Fusion profit vs buffer size for the attention pair: where each
///     fused pattern (tile fusion / untile / resident) takes over.

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "fusion/fusion_principles.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

void shift_point_sweep() {
  std::printf("--- ablation 1: Single->Two-NRA shift band (op 4096 x 256 x 4096) ---\n");
  TensorOp op = TensorOp::matmul("shift", 4096, 256, 4096);
  const Index dmin2 = 256 * 256;
  TextTable t({"buffer (elems)", "BS / Dmin^2", "class", "realized regime", "rule"});
  for (double frac : {0.10, 0.20, 0.25, 0.30, 0.40, 0.50, 0.60, 1.00}) {
    const BufferSize bs = static_cast<BufferSize>(frac * dmin2);
    IntraOptResult r = optimize_intra(op, bs);
    char frac_s[16];
    std::snprintf(frac_s, sizeof(frac_s), "%.2f", frac);
    t.add_row({std::to_string(bs), frac_s, to_string(r.buffer_class), to_string(r.nra),
               r.rule});
  }
  t.print(std::cout);
  std::printf("expected: the regime flips from Single- to Two-NRA inside [0.25, 0.50].\n\n");
}

void principle4_accuracy() {
  std::printf("--- ablation 2: Principle 4 prediction vs measured profitability ---\n");
  const struct {
    const char* name;
    Index m, k, l, n;
  } pairs[] = {
      {"attention (1024,64)", 1024, 64, 1024, 64},
      {"attention (4096,128)", 4096, 128, 4096, 128},
      {"ffn-ish", 4096, 768, 3072, 768},
      {"square", 512, 512, 512, 512},
      {"asymmetric", 64, 4096, 64, 8},
  };
  int agree = 0, total = 0;
  TextTable t({"pair", "buffer", "same regime?", "profitable?", "agree"});
  for (const auto& p : pairs) {
    FusedPair pair = FusedPair::make(p.m, p.k, p.l, p.n);
    for (std::int64_t kb : {32, 128, 512, 2048, 8192}) {
      const BufferSize bs = kb * 1024 / 2;
      FusionDecision d = decide_fusion(pair, bs);
      // Principle 4's claim: same regime -> fusing does not lose.
      const bool weakly_profitable = d.fusable && d.fused_ma <= d.unfused_ma;
      const bool ok = d.principle4_predicts == weakly_profitable ||
                      (d.principle4_predicts && weakly_profitable);
      agree += ok ? 1 : 0;
      ++total;
      t.add_row({p.name, format_bytes(kb * 1024), d.principle4_predicts ? "yes" : "no",
                 !d.fusable ? "n/a" : (d.profitable ? "yes" : (weakly_profitable ? "tie" : "no")),
                 ok ? "." : "MISS"});
    }
  }
  t.print(std::cout);
  std::printf("prediction agreement: %d / %d\n\n", agree, total);
}

void fusion_profit_sweep() {
  std::printf("--- ablation 3: attention-pair fused patterns across buffer sizes ---\n");
  FusedPair pair = FusedPair::make(1024, 64, 1024, 64);
  TextTable t({"buffer", "unfused MA", "fused MA", "saving", "winning pattern"});
  for (std::int64_t kb = 8; kb <= 32 * 1024; kb *= 4) {
    const BufferSize bs = kb * 1024 / 2;
    FusionDecision d = decide_fusion(pair, bs);
    char saving[16];
    std::snprintf(saving, sizeof(saving), "%5.1f%%",
                  d.fusable ? 100.0 * (1.0 - static_cast<double>(d.fused_ma) /
                                                 static_cast<double>(d.unfused_ma))
                            : 0.0);
    t.add_row({format_bytes(kb * 1024), format_count(d.unfused_ma),
               d.fusable ? format_count(d.fused_ma) : "-", saving,
               d.fused ? d.fused->chosen.rule : "-"});
  }
  t.print(std::cout);
  std::printf("expected: tile fusion in small buffers, untile patterns in the middle,\n"
              "resident-C at the top; saving grows with buffer until it saturates.\n");
}

void register_level_2n() {
  std::printf("--- ablation 4: the 2N rule at the register level (Sec. IV-B) ---\n");
  std::printf("With BS = N^2 PE registers, untiling (Two-/Three-NRA) should be optimal\n"
              "exactly when D_min < 2N; FuseCU therefore sizes its untiled-dimension\n"
              "support at 2N.  N = 128 -> threshold 256.\n\n");
  const Index array_n = 128;
  const BufferSize registers = array_n * array_n;
  TextTable t({"D_min", "D_min / 2N", "realized regime", "untiled dim used"});
  for (Index dmin : {Index{64}, Index{128}, Index{192}, Index{255}, Index{256}, Index{320},
                     Index{512}, Index{1024}}) {
    TensorOp op = TensorOp::matmul("reg", 4096, dmin, 4096);
    IntraOptResult r = optimize_intra(op, registers);
    bool untiled = false;
    for (int d = 0; d < 3; ++d) untiled = untiled || r.dataflow.untiled(op, d);
    char frac[16];
    std::snprintf(frac, sizeof(frac), "%.2f", static_cast<double>(dmin) / (2.0 * array_n));
    t.add_row({std::to_string(dmin), frac, to_string(r.nra), untiled ? "yes" : "no"});
  }
  t.print(std::cout);
  std::printf("expected: untiling is guaranteed below sqrt(2)*N ~ 181, impossible above\n"
              "2N = 256, and flips somewhere in between (the Sec. III-A4 ambiguity band);\n"
              "2N is thus the upper bound FuseCU's adaptive array sizing must support.\n");
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  std::printf("=== Ablations: principles and fusion profitability ===\n\n");
  fusecu::shift_point_sweep();
  fusecu::principle4_accuracy();
  fusecu::fusion_profit_sweep();
  fusecu::register_level_2n();
  return 0;
}
