/// \file ablation_flexibility.cpp
/// Contribution waterfall: how much of FuseCU's gain comes from each
/// architecture attribute (Table III), measured by walking the platform
/// ladder TPUv4i -> +stationary flexibility (Gemmini) -> +tiling
/// flexibility (UnfCU) -> +tensor fusion (FuseCU) on every Table II model,
/// plus a buffer-size sensitivity sweep of the headline saving.

#include <cstdio>
#include <iostream>

#include "common/math_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "workloads/model_eval.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

void waterfall() {
  std::printf("--- attribute waterfall: normalized memory access per model ---\n");
  TextTable t({"Model", "TPUv4i (base)", "+stationary (Gemmini)", "+tiling (UnfCU)",
               "+fusion (FuseCU)"});
  for (const ModelConfig& m : table2_models()) {
    const double base = static_cast<double>(evaluate_model(m, make_tpu_v4i()).access);
    std::vector<double> vals = {
        1.0,
        static_cast<double>(evaluate_model(m, make_gemmini()).access) / base,
        static_cast<double>(evaluate_model(m, make_unfcu()).access) / base,
        static_cast<double>(evaluate_model(m, make_fusecu()).access) / base,
    };
    t.add_row_numeric(m.name, vals, 3);
  }
  t.print(std::cout);
  std::printf("\n");
}

void buffer_sensitivity() {
  std::printf("--- buffer-size sensitivity of the headline saving (avg of Table II) ---\n");
  TextTable t({"buffer", "FuseCU vs TPUv4i", "FuseCU vs Planaria", "UnfCU vs TPUv4i"});
  for (std::int64_t kb = 64; kb <= 8 * 1024; kb *= 2) {
    std::vector<double> vs_tpu, vs_pla, unf_vs_tpu;
    for (const ModelConfig& m : table2_models()) {
      const double tpu = static_cast<double>(evaluate_model(m, make_tpu_v4i(kb * 1024)).access);
      const double pla = static_cast<double>(evaluate_model(m, make_planaria(kb * 1024)).access);
      const double unf = static_cast<double>(evaluate_model(m, make_unfcu(kb * 1024)).access);
      const double fcu = static_cast<double>(evaluate_model(m, make_fusecu(kb * 1024)).access);
      vs_tpu.push_back(1.0 - fcu / tpu);
      vs_pla.push_back(1.0 - fcu / pla);
      unf_vs_tpu.push_back(1.0 - unf / tpu);
    }
    char a[16], b[16], c[16];
    std::snprintf(a, sizeof(a), "%5.1f%%", 100.0 * arith_mean(vs_tpu));
    std::snprintf(b, sizeof(b), "%5.1f%%", 100.0 * arith_mean(vs_pla));
    std::snprintf(c, sizeof(c), "%5.1f%%", 100.0 * arith_mean(unf_vs_tpu));
    t.add_row({format_bytes(kb * 1024), a, b, c});
  }
  t.print(std::cout);
  std::printf("(the 512 KB row is the calibration point reported by bench/fig10)\n");
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  std::printf("=== Ablation: where FuseCU's gains come from ===\n\n");
  fusecu::waterfall();
  fusecu::buffer_sensitivity();
  return 0;
}
