/// \file plan_throughput.cpp
/// Planning-service throughput: requests/sec for a 64-request mixed matmul
/// batch, comparing
///
///   * serial-cold   — optimize_intra per request, no cache, one thread
///                     (the pre-service baseline every tool used to pay);
///   * pooled-warm/T — PlanService::plan_batch on T worker threads with the
///                     sharded cache warm (the steady state of a server);
///   * pooled-warm obs-disabled / obs-armed — the same warm batch with the
///                     observability layer idle (CI guards this within 5% of
///                     pooled-warm) and with the flight recorder armed.
///
/// The batch mixes 16 distinct transformer-derived shapes x 4 repeats, so
/// even the cold pass has intra-batch repetition — exactly the workload the
/// canonicalizer + cache are built for.  Items processed = requests, so
/// google-benchmark's items_per_second column reads as requests/sec.

#include <benchmark/benchmark.h>

#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/obs_session.hpp"
#include "principles/principle_optimizer.hpp"
#include "serve/plan_service.hpp"

namespace fusecu {
namespace {

constexpr BufferSize kBs = 512 * 1024 / 2;  // 512 KB bf16

/// 16 distinct shapes x 4 repeats = the 64-request mixed batch.
std::vector<PlanRequest> mixed_batch() {
  const struct {
    Index m, k, l;
  } shapes[] = {
      {16384, 768, 768},  {1024, 64, 1024},   {4096, 128, 4096}, {65536, 4096, 16384},
      {1024, 768, 768},   {512, 512, 512},    {2048, 512, 512},  {512, 512, 2048},
      {8192, 1024, 1024}, {1024, 1024, 8192}, {256, 4096, 256},  {4096, 4096, 4096},
      {128, 128, 16384},  {16384, 128, 128},  {768, 3072, 768},  {3072, 768, 3072},
  };
  std::vector<PlanRequest> batch;
  int id = 0;
  for (int repeat = 0; repeat < 4; ++repeat) {
    for (const auto& s : shapes) {
      PlanRequest request;
      request.id = 'r' + std::to_string(id++);
      request.m = s.m;
      request.k = s.k;
      request.l = s.l;
      request.buffer_elems = kBs;
      batch.push_back(request);
    }
  }
  return batch;
}

void BM_SerialCold(benchmark::State& state) {
  const std::vector<PlanRequest> batch = mixed_batch();
  for (auto _ : state) {
    for (const PlanRequest& request : batch) {
      benchmark::DoNotOptimize(optimize_intra(request.to_op(), request.buffer_elems).access.total);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_SerialCold);

void BM_PooledWarm(benchmark::State& state) {
  ServeOptions options;
  options.threads = static_cast<int>(state.range(0));
  PlanService service(options);
  const std::vector<PlanRequest> batch = mixed_batch();
  service.plan_batch(batch);  // warm the cache
  for (auto _ : state) {
    std::vector<PlanResponse> responses = service.plan_batch(batch);
    benchmark::DoNotOptimize(responses.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_PooledWarm)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Warm pooled batch with the observability layer compiled in but idle:
/// no span sink, logger below threshold, flight recorder disarmed.  This is
/// the configuration every production run pays, so CI guards it against
/// BM_PooledWarm — the instrumented warm path must stay within 5%.
void BM_PooledWarmObsDisabled(benchmark::State& state) {
  Logger::global().reset();
  FlightRecorder::global().disarm();
  ServeOptions options;
  options.threads = static_cast<int>(state.range(0));
  PlanService service(options);
  const std::vector<PlanRequest> batch = mixed_batch();
  service.plan_batch(batch);  // warm the cache
  for (auto _ : state) {
    std::vector<PlanResponse> responses = service.plan_batch(batch);
    benchmark::DoNotOptimize(responses.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_PooledWarmObsDisabled)->Arg(4)->UseRealTime();

/// Same warm batch with everything armed: spans recorded into the flight
/// recorder rings, logger mirroring at info.  Bounds what --flight-out
/// costs a live server (retention only; no I/O on the hot path).
void BM_PooledWarmObsArmed(benchmark::State& state) {
  FlightRecorder::global().arm();
  ServeOptions options;
  options.threads = static_cast<int>(state.range(0));
  PlanService service(options);
  const std::vector<PlanRequest> batch = mixed_batch();
  service.plan_batch(batch);  // warm the cache
  for (auto _ : state) {
    std::vector<PlanResponse> responses = service.plan_batch(batch);
    benchmark::DoNotOptimize(responses.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
  FlightRecorder::global().disarm();
}
BENCHMARK(BM_PooledWarmObsArmed)->Arg(4)->UseRealTime();

/// Cold batch through the pool (cache cleared by rebuilding the service):
/// what parallelism alone buys before the cache kicks in.
void BM_PooledCold(benchmark::State& state) {
  const std::vector<PlanRequest> batch = mixed_batch();
  for (auto _ : state) {
    state.PauseTiming();
    ServeOptions options;
    options.threads = static_cast<int>(state.range(0));
    auto service = std::make_unique<PlanService>(options);
    state.ResumeTiming();
    std::vector<PlanResponse> responses = service->plan_batch(batch);
    benchmark::DoNotOptimize(responses.data());
    state.PauseTiming();
    service.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_PooledCold)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace fusecu

// Expanded BENCHMARK_MAIN so the shared --metrics-out/--trace-out flags are
// stripped before google-benchmark's strict argument check sees them.
int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
