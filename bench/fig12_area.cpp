/// \file fig12_area.cpp
/// Regenerates Fig. 12: the 28nm area breakdown of FuseCU and its
/// overheads.  Expected: FuseCU costs ~12.0% over the TPUv4i baseline,
/// dominated by the XS PE logic, with the resize interconnect and fusion
/// control together below 0.1% — versus Planaria's 12.6% interconnect-only
/// overhead.

#include <cstdio>
#include <iostream>

#include "arch/area_model.hpp"
#include "common/table.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

void run() {
  std::printf("=== Fig. 12: area breakdown at 28nm (analytical model) ===\n\n");

  for (const ArchSpec& arch : all_platforms()) {
    AreaBreakdown b = area_breakdown(arch);
    std::printf("--- %s: total %.3f mm^2, overhead vs baseline %.2f%% ---\n",
                b.platform.c_str(), b.total_um2() / 1e6, 100.0 * b.overhead_fraction());
    TextTable t({"component", "area (mm^2)", "share", "overhead?"});
    for (const AreaComponent& c : b.components) {
      char area_s[32], share_s[32];
      std::snprintf(area_s, sizeof(area_s), "%.4f", c.area_um2 / 1e6);
      std::snprintf(share_s, sizeof(share_s), "%6.3f%%", 100.0 * c.area_um2 / b.total_um2());
      t.add_row({c.name, area_s, share_s, c.is_overhead ? "yes" : ""});
    }
    t.print(std::cout);
    std::printf("\n");
  }

  AreaBreakdown fcu = area_breakdown(make_fusecu());
  std::printf("--- headline (paper values in brackets) ---\n");
  std::printf("FuseCU area increase over TPUv4i          : %5.2f%%  [12.0%%]\n",
              100.0 * fcu.overhead_fraction());
  std::printf("FuseCU interconnect + fusion control share: %6.4f%%  [<0.1%%]\n",
              100.0 * (fcu.component_fraction("FuseCU interconnect") +
                       fcu.component_fraction("fusion control")));
  std::printf("Planaria interconnect overhead            : %5.2f%%  [12.6%%]\n",
              100.0 * area_breakdown(make_planaria()).overhead_fraction());
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  fusecu::run();
  return 0;
}
