/// \file ablation_optimizer_speed.cpp
/// Google-benchmark timing ablation for the paper's problem statement
/// (Sec. I): searching-based DSE "is time-consuming" while the principles
/// give the optimum analytically in one shot.  Measures wall time of the
/// principle optimizer vs exhaustive grid search vs the DAT-style GA, on
/// intra-operator and fused-pair problems — plus the plan-service cache,
/// which beats even the one-shot construction on repeated shapes.
///
/// --seed N sets the GA seed (default 42) for run-to-run reproducibility.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "obs/obs_session.hpp"
#include "principles/principle_optimizer.hpp"
#include "search/dat_optimizer.hpp"
#include "serve/plan_service.hpp"

namespace fusecu {
namespace {

constexpr BufferSize kBs = 512 * 1024 / 2;  // the evaluation buffer (512 KB bf16)

std::uint64_t g_seed = 42;

TensorOp bench_op() { return TensorOp::matmul("bench", 16384, 768, 768); }

void BM_PrincipleOptimizer(benchmark::State& state) {
  TensorOp op = bench_op();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_intra(op, kBs).access.total);
  }
}
BENCHMARK(BM_PrincipleOptimizer);

void BM_ExhaustiveSearch(benchmark::State& state) {
  TensorOp op = bench_op();
  for (auto _ : state) {
    benchmark::DoNotOptimize(exhaustive_intra(op, kBs)->access.total);
  }
}
BENCHMARK(BM_ExhaustiveSearch);

void BM_GeneticSearch(benchmark::State& state) {
  TensorOp op = bench_op();
  GaParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ga_intra(op, kBs, params, g_seed)->access.total);
  }
}
BENCHMARK(BM_GeneticSearch);

/// The serving path on a repeated shape: canonical key + sharded LRU hit.
/// This is what a second identical request costs once the service is warm.
void BM_PlanServiceCachedLookup(benchmark::State& state) {
  ServeOptions options;
  options.threads = 1;
  PlanService service(options);
  TensorOp op = bench_op();
  service.plan_intra(op, kBs);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.plan_intra(op, kBs).result.access.total);
  }
}
BENCHMARK(BM_PlanServiceCachedLookup);

void BM_FusedPrinciples(benchmark::State& state) {
  FusedPair pair = FusedPair::make(1024, 64, 1024, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_fused_pair(pair, kBs)->access.total);
  }
}
BENCHMARK(BM_FusedPrinciples);

void BM_FusedExhaustive(benchmark::State& state) {
  FusedPair pair = FusedPair::make(1024, 64, 1024, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exhaustive_fused(pair, kBs)->access.total);
  }
}
BENCHMARK(BM_FusedExhaustive);

void BM_FusedGenetic(benchmark::State& state) {
  FusedPair pair = FusedPair::make(1024, 64, 1024, 64);
  GaParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ga_fused(pair, kBs, params, g_seed)->access.total);
  }
}
BENCHMARK(BM_FusedGenetic);

/// The access-model evaluation itself (the inner loop of any search).
void BM_AccessModelEvaluation(benchmark::State& state) {
  TensorOp op = bench_op();
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 512}, {"K", 768}, {"L", 1}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_access(op, df).total);
  }
}
BENCHMARK(BM_AccessModelEvaluation);

}  // namespace
}  // namespace fusecu

// Expanded BENCHMARK_MAIN so the shared --metrics-out/--trace-out flags are
// stripped before google-benchmark's strict argument check sees them; --seed
// is likewise extracted by hand because the remaining argv belongs to
// google-benchmark.
int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--seed") {
      fusecu::g_seed = std::strtoull(argv[i + 1], nullptr, 0);
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
