/// \file decode_inference.cpp
/// Extension bench: autoregressive decode (one generated token against a
/// KV cache).  The workload degenerates to skinny GEMV-shaped matmuls
/// (M = batch, and M = 1 per attention head), the regime the paper's
/// discussion attributes FuseCU's utilization wins to ("models with
/// smaller dimensions benefit from flexible tiling... fusion further
/// boosts utilization by consolidating small MMs").  Sweeps the KV-cache
/// length on LLaMA2 and reports MA, utilization and speedup.

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "workloads/model_eval.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

void run() {
  std::printf("=== Decode step: LLaMA2, batch 16, KV cache sweep ===\n\n");
  TextTable t({"context", "TPUv4i MA", "FuseCU MA", "MA saving", "TPUv4i util", "FuseCU util",
               "speedup"});
  ModelConfig model = llama2_at_seq(4096);
  for (Index context = 512; context <= 16384; context *= 2) {
    ModelEval tpu = evaluate_decode(model, context, make_tpu_v4i());
    ModelEval fcu = evaluate_decode(model, context, make_fusecu());
    char saving[16], ut[16], uf[16], sp[16];
    std::snprintf(saving, sizeof(saving), "%5.1f%%",
                  100.0 * (1.0 - static_cast<double>(fcu.access) /
                                     static_cast<double>(tpu.access)));
    std::snprintf(ut, sizeof(ut), "%.4f", tpu.utilization);
    std::snprintf(uf, sizeof(uf), "%.4f", fcu.utilization);
    std::snprintf(sp, sizeof(sp), "%.2fx",
                  static_cast<double>(tpu.cycles) / static_cast<double>(fcu.cycles));
    t.add_row({std::to_string(context), std::to_string(tpu.access), std::to_string(fcu.access),
               saving, ut, uf, sp});
  }
  t.print(std::cout);

  std::printf("\n--- GQA extension: LLaMA2-70B-style (64 query / 8 KV heads) ---\n");
  TextTable g({"context", "MHA-width FuseCU MA", "GQA FuseCU MA", "GQA saving"});
  for (Index context = 1024; context <= 8192; context *= 2) {
    ModelConfig gqa = llama2_70b_gqa(4096);
    ModelConfig mha = gqa;
    mha.kv_heads = 0;  // same width, classic MHA
    ModelEval e_mha = evaluate_decode(mha, context, make_fusecu());
    ModelEval e_gqa = evaluate_decode(gqa, context, make_fusecu());
    char saving[16];
    std::snprintf(saving, sizeof(saving), "%5.1f%%",
                  100.0 * (1.0 - static_cast<double>(e_gqa.access) /
                                     static_cast<double>(e_mha.access)));
    g.add_row({std::to_string(context), std::to_string(e_mha.access),
               std::to_string(e_gqa.access), saving});
  }
  g.print(std::cout);

  std::printf("\nDecode is bandwidth-bound everywhere (GEMV reuse is inherently low); the\n"
              "gap comes from weight/KV traffic the flexible dataflow avoids re-reading.\n");
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  fusecu::run();
  return 0;
}
