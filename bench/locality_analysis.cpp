/// \file locality_analysis.cpp
/// Extension bench: DRAM locality of the optimized schedules.  The access
/// model counts elements; the address-stream + row-buffer replay adds the
/// *order* dimension: row-hit rates and effective DRAM cycles for the
/// principle-optimized dataflow of representative operators, against a
/// deliberately column-strided strawman of identical traffic volume.

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "principles/principle_optimizer.hpp"
#include "sim/dram_model.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

void run() {
  std::printf("=== DRAM locality of optimized schedules (extension) ===\n");
  std::printf("(open-page model: %lld-element rows, 8 banks)\n\n", 1024LL);

  const struct {
    const char* name;
    Index m, k, l;
    BufferSize bs;
  } cases[] = {
      {"attention score (1024x64x1024)", 1024, 64, 1024, 64 * 1024},
      {"proj tile (512x256x512)", 512, 256, 512, 64 * 1024},
      {"FFN tile (512x256x1024)", 512, 256, 1024, 64 * 1024},
  };

  TextTable t({"operator", "schedule", "accesses", "row-hit rate", "DRAM cycles"});
  for (const auto& c : cases) {
    TensorOp op = TensorOp::matmul(c.name, c.m, c.k, c.l);
    IntraOptResult opt = optimize_intra(op, c.bs);
    DramStats principled = dram_stats(op, opt.dataflow);

    // Strawman: same buffer, worst-case column-strided walk (unit L tiles,
    // L outermost) — legal, similar volume, terrible order.
    Dataflow strawman = make_dataflow(
        op, {"L", "K", "M"},
        {{"M", std::min<Index>(c.m, 64)}, {"K", std::min<Index>(c.k, 64)}, {"L", 1}});
    DramStats strided = dram_stats(op, strawman);

    char hit1[16], hit2[16];
    std::snprintf(hit1, sizeof(hit1), "%5.1f%%", 100.0 * principled.hit_rate());
    std::snprintf(hit2, sizeof(hit2), "%5.1f%%", 100.0 * strided.hit_rate());
    t.add_row({c.name, "principled", format_count(principled.accesses), hit1,
               format_count(principled.cycles)});
    t.add_row({"", "column-strided", format_count(strided.accesses), hit2,
               format_count(strided.cycles)});
  }
  t.print(std::cout);
  std::printf("\nFinding: the column-strided strawman actually enjoys a *higher* row-hit\n"
              "rate -- it re-walks one hot tile forever -- yet pays ~10x the DRAM cycles\n"
              "because it moves 50-100x more elements.  Traffic volume dominates\n"
              "locality; and the communication-minimal schedules often walk tall\n"
              "column tiles (T_L = 1), so a deployment should co-design tensor layout\n"
              "(e.g. transpose B) with the chosen dataflow to recover burst locality\n"
              "on top of the optimal volume.\n");
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  fusecu::run();
  return 0;
}
