/// \file serve_loadgen.cpp
/// Open-loop load generator for the fusecu_serve TCP mode (src/net).
///
///   serve_loadgen --connect HOST:PORT [--connections N] [--threads T]
///                 [--requests N] [--qps TARGET] [--distinct N]
///                 [--retry-sheds] [--recv-timeout-ms MS] [--port-file FILE]
///                 [--bench-out BENCH_serve_loadgen.json]
///
/// Opens N connections spread over T client threads (default: one thread
/// per connection; with T < N each thread multiplexes its share of the
/// connections over one poll loop, so hundreds of connections don't need
/// hundreds of client threads).  `--requests` planning requests are split
/// across the connections and the pipelined responses read back.  With
/// --qps the sends are paced open-loop against the wall clock — a send
/// happens when its scheduled time arrives whether or not earlier responses
/// have come back, so a slow server grows queueing delay instead of
/// silently slowing the offered load (the coordinated-omission trap).
/// --qps 0 (default) sends as fast as the sockets accept.
///
/// Every request carries id "c<conn>-<seq>".  Responses on a connection
/// must come back exactly in the order the requests were sent (the server
/// contract, regardless of how many reactors serve the socket) — checked
/// against a per-connection FIFO of sent ids, so retried requests are
/// covered too; each mismatch counts as out_of_order, and requests still
/// unanswered when the stream ends (or --recv-timeout-ms passes with no
/// progress) count as lost.  The exit status is non-zero when anything was
/// lost or reordered, or when a connection could not be established; a
/// server that is not listening at all is detected by a pre-flight probe
/// connection and reported on stderr with exit status 2 before any load is
/// offered.
///
/// --retry-sheds makes the generator a well-behaved overload client: an
/// ok=false "overloaded" response is retried instead of being dropped,
/// honoring the server's `retry_after_ms` brownout hint with capped
/// exponential backoff (hint << attempt, capped at 1 s) plus deterministic
/// per-connection jitter (<= 25%, seeded by the connection index — runs are
/// reproducible).  After 5 attempts the shed is accepted as final.  The
/// summary gains shed_retried= and sheds_with_hint= so the brownout
/// contract (every shed carries a hint) is visible from the client side.
///
/// Output: one merged summary line with exact latency percentiles (sorted
/// send-to-response times, not histogram buckets), preceded by one line
/// per client thread so per-thread skew is visible:
///
///   thread 0: conns=4 responses=2500 p50=91 p95=204 p99=361
///   thread 1: conns=4 responses=2500 p50=94 p95=215 p99=377
///   serve_loadgen: requests=5000 responses=5000 achieved_qps=48210.7
///       errors=0 shed=0 shed_retried=0 sheds_with_hint=0 lost=0 out_of_order=0
///   latency_us: p50=92 p95=210 p99=368 max=1204
///
/// --bench-out records the merged numbers in the repo's perf-trajectory
/// format (CI archives BENCH_serve_loadgen.json).
///
/// Request shapes cycle through --distinct variants so the server's plan
/// cache sees a realistic hit/miss mix; "--distinct 1" measures the pure
/// cache-hit fast path.

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "net/socket.hpp"
#include "obs/obs_session.hpp"

using namespace fusecu;

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t us_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start).count();
}

/// One connection's tallies; `latencies_us` is merged per-thread and then
/// globally after the threads join.
struct ConnResult {
  std::int64_t sent = 0;
  std::int64_t received = 0;
  std::int64_t errors = 0;  ///< ok=false responses that are not sheds
  std::int64_t shed = 0;    ///< ok=false "overloaded" responses
  std::int64_t shed_retried = 0;    ///< sheds re-sent under --retry-sheds
  std::int64_t sheds_with_hint = 0; ///< sheds carrying retry_after_ms
  std::int64_t out_of_order = 0;
  std::int64_t lost = 0;
  std::vector<std::int64_t> latencies_us;
  /// ok=true responses only: the *served* tail, not diluted by fast sheds
  /// (the metric the brownout A/B in EXPERIMENTS.md gates on).
  std::vector<std::int64_t> ok_latencies_us;
  std::string failure;  ///< non-empty = connection-level failure
};

/// One multiplexed connection: socket, schedule, framing buffers, tallies.
struct ConnState {
  int fd = -1;
  int index = 0;  ///< global connection index — the "c<conn>-" id prefix
  std::int64_t requests = 0;
  double interval_us = 0.0;
  double phase_us = 0.0;
  std::string outbuf;
  std::size_t outbuf_off = 0;
  std::string inbuf;
  /// FIFO of in-flight requests: per-conn responses come back in send
  /// order, so the front is always the one the next response answers.
  struct Sent {
    std::string id;
    std::int64_t send_us = 0;
  };
  std::deque<Sent> in_flight;
  std::int64_t originals_sent = 0;  ///< pacing counter; excludes retries
  std::int64_t completed = 0;       ///< final answers (a retried shed is not)
  /// A shed request waiting out its backoff before being re-sent.
  struct Retry {
    std::int64_t seq = 0;
    std::int64_t due_us = 0;
    int attempt = 0;  ///< 1 on the first retry
  };
  std::deque<Retry> retries;
  std::map<std::int64_t, int> retry_attempts;  ///< seq → re-sends so far
  std::uint64_t jitter_state = 0;  ///< per-conn LCG: deterministic backoff jitter
  bool sent_all_and_flushed = false;
  bool done = false;
  std::int64_t last_progress_us = 0;
  ConnResult result;
};

/// At most this many re-sends per shed request; past it the shed is final.
constexpr int kMaxShedRetries = 5;

std::string make_request(int conn, std::int64_t seq, int distinct) {
  // A small shape family keyed off the request index: repeats within
  // `distinct` variants exercise the plan cache, the sizes stay cheap
  // enough that the pool is never the bottleneck under --qps 0.  The base
  // family has 6*6*6 = 216 combinations; past that, `--distinct N` perturbs
  // m so the family really holds N distinct shapes — a sustained cold
  // (cache-missing) flood for the brownout A/B in EXPERIMENTS.md.  Values
  // of --distinct up to 216 produce exactly the historical shapes.
  static const int kSizes[] = {128, 192, 256, 320, 384, 512};
  const std::int64_t v = distinct > 0 ? (seq % distinct) : seq;
  const int m = kSizes[v % 6] + static_cast<int>((v / 216) % 4096) * 4;
  const int k = kSizes[(v / 6) % 6];
  const int l = kSizes[(v / 36) % 6];
  std::string line = "{\"id\":\"c" + std::to_string(conn) + "-" + std::to_string(seq) +
                     "\",\"op\":\"matmul\",\"m\":" + std::to_string(m) +
                     ",\"k\":" + std::to_string(k) + ",\"l\":" + std::to_string(l) +
                     ",\"buffer\":\"512KB\"}\n";
  return line;
}

/// Pull `"key":"value"` out of a response line without a JSON parser — the
/// serializer always emits the id first and never escapes quotes in it.
std::string extract_string_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

/// `"key":123` → 123, or -1 when the key is absent / not a number.
std::int64_t extract_int_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return -1;
  std::size_t i = at + needle.size();
  std::int64_t value = 0;
  bool any = false;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    value = value * 10 + (line[i] - '0');
    any = true;
    ++i;
  }
  return any ? value : -1;
}

/// Backoff before retry `attempt` of a shed whose response hinted
/// \p retry_after_ms: capped exponential (hint << (attempt-1), <= 1 s) plus
/// deterministic per-connection jitter of up to 25%.
std::int64_t backoff_us(ConnState& conn, std::int64_t retry_after_ms, int attempt) {
  const std::int64_t base_ms = retry_after_ms > 0 ? retry_after_ms : 1;
  const int shift = std::min(attempt - 1, 10);
  const std::int64_t delay_ms = std::min<std::int64_t>(base_ms << shift, 1000);
  conn.jitter_state = conn.jitter_state * 6364136223846793005ull + 1442695040888963407ull;
  const std::int64_t jitter_pct = static_cast<std::int64_t>((conn.jitter_state >> 33) % 26);
  return delay_ms * 1000 * (100 + jitter_pct) / 100;
}

void finish_conn(ConnState& conn) {
  conn.result.lost = conn.result.sent - conn.result.received;
  if (conn.fd >= 0) {
    close_fd(conn.fd);
    conn.fd = -1;
  }
  conn.done = true;
}

/// Schedule every request of \p conn that is due (all of them when
/// unpaced).  The recorded send time is the *scheduled* instant, not the
/// moment the bytes leave — open-loop latency charges the server for our
/// own scheduling slippage instead of hiding it (coordinated omission).
void schedule_due(ConnState& conn, std::int64_t now_us, Clock::time_point start, int distinct) {
  while (conn.originals_sent < conn.requests) {
    const std::int64_t due_us =
        conn.interval_us > 0.0
            ? static_cast<std::int64_t>(
                  conn.phase_us + conn.interval_us * static_cast<double>(conn.originals_sent))
            : 0;
    if (now_us < due_us) break;
    conn.outbuf += make_request(conn.index, conn.originals_sent, distinct);
    conn.in_flight.push_back({"c" + std::to_string(conn.index) + "-" +
                                  std::to_string(conn.originals_sent),
                              conn.interval_us > 0.0 ? due_us : us_since(start)});
    ++conn.originals_sent;
    ++conn.result.sent;
  }
}

/// Re-send every shed whose backoff has elapsed.  The retry is byte-for-byte
/// the original request (same id, same shape), appended after everything
/// already queued — in_flight keeps the order contract intact.
void schedule_retries(ConnState& conn, std::int64_t now_us, Clock::time_point start,
                      int distinct) {
  for (std::size_t i = 0; i < conn.retries.size();) {
    if (conn.retries[i].due_us > now_us) {
      ++i;
      continue;
    }
    const ConnState::Retry retry = conn.retries[i];
    conn.retries.erase(conn.retries.begin() + static_cast<std::ptrdiff_t>(i));
    conn.outbuf += make_request(conn.index, retry.seq, distinct);
    conn.in_flight.push_back(
        {"c" + std::to_string(conn.index) + "-" + std::to_string(retry.seq), us_since(start)});
    ++conn.result.sent;
    ++conn.result.shed_retried;
  }
}

/// Drain writable/readable events for \p conn; marks it done on EOF, error
/// or stall.  Returns nothing — all state lives in the ConnState.
void pump_conn(ConnState& conn, short revents, Clock::time_point start,
               std::int64_t recv_timeout_ms, bool retry_sheds) {
  if ((revents & POLLOUT) && conn.outbuf.size() > conn.outbuf_off) {
    const ssize_t wrote = ::send(conn.fd, conn.outbuf.data() + conn.outbuf_off,
                                 conn.outbuf.size() - conn.outbuf_off, MSG_NOSIGNAL);
    if (wrote > 0) {
      conn.outbuf_off += static_cast<std::size_t>(wrote);
      if (conn.outbuf_off == conn.outbuf.size()) {
        conn.outbuf.clear();
        conn.outbuf_off = 0;
      }
      conn.last_progress_us = us_since(start);
    } else if (wrote < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      conn.result.failure = std::string("send: ") + std::strerror(errno);
      finish_conn(conn);
      return;
    }
  }
  // Half-close: the server answers everything already on the wire and then
  // closes, turning "done" into a clean EOF instead of a timeout.  Under
  // --retry-sheds any outstanding response may still turn into a retry we
  // would have to write, so the write side stays open until nothing is in
  // flight or pending.
  const bool nothing_left_to_send =
      retry_sheds ? (conn.originals_sent == conn.requests && conn.outbuf.empty() &&
                     conn.retries.empty() && conn.in_flight.empty())
                  : (conn.originals_sent == conn.requests && conn.outbuf.empty());
  if (!conn.sent_all_and_flushed && nothing_left_to_send) {
    ::shutdown(conn.fd, SHUT_WR);
    conn.sent_all_and_flushed = true;
  }

  bool saw_eof = false;
  if (revents & (POLLIN | POLLHUP)) {
    char chunk[64 * 1024];
    while (true) {
      const ssize_t got = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (got > 0) {
        conn.inbuf.append(chunk, static_cast<std::size_t>(got));
        conn.last_progress_us = us_since(start);
        continue;
      }
      if (got == 0) saw_eof = true;
      if (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        conn.result.failure = std::string("recv: ") + std::strerror(errno);
        saw_eof = true;
      }
      break;
    }
  }

  std::size_t line_start = 0;
  std::size_t nl;
  while ((nl = conn.inbuf.find('\n', line_start)) != std::string::npos) {
    const std::string line = conn.inbuf.substr(line_start, nl - line_start);
    line_start = nl + 1;
    const std::int64_t recv_us = us_since(start);
    std::int64_t seq = -1;
    if (!conn.in_flight.empty()) {
      const ConnState::Sent& sent = conn.in_flight.front();
      conn.result.latencies_us.push_back(recv_us - sent.send_us);
      if (line.find("\"ok\":true") != std::string::npos) {
        conn.result.ok_latencies_us.push_back(recv_us - sent.send_us);
      }
      if (extract_string_field(line, "id") != sent.id) ++conn.result.out_of_order;
      const std::size_t dash = sent.id.find('-');
      if (dash != std::string::npos) seq = std::stoll(sent.id.substr(dash + 1));
      conn.in_flight.pop_front();
    } else {
      ++conn.result.out_of_order;  // a response nothing was waiting for
    }
    bool final_answer = true;
    if (line.find("\"ok\":false") != std::string::npos) {
      if (line.find("overloaded") != std::string::npos) {
        ++conn.result.shed;
        const std::int64_t hint_ms = extract_int_field(line, "retry_after_ms");
        if (hint_ms >= 0) ++conn.result.sheds_with_hint;
        if (retry_sheds && seq >= 0) {
          int& attempts = conn.retry_attempts[seq];
          if (attempts < kMaxShedRetries) {
            ++attempts;
            conn.retries.push_back(
                {seq, recv_us + backoff_us(conn, hint_ms, attempts), attempts});
            final_answer = false;
          }
        }
      } else {
        ++conn.result.errors;
      }
    }
    if (final_answer) ++conn.completed;
    ++conn.result.received;
  }
  if (line_start > 0) conn.inbuf.erase(0, line_start);

  if (conn.completed >= conn.requests || saw_eof) {
    finish_conn(conn);
    return;
  }
  if (recv_timeout_ms > 0 && !conn.in_flight.empty() &&
      us_since(start) - conn.last_progress_us > recv_timeout_ms * 1000) {
    conn.result.failure = "receive timeout: no progress for " + std::to_string(recv_timeout_ms) +
                          "ms with " + std::to_string(conn.in_flight.size()) +
                          " responses outstanding";
    finish_conn(conn);
  }
}

/// One client thread: connect and multiplex every ConnState assigned to it
/// over a single poll loop, preserving per-connection due-time pacing.
void run_worker(const std::string& host, std::uint16_t port, std::vector<ConnState*> conns,
                int distinct, std::int64_t recv_timeout_ms, bool retry_sheds) {
  for (ConnState* conn : conns) {
    std::string error;
    conn->fd = connect_tcp(host, port, error);
    if (conn->fd < 0) {
      conn->result.failure = "connect: " + error;
      conn->done = true;
      continue;
    }
    set_nonblocking(conn->fd);
  }
  const Clock::time_point start = Clock::now();

  std::vector<struct pollfd> pfds;
  std::vector<ConnState*> polled;
  while (true) {
    const std::int64_t now_us = us_since(start);
    pfds.clear();
    polled.clear();
    std::int64_t wait_ms = 50;
    for (ConnState* conn : conns) {
      if (conn->done) continue;
      schedule_due(*conn, now_us, start, distinct);
      if (retry_sheds) schedule_retries(*conn, now_us, start, distinct);
      short events = POLLIN;
      if (conn->outbuf.size() > conn->outbuf_off) events |= POLLOUT;
      pfds.push_back({conn->fd, events, 0});
      polled.push_back(conn);
      if (conn->originals_sent < conn->requests && conn->interval_us > 0.0) {
        // Round up: sleeping a hair past the due time costs sub-ms pacing
        // error, while rounding down would spin poll(0) and starve the
        // server of CPU on small machines.
        const std::int64_t next_due_us = static_cast<std::int64_t>(
            conn->phase_us + conn->interval_us * static_cast<double>(conn->originals_sent));
        wait_ms = std::min(wait_ms,
                           std::max<std::int64_t>(1, (next_due_us - now_us + 999) / 1000));
      } else if (conn->originals_sent < conn->requests) {
        wait_ms = 0;
      }
      for (const ConnState::Retry& retry : conn->retries) {
        wait_ms = std::min(wait_ms,
                           std::max<std::int64_t>(1, (retry.due_us - now_us + 999) / 1000));
      }
    }
    if (polled.empty()) break;

    const int n = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                         static_cast<int>(wait_ms));
    if (n < 0 && errno != EINTR) {
      for (ConnState* conn : polled) {
        conn->result.failure = std::string("poll: ") + std::strerror(errno);
        finish_conn(*conn);
      }
      break;
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      if (!polled[i]->done) {
        pump_conn(*polled[i], n > 0 ? pfds[i].revents : 0, start, recv_timeout_ms, retry_sheds);
      }
    }
  }
  for (ConnState* conn : conns) {
    if (!conn->done) finish_conn(*conn);
  }
}

std::int64_t percentile_us(const std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;  // ceil
  if (idx > 0) --idx;                          // 1-based -> 0-based
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  try {
    ArgParser args({"--retry-sheds"},
                   {"--connect", "--connections", "--threads", "--requests", "--qps",
                    "--distinct", "--recv-timeout-ms", "--port-file"});
    args.parse(argc, argv);
    signal(SIGPIPE, SIG_IGN);

    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    if (auto connect = args.option("--connect")) {
      std::optional<HostPort> hp = parse_host_port(*connect);
      if (!hp) {
        std::cerr << "error: --connect expects HOST:PORT, got \"" << *connect << "\"\n";
        return 1;
      }
      if (!hp->host.empty()) host = hp->host;
      port = hp->port;
    }
    if (auto port_path = args.option("--port-file")) {
      std::ifstream port_file(*port_path);
      int file_port = 0;
      if (!(port_file >> file_port) || file_port <= 0 || file_port > 65535) {
        std::cerr << "error: cannot read a port number from " << *port_path << "\n";
        return 1;
      }
      port = static_cast<std::uint16_t>(file_port);
    }
    if (port == 0) {
      std::cerr << "error: need --connect HOST:PORT or --port-file FILE\n";
      return 1;
    }

    // Pre-flight probe: one throwaway connection before any thread starts.
    // A server that is not listening fails fast with an actionable message
    // instead of N workers each timing out with per-connection failures.
    {
      std::string probe_error;
      const int probe_fd = connect_tcp(host, port, probe_error);
      if (probe_fd < 0) {
        std::cerr << "serve_loadgen: cannot connect to " << host << ":" << port << ": "
                  << probe_error << "\n"
                  << "serve_loadgen: is fusecu_serve listening there? (start it with "
                     "--listen "
                  << host << ":" << port << ")\n";
        return 2;
      }
      close_fd(probe_fd);
    }

    const int connections = static_cast<int>(args.option_int("--connections", 4));
    const std::int64_t requests = args.option_int("--requests", 5000);
    const double qps = args.option("--qps") ? std::stod(*args.option("--qps")) : 0.0;
    const int distinct = static_cast<int>(args.option_int("--distinct", 64));
    const bool retry_sheds = args.has_flag("--retry-sheds");
    const std::int64_t recv_timeout_ms = args.option_int("--recv-timeout-ms", 10'000);
    if (connections <= 0 || requests <= 0) {
      std::cerr << "error: --connections and --requests must be positive\n";
      return 1;
    }
    // Default preserves the historical one-thread-per-connection behavior;
    // explicit --threads caps at one thread per connection.
    int threads = static_cast<int>(args.option_int("--threads", connections));
    if (threads <= 0) {
      std::cerr << "error: --threads must be positive\n";
      return 1;
    }
    threads = std::min(threads, connections);

    std::vector<ConnState> conns(static_cast<std::size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      ConnState& conn = conns[static_cast<std::size_t>(c)];
      conn.index = c;
      // Spread the total: the first (requests % connections) conns take one
      // extra so every request is owned by exactly one connection.
      conn.requests = requests / connections + (c < requests % connections ? 1 : 0);
      // Open-loop schedule: request k on a connection is due at k / qps,
      // staggered a fraction of a period per connection so the fleet does
      // not fire in lockstep.
      const double per_conn_qps = qps / connections;
      conn.interval_us = per_conn_qps > 0.0 ? 1e6 / per_conn_qps : 0.0;
      conn.phase_us = conn.interval_us * c / std::max(1, c + 1);  // < one period, deterministic
      conn.jitter_state = static_cast<std::uint64_t>(c) * 2654435761ull + 0x9e3779b97f4a7c15ull;
    }
    // Round-robin assignment: thread t owns connections t, t+T, t+2T, ...
    std::vector<std::vector<ConnState*>> assigned(static_cast<std::size_t>(threads));
    for (int c = 0; c < connections; ++c) {
      assigned[static_cast<std::size_t>(c % threads)].push_back(
          &conns[static_cast<std::size_t>(c)]);
    }

    std::vector<std::thread> workers;
    const Clock::time_point start = Clock::now();
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back(run_worker, host, port, assigned[static_cast<std::size_t>(t)],
                           distinct, recv_timeout_ms, retry_sheds);
    }
    for (auto& w : workers) w.join();
    const double wall_s = static_cast<double>(us_since(start)) / 1e6;

    ConnResult total;
    std::vector<std::int64_t> latencies;
    std::vector<std::int64_t> ok_latencies;
    bool conn_failed = false;
    for (int t = 0; t < threads; ++t) {
      std::vector<std::int64_t> thread_lat;
      std::int64_t thread_responses = 0;
      for (const ConnState* conn : assigned[static_cast<std::size_t>(t)]) {
        const ConnResult& r = conn->result;
        total.sent += r.sent;
        total.received += r.received;
        total.errors += r.errors;
        total.shed += r.shed;
        total.shed_retried += r.shed_retried;
        total.sheds_with_hint += r.sheds_with_hint;
        total.out_of_order += r.out_of_order;
        total.lost += r.lost;
        thread_responses += r.received;
        thread_lat.insert(thread_lat.end(), r.latencies_us.begin(), r.latencies_us.end());
        ok_latencies.insert(ok_latencies.end(), r.ok_latencies_us.begin(),
                            r.ok_latencies_us.end());
        if (!r.failure.empty()) {
          conn_failed = true;
          std::cerr << "serve_loadgen: connection failure: " << r.failure << "\n";
        }
      }
      std::sort(thread_lat.begin(), thread_lat.end());
      std::cout << "thread " << t << ": conns=" << assigned[static_cast<std::size_t>(t)].size()
                << " responses=" << thread_responses
                << " p50=" << percentile_us(thread_lat, 0.50)
                << " p95=" << percentile_us(thread_lat, 0.95)
                << " p99=" << percentile_us(thread_lat, 0.99) << "\n";
      latencies.insert(latencies.end(), thread_lat.begin(), thread_lat.end());
    }
    std::sort(latencies.begin(), latencies.end());
    std::sort(ok_latencies.begin(), ok_latencies.end());
    const double achieved_qps = wall_s > 0.0 ? static_cast<double>(total.received) / wall_s : 0.0;
    const std::int64_t p50 = percentile_us(latencies, 0.50);
    const std::int64_t p95 = percentile_us(latencies, 0.95);
    const std::int64_t p99 = percentile_us(latencies, 0.99);
    const std::int64_t max_us = latencies.empty() ? 0 : latencies.back();
    const std::int64_t served_p50 = percentile_us(ok_latencies, 0.50);
    const std::int64_t served_p99 = percentile_us(ok_latencies, 0.99);

    std::cout << "serve_loadgen: requests=" << total.sent << " responses=" << total.received
              << " achieved_qps=" << achieved_qps << " errors=" << total.errors
              << " shed=" << total.shed << " shed_retried=" << total.shed_retried
              << " sheds_with_hint=" << total.sheds_with_hint << " lost=" << total.lost
              << " out_of_order=" << total.out_of_order << "\n";
    std::cout << "latency_us: p50=" << p50 << " p95=" << p95 << " p99=" << p99
              << " max=" << max_us << "\n";
    std::cout << "served_latency_us: p50=" << served_p50 << " p99=" << served_p99
              << " count=" << ok_latencies.size() << "\n";

    obs.record_bench_value("achieved_qps", achieved_qps);
    obs.record_bench_value("requests", static_cast<double>(total.sent));
    obs.record_bench_value("responses", static_cast<double>(total.received));
    obs.record_bench_value("errors", static_cast<double>(total.errors));
    obs.record_bench_value("shed", static_cast<double>(total.shed));
    obs.record_bench_value("shed_retried", static_cast<double>(total.shed_retried));
    obs.record_bench_value("sheds_with_hint", static_cast<double>(total.sheds_with_hint));
    obs.record_bench_value("lost", static_cast<double>(total.lost));
    obs.record_bench_value("out_of_order", static_cast<double>(total.out_of_order));
    obs.record_bench_value("p50_us", static_cast<double>(p50));
    obs.record_bench_value("p95_us", static_cast<double>(p95));
    obs.record_bench_value("p99_us", static_cast<double>(p99));
    obs.record_bench_value("served_p50_us", static_cast<double>(served_p50));
    obs.record_bench_value("served_p99_us", static_cast<double>(served_p99));
    obs.record_bench_value("served", static_cast<double>(ok_latencies.size()));

    if (conn_failed || total.lost > 0 || total.out_of_order > 0) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
