/// \file serve_loadgen.cpp
/// Open-loop load generator for the fusecu_serve TCP mode (src/net).
///
///   serve_loadgen --connect HOST:PORT [--connections N] [--threads T]
///                 [--requests N] [--qps TARGET] [--distinct N]
///                 [--recv-timeout-ms MS] [--port-file FILE]
///                 [--bench-out BENCH_serve_loadgen.json]
///
/// Opens N connections spread over T client threads (default: one thread
/// per connection; with T < N each thread multiplexes its share of the
/// connections over one poll loop, so hundreds of connections don't need
/// hundreds of client threads).  `--requests` planning requests are split
/// across the connections and the pipelined responses read back.  With
/// --qps the sends are paced open-loop against the wall clock — a send
/// happens when its scheduled time arrives whether or not earlier responses
/// have come back, so a slow server grows queueing delay instead of
/// silently slowing the offered load (the coordinated-omission trap).
/// --qps 0 (default) sends as fast as the sockets accept.
///
/// Every request carries id "c<conn>-<seq>".  Responses on a connection
/// must come back exactly in request order (the server contract, regardless
/// of how many reactors serve the socket); each mismatch counts as
/// out_of_order, and requests still unanswered when the stream ends (or
/// --recv-timeout-ms passes with no progress) count as lost.  The exit
/// status is non-zero when anything was lost or reordered, or when a
/// connection could not be established.
///
/// Output: one merged summary line with exact latency percentiles (sorted
/// send-to-response times, not histogram buckets), preceded by one line
/// per client thread so per-thread skew is visible:
///
///   thread 0: conns=4 responses=2500 p50=91 p95=204 p99=361
///   thread 1: conns=4 responses=2500 p50=94 p95=215 p99=377
///   serve_loadgen: requests=5000 responses=5000 achieved_qps=48210.7
///       errors=0 shed=0 lost=0 out_of_order=0
///   latency_us: p50=92 p95=210 p99=368 max=1204
///
/// --bench-out records the merged numbers in the repo's perf-trajectory
/// format (CI archives BENCH_serve_loadgen.json).
///
/// Request shapes cycle through --distinct variants so the server's plan
/// cache sees a realistic hit/miss mix; "--distinct 1" measures the pure
/// cache-hit fast path.

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "net/socket.hpp"
#include "obs/obs_session.hpp"

using namespace fusecu;

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t us_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start).count();
}

/// One connection's tallies; `latencies_us` is merged per-thread and then
/// globally after the threads join.
struct ConnResult {
  std::int64_t sent = 0;
  std::int64_t received = 0;
  std::int64_t errors = 0;  ///< ok=false responses that are not sheds
  std::int64_t shed = 0;    ///< ok=false "overloaded" responses
  std::int64_t out_of_order = 0;
  std::int64_t lost = 0;
  std::vector<std::int64_t> latencies_us;
  std::string failure;  ///< non-empty = connection-level failure
};

/// One multiplexed connection: socket, schedule, framing buffers, tallies.
struct ConnState {
  int fd = -1;
  int index = 0;  ///< global connection index — the "c<conn>-" id prefix
  std::int64_t requests = 0;
  double interval_us = 0.0;
  double phase_us = 0.0;
  std::string outbuf;
  std::size_t outbuf_off = 0;
  std::string inbuf;
  std::deque<std::int64_t> send_time_us;  ///< FIFO: per-conn responses are ordered
  bool sent_all_and_flushed = false;
  bool done = false;
  std::int64_t last_progress_us = 0;
  ConnResult result;
};

std::string make_request(int conn, std::int64_t seq, int distinct) {
  // A small shape family keyed off the request index: repeats within
  // `distinct` variants exercise the plan cache, the sizes stay cheap
  // enough that the pool is never the bottleneck under --qps 0.
  static const int kSizes[] = {128, 192, 256, 320, 384, 512};
  const std::int64_t v = distinct > 0 ? (seq % distinct) : seq;
  const int m = kSizes[v % 6];
  const int k = kSizes[(v / 6) % 6];
  const int l = kSizes[(v / 36) % 6];
  std::string line = "{\"id\":\"c" + std::to_string(conn) + "-" + std::to_string(seq) +
                     "\",\"op\":\"matmul\",\"m\":" + std::to_string(m) +
                     ",\"k\":" + std::to_string(k) + ",\"l\":" + std::to_string(l) +
                     ",\"buffer\":\"512KB\"}\n";
  return line;
}

/// Pull `"key":"value"` out of a response line without a JSON parser — the
/// serializer always emits the id first and never escapes quotes in it.
std::string extract_string_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

void finish_conn(ConnState& conn) {
  conn.result.lost = conn.result.sent - conn.result.received;
  if (conn.fd >= 0) {
    close_fd(conn.fd);
    conn.fd = -1;
  }
  conn.done = true;
}

/// Schedule every request of \p conn that is due (all of them when
/// unpaced).  The recorded send time is the *scheduled* instant, not the
/// moment the bytes leave — open-loop latency charges the server for our
/// own scheduling slippage instead of hiding it (coordinated omission).
void schedule_due(ConnState& conn, std::int64_t now_us, Clock::time_point start, int distinct) {
  while (conn.result.sent < conn.requests) {
    const std::int64_t due_us =
        conn.interval_us > 0.0
            ? static_cast<std::int64_t>(conn.phase_us +
                                        conn.interval_us * static_cast<double>(conn.result.sent))
            : 0;
    if (now_us < due_us) break;
    conn.outbuf += make_request(conn.index, conn.result.sent, distinct);
    conn.send_time_us.push_back(conn.interval_us > 0.0 ? due_us : us_since(start));
    ++conn.result.sent;
  }
}

/// Drain writable/readable events for \p conn; marks it done on EOF, error
/// or stall.  Returns nothing — all state lives in the ConnState.
void pump_conn(ConnState& conn, short revents, Clock::time_point start,
               std::int64_t recv_timeout_ms) {
  if ((revents & POLLOUT) && conn.outbuf.size() > conn.outbuf_off) {
    const ssize_t wrote = ::send(conn.fd, conn.outbuf.data() + conn.outbuf_off,
                                 conn.outbuf.size() - conn.outbuf_off, MSG_NOSIGNAL);
    if (wrote > 0) {
      conn.outbuf_off += static_cast<std::size_t>(wrote);
      if (conn.outbuf_off == conn.outbuf.size()) {
        conn.outbuf.clear();
        conn.outbuf_off = 0;
      }
      conn.last_progress_us = us_since(start);
    } else if (wrote < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      conn.result.failure = std::string("send: ") + std::strerror(errno);
      finish_conn(conn);
      return;
    }
  }
  if (!conn.sent_all_and_flushed && conn.result.sent == conn.requests && conn.outbuf.empty()) {
    // Half-close: the server answers everything already on the wire and
    // then closes, turning "done" into a clean EOF instead of a timeout.
    ::shutdown(conn.fd, SHUT_WR);
    conn.sent_all_and_flushed = true;
  }

  bool saw_eof = false;
  if (revents & (POLLIN | POLLHUP)) {
    char chunk[64 * 1024];
    while (true) {
      const ssize_t got = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (got > 0) {
        conn.inbuf.append(chunk, static_cast<std::size_t>(got));
        conn.last_progress_us = us_since(start);
        continue;
      }
      if (got == 0) saw_eof = true;
      if (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        conn.result.failure = std::string("recv: ") + std::strerror(errno);
        saw_eof = true;
      }
      break;
    }
  }

  std::size_t line_start = 0;
  std::size_t nl;
  while ((nl = conn.inbuf.find('\n', line_start)) != std::string::npos) {
    const std::string line = conn.inbuf.substr(line_start, nl - line_start);
    line_start = nl + 1;
    const std::int64_t recv_us = us_since(start);
    if (!conn.send_time_us.empty()) {
      conn.result.latencies_us.push_back(recv_us - conn.send_time_us.front());
      conn.send_time_us.pop_front();
    }
    const std::string expected_id =
        "c" + std::to_string(conn.index) + "-" + std::to_string(conn.result.received);
    if (extract_string_field(line, "id") != expected_id) ++conn.result.out_of_order;
    if (line.find("\"ok\":false") != std::string::npos) {
      if (line.find("overloaded") != std::string::npos) {
        ++conn.result.shed;
      } else {
        ++conn.result.errors;
      }
    }
    ++conn.result.received;
  }
  if (line_start > 0) conn.inbuf.erase(0, line_start);

  if (conn.result.received >= conn.requests || saw_eof) {
    finish_conn(conn);
    return;
  }
  if (recv_timeout_ms > 0 && !conn.send_time_us.empty() &&
      us_since(start) - conn.last_progress_us > recv_timeout_ms * 1000) {
    conn.result.failure = "receive timeout: no progress for " + std::to_string(recv_timeout_ms) +
                          "ms with " + std::to_string(conn.send_time_us.size()) +
                          " responses outstanding";
    finish_conn(conn);
  }
}

/// One client thread: connect and multiplex every ConnState assigned to it
/// over a single poll loop, preserving per-connection due-time pacing.
void run_worker(const std::string& host, std::uint16_t port, std::vector<ConnState*> conns,
                int distinct, std::int64_t recv_timeout_ms) {
  for (ConnState* conn : conns) {
    std::string error;
    conn->fd = connect_tcp(host, port, error);
    if (conn->fd < 0) {
      conn->result.failure = "connect: " + error;
      conn->done = true;
      continue;
    }
    set_nonblocking(conn->fd);
  }
  const Clock::time_point start = Clock::now();

  std::vector<struct pollfd> pfds;
  std::vector<ConnState*> polled;
  while (true) {
    const std::int64_t now_us = us_since(start);
    pfds.clear();
    polled.clear();
    std::int64_t wait_ms = 50;
    for (ConnState* conn : conns) {
      if (conn->done) continue;
      schedule_due(*conn, now_us, start, distinct);
      short events = POLLIN;
      if (conn->outbuf.size() > conn->outbuf_off) events |= POLLOUT;
      pfds.push_back({conn->fd, events, 0});
      polled.push_back(conn);
      if (conn->result.sent < conn->requests && conn->interval_us > 0.0) {
        // Round up: sleeping a hair past the due time costs sub-ms pacing
        // error, while rounding down would spin poll(0) and starve the
        // server of CPU on small machines.
        const std::int64_t next_due_us = static_cast<std::int64_t>(
            conn->phase_us + conn->interval_us * static_cast<double>(conn->result.sent));
        wait_ms = std::min(wait_ms,
                           std::max<std::int64_t>(1, (next_due_us - now_us + 999) / 1000));
      } else if (conn->result.sent < conn->requests) {
        wait_ms = 0;
      }
    }
    if (polled.empty()) break;

    const int n = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                         static_cast<int>(wait_ms));
    if (n < 0 && errno != EINTR) {
      for (ConnState* conn : polled) {
        conn->result.failure = std::string("poll: ") + std::strerror(errno);
        finish_conn(*conn);
      }
      break;
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      if (!polled[i]->done) {
        pump_conn(*polled[i], n > 0 ? pfds[i].revents : 0, start, recv_timeout_ms);
      }
    }
  }
  for (ConnState* conn : conns) {
    if (!conn->done) finish_conn(*conn);
  }
}

std::int64_t percentile_us(const std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;  // ceil
  if (idx > 0) --idx;                          // 1-based -> 0-based
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  try {
    ArgParser args({}, {"--connect", "--connections", "--threads", "--requests", "--qps",
                        "--distinct", "--recv-timeout-ms", "--port-file"});
    args.parse(argc, argv);
    signal(SIGPIPE, SIG_IGN);

    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    if (auto connect = args.option("--connect")) {
      std::optional<HostPort> hp = parse_host_port(*connect);
      if (!hp) {
        std::cerr << "error: --connect expects HOST:PORT, got \"" << *connect << "\"\n";
        return 1;
      }
      if (!hp->host.empty()) host = hp->host;
      port = hp->port;
    }
    if (auto port_path = args.option("--port-file")) {
      std::ifstream port_file(*port_path);
      int file_port = 0;
      if (!(port_file >> file_port) || file_port <= 0 || file_port > 65535) {
        std::cerr << "error: cannot read a port number from " << *port_path << "\n";
        return 1;
      }
      port = static_cast<std::uint16_t>(file_port);
    }
    if (port == 0) {
      std::cerr << "error: need --connect HOST:PORT or --port-file FILE\n";
      return 1;
    }

    const int connections = static_cast<int>(args.option_int("--connections", 4));
    const std::int64_t requests = args.option_int("--requests", 5000);
    const double qps = args.option("--qps") ? std::stod(*args.option("--qps")) : 0.0;
    const int distinct = static_cast<int>(args.option_int("--distinct", 64));
    const std::int64_t recv_timeout_ms = args.option_int("--recv-timeout-ms", 10'000);
    if (connections <= 0 || requests <= 0) {
      std::cerr << "error: --connections and --requests must be positive\n";
      return 1;
    }
    // Default preserves the historical one-thread-per-connection behavior;
    // explicit --threads caps at one thread per connection.
    int threads = static_cast<int>(args.option_int("--threads", connections));
    if (threads <= 0) {
      std::cerr << "error: --threads must be positive\n";
      return 1;
    }
    threads = std::min(threads, connections);

    std::vector<ConnState> conns(static_cast<std::size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      ConnState& conn = conns[static_cast<std::size_t>(c)];
      conn.index = c;
      // Spread the total: the first (requests % connections) conns take one
      // extra so every request is owned by exactly one connection.
      conn.requests = requests / connections + (c < requests % connections ? 1 : 0);
      // Open-loop schedule: request k on a connection is due at k / qps,
      // staggered a fraction of a period per connection so the fleet does
      // not fire in lockstep.
      const double per_conn_qps = qps / connections;
      conn.interval_us = per_conn_qps > 0.0 ? 1e6 / per_conn_qps : 0.0;
      conn.phase_us = conn.interval_us * c / std::max(1, c + 1);  // < one period, deterministic
    }
    // Round-robin assignment: thread t owns connections t, t+T, t+2T, ...
    std::vector<std::vector<ConnState*>> assigned(static_cast<std::size_t>(threads));
    for (int c = 0; c < connections; ++c) {
      assigned[static_cast<std::size_t>(c % threads)].push_back(
          &conns[static_cast<std::size_t>(c)]);
    }

    std::vector<std::thread> workers;
    const Clock::time_point start = Clock::now();
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back(run_worker, host, port, assigned[static_cast<std::size_t>(t)],
                           distinct, recv_timeout_ms);
    }
    for (auto& w : workers) w.join();
    const double wall_s = static_cast<double>(us_since(start)) / 1e6;

    ConnResult total;
    std::vector<std::int64_t> latencies;
    bool conn_failed = false;
    for (int t = 0; t < threads; ++t) {
      std::vector<std::int64_t> thread_lat;
      std::int64_t thread_responses = 0;
      for (const ConnState* conn : assigned[static_cast<std::size_t>(t)]) {
        const ConnResult& r = conn->result;
        total.sent += r.sent;
        total.received += r.received;
        total.errors += r.errors;
        total.shed += r.shed;
        total.out_of_order += r.out_of_order;
        total.lost += r.lost;
        thread_responses += r.received;
        thread_lat.insert(thread_lat.end(), r.latencies_us.begin(), r.latencies_us.end());
        if (!r.failure.empty()) {
          conn_failed = true;
          std::cerr << "serve_loadgen: connection failure: " << r.failure << "\n";
        }
      }
      std::sort(thread_lat.begin(), thread_lat.end());
      std::cout << "thread " << t << ": conns=" << assigned[static_cast<std::size_t>(t)].size()
                << " responses=" << thread_responses
                << " p50=" << percentile_us(thread_lat, 0.50)
                << " p95=" << percentile_us(thread_lat, 0.95)
                << " p99=" << percentile_us(thread_lat, 0.99) << "\n";
      latencies.insert(latencies.end(), thread_lat.begin(), thread_lat.end());
    }
    std::sort(latencies.begin(), latencies.end());
    const double achieved_qps = wall_s > 0.0 ? static_cast<double>(total.received) / wall_s : 0.0;
    const std::int64_t p50 = percentile_us(latencies, 0.50);
    const std::int64_t p95 = percentile_us(latencies, 0.95);
    const std::int64_t p99 = percentile_us(latencies, 0.99);
    const std::int64_t max_us = latencies.empty() ? 0 : latencies.back();

    std::cout << "serve_loadgen: requests=" << total.sent << " responses=" << total.received
              << " achieved_qps=" << achieved_qps << " errors=" << total.errors
              << " shed=" << total.shed << " lost=" << total.lost
              << " out_of_order=" << total.out_of_order << "\n";
    std::cout << "latency_us: p50=" << p50 << " p95=" << p95 << " p99=" << p99
              << " max=" << max_us << "\n";

    obs.record_bench_value("achieved_qps", achieved_qps);
    obs.record_bench_value("requests", static_cast<double>(total.sent));
    obs.record_bench_value("responses", static_cast<double>(total.received));
    obs.record_bench_value("errors", static_cast<double>(total.errors));
    obs.record_bench_value("shed", static_cast<double>(total.shed));
    obs.record_bench_value("lost", static_cast<double>(total.lost));
    obs.record_bench_value("out_of_order", static_cast<double>(total.out_of_order));
    obs.record_bench_value("p50_us", static_cast<double>(p50));
    obs.record_bench_value("p95_us", static_cast<double>(p95));
    obs.record_bench_value("p99_us", static_cast<double>(p99));

    if (conn_failed || total.lost > 0 || total.out_of_order > 0) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
