/// \file fig10_mem_util.cpp
/// Regenerates Fig. 10 (and prints Tables II and III on the way):
/// normalized memory access (the paper's bar chart) and utilization (the
/// line chart) for the seven Table II models on the five platforms, plus
/// the headline averages:
///
///   paper: FuseCU saves 63.6% / 62.4% / 38.7% memory access and speeds up
///   1.33x / 1.25x / 1.14x vs TPUv4i / Gemmini / Planaria; UnfCU's savings
///   drop to 42.6% / 41.0% / 4.5% without fusion.

#include <cstdio>
#include <iostream>
#include <map>

#include "common/math_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "workloads/model_eval.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

void print_table1() {
  std::printf("=== Table I: summary of SOTA dataflow optimizers ===\n");
  TextTable t({"Feature", "Intra-op DSE", "Chimera", "SET", "Flat", "DAT", "This work"});
  t.add_row({"Full tiling & scheduling space", "no", "no", "no", "no", "yes", "yes"});
  t.add_row({"Tiling/scheduling scheme", "searching", "searching", "searching", "searching",
             "searching", "principle-based"});
  t.add_row({"Mapping scheme", "fixed patterns", "micro kernels", "-", "-", "-",
             "principle-based"});
  t.add_row({"Fusion medium", "none", "memory", "memory", "memory", "memory", "compute unit"});
  t.print(std::cout);
  std::printf("(qualitative, reproduced from the paper; the searching column is what\n"
              " src/search reconstructs and bench/fig9_validation compares against)\n\n");
}

void print_table2() {
  std::printf("=== Table II: transformer model parameters ===\n");
  TextTable t({"Model", "# of Heads", "Seq. Length", "Hidden Size", "Batch"});
  for (const ModelConfig& m : table2_models()) {
    t.add_row({m.name, std::to_string(m.heads), std::to_string(m.seq),
               std::to_string(m.hidden), std::to_string(m.batch)});
  }
  t.print(std::cout);
  std::printf("\n");
}

void print_table3() {
  std::printf("=== Table III: spatial architecture attributes ===\n");
  TextTable t({"Platform", "Stationary Flex.", "Tiling Flex.", "Tensor Fusion", "Buffer"});
  for (const ArchSpec& a : all_platforms()) {
    std::string stat;
    for (Stationarity s : a.stationarities) {
      if (!stat.empty()) stat += "/";
      stat += to_string(s);
    }
    t.add_row({a.name, stat, to_string(a.tiling_flex), a.supports_fusion ? "yes" : "no",
               format_bytes(a.buffer_bytes)});
  }
  t.print(std::cout);
  std::printf("\n");
}

void run() {
  print_table1();
  print_table2();
  print_table3();

  std::printf("=== Fig. 10: normalized memory access (bars) and utilization (line) ===\n");
  std::printf("(memory access normalized to TPUv4i per model; one encoder layer, batch 16)\n\n");

  std::map<std::string, std::map<std::string, ModelEval>> results;
  std::vector<ArchSpec> platforms = all_platforms();
  for (const ArchSpec& arch : platforms) {
    for (const ModelEval& e : evaluate_table2(arch)) results[e.model][arch.name] = e;
  }

  TextTable ma({"Model", "TPUv4i", "Gemmini", "Planaria", "UnfCU", "FuseCU"});
  TextTable util({"Model", "TPUv4i", "Gemmini", "Planaria", "UnfCU", "FuseCU"});
  for (const ModelConfig& m : table2_models()) {
    const auto& row = results[m.name];
    const double base = static_cast<double>(row.at("TPUv4i").access);
    std::vector<double> ma_vals, util_vals;
    for (const ArchSpec& a : platforms) {
      ma_vals.push_back(static_cast<double>(row.at(a.name).access) / base);
      util_vals.push_back(row.at(a.name).utilization);
    }
    ma.add_row_numeric(m.name, ma_vals, 3);
    util.add_row_numeric(m.name, util_vals, 3);
  }
  std::printf("--- normalized memory access (lower is better) ---\n");
  ma.print(std::cout);
  std::printf("\n--- utilization: performance normalized to peak FLOPs ---\n");
  util.print(std::cout);

  // Headline averages.
  auto average_saving = [&](const std::string& against, const std::string& target) {
    std::vector<double> savings;
    for (const ModelConfig& m : table2_models()) {
      const auto& row = results[m.name];
      savings.push_back(1.0 - static_cast<double>(row.at(target).access) /
                                  static_cast<double>(row.at(against).access));
    }
    return arith_mean(savings);
  };
  auto average_speedup = [&](const std::string& against, const std::string& target) {
    std::vector<double> speedups;
    for (const ModelConfig& m : table2_models()) {
      const auto& row = results[m.name];
      speedups.push_back(static_cast<double>(row.at(against).cycles) /
                         static_cast<double>(row.at(target).cycles));
    }
    return arith_mean(speedups);
  };

  std::printf("\n--- headline averages (paper values in brackets) ---\n");
  std::printf("FuseCU memory saving vs TPUv4i   : %5.1f%%  [63.6%%]\n",
              100.0 * average_saving("TPUv4i", "FuseCU"));
  std::printf("FuseCU memory saving vs Gemmini  : %5.1f%%  [62.4%%]\n",
              100.0 * average_saving("Gemmini", "FuseCU"));
  std::printf("FuseCU memory saving vs Planaria : %5.1f%%  [38.7%%]\n",
              100.0 * average_saving("Planaria", "FuseCU"));
  std::printf("UnfCU  memory saving vs TPUv4i   : %5.1f%%  [42.6%%]\n",
              100.0 * average_saving("TPUv4i", "UnfCU"));
  std::printf("UnfCU  memory saving vs Gemmini  : %5.1f%%  [41.0%%]\n",
              100.0 * average_saving("Gemmini", "UnfCU"));
  std::printf("UnfCU  memory saving vs Planaria : %5.1f%%  [ 4.5%%]\n",
              100.0 * average_saving("Planaria", "UnfCU"));
  std::printf("FuseCU speedup vs TPUv4i         : %5.2fx  [1.33x]\n",
              average_speedup("TPUv4i", "FuseCU"));
  std::printf("FuseCU speedup vs Gemmini        : %5.2fx  [1.25x]\n",
              average_speedup("Gemmini", "FuseCU"));
  std::printf("FuseCU speedup vs Planaria       : %5.2fx  [1.14x]\n",
              average_speedup("Planaria", "FuseCU"));
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  fusecu::run();
  return 0;
}
