/// \file sim_throughput.cpp
/// Per-layer throughput benchmark for the perf-critical simulation and
/// search paths, with built-in equivalence assertions:
///
///  * layer 1 — ComputeUnit passes: the cycle-by-cycle stepper vs the
///    functional fast path, per mode (WS/OS/IS/IS-resident/tile fusion),
///    asserting bit-identical outputs, cycles and traffic while timing;
///  * layer 2 — the exhaustive oracle: kFull vs kPruned over generated
///    workloads, asserting byte-identical argmin plans;
///  * layer 3 — the conformance harness: run_conformance at --jobs 1 vs
///    --jobs <hw threads>, asserting identical aggregate results.
///
/// All timings and speedup ratios are published through the shared
/// --bench-out flag (BENCH_sim_throughput.json in CI), so the perf
/// trajectory of each layer is archived per commit.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/gen.hpp"
#include "check/harness.hpp"
#include "common/rng.hpp"
#include "obs/obs_session.hpp"
#include "search/exhaustive.hpp"
#include "sim/compute_unit.hpp"

namespace fusecu {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void require(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "sim_throughput: equivalence violated: %s\n", what);
  std::exit(1);
}

// ---------------------------------------------------------------------------
// Layer 1: pass kernels
// ---------------------------------------------------------------------------

struct PassShape {
  Index m, k, l, n2;  // n2 = D columns for tile fusion
};

std::vector<PassShape> pass_shapes(Rng& rng, int count, Index array_n) {
  std::vector<PassShape> shapes;
  shapes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    PassShape s;
    s.m = gen_extent(rng, array_n);
    s.k = gen_extent(rng, array_n);
    s.l = gen_extent(rng, array_n);
    s.n2 = gen_extent(rng, 2 * array_n);
    shapes.push_back(s);
  }
  return shapes;
}

struct PassTotals {
  double checksum = 0;
  CycleCount cycles = 0;
  AccessCount input = 0, output = 0, preload = 0;

  bool operator==(const PassTotals& o) const {
    return checksum == o.checksum && cycles == o.cycles && input == o.input &&
           output == o.output && preload == o.preload;
  }
};

template <typename PassFn>
PassTotals run_passes(ComputeUnit& cu, SimFidelity fidelity,
                      const std::vector<PassShape>& shapes, PassFn&& pass) {
  cu.set_fidelity(fidelity);
  cu.reset_traffic();
  PassTotals totals;
  int next = 7;
  for (const PassShape& s : shapes) {
    ComputeUnit::RunResult r = pass(cu, s, next);
    totals.cycles += r.cycles;
    for (Index i = 0; i < r.output.rows(); ++i) {
      const double* row = r.output.row(i);
      for (Index j = 0; j < r.output.cols(); ++j) totals.checksum += row[j];
    }
  }
  totals.input = cu.input_traffic();
  totals.output = cu.output_traffic();
  totals.preload = cu.preload_traffic();
  return totals;
}

struct ModeResult {
  std::string name;
  double stepped_s = 0;
  double fast_s = 0;
};

template <typename PassFn>
ModeResult bench_mode(const char* name, Index array_n, const std::vector<PassShape>& shapes,
                      PassFn&& pass) {
  ModeResult r;
  r.name = name;
  ComputeUnit cu(array_n);

  Clock::time_point t0 = Clock::now();
  PassTotals stepped = run_passes(cu, SimFidelity::kCycleAccurate, shapes, pass);
  r.stepped_s = seconds_since(t0);

  t0 = Clock::now();
  PassTotals fast = run_passes(cu, SimFidelity::kFunctional, shapes, pass);
  r.fast_s = seconds_since(t0);

  require(stepped == fast, name);
  return r;
}

std::vector<ModeResult> bench_passes(ObsSession& obs) {
  const Index array_n = 16;
  const int reps = 400;
  Rng rng(2026);
  const std::vector<PassShape> shapes = pass_shapes(rng, reps, array_n);

  auto make = [](Index rows, Index cols, int& next) {
    Matrix m = make_test_matrix(rows, cols, next);
    next += static_cast<int>(rows * cols);
    return m;
  };

  std::vector<ModeResult> results;
  results.push_back(bench_mode("ws", array_n, shapes,
                               [&](ComputeUnit& cu, const PassShape& s, int& next) {
                                 Matrix a = make(s.m, s.k, next), b = make(s.k, s.l, next);
                                 return cu.run_ws(a, b);
                               }));
  results.push_back(bench_mode("os", array_n, shapes,
                               [&](ComputeUnit& cu, const PassShape& s, int& next) {
                                 Matrix a = make(s.m, s.k, next), b = make(s.k, s.l, next);
                                 return cu.run_os(a, b);
                               }));
  results.push_back(bench_mode("is", array_n, shapes,
                               [&](ComputeUnit& cu, const PassShape& s, int& next) {
                                 Matrix a = make(s.m, s.k, next), b = make(s.k, s.l, next);
                                 return cu.run_is(a, b);
                               }));
  results.push_back(bench_mode("tile_fusion", array_n, shapes,
                               [&](ComputeUnit& cu, const PassShape& s, int& next) {
                                 Matrix a = make(s.m, s.k, next), b = make(s.k, s.l, next);
                                 Matrix d = make(s.l, s.n2, next);
                                 return cu.run_tile_fusion(a, b, d);
                               }));

  std::printf("layer 1: ComputeUnit passes (N=%d, %d passes/mode)\n",
              static_cast<int>(array_n), reps);
  for (const ModeResult& r : results) {
    const double speedup = r.stepped_s / r.fast_s;
    std::printf("  %-12s stepper %8.4fs  fastpath %8.4fs  %6.1fx  (bit-identical)\n",
                r.name.c_str(), r.stepped_s, r.fast_s, speedup);
    obs.record_bench_value("pass_" + r.name + "_stepper_s", r.stepped_s);
    obs.record_bench_value("pass_" + r.name + "_fastpath_s", r.fast_s);
    obs.record_bench_value("pass_" + r.name + "_speedup", speedup);
  }
  return results;
}

// ---------------------------------------------------------------------------
// Layer 2: exhaustive oracle
// ---------------------------------------------------------------------------

std::string intra_sig(const std::optional<IntraSearchResult>& r) {
  if (!r) return "none";
  std::ostringstream os;
  for (int d : r->dataflow.loop_order) os << d << ".";
  os << "|";
  for (Index t : r->dataflow.tile) os << t << ".";
  os << "|";
  for (AccessCount a : r->access.per_tensor) os << a << ".";
  os << "|" << r->access.total << "|" << r->access.buffer_footprint;
  return os.str();
}

std::string fused_sig(const std::optional<FusedSearchResult>& r) {
  if (!r) return "none";
  std::ostringstream os;
  os << r->access.op1_external << "|" << r->access.op2_external << "|" << r->access.total
     << "|" << r->access.buffer_footprint;
  if (r->phased) {
    os << "|phased{" << r->phased->t_m << "," << r->phased->t_k << "," << r->phased->t_l
       << "," << r->phased->t_n << "," << (r->phased->l_outer ? "L" : "M") << "}";
  }
  if (r->resident) {
    os << "|resident{";
    for (Index t : r->resident->df1.tile) os << t << ".";
    os << ",";
    for (Index t : r->resident->df2.tile) os << t << ".";
    os << "}";
  }
  return os.str();
}

void bench_exhaustive(ObsSession& obs) {
  GenLimits limits;
  limits.max_extent = 48;
  const int intra_count = 200, fused_count = 60;

  Rng rng(11);
  std::vector<Workload> intra, fused;
  for (int i = 0; i < intra_count; ++i)
    intra.push_back(gen_workload_of(WorkloadKind::kIntra, rng, limits));
  for (int i = 0; i < fused_count; ++i)
    fused.push_back(gen_workload_of(WorkloadKind::kFused, rng, limits));

  double full_s = 0, pruned_s = 0;
  Clock::time_point t0 = Clock::now();
  std::vector<std::string> full_sigs;
  for (const Workload& w : intra)
    full_sigs.push_back(intra_sig(exhaustive_intra(w.intra_op(), w.bs, ExhaustiveMode::kFull)));
  for (const Workload& w : fused)
    full_sigs.push_back(fused_sig(exhaustive_fused(w.fused_pair(), w.bs, ExhaustiveMode::kFull)));
  full_s = seconds_since(t0);

  t0 = Clock::now();
  std::vector<std::string> pruned_sigs;
  for (const Workload& w : intra)
    pruned_sigs.push_back(
        intra_sig(exhaustive_intra(w.intra_op(), w.bs, ExhaustiveMode::kPruned)));
  for (const Workload& w : fused)
    pruned_sigs.push_back(
        fused_sig(exhaustive_fused(w.fused_pair(), w.bs, ExhaustiveMode::kPruned)));
  pruned_s = seconds_since(t0);

  require(full_sigs == pruned_sigs, "pruned exhaustive vs full");
  const double speedup = full_s / pruned_s;
  std::printf("\nlayer 2: exhaustive oracle (%d intra + %d fused workloads)\n", intra_count,
              fused_count);
  std::printf("  full %8.4fs  pruned %8.4fs  %6.1fx  (byte-identical plans)\n", full_s,
              pruned_s, speedup);
  obs.record_bench_value("exhaustive_full_s", full_s);
  obs.record_bench_value("exhaustive_pruned_s", pruned_s);
  obs.record_bench_value("exhaustive_speedup", speedup);
}

// ---------------------------------------------------------------------------
// Layer 3: conformance harness
// ---------------------------------------------------------------------------

void bench_harness(ObsSession& obs, int trials) {
  HarnessOptions opts;
  opts.seed = 1;
  opts.trials = trials;

  std::printf("\nlayer 3: conformance harness (%d trials, seed %llu)\n", trials,
              static_cast<unsigned long long>(opts.seed));

  opts.jobs = 1;
  Clock::time_point t0 = Clock::now();
  HarnessResult serial = run_conformance(opts);
  const double serial_s = seconds_since(t0);
  obs.record_bench_value("harness_jobs1_s", serial_s);
  std::printf("  jobs=1  %8.4fs  (%lld checks, %d failing)\n", serial_s,
              static_cast<long long>(serial.checks_run), serial.failed_trials);

  const int hw = std::max(2u, std::thread::hardware_concurrency());
  opts.jobs = hw;
  t0 = Clock::now();
  HarnessResult parallel = run_conformance(opts);
  const double parallel_s = seconds_since(t0);
  obs.record_bench_value("harness_jobs" + std::to_string(hw) + "_s", parallel_s);
  obs.record_bench_value("harness_parallel_speedup", serial_s / parallel_s);
  std::printf("  jobs=%d  %8.4fs  %6.2fx  (%lld checks, %d failing)\n", hw, parallel_s,
              serial_s / parallel_s, static_cast<long long>(parallel.checks_run),
              parallel.failed_trials);

  require(serial.trials_run == parallel.trials_run &&
              serial.checks_run == parallel.checks_run &&
              serial.failed_trials == parallel.failed_trials,
          "jobs=1 vs jobs=N harness results");
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  int trials = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trials" && i + 1 < argc) trials = std::atoi(argv[++i]);
  }
  fusecu::bench_passes(obs);
  fusecu::bench_exhaustive(obs);
  fusecu::bench_harness(obs, trials);
  std::printf("\nall layers bit-identical across fidelities, modes and job counts\n");
  return 0;
}
