/// \file energy_comparison.cpp
/// Energy counterpart of Fig. 10 (extension bench — the paper motivates
/// dataflow optimization by memory access being "a key factor in energy
/// consumption" but reports only accesses; this bench closes that loop
/// with the first-order per-access energy model).  Reports per-model
/// energy normalized to TPUv4i and the data-movement share of each
/// platform's energy.

#include <cstdio>
#include <iostream>

#include "common/math_util.hpp"
#include "common/table.hpp"
#include "workloads/model_eval.hpp"
#include "obs/obs_session.hpp"

namespace fusecu {
namespace {

void run() {
  std::printf("=== Energy comparison (28nm first-order model, one layer, batch 16) ===\n\n");
  std::vector<ArchSpec> platforms = all_platforms();

  TextTable energy({"Model", "TPUv4i", "Gemmini", "Planaria", "UnfCU", "FuseCU"});
  TextTable movement({"Model", "TPUv4i", "Gemmini", "Planaria", "UnfCU", "FuseCU"});
  std::vector<double> savings;
  for (const ModelConfig& m : table2_models()) {
    std::vector<ModelEval> evals;
    for (const ArchSpec& a : platforms) evals.push_back(evaluate_model(m, a));
    const double base = evals[0].energy_pj;
    std::vector<double> e_vals, m_vals;
    for (const ModelEval& e : evals) {
      e_vals.push_back(e.energy_pj / base);
      m_vals.push_back(e.energy_movement_fraction);
    }
    savings.push_back(1.0 - evals.back().energy_pj / base);
    energy.add_row_numeric(m.name, e_vals, 3);
    movement.add_row_numeric(m.name, m_vals, 3);
  }
  std::printf("--- energy normalized to TPUv4i (lower is better) ---\n");
  energy.print(std::cout);
  std::printf("\n--- data-movement share of energy ---\n");
  movement.print(std::cout);
  std::printf("\naverage FuseCU energy saving vs TPUv4i: %.1f%%\n", 100.0 * arith_mean(savings));
  std::printf("(data movement dominates the rigid platforms' energy — the paper's premise)\n");
}

}  // namespace
}  // namespace fusecu

int main(int argc, char** argv) {
  fusecu::ObsSession obs(argc, argv);
  fusecu::run();
  return 0;
}
