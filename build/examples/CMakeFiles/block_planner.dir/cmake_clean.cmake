file(REMOVE_RECURSE
  "CMakeFiles/block_planner.dir/block_planner.cpp.o"
  "CMakeFiles/block_planner.dir/block_planner.cpp.o.d"
  "block_planner"
  "block_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
