# Empty compiler generated dependencies file for block_planner.
# This may be replaced when dependencies are built.
