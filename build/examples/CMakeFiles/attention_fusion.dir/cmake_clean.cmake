file(REMOVE_RECURSE
  "CMakeFiles/attention_fusion.dir/attention_fusion.cpp.o"
  "CMakeFiles/attention_fusion.dir/attention_fusion.cpp.o.d"
  "attention_fusion"
  "attention_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
