# Empty compiler generated dependencies file for llama_sweep.
# This may be replaced when dependencies are built.
