file(REMOVE_RECURSE
  "CMakeFiles/llama_sweep.dir/llama_sweep.cpp.o"
  "CMakeFiles/llama_sweep.dir/llama_sweep.cpp.o.d"
  "llama_sweep"
  "llama_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llama_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
