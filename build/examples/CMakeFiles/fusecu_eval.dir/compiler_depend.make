# Empty compiler generated dependencies file for fusecu_eval.
# This may be replaced when dependencies are built.
