file(REMOVE_RECURSE
  "CMakeFiles/fusecu_eval.dir/fusecu_eval.cpp.o"
  "CMakeFiles/fusecu_eval.dir/fusecu_eval.cpp.o.d"
  "fusecu_eval"
  "fusecu_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusecu_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
