file(REMOVE_RECURSE
  "CMakeFiles/fusecu_principles.dir/buffer_class.cpp.o"
  "CMakeFiles/fusecu_principles.dir/buffer_class.cpp.o.d"
  "CMakeFiles/fusecu_principles.dir/principle_optimizer.cpp.o"
  "CMakeFiles/fusecu_principles.dir/principle_optimizer.cpp.o.d"
  "CMakeFiles/fusecu_principles.dir/two_level.cpp.o"
  "CMakeFiles/fusecu_principles.dir/two_level.cpp.o.d"
  "libfusecu_principles.a"
  "libfusecu_principles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusecu_principles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
