
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/principles/buffer_class.cpp" "src/principles/CMakeFiles/fusecu_principles.dir/buffer_class.cpp.o" "gcc" "src/principles/CMakeFiles/fusecu_principles.dir/buffer_class.cpp.o.d"
  "/root/repo/src/principles/principle_optimizer.cpp" "src/principles/CMakeFiles/fusecu_principles.dir/principle_optimizer.cpp.o" "gcc" "src/principles/CMakeFiles/fusecu_principles.dir/principle_optimizer.cpp.o.d"
  "/root/repo/src/principles/two_level.cpp" "src/principles/CMakeFiles/fusecu_principles.dir/two_level.cpp.o" "gcc" "src/principles/CMakeFiles/fusecu_principles.dir/two_level.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/fusecu_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fusecu_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fusecu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
