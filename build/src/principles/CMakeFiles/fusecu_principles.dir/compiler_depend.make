# Empty compiler generated dependencies file for fusecu_principles.
# This may be replaced when dependencies are built.
