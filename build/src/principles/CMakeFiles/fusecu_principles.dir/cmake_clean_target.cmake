file(REMOVE_RECURSE
  "libfusecu_principles.a"
)
