# Empty compiler generated dependencies file for fusecu_sim.
# This may be replaced when dependencies are built.
