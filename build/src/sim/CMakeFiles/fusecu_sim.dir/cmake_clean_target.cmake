file(REMOVE_RECURSE
  "libfusecu_sim.a"
)
