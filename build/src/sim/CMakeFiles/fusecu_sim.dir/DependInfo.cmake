
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/address_stream.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/address_stream.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/address_stream.cpp.o.d"
  "/root/repo/src/sim/bf16.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/bf16.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/bf16.cpp.o.d"
  "/root/repo/src/sim/buffer_plan.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/buffer_plan.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/buffer_plan.cpp.o.d"
  "/root/repo/src/sim/compute_unit.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/compute_unit.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/compute_unit.cpp.o.d"
  "/root/repo/src/sim/cu_scheduler.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/cu_scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/cu_scheduler.cpp.o.d"
  "/root/repo/src/sim/dram_model.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/dram_model.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/dram_model.cpp.o.d"
  "/root/repo/src/sim/energy_model.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/energy_model.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/energy_model.cpp.o.d"
  "/root/repo/src/sim/fidelity.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/fidelity.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/fidelity.cpp.o.d"
  "/root/repo/src/sim/fusecu_quad.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/fusecu_quad.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/fusecu_quad.cpp.o.d"
  "/root/repo/src/sim/matrix.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/matrix.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/matrix.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/perf_model.cpp.o.d"
  "/root/repo/src/sim/softmax_unit.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/softmax_unit.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/softmax_unit.cpp.o.d"
  "/root/repo/src/sim/tiled_executor.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/tiled_executor.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/tiled_executor.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/timeline.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/xs_pe.cpp" "src/sim/CMakeFiles/fusecu_sim.dir/xs_pe.cpp.o" "gcc" "src/sim/CMakeFiles/fusecu_sim.dir/xs_pe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/fusecu_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/fusecu_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/principles/CMakeFiles/fusecu_principles.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/fusecu_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fusecu_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fusecu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
