# Empty dependencies file for fusecu_common.
# This may be replaced when dependencies are built.
