
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/cli.cpp" "src/common/CMakeFiles/fusecu_common.dir/cli.cpp.o" "gcc" "src/common/CMakeFiles/fusecu_common.dir/cli.cpp.o.d"
  "/root/repo/src/common/json_writer.cpp" "src/common/CMakeFiles/fusecu_common.dir/json_writer.cpp.o" "gcc" "src/common/CMakeFiles/fusecu_common.dir/json_writer.cpp.o.d"
  "/root/repo/src/common/math_util.cpp" "src/common/CMakeFiles/fusecu_common.dir/math_util.cpp.o" "gcc" "src/common/CMakeFiles/fusecu_common.dir/math_util.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/common/CMakeFiles/fusecu_common.dir/table.cpp.o" "gcc" "src/common/CMakeFiles/fusecu_common.dir/table.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/common/CMakeFiles/fusecu_common.dir/units.cpp.o" "gcc" "src/common/CMakeFiles/fusecu_common.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
