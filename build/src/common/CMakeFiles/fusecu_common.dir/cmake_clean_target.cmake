file(REMOVE_RECURSE
  "libfusecu_common.a"
)
