file(REMOVE_RECURSE
  "CMakeFiles/fusecu_common.dir/cli.cpp.o"
  "CMakeFiles/fusecu_common.dir/cli.cpp.o.d"
  "CMakeFiles/fusecu_common.dir/json_writer.cpp.o"
  "CMakeFiles/fusecu_common.dir/json_writer.cpp.o.d"
  "CMakeFiles/fusecu_common.dir/math_util.cpp.o"
  "CMakeFiles/fusecu_common.dir/math_util.cpp.o.d"
  "CMakeFiles/fusecu_common.dir/table.cpp.o"
  "CMakeFiles/fusecu_common.dir/table.cpp.o.d"
  "CMakeFiles/fusecu_common.dir/units.cpp.o"
  "CMakeFiles/fusecu_common.dir/units.cpp.o.d"
  "libfusecu_common.a"
  "libfusecu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusecu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
