# Empty dependencies file for fusecu_arch.
# This may be replaced when dependencies are built.
