file(REMOVE_RECURSE
  "libfusecu_arch.a"
)
