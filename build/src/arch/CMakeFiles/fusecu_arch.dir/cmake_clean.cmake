file(REMOVE_RECURSE
  "CMakeFiles/fusecu_arch.dir/arch_spec.cpp.o"
  "CMakeFiles/fusecu_arch.dir/arch_spec.cpp.o.d"
  "CMakeFiles/fusecu_arch.dir/area_model.cpp.o"
  "CMakeFiles/fusecu_arch.dir/area_model.cpp.o.d"
  "CMakeFiles/fusecu_arch.dir/dataflow_space.cpp.o"
  "CMakeFiles/fusecu_arch.dir/dataflow_space.cpp.o.d"
  "libfusecu_arch.a"
  "libfusecu_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusecu_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
