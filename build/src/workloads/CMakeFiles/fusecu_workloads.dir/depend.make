# Empty dependencies file for fusecu_workloads.
# This may be replaced when dependencies are built.
