file(REMOVE_RECURSE
  "libfusecu_workloads.a"
)
