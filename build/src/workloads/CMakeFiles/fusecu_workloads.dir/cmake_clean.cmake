file(REMOVE_RECURSE
  "CMakeFiles/fusecu_workloads.dir/model_eval.cpp.o"
  "CMakeFiles/fusecu_workloads.dir/model_eval.cpp.o.d"
  "CMakeFiles/fusecu_workloads.dir/report.cpp.o"
  "CMakeFiles/fusecu_workloads.dir/report.cpp.o.d"
  "CMakeFiles/fusecu_workloads.dir/run_config.cpp.o"
  "CMakeFiles/fusecu_workloads.dir/run_config.cpp.o.d"
  "CMakeFiles/fusecu_workloads.dir/transformer.cpp.o"
  "CMakeFiles/fusecu_workloads.dir/transformer.cpp.o.d"
  "libfusecu_workloads.a"
  "libfusecu_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusecu_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
