file(REMOVE_RECURSE
  "libfusecu_search.a"
)
