# Empty dependencies file for fusecu_search.
# This may be replaced when dependencies are built.
