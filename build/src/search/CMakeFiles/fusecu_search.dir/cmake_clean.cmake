file(REMOVE_RECURSE
  "CMakeFiles/fusecu_search.dir/annealing.cpp.o"
  "CMakeFiles/fusecu_search.dir/annealing.cpp.o.d"
  "CMakeFiles/fusecu_search.dir/dat_optimizer.cpp.o"
  "CMakeFiles/fusecu_search.dir/dat_optimizer.cpp.o.d"
  "CMakeFiles/fusecu_search.dir/exhaustive.cpp.o"
  "CMakeFiles/fusecu_search.dir/exhaustive.cpp.o.d"
  "CMakeFiles/fusecu_search.dir/genetic.cpp.o"
  "CMakeFiles/fusecu_search.dir/genetic.cpp.o.d"
  "libfusecu_search.a"
  "libfusecu_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusecu_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
