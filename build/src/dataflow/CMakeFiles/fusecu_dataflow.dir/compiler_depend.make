# Empty compiler generated dependencies file for fusecu_dataflow.
# This may be replaced when dependencies are built.
