file(REMOVE_RECURSE
  "CMakeFiles/fusecu_dataflow.dir/access_model.cpp.o"
  "CMakeFiles/fusecu_dataflow.dir/access_model.cpp.o.d"
  "CMakeFiles/fusecu_dataflow.dir/dataflow.cpp.o"
  "CMakeFiles/fusecu_dataflow.dir/dataflow.cpp.o.d"
  "libfusecu_dataflow.a"
  "libfusecu_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusecu_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
