file(REMOVE_RECURSE
  "libfusecu_dataflow.a"
)
