file(REMOVE_RECURSE
  "libfusecu_rtl.a"
)
