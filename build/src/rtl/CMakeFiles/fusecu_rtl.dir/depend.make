# Empty dependencies file for fusecu_rtl.
# This may be replaced when dependencies are built.
