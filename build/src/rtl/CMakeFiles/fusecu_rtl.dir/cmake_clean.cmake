file(REMOVE_RECURSE
  "CMakeFiles/fusecu_rtl.dir/testbench_gen.cpp.o"
  "CMakeFiles/fusecu_rtl.dir/testbench_gen.cpp.o.d"
  "CMakeFiles/fusecu_rtl.dir/verilog_gen.cpp.o"
  "CMakeFiles/fusecu_rtl.dir/verilog_gen.cpp.o.d"
  "libfusecu_rtl.a"
  "libfusecu_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusecu_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
