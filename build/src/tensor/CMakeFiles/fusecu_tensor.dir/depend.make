# Empty dependencies file for fusecu_tensor.
# This may be replaced when dependencies are built.
