file(REMOVE_RECURSE
  "CMakeFiles/fusecu_tensor.dir/conv.cpp.o"
  "CMakeFiles/fusecu_tensor.dir/conv.cpp.o.d"
  "CMakeFiles/fusecu_tensor.dir/op_graph.cpp.o"
  "CMakeFiles/fusecu_tensor.dir/op_graph.cpp.o.d"
  "CMakeFiles/fusecu_tensor.dir/tensor_op.cpp.o"
  "CMakeFiles/fusecu_tensor.dir/tensor_op.cpp.o.d"
  "libfusecu_tensor.a"
  "libfusecu_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusecu_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
