file(REMOVE_RECURSE
  "libfusecu_tensor.a"
)
