
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fusion/chain_fusion.cpp" "src/fusion/CMakeFiles/fusecu_fusion.dir/chain_fusion.cpp.o" "gcc" "src/fusion/CMakeFiles/fusecu_fusion.dir/chain_fusion.cpp.o.d"
  "/root/repo/src/fusion/fused_pair.cpp" "src/fusion/CMakeFiles/fusecu_fusion.dir/fused_pair.cpp.o" "gcc" "src/fusion/CMakeFiles/fusecu_fusion.dir/fused_pair.cpp.o.d"
  "/root/repo/src/fusion/fusion_planner.cpp" "src/fusion/CMakeFiles/fusecu_fusion.dir/fusion_planner.cpp.o" "gcc" "src/fusion/CMakeFiles/fusecu_fusion.dir/fusion_planner.cpp.o.d"
  "/root/repo/src/fusion/fusion_principles.cpp" "src/fusion/CMakeFiles/fusecu_fusion.dir/fusion_principles.cpp.o" "gcc" "src/fusion/CMakeFiles/fusecu_fusion.dir/fusion_principles.cpp.o.d"
  "/root/repo/src/fusion/graph_planner.cpp" "src/fusion/CMakeFiles/fusecu_fusion.dir/graph_planner.cpp.o" "gcc" "src/fusion/CMakeFiles/fusecu_fusion.dir/graph_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/principles/CMakeFiles/fusecu_principles.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/fusecu_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fusecu_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fusecu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
