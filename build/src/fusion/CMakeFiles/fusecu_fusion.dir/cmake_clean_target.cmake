file(REMOVE_RECURSE
  "libfusecu_fusion.a"
)
