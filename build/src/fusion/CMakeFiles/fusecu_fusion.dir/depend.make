# Empty dependencies file for fusecu_fusion.
# This may be replaced when dependencies are built.
