file(REMOVE_RECURSE
  "CMakeFiles/fusecu_fusion.dir/chain_fusion.cpp.o"
  "CMakeFiles/fusecu_fusion.dir/chain_fusion.cpp.o.d"
  "CMakeFiles/fusecu_fusion.dir/fused_pair.cpp.o"
  "CMakeFiles/fusecu_fusion.dir/fused_pair.cpp.o.d"
  "CMakeFiles/fusecu_fusion.dir/fusion_planner.cpp.o"
  "CMakeFiles/fusecu_fusion.dir/fusion_planner.cpp.o.d"
  "CMakeFiles/fusecu_fusion.dir/fusion_principles.cpp.o"
  "CMakeFiles/fusecu_fusion.dir/fusion_principles.cpp.o.d"
  "CMakeFiles/fusecu_fusion.dir/graph_planner.cpp.o"
  "CMakeFiles/fusecu_fusion.dir/graph_planner.cpp.o.d"
  "libfusecu_fusion.a"
  "libfusecu_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusecu_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
