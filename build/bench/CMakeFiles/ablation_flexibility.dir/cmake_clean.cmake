file(REMOVE_RECURSE
  "CMakeFiles/ablation_flexibility.dir/ablation_flexibility.cpp.o"
  "CMakeFiles/ablation_flexibility.dir/ablation_flexibility.cpp.o.d"
  "ablation_flexibility"
  "ablation_flexibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flexibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
