# Empty compiler generated dependencies file for ablation_flexibility.
# This may be replaced when dependencies are built.
