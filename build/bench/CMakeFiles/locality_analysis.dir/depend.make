# Empty dependencies file for locality_analysis.
# This may be replaced when dependencies are built.
