file(REMOVE_RECURSE
  "CMakeFiles/locality_analysis.dir/locality_analysis.cpp.o"
  "CMakeFiles/locality_analysis.dir/locality_analysis.cpp.o.d"
  "locality_analysis"
  "locality_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
