# Empty compiler generated dependencies file for fig12_area.
# This may be replaced when dependencies are built.
