file(REMOVE_RECURSE
  "CMakeFiles/fig12_area.dir/fig12_area.cpp.o"
  "CMakeFiles/fig12_area.dir/fig12_area.cpp.o.d"
  "fig12_area"
  "fig12_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
