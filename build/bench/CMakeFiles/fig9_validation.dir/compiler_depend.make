# Empty compiler generated dependencies file for fig9_validation.
# This may be replaced when dependencies are built.
