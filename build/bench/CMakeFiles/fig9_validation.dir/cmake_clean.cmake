file(REMOVE_RECURSE
  "CMakeFiles/fig9_validation.dir/fig9_validation.cpp.o"
  "CMakeFiles/fig9_validation.dir/fig9_validation.cpp.o.d"
  "fig9_validation"
  "fig9_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
