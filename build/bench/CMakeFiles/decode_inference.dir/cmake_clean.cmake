file(REMOVE_RECURSE
  "CMakeFiles/decode_inference.dir/decode_inference.cpp.o"
  "CMakeFiles/decode_inference.dir/decode_inference.cpp.o.d"
  "decode_inference"
  "decode_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decode_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
