# Empty compiler generated dependencies file for decode_inference.
# This may be replaced when dependencies are built.
