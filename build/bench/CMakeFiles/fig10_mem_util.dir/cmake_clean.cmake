file(REMOVE_RECURSE
  "CMakeFiles/fig10_mem_util.dir/fig10_mem_util.cpp.o"
  "CMakeFiles/fig10_mem_util.dir/fig10_mem_util.cpp.o.d"
  "fig10_mem_util"
  "fig10_mem_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mem_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
