# Empty dependencies file for fig10_mem_util.
# This may be replaced when dependencies are built.
