file(REMOVE_RECURSE
  "CMakeFiles/conv_workloads.dir/conv_workloads.cpp.o"
  "CMakeFiles/conv_workloads.dir/conv_workloads.cpp.o.d"
  "conv_workloads"
  "conv_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
