# Empty compiler generated dependencies file for conv_workloads.
# This may be replaced when dependencies are built.
