file(REMOVE_RECURSE
  "CMakeFiles/ablation_optimizer_speed.dir/ablation_optimizer_speed.cpp.o"
  "CMakeFiles/ablation_optimizer_speed.dir/ablation_optimizer_speed.cpp.o.d"
  "ablation_optimizer_speed"
  "ablation_optimizer_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimizer_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
