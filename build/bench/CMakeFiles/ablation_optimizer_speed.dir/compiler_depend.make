# Empty compiler generated dependencies file for ablation_optimizer_speed.
# This may be replaced when dependencies are built.
