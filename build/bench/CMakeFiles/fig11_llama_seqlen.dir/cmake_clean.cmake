file(REMOVE_RECURSE
  "CMakeFiles/fig11_llama_seqlen.dir/fig11_llama_seqlen.cpp.o"
  "CMakeFiles/fig11_llama_seqlen.dir/fig11_llama_seqlen.cpp.o.d"
  "fig11_llama_seqlen"
  "fig11_llama_seqlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_llama_seqlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
