# Empty compiler generated dependencies file for fig11_llama_seqlen.
# This may be replaced when dependencies are built.
