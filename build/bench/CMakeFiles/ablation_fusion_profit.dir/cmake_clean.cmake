file(REMOVE_RECURSE
  "CMakeFiles/ablation_fusion_profit.dir/ablation_fusion_profit.cpp.o"
  "CMakeFiles/ablation_fusion_profit.dir/ablation_fusion_profit.cpp.o.d"
  "ablation_fusion_profit"
  "ablation_fusion_profit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fusion_profit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
