# Empty dependencies file for ablation_fusion_profit.
# This may be replaced when dependencies are built.
