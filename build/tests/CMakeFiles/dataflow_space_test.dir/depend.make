# Empty dependencies file for dataflow_space_test.
# This may be replaced when dependencies are built.
