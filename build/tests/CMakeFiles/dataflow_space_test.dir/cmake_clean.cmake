file(REMOVE_RECURSE
  "CMakeFiles/dataflow_space_test.dir/dataflow_space_test.cpp.o"
  "CMakeFiles/dataflow_space_test.dir/dataflow_space_test.cpp.o.d"
  "dataflow_space_test"
  "dataflow_space_test.pdb"
  "dataflow_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
