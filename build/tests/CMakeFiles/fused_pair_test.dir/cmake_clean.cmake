file(REMOVE_RECURSE
  "CMakeFiles/fused_pair_test.dir/fused_pair_test.cpp.o"
  "CMakeFiles/fused_pair_test.dir/fused_pair_test.cpp.o.d"
  "fused_pair_test"
  "fused_pair_test.pdb"
  "fused_pair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fused_pair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
