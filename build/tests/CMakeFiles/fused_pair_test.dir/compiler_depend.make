# Empty compiler generated dependencies file for fused_pair_test.
# This may be replaced when dependencies are built.
