file(REMOVE_RECURSE
  "CMakeFiles/cu_scheduler_test.dir/cu_scheduler_test.cpp.o"
  "CMakeFiles/cu_scheduler_test.dir/cu_scheduler_test.cpp.o.d"
  "cu_scheduler_test"
  "cu_scheduler_test.pdb"
  "cu_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cu_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
