file(REMOVE_RECURSE
  "CMakeFiles/address_stream_test.dir/address_stream_test.cpp.o"
  "CMakeFiles/address_stream_test.dir/address_stream_test.cpp.o.d"
  "address_stream_test"
  "address_stream_test.pdb"
  "address_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
