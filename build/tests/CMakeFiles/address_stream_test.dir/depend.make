# Empty dependencies file for address_stream_test.
# This may be replaced when dependencies are built.
