# Empty dependencies file for arch_spec_test.
# This may be replaced when dependencies are built.
