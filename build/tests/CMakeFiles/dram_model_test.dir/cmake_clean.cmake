file(REMOVE_RECURSE
  "CMakeFiles/dram_model_test.dir/dram_model_test.cpp.o"
  "CMakeFiles/dram_model_test.dir/dram_model_test.cpp.o.d"
  "dram_model_test"
  "dram_model_test.pdb"
  "dram_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
