# Empty compiler generated dependencies file for dram_model_test.
# This may be replaced when dependencies are built.
