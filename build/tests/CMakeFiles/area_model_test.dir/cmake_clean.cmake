file(REMOVE_RECURSE
  "CMakeFiles/area_model_test.dir/area_model_test.cpp.o"
  "CMakeFiles/area_model_test.dir/area_model_test.cpp.o.d"
  "area_model_test"
  "area_model_test.pdb"
  "area_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
