file(REMOVE_RECURSE
  "CMakeFiles/bf16_test.dir/bf16_test.cpp.o"
  "CMakeFiles/bf16_test.dir/bf16_test.cpp.o.d"
  "bf16_test"
  "bf16_test.pdb"
  "bf16_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bf16_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
