file(REMOVE_RECURSE
  "CMakeFiles/access_model_test.dir/access_model_test.cpp.o"
  "CMakeFiles/access_model_test.dir/access_model_test.cpp.o.d"
  "access_model_test"
  "access_model_test.pdb"
  "access_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
