file(REMOVE_RECURSE
  "CMakeFiles/tensor_op_test.dir/tensor_op_test.cpp.o"
  "CMakeFiles/tensor_op_test.dir/tensor_op_test.cpp.o.d"
  "tensor_op_test"
  "tensor_op_test.pdb"
  "tensor_op_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_op_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
