# Empty dependencies file for tensor_op_test.
# This may be replaced when dependencies are built.
