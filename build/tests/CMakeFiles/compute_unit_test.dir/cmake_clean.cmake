file(REMOVE_RECURSE
  "CMakeFiles/compute_unit_test.dir/compute_unit_test.cpp.o"
  "CMakeFiles/compute_unit_test.dir/compute_unit_test.cpp.o.d"
  "compute_unit_test"
  "compute_unit_test.pdb"
  "compute_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
