# Empty compiler generated dependencies file for compute_unit_test.
# This may be replaced when dependencies are built.
