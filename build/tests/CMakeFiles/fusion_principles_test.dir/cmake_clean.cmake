file(REMOVE_RECURSE
  "CMakeFiles/fusion_principles_test.dir/fusion_principles_test.cpp.o"
  "CMakeFiles/fusion_principles_test.dir/fusion_principles_test.cpp.o.d"
  "fusion_principles_test"
  "fusion_principles_test.pdb"
  "fusion_principles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_principles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
