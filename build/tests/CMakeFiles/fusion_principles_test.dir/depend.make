# Empty dependencies file for fusion_principles_test.
# This may be replaced when dependencies are built.
