# Empty compiler generated dependencies file for fusecu_quad_test.
# This may be replaced when dependencies are built.
