
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fusecu_quad_test.cpp" "tests/CMakeFiles/fusecu_quad_test.dir/fusecu_quad_test.cpp.o" "gcc" "tests/CMakeFiles/fusecu_quad_test.dir/fusecu_quad_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fusecu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/fusecu_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/fusecu_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/principles/CMakeFiles/fusecu_principles.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/fusecu_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fusecu_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fusecu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
