file(REMOVE_RECURSE
  "CMakeFiles/fusecu_quad_test.dir/fusecu_quad_test.cpp.o"
  "CMakeFiles/fusecu_quad_test.dir/fusecu_quad_test.cpp.o.d"
  "fusecu_quad_test"
  "fusecu_quad_test.pdb"
  "fusecu_quad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusecu_quad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
