file(REMOVE_RECURSE
  "CMakeFiles/testbench_gen_test.dir/testbench_gen_test.cpp.o"
  "CMakeFiles/testbench_gen_test.dir/testbench_gen_test.cpp.o.d"
  "testbench_gen_test"
  "testbench_gen_test.pdb"
  "testbench_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbench_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
