# Empty dependencies file for testbench_gen_test.
# This may be replaced when dependencies are built.
