# Empty dependencies file for tiled_executor_test.
# This may be replaced when dependencies are built.
