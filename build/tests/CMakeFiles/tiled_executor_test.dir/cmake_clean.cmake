file(REMOVE_RECURSE
  "CMakeFiles/tiled_executor_test.dir/tiled_executor_test.cpp.o"
  "CMakeFiles/tiled_executor_test.dir/tiled_executor_test.cpp.o.d"
  "tiled_executor_test"
  "tiled_executor_test.pdb"
  "tiled_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiled_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
