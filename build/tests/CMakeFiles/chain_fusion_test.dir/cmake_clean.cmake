file(REMOVE_RECURSE
  "CMakeFiles/chain_fusion_test.dir/chain_fusion_test.cpp.o"
  "CMakeFiles/chain_fusion_test.dir/chain_fusion_test.cpp.o.d"
  "chain_fusion_test"
  "chain_fusion_test.pdb"
  "chain_fusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_fusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
