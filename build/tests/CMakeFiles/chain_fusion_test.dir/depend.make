# Empty dependencies file for chain_fusion_test.
# This may be replaced when dependencies are built.
