# Empty dependencies file for graph_planner_test.
# This may be replaced when dependencies are built.
