file(REMOVE_RECURSE
  "CMakeFiles/graph_planner_test.dir/graph_planner_test.cpp.o"
  "CMakeFiles/graph_planner_test.dir/graph_planner_test.cpp.o.d"
  "graph_planner_test"
  "graph_planner_test.pdb"
  "graph_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
