# Empty dependencies file for run_config_test.
# This may be replaced when dependencies are built.
