file(REMOVE_RECURSE
  "CMakeFiles/run_config_test.dir/run_config_test.cpp.o"
  "CMakeFiles/run_config_test.dir/run_config_test.cpp.o.d"
  "run_config_test"
  "run_config_test.pdb"
  "run_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
