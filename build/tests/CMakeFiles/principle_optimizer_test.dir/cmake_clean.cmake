file(REMOVE_RECURSE
  "CMakeFiles/principle_optimizer_test.dir/principle_optimizer_test.cpp.o"
  "CMakeFiles/principle_optimizer_test.dir/principle_optimizer_test.cpp.o.d"
  "principle_optimizer_test"
  "principle_optimizer_test.pdb"
  "principle_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/principle_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
