# Empty dependencies file for principle_optimizer_test.
# This may be replaced when dependencies are built.
