# Empty compiler generated dependencies file for buffer_plan_test.
# This may be replaced when dependencies are built.
