file(REMOVE_RECURSE
  "CMakeFiles/buffer_plan_test.dir/buffer_plan_test.cpp.o"
  "CMakeFiles/buffer_plan_test.dir/buffer_plan_test.cpp.o.d"
  "buffer_plan_test"
  "buffer_plan_test.pdb"
  "buffer_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
