# Empty dependencies file for fuzz_integration_test.
# This may be replaced when dependencies are built.
