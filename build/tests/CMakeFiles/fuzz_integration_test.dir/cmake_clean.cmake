file(REMOVE_RECURSE
  "CMakeFiles/fuzz_integration_test.dir/fuzz_integration_test.cpp.o"
  "CMakeFiles/fuzz_integration_test.dir/fuzz_integration_test.cpp.o.d"
  "fuzz_integration_test"
  "fuzz_integration_test.pdb"
  "fuzz_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
