file(REMOVE_RECURSE
  "CMakeFiles/softmax_unit_test.dir/softmax_unit_test.cpp.o"
  "CMakeFiles/softmax_unit_test.dir/softmax_unit_test.cpp.o.d"
  "softmax_unit_test"
  "softmax_unit_test.pdb"
  "softmax_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softmax_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
