# Empty dependencies file for softmax_unit_test.
# This may be replaced when dependencies are built.
