file(REMOVE_RECURSE
  "CMakeFiles/fusion_planner_test.dir/fusion_planner_test.cpp.o"
  "CMakeFiles/fusion_planner_test.dir/fusion_planner_test.cpp.o.d"
  "fusion_planner_test"
  "fusion_planner_test.pdb"
  "fusion_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
