# Empty dependencies file for op_graph_test.
# This may be replaced when dependencies are built.
