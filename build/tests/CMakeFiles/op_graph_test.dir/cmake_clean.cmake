file(REMOVE_RECURSE
  "CMakeFiles/op_graph_test.dir/op_graph_test.cpp.o"
  "CMakeFiles/op_graph_test.dir/op_graph_test.cpp.o.d"
  "op_graph_test"
  "op_graph_test.pdb"
  "op_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
