#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "arch/dataflow_space.hpp"
#include "serve/canonical.hpp"

namespace fusecu {
namespace {

constexpr BufferSize kBs = 256 * 1024;

TEST(CanonicalIntraKey, TransposeClassSharesKeyWithDistinctSlots) {
  TensorOp op = TensorOp::matmul("t", 2048, 512, 512);
  TensorOp opT = TensorOp::matmul("tT", 512, 512, 2048);
  CanonicalIntraKey a = canonical_intra_key(op, kBs);
  CanonicalIntraKey b = canonical_intra_key(opT, kBs);
  EXPECT_EQ(a.text, b.text) << "same labels, transposed extents: one transpose class";
  EXPECT_NE(a.swapped, b.swapped) << "each orientation gets its own plan slot";

  // Square matmuls are their own transpose: slot 0 by convention.
  CanonicalIntraKey sq = canonical_intra_key(TensorOp::matmul("s", 512, 64, 512), kBs);
  EXPECT_FALSE(sq.swapped);
}

TEST(CanonicalIntraKey, OperatorNameDoesNotMatterButLabelsDo) {
  TensorOp a = TensorOp::matmul("proj.q", 1024, 768, 768);
  TensorOp b = TensorOp::matmul("proj.k", 1024, 768, 768);
  EXPECT_EQ(canonical_intra_key(a, kBs).text, canonical_intra_key(b, kBs).text)
      << "the optimizer never reads the op name";

  // Tensor names appear in rule strings ("P1(stationary=A)"), so renaming an
  // operand must change the key.
  TensorOp named = TensorOp::matmul("proj.q", 1024, 768, 768, "Wq", "X", "Q");
  EXPECT_NE(canonical_intra_key(a, kBs).text, canonical_intra_key(named, kBs).text);
}

TEST(CanonicalIntraKey, NameBoundariesAreUnambiguous) {
  // Length-prefixed name encoding: ("AB","C") and ("A","BC") concatenate to
  // the same characters but must not collide.
  TensorOp ab_c = TensorOp::matmul("x", 64, 64, 64, "AB", "C", "Z");
  TensorOp a_bc = TensorOp::matmul("x", 64, 64, 64, "A", "BC", "Z");
  EXPECT_NE(canonical_intra_key(ab_c, kBs).text, canonical_intra_key(a_bc, kBs).text);
}

TEST(CanonicalIntraKey, BufferClampAtFullFit) {
  const Index m = 128, k = 64, l = 256;
  TensorOp op = TensorOp::matmul("x", m, k, l);
  const BufferSize full_fit = m * k + k * l + m * l;
  EXPECT_EQ(clamp_buffer_for_intra(op, full_fit), full_fit);
  EXPECT_EQ(clamp_buffer_for_intra(op, full_fit * 1000), full_fit);
  EXPECT_EQ(clamp_buffer_for_intra(op, full_fit - 1), full_fit - 1);

  // Saturated buffers share a key; sub-saturated sizes stay distinct.
  EXPECT_EQ(canonical_intra_key(op, full_fit).text,
            canonical_intra_key(op, full_fit * 1000).text);
  EXPECT_NE(canonical_intra_key(op, full_fit - 1).text,
            canonical_intra_key(op, full_fit).text);
  EXPECT_NE(canonical_intra_key(op, 3000).text, canonical_intra_key(op, 3001).text);
}

TEST(CanonicalIntraKey, DistinctWorkloadsNeverCollide) {
  // Every key in this sweep describes a genuinely different planning problem
  // (different extents modulo transposition, labels, or effective buffer);
  // all must be unique.
  std::set<std::string> keys;
  std::vector<std::string> described;
  auto add = [&](const TensorOp& op, BufferSize bs, const std::string& what) {
    CanonicalIntraKey key = canonical_intra_key(op, bs);
    EXPECT_TRUE(keys.insert(key.text).second)
        << what << " collided with an earlier workload; key = " << key.text;
    described.push_back(what);
  };

  const Index extents[] = {64, 128, 768, 1024};
  for (Index m : extents) {
    for (Index k : extents) {
      for (Index l : extents) {
        if (m > l) continue;  // the transpose is the SAME class by design
        add(TensorOp::matmul("w", m, k, l), kBs,
            "matmul " + std::to_string(m) + "x" + std::to_string(k) + "x" + std::to_string(l));
      }
    }
  }
  add(TensorOp::matmul("w", 64, 64, 64), 1024, "small buffer");
  add(TensorOp::matmul("w", 64, 64, 64), 2048, "medium buffer");
  add(TensorOp::matmul("w", 64, 64, 64, "Wq", "X", "Q"), kBs, "renamed tensors");
  ASSERT_GE(keys.size(), 40u);
}

TEST(CanonicalIntraKey, OutOfScopeOpsReturnNullopt) {
  TensorOp gelu = TensorOp::elementwise("gelu", 128, 128, "X", "Y");
  EXPECT_FALSE(try_canonical_intra_key(gelu, kBs).has_value());
  EXPECT_THROW(canonical_intra_key(gelu, kBs), std::invalid_argument);
  EXPECT_TRUE(try_canonical_intra_key(TensorOp::matmul("m", 8, 8, 8), kBs).has_value());
}

TEST(CanonicalFusedKey, ExactInAllFourExtentsAndBuffer) {
  std::set<std::string> keys;
  for (Index n : {32, 64, 128}) {
    EXPECT_TRUE(keys.insert(canonical_fused_key(FusedPair::make(1024, 64, 1024, n), kBs)).second);
  }
  // No transpose folding for fused pairs: construction is asymmetric.
  EXPECT_NE(canonical_fused_key(FusedPair::make(1024, 64, 512, 64), kBs),
            canonical_fused_key(FusedPair::make(512, 64, 1024, 64), kBs));
  EXPECT_NE(canonical_fused_key(FusedPair::make(1024, 64, 1024, 64), kBs),
            canonical_fused_key(FusedPair::make(1024, 64, 1024, 64), kBs + 1));
}

TEST(CanonicalArchKey, ArchitectureAttributesAreSpelledIn) {
  TensorOp op = TensorOp::matmul("m", 1024, 768, 768);
  ArchSpec fusecu = make_fusecu();
  ArchSpec tpu = make_tpu_v4i();
  auto a = try_canonical_arch_key(op, fusecu);
  auto b = try_canonical_arch_key(op, tpu);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b) << "different dataflow spaces must never share plans";

  // Bandwidth and frequency price plans but never change them: excluded.
  ArchSpec faster = fusecu;
  faster.bandwidth_bytes_per_cycle *= 2;
  faster.frequency_ghz *= 2;
  EXPECT_EQ(*a, *try_canonical_arch_key(op, faster));

  // Buffer size and flexibility DO change plans: included.
  ArchSpec bigger = fusecu;
  bigger.buffer_bytes *= 2;
  EXPECT_NE(*a, *try_canonical_arch_key(op, bigger));
  ArchSpec rigid = fusecu;
  rigid.tiling_flex = TilingFlexibility::kLow;
  EXPECT_NE(*a, *try_canonical_arch_key(op, rigid));

  TensorOp gelu = TensorOp::elementwise("gelu", 128, 128, "X", "Y");
  EXPECT_FALSE(try_canonical_arch_key(gelu, fusecu).has_value());
}

}  // namespace
}  // namespace fusecu
