#include <gtest/gtest.h>

#include "check/harness.hpp"
#include "check/repro.hpp"
#include "check/shrink.hpp"
#include "dataflow/access_model.hpp"

namespace fusecu {
namespace {

/// Options for fast, deterministic shrink tests: the analytical oracles are
/// enough to reproduce an injected optimizer bug, so skip the simulator and
/// the serve round-trips.
CheckOptions analytical_only() {
  CheckOptions opts;
  opts.with_executor = false;
  opts.with_serve = false;
  opts.with_arch = false;
  return opts;
}

/// The ISSUE's canonical injected bug: flip the principled M tile to its
/// maximum after optimization.  The mutated plan no longer re-evaluates to
/// its reported cost (and usually overflows the buffer), so the conformance
/// checker must flag it — and keep flagging it as the workload shrinks.
CheckOptions flipped_tile_max() {
  CheckOptions opts = analytical_only();
  opts.intra_mutator = [](const TensorOp& op, IntraOptResult& r) {
    Index& t_m = r.dataflow.tile[static_cast<std::size_t>(mm::kDimM)];
    t_m = (t_m == op.extent(mm::kDimM)) ? 1 : op.extent(mm::kDimM);
  };
  return opts;
}

Workload intra_workload(Index m, Index k, Index l, BufferSize bs) {
  Workload w;
  w.kind = WorkloadKind::kIntra;
  w.m = m;
  w.k = k;
  w.l = l;
  w.bs = bs;
  return w;
}

TEST(InjectedBug, HarnessCatchesFlippedTileMax) {
  Workload w = intra_workload(37, 23, 41, 200);
  CheckReport clean = check_workload(w, analytical_only());
  ASSERT_TRUE(clean.ok()) << clean.summary();

  CheckReport broken = check_workload(w, flipped_tile_max());
  ASSERT_FALSE(broken.ok()) << "injected bug must be detected";
}

TEST(InjectedBug, ShrinksToTinyRepro) {
  Workload w = intra_workload(37, 23, 41, 200);
  CheckOptions opts = flipped_tile_max();
  CheckReport broken = check_workload(w, opts);
  ASSERT_FALSE(broken.ok());

  ShrinkResult s = shrink_workload(w, broken.failures.front().check, opts);
  EXPECT_GT(s.attempts, 0);
  EXPECT_GT(s.accepted, 0);

  // The minimized workload still fails the same check...
  CheckReport still = check_workload(s.workload, opts);
  EXPECT_TRUE(still.has_failure(s.check)) << still.summary();

  // ... and is tiny: the acceptance bar is every dimension <= 8.
  EXPECT_LE(s.workload.m, 8);
  EXPECT_LE(s.workload.k, 8);
  EXPECT_LE(s.workload.l, 8);
  EXPECT_LE(s.workload.bs, 64);
}

TEST(Shrink, NonReproducingFailureReturnsOriginal) {
  Workload w = intra_workload(12, 12, 12, 100);
  // No bug injected, so the requested check never fires during shrinking.
  ShrinkResult s = shrink_workload(w, "intra/self_consistent", analytical_only());
  EXPECT_EQ(s.accepted, 0);
  EXPECT_GT(s.attempts, 0);
  EXPECT_EQ(s.workload.to_string(), w.to_string());
}

TEST(Shrink, PreservesWorkloadKind) {
  Workload w;
  w.kind = WorkloadKind::kFused;
  w.m = 10;
  w.k = 6;
  w.l = 9;
  w.n = 7;
  w.bs = 120;
  // Shrinking against a check that never fails just walks candidates; the
  // kind (and therefore the materialized op structure) must never change.
  ShrinkResult s = shrink_workload(w, "fused/opt_vs_exhaustive", analytical_only());
  EXPECT_EQ(s.workload.kind, WorkloadKind::kFused);
}

// --- Repro JSON round-trips for every workload kind.

TEST(Repro, RoundTripIntra) {
  Repro r;
  r.original = intra_workload(37, 23, 41, 200);
  r.original.seed = 0xdeadbeef;
  r.shrunk = intra_workload(2, 1, 1, 3);
  r.failures = {{"intra/self_consistent", "re-evaluated total: 10 vs 12"}};
  r.tool_version = "check_shrink_test";

  Repro back = repro_from_json(repro_to_json(r));
  EXPECT_EQ(back.original.to_string(), r.original.to_string());
  EXPECT_EQ(back.original.seed, r.original.seed);
  EXPECT_EQ(back.shrunk.to_string(), r.shrunk.to_string());
  ASSERT_EQ(back.failures.size(), 1u);
  EXPECT_EQ(back.failures[0].check, r.failures[0].check);
  EXPECT_EQ(back.failures[0].detail, r.failures[0].detail);
  EXPECT_EQ(back.tool_version, r.tool_version);
}

TEST(Repro, RoundTripChain) {
  Repro r;
  r.original.kind = WorkloadKind::kChain;
  r.original.chain.m = 16;
  r.original.chain.dims = {8, 24, 32};
  r.original.chain.act_after = {true};
  r.original.bs = 512;
  r.shrunk = r.original;

  Repro back = repro_from_json(repro_to_json(r));
  EXPECT_EQ(back.original.to_string(), r.original.to_string());
  EXPECT_EQ(back.original.chain.dims, r.original.chain.dims);
  EXPECT_EQ(back.original.chain.act_after, r.original.chain.act_after);
}

TEST(Repro, RejectsMalformedDocuments) {
  EXPECT_THROW(repro_from_json("not json at all"), std::exception);
  EXPECT_THROW(repro_from_json("{\"schema\": 999}"), std::invalid_argument);
}

}  // namespace
}  // namespace fusecu
