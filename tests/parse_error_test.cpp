#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/json_parse.hpp"
#include "common/parse_error.hpp"
#include "workloads/run_config.hpp"

namespace fusecu {
namespace {

TEST(ParseError, FormatsCompilerStyle) {
  ParseError e("eval.cfg", 7, 1, "key = value", "got \"platfroms TPUv4i\"");
  EXPECT_EQ(std::string(e.what()), "eval.cfg:7:1: expected key = value — got \"platfroms TPUv4i\"");
  EXPECT_EQ(e.source(), "eval.cfg");
  EXPECT_EQ(e.line(), 7);
  EXPECT_EQ(e.column(), 1);
  EXPECT_EQ(e.expected(), "key = value");

  // Zero column / empty detail degrade gracefully.
  ParseError bare("x.json", 3, 0, "'}'");
  EXPECT_EQ(std::string(bare.what()), "x.json:3: expected '}'");

  // It stays catchable as std::invalid_argument at every existing site.
  try {
    throw ParseError("f", 1, 1, "t");
    FAIL();
  } catch (const std::invalid_argument&) {
  }
}

TEST(ParseError, LineColumnAt) {
  const std::string text = "ab\ncde\n\nf";
  EXPECT_EQ(line_column_at(text, 0), std::make_pair(1, 1));
  EXPECT_EQ(line_column_at(text, 1), std::make_pair(1, 2));
  EXPECT_EQ(line_column_at(text, 3), std::make_pair(2, 1));
  EXPECT_EQ(line_column_at(text, 5), std::make_pair(2, 3));
  EXPECT_EQ(line_column_at(text, 7), std::make_pair(3, 1));
  EXPECT_EQ(line_column_at(text, 8), std::make_pair(4, 1));
  EXPECT_EQ(line_column_at(text, 1000), std::make_pair(4, 2)) << "past-the-end clamps";
}

TEST(ParseError, JsonParserReportsSourceLineColumn) {
  try {
    parse_json("{\"a\":1,\n\"b\":}", "doc.json");
    FAIL() << "malformed JSON must throw";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.source(), "doc.json");
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 0);
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("doc.json:2:", 0), 0u) << what;
    EXPECT_NE(what.find("expected"), std::string::npos) << what;
  }
}

TEST(ParseError, RunConfigReportsSourceAndLine) {
  // Line 3 is missing its '='.
  std::istringstream cfg(
      "buffer = 524288\n"
      "bandwidth = 1024\n"
      "platfroms TPUv4i\n");
  try {
    parse_run_config(cfg, "eval.cfg");
    FAIL() << "malformed config must throw";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.source(), "eval.cfg");
    EXPECT_EQ(e.line(), 3);
    EXPECT_EQ(std::string(e.what()).rfind("eval.cfg:3", 0), 0u) << e.what();
  }

  // Bad value: anchored to its own line, and the expectation names the key.
  std::istringstream bad_value("buffer = lots\n");
  try {
    parse_run_config(bad_value, "b.cfg");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_EQ(e.source(), "b.cfg");
    EXPECT_EQ(e.line(), 1);
    EXPECT_NE(e.expected().find("buffer"), std::string::npos) << e.expected();
  }
}

}  // namespace
}  // namespace fusecu
