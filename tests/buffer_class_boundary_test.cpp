#include <gtest/gtest.h>

#include "principles/buffer_class.hpp"
#include "principles/principle_optimizer.hpp"
#include "search/exhaustive.hpp"

namespace fusecu {
namespace {

/// Boundary-value coverage of the paper's buffer classification
/// (Sec. III-A4): at BS = D_min^2/4, D_min^2/2 and |Tensor_min| — and one
/// element on either side — the class must flip exactly on the documented
/// edge, the optimizer must stay optimal (vs exhaustive search), and the
/// realized NRA regime must obey Principles 1/2/3 where the paper commits
/// to a prediction (deep inside a band; the Single/Two handover floats
/// inside the small band, so no regime assertion *at* those edges).

struct BoundaryShape {
  Index m, k, l;
};

class BufferClassBoundary : public ::testing::TestWithParam<BoundaryShape> {};

TEST_P(BufferClassBoundary, ClassFlipsExactlyAtShiftPoints) {
  const BoundaryShape& s = GetParam();
  TensorOp op = TensorOp::matmul("edge", s.m, s.k, s.l);
  const Index dmin = op.min_extent();
  const BufferSize b1 = dmin * dmin / 4;
  const BufferSize b2 = dmin * dmin / 2;
  const BufferSize b3 = op.tensor_size(op.smallest_tensor());

  EXPECT_EQ(classify_buffer(op, b1), BufferClass::kTiny);
  EXPECT_EQ(classify_buffer(op, b1 + 1), BufferClass::kSmall);
  EXPECT_EQ(classify_buffer(op, b2), BufferClass::kSmall);
  EXPECT_EQ(classify_buffer(op, b2 + 1), BufferClass::kMedium);
  EXPECT_EQ(classify_buffer(op, b3), BufferClass::kMedium);
  EXPECT_EQ(classify_buffer(op, b3 + 1), BufferClass::kLarge);

  ShiftRange shift = single_two_shift_range(op);
  EXPECT_EQ(shift.low, b1);
  EXPECT_EQ(shift.high, b2);
}

TEST_P(BufferClassBoundary, OptimizerStaysOptimalAcrossEveryEdge) {
  const BoundaryShape& s = GetParam();
  TensorOp op = TensorOp::matmul("edge", s.m, s.k, s.l);
  const Index dmin = op.min_extent();
  const BufferSize b3 = op.tensor_size(op.smallest_tensor());
  for (BufferSize edge : {static_cast<BufferSize>(dmin * dmin / 4),
                          static_cast<BufferSize>(dmin * dmin / 2), b3}) {
    for (BufferSize bs : {edge - 1, edge, edge + 1}) {
      if (bs < 3) continue;
      IntraOptResult principled = optimize_intra(op, bs);
      auto searched = exhaustive_intra(op, bs);
      ASSERT_TRUE(searched.has_value());
      EXPECT_LE(principled.access.total, searched->access.total)
          << op.to_string() << " bs=" << bs;
      EXPECT_LE(principled.access.buffer_footprint, bs);
    }
  }
}

TEST_P(BufferClassBoundary, RegimesObeyPrinciplesDeepInsideEachBand) {
  const BoundaryShape& s = GetParam();
  TensorOp op = TensorOp::matmul("edge", s.m, s.k, s.l);
  const Index dmin = op.min_extent();
  const Index tmin = op.tensor_size(op.smallest_tensor());

  // Principle 1 (tiny): output-stationary Single-NRA.
  if (dmin * dmin / 8 >= 3) {
    EXPECT_EQ(optimize_intra(op, dmin * dmin / 8).nra, NraKind::kSingle) << op.to_string();
  }
  // Principle 2 (medium): Two-NRA, mid-band to stay clear of both edges.
  const BufferSize mid = (dmin * dmin / 2 + tmin) / 2 + dmin;
  if (mid > dmin * dmin / 2 && mid <= tmin) {
    EXPECT_EQ(optimize_intra(op, mid).nra, NraKind::kTwo) << op.to_string() << " bs=" << mid;
  }
  // Principle 3 (large, with slack for the moving tiles): Three-NRA at the
  // ideal minimum — every element moved exactly once.
  IntraOptResult three = optimize_intra(op, 2 * tmin + 2 * dmin);
  EXPECT_EQ(three.nra, NraKind::kThree) << op.to_string();
  EXPECT_EQ(three.access.total, op.ideal_min_access());
}

INSTANTIATE_TEST_SUITE_P(Shapes, BufferClassBoundary,
                         ::testing::Values(BoundaryShape{64, 64, 64},      // square
                                           BoundaryShape{32, 48, 80},     // mixed
                                           BoundaryShape{17, 19, 23},     // primes
                                           BoundaryShape{16, 100, 16},    // thin reduction
                                           BoundaryShape{100, 16, 100})); // small middle

}  // namespace
}  // namespace fusecu
