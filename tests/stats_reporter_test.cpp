#include "serve/stats_reporter.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/plan_service.hpp"

/// StatsReporter: the periodic "stats:" line emitted by the serving
/// front-ends.  The regression under test is the shutdown fix — the final
/// partial period (traffic between the last tick and exit) must be flushed
/// as one last line instead of silently dropped — plus the converse: an
/// all-quiet tail emits nothing.

namespace fusecu {
namespace {

int serve_requests(PlanService& service, int n) {
  std::string input;
  for (int i = 0; i < n; ++i) {
    input += "{\"id\":\"s" + std::to_string(i) +
             "\",\"op\":\"matmul\",\"m\":64,\"k\":64,\"l\":64,\"buffer\":\"512KB\"}\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  return service.serve_stream(in, out, "stats_test.jsonl");
}

int count_lines(const std::string& text) {
  int lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(StatsReporter, FinalPartialPeriodIsFlushedOnShutdown) {
  PlanService service(ServeOptions{.threads = 2});
  std::ostringstream os;
  {
    // Interval far beyond the test's lifetime: no tick ever fires, so any
    // output can only come from the destructor's final flush.
    StatsReporter reporter(service, /*interval_s=*/3600.0, os);
    ASSERT_EQ(serve_requests(service, 3), 3);
  }
  const std::string out = os.str();
  ASSERT_NE(out.find("stats:"), std::string::npos)
      << "the tail window between the last tick and exit was dropped; got: \"" << out << "\"";
  EXPECT_EQ(count_lines(out), 1) << out;
  EXPECT_NE(out.find("requests=3"), std::string::npos) << out;
  EXPECT_NE(out.find("qps="), std::string::npos) << out;
  EXPECT_NE(out.find("p99_us="), std::string::npos) << out;
}

TEST(StatsReporter, LineCarriesShedRateAndQueueDelay) {
  // PR 10 line shape: shed_rate= (period delta of net/shed over
  // net/responses) and qdelay_p95_us= (cumulative p95 of the admission
  // controller's serve/queue_delay_us signal) ride every stats line, in a
  // fixed field order so log scrapers can anchor on the prefix.
  PlanService service(ServeOptions{.threads = 2});
  std::ostringstream os;
  {
    StatsReporter reporter(service, 3600.0, os);
    ASSERT_EQ(serve_requests(service, 3), 3);
  }
  const std::string out = os.str();
  ASSERT_NE(out.find("stats:"), std::string::npos) << out;
  EXPECT_NE(out.find(" shed_rate="), std::string::npos) << out;
  EXPECT_NE(out.find(" qdelay_p95_us="), std::string::npos) << out;
  // The stdin path never sheds: the rate must be exactly 0.
  EXPECT_NE(out.find(" shed_rate=0 "), std::string::npos) << out;
  // Field order is part of the line contract.
  EXPECT_LT(out.find(" hit_rate="), out.find(" shed_rate=")) << out;
  EXPECT_LT(out.find(" shed_rate="), out.find(" p50_us=")) << out;
  EXPECT_LT(out.find(" p99_us="), out.find(" qdelay_p95_us=")) << out;
  EXPECT_LT(out.find(" qdelay_p95_us="), out.find(" requests=")) << out;
}

TEST(StatsReporter, IdleShutdownEmitsNothing) {
  PlanService service(ServeOptions{.threads = 2});
  std::ostringstream os;
  {
    StatsReporter reporter(service, 3600.0, os);
  }
  EXPECT_EQ(os.str(), "") << "an all-quiet tail must not produce a noise line";
}

TEST(StatsReporter, ErrorsAloneStillFlush) {
  PlanService service(ServeOptions{.threads = 2});
  std::ostringstream os;
  {
    StatsReporter reporter(service, 3600.0, os);
    std::istringstream in("this is not json\n");
    std::ostringstream responses;
    ASSERT_EQ(service.serve_stream(in, responses, "bad.jsonl"), 1);
  }
  const std::string out = os.str();
  ASSERT_NE(out.find("stats:"), std::string::npos) << out;
  EXPECT_NE(out.find("errors=1"), std::string::npos) << out;
}

TEST(StatsReporter, PeriodicTicksEmitWhileServing) {
  PlanService service(ServeOptions{.threads = 2});
  std::ostringstream os;
  {
    StatsReporter reporter(service, /*interval_s=*/0.05, os);
    ASSERT_EQ(serve_requests(service, 5), 5);
    // Generous margin: several intervals must elapse even on a loaded CI
    // machine for at least one periodic line to land.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  }
  EXPECT_GE(count_lines(os.str()), 1) << os.str();
  EXPECT_NE(os.str().find("stats:"), std::string::npos);
}

TEST(StatsReporter, MultiProducerTrafficAggregatesIntoWellFormedLines) {
  // The reactor refactor made the producer side many-threaded: every shard
  // and every pool worker bumps the global atomics concurrently.  The
  // writer stays single (ticker thread, then the destructor strictly after
  // the join — enforced with emit_mu_), so under concurrent producers every
  // emitted line must still be whole, and the cumulative requests= field on
  // the final flush must account for every producer exactly once.
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::int64_t before = reg.counter("serve/requests").value();
  PlanService service(ServeOptions{.threads = 4});
  std::ostringstream os;
  {
    StatsReporter reporter(service, /*interval_s=*/0.02, os);
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; ++t) {
      producers.emplace_back([&service] { EXPECT_EQ(serve_requests(service, 25), 25); });
    }
    for (std::thread& p : producers) p.join();
  }
  const std::string out = os.str();
  ASSERT_GE(count_lines(out), 1) << out;
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("stats: qps=", 0), 0u) << "torn or interleaved line: \"" << line << "\"";
  }
  // The final flush covers everything the 4 producers served.
  const std::string expected = "requests=" + std::to_string(before + 100);
  EXPECT_NE(out.rfind(expected), std::string::npos) << out;
}

}  // namespace
}  // namespace fusecu
