#include <gtest/gtest.h>

#include "fusion/fusion_planner.hpp"

namespace fusecu {
namespace {

// Attention core as a chain: S = Q K^T then O = S V.
OperatorGraph attention_chain(Index seq, Index head_dim) {
  return MatMulChainBuilder(seq, {head_dim, seq, head_dim}, "attn").graph();
}

TEST(FusionPlanner, SingleOpChainIsSolo) {
  OperatorGraph g;
  g.add_op(TensorOp::matmul("mm", 128, 128, 128));
  FusionPlan plan = plan_chain(g, 16 * 1024, PlannerPolicy::kPrinciple4);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].op_indices, std::vector<int>{0});
  EXPECT_EQ(plan.fused_pair_count(), 0);
  EXPECT_EQ(plan.total_access, optimize_intra(g.op(0), 16 * 1024).access.total);
}

TEST(FusionPlanner, FusesAttentionPair) {
  OperatorGraph g = attention_chain(512, 64);
  const BufferSize bs = 16 * 1024;
  FusionPlan plan = plan_chain(g, bs, PlannerPolicy::kPrinciple4);
  EXPECT_EQ(plan.fused_pair_count(), 1);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].op_indices, (std::vector<int>{0, 1}));

  FusionPlan unfused = plan_chain(g, bs, PlannerPolicy::kNoFusion);
  EXPECT_LT(plan.total_access, unfused.total_access);
}

TEST(FusionPlanner, NoFusionPolicyNeverFuses) {
  OperatorGraph g = attention_chain(512, 64);
  FusionPlan plan = plan_chain(g, 64 * 1024, PlannerPolicy::kNoFusion);
  EXPECT_EQ(plan.fused_pair_count(), 0);
  EXPECT_EQ(plan.steps.size(), 2u);
}

TEST(FusionPlanner, CostOnlyNeverWorseThanPrinciple4OrNoFusion) {
  for (Index seq : {Index{128}, Index{1024}}) {
    OperatorGraph g = attention_chain(seq, 64);
    for (BufferSize bs : {BufferSize{2048}, BufferSize{32 * 1024}, BufferSize{512 * 1024}}) {
      AccessCount cost_only = plan_chain(g, bs, PlannerPolicy::kCostOnly).total_access;
      AccessCount principled = plan_chain(g, bs, PlannerPolicy::kPrinciple4).total_access;
      AccessCount none = plan_chain(g, bs, PlannerPolicy::kNoFusion).total_access;
      EXPECT_LE(cost_only, principled) << "seq=" << seq << " bs=" << bs;
      EXPECT_LE(cost_only, none) << "seq=" << seq << " bs=" << bs;
      EXPECT_LE(principled, none) << "seq=" << seq << " bs=" << bs;
    }
  }
}

TEST(FusionPlanner, LongChainPartitionsGreedilyOptimal) {
  // Four back-to-back square MMs: the DP may fuse (0,1) and (2,3).
  OperatorGraph g = MatMulChainBuilder(256, {64, 256, 64, 256, 64}, "chain").graph();
  ASSERT_EQ(g.num_ops(), 4);
  const BufferSize bs = 8 * 1024;
  FusionPlan plan = plan_chain(g, bs, PlannerPolicy::kCostOnly);
  AccessCount covered = 0;
  std::vector<bool> seen(4, false);
  for (const PlanStep& s : plan.steps) {
    for (int i : s.op_indices) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(i)]) << "op covered twice";
      seen[static_cast<std::size_t>(i)] = true;
    }
    covered += s.access;
  }
  for (bool b : seen) EXPECT_TRUE(b);
  EXPECT_EQ(covered, plan.total_access);
}

TEST(FusionPlanner, RejectsNonChainGraphs) {
  OperatorGraph forked;
  forked.add_op(TensorOp::matmul("mm1", 16, 16, 16, "A", "B", "C"));
  forked.add_op(TensorOp::matmul("mm2", 16, 16, 16, "C", "D", "E"));
  forked.add_op(TensorOp::matmul("mm3", 16, 16, 16, "C", "F", "G"));
  EXPECT_THROW(plan_chain(forked, 1024, PlannerPolicy::kPrinciple4), std::invalid_argument);
  OperatorGraph empty;
  EXPECT_THROW(plan_chain(empty, 1024, PlannerPolicy::kPrinciple4), std::invalid_argument);
}

TEST(FusionPlanner, TryMakeFusedPairIsNonThrowing) {
  TensorOp op1 = TensorOp::matmul("mm1", 16, 16, 16, "A", "B", "C");
  TensorOp op2 = TensorOp::matmul("mm2", 16, 16, 16, "C", "D", "E");
  TensorOp unrelated = TensorOp::matmul("mm3", 16, 16, 16, "X", "Y", "Z");
  EXPECT_TRUE(try_make_fused_pair(op1, op2).has_value());
  EXPECT_FALSE(try_make_fused_pair(op1, unrelated).has_value());
}

TEST(FusionPlanner, PolicyNames) {
  EXPECT_STREQ(to_string(PlannerPolicy::kPrinciple4), "principle4");
  EXPECT_STREQ(to_string(PlannerPolicy::kCostOnly), "cost-only");
  EXPECT_STREQ(to_string(PlannerPolicy::kNoFusion), "no-fusion");
}

}  // namespace
}  // namespace fusecu
