#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "sim/address_stream.hpp"

namespace fusecu {
namespace {

TEST(AddressStream, LengthMatchesAccessModel) {
  TensorOp op = TensorOp::matmul("mm", 16, 12, 16);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 8}, {"L", 4}, {"K", 6}});
  AddressStream stream = generate_address_stream(op, df);
  AccessBreakdown predicted = evaluate_access(op, df);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(stream.per_tensor_elements[static_cast<std::size_t>(t)],
              predicted.per_tensor[static_cast<std::size_t>(t)]);
  }
  EXPECT_EQ(static_cast<AccessCount>(stream.records.size()), predicted.total);
  EXPECT_EQ(stream.dropped, 0u);
}

TEST(AddressStream, AddressesStayInsideTensorsAndWritesAreOutputs) {
  TensorOp op = TensorOp::matmul("mm", 10, 6, 14);
  Dataflow df = make_dataflow(op, {"L", "M", "K"}, {{"M", 3}, {"L", 5}, {"K", 6}});
  AddressStream stream = generate_address_stream(op, df);
  // Default packing: A at 0, B after A, C after B.
  const std::uint64_t a_end = 10 * 6;
  const std::uint64_t b_end = a_end + 6 * 14;
  const std::uint64_t c_end = b_end + 10 * 14;
  for (const AddressRecord& r : stream.records) {
    switch (r.tensor) {
      case mm::kTensorA:
        EXPECT_LT(r.address, a_end);
        EXPECT_FALSE(r.is_write);
        break;
      case mm::kTensorB:
        EXPECT_GE(r.address, a_end);
        EXPECT_LT(r.address, b_end);
        EXPECT_FALSE(r.is_write);
        break;
      case mm::kTensorC:
        EXPECT_GE(r.address, b_end);
        EXPECT_LT(r.address, c_end);
        EXPECT_TRUE(r.is_write);
        break;
      default:
        FAIL();
    }
  }
}

TEST(AddressStream, TileLoadsAreUnitStrideBursts) {
  TensorOp op = TensorOp::matmul("mm", 8, 8, 8);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 4}, {"L", 4}, {"K", 8}});
  AddressStream stream = generate_address_stream(op, df);
  // Within one tensor, consecutive records in the same row segment differ
  // by 1 (row-major burst of the tile width = 4 for A here).
  int consecutive = 0, bursts = 0;
  for (std::size_t i = 1; i < stream.records.size(); ++i) {
    if (stream.records[i].tensor == stream.records[i - 1].tensor &&
        stream.records[i].address == stream.records[i - 1].address + 1) {
      ++consecutive;
    } else {
      ++bursts;
    }
  }
  EXPECT_GT(consecutive, bursts);  // streams are burst-dominated
}

TEST(AddressStream, FullCoverageWhenEverythingIsTouchedOnce) {
  // Three-NRA: each tensor accessed once -> the stream covers each tensor's
  // address range exactly once.
  TensorOp op = TensorOp::matmul("mm", 32, 8, 8);
  Dataflow df = make_dataflow(op, {"M", "K", "L"}, {{"M", 4}, {"K", 8}, {"L", 8}});
  AddressStream stream = generate_address_stream(op, df);
  std::set<std::uint64_t> unique;
  for (const AddressRecord& r : stream.records) unique.insert(r.address);
  EXPECT_EQ(unique.size(), stream.records.size());  // no repeats
  EXPECT_EQ(stream.records.size(),
            static_cast<std::size_t>(op.ideal_min_access()));
}

TEST(AddressStream, CustomBasesAndRecordCap) {
  TensorOp op = TensorOp::matmul("mm", 8, 8, 8);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 8}, {"L", 8}, {"K", 8}});
  AddressStreamOptions opts;
  opts.bases = {1000, 2000, 3000};
  opts.max_records = 10;
  AddressStream stream = generate_address_stream(op, df, opts);
  EXPECT_EQ(stream.records.size(), 10u);
  EXPECT_GT(stream.dropped, 0u);
  EXPECT_GE(stream.records.front().address, 1000u);
  // Per-tensor counts still include the dropped tail.
  AccessCount total = 0;
  for (AccessCount c : stream.per_tensor_elements) total += c;
  EXPECT_EQ(total, evaluate_access(op, df).total);

  AddressStreamOptions bad;
  bad.bases = {0, 1};  // wrong arity
  EXPECT_THROW(generate_address_stream(op, df, bad), std::invalid_argument);
}

class AddressStreamFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AddressStreamFuzz, CountsAlwaysMatchTheModel) {
  Rng rng(GetParam());
  static const std::vector<std::vector<int>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (int trial = 0; trial < 10; ++trial) {
    const Index m = rng.uniform(1, 20), k = rng.uniform(1, 20), l = rng.uniform(1, 20);
    TensorOp op = TensorOp::matmul("fuzz", m, k, l);
    Dataflow df;
    df.loop_order = orders[rng.pick(orders.size())];
    df.tile = {rng.uniform(1, m), rng.uniform(1, k), rng.uniform(1, l)};
    AddressStream stream = generate_address_stream(op, df);
    EXPECT_EQ(static_cast<AccessCount>(stream.records.size()),
              evaluate_access(op, df).total)
        << df.to_string(op);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressStreamFuzz, ::testing::Values(801ull, 802ull, 803ull));

}  // namespace
}  // namespace fusecu
