#include "net/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <vector>

/// TimerWheel: the event loop's deadline/idle timer structure.  Time is
/// passed in explicitly (no clock inside), so every case here is
/// deterministic: due-order firing, cancel, zero-delay clamping to the next
/// tick, multi-rotation survival, and the collect-then-fire semantics that
/// lets a callback cancel another already-due timer without stopping it.

namespace fusecu {
namespace {

TEST(TimerWheel, FiresInDeadlineOrder) {
  TimerWheel wheel(10, 16);
  std::vector<int> fired;
  wheel.schedule(0, 50, [&] { fired.push_back(50); });
  wheel.schedule(0, 20, [&] { fired.push_back(20); });
  wheel.schedule(0, 40, [&] { fired.push_back(40); });
  EXPECT_EQ(wheel.pending(), 3u);

  wheel.advance(30);
  EXPECT_EQ(fired, std::vector<int>({20}));
  wheel.advance(60);
  EXPECT_EQ(fired, std::vector<int>({20, 40, 50}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, CancelDisarms) {
  TimerWheel wheel(10, 16);
  bool fired = false;
  const TimerWheel::TimerId id = wheel.schedule(0, 30, [&] { fired = true; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id)) << "second cancel reports already-gone";
  wheel.advance(100);
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, ZeroDelayFiresOnNextAdvanceNotReentrantly) {
  TimerWheel wheel(10, 16);
  int fired = 0;
  wheel.schedule(25, 0, [&] { ++fired; });
  wheel.advance(25);
  EXPECT_EQ(fired, 0) << "a zero delay is clamped to the next tick";
  wheel.advance(40);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, LongDelaySurvivesSlotRotations) {
  // 16 slots x 10ms = one rotation per 160ms; 500ms needs 4 rotations.
  TimerWheel wheel(10, 16);
  bool fired = false;
  wheel.schedule(0, 500, [&] { fired = true; });
  for (std::int64_t t = 0; t <= 490; t += 10) {
    wheel.advance(t);
    ASSERT_FALSE(fired) << "fired early at t=" << t;
  }
  wheel.advance(510);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, BigAdvanceJumpFiresEverything) {
  TimerWheel wheel(10, 8);
  int fired = 0;
  for (int delay = 10; delay <= 400; delay += 30) {
    wheel.schedule(0, delay, [&] { ++fired; });
  }
  // One advance spanning many full rotations (a loop that slept past its
  // tick, e.g. under a debugger) must still fire everything due exactly
  // once.
  wheel.advance(10'000);
  EXPECT_EQ(fired, 14);
  EXPECT_EQ(wheel.pending(), 0u);
  wheel.advance(20'000);
  EXPECT_EQ(fired, 14) << "nothing fires twice";
}

TEST(TimerWheel, ClockSkewJumpPastFullRevolutionSkipsAndDoublesNothing) {
  // Regression for injected clock skew (fault::Kind::kClockSkew): the
  // loop's now_ms can jump forward by more than one full wheel revolution
  // in a single advance().  Everything due inside the jump must fire
  // exactly once, and a not-yet-due timer sharing a slot with a fired one
  // must neither fire early nor be dropped when its slot's turn comes.
  TimerWheel wheel(10, 8);  // 80ms per revolution
  int fired_30 = 0, fired_900 = 0;
  wheel.schedule(0, 30, [&] { ++fired_30; });
  // 900ms = tick 90; 90 % 8 == 3 % 8: same slot as the 30ms timer.
  wheel.schedule(0, 900, [&] { ++fired_900; });

  wheel.advance(500);  // one jump spanning 6+ revolutions
  EXPECT_EQ(fired_30, 1) << "due timer inside the jump fires exactly once";
  EXPECT_EQ(fired_900, 0) << "slot-mate beyond the jump must not fire early";
  EXPECT_EQ(wheel.pending(), 1u);

  wheel.advance(890);
  EXPECT_EQ(fired_900, 0) << "one tick short: not yet";
  wheel.advance(1'700);  // second skew jump, again past a full revolution
  EXPECT_EQ(fired_900, 1);
  wheel.advance(3'000);
  EXPECT_EQ(fired_30 + fired_900, 2) << "nothing double-fires after the jumps";
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, CallbackCancelingAlreadyDueTimerDoesNotStopIt) {
  // The loop's deadline handler cancels other timers; advance() collects
  // the due set first, so a cancel of a timer that is due in the *same*
  // advance is a no-op (callbacks look up their own state instead).
  TimerWheel wheel(10, 16);
  TimerWheel::TimerId second = 0;
  int fired = 0;
  wheel.schedule(0, 20, [&] {
    ++fired;
    wheel.cancel(second);
  });
  second = wheel.schedule(0, 20, [&] { ++fired; });
  wheel.advance(30);
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheel, CallbackMayScheduleNewTimers) {
  TimerWheel wheel(10, 16);
  int chain = 0;
  std::function<void()> rearm = [&] {
    if (++chain < 3) wheel.schedule(chain * 20, 20, rearm);
  };
  wheel.schedule(0, 20, rearm);
  wheel.advance(20);
  wheel.advance(40);
  wheel.advance(60);
  wheel.advance(80);
  EXPECT_EQ(chain, 3) << "idle timers re-arm themselves this way";
}

TEST(TimerWheel, AdvanceReturnsNextDeadlineHint) {
  TimerWheel wheel(10, 16);
  EXPECT_EQ(wheel.advance(0), -1) << "-1 when empty: poll may block forever";
  wheel.schedule(0, 100, [] {});
  const std::int64_t hint = wheel.advance(0);
  EXPECT_GT(hint, 0);
  EXPECT_LE(hint, 100) << "never suggests sleeping past the next deadline";
}

}  // namespace
}  // namespace fusecu
