#include <gtest/gtest.h>

#include <sstream>

#include "workloads/run_config.hpp"

namespace fusecu {
namespace {

TEST(RunConfig, ParsesGlobalsAndCustomModels) {
  std::istringstream in(
      "# comment\n"
      "buffer = 1MB\n"
      "bandwidth = 2000\n"
      "platforms = TPUv4i, FuseCU\n"
      "models = BERT, tiny\n"
      "\n"
      "[model tiny]\n"
      "heads = 8\n"
      "seq = 512\n"
      "hidden = 512\n"
      "batch = 4\n");
  RunConfig c = parse_run_config(in);
  EXPECT_EQ(c.buffer_bytes, 1024 * 1024);
  EXPECT_DOUBLE_EQ(c.bandwidth_bytes_per_cycle, 2000.0);
  ASSERT_EQ(c.models.size(), 2u);
  EXPECT_EQ(c.models[0].name, "BERT");
  EXPECT_EQ(c.models[0].seq, 1024);  // Table II values resolved
  EXPECT_EQ(c.models[1].name, "tiny");
  EXPECT_EQ(c.models[1].batch, 4);

  auto platforms = resolve_platforms(c);
  ASSERT_EQ(platforms.size(), 2u);
  EXPECT_EQ(platforms[0].name, "TPUv4i");
  EXPECT_EQ(platforms[1].name, "FuseCU");
  EXPECT_EQ(platforms[0].buffer_bytes, 1024 * 1024);
  EXPECT_DOUBLE_EQ(platforms[1].bandwidth_bytes_per_cycle, 2000.0);
}

TEST(RunConfig, DefaultsToFullTableAndAllPlatforms) {
  std::istringstream in("");
  RunConfig c = parse_run_config(in);
  EXPECT_EQ(c.models.size(), 7u);
  EXPECT_EQ(resolve_platforms(c).size(), 5u);
  EXPECT_EQ(c.buffer_bytes, 512 * 1024);
}

TEST(RunConfig, CustomSectionsIncludedByDefault) {
  std::istringstream in(
      "[model extra]\n"
      "heads = 4\n"
      "seq = 128\n"
      "hidden = 256\n");
  RunConfig c = parse_run_config(in);
  EXPECT_EQ(c.models.size(), 8u);  // Table II + the custom section
  EXPECT_EQ(c.models.back().name, "extra");
}

TEST(RunConfig, GroupedQueryAttentionKey) {
  std::istringstream in(
      "models = gqa\n"
      "[model gqa]\n"
      "heads = 16\n"
      "kv_heads = 4\n"
      "seq = 256\n"
      "hidden = 1024\n");
  RunConfig c = parse_run_config(in);
  ASSERT_EQ(c.models.size(), 1u);
  EXPECT_EQ(c.models[0].effective_kv_heads(), 4);
  EXPECT_EQ(c.models[0].kv_width(), 4 * 64);
}

TEST(RunConfig, CaseInsensitiveNames) {
  std::istringstream in("models = bert\nplatforms = fusecu\n");
  RunConfig c = parse_run_config(in);
  ASSERT_EQ(c.models.size(), 1u);
  EXPECT_EQ(c.models[0].name, "BERT");
  EXPECT_EQ(resolve_platforms(c)[0].name, "FuseCU");
}

TEST(RunConfig, RejectsMalformedInput) {
  {
    std::istringstream in("nonsense = 1\n");
    EXPECT_THROW(parse_run_config(in), std::invalid_argument);
  }
  {
    std::istringstream in("models = NotAModel\n");
    EXPECT_THROW(parse_run_config(in), std::invalid_argument);
  }
  {
    std::istringstream in("[weird section]\n");
    EXPECT_THROW(parse_run_config(in), std::invalid_argument);
  }
  {
    std::istringstream in("[model broken\n");
    EXPECT_THROW(parse_run_config(in), std::invalid_argument);
  }
  {
    std::istringstream in("[model x]\nheads = -2\n");
    EXPECT_THROW(parse_run_config(in), std::invalid_argument);
  }
  {
    // Custom model whose hidden does not divide across heads.
    std::istringstream in("models = x\n[model x]\nheads = 3\nseq = 8\nhidden = 8\n");
    EXPECT_THROW(parse_run_config(in), std::invalid_argument);
  }
  {
    std::istringstream in("platforms = AlienChip\n");
    RunConfig c = parse_run_config(in);
    EXPECT_THROW(resolve_platforms(c), std::invalid_argument);
  }
}

TEST(RunConfig, DuplicateModelSectionRejected) {
  std::istringstream in("[model a]\nheads=1\nseq=1\nhidden=1\n[model a]\nheads=2\n");
  EXPECT_THROW(parse_run_config(in), std::invalid_argument);
}

}  // namespace
}  // namespace fusecu
