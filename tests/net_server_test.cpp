#include "net/server.hpp"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "serve/plan_service.hpp"

/// NetServer: the TCP serving layer, exercised in-process (server on a
/// background thread, real sockets through the loopback).  The contracts
/// under test are the hostile-input ones from the issue — truncated line at
/// close, interleaved pipelined requests, oversized line, slow reader — plus
/// overload shedding, per-request deadlines, graceful drain, and
/// byte-identity of the socket path with serve_stream on the same request
/// stream.
///
/// The serving contracts are parameterized over the reactor count (0 = the
/// legacy inline loop, 1, 2): sharding must be invisible to every client.
/// The multi-reactor-specific behaviors — accept distribution, the
/// cross-reactor drain barrier, writev coalescing — get their own tests
/// below the matrix.

namespace fusecu {
namespace {

std::string make_req(const std::string& id, int m, int k, int l) {
  return "{\"id\":\"" + id + "\",\"op\":\"matmul\",\"m\":" + std::to_string(m) +
         ",\"k\":" + std::to_string(k) + ",\"l\":" + std::to_string(l) +
         ",\"buffer\":\"512KB\"}\n";
}

/// Server-under-test: PlanService + NetServer + the loop thread.
struct TestServer {
  PlanService service;
  NetServer server;
  std::thread loop;

  TestServer(ServeOptions serve_options, NetServerOptions net_options)
      : service(serve_options), server(service, net_options), loop([this] { server.run(); }) {}

  ~TestServer() { stop(); }

  void stop() {
    if (loop.joinable()) {
      server.request_drain();
      loop.join();
    }
  }
};

/// Blocking test client with poll-timed reads (no test may hang the suite).
class Client {
 public:
  explicit Client(std::uint16_t port) {
    std::string error;
    fd_ = connect_tcp("127.0.0.1", port, error);
    EXPECT_GE(fd_, 0) << error;
  }
  ~Client() {
    if (fd_ >= 0) close_fd(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  void send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

  /// Next '\n'-terminated line (without the newline); nullopt on EOF or
  /// timeout.
  std::optional<std::string> read_line(int timeout_ms = 10'000) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      if (eof_) return std::nullopt;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return std::nullopt;
      struct pollfd pfd = {fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (pr < 0 && errno == EINTR) continue;
      if (pr <= 0) return std::nullopt;
      char chunk[16 * 1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf_.append(chunk, static_cast<std::size_t>(n));
      } else if (n == 0) {
        eof_ = true;
      } else if (errno != EINTR && errno != EAGAIN) {
        eof_ = true;
      }
    }
  }

  std::vector<std::string> read_lines(int n, int timeout_ms = 10'000) {
    std::vector<std::string> lines;
    for (int i = 0; i < n; ++i) {
      auto line = read_line(timeout_ms);
      if (!line) break;
      lines.push_back(std::move(*line));
    }
    return lines;
  }

  /// True when the peer closes without sending more data.
  bool read_eof(int timeout_ms = 10'000) {
    const auto line = read_line(timeout_ms);
    EXPECT_FALSE(line.has_value()) << "unexpected extra line: " << *line;
    return eof_;
  }

 private:
  int fd_ = -1;
  std::string buf_;
  bool eof_ = false;
};

std::string id_of(const std::string& response_line) {
  const std::string needle = "\"id\":\"";
  const std::size_t at = response_line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t end = response_line.find('"', at + needle.size());
  return response_line.substr(at + needle.size(), end - at - needle.size());
}

NetServerOptions loopback_options() {
  NetServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;
  return options;
}

/// Serving-contract matrix over the reactor count.
class NetServerAt : public ::testing::TestWithParam<int> {
 protected:
  NetServerOptions options() const {
    NetServerOptions o = loopback_options();
    o.reactors = GetParam();
    return o;
  }
};

INSTANTIATE_TEST_SUITE_P(Reactors, NetServerAt, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "reactors" + std::to_string(info.param);
                         });

TEST_P(NetServerAt, RoundTripMatchesServeStreamByteForByte) {
  // Mixed stream with repeats: the repeats must come back cached and every
  // response byte must match the stdin path on an identically configured
  // fresh service.
  std::string stream;
  for (int i = 0; i < 8; ++i) stream += make_req("q" + std::to_string(i), 256 + 64 * (i % 3), 192, 320);
  for (int i = 0; i < 8; ++i) stream += make_req("q" + std::to_string(8 + i), 256 + 64 * (i % 3), 192, 320);

  const ServeOptions serve_options{.threads = 2};
  TestServer ts(serve_options, options());
  Client client(ts.server.port());
  ASSERT_TRUE(client.connected());
  client.send_all(stream);
  client.half_close();
  std::vector<std::string> tcp_lines = client.read_lines(16);
  ASSERT_EQ(tcp_lines.size(), 16u);
  EXPECT_TRUE(client.read_eof()) << "server closes once the half-closed stream is answered";
  ts.stop();

  PlanService reference(serve_options);
  std::istringstream in(stream);
  std::ostringstream out;
  ASSERT_EQ(reference.serve_stream(in, out, "<stdin>"), 16);
  std::istringstream ref_lines_in(out.str());
  std::string ref_line;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(std::getline(ref_lines_in, ref_line));
    EXPECT_EQ(tcp_lines[static_cast<std::size_t>(i)], ref_line) << "response " << i;
  }
  EXPECT_NE(out.str().find("\"cached\":true"), std::string::npos)
      << "the repeats must exercise the cache-hit path";
}

TEST_P(NetServerAt, PipelinedRequestsAnswerInOrderPerConnection) {
  TestServer ts(ServeOptions{.threads = 4}, options());
  Client a(ts.server.port());
  Client b(ts.server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  // Interleave two pipelined bursts; each connection's responses must come
  // back exactly in its own request order even though planning completes
  // out of order on the pool.
  std::string burst_a, burst_b;
  for (int i = 0; i < 40; ++i) {
    burst_a += make_req("a" + std::to_string(i), 64 + i, 64, 64);
    burst_b += make_req("b" + std::to_string(i), 64, 64 + i, 64);
  }
  a.send_all(burst_a);
  b.send_all(burst_b);

  std::vector<std::string> lines_a = a.read_lines(40);
  std::vector<std::string> lines_b = b.read_lines(40);
  ASSERT_EQ(lines_a.size(), 40u);
  ASSERT_EQ(lines_b.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(id_of(lines_a[static_cast<std::size_t>(i)]), "a" + std::to_string(i));
    EXPECT_EQ(id_of(lines_b[static_cast<std::size_t>(i)]), "b" + std::to_string(i));
  }
}

TEST_P(NetServerAt, TruncatedLineAtCloseIsServedLikeGetline) {
  TestServer ts(ServeOptions{.threads = 2}, options());
  Client client(ts.server.port());
  ASSERT_TRUE(client.connected());

  // One complete request, then one with no trailing newline before the
  // half-close: the tail is a request (std::getline semantics), so the
  // client still gets two responses and then EOF.
  std::string stream = make_req("full", 128, 128, 128);
  std::string tail = make_req("tail", 96, 96, 96);
  tail.pop_back();  // strip '\n'
  client.send_all(stream + tail);
  client.half_close();

  std::vector<std::string> lines = client.read_lines(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(id_of(lines[0]), "full");
  EXPECT_EQ(id_of(lines[1]), "tail");
  EXPECT_NE(lines[1].find("\"ok\":true"), std::string::npos);
  EXPECT_TRUE(client.read_eof());

  // A truncated *malformed* tail gets an error response, and the server
  // survives for the next connection.
  Client broken(ts.server.port());
  ASSERT_TRUE(broken.connected());
  broken.send_all("{\"id\":\"cut\",\"op\":\"matmul\",\"m\":12");
  broken.half_close();
  std::vector<std::string> error_lines = broken.read_lines(1);
  ASSERT_EQ(error_lines.size(), 1u);
  EXPECT_NE(error_lines[0].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(error_lines[0].find("expected"), std::string::npos);
  EXPECT_TRUE(broken.read_eof());

  Client after(ts.server.port());
  ASSERT_TRUE(after.connected());
  after.send_all(make_req("alive", 64, 64, 64));
  auto line = after.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(id_of(*line), "alive");
}

TEST_P(NetServerAt, OversizedLineGetsStructuredErrorAndConnectionSurvives) {
  NetServerOptions net = options();
  net.max_line_bytes = 256;
  TestServer ts(ServeOptions{.threads = 2}, net);
  Client client(ts.server.port());
  ASSERT_TRUE(client.connected());

  const std::string huge(1024, 'x');
  client.send_all(huge + "\n" + make_req("next", 64, 64, 64));

  std::vector<std::string> lines = client.read_lines(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[0].find("--max-line-bytes"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("256"), std::string::npos) << lines[0];
  EXPECT_EQ(id_of(lines[1]), "next") << "the connection keeps serving after the oversized line";
  EXPECT_NE(lines[1].find("\"ok\":true"), std::string::npos);
  ts.stop();
  EXPECT_EQ(ts.server.stats().oversized_lines, 1);
}

TEST_P(NetServerAt, SlowReaderIsBackpressuredNotDisconnected) {
  NetServerOptions net = options();
  net.write_high_water = 2048;  // tiny: a few responses fill it
  TestServer ts(ServeOptions{.threads = 2}, net);
  Client client(ts.server.port());
  ASSERT_TRUE(client.connected());

  // Send a burst without reading anything: the server's outbound buffer
  // crosses the high-water mark and its reads defer, but nothing is
  // dropped or disconnected.  Then read everything — in order.
  const int kBurst = 120;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) burst += make_req("s" + std::to_string(i), 64, 64, 64);
  client.send_all(burst);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));  // let the buffer fill

  std::vector<std::string> lines = client.read_lines(kBurst, 30'000);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) {
    EXPECT_EQ(id_of(lines[static_cast<std::size_t>(i)]), "s" + std::to_string(i));
  }
}

TEST_P(NetServerAt, OverloadShedsWithExplicitResponsesInOrder) {
  NetServerOptions net = options();
  net.queue_depth = 1;  // admit one request at a time; bursts shed
  TestServer ts(ServeOptions{.threads = 1}, net);
  Client client(ts.server.port());
  ASSERT_TRUE(client.connected());

  const int kBurst = 100;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) burst += make_req("o" + std::to_string(i), 64 + i, 64, 64);
  client.send_all(burst);
  client.half_close();

  std::vector<std::string> lines = client.read_lines(kBurst);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kBurst))
      << "every request gets a response, shed or served";
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const std::string& line = lines[static_cast<std::size_t>(i)];
    EXPECT_EQ(id_of(line), "o" + std::to_string(i)) << "shed responses keep id and order";
    if (line.find("\"ok\":true") != std::string::npos) {
      ++ok;
    } else if (line.find("overloaded") != std::string::npos) {
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1) << "a burst past queue_depth=1 must shed";
  EXPECT_TRUE(client.read_eof());

  // Reads resumed after the queue drained: a fresh request is admitted.
  Client after(ts.server.port());
  ASSERT_TRUE(after.connected());
  after.send_all(make_req("recovered", 64, 64, 64));
  auto line = after.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"ok\":true"), std::string::npos);
  ts.stop();
  EXPECT_EQ(ts.server.stats().shed, shed);
}

TEST_P(NetServerAt, DeadlineExpiryAnswersInOrderWithoutLosingSlots) {
  NetServerOptions net = options();
  net.request_timeout_ms = 1;
  net.queue_depth = 8192;  // admit the whole burst; the deadline, not
                           // admission, is under test
  TestServer ts(ServeOptions{.threads = 1}, net);
  Client client(ts.server.port());
  ASSERT_TRUE(client.connected());

  // A single worker thread and a burst of distinct (cache-missing) shapes:
  // the tail of the queue cannot finish within 1ms, so deadlines fire while
  // the pool grinds.  Every slot must still produce exactly one in-order
  // response — planned or "deadline exceeded".
  const int kBurst = 1500;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += make_req("d" + std::to_string(i), 200 + (i % 700), 100 + (i / 7) % 500, 160);
  }
  client.send_all(burst);
  client.half_close();

  std::vector<std::string> lines = client.read_lines(kBurst, 60'000);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kBurst));
  int expired = 0;
  for (int i = 0; i < kBurst; ++i) {
    const std::string& line = lines[static_cast<std::size_t>(i)];
    EXPECT_EQ(id_of(line), "d" + std::to_string(i));
    if (line.find("deadline exceeded") != std::string::npos) ++expired;
  }
  ts.stop();
  EXPECT_GE(expired, 1) << "a 1ms deadline over a 1-thread burst must expire some requests";
  EXPECT_EQ(ts.server.stats().deadline_expired, expired);
}

TEST_P(NetServerAt, GracefulDrainFinishesInFlightThenCloses) {
  TestServer ts(ServeOptions{.threads = 2}, options());
  Client client(ts.server.port());
  ASSERT_TRUE(client.connected());

  std::string burst;
  for (int i = 0; i < 30; ++i) burst += make_req("g" + std::to_string(i), 64 + i, 64, 64);
  client.send_all(burst);
  ts.server.request_drain();
  ts.loop.join();

  // Whatever the server had read before the drain is answered — an exact
  // in-order prefix g0..g(n-1) — then the connection is closed.
  std::vector<std::string> lines;
  while (auto line = client.read_line(5000)) lines.push_back(std::move(*line));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(id_of(lines[i]), "g" + std::to_string(i));
  }
  EXPECT_LE(lines.size(), 30u);
  const NetServer::Stats stats = ts.server.stats();
  EXPECT_EQ(stats.responses, static_cast<std::int64_t>(lines.size()));
  EXPECT_EQ(stats.closed, stats.accepted);
}

TEST_P(NetServerAt, GracefulDrainDuringShedStormAnswersDecodedPrefixInOrder) {
  // Satellite of PR 10: a drain request landing in the middle of an active
  // shed storm (queue_depth=1, several pipelined clients, single worker)
  // must still answer every decoded request exactly once — shed or served,
  // strictly in per-connection order — and close every connection, on every
  // reactor topology.
  NetServerOptions net = options();
  net.queue_depth = 1;
  TestServer ts(ServeOptions{.threads = 1}, net);

  constexpr int kClients = 3;
  constexpr int kBurst = 40;
  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<Client>(ts.server.port()));
    ASSERT_TRUE(clients.back()->connected());
    std::string burst;
    for (int i = 0; i < kBurst; ++i) {
      burst += make_req("b" + std::to_string(c) + "-" + std::to_string(i), 64 + i, 64, 64);
    }
    clients.back()->send_all(burst);
  }
  // One response per client proves its burst is decoded — and with depth 1
  // the sheds behind it are already slotted — so the storm is live when the
  // drain lands.
  for (auto& client : clients) ASSERT_TRUE(client->read_line().has_value());
  ts.server.request_drain();
  ts.loop.join();

  std::int64_t total = kClients;  // the first line already read per client
  int shed_seen = 0;
  for (int c = 0; c < kClients; ++c) {
    Client& client = *clients[static_cast<std::size_t>(c)];
    std::vector<std::string> lines;
    while (auto line = client.read_line(5000)) lines.push_back(std::move(*line));
    for (std::size_t i = 0; i < lines.size(); ++i) {
      EXPECT_EQ(id_of(lines[i]), "b" + std::to_string(c) + "-" + std::to_string(i + 1))
          << "client " << c << " line " << i;
      if (lines[i].find("overloaded") != std::string::npos) ++shed_seen;
    }
    EXPECT_TRUE(client.read_eof(5000)) << "client " << c;
    total += static_cast<std::int64_t>(lines.size());
  }
  const NetServer::Stats stats = ts.server.stats();
  EXPECT_GE(shed_seen, 1) << "a pipelined storm past queue_depth=1 must shed";
  EXPECT_GE(stats.shed, shed_seen);
  EXPECT_EQ(stats.responses, total) << "every decoded request answered exactly once";
  EXPECT_EQ(stats.accepted, stats.closed) << "drain must close every stormed connection";
}

TEST_P(NetServerAt, DrainWithIdleConnectionReturnsPromptly) {
  TestServer ts(ServeOptions{.threads = 2}, options());
  Client idle(ts.server.port());
  ASSERT_TRUE(idle.connected());
  // Ensure the loop has accepted before draining.
  idle.send_all(make_req("warm", 64, 64, 64));
  ASSERT_TRUE(idle.read_line().has_value());

  ts.server.request_drain();
  ts.loop.join();
  EXPECT_TRUE(idle.read_eof()) << "drain closes idle connections";
}

TEST_P(NetServerAt, MaxConnsDefersAcceptUntilASlotFrees) {
  NetServerOptions net = options();
  net.max_conns = 1;
  TestServer ts(ServeOptions{.threads = 2}, net);

  auto first = std::make_unique<Client>(ts.server.port());
  ASSERT_TRUE(first->connected());
  first->send_all(make_req("one", 64, 64, 64));
  ASSERT_TRUE(first->read_line().has_value());

  // The second connect lands in a listen backlog; the server only accepts
  // it once the first connection goes away.  With sharded listeners the
  // freed capacity is noticed on the owning reactor's next poll turn (the
  // loop re-checks listener interest at least once a second).
  Client second(ts.server.port());
  ASSERT_TRUE(second.connected());
  second.send_all(make_req("two", 96, 96, 96));
  auto quick = second.read_line(300);
  EXPECT_FALSE(quick.has_value()) << "must not be served while the slot is taken";

  first.reset();  // closes the first connection
  auto line = second.read_line(10'000);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(id_of(*line), "two");
}

TEST_P(NetServerAt, IdleTimeoutClosesQuietConnections) {
  NetServerOptions net = options();
  net.idle_timeout_ms = 100;
  TestServer ts(ServeOptions{.threads = 2}, net);
  Client client(ts.server.port());
  ASSERT_TRUE(client.connected());
  client.send_all(make_req("ping", 64, 64, 64));
  ASSERT_TRUE(client.read_line().has_value());

  EXPECT_TRUE(client.read_eof(10'000)) << "a quiet connection is closed at idle_timeout_ms";
  ts.stop();
  EXPECT_EQ(ts.server.stats().idle_closed, 1);
}

// --- Multi-reactor topology -----------------------------------------------

TEST(NetServerReactors, HandoffRoundRobinSpreadsConnectionsEvenly) {
  NetServerOptions net = loopback_options();
  net.reactors = 2;
  net.accept_mode = NetServerOptions::AcceptMode::kHandoff;
  TestServer ts(ServeOptions{.threads = 2}, net);
  ASSERT_EQ(ts.server.reactor_count(), 2);
  EXPECT_STREQ(ts.server.accept_mode_used(), "handoff");

  for (int i = 0; i < 64; ++i) {
    Client c(ts.server.port());
    ASSERT_TRUE(c.connected());
    c.send_all(make_req("rr" + std::to_string(i), 64, 64, 64));
    ASSERT_TRUE(c.read_line().has_value()) << "connection " << i;
  }
  ts.stop();
  const NetServer::Stats r0 = ts.server.reactor_stats(0);
  const NetServer::Stats r1 = ts.server.reactor_stats(1);
  EXPECT_EQ(r0.accepted + r1.accepted, 64);
  EXPECT_EQ(r0.accepted, 32) << "handoff accept is strict round-robin";
  EXPECT_EQ(r1.accepted, 32);
  EXPECT_EQ(r0.closed + r1.closed, 64);
  EXPECT_EQ(r0.responses + r1.responses, 64);
}

TEST(NetServerReactors, EveryReactorAcceptsSomeOf64Connections) {
  // Default accept mode: SO_REUSEPORT when the kernel has it (the kernel
  // hashes the 4-tuple across the sharded listeners; 64 distinct client
  // ports make an empty shard astronomically unlikely), fd handoff
  // round-robin otherwise.  Either way no reactor may sit idle.
  NetServerOptions net = loopback_options();
  net.reactors = 2;
  TestServer ts(ServeOptions{.threads = 2}, net);
  ASSERT_EQ(ts.server.reactor_count(), 2);

  for (int i = 0; i < 64; ++i) {
    Client c(ts.server.port());
    ASSERT_TRUE(c.connected());
    c.send_all(make_req("x" + std::to_string(i), 64, 64, 64));
    ASSERT_TRUE(c.read_line().has_value()) << "connection " << i;
  }
  ts.stop();
  const NetServer::Stats r0 = ts.server.reactor_stats(0);
  const NetServer::Stats r1 = ts.server.reactor_stats(1);
  EXPECT_EQ(r0.accepted + r1.accepted, 64);
  EXPECT_GE(r0.accepted, 1) << "reactor 0 never accepted (" << ts.server.accept_mode_used() << ")";
  EXPECT_GE(r1.accepted, 1) << "reactor 1 never accepted (" << ts.server.accept_mode_used() << ")";
  EXPECT_EQ(ts.server.stats().accepted, 64);
}

TEST(NetServerReactors, GracefulDrainBarriersAcrossReactors) {
  // Connections pinned to both reactors (handoff round-robin is
  // deterministic), all with responses still in flight: one drain request
  // must finish every connection's admitted prefix in order, close
  // everything on both shards, and only then return from run().
  NetServerOptions net = loopback_options();
  net.reactors = 2;
  net.accept_mode = NetServerOptions::AcceptMode::kHandoff;
  TestServer ts(ServeOptions{.threads = 2}, net);

  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < 4; ++c) {
    clients.push_back(std::make_unique<Client>(ts.server.port()));
    ASSERT_TRUE(clients.back()->connected());
    // One answered request pins the connection to its reactor before the
    // drain races the burst.
    clients.back()->send_all(make_req("warm" + std::to_string(c), 64, 64, 64));
    ASSERT_TRUE(clients.back()->read_line().has_value());
  }
  for (int c = 0; c < 4; ++c) {
    std::string burst;
    for (int i = 0; i < 20; ++i) {
      burst += make_req("c" + std::to_string(c) + "-" + std::to_string(i), 64 + i, 64, 64);
    }
    clients[static_cast<std::size_t>(c)]->send_all(burst);
  }
  ts.server.request_drain();
  ts.loop.join();

  std::int64_t total_lines = 0;
  for (int c = 0; c < 4; ++c) {
    Client& client = *clients[static_cast<std::size_t>(c)];
    std::vector<std::string> lines;
    while (auto line = client.read_line(5000)) lines.push_back(std::move(*line));
    // The admitted prefix may legitimately be empty when the drain wins the
    // race against the burst; what matters is order and the close.
    for (std::size_t i = 0; i < lines.size(); ++i) {
      EXPECT_EQ(id_of(lines[i]), "c" + std::to_string(c) + "-" + std::to_string(i))
          << "client " << c << " line " << i;
    }
    EXPECT_TRUE(client.read_eof(5000)) << "client " << c;
    total_lines += static_cast<std::int64_t>(lines.size());
  }
  const NetServer::Stats stats = ts.server.stats();
  EXPECT_EQ(stats.accepted, 4);
  EXPECT_EQ(stats.closed, 4) << "the drain barrier must close every shard's connections";
  EXPECT_EQ(stats.responses, total_lines + 4);  // + the 4 warmup responses
  EXPECT_EQ(ts.server.reactor_stats(0).accepted, 2);
  EXPECT_EQ(ts.server.reactor_stats(1).accepted, 2);
}

// --- Writev coalescing ----------------------------------------------------

TEST(NetServerReactors, PipelinedBurstCoalescesResponsesIntoFewWritevs) {
  // Head-of-line blocking on purpose: a kPoolStall fault holds one of the
  // first two burst requests on its worker for 50 ms while the other
  // worker churns the remaining warm cache hits in microseconds.  Those
  // responses fill their slots behind the stalled head, so nothing can
  // flush until the stall ends — then the whole backlog is writable at
  // once and must leave in gathered writev batches, ceil(64/16) syscalls
  // instead of 64 single writes.  (Pool-site invocation order between the
  // two workers is racy, but both outcomes — slot 0 stalled with 63
  // behind it, or slot 0 flushing alone with 62 behind slot 1 — satisfy
  // every assertion below.)  Order must survive the batching.
  fault::FaultPlan plan;
  // Invocation 0 is the cache-warming request below; invocation 1 is the
  // first burst request to reach a worker.
  plan.events.push_back({fault::Kind::kPoolStall, 1, 50'000});
  fault::ScopedFaultPlan armed(plan);

  NetServerOptions net = loopback_options();
  net.reactors = 1;  // counters land on net/reactor.0/*
  net.queue_depth = 256;
  TestServer ts(ServeOptions{.threads = 2}, net);

  {
    Client warm(ts.server.port());
    ASSERT_TRUE(warm.connected());
    warm.send_all(make_req("warm", 64, 64, 64));
    ASSERT_TRUE(warm.read_line().has_value());
  }

  MetricsRegistry& reg = MetricsRegistry::global();
  const std::int64_t flushes_before = reg.counter("net/reactor.0/write_calls").value() +
                                      reg.counter("net/reactor.0/writev_calls").value();
  const std::int64_t writev_before = reg.counter("net/reactor.0/writev_calls").value();
  const std::int64_t slots_before = reg.counter("net/reactor.0/writev_slots").value();

  const int kBurst = 64;
  Client client(ts.server.port());
  ASSERT_TRUE(client.connected());
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    char id[8];
    std::snprintf(id, sizeof(id), "c%02d", i);
    burst += make_req(id, 64, 64, 64);  // warm hits: finish in microseconds
  }
  client.send_all(burst);
  client.half_close();

  std::vector<std::string> lines = client.read_lines(kBurst, 60'000);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) {
    char id[8];
    std::snprintf(id, sizeof(id), "c%02d", i);
    EXPECT_EQ(id_of(lines[static_cast<std::size_t>(i)]), id);
  }
  EXPECT_TRUE(client.read_eof());
  ts.stop();

  const std::int64_t flushes = reg.counter("net/reactor.0/write_calls").value() +
                               reg.counter("net/reactor.0/writev_calls").value() - flushes_before;
  const std::int64_t writevs = reg.counter("net/reactor.0/writev_calls").value() - writev_before;
  const std::int64_t slots = reg.counter("net/reactor.0/writev_slots").value() - slots_before;
  EXPECT_GE(slots, 64) << "every response slot must pass through the gather path";
  EXPECT_GE(writevs, 1) << "at least one flush must gather multiple slots";
  // ceil(64/kWritevBatchSlots) = 4 gathered flushes, plus slack for the
  // possible lone pre-stall flush and partial writes.
  EXPECT_LE(flushes, 12) << "a 64-response backlog must not take ~64 write syscalls";
}

// Fault-injection seams (common/fault.hpp): the loop must treat injected
// EINTR exactly like kernel EINTR — retry, not close — and an injected
// mid-response ECONNRESET/EPIPE must reap only the victim connection.
// Plans are armed before the server starts and disarmed after it stopped,
// per the fault.hpp threading contract.  These stay on the legacy inline
// loop: fault events are invocation-indexed, so a deterministic schedule
// needs a single reactor thread issuing the syscalls.

TEST(NetServer, InjectedReadEintrAndShortReadAreRetriedTransparently) {
  fault::FaultPlan plan;
  plan.seed = 42;
  // The first two recv() invocations return EINTR, the third is capped to a
  // single byte: the read path must retry through all of it.
  plan.events.push_back({fault::Kind::kReadEintr, 0, 0});
  plan.events.push_back({fault::Kind::kReadEintr, 1, 0});
  plan.events.push_back({fault::Kind::kShortRead, 2, 1});
  fault::ScopedFaultPlan armed(plan);
  {
    TestServer ts(ServeOptions{.threads = 2}, loopback_options());
    Client client(ts.server.port());
    ASSERT_TRUE(client.connected());
    std::string stream;
    for (int i = 0; i < 3; ++i) stream += make_req("e" + std::to_string(i), 64 + i, 64, 64);
    client.send_all(stream);
    client.half_close();
    std::vector<std::string> lines = client.read_lines(3);
    ASSERT_EQ(lines.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(id_of(lines[static_cast<std::size_t>(i)]), "e" + std::to_string(i));
      EXPECT_NE(lines[static_cast<std::size_t>(i)].find("\"ok\":true"), std::string::npos);
    }
    EXPECT_TRUE(client.read_eof());
    ts.stop();
  }
  EXPECT_EQ(fault::fired_count(fault::Kind::kReadEintr), 2);
  EXPECT_EQ(fault::fired_count(fault::Kind::kShortRead), 1);
}

TEST(NetServer, InjectedWriteEintrAndShortWriteAreRetriedTransparently) {
  fault::FaultPlan plan;
  plan.seed = 43;
  plan.events.push_back({fault::Kind::kWriteEintr, 0, 0});
  plan.events.push_back({fault::Kind::kShortWrite, 1, 5});
  plan.events.push_back({fault::Kind::kWriteEintr, 2, 0});
  fault::ScopedFaultPlan armed(plan);
  {
    TestServer ts(ServeOptions{.threads = 2}, loopback_options());
    Client client(ts.server.port());
    ASSERT_TRUE(client.connected());
    client.send_all(make_req("w0", 64, 64, 64) + make_req("w1", 65, 64, 64));
    client.half_close();
    std::vector<std::string> lines = client.read_lines(2);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(id_of(lines[0]), "w0");
    EXPECT_EQ(id_of(lines[1]), "w1");
    EXPECT_TRUE(client.read_eof());
    ts.stop();
  }
  EXPECT_EQ(fault::fired_count(fault::Kind::kWriteEintr), 2);
  EXPECT_EQ(fault::fired_count(fault::Kind::kShortWrite), 1);
}

TEST(NetServer, InjectedMidResponseResetReapsOnlyTheVictimConnection) {
  fault::FaultPlan plan;
  plan.seed = 44;
  // First send is capped to 10 bytes; the retry (cumulative bytes >= 10)
  // fails with EPIPE mid-response, killing the victim connection.
  plan.events.push_back({fault::Kind::kShortWrite, 0, 10});
  plan.events.push_back({fault::Kind::kWriteReset, 10, 0});
  fault::ScopedFaultPlan armed(plan);
  {
    TestServer ts(ServeOptions{.threads = 2}, loopback_options());
    Client victim(ts.server.port());
    ASSERT_TRUE(victim.connected());
    victim.send_all(make_req("victim", 64, 64, 64));
    // 10 bytes of response arrive, never a complete line, then the close.
    EXPECT_TRUE(victim.read_eof()) << "the poisoned connection must be reaped";

    // The write-fault schedule is exhausted; a fresh connection on the same
    // server is unaffected.
    Client survivor(ts.server.port());
    ASSERT_TRUE(survivor.connected());
    survivor.send_all(make_req("survivor", 96, 96, 96));
    auto line = survivor.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(id_of(*line), "survivor");
    EXPECT_NE(line->find("\"ok\":true"), std::string::npos);
    ts.stop();
    const NetServer::Stats stats = ts.server.stats();
    EXPECT_EQ(stats.accepted, 2);
    EXPECT_EQ(stats.closed, 2);
  }
  EXPECT_EQ(fault::fired_count(fault::Kind::kWriteReset), 1);
}

TEST(NetServer, InjectedEmfileAcceptIsRetriedOnNextReadiness) {
  fault::FaultPlan plan;
  plan.seed = 45;
  plan.events.push_back({fault::Kind::kAcceptEmfile, 0, 0});
  fault::ScopedFaultPlan armed(plan);
  {
    TestServer ts(ServeOptions{.threads = 2}, loopback_options());
    // The first accept attempt fails with EMFILE; the listener stays
    // registered (level-triggered), so the connection is accepted on the
    // next loop turn instead of being lost.
    Client client(ts.server.port());
    ASSERT_TRUE(client.connected());
    client.send_all(make_req("late", 64, 64, 64));
    auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(id_of(*line), "late");
    ts.stop();
  }
  EXPECT_EQ(fault::fired_count(fault::Kind::kAcceptEmfile), 1);
}

}  // namespace
}  // namespace fusecu
