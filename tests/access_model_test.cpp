#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "dataflow/access_model.hpp"
#include "principles/principle_optimizer.hpp"

namespace fusecu {
namespace {

/// Literal tile-loop interpreter: walks the tiled nest iteration by
/// iteration, keeps one tile slot per tensor, and counts an access of the
/// (edge-clipped) tile size whenever a tensor's tile coordinates change.
/// This is the executable definition of the buffer<->memory traffic the
/// analytical reuse formula claims to compute.
AccessCount simulate_tile_traffic(const TensorOp& op, const Dataflow& df, int tensor) {
  const int n = op.num_dims();
  std::vector<Index> trip_counts(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) trip_counts[static_cast<std::size_t>(d)] = df.trips(op, d);

  std::vector<Index> iter(static_cast<std::size_t>(n), 0);  // by loop position
  std::vector<Index> last_tile;                             // by tensor-dim position
  bool have_last = false;
  AccessCount traffic = 0;

  auto tile_of = [&](std::vector<Index>& out) {
    out.clear();
    for (int d : op.tensor(tensor).dims) {
      // Find d's loop position to read its current tile index.
      for (int pos = 0; pos < n; ++pos) {
        if (df.loop_order[static_cast<std::size_t>(pos)] == d) {
          out.push_back(iter[static_cast<std::size_t>(pos)]);
          break;
        }
      }
    }
  };
  auto clipped_size = [&]() {
    Index size = 1;
    std::size_t slot = 0;
    for (int d : op.tensor(tensor).dims) {
      Index tile_index = 0;
      for (int pos = 0; pos < n; ++pos) {
        if (df.loop_order[static_cast<std::size_t>(pos)] == d) {
          tile_index = iter[static_cast<std::size_t>(pos)];
          break;
        }
      }
      const Index t = df.tile[static_cast<std::size_t>(d)];
      size *= std::min(t, op.extent(d) - tile_index * t);
      ++slot;
    }
    return size;
  };

  std::vector<Index> current;
  // Odometer over the tile loops, outermost = position 0.
  while (true) {
    tile_of(current);
    if (!have_last || current != last_tile) {
      traffic += clipped_size();
      last_tile = current;
      have_last = true;
    }
    int pos = n - 1;
    while (pos >= 0) {
      int d = df.loop_order[static_cast<std::size_t>(pos)];
      if (++iter[static_cast<std::size_t>(pos)] < trip_counts[static_cast<std::size_t>(d)]) break;
      iter[static_cast<std::size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  return traffic;
}

TensorOp bert_mm() { return TensorOp::matmul("bert", 1024, 768, 768); }

// --- Eq. 1: output-stationary MA = MK*ceil(L/T_L) + KL*ceil(M/T_M) + ML,
// independent of T_K (Fig. 2(b)).
TEST(AccessModel, Eq1OutputStationary) {
  TensorOp op = bert_mm();
  // Eq. 1 holds for any *effective* (trip count > 1) reduction tile.
  for (Index t_k : {Index{1}, Index{16}, Index{384}}) {
    Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 64}, {"L", 32}, {"K", t_k}});
    AccessBreakdown b = evaluate_access(op, df);
    EXPECT_EQ(b.per_tensor[mm::kTensorA], 1024LL * 768 * ceil_div(768, 32));
    EXPECT_EQ(b.per_tensor[mm::kTensorB], 768LL * 768 * ceil_div(1024, 64));
    EXPECT_EQ(b.per_tensor[mm::kTensorC], 1024LL * 768);
    EXPECT_EQ(b.total, eq1_output_stationary_access(1024, 768, 768, 64, 32));
  }
  // Untiling K removes the reduction loop entirely: the dataflow becomes
  // Two-NRA (Fig. 3) and A gains non-redundant access — Eq. 1 no longer
  // applies, by design.
  Dataflow untiled = make_dataflow(op, {"M", "L", "K"}, {{"M", 64}, {"L", 32}, {"K", 768}});
  AccessBreakdown b = evaluate_access(op, untiled);
  EXPECT_EQ(b.per_tensor[mm::kTensorA], 1024LL * 768);
  EXPECT_EQ(classify_nra(op, untiled), NraKind::kTwo);
}

// --- Eq. 3: untiled K (Two-NRA, Fig. 3 top): A and C once, B redundant.
TEST(AccessModel, Eq3TwoNraUntiledK) {
  TensorOp op = bert_mm();
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 512}, {"K", 768}, {"L", 1}});
  AccessBreakdown b = evaluate_access(op, df);
  EXPECT_EQ(b.per_tensor[mm::kTensorA], 1024LL * 768);        // MK, non-redundant
  EXPECT_EQ(b.per_tensor[mm::kTensorB], 2 * 768LL * 768);     // 2KL (paper's example)
  EXPECT_EQ(b.per_tensor[mm::kTensorC], 1024LL * 768);        // ML, non-redundant
  EXPECT_EQ(b.total, eq3_two_nra_access(1024, 768, 768, 512));
  EXPECT_EQ(classify_nra(op, df), NraKind::kTwo);
}

// --- Eq. 2 / Eq. 4: buffer footprint is the sum of tile sizes.
TEST(AccessModel, BufferFootprintMatchesEq2AndEq4) {
  TensorOp op = bert_mm();
  Dataflow single = make_dataflow(op, {"M", "L", "K"}, {{"M", 64}, {"L", 32}, {"K", 8}});
  EXPECT_EQ(single.buffer_footprint(op), 64 * 8 + 8 * 32 + 64 * 32);  // Eq. 2
  Dataflow two = make_dataflow(op, {"M", "L", "K"}, {{"M", 512}, {"K", 768}, {"L", 1}});
  EXPECT_EQ(two.buffer_footprint(op), 512 * 768 + 768 * 1 + 512 * 1);  // Eq. 4
  EXPECT_TRUE(fits_buffer(op, two, 512 * 768 + 768 + 512));
  EXPECT_FALSE(fits_buffer(op, two, 512 * 768 + 768 + 511));
}

// --- Stationary detection across the three classic dataflow styles.
TEST(AccessModel, StationaryTensorDetection) {
  TensorOp op = TensorOp::matmul("mm", 64, 64, 64);
  // Output-stationary: C's dims outer, K innermost.
  Dataflow os = make_dataflow(op, {"M", "L", "K"}, {{"M", 8}, {"L", 8}, {"K", 1}});
  EXPECT_EQ(stationary_tensor(op, os), mm::kTensorC);
  // A-stationary (input-stationary): M, K outer.
  Dataflow as = make_dataflow(op, {"M", "K", "L"}, {{"M", 8}, {"K", 8}, {"L", 1}});
  EXPECT_EQ(stationary_tensor(op, as), mm::kTensorA);
  // B-stationary (weight-stationary): K, L outer.
  Dataflow ws = make_dataflow(op, {"K", "L", "M"}, {{"K", 8}, {"L", 8}, {"M", 1}});
  EXPECT_EQ(stationary_tensor(op, ws), mm::kTensorB);
}

TEST(AccessModel, ThreeNraReachesIdealMinimum) {
  TensorOp op = TensorOp::matmul("mm", 256, 32, 32);
  // Untile the smallest tensor B (K x L): every tensor accessed once.
  Dataflow df = make_dataflow(op, {"M", "K", "L"}, {{"M", 4}, {"K", 32}, {"L", 32}});
  AccessBreakdown b = evaluate_access(op, df);
  EXPECT_EQ(b.total, op.ideal_min_access());
  EXPECT_EQ(classify_nra(op, df), NraKind::kThree);
  EXPECT_EQ(stationary_tensor(op, df), -1);  // no unique stationary in Three-NRA
}

TEST(AccessModel, PartialSumSpillsChargedWhenReductionOuter) {
  TensorOp op = TensorOp::matmul("mm", 64, 64, 64);
  // K outermost, C's loops inside: every k-tile revisits all C tiles.
  Dataflow df = make_dataflow(op, {"K", "M", "L"}, {{"M", 8}, {"L", 8}, {"K", 8}});
  AccessBreakdown b = evaluate_access(op, df);
  EXPECT_EQ(b.per_tensor[mm::kTensorC], 64LL * 64 * (64 / 8));
}

TEST(AccessModel, PricesBatchedFourLoopNest) {
  // The reuse rule is rank-agnostic: price a shared-weight batched matmul
  // with the batch loop outermost and the weight untiled.
  TensorOp op = TensorOp::batched_matmul("bmm", 8, 64, 32, 32, /*shared_weight=*/true);
  Dataflow df = make_dataflow(op, {"B", "M", "L", "K"},
                              {{"B", 1}, {"M", 16}, {"K", 32}, {"L", 32}});
  AccessBreakdown bd = evaluate_access(op, df);
  // W untiled in both of its dims: accessed once despite the batch loop.
  EXPECT_EQ(bd.per_tensor[static_cast<std::size_t>(op.find_tensor("W"))], 32 * 32);
  // A and C accessed once (K untiled removes the reduction loop).
  EXPECT_EQ(bd.per_tensor[static_cast<std::size_t>(op.find_tensor("A"))], 8LL * 64 * 32);
  EXPECT_EQ(bd.per_tensor[static_cast<std::size_t>(op.find_tensor("C"))], 8LL * 64 * 32);
  EXPECT_EQ(bd.total, op.ideal_min_access());

  // The folded 3-dim view reaches the same bound through the principles.
  TensorOp folded = fold_batch(op);
  EXPECT_EQ(optimize_intra(folded, 64 * 1024).access.total, folded.ideal_min_access());
}

TEST(AccessModel, RejectsMalformedDataflow) {
  TensorOp op = TensorOp::matmul("mm", 8, 8, 8);
  Dataflow df;
  df.loop_order = {0, 1};  // missing a dim
  df.tile = {1, 1, 1};
  EXPECT_THROW(evaluate_access(op, df), std::invalid_argument);
  df.loop_order = {0, 1, 1};  // repeated dim
  EXPECT_THROW(evaluate_access(op, df), std::invalid_argument);
  df.loop_order = {0, 1, 2};
  df.tile = {0, 1, 1};  // tile < 1
  EXPECT_THROW(evaluate_access(op, df), std::invalid_argument);
  df.tile = {1, 1, 9};  // tile > extent
  EXPECT_THROW(evaluate_access(op, df), std::invalid_argument);
}

// --- Property: the analytical reuse formula equals literal tile-loop
// interpretation, for every tensor, across random shapes/tilings/orders.
class AccessModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AccessModelProperty, AnalyticalMatchesInterpreter) {
  Rng rng(GetParam());
  static const std::vector<std::vector<int>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (int trial = 0; trial < 40; ++trial) {
    const Index m = rng.uniform(1, 12), k = rng.uniform(1, 12), l = rng.uniform(1, 12);
    TensorOp op = TensorOp::matmul("rand", m, k, l);
    Dataflow df;
    df.loop_order = orders[rng.pick(orders.size())];
    df.tile = {rng.uniform(1, m), rng.uniform(1, k), rng.uniform(1, l)};
    AccessBreakdown b = evaluate_access(op, df);
    for (int t = 0; t < 3; ++t) {
      EXPECT_EQ(b.per_tensor[static_cast<std::size_t>(t)], simulate_tile_traffic(op, df, t))
          << op.to_string() << " " << df.to_string(op) << " tensor " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccessModelProperty,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 7ull, 8ull));

// NRA count never exceeds 3 and at least the ideal bound holds.
class NraInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NraInvariant, TotalsNeverBeatIdealMinimum) {
  Rng rng(GetParam());
  static const std::vector<std::vector<int>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (int trial = 0; trial < 60; ++trial) {
    const Index m = rng.uniform(1, 64), k = rng.uniform(1, 64), l = rng.uniform(1, 64);
    TensorOp op = TensorOp::matmul("rand", m, k, l);
    Dataflow df;
    df.loop_order = orders[rng.pick(orders.size())];
    df.tile = {rng.uniform(1, m), rng.uniform(1, k), rng.uniform(1, l)};
    AccessBreakdown b = evaluate_access(op, df);
    EXPECT_GE(b.total, op.ideal_min_access());
    int nra = b.non_redundant_tensors(op);
    EXPECT_GE(nra, 0);
    EXPECT_LE(nra, 3);
    for (int t = 0; t < 3; ++t) {
      EXPECT_GE(b.per_tensor[static_cast<std::size_t>(t)], op.tensor_size(t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NraInvariant, ::testing::Values(11ull, 12ull, 13ull, 14ull));

}  // namespace
}  // namespace fusecu
