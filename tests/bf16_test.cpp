#include <gtest/gtest.h>

#include <cmath>

#include "sim/bf16.hpp"
#include "sim/compute_unit.hpp"

namespace fusecu {
namespace {

TEST(Bf16, RepresentableValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 2.0f, 0.5f, -0.375f, 256.0f, 1.5f, -2.5f}) {
    EXPECT_EQ(bf16_to_float(float_to_bf16(v)), v) << v;
  }
}

TEST(Bf16, RoundToNearestEven) {
  // 1 + 2^-8 sits exactly between 1.0 and the next bf16 (1 + 2^-7):
  // ties round to the even mantissa, i.e. 1.0.
  EXPECT_EQ(quantize_bf16(1.0 + 1.0 / 256.0), 1.0);
  // 1 + 3*2^-9 is above the midpoint of [1, 1+2^-7)? No: 3/512 > 1/256,
  // so it rounds up to 1 + 2^-7.
  EXPECT_EQ(quantize_bf16(1.0 + 3.0 / 512.0), 1.0 + 1.0 / 128.0);
  // And just below the midpoint rounds down.
  EXPECT_EQ(quantize_bf16(1.0 + 1.0 / 512.0), 1.0);
}

TEST(Bf16, RelativeErrorBound) {
  for (double v = 0.001; v < 1e6; v *= 1.7) {
    const double q = quantize_bf16(v);
    EXPECT_LE(std::abs(q - v) / v, kBf16MaxRelativeError) << v;
  }
}

TEST(Bf16, SpecialValues) {
  EXPECT_TRUE(std::isnan(bf16_to_float(float_to_bf16(std::nanf("")))));
  EXPECT_TRUE(std::isinf(bf16_to_float(float_to_bf16(std::numeric_limits<float>::infinity()))));
  // Overflow saturates to infinity through the rounding carry.
  EXPECT_TRUE(std::isinf(bf16_to_float(float_to_bf16(std::numeric_limits<float>::max()))));
  EXPECT_EQ(quantize_bf16(0.0), 0.0);
  EXPECT_EQ(quantize_bf16(-0.0), 0.0);
}

TEST(Bf16, QuantizationIsIdempotent) {
  for (double v : {3.14159, -123.456, 1e-3, 7.0e5}) {
    const double once = quantize_bf16(v);
    EXPECT_EQ(quantize_bf16(once), once);
  }
}

TEST(Bf16, SimulatorIsExactOnQuantizedOperands) {
  // Quantize inputs to bf16; the systolic datapaths add no further error:
  // WS / OS / IS and tile fusion all match the double reference on the
  // quantized operands bit-exactly.
  Matrix a = quantize_bf16(make_test_matrix(6, 5, 201));
  Matrix b = quantize_bf16(make_test_matrix(5, 7, 202));
  Matrix d = quantize_bf16(make_test_matrix(7, 4, 203));

  ComputeUnit cu(8);
  EXPECT_EQ(cu.run_ws(a, b).output, matmul_reference(a, b));
  EXPECT_EQ(cu.run_os(a, b).output, matmul_reference(a, b));
  EXPECT_EQ(cu.run_is(a, b).output, matmul_reference(a, b));
  EXPECT_EQ(cu.run_tile_fusion(a, b, d).output,
            matmul_reference(matmul_reference(a, b), d));
}

TEST(Bf16, MatrixQuantizationShape) {
  Matrix m = make_test_matrix(3, 4, 204);
  Matrix q = quantize_bf16(m);
  EXPECT_EQ(q.rows(), 3);
  EXPECT_EQ(q.cols(), 4);
}

}  // namespace
}  // namespace fusecu
