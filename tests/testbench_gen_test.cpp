#include <gtest/gtest.h>

#include "rtl/testbench_gen.hpp"

namespace fusecu {
namespace {

TEST(TestbenchGen, XsPeTestbenchStructure) {
  std::string tb = generate_xs_pe_testbench();
  RtlLintResult lint = lint_verilog(tb);
  EXPECT_TRUE(lint.ok) << lint.message;
  EXPECT_NE(tb.find("module tb_xs_pe"), std::string::npos);
  EXPECT_NE(tb.find("xs_pe #("), std::string::npos);
  // All three modes and the promote path exercised.
  EXPECT_NE(tb.find("mode = 2'b00"), std::string::npos);
  EXPECT_NE(tb.find("mode = 2'b01"), std::string::npos);
  EXPECT_NE(tb.find("mode = 2'b10"), std::string::npos);
  EXPECT_NE(tb.find("mode = 2'b11"), std::string::npos);  // drain read-out
  EXPECT_NE(tb.find("promote = 1'b1"), std::string::npos);
  // Self-checking.
  EXPECT_NE(tb.find("TB PASSED"), std::string::npos);
  EXPECT_NE(tb.find("$fatal"), std::string::npos);
}

TEST(TestbenchGen, XsPeTestbenchDeterministicPerSeed) {
  EXPECT_EQ(generate_xs_pe_testbench({}, 8, 42), generate_xs_pe_testbench({}, 8, 42));
  EXPECT_NE(generate_xs_pe_testbench({}, 8, 42), generate_xs_pe_testbench({}, 8, 43));
}

TEST(TestbenchGen, WsTestbenchContainsEveryGoldenCheck) {
  RtlParams p;
  p.unit_size = 4;
  std::string tb = generate_ws_testbench(p, /*m=*/5, /*k=*/3, /*l=*/4);
  RtlLintResult lint = lint_verilog(tb);
  EXPECT_TRUE(lint.ok) << lint.message;
  // One golden check per output element.
  std::size_t checks = 0;
  for (std::size_t at = tb.find("MISMATCH C("); at != std::string::npos;
       at = tb.find("MISMATCH C(", at + 1)) {
    ++checks;
  }
  EXPECT_EQ(checks, 5u * 4u);
  EXPECT_NE(tb.find("compute_unit #("), std::string::npos);
  EXPECT_NE(tb.find("load_stationary = 1'b1"), std::string::npos);
}

TEST(TestbenchGen, WsTestbenchRejectsOversizedTiles) {
  RtlParams p;
  p.unit_size = 4;
  EXPECT_THROW(generate_ws_testbench(p, 4, 5, 4), std::invalid_argument);
  EXPECT_THROW(generate_ws_testbench(p, 4, 4, 5), std::invalid_argument);
  EXPECT_THROW(generate_ws_testbench(p, 0, 4, 4), std::invalid_argument);
}

TEST(TestbenchGen, CombinedRtlPlusTestbenchLints) {
  RtlParams p;
  p.unit_size = 4;
  std::string all = generate_all(p) + "\n" + generate_xs_pe_testbench(p) + "\n" +
                    generate_ws_testbench(p, 4, 4, 4);
  RtlLintResult lint = lint_verilog(all);
  EXPECT_TRUE(lint.ok) << lint.message;
  EXPECT_EQ(lint.module_count, 5);
}

}  // namespace
}  // namespace fusecu
