#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "serve/plan_service.hpp"

namespace fusecu {
namespace {

/// Thread-safe collecting sink with a drain so one test can separate the
/// cold (miss) batch's spans from the warm (hit) batch's.
class CollectingSink : public SpanSink {
 public:
  void on_span(const SpanRecord& span) override {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(span);
  }

  std::vector<SpanRecord> drain() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SpanRecord> out;
    out.swap(spans_);
    return out;
  }

 private:
  std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

class SinkScope {
 public:
  explicit SinkScope(SpanSink* sink) : prev_(set_span_sink(sink)) {}
  ~SinkScope() { set_span_sink(prev_); }

 private:
  SpanSink* prev_;
};

PlanRequest matmul_request(const std::string& id, Index m) {
  PlanRequest r;
  r.id = id;
  r.kind = PlanRequest::Kind::kMatmul;
  r.m = m;
  r.k = 16;
  r.l = 24;
  r.buffer_elems = 512;
  return r;
}

PlanRequest fused_request(const std::string& id, Index m) {
  PlanRequest r;
  r.id = id;
  r.kind = PlanRequest::Kind::kFusedPair;
  r.m = m;
  r.k = 16;
  r.l = 24;
  r.n = 12;
  r.buffer_elems = 2048;
  return r;
}

/// One request's span tree, reassembled from the flat sink output.
struct Trace {
  std::vector<SpanRecord> spans;
  const SpanRecord* root = nullptr;
};

std::map<std::uint64_t, Trace> group_traces(const std::vector<SpanRecord>& spans) {
  std::map<std::uint64_t, Trace> traces;
  for (const SpanRecord& s : spans) traces[s.context.trace_id].spans.push_back(s);
  for (auto& [id, trace] : traces) {
    for (const SpanRecord& s : trace.spans) {
      if (s.context.parent_span_id == 0) {
        EXPECT_EQ(trace.root, nullptr) << "two roots in trace " << id;
        trace.root = &s;
      }
    }
  }
  return traces;
}

/// Every span must reach the root by walking parent links — one *connected*
/// tree per request, even when children closed on a different clock edge.
void expect_connected(const Trace& trace) {
  ASSERT_NE(trace.root, nullptr);
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : trace.spans) by_id[s.context.span_id] = &s;
  for (const SpanRecord& s : trace.spans) {
    const SpanRecord* cur = &s;
    int hops = 0;
    while (cur->context.parent_span_id != 0) {
      auto it = by_id.find(cur->context.parent_span_id);
      ASSERT_NE(it, by_id.end()) << "span " << s.name << " has a dangling parent";
      cur = it->second;
      ASSERT_LT(++hops, 64) << "parent cycle at " << s.name;
    }
    EXPECT_EQ(cur->context.span_id, trace.root->context.span_id)
        << s.name << " is connected to a different root";
  }
}

bool has_span(const Trace& trace, const std::string& name) {
  return std::any_of(trace.spans.begin(), trace.spans.end(),
                     [&](const SpanRecord& s) { return s.name == name; });
}

bool has_optimize_span(const Trace& trace) {
  return std::any_of(trace.spans.begin(), trace.spans.end(), [](const SpanRecord& s) {
    return s.name.rfind("optimize/", 0) == 0;
  });
}

TEST(ServeSpans, OneConnectedTreePerPooledRequest) {
  CollectingSink sink;
  SinkScope scope(&sink);

  ServeOptions options;
  options.threads = 4;
  PlanService service(options);

  std::vector<PlanRequest> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(matmul_request("m" + std::to_string(i), 32 + i));
  batch.push_back(fused_request("f0", 20));

  std::vector<PlanResponse> responses = service.plan_batch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (const PlanResponse& r : responses) EXPECT_TRUE(r.ok) << r.id << ": " << r.error;

  const std::map<std::uint64_t, Trace> cold = group_traces(sink.drain());
  ASSERT_EQ(cold.size(), batch.size()) << "exactly one trace per request";

  int matmul_roots = 0, fused_roots = 0;
  for (const auto& [id, trace] : cold) {
    expect_connected(trace);
    const std::string& root = trace.root->name;
    if (root == "request/matmul") ++matmul_roots;
    if (root == "request/fused_pair") ++fused_roots;
    // Pooled requests record their time on the queue and the cold path
    // runs the optimizer: both must hang off this request's own root.
    EXPECT_TRUE(has_span(trace, "queue_wait")) << root;
    EXPECT_TRUE(has_span(trace, "cache_lookup")) << root;
    EXPECT_TRUE(has_optimize_span(trace)) << root << " (cold request must optimize)";
  }
  EXPECT_EQ(matmul_roots, 8);
  EXPECT_EQ(fused_roots, 1);

  // Same batch again: every request is now a cache hit, and a hit's span
  // tree must NOT contain an optimize child.
  responses = service.plan_batch(batch);
  for (const PlanResponse& r : responses) EXPECT_TRUE(r.ok) << r.id << ": " << r.error;

  const std::map<std::uint64_t, Trace> warm = group_traces(sink.drain());
  ASSERT_EQ(warm.size(), batch.size());
  for (const auto& [id, trace] : warm) {
    expect_connected(trace);
    EXPECT_FALSE(has_optimize_span(trace))
        << trace.root->name << " hit the cache but still shows an optimize span";
    EXPECT_TRUE(has_span(trace, "cache_lookup"));
  }
}

TEST(ServeSpans, DirectPlanRootsItsOwnTraceWithoutQueueWait) {
  CollectingSink sink;
  SinkScope scope(&sink);

  ServeOptions options;
  options.threads = 2;
  PlanService service(options);

  const PlanResponse response = service.plan(matmul_request("direct", 48));
  EXPECT_TRUE(response.ok) << response.error;

  const std::map<std::uint64_t, Trace> traces = group_traces(sink.drain());
  ASSERT_EQ(traces.size(), 1u);
  const Trace& trace = traces.begin()->second;
  expect_connected(trace);
  EXPECT_EQ(trace.root->name, "request/matmul");
  EXPECT_FALSE(has_span(trace, "queue_wait")) << "unpooled plan() never waited on a queue";
}

TEST(ServeSpans, RecordingOffMeansNoSpansAndRequestsStillPlan) {
  ASSERT_FALSE(span_recording_enabled());
  ServeOptions options;
  options.threads = 2;
  PlanService service(options);
  const PlanResponse response = service.plan(matmul_request("quiet", 40));
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_FALSE(current_span().valid());
}

}  // namespace
}  // namespace fusecu
