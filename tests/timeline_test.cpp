#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.hpp"
#include "fusion/fusion_principles.hpp"
#include "principles/principle_optimizer.hpp"
#include "sim/timeline.hpp"
#include "sim/trace.hpp"

namespace fusecu {
namespace {

TEST(Timeline, TrafficMatchesAccessModel) {
  TensorOp op = TensorOp::matmul("tl", 256, 128, 256);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 64}, {"L", 64}, {"K", 32}});
  TimelineResult r = simulate_timeline(op, df, make_fusecu());
  EXPECT_EQ(r.traffic, evaluate_access(op, df).total);
  // Iterations = product of trip counts.
  EXPECT_EQ(r.iterations, (256 / 64) * (256 / 64) * (128 / 32));
}

TEST(Timeline, MakespanBoundedByRooflineAndSerialization) {
  TensorOp op = TensorOp::matmul("tl", 512, 256, 512);
  for (Index t : {Index{32}, Index{64}, Index{128}}) {
    Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", t}, {"L", t}, {"K", 16}});
    TimelineResult r = simulate_timeline(op, df, make_fusecu());
    EXPECT_GE(r.cycles, r.roofline()) << "t=" << t;
    EXPECT_LE(r.cycles, r.serialized() + 1) << "t=" << t;
  }
}

TEST(Timeline, DoubleBufferingRecoversMostOfTheOverlap) {
  // A balanced schedule should land near the roofline, far below the
  // serialized bound.
  TensorOp op = TensorOp::matmul("tl", 1024, 512, 1024);
  IntraOptResult opt = optimize_intra(op, 128 * 1024);
  TimelineResult r = simulate_timeline(op, opt.dataflow, make_fusecu());
  EXPECT_LE(static_cast<double>(r.cycles), 1.25 * static_cast<double>(r.roofline()));
}

TEST(Timeline, MemoryBoundScheduleTracksDmaBusy) {
  // Tiny tiles -> terrible reuse -> the DMA dominates the makespan.
  TensorOp op = TensorOp::matmul("tl", 256, 256, 256);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 4}, {"L", 4}, {"K", 4}});
  TimelineResult r = simulate_timeline(op, df, make_tpu_v4i());
  EXPECT_GT(r.dma_busy, r.compute_busy);
  EXPECT_LE(static_cast<double>(r.cycles), 1.05 * static_cast<double>(r.dma_busy) + 16);
}

TEST(Timeline, LowerUtilizationStretchesCompute) {
  TensorOp op = TensorOp::matmul("tl", 256, 256, 256);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 128}, {"L", 128}, {"K", 64}});
  TimelineResult full = simulate_timeline(op, df, make_fusecu(), 1.0);
  TimelineResult half = simulate_timeline(op, df, make_fusecu(), 0.5);
  EXPECT_EQ(half.compute_busy, 2 * full.compute_busy);
  EXPECT_THROW(simulate_timeline(op, df, make_fusecu(), 0.0), std::invalid_argument);
  EXPECT_THROW(simulate_timeline(op, df, make_fusecu(), 1.5), std::invalid_argument);
}

TEST(FusedTimeline, TrafficMatchesFusedModel) {
  FusedPair pair = FusedPair::make(256, 64, 256, 64);
  PhasedFusedDataflow df{64, 16, 64, 16, false};
  TimelineResult r = simulate_fused_timeline(pair, df, make_fusecu());
  FusedAccess predicted = evaluate_phased(pair, df);
  EXPECT_EQ(r.traffic, predicted.total);
  EXPECT_GE(r.cycles, r.roofline());
  EXPECT_LE(r.cycles, r.serialized() + 1);
}

TEST(FusedTimeline, FusionBeatsUnfusedBackToBack) {
  // Execute the attention pair fused vs as two back-to-back schedules; the
  // fused timeline must win on makespan thanks to the removed intermediate
  // traffic.
  const BufferSize bs = make_fusecu().buffer_elements();
  FusedPair pair = FusedPair::make(1024, 64, 1024, 64);
  auto fused = optimize_fused_pair(pair, bs);
  ASSERT_TRUE(fused && fused->chosen.phased);
  TimelineResult fused_tl = simulate_fused_timeline(pair, *fused->chosen.phased, make_fusecu());

  IntraOptResult op1 = optimize_intra(pair.op1(), bs);
  IntraOptResult op2 = optimize_intra(pair.op2(), bs);
  TimelineResult u1 = simulate_timeline(pair.op1(), op1.dataflow, make_fusecu());
  TimelineResult u2 = simulate_timeline(pair.op2(), op2.dataflow, make_fusecu());
  EXPECT_LT(fused_tl.cycles, u1.cycles + u2.cycles);
}

/// Final value of each counter track (samples are cumulative except
/// occupancy, which is instantaneous).
std::map<std::string, double> final_counter_values(const TraceRecorder& rec) {
  std::map<std::string, double> last;
  for (const CounterSample& s : rec.counter_samples()) last[s.track] = s.value;
  return last;
}

TEST(Timeline, CounterTracksMatchTimelineResult) {
  TensorOp op = TensorOp::matmul("tl", 256, 128, 256);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 64}, {"L", 64}, {"K", 32}});
  TraceRecorder rec;
  TimelineResult r = simulate_timeline(op, df, make_fusecu(), 1.0, &rec);

  // One sample per track per iteration.
  EXPECT_EQ(static_cast<Index>(rec.counter_samples().size()), 4 * r.iterations);
  std::map<std::string, double> last = final_counter_values(rec);
  ASSERT_GE(last.size(), 3u);  // >= 3 counter tracks for Perfetto
  // The cumulative tracks retire at exactly the TimelineResult totals
  // (which are the ceil of the running doubles).
  EXPECT_EQ(static_cast<CycleCount>(std::ceil(last.at("dma_busy_cycles"))), r.dma_busy);
  EXPECT_EQ(static_cast<CycleCount>(std::ceil(last.at("compute_busy_cycles"))), r.compute_busy);
  EXPECT_DOUBLE_EQ(last.at("traffic_elements"), static_cast<double>(r.traffic));
  // Occupancy stays within the schedule's tile footprint.
  const double footprint = static_cast<double>(df.buffer_footprint(op));
  for (const CounterSample& s : rec.counter_samples()) {
    if (s.track != "buffer_occupancy_elements") continue;
    EXPECT_GT(s.value, 0.0);
    EXPECT_LE(s.value, footprint);
  }
  // Cumulative tracks never decrease.
  std::map<std::string, double> prev;
  for (const CounterSample& s : rec.counter_samples()) {
    if (s.track == "buffer_occupancy_elements") continue;
    auto [it, inserted] = prev.try_emplace(s.track, s.value);
    if (!inserted) {
      EXPECT_GE(s.value, it->second) << s.track;
      it->second = s.value;
    }
  }
}

TEST(FusedTimeline, CounterTracksMatchTimelineResult) {
  FusedPair pair = FusedPair::make(256, 64, 256, 64);
  PhasedFusedDataflow df{64, 16, 64, 16, false};
  TraceRecorder rec;
  TimelineResult r = simulate_fused_timeline(pair, df, make_fusecu(), 1.0, &rec);
  std::map<std::string, double> last = final_counter_values(rec);
  EXPECT_EQ(static_cast<CycleCount>(std::ceil(last.at("dma_busy_cycles"))), r.dma_busy);
  EXPECT_EQ(static_cast<CycleCount>(std::ceil(last.at("compute_busy_cycles"))), r.compute_busy);
  EXPECT_DOUBLE_EQ(last.at("traffic_elements"), static_cast<double>(r.traffic));
}

class TimelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineFuzz, InvariantsHoldOnRandomSchedules) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const Index m = rng.uniform(1, 64), k = rng.uniform(1, 64), l = rng.uniform(1, 64);
    TensorOp op = TensorOp::matmul("fuzz", m, k, l);
    static const std::vector<std::vector<int>> orders = {
        {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
    Dataflow df;
    df.loop_order = orders[rng.pick(orders.size())];
    df.tile = {rng.uniform(1, m), rng.uniform(1, k), rng.uniform(1, l)};
    TimelineResult r = simulate_timeline(op, df, make_fusecu());
    EXPECT_EQ(r.traffic, evaluate_access(op, df).total) << df.to_string(op);
    EXPECT_GE(r.cycles, r.roofline());
    EXPECT_LE(r.cycles, r.serialized() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineFuzz, ::testing::Values(301ull, 302ull, 303ull, 304ull));

}  // namespace
}  // namespace fusecu
