#include <gtest/gtest.h>

#include "arch/area_model.hpp"
#include "common/math_util.hpp"
#include "search/dat_optimizer.hpp"
#include "workloads/model_eval.hpp"

namespace fusecu {
namespace {

/// End-to-end guards for the reproduction headlines recorded in
/// EXPERIMENTS.md.  If a model/optimizer change silently shifts the
/// Fig. 10/11/12 results away from the paper, these tests fail before a
/// bench run would reveal it.

struct Fig10Results {
  std::map<std::string, std::map<std::string, ModelEval>> by_model;
  double average_saving(const std::string& against, const std::string& target) const {
    std::vector<double> savings;
    for (const auto& [model, row] : by_model) {
      savings.push_back(1.0 - static_cast<double>(row.at(target).access) /
                                  static_cast<double>(row.at(against).access));
    }
    return arith_mean(savings);
  }
  double average_speedup(const std::string& against, const std::string& target) const {
    std::vector<double> speedups;
    for (const auto& [model, row] : by_model) {
      speedups.push_back(static_cast<double>(row.at(against).cycles) /
                         static_cast<double>(row.at(target).cycles));
    }
    return arith_mean(speedups);
  }
};

const Fig10Results& fig10() {
  static const Fig10Results results = [] {
    Fig10Results r;
    for (const ArchSpec& arch : all_platforms()) {
      for (const ModelEval& e : evaluate_table2(arch)) r.by_model[e.model][arch.name] = e;
    }
    return r;
  }();
  return results;
}

TEST(PaperClaims, Fig10MemorySavings) {
  // Paper: 63.6% / 62.4% / 38.7% vs TPUv4i / Gemmini / Planaria.
  EXPECT_NEAR(fig10().average_saving("TPUv4i", "FuseCU"), 0.636, 0.03);
  EXPECT_NEAR(fig10().average_saving("Gemmini", "FuseCU"), 0.624, 0.03);
  EXPECT_NEAR(fig10().average_saving("Planaria", "FuseCU"), 0.387, 0.04);
}

TEST(PaperClaims, Fig10UnfCuSavings) {
  // Paper: 42.6% / 41.0% / 4.5%.  Our UnfCU lands a bit lower; guard the
  // reproduced band rather than the paper point.
  EXPECT_NEAR(fig10().average_saving("TPUv4i", "UnfCU"), 0.40, 0.07);
  EXPECT_GE(fig10().average_saving("Planaria", "UnfCU"), -0.01);  // never worse
}

TEST(PaperClaims, Fig10Speedups) {
  // Paper: 1.33x / 1.25x / 1.14x; our roofline overshoots ~15% (see
  // EXPERIMENTS.md) — guard the ordering and the band.
  const double vs_tpu = fig10().average_speedup("TPUv4i", "FuseCU");
  const double vs_gemmini = fig10().average_speedup("Gemmini", "FuseCU");
  const double vs_planaria = fig10().average_speedup("Planaria", "FuseCU");
  EXPECT_GT(vs_tpu, 1.2);
  EXPECT_LT(vs_tpu, 1.8);
  EXPECT_GE(vs_tpu, vs_gemmini - 0.02);
  EXPECT_GT(vs_gemmini, vs_planaria);
  EXPECT_GT(vs_planaria, 1.05);
}

TEST(PaperClaims, Fig10PlatformOrderingPerModel) {
  for (const auto& [model, row] : fig10().by_model) {
    EXPECT_LE(row.at("Gemmini").access, row.at("TPUv4i").access) << model;
    EXPECT_LE(row.at("Planaria").access, row.at("Gemmini").access) << model;
    EXPECT_LT(row.at("FuseCU").access, row.at("UnfCU").access) << model;
    EXPECT_LE(row.at("FuseCU").utilization + 1e-9, 1.0 + 1e-9) << model;
    EXPECT_GE(row.at("FuseCU").utilization, row.at("TPUv4i").utilization) << model;
  }
}

TEST(PaperClaims, Fig11SavingGrowsWithSequenceLength) {
  double previous = 0.0;
  for (Index seq : {Index{256}, Index{1024}, Index{4096}, Index{16384}}) {
    ModelConfig model = llama2_at_seq(seq);
    const double tpu = static_cast<double>(evaluate_model(model, make_tpu_v4i()).access);
    const double fcu = static_cast<double>(evaluate_model(model, make_fusecu()).access);
    const double saving = 1.0 - fcu / tpu;
    EXPECT_GT(saving, previous) << "seq=" << seq;
    previous = saving;
  }
  EXPECT_GT(previous, 0.70);  // 16K lands above 70% (measured 75.1%)
}

TEST(PaperClaims, Fig12AreaHeadlines) {
  AreaBreakdown fcu = area_breakdown(make_fusecu());
  EXPECT_NEAR(fcu.overhead_fraction(), 0.120, 0.01);
  EXPECT_LT(fcu.component_fraction("FuseCU interconnect") +
                fcu.component_fraction("fusion control"),
            0.001);
  EXPECT_NEAR(area_breakdown(make_planaria()).overhead_fraction(), 0.126, 0.01);
}

TEST(PaperClaims, Fig9PrinciplesMatchSearchAtTheEvaluationPoint) {
  // At the evaluation buffer every Table II projection/attention operator's
  // principled dataflow is at least as good as grid search.
  const BufferSize bs = make_fusecu().buffer_elements();
  for (const ModelConfig& m : table2_models()) {
    for (const WorkloadChain& chain : lower_layer(m)) {
      for (const TensorOp& op : chain.graph.ops()) {
        auto searched = exhaustive_intra(op, bs);
        ASSERT_TRUE(searched.has_value()) << op.to_string();
        EXPECT_LE(optimize_intra(op, bs).access.total, searched->access.total)
            << m.name << " " << op.to_string();
      }
    }
  }
}

}  // namespace
}  // namespace fusecu
