#include <gtest/gtest.h>

#include "rtl/verilog_gen.hpp"

namespace fusecu {
namespace {

TEST(VerilogGen, XsPeStructure) {
  std::string v = generate_xs_pe();
  RtlLintResult lint = lint_verilog(v);
  EXPECT_TRUE(lint.ok) << lint.message;
  EXPECT_EQ(lint.module_count, 1);
  // The three datapaths of Fig. 6 and the fusion promote path.
  EXPECT_NE(v.find("MODE_WS"), std::string::npos);
  EXPECT_NE(v.find("MODE_IS"), std::string::npos);
  EXPECT_NE(v.find("MODE_OS"), std::string::npos);
  EXPECT_NE(v.find("promote"), std::string::npos);
  EXPECT_NE(v.find("stationary  <= accumulator"), std::string::npos);
  // MAC structure matches the simulator semantics.
  EXPECT_NE(v.find("north_in + stationary * west_in"), std::string::npos);
  EXPECT_NE(v.find("west_in  + stationary * north_in"), std::string::npos);
  EXPECT_NE(v.find("accumulator + west_in * north_in"), std::string::npos);
}

TEST(VerilogGen, ParametersPropagate) {
  RtlParams p;
  p.data_width = 8;
  p.acc_width = 24;
  p.unit_size = 16;
  std::string pe = generate_xs_pe(p);
  EXPECT_NE(pe.find("parameter DATA_W = 8"), std::string::npos);
  EXPECT_NE(pe.find("parameter ACC_W  = 24"), std::string::npos);
  std::string cu = generate_compute_unit(p);
  EXPECT_NE(cu.find("parameter N      = 16"), std::string::npos);
}

TEST(VerilogGen, ComputeUnitStructure) {
  std::string v = generate_compute_unit();
  RtlLintResult lint = lint_verilog(v);
  EXPECT_TRUE(lint.ok) << lint.message;
  EXPECT_EQ(lint.instance_count, 1);  // one xs_pe inside the generate mesh
  EXPECT_NE(v.find("generate"), std::string::npos);
  EXPECT_NE(v.find("east_edge"), std::string::npos);
  EXPECT_NE(v.find("south_edge"), std::string::npos);
}

TEST(VerilogGen, FuseCuTopStructure) {
  std::string v = generate_fusecu_top();
  RtlLintResult lint = lint_verilog(v);
  EXPECT_TRUE(lint.ok) << lint.message;
  // FU-configuration muxes and the three compositions of Fig. 7.
  EXPECT_NE(v.find("CFG_INDEPENDENT"), std::string::npos);
  EXPECT_NE(v.find("CFG_NARROW"), std::string::npos);
  EXPECT_NE(v.find("CFG_COLUMN"), std::string::npos);
  // Chained units take their west input from the neighbor's east edge.
  EXPECT_NE(v.find(": east_u[0]"), std::string::npos);
  EXPECT_NE(v.find(": east_u[2]"), std::string::npos);
}

TEST(VerilogGen, CombinedFileLints) {
  std::string v = generate_all();
  RtlLintResult lint = lint_verilog(v);
  EXPECT_TRUE(lint.ok) << lint.message;
  EXPECT_EQ(lint.module_count, 3);
  EXPECT_GE(lint.instance_count, 2);  // xs_pe in the CU, compute_unit in the top
}

TEST(VerilogGen, RejectsInvalidParams) {
  RtlParams bad;
  bad.acc_width = 8;
  bad.data_width = 16;  // accumulator narrower than data
  EXPECT_THROW(generate_xs_pe(bad), std::invalid_argument);
  bad = RtlParams{};
  bad.unit_size = 0;
  EXPECT_THROW(generate_compute_unit(bad), std::invalid_argument);
}

TEST(VerilogLint, CatchesStructuralDamage) {
  std::string good = generate_xs_pe();
  EXPECT_TRUE(lint_verilog(good).ok);
  EXPECT_FALSE(lint_verilog("").ok);
  EXPECT_FALSE(lint_verilog("module m;\n").ok);  // no endmodule

  std::string unbalanced = good;
  unbalanced.replace(unbalanced.find("endcase"), 7, "       ");
  EXPECT_FALSE(lint_verilog(unbalanced).ok);

  std::string paren = good;
  paren.erase(paren.find('('), 1);
  EXPECT_FALSE(lint_verilog(paren).ok);
}

}  // namespace
}  // namespace fusecu
