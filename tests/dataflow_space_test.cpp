#include <gtest/gtest.h>

#include "arch/dataflow_space.hpp"
#include "common/units.hpp"
#include "principles/principle_optimizer.hpp"

namespace fusecu {
namespace {

TEST(DataflowSpace, ResidentTensorPerStationarity) {
  EXPECT_EQ(resident_tensor_for(Stationarity::kInput), mm::kTensorA);
  EXPECT_EQ(resident_tensor_for(Stationarity::kWeight), mm::kTensorB);
  EXPECT_EQ(resident_tensor_for(Stationarity::kOutput), mm::kTensorC);
}

TEST(DataflowSpace, LegalizeTile) {
  EXPECT_EQ(legalize_tile(100, 512, 32), 96);   // round down to granularity
  EXPECT_EQ(legalize_tile(100, 512, 128), 1);   // below granularity -> stream
  EXPECT_EQ(legalize_tile(512, 512, 128), 512); // untiled stays untiled
  EXPECT_EQ(legalize_tile(700, 512, 128), 512); // clamped to extent
  EXPECT_EQ(legalize_tile(1, 512, 128), 1);     // unit tile always legal
  EXPECT_THROW(legalize_tile(10, 512, 0), std::invalid_argument);
}

TEST(DataflowSpace, LowFlexLocksResidentTileToArrayShape) {
  TensorOp op = TensorOp::matmul("proj", 16384, 768, 768);
  ArchSpec tpu = make_tpu_v4i();
  ArchIntraOpt r = optimize_intra_for_arch(op, tpu);
  // The weight (B) tile is exactly 128 x 128 regardless of schedule.
  EXPECT_EQ(r.spatial_rows, 128);
  EXPECT_EQ(r.spatial_cols, 128);
  // The staged schedule wins: A staged in the buffer (accessed once),
  // C spilled per 128-wide K tile, B refetched per M stage of
  // T_M = (BS - 128^2) / 256.
  const Index t_m = (tpu.buffer_elements() - 128 * 128) / 256;
  const AccessCount staged = 16384LL * 768 + 16384LL * 768 * (768 / 128) +
                             768LL * 768 * ((16384 + t_m - 1) / t_m);
  EXPECT_EQ(r.access.total, staged);
  // And it beats the streaming schedule MA = |B| + MK*(L/128) + ML*(K/128).
  const AccessCount streaming = 768LL * 768 + 16384LL * 768 * (768 / 128) * 2;
  EXPECT_LT(r.access.total, streaming);
}

TEST(DataflowSpace, GemminiAddsOutputStationaryChoice) {
  // For an op whose output is the cheapest resident, Gemmini (WS|OS) should
  // never do worse than TPUv4i (WS only).
  for (Index m : {Index{512}, Index{4096}}) {
    TensorOp op = TensorOp::matmul("op", m, 4096, 128);
    AccessCount tpu = optimize_intra_for_arch(op, make_tpu_v4i()).access.total;
    AccessCount gemmini = optimize_intra_for_arch(op, make_gemmini()).access.total;
    EXPECT_LE(gemmini, tpu);
  }
}

TEST(DataflowSpace, FlexiblePlatformsNeverLoseToRigidOnes) {
  const std::vector<TensorOp> ops = {
      TensorOp::matmul("proj", 16384, 768, 768),
      TensorOp::matmul("attn_score", 1024, 64, 1024),
      TensorOp::matmul("attn_ctx", 1024, 1024, 64),
      TensorOp::matmul("ffn", 4096, 1024, 4096),
  };
  for (const TensorOp& op : ops) {
    const AccessCount tpu = optimize_intra_for_arch(op, make_tpu_v4i()).access.total;
    const AccessCount planaria = optimize_intra_for_arch(op, make_planaria()).access.total;
    const AccessCount unfcu = optimize_intra_for_arch(op, make_unfcu()).access.total;
    EXPECT_LE(planaria, tpu) << op.to_string();
    EXPECT_LE(unfcu, tpu) << op.to_string();
    // And neither flexible platform beats the unconstrained lower bound.
    const AccessCount bound = optimize_intra(op, make_unfcu().buffer_elements()).access.total;
    EXPECT_GE(unfcu, bound) << op.to_string();
    EXPECT_GE(planaria, bound) << op.to_string();
  }
}

TEST(DataflowSpace, UnfCuTracksUnconstrainedOptimumClosely) {
  // Middle flexibility legalizes tiles at 64-granularity; the loss vs the
  // unconstrained optimum should be small (paper: UnfCU supports "the
  // optimal intra-operator dataflow").
  TensorOp op = TensorOp::matmul("proj", 16384, 768, 768);
  const ArchSpec unfcu = make_unfcu();
  const AccessCount constrained = optimize_intra_for_arch(op, unfcu).access.total;
  const AccessCount bound = optimize_intra(op, unfcu.buffer_elements()).access.total;
  EXPECT_LE(static_cast<double>(constrained), 1.10 * static_cast<double>(bound));
}

TEST(DataflowSpace, OnlyFuseCuFusesAttention) {
  OperatorGraph attn = MatMulChainBuilder(1024, {64, 1024, 64}, "attn").graph();
  for (const ArchSpec& arch : all_platforms()) {
    ArchPlan plan = plan_chain_for_arch(attn, arch);
    if (arch.supports_fusion) {
      EXPECT_EQ(plan.fused_pair_count(), 1) << arch.name;
    } else {
      EXPECT_EQ(plan.fused_pair_count(), 0) << arch.name;
    }
  }
}

TEST(DataflowSpace, FusionReducesChainAccess) {
  OperatorGraph attn = MatMulChainBuilder(1024, {64, 1024, 64}, "attn").graph();
  AccessCount fused = plan_chain_for_arch(attn, make_fusecu()).total_access;
  AccessCount unfused = plan_chain_for_arch(attn, make_unfcu()).total_access;
  EXPECT_LT(fused, unfused);
  // The saving is at least the intermediate round trip avoided.
  EXPECT_LE(fused + 2 * 1024 * 1024, unfused + 1024 * 1024);
}

TEST(DataflowSpace, PlanCoversAllOpsExactlyOnce) {
  OperatorGraph ffn = MatMulChainBuilder(16384, {768, 3072, 768}, "ffn").graph();
  for (const ArchSpec& arch : all_platforms()) {
    ArchPlan plan = plan_chain_for_arch(ffn, arch);
    std::vector<bool> seen(2, false);
    AccessCount sum = 0;
    MacCount macs = 0;
    for (const ArchPlanStep& s : plan.steps) {
      sum += s.access;
      macs += s.macs;
      for (int i : s.op_indices) {
        EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
        seen[static_cast<std::size_t>(i)] = true;
      }
      EXPECT_GE(s.spatial_rows, 1);
      EXPECT_GE(s.spatial_cols, 1);
    }
    EXPECT_EQ(sum, plan.total_access) << arch.name;
    EXPECT_EQ(macs, plan.total_macs) << arch.name;
    for (bool b : seen) EXPECT_TRUE(b);
  }
}

TEST(DataflowSpace, FallbackHandlesTinyBuffers) {
  TensorOp op = TensorOp::matmul("op", 64, 64, 64);
  ArchSpec tiny = make_tpu_v4i(64);  // 32 elements: even a 64x64 B tile fails
  ArchIntraOpt r = optimize_intra_for_arch(op, tiny);
  EXPECT_LE(r.access.buffer_footprint, tiny.buffer_elements());
}

}  // namespace
}  // namespace fusecu
