#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/plan_cache.hpp"

namespace fusecu {
namespace {

/// Each test uses a distinct metric prefix so the global-registry counters
/// the cache reports through start at zero for that test.
ShardedLruCache<int>::Options options_for(const std::string& prefix, int shards,
                                          std::size_t capacity) {
  ShardedLruCache<int>::Options o;
  o.shards = shards;
  o.capacity_bytes = capacity;
  o.metric_prefix = prefix;
  return o;
}

/// Bookkeeping overhead charged per entry on top of the caller's cost; the
/// tests size capacities relative to it so eviction points are exact.
std::size_t overhead(const std::string& key) {
  ShardedLruCache<int> probe(options_for("test/cache/probe/" + key, 1, 1));
  probe.put(key, 0, 0);
  return probe.stats().bytes;
}

TEST(ShardedLruCache, HitMissAndRecency) {
  ShardedLruCache<int> cache(options_for("test/cache/hitmiss", 4, 1 << 20));
  EXPECT_EQ(cache.get("a"), std::nullopt);
  cache.put("a", 1, 8);
  cache.put("b", 2, 8);
  EXPECT_EQ(cache.get("a"), std::optional<int>(1));
  EXPECT_EQ(cache.get("b"), std::optional<int>(2));
  EXPECT_EQ(cache.get("c"), std::nullopt);

  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 2);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.insertions, 2);
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(s.entries, 2u);
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsedFirst) {
  // One shard so the whole budget is a single LRU list.  Capacity fits
  // exactly three entries of cost 100 (plus fixed per-entry overhead).
  const std::size_t per_entry = 100 + overhead("a");
  ShardedLruCache<int> cache(options_for("test/cache/evict", 1, 3 * per_entry));
  cache.put("a", 1, 100);
  cache.put("b", 2, 100);
  cache.put("c", 3, 100);
  EXPECT_EQ(cache.stats().entries, 3u);

  // Touch "a": recency order is now a, c, b — "b" is the LRU victim.
  EXPECT_TRUE(cache.get("a").has_value());
  cache.put("d", 4, 100);
  EXPECT_EQ(cache.get("b"), std::nullopt) << "LRU entry should have been evicted";
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_TRUE(cache.get("d").has_value());
  EXPECT_EQ(cache.stats().evictions, 1);

  // Inserting two more evicts in strict recency order: c, then a.
  cache.put("e", 5, 100);
  cache.put("f", 6, 100);
  EXPECT_EQ(cache.get("c"), std::nullopt);
  EXPECT_EQ(cache.get("a"), std::nullopt);
  EXPECT_TRUE(cache.get("d").has_value());
  EXPECT_EQ(cache.stats().evictions, 3);
}

TEST(ShardedLruCache, KeepsAtLeastOneEntryWhenOversized) {
  ShardedLruCache<int> cache(options_for("test/cache/oversize", 1, 16));
  cache.put("huge", 7, 1 << 20);  // cost far beyond capacity
  EXPECT_EQ(cache.get("huge"), std::optional<int>(7))
      << "a single oversized entry must survive (never evict below one entry)";
  cache.put("huge2", 8, 1 << 20);
  EXPECT_EQ(cache.get("huge"), std::nullopt);
  EXPECT_EQ(cache.get("huge2"), std::optional<int>(8));
}

TEST(ShardedLruCache, UpsertExtendsInPlace) {
  ShardedLruCache<int> cache(options_for("test/cache/upsert", 2, 1 << 20));
  bool existed_first = true;
  cache.upsert(
      "k", [&](int& v, bool existed) { existed_first = existed; v = 1; }, 8);
  EXPECT_FALSE(existed_first);

  bool existed_second = false;
  cache.upsert(
      "k",
      [&](int& v, bool existed) {
        existed_second = existed;
        EXPECT_EQ(v, 1) << "upsert must see the previously stored value";
        v = 2;
      },
      8);
  EXPECT_TRUE(existed_second);
  EXPECT_EQ(cache.get("k"), std::optional<int>(2));
  EXPECT_EQ(cache.stats().insertions, 1) << "in-place extension is not a new insertion";
}

TEST(ShardedLruCache, ConcurrentMixedTrafficStaysConsistent) {
  // Hammer a small cache from several threads; the assertion is internal
  // consistency (every successful get returns the value put under that key),
  // and under TSan this is the data-race check for the shard locking.
  ShardedLruCache<int> cache(options_for("test/cache/hammer", 4, 4096));
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kIters; ++i) {
        const int slot = (t * 7 + i) % 13;
        const std::string key = "key" + std::to_string(slot);
        if (std::optional<int> v = cache.get(key)) {
          ASSERT_EQ(*v, slot * 11);
        } else {
          cache.put(key, slot * 11, 64);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kIters);
  EXPECT_GE(s.entries, 1u);
}

}  // namespace
}  // namespace fusecu
