#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fusion/fused_pair.hpp"
#include "principles/principle_optimizer.hpp"
#include "test_util.hpp"

namespace fusecu {
namespace {

TEST(FusedPair, MakeAndAccessors) {
  FusedPair p = FusedPair::make(256, 64, 256, 64);
  EXPECT_EQ(p.m(), 256);
  EXPECT_EQ(p.k(), 64);
  EXPECT_EQ(p.l(), 256);
  EXPECT_EQ(p.n(), 64);
  EXPECT_EQ(p.intermediate_size(), 256 * 256);
  EXPECT_EQ(p.ideal_min_access(), 256LL * 64 + 64LL * 256 + 256LL * 64 + 256LL * 64);
  EXPECT_THROW(FusedPair::make(0, 1, 1, 1), std::invalid_argument);
}

TEST(FusedPair, FromOpsCanonicalOrientation) {
  TensorOp op1 = TensorOp::matmul("score", 256, 64, 256, "Q", "Kt", "S");
  TensorOp op2 = TensorOp::matmul("context", 256, 256, 64, "S", "V", "O");
  FusedPair p = FusedPair::from_ops(op1, op2);
  EXPECT_EQ(p.m(), 256);
  EXPECT_EQ(p.k(), 64);
  EXPECT_EQ(p.l(), 256);
  EXPECT_EQ(p.n(), 64);
}

TEST(FusedPair, FromOpsWeightSideOrientationTransposes) {
  // C(M=128, L=32) consumed as op2's *second* operand: op2 = Y(16,128) x C.
  TensorOp op1 = TensorOp::matmul("mm1", 128, 64, 32, "A", "B", "C");
  TensorOp op2 = TensorOp::matmul("mm2", 16, 128, 32, "Y", "C", "E");
  FusedPair p = FusedPair::from_ops(op1, op2);
  // Transposed canonical form: (m, k, l, n) = (L, K, M, M2) = (32, 64, 128, 16).
  EXPECT_EQ(p.m(), 32);
  EXPECT_EQ(p.k(), 64);
  EXPECT_EQ(p.l(), 128);
  EXPECT_EQ(p.n(), 16);
}

TEST(FusedPair, FromOpsRejectsMismatch) {
  TensorOp op1 = TensorOp::matmul("mm1", 128, 64, 32, "A", "B", "C");
  TensorOp no_share = TensorOp::matmul("mm2", 128, 32, 8, "X", "D", "E");
  EXPECT_THROW(FusedPair::from_ops(op1, no_share), std::invalid_argument);
  // Shared name but as the consumer's *output*.
  TensorOp as_output = TensorOp::matmul("mm3", 128, 8, 32, "X", "D", "C");
  EXPECT_THROW(FusedPair::from_ops(op1, as_output), std::invalid_argument);
}

// Phased evaluation against hand-derived formulas for the canonical
// tile-fusion configuration (Fig. 4a / Fig. 5a): C tile stationary, OS
// producer then IS consumer.
TEST(FusedPair, PhasedTileFusionAccessFormula) {
  FusedPair p = FusedPair::make(512, 384, 512, 384);
  PhasedFusedDataflow df{/*t_m=*/128, /*t_k=*/1, /*t_l=*/128, /*t_n=*/1, /*l_outer=*/false};
  FusedAccess a = evaluate_phased(p, df);
  // op1 (OS): A charged x L/T_L, B charged x M/T_M, C free.
  EXPECT_EQ(a.op1_external, 512LL * 384 * (512 / 128) + 384LL * 512 * (512 / 128));
  // op2 (IS, C stationary): D charged x M/T_M, E charged x L/T_L.
  EXPECT_EQ(a.op2_external, 512LL * 384 * (512 / 128) + 512LL * 384 * (512 / 128));
  EXPECT_EQ(a.total, a.op1_external + a.op2_external);
  EXPECT_EQ(a.buffer_footprint, 128 * 1 + 1 * 128 + 128 * 128 + 128 * 1 + 128 * 1);
}

// Untiling L (Fig. 4c) makes A, C, E single-access on the producer side and
// leaves only B and D redundant terms controlled by T_M.
TEST(FusedPair, PhasedUntileLFormula) {
  FusedPair p = FusedPair::make(1024, 256, 256, 256);
  PhasedFusedDataflow df{/*t_m=*/64, /*t_k=*/1, /*t_l=*/256, /*t_n=*/1, /*l_outer=*/false};
  FusedAccess a = evaluate_phased(p, df);
  // op1: L untiled -> A x1? No: A={M,K} sees the K loop inside nothing
  // outside it except L (trip 1): A accessed once only if K-loop reuse
  // holds; with order (M, L, K): A charged once per (m): |A|.  B charged
  // per m-tile: |B| * M/T_M.
  EXPECT_EQ(a.op1_external, 1024LL * 256 + 256LL * 256 * (1024 / 64));
  // op2: D={L,N} charged x M/T_M; E={M,N} accessed once (L untiled).
  EXPECT_EQ(a.op2_external, 256LL * 256 * (1024 / 64) + 1024LL * 256);
}

TEST(FusedPair, ResidentEvaluationDropsIntermediateAndReservesIt) {
  FusedPair p = FusedPair::make(64, 32, 64, 32);
  ResidentFusedDataflow rf;
  rf.df1 = make_dataflow(p.op1(), {"M", "L", "K"}, {{"M", 8}, {"L", 8}, {"K", 1}});
  rf.df2 = make_dataflow(p.op2(), {"M", "L", "K"}, {{"M", 8}, {"K", 8}, {"L", 1}});
  FusedAccess a = evaluate_resident(p, rf);
  AccessBreakdown b1 = evaluate_access(p.op1(), rf.df1);
  EXPECT_EQ(a.op1_external, b1.per_tensor[mm::kTensorA] + b1.per_tensor[mm::kTensorB]);
  // Footprint: |C| plus the larger of the two phases' working sets.
  const Index op1_ws = 8 * 1 + 1 * 8;
  const Index op2_ws = 8 * 1 + 8 * 1;
  EXPECT_EQ(a.buffer_footprint, 64 * 64 + std::max(op1_ws, op2_ws));
}

TEST(FusedPair, PhasedValidatesTileRanges) {
  FusedPair p = FusedPair::make(16, 16, 16, 16);
  PhasedFusedDataflow df{0, 1, 1, 1, false};
  EXPECT_THROW(evaluate_phased(p, df), std::invalid_argument);
  df = {1, 1, 17, 1, false};
  EXPECT_THROW(evaluate_phased(p, df), std::invalid_argument);
}

// Fusion can never beat the ideal fused lower bound, and always saves the
// intermediate relative to the same nest unfused.
class FusedBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FusedBoundProperty, TotalsRespectIdealBound) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    FusedPair p = test_util::random_pair(rng, 64);
    PhasedFusedDataflow df = test_util::random_phased(rng, p, 64);
    FusedAccess a = evaluate_phased(p, df);
    EXPECT_GE(a.total, p.ideal_min_access());
    EXPECT_GE(a.op1_external, p.m() * p.k() + p.k() * p.l());
    EXPECT_GE(a.op2_external, p.l() * p.n() + p.m() * p.n());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedBoundProperty,
                         ::testing::Values(31ull, 32ull, 33ull, 34ull));

}  // namespace
}  // namespace fusecu
