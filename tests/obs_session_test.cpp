#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "common/json_parse.hpp"
#include "obs/obs_session.hpp"
#include "obs/timer.hpp"

namespace fusecu {
namespace {

/// Build a mutable argv from string literals (mains own their argv).
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (auto& s : storage) ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
    argc = static_cast<int>(storage.size());
  }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc = 0;
  char** argv() { return ptrs.data(); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ExtractObsOptions, StripsFlagsAndKeepsTheRest) {
  Argv a({"tool", "--config", "x.cfg", "--metrics-out", "m.json", "--format", "json",
          "--trace-out=t.json"});
  int argc = a.argc;
  ObsOptions opts = extract_obs_options(argc, a.argv());
  ASSERT_TRUE(opts.metrics_out.has_value());
  EXPECT_EQ(*opts.metrics_out, "m.json");
  ASSERT_TRUE(opts.trace_out.has_value());
  EXPECT_EQ(*opts.trace_out, "t.json");
  ASSERT_EQ(argc, 5);
  EXPECT_STREQ(a.argv()[0], "tool");
  EXPECT_STREQ(a.argv()[1], "--config");
  EXPECT_STREQ(a.argv()[2], "x.cfg");
  EXPECT_STREQ(a.argv()[3], "--format");
  EXPECT_STREQ(a.argv()[4], "json");
  EXPECT_EQ(a.argv()[5], nullptr);
}

TEST(ExtractObsOptions, NoFlagsIsANoOp) {
  Argv a({"tool", "positional"});
  int argc = a.argc;
  ObsOptions opts = extract_obs_options(argc, a.argv());
  EXPECT_FALSE(opts.metrics_out.has_value());
  EXPECT_FALSE(opts.trace_out.has_value());
  EXPECT_EQ(argc, 2);
}

TEST(ExtractObsOptions, MissingValueThrows) {
  Argv a({"tool", "--metrics-out"});
  int argc = a.argc;
  EXPECT_THROW(extract_obs_options(argc, a.argv()), std::invalid_argument);
}

TEST(ObsSession, FlushWritesValidMetricsAndTraceJson) {
  const std::string metrics_path = testing::TempDir() + "fusecu_obs_metrics.json";
  const std::string trace_path = testing::TempDir() + "fusecu_obs_trace.json";
  {
    ObsOptions opts;
    opts.metrics_out = metrics_path;
    opts.trace_out = trace_path;
    ObsSession obs(opts);
    ASSERT_TRUE(obs.trace_enabled());
    ASSERT_NE(obs.trace(), nullptr);
    { ScopedTimer t("session_phase"); }
    MetricsRegistry::global().counter("obs_session_test/events").add(2);
    obs.recorder().set_track_name(0, "DMA");
    obs.recorder().record({"load#0", "dma", 0, 0.0, 8.0});
    obs.recorder().record_counter("traffic_elements", 8.0, 64.0);
    obs.flush();
    obs.flush();  // idempotent
  }

  JsonValuePtr metrics = parse_json(slurp(metrics_path));
  EXPECT_DOUBLE_EQ(metrics->get("counters")->get("obs_session_test/events")->as_number(), 2.0);
  EXPECT_TRUE(metrics->get("histograms")->has("time/session_phase"));

  JsonValuePtr trace = parse_json(slurp(trace_path));
  ASSERT_TRUE(trace->is_array());
  bool saw_complete = false, saw_counter = false, saw_thread_name = false;
  for (const JsonValuePtr& event : trace->as_array()) {
    const std::string ph = event->get("ph")->as_string();
    if (ph == "X") saw_complete = true;
    if (ph == "C" && event->get("name")->as_string() == "traffic_elements") {
      EXPECT_DOUBLE_EQ(event->get("args")->get("value")->as_number(), 64.0);
      saw_counter = true;
    }
    if (ph == "M" && event->get("name")->as_string() == "thread_name") saw_thread_name = true;
  }
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_thread_name);
}

TEST(ExtractObsOptions, StripsLoggingAndFlightFlags) {
  Argv a({"tool", "--log-out", "l.jsonl", "--log-level=warn", "--flight-out", "f.json", "run"});
  int argc = a.argc;
  ObsOptions opts = extract_obs_options(argc, a.argv());
  ASSERT_TRUE(opts.log_out.has_value());
  EXPECT_EQ(*opts.log_out, "l.jsonl");
  ASSERT_TRUE(opts.log_level.has_value());
  EXPECT_EQ(*opts.log_level, "warn");
  ASSERT_TRUE(opts.flight_out.has_value());
  EXPECT_EQ(*opts.flight_out, "f.json");
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(a.argv()[1], "run");
}

TEST(ObsSession, LogSessionWritesJsonlAndDetachesOnFlush) {
  const std::string log_path = testing::TempDir() + "fusecu_obs_log.jsonl";
  {
    ObsOptions opts;
    opts.log_out = log_path;
    opts.log_level = "warn";
    ObsSession obs(opts);
    ASSERT_TRUE(obs.log_enabled());
    EXPECT_TRUE(Logger::global().enabled(LogLevel::kWarn));
    log_info("obs_session_test", "below threshold, dropped");
    log_warn("obs_session_test", "kept", {{"n", "1"}});
    obs.flush();
  }
  // The session detached the logger on flush.
  EXPECT_FALSE(Logger::global().enabled(LogLevel::kError));

  std::istringstream lines(slurp(log_path));
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  JsonValuePtr entry = parse_json(line);
  EXPECT_EQ(entry->get("level")->as_string(), "warn");
  EXPECT_EQ(entry->get("component")->as_string(), "obs_session_test");
  EXPECT_EQ(entry->get("msg")->as_string(), "kept");
  EXPECT_EQ(entry->get("n")->as_string(), "1");
  EXPECT_FALSE(std::getline(lines, line)) << "info line must have been filtered: " << line;
}

TEST(ObsSession, TraceSessionRoutesSpansIntoTheChromeTrace) {
  const std::string trace_path = testing::TempDir() + "fusecu_obs_span_trace.json";
  {
    ObsOptions opts;
    opts.trace_out = trace_path;
    ObsSession obs(opts);
    ScopedSpan span("session_span");
    span.note("unit");
  }
  JsonValuePtr trace = parse_json(slurp(trace_path));
  ASSERT_TRUE(trace->is_array());
  bool saw_span = false;
  for (const JsonValuePtr& event : trace->as_array()) {
    if (event->get("ph")->as_string() == "X" &&
        event->get("name")->as_string() == "session_span") {
      saw_span = true;
      EXPECT_FALSE(event->get("args")->get("trace")->as_string().empty());
      EXPECT_EQ(event->get("args")->get("detail")->as_string(), "unit");
    }
  }
  EXPECT_TRUE(saw_span);
}

TEST(ObsSession, DisabledSessionWritesNothing) {
  ObsSession obs(ObsOptions{});
  EXPECT_FALSE(obs.metrics_enabled());
  EXPECT_FALSE(obs.trace_enabled());
  EXPECT_EQ(obs.trace(), nullptr);
  obs.flush();  // must not throw
}

}  // namespace
}  // namespace fusecu
