#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

#include <sstream>

namespace fusecu {
namespace {

TEST(MathUtil, CeilDivAndRounding) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 1), 1);
  EXPECT_EQ(round_up(10, 8), 16);
  EXPECT_EQ(round_up(16, 8), 16);
  EXPECT_EQ(round_down(10, 8), 8);
  EXPECT_EQ(clamp_index(5, 1, 3), 3);
  EXPECT_EQ(clamp_index(-5, 1, 3), 1);
  EXPECT_EQ(clamp_index(2, 1, 3), 2);
}

TEST(MathUtil, IsqrtExactAndBetween) {
  EXPECT_EQ(isqrt(0), 0);
  EXPECT_EQ(isqrt(1), 1);
  EXPECT_EQ(isqrt(15), 3);
  EXPECT_EQ(isqrt(16), 4);
  EXPECT_EQ(isqrt(17), 4);
  EXPECT_EQ(isqrt(1'000'000'000'000LL), 1'000'000);
  EXPECT_THROW(isqrt(-1), std::invalid_argument);
}

class IsqrtProperty : public ::testing::TestWithParam<Index> {};

TEST_P(IsqrtProperty, FloorSquareRootInvariant) {
  const Index v = GetParam();
  const Index r = isqrt(v);
  EXPECT_LE(r * r, v);
  EXPECT_GT((r + 1) * (r + 1), v);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IsqrtProperty,
                         ::testing::Values<Index>(2, 3, 99, 100, 101, 524287, 524288, 524289,
                                                  1 << 30, (1LL << 40) + 7));

TEST(MathUtil, DivisorsSortedAndComplete) {
  EXPECT_EQ(divisors(1), (std::vector<Index>{1}));
  EXPECT_EQ(divisors(12), (std::vector<Index>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(17), (std::vector<Index>{1, 17}));
  auto d = divisors(768);
  for (std::size_t i = 1; i < d.size(); ++i) EXPECT_LT(d[i - 1], d[i]);
  for (Index v : d) EXPECT_EQ(768 % v, 0);
}

TEST(MathUtil, TileCandidatesContainPowersOfTwoAndExtent) {
  auto c = tile_candidates(768);
  EXPECT_EQ(c.front(), 1);
  EXPECT_EQ(c.back(), 768);
  for (Index t : {2, 4, 8, 512, 256, 96, 768}) {
    EXPECT_NE(std::find(c.begin(), c.end(), t), c.end()) << t;
  }
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i - 1], c[i]);
}

TEST(MathUtil, Means) {
  EXPECT_DOUBLE_EQ(geo_mean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(arith_mean({1.0, 3.0}), 2.0);
  EXPECT_THROW(geo_mean({}), std::invalid_argument);
  EXPECT_THROW(geo_mean({0.0}), std::invalid_argument);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2 * kKiB), "2 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3 MiB");
  EXPECT_EQ(format_bytes(kGiB), "1 GiB");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
}

TEST(Rng, DeterministicWithSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    Index v = rng.uniform(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
  EXPECT_THROW(rng.uniform(5, 4), std::invalid_argument);
}

TEST(Table, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row_numeric("beta", {2.5}, 1);
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "many", "cells"}), std::invalid_argument);
}

}  // namespace
}  // namespace fusecu
