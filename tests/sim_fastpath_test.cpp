// Differential tests for the ComputeUnit functional fast path: every run_*
// pass must reproduce the cycle-by-cycle stepper *exactly* — outputs
// bit-for-bit, identical cycle counts, identical per-category traffic, and
// identical post-run PE state (stationary registers / accumulators) — over
// randomized shapes drawn from the harness's adversarial distribution.
// These are the guarantees DESIGN.md Sec. "Fast-path equivalence" relies on.

#include <gtest/gtest.h>

#include "check/gen.hpp"
#include "dataflow/access_model.hpp"
#include "sim/compute_unit.hpp"
#include "sim/fusecu_quad.hpp"
#include "sim/tiled_executor.hpp"
#include "test_util.hpp"

namespace fusecu {
namespace {

constexpr Index kArrayN = 8;

struct Units {
  ComputeUnit fast{kArrayN};
  ComputeUnit stepped{kArrayN};
  Units() {
    fast.set_fidelity(SimFidelity::kFunctional);
    stepped.set_fidelity(SimFidelity::kCycleAccurate);
  }
};

void expect_same_traffic(const ComputeUnit& fast, const ComputeUnit& stepped) {
  EXPECT_EQ(fast.input_traffic(), stepped.input_traffic());
  EXPECT_EQ(fast.output_traffic(), stepped.output_traffic());
  EXPECT_EQ(fast.preload_traffic(), stepped.preload_traffic());
}

void expect_same_result(const ComputeUnit::RunResult& f, const ComputeUnit::RunResult& s) {
  EXPECT_EQ(f.cycles, s.cycles);
  EXPECT_TRUE(f.output == s.output);
}

struct Shape {
  Index m, k, l;
};

Shape random_shape(Rng& rng, Index cap_m, Index cap_k, Index cap_l) {
  return {gen_extent(rng, cap_m), gen_extent(rng, cap_k), gen_extent(rng, cap_l)};
}

class FastPathSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastPathSeeds, WsMatchesStepper) {
  Rng rng(GetParam());
  Units u;
  for (int rep = 0; rep < 20; ++rep) {
    // WS: K, L <= N; M streams freely (probe past the array edge too).
    Shape s = random_shape(rng, 3 * kArrayN, kArrayN, kArrayN);
    Matrix a = make_test_matrix(s.m, s.k, rng.uniform(1, 1 << 20));
    Matrix b = make_test_matrix(s.k, s.l, rng.uniform(1, 1 << 20));
    expect_same_result(u.fast.run_ws(a, b), u.stepped.run_ws(a, b));
    // Post-run state parity: B stays resident in the stationary registers.
    for (Index r = 0; r < kArrayN; ++r)
      for (Index c = 0; c < kArrayN; ++c)
        EXPECT_EQ(u.fast.pe(r, c).stationary(), u.stepped.pe(r, c).stationary());
  }
  expect_same_traffic(u.fast, u.stepped);
}

TEST_P(FastPathSeeds, OsMatchesStepperIncludingAccumulators) {
  Rng rng(GetParam());
  Units u;
  for (int rep = 0; rep < 20; ++rep) {
    // OS: M, L <= N; K streams freely.
    Shape s = random_shape(rng, kArrayN, 3 * kArrayN, kArrayN);
    Matrix a = make_test_matrix(s.m, s.k, rng.uniform(1, 1 << 20));
    Matrix b = make_test_matrix(s.k, s.l, rng.uniform(1, 1 << 20));
    expect_same_result(u.fast.run_os(a, b), u.stepped.run_os(a, b));
    // The fast path must deposit the results in the accumulators, exactly
    // like the stepped schedule left them — drain/promote depend on it.
    for (Index r = 0; r < kArrayN; ++r)
      for (Index c = 0; c < kArrayN; ++c)
        EXPECT_EQ(u.fast.pe(r, c).accumulator(), u.stepped.pe(r, c).accumulator());
    expect_same_result(u.fast.drain_east(s.m, s.l), u.stepped.drain_east(s.m, s.l));
  }
  expect_same_traffic(u.fast, u.stepped);
}

TEST_P(FastPathSeeds, IsAndIsResidentMatchStepper) {
  Rng rng(GetParam());
  Units u;
  for (int rep = 0; rep < 20; ++rep) {
    // IS: M, K <= N; L streams freely.
    Shape s = random_shape(rng, kArrayN, kArrayN, 3 * kArrayN);
    Matrix a = make_test_matrix(s.m, s.k, rng.uniform(1, 1 << 20));
    Matrix b = make_test_matrix(s.k, s.l, rng.uniform(1, 1 << 20));
    expect_same_result(u.fast.run_is(a, b), u.stepped.run_is(a, b));
    // run_is leaves A resident: the standalone resident entry point must
    // agree too (second streamed operand against the same stationary tile).
    Matrix b2 = make_test_matrix(s.k, gen_extent(rng, 3 * kArrayN), rng.uniform(1, 1 << 20));
    expect_same_result(u.fast.run_is_resident(s.m, s.k, b2),
                       u.stepped.run_is_resident(s.m, s.k, b2));
  }
  expect_same_traffic(u.fast, u.stepped);
}

TEST_P(FastPathSeeds, TileFusionMatchesStepper) {
  Rng rng(GetParam());
  Units u;
  for (int rep = 0; rep < 20; ++rep) {
    // Tile fusion: M, L <= N; K and D's columns stream freely.
    Shape s = random_shape(rng, kArrayN, 3 * kArrayN, kArrayN);
    const Index n2 = gen_extent(rng, 3 * kArrayN);
    Matrix a = make_test_matrix(s.m, s.k, rng.uniform(1, 1 << 20));
    Matrix b = make_test_matrix(s.k, s.l, rng.uniform(1, 1 << 20));
    Matrix d = make_test_matrix(s.l, n2, rng.uniform(1, 1 << 20));
    expect_same_result(u.fast.run_tile_fusion(a, b, d), u.stepped.run_tile_fusion(a, b, d));
  }
  expect_same_traffic(u.fast, u.stepped);
}

TEST_P(FastPathSeeds, AccumulatingPassesMatchStepper) {
  Rng rng(GetParam());
  Units u;
  for (int rep = 0; rep < 20; ++rep) {
    Shape s = random_shape(rng, kArrayN, kArrayN, kArrayN);
    Matrix a = make_test_matrix(s.m, s.k, rng.uniform(1, 1 << 20));
    Matrix b = make_test_matrix(s.k, s.l, rng.uniform(1, 1 << 20));
    // Accumulate into a window of a larger, non-zero target — both paths
    // must add the identical pass bits at the identical offset.
    const Index r0 = rng.uniform(0, 3), c0 = rng.uniform(0, 3);
    Matrix target = make_test_matrix(s.m + 4, s.l + 4, rng.uniform(1, 1 << 20));
    Matrix fast_target = target, stepped_target = target;
    switch (rep % 3) {
      case 0:
        EXPECT_EQ(u.fast.run_ws_acc(a, b, fast_target, r0, c0),
                  u.stepped.run_ws_acc(a, b, stepped_target, r0, c0));
        break;
      case 1:
        EXPECT_EQ(u.fast.run_os_acc(a, b, fast_target, r0, c0),
                  u.stepped.run_os_acc(a, b, stepped_target, r0, c0));
        break;
      default:
        EXPECT_EQ(u.fast.run_is_acc(a, b, fast_target, r0, c0),
                  u.stepped.run_is_acc(a, b, stepped_target, r0, c0));
        break;
    }
    EXPECT_TRUE(fast_target == stepped_target);
  }
  expect_same_traffic(u.fast, u.stepped);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPathSeeds, ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Whole-schedule differentials: the executors driven end-to-end at both
// fidelities over harness-generated workloads.

Dataflow random_executable_dataflow(const TensorOp& op, Rng& rng) {
  static const std::vector<std::vector<int>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  Dataflow df;
  df.loop_order = orders[rng.pick(orders.size())];
  for (int d = 0; d < op.num_dims(); ++d)
    df.tile.push_back(rng.uniform(1, std::min(op.extent(d), kArrayN)));
  return df;
}

class ExecutorSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorSeeds, TiledExecutionMatchesStepper) {
  Rng rng(GetParam() * 1000003);
  TensorOp op = test_util::random_matmul(rng, 24);
  Dataflow df = random_executable_dataflow(op, rng);
  test_util::IntraInputs in = test_util::make_intra_inputs(op, GetParam());

  ComputeUnit fast(kArrayN);
  fast.set_fidelity(SimFidelity::kFunctional);
  TiledExecutionResult fr = execute_tiled(op, df, in.a, in.b, fast);

  ComputeUnit stepped(kArrayN);
  stepped.set_fidelity(SimFidelity::kCycleAccurate);
  TiledExecutionResult sr = execute_tiled(op, df, in.a, in.b, stepped);

  EXPECT_TRUE(fr.output == sr.output);
  EXPECT_EQ(fr.compute_cycles, sr.compute_cycles);
  EXPECT_EQ(fr.traffic_per_tensor, sr.traffic_per_tensor);
  EXPECT_EQ(fr.total_traffic, sr.total_traffic);
  expect_same_traffic(fast, stepped);
}

TEST_P(ExecutorSeeds, FusedPhasedExecutionMatchesStepper) {
  Rng rng(GetParam() * 2000003);
  FusedPair pair = test_util::random_pair(rng, 16);
  PhasedFusedDataflow df = test_util::random_phased(rng, pair, kArrayN);
  test_util::FusedInputs in = test_util::make_fused_inputs(pair, GetParam());

  FuseCuQuad fast(kArrayN);
  fast.set_fidelity(SimFidelity::kFunctional);
  FusedExecutionResult fr = execute_fused_phased(pair, df, in.a, in.b, in.d, fast);

  FuseCuQuad stepped(kArrayN);
  stepped.set_fidelity(SimFidelity::kCycleAccurate);
  FusedExecutionResult sr = execute_fused_phased(pair, df, in.a, in.b, in.d, stepped);

  EXPECT_TRUE(fr.output == sr.output);
  EXPECT_EQ(fr.compute_cycles, sr.compute_cycles);
  EXPECT_EQ(fr.traffic_a, sr.traffic_a);
  EXPECT_EQ(fr.traffic_b, sr.traffic_b);
  EXPECT_EQ(fr.traffic_d, sr.traffic_d);
  EXPECT_EQ(fr.traffic_e, sr.traffic_e);
  EXPECT_EQ(fr.traffic_c, sr.traffic_c);
  EXPECT_EQ(fr.traffic_c, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorSeeds, ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace fusecu
