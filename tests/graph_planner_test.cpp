#include <gtest/gtest.h>

#include <set>

#include "fusion/graph_planner.hpp"
#include "workloads/transformer.hpp"

namespace fusecu {
namespace {

TEST(ElementwiseIr, FactoriesAndFlags) {
  TensorOp gelu = TensorOp::elementwise("gelu", 16, 32, "in", "out");
  EXPECT_TRUE(gelu.is_elementwise());
  EXPECT_FALSE(gelu.is_rowwise());
  EXPECT_EQ(gelu.macs(), 16 * 32);
  EXPECT_EQ(gelu.num_tensors(), 2);

  TensorOp softmax = TensorOp::elementwise("softmax", 16, 16, "s", "p", /*rowwise=*/true);
  EXPECT_TRUE(softmax.is_rowwise());

  TensorOp add = TensorOp::binary_elementwise("residual", 8, 8, "a", "b", "c");
  EXPECT_TRUE(add.is_elementwise());
  EXPECT_EQ(add.num_tensors(), 3);
  EXPECT_EQ(add.output_index(), 2);

  TensorOp mm = TensorOp::matmul("mm", 4, 4, 4);
  EXPECT_FALSE(mm.is_elementwise());
  EXPECT_TRUE(is_matmul_shaped(mm));
  EXPECT_FALSE(is_matmul_shaped(gelu));
}

TEST(GraphPlanner, PureMatmulChainMatchesChainPlanner) {
  OperatorGraph g = MatMulChainBuilder(128, {64, 128, 64}, "c").graph();
  const BufferSize bs = 16 * 1024;
  GraphPlan gp = plan_graph(g, bs, PlannerPolicy::kCostOnly);
  FusionPlan cp = plan_chain_extended(g, bs, PlannerPolicy::kCostOnly);
  ASSERT_EQ(gp.chains.size(), 1u);
  EXPECT_EQ(gp.total_access, cp.total_access);
  EXPECT_EQ(gp.elementwise_access, 0);
}

TEST(GraphPlanner, PointwiseEpilogueIsFree) {
  // mm -> gelu -> mm: the GeLU melts into the stream; the plan must cost
  // the same as the direct two-matmul chain.
  OperatorGraph with_gelu;
  with_gelu.add_op(TensorOp::matmul("mm1", 128, 64, 256, "X", "W1", "H"));
  with_gelu.add_op(TensorOp::elementwise("gelu", 128, 256, "H", "G"));
  with_gelu.add_op(TensorOp::matmul("mm2", 128, 256, 64, "G", "W2", "Z"));

  OperatorGraph direct;
  direct.add_op(TensorOp::matmul("mm1", 128, 64, 256, "X", "W1", "H"));
  direct.add_op(TensorOp::matmul("mm2", 128, 256, 64, "H", "W2", "Z"));

  const BufferSize bs = 16 * 1024;
  GraphPlan a = plan_graph(with_gelu, bs, PlannerPolicy::kCostOnly);
  FusionPlan b = plan_chain_extended(direct, bs, PlannerPolicy::kCostOnly);
  EXPECT_EQ(a.total_access, b.total_access);
  EXPECT_EQ(a.absorbed_pointwise, 1);
  EXPECT_EQ(a.elementwise_access, 0);
}

TEST(GraphPlanner, RowwiseSpillsWhenUnfusedAndAbsorbsWhenFused) {
  // mm -> softmax -> mm (the attention core).
  auto build = [] {
    OperatorGraph g;
    g.add_op(TensorOp::matmul("score", 256, 64, 256, "Q", "Kt", "S"));
    g.add_op(TensorOp::elementwise("softmax", 256, 256, "S", "P", /*rowwise=*/true));
    g.add_op(TensorOp::matmul("context", 256, 256, 64, "P", "V", "O"));
    return g;
  };
  const BufferSize bs = 64 * 1024;
  GraphPlan fused = plan_graph(build(), bs, PlannerPolicy::kCostOnly);
  EXPECT_EQ(fused.absorbed_rowwise, 1);
  EXPECT_EQ(fused.spilled_rowwise, 0);
  EXPECT_EQ(fused.elementwise_access, 0);

  GraphPlan unfused = plan_graph(build(), bs, PlannerPolicy::kNoFusion);
  EXPECT_EQ(unfused.absorbed_rowwise, 0);
  EXPECT_EQ(unfused.spilled_rowwise, 1);
  EXPECT_EQ(unfused.elementwise_access, 2 * 256 * 256);
  EXPECT_GT(unfused.total_access, fused.total_access);
}

TEST(GraphPlanner, ResidualStreamsSecondOperandOnce) {
  OperatorGraph g;
  g.add_op(TensorOp::matmul("mm", 64, 32, 64, "X", "W", "Y"));
  g.add_op(TensorOp::binary_elementwise("residual", 64, 64, "Y", "X0", "R"));
  GraphPlan p = plan_graph(g, 8 * 1024, PlannerPolicy::kCostOnly);
  EXPECT_EQ(p.elementwise_access, 64 * 64);  // the residual operand X0
  EXPECT_EQ(p.absorbed_pointwise, 1);
}

TEST(GraphPlanner, FanInBreaksChains) {
  // Two producers feeding one consumer: three matmuls, at most the pair
  // through the first input can chain.
  OperatorGraph g;
  g.add_op(TensorOp::matmul("q", 64, 128, 32, "X", "Wq", "Q"));
  g.add_op(TensorOp::matmul("k", 32, 128, 64, "WkT", "Xt", "Kt"));
  g.add_op(TensorOp::matmul("score", 64, 32, 64, "Q", "Kt", "S"));
  GraphPlan p = plan_graph(g, 32 * 1024, PlannerPolicy::kCostOnly);
  int covered = 0;
  for (const GraphPlanChain& c : p.chains) covered += static_cast<int>(c.op_indices.size());
  EXPECT_EQ(covered, 3);
  EXPECT_GE(p.chains.size(), 2u);  // k_proj cannot join the q->score chain
}

TEST(GraphPlanner, FullTransformerBlock) {
  ModelConfig small{"tiny", 4, 256, 256};
  OperatorGraph block = transformer_block_graph(small);
  EXPECT_FALSE(block.is_linear_chain());

  const BufferSize bs = 256 * 1024;
  GraphPlan fused = plan_graph(block, bs, PlannerPolicy::kCostOnly);
  GraphPlan unfused = plan_graph(block, bs, PlannerPolicy::kNoFusion);

  // Every matmul covered exactly once.
  std::set<int> covered;
  for (const GraphPlanChain& c : fused.chains) {
    for (int i : c.op_indices) EXPECT_TRUE(covered.insert(i).second);
  }
  EXPECT_EQ(covered.size(), 8u);  // q, k, v, score, context, out_proj, ffn up/down

  EXPECT_LT(fused.total_access, unfused.total_access);
  // GeLU is always free; softmax absorption requires the score/context
  // fusion the planner should find at this buffer size.
  EXPECT_GE(fused.absorbed_pointwise, 1);
  EXPECT_GE(fused.absorbed_rowwise, 1);
}

TEST(GraphPlanner, RejectsUnsupportedOps) {
  OperatorGraph g;
  g.add_op(TensorOp("weird", {{"A", 4}, {"B", 4}, {"C", 4}, {"D", 4}},
                    {{"in", {0, 1}, TensorRole::kInput}, {"out", {2, 3}, TensorRole::kOutput}}));
  EXPECT_THROW(plan_graph(g, 1024, PlannerPolicy::kCostOnly), std::invalid_argument);
  OperatorGraph empty;
  EXPECT_THROW(plan_graph(empty, 1024, PlannerPolicy::kCostOnly), std::invalid_argument);
}

}  // namespace
}  // namespace fusecu
