#include <gtest/gtest.h>

#include "check/gen.hpp"
#include "common/rng.hpp"
#include "fusion/graph_planner.hpp"
#include "sim/buffer_plan.hpp"
#include "sim/tiled_executor.hpp"
#include "test_util.hpp"

namespace fusecu {
namespace {

/// Randomized cross-component checks: every seed drives several trials of
/// (a) fused-schedule execution vs the fused analytical model, (b) graph
/// planning with interleaved pointwise elementwise ops vs the equivalent
/// direct chain, and (c) buffer planning bounds on random schedules.
///
/// Workloads come from the conformance-harness generators (src/check/gen),
/// so the suite inherits their adversarial bias toward unit dims, primes and
/// powers of two; seeds are contiguous ranges, not hand-picked values, and
/// widening coverage is a one-line change.

class FusedExecutorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FusedExecutorFuzz, RandomPhasedSchedulesMatchModelExactly) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    FusedPair pair = test_util::random_pair(rng, 16);
    PhasedFusedDataflow df = test_util::random_phased(rng, pair);

    auto [a, b, d] = test_util::make_fused_inputs(pair, GetParam() * 97 + trial);
    FuseCuQuad quad(8);
    FusedExecutionResult r = execute_fused_phased(pair, df, a, b, d, quad);
    EXPECT_EQ(r.output, matmul_reference(matmul_reference(a, b), d)) << df.to_string();
    EXPECT_EQ(r.total_traffic, evaluate_phased(pair, df).total) << df.to_string();
    EXPECT_EQ(r.traffic_c, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedExecutorFuzz, ::testing::Range<std::uint64_t>(500, 516));

class GraphPlannerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphPlannerFuzz, PointwiseOpsNeverChangeChainCost) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    Workload w = gen_workload_of(WorkloadKind::kChain, rng);
    GraphPlan with_ew = plan_graph(w.chain.with_elementwise(), w.bs, PlannerPolicy::kCostOnly, 3);
    GraphPlan direct = plan_graph(w.chain.direct(), w.bs, PlannerPolicy::kCostOnly, 3);
    EXPECT_EQ(with_ew.total_access, direct.total_access) << w.to_string();
    EXPECT_EQ(with_ew.spilled_rowwise, 0);
    EXPECT_EQ(with_ew.elementwise_access, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPlannerFuzz, ::testing::Range<std::uint64_t>(600, 612));

class BufferPlanFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferPlanFuzz, LayoutBoundsAndDisjointness) {
  Rng rng(GetParam());
  static const std::vector<std::vector<int>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (int trial = 0; trial < 20; ++trial) {
    TensorOp op = test_util::random_matmul(rng, 64);
    Dataflow df;
    df.loop_order = orders[rng.pick(orders.size())];
    df.tile = {rng.uniform(1, op.extent(mm::kDimM)), rng.uniform(1, op.extent(mm::kDimK)),
               rng.uniform(1, op.extent(mm::kDimL))};
    BufferPlan plan = plan_buffer(op, df);
    const Index footprint = df.buffer_footprint(op);
    EXPECT_GE(plan.total_elements, footprint);
    EXPECT_LE(plan.total_elements, 2 * footprint);
    Index expected = 0;
    for (const BufferRegion& r : plan.regions) {
      EXPECT_EQ(r.offset, expected);
      expected += r.extent();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferPlanFuzz, ::testing::Range<std::uint64_t>(700, 708));

}  // namespace
}  // namespace fusecu
