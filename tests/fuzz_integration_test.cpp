#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fusion/graph_planner.hpp"
#include "sim/buffer_plan.hpp"
#include "sim/tiled_executor.hpp"

namespace fusecu {
namespace {

/// Randomized cross-component checks: every seed drives several trials of
/// (a) fused-schedule execution vs the fused analytical model, (b) graph
/// planning with interleaved pointwise elementwise ops vs the equivalent
/// direct chain, and (c) buffer planning bounds on random schedules.

class FusedExecutorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FusedExecutorFuzz, RandomPhasedSchedulesMatchModelExactly) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    FusedPair pair = FusedPair::make(rng.uniform(1, 16), rng.uniform(1, 12),
                                     rng.uniform(1, 8), rng.uniform(1, 12));
    PhasedFusedDataflow df;
    df.t_m = rng.uniform(1, std::min<Index>(pair.m(), 8));
    df.t_k = rng.uniform(1, pair.k());
    df.t_l = rng.uniform(1, std::min<Index>(pair.l(), 8));
    df.t_n = rng.uniform(1, pair.n());
    df.l_outer = rng.chance(0.5);

    Matrix a = make_test_matrix(pair.m(), pair.k(), GetParam() * 31 + trial);
    Matrix b = make_test_matrix(pair.k(), pair.l(), GetParam() * 37 + trial);
    Matrix d = make_test_matrix(pair.l(), pair.n(), GetParam() * 41 + trial);
    FuseCuQuad quad(8);
    FusedExecutionResult r = execute_fused_phased(pair, df, a, b, d, quad);
    EXPECT_EQ(r.output, matmul_reference(matmul_reference(a, b), d)) << df.to_string();
    EXPECT_EQ(r.total_traffic, evaluate_phased(pair, df).total) << df.to_string();
    EXPECT_EQ(r.traffic_c, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedExecutorFuzz,
                         ::testing::Values(501ull, 502ull, 503ull, 504ull, 505ull));

class GraphPlannerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphPlannerFuzz, PointwiseOpsNeverChangeChainCost) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    // Random matmul chain of 2-4 ops with pointwise ops sprinkled between.
    const int ops = static_cast<int>(rng.uniform(2, 4));
    std::vector<Index> dims;
    dims.push_back(rng.uniform(8, 128));
    for (int i = 0; i <= ops; ++i) dims.push_back(rng.uniform(8, 128));
    const Index m = dims[0];

    OperatorGraph direct;
    OperatorGraph with_ew;
    std::string prev_direct = "X0", prev_ew = "X0";
    for (int i = 0; i < ops; ++i) {
      const std::string w = "W" + std::to_string(i);
      const std::string out = "X" + std::to_string(i + 1);
      direct.add_op(TensorOp::matmul("mm" + std::to_string(i), m,
                                     dims[static_cast<std::size_t>(i) + 1],
                                     dims[static_cast<std::size_t>(i) + 2], prev_direct, w, out));
      with_ew.add_op(TensorOp::matmul("mm" + std::to_string(i), m,
                                      dims[static_cast<std::size_t>(i) + 1],
                                      dims[static_cast<std::size_t>(i) + 2], prev_ew, w, out));
      prev_direct = out;
      prev_ew = out;
      if (i + 1 < ops && rng.chance(0.7)) {
        const std::string acted = out + "_act";
        with_ew.add_op(TensorOp::elementwise("act" + std::to_string(i), m,
                                             dims[static_cast<std::size_t>(i) + 2], out, acted));
        prev_ew = acted;
      }
    }
    const BufferSize bs = rng.uniform(256, 32 * 1024);
    GraphPlan a = plan_graph(with_ew, bs, PlannerPolicy::kCostOnly, 3);
    GraphPlan b = plan_graph(direct, bs, PlannerPolicy::kCostOnly, 3);
    EXPECT_EQ(a.total_access, b.total_access) << "bs=" << bs;
    EXPECT_EQ(a.spilled_rowwise, 0);
    EXPECT_EQ(a.elementwise_access, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPlannerFuzz,
                         ::testing::Values(601ull, 602ull, 603ull, 604ull));

class BufferPlanFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferPlanFuzz, LayoutBoundsAndDisjointness) {
  Rng rng(GetParam());
  static const std::vector<std::vector<int>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (int trial = 0; trial < 20; ++trial) {
    const Index m = rng.uniform(1, 64), k = rng.uniform(1, 64), l = rng.uniform(1, 64);
    TensorOp op = TensorOp::matmul("fuzz", m, k, l);
    Dataflow df;
    df.loop_order = orders[rng.pick(orders.size())];
    df.tile = {rng.uniform(1, m), rng.uniform(1, k), rng.uniform(1, l)};
    BufferPlan plan = plan_buffer(op, df);
    const Index footprint = df.buffer_footprint(op);
    EXPECT_GE(plan.total_elements, footprint);
    EXPECT_LE(plan.total_elements, 2 * footprint);
    Index expected = 0;
    for (const BufferRegion& r : plan.regions) {
      EXPECT_EQ(r.offset, expected);
      expected += r.extent();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferPlanFuzz, ::testing::Values(701ull, 702ull, 703ull));

}  // namespace
}  // namespace fusecu
