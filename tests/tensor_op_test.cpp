#include <gtest/gtest.h>

#include "tensor/tensor_op.hpp"

namespace fusecu {
namespace {

TEST(TensorOp, MatmulShapeAndSizes) {
  TensorOp op = TensorOp::matmul("bert_qkv", 1024, 768, 768);
  EXPECT_EQ(op.num_dims(), 3);
  EXPECT_EQ(op.num_tensors(), 3);
  EXPECT_EQ(op.extent(mm::kDimM), 1024);
  EXPECT_EQ(op.extent(mm::kDimK), 768);
  EXPECT_EQ(op.extent(mm::kDimL), 768);
  EXPECT_EQ(op.tensor_size(mm::kTensorA), 1024 * 768);
  EXPECT_EQ(op.tensor_size(mm::kTensorB), 768 * 768);
  EXPECT_EQ(op.tensor_size(mm::kTensorC), 1024 * 768);
  EXPECT_EQ(op.output_index(), mm::kTensorC);
  EXPECT_EQ(op.macs(), 1024LL * 768 * 768);
  EXPECT_EQ(op.ideal_min_access(), 1024LL * 768 + 768LL * 768 + 1024LL * 768);
}

TEST(TensorOp, MinExtentAndSmallestTensor) {
  TensorOp op = TensorOp::matmul("mm", 1024, 768, 768);
  EXPECT_EQ(op.min_extent(), 768);
  EXPECT_EQ(op.min_extent_dim(), mm::kDimK);  // first of the tied 768s
  EXPECT_EQ(op.smallest_tensor(), mm::kTensorB);
}

TEST(TensorOp, ReductionDimIsK) {
  TensorOp op = TensorOp::matmul("mm", 4, 5, 6);
  EXPECT_FALSE(op.is_reduction_dim(mm::kDimM));
  EXPECT_TRUE(op.is_reduction_dim(mm::kDimK));
  EXPECT_FALSE(op.is_reduction_dim(mm::kDimL));
}

TEST(TensorOp, FindByName) {
  TensorOp op = TensorOp::matmul("mm", 4, 5, 6, "Q", "Kt", "S");
  EXPECT_EQ(op.find_dim("M"), mm::kDimM);
  EXPECT_EQ(op.find_dim("nope"), -1);
  EXPECT_EQ(op.find_tensor("Q"), mm::kTensorA);
  EXPECT_EQ(op.find_tensor("S"), mm::kTensorC);
  EXPECT_EQ(op.find_tensor("nope"), -1);
}

TEST(TensorOp, TensorHasDim) {
  TensorOp op = TensorOp::matmul("mm", 4, 5, 6);
  EXPECT_TRUE(op.tensor_has_dim(mm::kTensorA, mm::kDimM));
  EXPECT_TRUE(op.tensor_has_dim(mm::kTensorA, mm::kDimK));
  EXPECT_FALSE(op.tensor_has_dim(mm::kTensorA, mm::kDimL));
  EXPECT_FALSE(op.tensor_has_dim(mm::kTensorC, mm::kDimK));
}

TEST(TensorOp, ToStringMentionsAllPieces) {
  TensorOp op = TensorOp::matmul("mm0", 4, 5, 6);
  const std::string s = op.to_string();
  EXPECT_NE(s.find("mm0"), std::string::npos);
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("C"), std::string::npos);
  EXPECT_NE(s.find("M:4"), std::string::npos);
}

TEST(TensorOp, RejectsInvalidConstructions) {
  // Non-positive extent.
  EXPECT_THROW(TensorOp::matmul("bad", 0, 5, 6), std::invalid_argument);
  // Two outputs.
  EXPECT_THROW(TensorOp("bad", {{"M", 2}, {"K", 2}},
                        {{"A", {0, 1}, TensorRole::kOutput}, {"B", {0, 1}, TensorRole::kOutput}}),
               std::invalid_argument);
  // No output.
  EXPECT_THROW(TensorOp("bad", {{"M", 2}, {"K", 2}},
                        {{"A", {0, 1}, TensorRole::kInput}, {"B", {0, 1}, TensorRole::kInput}}),
               std::invalid_argument);
  // Duplicate dim in one tensor.
  EXPECT_THROW(TensorOp("bad", {{"M", 2}}, {{"A", {0, 0}, TensorRole::kOutput}}),
               std::invalid_argument);
  // Out-of-range dim reference.
  EXPECT_THROW(TensorOp("bad", {{"M", 2}}, {{"A", {1}, TensorRole::kOutput}}),
               std::invalid_argument);
  // Duplicate tensor names.
  EXPECT_THROW(TensorOp("bad", {{"M", 2}, {"K", 3}},
                        {{"A", {0}, TensorRole::kInput}, {"A", {1}, TensorRole::kOutput}}),
               std::invalid_argument);
  // Duplicate dim names.
  EXPECT_THROW(TensorOp("bad", {{"M", 2}, {"M", 3}}, {{"A", {0, 1}, TensorRole::kOutput}}),
               std::invalid_argument);
}

TEST(TensorOp, BatchedMatmulAndFolding) {
  TensorOp shared = TensorOp::batched_matmul("proj", 16, 128, 64, 64, /*shared_weight=*/true);
  EXPECT_EQ(shared.num_dims(), 4);
  EXPECT_EQ(shared.macs(), 16LL * 128 * 64 * 64);
  EXPECT_EQ(shared.tensor_size(shared.find_tensor("W")), 64 * 64);

  TensorOp folded = fold_batch(shared);
  EXPECT_EQ(folded.extent(mm::kDimM), 16 * 128);
  EXPECT_EQ(folded.macs(), shared.macs());
  // Folding preserves every tensor's size, hence the ideal MA bound.
  EXPECT_EQ(folded.ideal_min_access(), shared.ideal_min_access());

  TensorOp per_slice = TensorOp::batched_matmul("attn", 16, 128, 64, 64,
                                                /*shared_weight=*/false);
  EXPECT_EQ(per_slice.tensor_size(per_slice.find_tensor("W")), 16LL * 64 * 64);
  EXPECT_THROW(fold_batch(per_slice), std::invalid_argument);
  EXPECT_THROW(fold_batch(TensorOp::matmul("mm", 4, 4, 4)), std::invalid_argument);
}

TEST(TensorOp, GeneralNonMatmulOpIsRepresentable) {
  // A 1-D reduction: out(M) = sum_K in(M, K) — the IR is rank-agnostic.
  TensorOp op("rowsum", {{"M", 8}, {"K", 16}},
              {{"in", {0, 1}, TensorRole::kInput}, {"out", {0}, TensorRole::kOutput}});
  EXPECT_EQ(op.macs(), 128);
  EXPECT_EQ(op.tensor_size(1), 8);
  EXPECT_TRUE(op.is_reduction_dim(1));
}

}  // namespace
}  // namespace fusecu
