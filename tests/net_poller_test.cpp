#include "net/poller.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "net/socket.hpp"

/// Poller: readiness notification behind the event loop, exercised on BOTH
/// backends — epoll (the production path on Linux) and poll (the fallback
/// that would otherwise never run where it is developed).  The suite is
/// parameterized so every case runs twice.

namespace fusecu {
namespace {

class PollerTest : public testing::TestWithParam<PollBackend> {
 protected:
  void SetUp() override {
    ASSERT_EQ(::pipe(fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int read_fd() const { return fds_[0]; }
  int write_fd() const { return fds_[1]; }

  int fds_[2] = {-1, -1};
};

TEST_P(PollerTest, TimeoutWithNothingReady) {
  Poller poller(GetParam());
  poller.add(read_fd(), /*want_read=*/true, /*want_write=*/false);
  std::vector<PollEvent> events;
  EXPECT_EQ(poller.wait(events, 0), 0);
  EXPECT_TRUE(events.empty());
}

TEST_P(PollerTest, ReportsReadable) {
  Poller poller(GetParam());
  poller.add(read_fd(), true, false);
  ASSERT_EQ(::write(write_fd(), "x", 1), 1);

  std::vector<PollEvent> events;
  ASSERT_EQ(poller.wait(events, 1000), 1);
  EXPECT_EQ(events[0].fd, read_fd());
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);
}

TEST_P(PollerTest, LevelTriggeredUntilDrained) {
  Poller poller(GetParam());
  poller.add(read_fd(), true, false);
  ASSERT_EQ(::write(write_fd(), "x", 1), 1);

  std::vector<PollEvent> events;
  ASSERT_EQ(poller.wait(events, 1000), 1);
  ASSERT_EQ(poller.wait(events, 1000), 1)
      << "level-triggered: still readable until the byte is consumed";
  char c;
  ASSERT_EQ(::read(read_fd(), &c, 1), 1);
  EXPECT_EQ(poller.wait(events, 0), 0);
}

TEST_P(PollerTest, SetDropsAndRestoresInterest) {
  Poller poller(GetParam());
  poller.add(read_fd(), true, false);
  ASSERT_EQ(::write(write_fd(), "x", 1), 1);

  // Deferred-read backpressure is exactly this: drop the read bit while
  // data is pending, nothing reports ready; restore it, the event returns.
  poller.set(read_fd(), false, false);
  std::vector<PollEvent> events;
  EXPECT_EQ(poller.wait(events, 0), 0);
  poller.set(read_fd(), true, false);
  EXPECT_EQ(poller.wait(events, 1000), 1);
}

TEST_P(PollerTest, ReportsWritable) {
  Poller poller(GetParam());
  poller.add(write_fd(), false, true);
  std::vector<PollEvent> events;
  ASSERT_EQ(poller.wait(events, 1000), 1);
  EXPECT_EQ(events[0].fd, write_fd());
  EXPECT_TRUE(events[0].writable);
}

TEST_P(PollerTest, RemoveStopsReporting) {
  Poller poller(GetParam());
  poller.add(read_fd(), true, false);
  EXPECT_EQ(poller.size(), 1);
  ASSERT_EQ(::write(write_fd(), "x", 1), 1);
  poller.remove(read_fd());
  EXPECT_EQ(poller.size(), 0);
  std::vector<PollEvent> events;
  EXPECT_EQ(poller.wait(events, 0), 0);
}

TEST_P(PollerTest, HangupOnClosedWriteEnd) {
  Poller poller(GetParam());
  poller.add(read_fd(), true, false);
  ::close(fds_[1]);
  fds_[1] = -1;

  std::vector<PollEvent> events;
  ASSERT_EQ(poller.wait(events, 1000), 1);
  EXPECT_TRUE(events[0].hangup || events[0].readable)
      << "peer close must surface as hangup or EOF-readable";
}

TEST_P(PollerTest, MultipleFdsReportIndependently) {
  int other[2];
  ASSERT_EQ(::pipe(other), 0);
  Poller poller(GetParam());
  poller.add(read_fd(), true, false);
  poller.add(other[0], true, false);
  ASSERT_EQ(::write(other[1], "y", 1), 1);

  std::vector<PollEvent> events;
  ASSERT_EQ(poller.wait(events, 1000), 1);
  EXPECT_EQ(events[0].fd, other[0]);
  ::close(other[0]);
  ::close(other[1]);
}

INSTANTIATE_TEST_SUITE_P(Backends, PollerTest,
                         testing::Values(PollBackend::kEpoll, PollBackend::kPoll),
                         [](const testing::TestParamInfo<PollBackend>& info) {
                           return info.param == PollBackend::kEpoll ? "Epoll" : "Poll";
                         });

TEST(PollerAuto, AutoResolvesToAConcreteBackend) {
  Poller poller(PollBackend::kAuto);
  EXPECT_NE(poller.backend(), PollBackend::kAuto);
}

}  // namespace
}  // namespace fusecu
