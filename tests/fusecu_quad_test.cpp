#include <gtest/gtest.h>

#include "sim/fusecu_quad.hpp"

namespace fusecu {
namespace {

TEST(FuseCuQuad, IndependentWsRunsFourTiles) {
  FuseCuQuad quad(4);
  std::array<Matrix, 4> as, bs;
  for (int i = 0; i < 4; ++i) {
    as[static_cast<std::size_t>(i)] = make_test_matrix(6, 4, 100 + static_cast<std::uint64_t>(i));
    bs[static_cast<std::size_t>(i)] = make_test_matrix(4, 4, 200 + static_cast<std::uint64_t>(i));
  }
  auto r = quad.run_independent_ws(as, bs);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r.outputs[static_cast<std::size_t>(i)],
              matmul_reference(as[static_cast<std::size_t>(i)], bs[static_cast<std::size_t>(i)]));
  }
  EXPECT_EQ(r.cycles, 6 + 4 + 4 - 2 + 4);
}

struct FusedShape {
  Index m, k, l, n2;
};

class ColumnFusionCorrectness : public ::testing::TestWithParam<FusedShape> {};

TEST_P(ColumnFusionCorrectness, MatchesReferenceChain) {
  const auto& s = GetParam();
  FuseCuQuad quad(8);
  Matrix a = make_test_matrix(s.m, s.k, 31);
  Matrix b = make_test_matrix(s.k, s.l, 32);
  Matrix d = make_test_matrix(s.l, s.n2, 33);
  auto r = quad.run_column_fusion(a, b, d);
  Matrix expected = matmul_reference(matmul_reference(a, b), d);
  EXPECT_EQ(r.output, expected);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ColumnFusionCorrectness,
                         ::testing::Values(FusedShape{8, 8, 8, 8},
                                           // The untiled L dimension streams freely — this is
                                           // the "adaptive tile size" claim (Sec. IV-B).
                                           FusedShape{8, 8, 40, 8}, FusedShape{4, 6, 17, 3},
                                           FusedShape{1, 1, 5, 1}, FusedShape{8, 2, 100, 5}));

TEST(ColumnFusion, PipelinesProducerAndConsumer) {
  // Producer and consumer overlap: the fused run is far cheaper than the
  // producer and consumer phases run back-to-back.
  const Index m = 8, k = 8, l = 64, n2 = 8;
  FuseCuQuad quad(8);
  Matrix a = make_test_matrix(m, k, 41);
  Matrix b = make_test_matrix(k, l, 42);
  Matrix d = make_test_matrix(l, n2, 43);
  auto fused = quad.run_column_fusion(a, b, d);

  ComputeUnit cu(8);
  auto c = cu.run_is(a, b);
  auto e = cu.run_os(c.output, d);
  EXPECT_EQ(fused.output, e.output);
  EXPECT_LT(fused.cycles, c.cycles + e.cycles);
}

TEST(ColumnFusion, RejectsOversizedTiles) {
  FuseCuQuad quad(4);
  EXPECT_THROW(quad.run_column_fusion(Matrix(5, 4), Matrix(4, 8), Matrix(8, 4)),
               std::invalid_argument);  // M > N
  EXPECT_THROW(quad.run_column_fusion(Matrix(4, 4), Matrix(4, 8), Matrix(8, 5)),
               std::invalid_argument);  // N2 > N
  EXPECT_THROW(quad.run_column_fusion(Matrix(4, 4), Matrix(5, 8), Matrix(8, 4)),
               std::invalid_argument);  // inner mismatch
}

class WideColumnFusionCorrectness : public ::testing::TestWithParam<Index> {};

TEST_P(WideColumnFusionCorrectness, SupportsMUpTo2N) {
  const Index m = GetParam();
  FuseCuQuad quad(8);
  Matrix a = make_test_matrix(m, 6, 71);
  Matrix b = make_test_matrix(6, 20, 72);  // L streams freely
  Matrix d = make_test_matrix(20, 7, 73);
  auto r = quad.run_wide_column_fusion(a, b, d);
  EXPECT_EQ(r.output, matmul_reference(matmul_reference(a, b), d));
}

INSTANTIATE_TEST_SUITE_P(Heights, WideColumnFusionCorrectness,
                         ::testing::Values<Index>(4, 8, 9, 12, 16));

TEST(WideColumnFusion, RejectsBeyond2N) {
  FuseCuQuad quad(4);
  EXPECT_THROW(quad.run_wide_column_fusion(make_test_matrix(9, 4, 1), make_test_matrix(4, 4, 2),
                                           make_test_matrix(4, 4, 3)),
               std::invalid_argument);
}

class NarrowTileFusionCorrectness : public ::testing::TestWithParam<Index> {};

TEST_P(NarrowTileFusionCorrectness, SupportsIntermediatesUpTo2N) {
  const Index l = GetParam();  // up to 2N = 16
  FuseCuQuad quad(8);
  Matrix a = make_test_matrix(8, 5, 51);
  Matrix b = make_test_matrix(5, l, 52);
  Matrix d = make_test_matrix(l, 7, 53);
  auto r = quad.run_narrow_tile_fusion(a, b, d);
  EXPECT_EQ(r.output, matmul_reference(matmul_reference(a, b), d));
}

INSTANTIATE_TEST_SUITE_P(Widths, NarrowTileFusionCorrectness,
                         ::testing::Values<Index>(3, 8, 9, 12, 16));

TEST(NarrowTileFusion, RejectsBeyond2N) {
  FuseCuQuad quad(8);
  Matrix a = make_test_matrix(8, 5, 61);
  Matrix b = make_test_matrix(5, 17, 62);  // L = 17 > 2N = 16
  Matrix d = make_test_matrix(17, 7, 63);
  EXPECT_THROW(quad.run_narrow_tile_fusion(a, b, d), std::invalid_argument);
}

class WideWsCorrectness : public ::testing::TestWithParam<Index> {};

TEST_P(WideWsCorrectness, SupportsWeightsUpTo2N) {
  const Index l = GetParam();
  FuseCuQuad quad(8);
  Matrix a = make_test_matrix(10, 6, 81);
  Matrix b = make_test_matrix(6, l, 82);
  auto r = quad.run_ws_wide(a, b);
  EXPECT_EQ(r.output, matmul_reference(a, b));
  EXPECT_GT(r.cycles, 0);
}

INSTANTIATE_TEST_SUITE_P(Widths, WideWsCorrectness, ::testing::Values<Index>(1, 8, 9, 13, 16));

TEST(WideWs, RejectsBeyond2NOrDeepK) {
  FuseCuQuad quad(4);
  EXPECT_THROW(quad.run_ws_wide(make_test_matrix(4, 4, 1), make_test_matrix(4, 9, 2)),
               std::invalid_argument);  // L > 2N
  EXPECT_THROW(quad.run_ws_wide(make_test_matrix(4, 5, 1), make_test_matrix(5, 4, 2)),
               std::invalid_argument);  // K > N
}

TEST(FuseCuQuad, TrafficAggregatesAcrossUnits) {
  FuseCuQuad quad(8);
  quad.reset_traffic();
  Matrix a = make_test_matrix(4, 4, 71);
  Matrix b = make_test_matrix(4, 6, 72);
  Matrix d = make_test_matrix(6, 4, 73);
  quad.run_column_fusion(a, b, d);
  EXPECT_EQ(quad.preload_traffic(), 4 * 4);       // A resident in producer
  EXPECT_EQ(quad.input_traffic(), 4 * 6 + 6 * 4); // B and D streamed
  EXPECT_EQ(quad.output_traffic(), 4 * 4);        // E drained
}

}  // namespace
}  // namespace fusecu
