#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "common/json_parse.hpp"

/// End-to-end acceptance for the observability CLI surface: run the real
/// fusecu_eval binary with --metrics-out / --trace-out and check that both
/// artifacts are valid JSON, the trace carries enough counter tracks for
/// Perfetto, and the metrics registry contains optimizer wall-time
/// histograms.  The binary path is injected by CMake.

#ifndef FUSECU_EVAL_BIN
#error "FUSECU_EVAL_BIN must be defined to the fusecu_eval binary path"
#endif

namespace fusecu {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(FusecuEval, MetricsAndTraceOutputsAreValid) {
  const std::string metrics_path = testing::TempDir() + "fusecu_eval_metrics.json";
  const std::string trace_path = testing::TempDir() + "fusecu_eval_trace.json";
  const std::string cmd = std::string(FUSECU_EVAL_BIN) + " --format json --metrics-out " +
                          metrics_path + " --trace-out " + trace_path + " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  // Metrics: valid JSON with per-phase wall-time histograms and planner
  // counters from the instrumented evaluation path.
  JsonValuePtr metrics = parse_json(slurp(metrics_path));
  const auto& histograms = metrics->get("histograms")->as_object();
  int time_histograms = 0;
  bool saw_optimizer_phase = false;
  for (const auto& [name, h] : histograms) {
    if (name.rfind("time/", 0) != 0) continue;
    ++time_histograms;
    if (name.find("optimize_intra") != std::string::npos) saw_optimizer_phase = true;
    EXPECT_GE(h->get("count")->as_number(), 1.0) << name;
    EXPECT_GE(h->get("p99")->as_number(), h->get("p50")->as_number()) << name;
  }
  EXPECT_GE(time_histograms, 2);
  EXPECT_TRUE(saw_optimizer_phase) << "expected a time/*optimize_intra* histogram";
  EXPECT_GE(metrics->get("counters")->get("eval/evaluations")->as_number(), 1.0);

  // Trace: valid JSON array with duration events and >= 3 counter tracks.
  JsonValuePtr trace = parse_json(slurp(trace_path));
  ASSERT_TRUE(trace->is_array());
  std::set<std::string> counter_tracks;
  int duration_events = 0;
  for (const JsonValuePtr& e : trace->as_array()) {
    const std::string ph = e->get("ph")->as_string();
    if (ph == "C") counter_tracks.insert(e->get("name")->as_string());
    if (ph == "X") ++duration_events;
  }
  EXPECT_GE(counter_tracks.size(), 3u) << "Perfetto counter tracks";
  EXPECT_GE(duration_events, 1);
}

}  // namespace
}  // namespace fusecu
