#include <gtest/gtest.h>

#include "fusion/chain_fusion.hpp"

namespace fusecu {
namespace {

OperatorGraph three_mm_chain() {
  // X1 = X0(64, 32) W1(32, 48); X2 = X1 W2(48, 32); X3 = X2 W3(32, 16).
  return MatMulChainBuilder(64, {32, 48, 32, 16}, "c").graph();
}

TEST(ResidentChain, ReachesFusedLowerBound) {
  OperatorGraph g = three_mm_chain();
  const BufferSize bs = 16 * 1024;
  auto r = optimize_resident_chain(g, 0, 3, bs);
  ASSERT_TRUE(r.has_value());
  // Externals once each: X0 + W1 + W2 + W3 + X3.
  const AccessCount expected = 64 * 32 + 32 * 48 + 48 * 32 + 32 * 16 + 64 * 16;
  EXPECT_EQ(r->total_access, expected);
  EXPECT_LE(r->buffer_footprint, bs);
  ASSERT_EQ(r->dataflows.size(), 3u);
  // Every per-op dataflow realizes single access for all three tensors.
  for (int i = 0; i < 3; ++i) {
    AccessBreakdown b = evaluate_access(g.op(i), r->dataflows[static_cast<std::size_t>(i)]);
    EXPECT_EQ(b.non_redundant_tensors(g.op(i)), 3) << "op " << i;
  }
}

TEST(ResidentChain, FootprintAccountsIntermediatesAndPeakTiles) {
  OperatorGraph g = three_mm_chain();
  auto r = optimize_resident_chain(g, 0, 3, 1 << 20);
  ASSERT_TRUE(r.has_value());
  const Index intermediates = 64 * 48 + 64 * 32;  // X1 + X2
  EXPECT_GE(r->buffer_footprint, intermediates);
  EXPECT_LE(r->buffer_footprint, intermediates + 64 + 48 + 32 + 16 + 64);
}

TEST(ResidentChain, InfeasibleWhenIntermediatesOverflow) {
  OperatorGraph g = three_mm_chain();
  // X1 + X2 = 3072 + 2048 elements; anything below cannot hold them.
  EXPECT_FALSE(optimize_resident_chain(g, 0, 3, 4096).has_value());
}

TEST(ResidentChain, SubsliceAndValidation) {
  OperatorGraph g = three_mm_chain();
  auto tail = optimize_resident_chain(g, 1, 2, 16 * 1024);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->total_access, 64 * 48 + 48 * 32 + 32 * 16 + 64 * 16);
  EXPECT_THROW(optimize_resident_chain(g, 0, 1, 1024), std::invalid_argument);
  EXPECT_THROW(optimize_resident_chain(g, 2, 2, 1024), std::invalid_argument);
}

TEST(PlanChainExtended, FusesWholeChainWithBigBuffer) {
  OperatorGraph g = three_mm_chain();
  FusionPlan plan = plan_chain_extended(g, 16 * 1024, PlannerPolicy::kCostOnly, 4);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].op_indices, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(plan.total_access, optimize_resident_chain(g, 0, 3, 16 * 1024)->total_access);
}

TEST(PlanChainExtended, DegradesToPairsWhenChainDoesNotFit) {
  OperatorGraph g = three_mm_chain();
  // Enough for a fused pair but not for both intermediates at once.
  FusionPlan tight = plan_chain_extended(g, 4200, PlannerPolicy::kCostOnly, 4);
  for (const PlanStep& s : tight.steps) EXPECT_LE(s.op_indices.size(), 2u);
  // And never worse than the pairwise planner.
  FusionPlan pairwise = plan_chain(g, 4200, PlannerPolicy::kCostOnly);
  EXPECT_LE(tight.total_access, pairwise.total_access);
}

TEST(PlanChainExtended, MatchesPairwisePlannerAtMaxGroupTwo) {
  OperatorGraph g = three_mm_chain();
  for (BufferSize bs : {BufferSize{1024}, BufferSize{8 * 1024}, BufferSize{64 * 1024}}) {
    FusionPlan extended = plan_chain_extended(g, bs, PlannerPolicy::kCostOnly, 2);
    FusionPlan pairwise = plan_chain(g, bs, PlannerPolicy::kCostOnly);
    EXPECT_EQ(extended.total_access, pairwise.total_access) << "bs=" << bs;
  }
}

TEST(PlanChainExtended, NoFusionPolicyYieldsSingletons) {
  OperatorGraph g = three_mm_chain();
  FusionPlan plan = plan_chain_extended(g, 1 << 20, PlannerPolicy::kNoFusion, 4);
  EXPECT_EQ(plan.steps.size(), 3u);
  for (const PlanStep& s : plan.steps) EXPECT_EQ(s.op_indices.size(), 1u);
}

TEST(PlanChainExtended, DpIsOptimalAgainstBruteForcePartitions) {
  // Exhaustively enumerate all partitions of a 4-op chain into contiguous
  // groups of size <= 3 and verify the DP finds the cheapest.
  OperatorGraph g = MatMulChainBuilder(32, {16, 24, 16, 24, 16}, "p").graph();
  const BufferSize bs = 6 * 1024;

  auto group_cost = [&](int first, int len) -> AccessCount {
    constexpr AccessCount kInf = std::numeric_limits<AccessCount>::max() / 4;
    if (len == 1) return optimize_intra(g.op(first), bs).access.total;
    AccessCount best = kInf;
    if (len == 2) {
      auto pair = try_make_fused_pair(g.op(first), g.op(first + 1));
      if (pair) {
        if (auto fused = optimize_fused_pair(*pair, bs)) best = fused->access.total;
      }
    }
    if (auto resident = optimize_resident_chain(g, first, len, bs)) {
      best = std::min(best, resident->total_access);
    }
    return best;
  };

  // Brute force over composition of 4 into parts of size 1..3.
  AccessCount brute = std::numeric_limits<AccessCount>::max();
  std::vector<std::vector<int>> partitions = {
      {1, 1, 1, 1}, {2, 1, 1}, {1, 2, 1}, {1, 1, 2}, {2, 2}, {3, 1}, {1, 3}};
  for (const auto& parts : partitions) {
    AccessCount total = 0;
    int at = 0;
    bool legal = true;
    for (int p : parts) {
      AccessCount c = group_cost(at, p);
      if (c >= std::numeric_limits<AccessCount>::max() / 4) legal = false;
      total += c;
      at += p;
    }
    if (legal) brute = std::min(brute, total);
  }

  FusionPlan plan = plan_chain_extended(g, bs, PlannerPolicy::kCostOnly, 3);
  EXPECT_EQ(plan.total_access, brute);
}

}  // namespace
}  // namespace fusecu
