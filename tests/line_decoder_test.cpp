#include "serve/line_decoder.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

/// LineDecoder: the incremental '\n' splitter with a line-length cap shared
/// by serve_stream and the TCP read path.  The contract under test is the
/// std::getline-equivalence (split on '\n', '\r' kept, trailing partial
/// line delivered by finish()) plus the oversized behavior: reported as
/// soon as the cap is crossed, payload discarded, exactly one line slot.

namespace fusecu {
namespace {

std::vector<LineDecoder::DecodedLine> drain(LineDecoder& decoder) {
  std::vector<LineDecoder::DecodedLine> lines;
  LineDecoder::DecodedLine line;
  while (decoder.next(line)) lines.push_back(line);
  return lines;
}

TEST(LineDecoder, SplitsOnNewlineAcrossArbitraryChunks) {
  LineDecoder decoder(1024);
  const std::string input = "alpha\nbeta\r\ngam";
  // Feed one byte at a time: chunk boundaries must never matter.
  std::vector<LineDecoder::DecodedLine> lines;
  for (char c : input) {
    decoder.feed(&c, 1);
    for (auto& l : drain(decoder)) lines.push_back(l);
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "alpha");
  EXPECT_FALSE(lines[0].oversized);
  EXPECT_EQ(lines[1].text, "beta\r") << "'\\r' stays in the text, as with std::getline";

  LineDecoder::DecodedLine tail;
  ASSERT_TRUE(decoder.finish(tail)) << "newline-less final line is delivered";
  EXPECT_EQ(tail.text, "gam");
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(LineDecoder, EmptyLinesAreLines) {
  LineDecoder decoder(64);
  const std::string input = "\n\nx\n";
  decoder.feed(input.data(), input.size());
  auto lines = drain(decoder);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].text, "");
  EXPECT_EQ(lines[1].text, "");
  EXPECT_EQ(lines[2].text, "x");
  LineDecoder::DecodedLine tail;
  EXPECT_FALSE(decoder.finish(tail)) << "no partial line after a trailing newline";
}

TEST(LineDecoder, OversizedReportedBeforeTerminatorArrives) {
  LineDecoder decoder(8);
  const std::string big(32, 'a');  // no newline yet
  decoder.feed(big.data(), big.size());
  LineDecoder::DecodedLine line;
  ASSERT_TRUE(decoder.next(line)) << "cap crossing must not wait for '\\n'";
  EXPECT_TRUE(line.oversized);
  EXPECT_TRUE(line.text.empty()) << "payload is discarded, never truncated JSON";
  EXPECT_FALSE(decoder.next(line));
  EXPECT_LE(decoder.buffered(), 8u + 32u) << "discarding keeps memory bounded";

  // The rest of the oversized line, then a good one.
  const std::string rest = "aaaa\nok\n";
  decoder.feed(rest.data(), rest.size());
  auto lines = drain(decoder);
  ASSERT_EQ(lines.size(), 1u) << "already-reported oversized line takes one slot only";
  EXPECT_EQ(lines[0].text, "ok");
}

TEST(LineDecoder, OversizedLineWithNewlineInSameChunk) {
  LineDecoder decoder(6);
  const std::string input = "abcdefgh\nshort\n";
  decoder.feed(input.data(), input.size());
  auto lines = drain(decoder);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].oversized);
  EXPECT_EQ(lines[1].text, "short");
  EXPECT_FALSE(lines[1].oversized);
}

TEST(LineDecoder, ExactCapIsNotOversized) {
  LineDecoder decoder(5);
  const std::string input = "12345\n123456\n";
  decoder.feed(input.data(), input.size());
  auto lines = drain(decoder);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "12345") << "cap counts the body, excluding '\\n'";
  EXPECT_FALSE(lines[0].oversized);
  EXPECT_TRUE(lines[1].oversized);
}

TEST(LineDecoder, FinishDropsTailOfReportedOversizedLine) {
  LineDecoder decoder(4);
  const std::string input = "abcdefgh";  // oversized, never terminated
  decoder.feed(input.data(), input.size());
  LineDecoder::DecodedLine line;
  ASSERT_TRUE(decoder.next(line));
  EXPECT_TRUE(line.oversized);
  LineDecoder::DecodedLine tail;
  EXPECT_FALSE(decoder.finish(tail))
      << "the tail belongs to a line already reported as oversized";
  // finish() resets: the decoder is reusable.
  const std::string more = "next\n";
  decoder.feed(more.data(), more.size());
  auto lines = drain(decoder);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].text, "next");
}

TEST(LineDecoder, ChunkStraddlesCapBoundary) {
  LineDecoder decoder(10);
  const std::string first(6, 'x');
  decoder.feed(first.data(), first.size());
  LineDecoder::DecodedLine line;
  EXPECT_FALSE(decoder.next(line)) << "under the cap, waiting for more input";
  const std::string second(6, 'y');  // total 12 > 10
  decoder.feed(second.data(), second.size());
  ASSERT_TRUE(decoder.next(line));
  EXPECT_TRUE(line.oversized);
}

}  // namespace
}  // namespace fusecu
