#include "check/chaos.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/harness.hpp"

/// check/chaos.hpp: seeded chaos trials against the real net/serve stack.
/// Covered: a clean trial on the healthy server, report determinism across
/// runs, the harness *detecting* an intentionally broken server
/// (TestBug::kReorderResponses) and shrinking its fault schedule, and the
/// repro artifact round trip.  Trials here are small (a few connections,
/// in-process loopback) so the suite stays fast.

namespace fusecu {
namespace {

ChaosOptions small_options() {
  ChaosOptions opts;
  opts.trials = 3;
  opts.seed = 99;
  opts.max_failures = 2;
  return opts;
}

TEST(Chaos, HealthyServerSurvivesSeededFaultTrials) {
  const ChaosOptions opts = small_options();
  std::ostringstream progress;
  const ChaosResult result = run_chaos(opts, &progress);
  EXPECT_EQ(result.trials_run, 3);
  EXPECT_EQ(result.failed_trials, 0) << progress.str();
  EXPECT_EQ(result.checks_run, 3 * 6);
  EXPECT_TRUE(result.ok());
}

TEST(Chaos, MultiReactorServerHoldsTheSameInvariants) {
  // The invariants are reactor-count-independent, so the same seeded trials
  // double as the multi-reactor drain/order/byte-identity suite: order per
  // connection, no lost responses, graceful drain — now across two sharded
  // event loops with the fault injector armed.
  ChaosOptions opts = small_options();
  opts.reactors = 2;
  std::ostringstream progress;
  const ChaosResult result = run_chaos(opts, &progress);
  EXPECT_EQ(result.trials_run, 3);
  EXPECT_EQ(result.failed_trials, 0) << progress.str();
  EXPECT_TRUE(result.ok());
}

TEST(Chaos, ReportIsByteIdenticalAcrossRuns) {
  // The acceptance bar for --chaos-trials: same seed, same flags, same
  // bytes — even though thread scheduling differs between the two runs.
  const ChaosOptions opts = small_options();
  std::ostringstream first, second;
  run_chaos(opts, &first);
  run_chaos(opts, &second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_NE(first.str().find("chaos trial 0"), std::string::npos);
}

TEST(Chaos, ReorderBugIsCaughtAndShrunkToATinySchedule) {
  // Arm the intentional server bug (flush any done slot instead of the
  // contiguous prefix) over enough trials that at least one creates
  // out-of-order completions; the harness must flag net/response_order and
  // the shrinker must land on a small (<= 10 event) schedule.
  ChaosOptions opts;
  opts.trials = 10;
  opts.seed = 3;
  opts.bug = fault::TestBug::kReorderResponses;
  opts.max_failures = 1;
  std::ostringstream progress;
  const ChaosResult result = run_chaos(opts, &progress);
  ASSERT_GT(result.failed_trials, 0) << "the broken server must be detected\n" << progress.str();
  ASSERT_FALSE(result.failures.empty());
  const ChaosFailure& failure = result.failures.front();
  EXPECT_EQ(failure.violations.front().invariant, "net/response_order");
  EXPECT_LE(failure.shrunk.plan.events.size(), 10u);
  EXPECT_GE(failure.shrunk.attempts, 1);
  EXPECT_EQ(failure.shrunk.invariant, "net/response_order");
}

TEST(Chaos, ReproArtifactRoundTripsThroughJson) {
  ChaosFailure failure;
  failure.trial = 7;
  failure.seed = 0xfeedfacecafebeefull;
  failure.reactors = 2;
  failure.plan = fault::FaultPlan::generate(failure.seed, 8);
  failure.shrunk.plan = failure.plan;
  failure.shrunk.plan.events.resize(1);
  failure.shrunk.invariant = "net/response_order";
  failure.violations.push_back({"net/response_order", "conn 0 position 2: expected \"c0-r2\""});

  const std::string json = chaos_repro_to_json(failure);
  const ChaosFailure parsed = chaos_repro_from_json(json);
  EXPECT_EQ(parsed.trial, failure.trial);
  EXPECT_EQ(parsed.seed, failure.seed);
  EXPECT_EQ(parsed.reactors, 2) << "replay must rebuild the server at the recorded shard count";
  ASSERT_EQ(parsed.plan.events.size(), failure.plan.events.size());
  for (std::size_t i = 0; i < parsed.plan.events.size(); ++i) {
    EXPECT_EQ(parsed.plan.events[i].kind, failure.plan.events[i].kind);
    EXPECT_EQ(parsed.plan.events[i].at, failure.plan.events[i].at);
    EXPECT_EQ(parsed.plan.events[i].arg, failure.plan.events[i].arg);
  }
  ASSERT_EQ(parsed.shrunk.plan.events.size(), 1u);
  EXPECT_EQ(parsed.shrunk.invariant, "net/response_order");
  ASSERT_EQ(parsed.violations.size(), 1u);
  EXPECT_EQ(parsed.violations.front().invariant, "net/response_order");
  EXPECT_EQ(parsed.violations.front().detail, failure.violations.front().detail);

  EXPECT_THROW(chaos_repro_from_json("{\"schema\":\"other/1\"}"), std::invalid_argument);
}

TEST(Chaos, ReplayRunsTheShrunkPlanOnTheHealthyServer) {
  // A repro whose plan is benign on the fixed server: replay reports no
  // violations (the bug was in the server build that produced it).
  ChaosFailure failure;
  failure.seed = trial_seed(99, 0);
  failure.plan = fault::FaultPlan::generate(failure.seed, 6);
  failure.shrunk.plan = failure.plan;
  failure.shrunk.invariant = "net/response_order";
  const ChaosTrialReport report = replay_chaos_repro(failure);
  EXPECT_TRUE(report.ok()) << report.violations.front().detail;
  EXPECT_EQ(report.checks_run, 6);
}

TEST(Chaos, ShrinkerPreservesTheFailingInvariantNotJustAnyFailure) {
  // Against a healthy server no schedule fails, so shrinking a passing
  // (seed, plan) pair must keep the original plan untouched: attempts > 0,
  // nothing accepted.
  const std::uint64_t seed = trial_seed(99, 1);
  const fault::FaultPlan plan = fault::FaultPlan::generate(seed, 6);
  const ChaosShrinkResult shrunk = shrink_fault_plan(seed, plan, "net/response_order", {});
  EXPECT_EQ(shrunk.accepted, 0);
  EXPECT_EQ(shrunk.plan.events.size(), plan.events.size());
  EXPECT_GE(shrunk.attempts, 1);
}

}  // namespace
}  // namespace fusecu
