#include <gtest/gtest.h>

#include "principles/principle_optimizer.hpp"
#include "search/annealing.hpp"

namespace fusecu {
namespace {

TEST(SimulatedAnnealing, DeterministicPerSeed) {
  TensorOp op = TensorOp::matmul("sa", 256, 128, 256);
  SaParams params;
  auto a = sa_intra(op, 4096, params, 7);
  auto b = sa_intra(op, 4096, params, 7);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->access.total, b->access.total);
  EXPECT_EQ(a->dataflow.tile, b->dataflow.tile);
}

TEST(SimulatedAnnealing, FeasibleAndNeverBeatsExhaustive) {
  TensorOp op = TensorOp::matmul("sa", 256, 128, 256);
  auto exact = exhaustive_intra(op, 4096);
  ASSERT_TRUE(exact.has_value());
  SaParams params;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto sa = sa_intra(op, 4096, params, seed);
    ASSERT_TRUE(sa.has_value());
    EXPECT_LE(sa->access.buffer_footprint, 4096);
    EXPECT_GE(sa->access.total, exact->access.total);
    // A competent annealer lands near the grid optimum.
    EXPECT_LE(static_cast<double>(sa->access.total),
              1.3 * static_cast<double>(exact->access.total));
  }
}

TEST(SimulatedAnnealing, PrinciplesStillWin) {
  // The one-shot construction matches or beats the annealer too (the
  // Fig. 9 claim generalizes across searching baselines).
  TensorOp op = TensorOp::matmul("sa", 1024, 768, 768);
  for (BufferSize bs : {BufferSize{32 * 1024}, BufferSize{256 * 1024}}) {
    auto sa = sa_intra(op, bs, SaParams{}, 11);
    ASSERT_TRUE(sa.has_value());
    EXPECT_LE(optimize_intra(op, bs).access.total, sa->access.total) << "bs=" << bs;
  }
}

TEST(SimulatedAnnealing, HandlesInfeasibleBuffers) {
  TensorOp op = TensorOp::matmul("sa", 64, 64, 64);
  EXPECT_FALSE(sa_intra(op, 2, SaParams{}, 1).has_value());
  SaParams bad;
  bad.cooling = 1.5;
  EXPECT_THROW(sa_intra(op, 1024, bad, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fusecu
