#include <gtest/gtest.h>

#include "workloads/model_eval.hpp"

namespace fusecu {
namespace {

TEST(Workloads, TableIIParameters) {
  auto models = table2_models();
  ASSERT_EQ(models.size(), 7u);
  EXPECT_EQ(models[0].name, "BERT");
  EXPECT_EQ(models[0].heads, 12);
  EXPECT_EQ(models[0].seq, 1024);
  EXPECT_EQ(models[0].hidden, 768);
  EXPECT_EQ(models[5].name, "LLaMA2");
  EXPECT_EQ(models[5].heads, 32);
  EXPECT_EQ(models[5].seq, 4096);
  EXPECT_EQ(models[5].hidden, 4096);
  EXPECT_EQ(models[6].name, "ALBERT");
  EXPECT_EQ(models[6].heads, 64);
  for (const ModelConfig& m : models) {
    EXPECT_EQ(m.batch, 16) << m.name;  // the paper's batch size
    EXPECT_EQ(m.hidden % m.heads, 0) << m.name;
  }
}

TEST(Workloads, HeadDim) {
  EXPECT_EQ(table2_models()[0].head_dim(), 64);   // BERT: 768 / 12
  EXPECT_EQ(table2_models()[6].head_dim(), 64);   // ALBERT: 4096 / 64
  EXPECT_EQ(llama2_at_seq(256).head_dim(), 128);  // LLaMA2: 4096 / 32
}

TEST(Workloads, Llama2SeqSweep) {
  ModelConfig m = llama2_at_seq(16384);
  EXPECT_EQ(m.seq, 16384);
  EXPECT_EQ(m.hidden, 4096);
  EXPECT_THROW(llama2_at_seq(0), std::invalid_argument);
}

TEST(Workloads, LayerLoweringShapes) {
  ModelConfig bert = table2_models()[0];
  auto chains = lower_layer(bert);
  ASSERT_EQ(chains.size(), 4u);

  EXPECT_EQ(chains[0].label, "qkv_proj");
  EXPECT_EQ(chains[0].count, 3);
  EXPECT_EQ(chains[0].graph.num_ops(), 1);
  EXPECT_EQ(chains[0].graph.op(0).extent(mm::kDimM), 16 * 1024);
  EXPECT_EQ(chains[0].graph.op(0).extent(mm::kDimK), 768);

  EXPECT_EQ(chains[1].label, "attention");
  EXPECT_EQ(chains[1].count, 16 * 12);
  EXPECT_EQ(chains[1].graph.num_ops(), 2);
  EXPECT_TRUE(chains[1].graph.is_linear_chain());
  // S = Q K^T: (seq, head_dim, seq).
  EXPECT_EQ(chains[1].graph.op(0).extent(mm::kDimM), 1024);
  EXPECT_EQ(chains[1].graph.op(0).extent(mm::kDimK), 64);
  EXPECT_EQ(chains[1].graph.op(0).extent(mm::kDimL), 1024);

  EXPECT_EQ(chains[3].label, "ffn");
  EXPECT_EQ(chains[3].graph.num_ops(), 2);
  EXPECT_EQ(chains[3].graph.op(0).extent(mm::kDimL), 4 * 768);
}

TEST(Workloads, LayerMacsMatchClosedForm) {
  ModelConfig m = table2_models()[0];
  const Index bs = m.batch * m.seq, d = m.hidden, dh = m.head_dim();
  const MacCount projections = 4 * bs * d * d;
  const MacCount attention = static_cast<MacCount>(m.batch) * m.heads *
                             (m.seq * dh * m.seq + m.seq * m.seq * dh);
  const MacCount ffn = 2 * bs * d * (4 * d);
  EXPECT_EQ(layer_macs(m), projections + attention + ffn);
}

TEST(ModelEvalTest, FuseCuFusesAttentionAndFfn) {
  ModelEval e = evaluate_model(table2_models()[0], make_fusecu());
  // batch*heads attention pairs plus one FFN pair.
  EXPECT_EQ(e.fused_pairs, 16 * 12 + 1);
  ModelEval unf = evaluate_model(table2_models()[0], make_unfcu());
  EXPECT_EQ(unf.fused_pairs, 0);
}

TEST(ModelEvalTest, AccessOrderingMatchesPaperStructure) {
  // FuseCU <= UnfCU <= Planaria-ish <= Gemmini <= TPUv4i on every model.
  for (const ModelConfig& m : table2_models()) {
    ModelEval tpu = evaluate_model(m, make_tpu_v4i());
    ModelEval gemmini = evaluate_model(m, make_gemmini());
    ModelEval planaria = evaluate_model(m, make_planaria());
    ModelEval unfcu = evaluate_model(m, make_unfcu());
    ModelEval fcu = evaluate_model(m, make_fusecu());
    EXPECT_LE(gemmini.access, tpu.access) << m.name;
    EXPECT_LE(planaria.access, gemmini.access) << m.name;
    EXPECT_LE(fcu.access, unfcu.access) << m.name;
    EXPECT_LT(fcu.access, tpu.access) << m.name;
    // Identical arithmetic everywhere.
    EXPECT_EQ(tpu.macs, fcu.macs) << m.name;
    EXPECT_EQ(tpu.macs, layer_macs(m)) << m.name;
  }
}

TEST(ModelEvalTest, UtilizationWithinBounds) {
  for (const ArchSpec& arch : all_platforms()) {
    ModelEval e = evaluate_model(table2_models()[0], arch);
    EXPECT_GT(e.utilization, 0.0) << arch.name;
    EXPECT_LE(e.utilization, 1.0) << arch.name;
  }
}

TEST(Workloads, DecodeLoweringShapes) {
  ModelConfig m = llama2_at_seq(4096);
  auto chains = lower_decode_step(m, 2048);
  ASSERT_EQ(chains.size(), 4u);
  EXPECT_EQ(chains[0].label, "dec_qkv_proj");
  EXPECT_EQ(chains[0].graph.op(0).extent(mm::kDimM), 16);  // M = batch
  EXPECT_EQ(chains[1].label, "dec_attention");
  EXPECT_EQ(chains[1].graph.op(0).extent(mm::kDimM), 1);     // one query row
  EXPECT_EQ(chains[1].graph.op(0).extent(mm::kDimL), 2048);  // KV cache
  EXPECT_EQ(chains[1].count, 32 * 16);
  EXPECT_TRUE(chains[1].graph.is_linear_chain());
  EXPECT_THROW(lower_decode_step(m, 0), std::invalid_argument);
}

TEST(ModelEvalTest, DecodeEvaluatesOnAllPlatforms) {
  ModelConfig m = llama2_at_seq(4096);
  ModelEval tpu = evaluate_decode(m, 1024, make_tpu_v4i());
  ModelEval fcu = evaluate_decode(m, 1024, make_fusecu());
  EXPECT_GT(tpu.access, 0);
  EXPECT_LE(fcu.access, tpu.access);
  EXPECT_EQ(tpu.macs, fcu.macs);
  // Decode is heavily bandwidth-bound: utilization far below prefill's.
  EXPECT_LT(tpu.utilization, 0.2);
}

TEST(Workloads, GroupedQueryAttentionShrinksKvProjections) {
  ModelConfig gqa = llama2_70b_gqa(2048);
  EXPECT_EQ(gqa.heads, 64);
  EXPECT_EQ(gqa.effective_kv_heads(), 8);
  EXPECT_EQ(gqa.head_dim(), 128);
  EXPECT_EQ(gqa.kv_width(), 8 * 128);

  auto chains = lower_layer(gqa);
  // q_proj + kv_proj + attention + out_proj + ffn.
  ASSERT_EQ(chains.size(), 5u);
  EXPECT_EQ(chains[0].label, "q_proj");
  EXPECT_EQ(chains[1].label, "kv_proj");
  EXPECT_EQ(chains[1].graph.op(0).extent(mm::kDimL), 1024);  // kv width << hidden
  EXPECT_EQ(chains[1].count, 2);

  // Classic MHA path unchanged (guards the Fig. 10 calibration).
  ModelConfig mha = llama2_at_seq(2048);
  EXPECT_EQ(mha.effective_kv_heads(), mha.heads);
  EXPECT_EQ(lower_layer(mha)[0].label, "qkv_proj");

  // GQA strictly reduces projection traffic per layer vs an MHA model of
  // the same width.
  ModelConfig wide_mha = gqa;
  wide_mha.kv_heads = 0;
  ModelEval g = evaluate_model(gqa, make_fusecu());
  ModelEval m = evaluate_model(wide_mha, make_fusecu());
  EXPECT_LT(g.access, m.access);
  EXPECT_LT(g.macs, m.macs);
}

TEST(ModelEvalTest, SoftmaxPenaltyChargedExactlyWhenUnfused) {
  // The attention chain carries the softmax round trip (2 s^2 per head)
  // that only unfused execution pays — the calibration mechanism of
  // DESIGN.md §5.6.
  ModelConfig bert = table2_models()[0];
  std::vector<WorkloadChain> chains;
  for (WorkloadChain& c : lower_layer(bert)) {
    if (c.label == "attention") chains.push_back(std::move(c));
  }
  ASSERT_EQ(chains.size(), 1u);
  ASSERT_EQ(chains[0].unfused_intermediate_penalty, 2 * 1024 * 1024);

  std::vector<WorkloadChain> no_penalty = chains;
  no_penalty[0].unfused_intermediate_penalty = 0;

  // Unfused platform: the penalty shows up, scaled by the instance count.
  ModelEval with = evaluate_chains(chains, "p", make_unfcu());
  ModelEval without = evaluate_chains(no_penalty, "np", make_unfcu());
  EXPECT_EQ(with.access - without.access,
            chains[0].unfused_intermediate_penalty * chains[0].count);

  // Fused platform: softmax runs on-chip, no penalty at all.
  ModelEval fused_with = evaluate_chains(chains, "p", make_fusecu());
  ModelEval fused_without = evaluate_chains(no_penalty, "np", make_fusecu());
  EXPECT_EQ(fused_with.access, fused_without.access);
}

TEST(ModelEvalTest, EnergyPopulated) {
  ModelEval e = evaluate_model(table2_models()[0], make_fusecu());
  EXPECT_GT(e.energy_pj, 0.0);
  EXPECT_GT(e.energy_movement_fraction, 0.0);
  EXPECT_LT(e.energy_movement_fraction, 1.0);
}

TEST(ModelEvalTest, Table2EvaluatesAllModels) {
  auto evals = evaluate_table2(make_fusecu());
  ASSERT_EQ(evals.size(), 7u);
  for (const ModelEval& e : evals) {
    EXPECT_GT(e.access, 0);
    EXPECT_GT(e.cycles, 0);
    EXPECT_EQ(e.platform, "FuseCU");
  }
}

}  // namespace
}  // namespace fusecu
