#include <gtest/gtest.h>

#include "principles/principle_optimizer.hpp"
#include "search/exhaustive.hpp"
#include "tensor/conv.hpp"

namespace fusecu {
namespace {

Conv2dConfig resnet_conv3x3() {
  Conv2dConfig c;
  c.name = "res3x3";
  c.batch = 4;
  c.in_channels = 64;
  c.out_channels = 64;
  c.in_h = 58;
  c.in_w = 58;
  c.kernel_h = 3;
  c.kernel_w = 3;
  return c;
}

TEST(Conv2d, OutputExtentsAndMacs) {
  Conv2dConfig c = resnet_conv3x3();
  EXPECT_EQ(c.out_h(), 56);
  EXPECT_EQ(c.out_w(), 56);
  EXPECT_EQ(c.macs(), 4LL * 64 * 64 * 56 * 56 * 3 * 3);

  Conv2dConfig strided = c;
  strided.stride = 2;
  EXPECT_EQ(strided.out_h(), 28);
  // 1x1 convolution degenerates to a pointwise matmul.
  Conv2dConfig pw = c;
  pw.kernel_h = pw.kernel_w = 1;
  EXPECT_EQ(pw.out_h(), 58);
}

TEST(Conv2d, RejectsInvalidConfigs) {
  Conv2dConfig c = resnet_conv3x3();
  c.kernel_h = 100;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = resnet_conv3x3();
  c.stride = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = resnet_conv3x3();
  c.in_channels = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Conv2d, Im2colViewMatchesMacs) {
  Conv2dConfig c = resnet_conv3x3();
  TensorOp mm = conv_as_matmul(c);
  EXPECT_EQ(mm.extent(mm::kDimM), 4 * 56 * 56);
  EXPECT_EQ(mm.extent(mm::kDimK), 64 * 3 * 3);
  EXPECT_EQ(mm.extent(mm::kDimL), 64);
  EXPECT_EQ(mm.macs(), c.macs());
}

TEST(Conv2d, DirectLoopNestView) {
  Conv2dConfig c = resnet_conv3x3();
  TensorOp nest = conv_as_loop_nest(c);
  EXPECT_EQ(nest.num_dims(), 7);
  EXPECT_EQ(nest.macs(), c.macs());
  EXPECT_EQ(nest.tensor_size(1), 64LL * 64 * 3 * 3);  // weights
  EXPECT_EQ(nest.tensor_size(2), 4LL * 64 * 56 * 56);  // output
  EXPECT_TRUE(nest.is_reduction_dim(nest.find_dim("C")));
  EXPECT_TRUE(nest.is_reduction_dim(nest.find_dim("R")));
  EXPECT_FALSE(nest.is_reduction_dim(nest.find_dim("P")));
}

TEST(Conv2d, AccessModelPricesTheDirectNest) {
  // The rank-agnostic reuse model prices a 7-loop dataflow: weights
  // stationary (all four weight dims untiled), spatial dims tiled.
  Conv2dConfig c = resnet_conv3x3();
  TensorOp nest = conv_as_loop_nest(c);
  Dataflow df = make_dataflow(
      nest, {"K", "C", "R", "S", "N", "P", "Q"},
      {{"K", 64}, {"C", 64}, {"R", 3}, {"S", 3}, {"N", 1}, {"P", 8}, {"Q", 8}});
  AccessBreakdown b = evaluate_access(nest, df);
  // Weights: all dims untiled -> accessed exactly once.
  EXPECT_EQ(b.per_tensor[1], nest.tensor_size(1));
  // Output: untiled K covers its only non-indexed effective loop -> once.
  EXPECT_EQ(b.per_tensor[2], nest.tensor_size(2));
  // Input (decoupled-index view): accessed once as well in this schedule.
  EXPECT_EQ(b.per_tensor[0], nest.tensor_size(0));
  EXPECT_LE(b.buffer_footprint, 64 * 64 * 9 + 64 * 9 * 64 + 64 * 64);
}

TEST(Conv2d, PrinciplesOptimizeTheIm2colView) {
  // The principle machinery applies unchanged to convolution via im2col —
  // and still matches exhaustive search.
  Conv2dConfig c = resnet_conv3x3();
  TensorOp mm = conv_as_matmul(c);
  for (BufferSize bs : {BufferSize{8 * 1024}, BufferSize{256 * 1024}, BufferSize{2 * 1024 * 1024}}) {
    IntraOptResult principled = optimize_intra(mm, bs);
    auto searched = exhaustive_intra(mm, bs);
    ASSERT_TRUE(searched.has_value());
    EXPECT_LE(principled.access.total, searched->access.total) << "bs=" << bs;
  }
}

TEST(Conv2d, BufferClassificationAppliesToConv) {
  Conv2dConfig c = resnet_conv3x3();
  TensorOp mm = conv_as_matmul(c);
  // Huge buffer: Three-NRA, ideal lower bound.
  IntraOptResult r = optimize_intra(mm, 4 * 1024 * 1024);
  EXPECT_EQ(r.nra, NraKind::kThree);
  EXPECT_EQ(r.access.total, mm.ideal_min_access());
}

}  // namespace
}  // namespace fusecu
