#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_parse.hpp"
#include "serve/plan_service.hpp"

/// JSONL round-trip acceptance for the planning service: the in-process
/// serve_stream() contract, and the real fusecu_serve binary end to end
/// (path injected by CMake, mirroring eval_obs_test).

#ifndef FUSECU_SERVE_BIN
#error "FUSECU_SERVE_BIN must be defined to the fusecu_serve binary path"
#endif

namespace fusecu {
namespace {

const char kRequests[] =
    "{\"id\":\"r1\",\"op\":\"matmul\",\"m\":1024,\"k\":768,\"l\":768,\"buffer\":\"512KB\"}\n"
    "\n"
    "{\"id\":\"r2\",\"op\":\"matmul\",\"m\":1024,\"k\":768,\"l\":768,\"buffer\":\"512KB\"}\n"
    "{\"id\":\"r3\",\"op\":\"fused_pair\",\"m\":1024,\"k\":64,\"l\":1024,\"n\":64,"
    "\"buffer_elems\":262144}\n"
    "{\"id\":\"r4\",\"op\":\"matmul\",\"m\":128,\"k\":64,\"l\":256,\"batch\":8,"
    "\"shared_weight\":true,\"buffer_elems\":65536}\n"
    "{\"id\":\"bad\",\"op\":\"matmul\",\"m\":128\n"
    "{\"id\":\"r5\",\"op\":\"matmul\",\"m\":64,\"k\":64,\"l\":64,\"buffer_elems\":1}\n";

std::vector<JsonValuePtr> parse_lines(std::istream& in) {
  std::vector<JsonValuePtr> docs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    docs.push_back(parse_json(line));  // throws on any malformed response
  }
  return docs;
}

void check_responses(std::vector<JsonValuePtr>& docs) {
  ASSERT_EQ(docs.size(), 6u) << "one response per non-blank input line";

  EXPECT_EQ(docs[0]->get("id")->as_string(), "r1");
  EXPECT_TRUE(docs[0]->get("ok")->as_bool());
  EXPECT_EQ(docs[0]->get("kind")->as_string(), "matmul");
  EXPECT_FALSE(docs[0]->get("cached")->as_bool());
  EXPECT_GT(docs[0]->get("total_access")->as_number(), 0.0);
  EXPECT_FALSE(docs[0]->get("rule")->as_string().empty());
  EXPECT_EQ(docs[0]->get("per_tensor")->as_array().size(), 3u);

  // r2 repeats r1 exactly: cache hit, identical plan.
  EXPECT_TRUE(docs[1]->get("cached")->as_bool());
  EXPECT_EQ(docs[1]->get("rule")->as_string(), docs[0]->get("rule")->as_string());
  EXPECT_EQ(docs[1]->get("total_access")->as_number(), docs[0]->get("total_access")->as_number());

  EXPECT_EQ(docs[2]->get("id")->as_string(), "r3");
  EXPECT_TRUE(docs[2]->get("ok")->as_bool());
  EXPECT_EQ(docs[2]->get("kind")->as_string(), "fused_pair");
  EXPECT_TRUE(docs[2]->get("fusable")->as_bool());

  EXPECT_EQ(docs[3]->get("id")->as_string(), "r4");
  EXPECT_TRUE(docs[3]->get("ok")->as_bool());

  // The malformed line produces an error response in place, anchored to the
  // source and line of the stream; the stream itself keeps going.
  EXPECT_FALSE(docs[4]->get("ok")->as_bool());
  const std::string error = docs[4]->get("error")->as_string();
  EXPECT_NE(error.find(":6:"), std::string::npos) << error;
  EXPECT_NE(error.find("expected"), std::string::npos) << error;

  // Well-formed JSON with an impossible workload: error, id preserved.
  EXPECT_FALSE(docs[5]->get("ok")->as_bool());
  EXPECT_EQ(docs[5]->get("id")->as_string(), "r5");
}

TEST(ServeStream, InProcessRoundTrip) {
  PlanService service(ServeOptions{.threads = 2});
  std::istringstream in(kRequests);
  std::ostringstream out;
  const int n = service.serve_stream(in, out, "requests.jsonl");
  EXPECT_EQ(n, 6);
  std::istringstream replies(out.str());
  std::vector<JsonValuePtr> docs = parse_lines(replies);
  check_responses(docs);
  EXPECT_NE(docs[4]->get("error")->as_string().find("requests.jsonl:6:"), std::string::npos);
}

TEST(ServeStream, BinaryEndToEnd) {
  const std::string input_path = testing::TempDir() + "serve_requests.jsonl";
  const std::string output_path = testing::TempDir() + "serve_responses.jsonl";
  {
    std::ofstream out(input_path);
    out << kRequests;
  }
  const std::string cmd = std::string(FUSECU_SERVE_BIN) + " --input " + input_path +
                          " --threads 2 --cache-mb 16 > " + output_path;
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::ifstream replies(output_path);
  ASSERT_TRUE(replies.is_open());
  std::vector<JsonValuePtr> docs = parse_lines(replies);
  check_responses(docs);
  EXPECT_NE(docs[4]->get("error")->as_string().find(":6:"), std::string::npos);
}

}  // namespace
}  // namespace fusecu
