#include <gtest/gtest.h>

#include <sstream>

#include "common/json_writer.hpp"
#include "workloads/report.hpp"

namespace fusecu {
namespace {

TEST(JsonWriter, ObjectsArraysAndEscaping) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("name", std::string("a\"b\\c\nd"));
    w.field("count", 42);
    w.field("ratio", 0.5);
    w.field("flag", true);
    w.key("list");
    w.begin_array();
    w.value(1);
    w.value(2);
    w.end_array();
    w.end_object();
    EXPECT_TRUE(w.complete());
  }
  EXPECT_EQ(os.str(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"count\":42,\"ratio\":0.5,"
            "\"flag\":true,\"list\":[1,2]}");
}

TEST(JsonWriter, EnforcesStructure) {
  std::ostringstream os;
  JsonWriter w(os);
  EXPECT_THROW(w.key("k"), std::invalid_argument);  // key outside object
  w.begin_object();
  EXPECT_THROW(w.value(1), std::invalid_argument);  // value without key
  w.key("k");
  EXPECT_THROW(w.key("k2"), std::invalid_argument);  // two keys in a row
  w.value(1);
  EXPECT_THROW(w.end_array(), std::invalid_argument);  // mismatched scope
  w.end_object();
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, RejectsNonFinite) {
  std::ostringstream os;
  JsonWriter w(os);
  EXPECT_THROW(w.value(std::numeric_limits<double>::infinity()), std::invalid_argument);
}

std::vector<ModelEval> sample_evals() {
  ModelEval a;
  a.model = "BERT";
  a.platform = "FuseCU";
  a.access = 1000;
  a.cycles = 2000;
  a.macs = 3000;
  a.fused_pairs = 5;
  a.utilization = 0.75;
  a.energy_pj = 123.5;
  a.energy_movement_fraction = 0.6;
  return {a};
}

TEST(Report, CsvRoundTrip) {
  std::ostringstream os;
  write_evaluation_csv(os, sample_evals());
  const std::string csv = os.str();
  EXPECT_NE(csv.find("model,platform,access"), std::string::npos);
  EXPECT_NE(csv.find("BERT,FuseCU,1000,2000,3000,5,0.75,123.5,0.6"), std::string::npos);
}

TEST(Report, JsonContainsAllFields) {
  std::ostringstream os;
  write_evaluation_json(os, sample_evals());
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  for (const char* needle : {"\"model\":\"BERT\"", "\"platform\":\"FuseCU\"",
                             "\"access\":1000", "\"fused_pairs\":5", "\"utilization\":0.75"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace fusecu
