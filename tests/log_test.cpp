#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_parse.hpp"
#include "obs/log.hpp"
#include "obs/span.hpp"

namespace fusecu {
namespace {

/// Configure the global logger into a captured stringstream for one test,
/// and always detach it afterwards.
class LoggerScope {
 public:
  explicit LoggerScope(LogLevel level)
      : sink_(std::make_shared<std::ostringstream>()) {
    Logger::global().configure(level, sink_);
  }
  ~LoggerScope() { Logger::global().reset(); }

  std::vector<std::string> lines() const {
    std::vector<std::string> out;
    std::istringstream in(sink_->str());
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) out.push_back(line);
    }
    return out;
  }

 private:
  std::shared_ptr<std::ostringstream> sink_;
};

TEST(Log, ParseLogLevelRoundTrips) {
  for (LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    auto parsed = parse_log_level(log_level_name(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
  EXPECT_FALSE(parse_log_level("INFO").has_value());  // case-sensitive
}

TEST(Log, DisabledByDefaultAndAfterReset) {
  EXPECT_FALSE(Logger::global().enabled(LogLevel::kError));
  {
    LoggerScope scope(LogLevel::kInfo);
    EXPECT_TRUE(Logger::global().enabled(LogLevel::kInfo));
  }
  EXPECT_FALSE(Logger::global().enabled(LogLevel::kError));
  log_error("test", "goes nowhere");  // must not crash with no sink
}

TEST(Log, LinesAreJsonWithLevelComponentAndFields) {
  LoggerScope scope(LogLevel::kInfo);
  log_info("serve", "request failed", {{"id", "r17"}, {"why", "bad \"buffer\""}});

  const std::vector<std::string> lines = scope.lines();
  ASSERT_EQ(lines.size(), 1u);
  JsonValuePtr line = parse_json(lines[0]);
  EXPECT_EQ(line->get("level")->as_string(), "info");
  EXPECT_EQ(line->get("component")->as_string(), "serve");
  EXPECT_EQ(line->get("msg")->as_string(), "request failed");
  EXPECT_EQ(line->get("id")->as_string(), "r17");
  EXPECT_EQ(line->get("why")->as_string(), "bad \"buffer\"");  // escapes survive
  EXPECT_TRUE(line->has("time"));
  EXPECT_GE(line->get("ts_us")->as_number(), 0.0);
  EXPECT_GE(line->get("thread")->as_number(), 0.0);
  // No ambient span on this thread: the line carries no trace/span ids.
  EXPECT_FALSE(line->has("trace"));
  EXPECT_FALSE(line->has("span"));
}

TEST(Log, ThresholdFiltersLowerLevels) {
  LoggerScope scope(LogLevel::kWarn);
  log_debug("test", "drop me");
  log_info("test", "drop me too");
  log_warn("test", "keep");
  log_error("test", "keep too");

  const std::vector<std::string> lines = scope.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(parse_json(lines[0])->get("level")->as_string(), "warn");
  EXPECT_EQ(parse_json(lines[1])->get("level")->as_string(), "error");
}

TEST(Log, AmbientSpanIdsAttachToLines) {
  LoggerScope scope(LogLevel::kInfo);

  // Spans need a sink to become ambient; a discarding one is enough here.
  struct NullSink : SpanSink {
    void on_span(const SpanRecord&) override {}
  } null_sink;
  SpanSink* prev = set_span_sink(&null_sink);

  std::string trace_hex, span_hex;
  {
    ScopedSpan span("request/matmul");
    log_info("serve", "inside");
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(span.context().trace_id));
    trace_hex = buf;
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(span.context().span_id));
    span_hex = buf;
  }
  log_info("serve", "outside");
  set_span_sink(prev);

  const std::vector<std::string> lines = scope.lines();
  ASSERT_EQ(lines.size(), 2u);
  JsonValuePtr inside = parse_json(lines[0]);
  EXPECT_EQ(inside->get("trace")->as_string(), trace_hex);
  EXPECT_EQ(inside->get("span")->as_string(), span_hex);
  EXPECT_FALSE(parse_json(lines[1])->has("trace"));
}

TEST(Log, ConcurrentWritersNeverInterleaveLines) {
  LoggerScope scope(LogLevel::kInfo);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 100; ++i) {
        log_info("burst", "line", {{"writer", std::to_string(t)}});
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<std::string> lines = scope.lines();
  ASSERT_EQ(lines.size(), 400u);
  for (const std::string& line : lines) {
    JsonValuePtr v = parse_json(line);  // throws if a line was torn
    EXPECT_EQ(v->get("component")->as_string(), "burst");
  }
}

}  // namespace
}  // namespace fusecu
