#include <gtest/gtest.h>

#include "check/harness.hpp"
#include "principles/principle_optimizer.hpp"
#include "search/exhaustive.hpp"

namespace fusecu {
namespace {

Workload intra_workload(Index m, Index k, Index l, BufferSize bs) {
  Workload w;
  w.kind = WorkloadKind::kIntra;
  w.m = m;
  w.k = k;
  w.l = l;
  w.bs = bs;
  return w;
}

Workload fused_workload(Index m, Index k, Index l, Index n, BufferSize bs) {
  Workload w = intra_workload(m, k, l, bs);
  w.kind = WorkloadKind::kFused;
  w.n = n;
  return w;
}

// --- Pinned workloads through the full oracle stack.  These are the shapes
// a human reaches for first when a regression appears, so they must always
// be green, with everything enabled (simulator, serve, arch).

TEST(Conformance, PinnedIntraShapesPass) {
  for (const Workload& w : {
           intra_workload(64, 64, 64, 1024),   // square, medium buffer
           intra_workload(1, 1, 1, 3),         // fully degenerate
           intra_workload(17, 19, 23, 64),     // primes, tiny buffer
           intra_workload(96, 1, 96, 200),     // unit reduction dim
           intra_workload(8, 64, 8, 4096),     // buffer dwarfs the op
       }) {
    CheckReport r = check_workload(w);
    EXPECT_TRUE(r.ok()) << w.to_string() << "\n" << r.summary();
    EXPECT_GT(r.checks_run, 0);
  }
}

TEST(Conformance, PinnedFusedShapesPass) {
  for (const Workload& w : {
           fused_workload(16, 16, 16, 16, 512),
           fused_workload(1, 1, 1, 1, 3),      // the old residual>=3 off-by-one
           fused_workload(10, 1, 23, 8, 104),  // historical phased-optimality gap
           fused_workload(32, 8, 32, 8, 6000), // resident-C territory
       }) {
    CheckReport r = check_workload(w);
    EXPECT_TRUE(r.ok()) << w.to_string() << "\n" << r.summary();
  }
}

// BERT-base attention-ish projection: seq 128, d_model-slice 64, pinned as
// the representative "real model layer" the paper evaluates.
TEST(Conformance, BertProjectionSlicePasses) {
  CheckReport intra = check_workload(intra_workload(128, 64, 128, 8 * 1024));
  EXPECT_TRUE(intra.ok()) << intra.summary();
  CheckReport fused = check_workload(fused_workload(128, 64, 128, 64, 8 * 1024));
  EXPECT_TRUE(fused.ok()) << fused.summary();
}

TEST(Conformance, ChainWorkloadPasses) {
  Workload w;
  w.kind = WorkloadKind::kChain;
  w.chain.m = 16;
  w.chain.dims = {24, 32, 8};
  w.chain.act_after = {true};
  w.bs = 2048;
  CheckReport r = check_workload(w);
  EXPECT_TRUE(r.ok()) << r.summary();
}

// --- The closed-form floor is sound and tight where it should be.

TEST(LowerBound, NeverExceedsRealizedOptimum) {
  for (const Workload& w : {intra_workload(64, 64, 64, 256), intra_workload(7, 100, 7, 30),
                            intra_workload(128, 8, 128, 4096)}) {
    TensorOp op = w.intra_op();
    EXPECT_LE(intra_traffic_lower_bound(op, w.bs), optimize_intra(op, w.bs).access.total)
        << w.to_string();
  }
}

TEST(LowerBound, MeetsIdealAtLargeBuffers) {
  TensorOp op = TensorOp::matmul("lb", 32, 32, 32);
  const BufferSize huge = 3 * 32 * 32 + 64;
  EXPECT_EQ(intra_traffic_lower_bound(op, huge), op.ideal_min_access());
  EXPECT_EQ(optimize_intra(op, huge).access.total, op.ideal_min_access());
}

// --- Harness smoke: a short deterministic run is clean, counts what it
// claims, and is reproducible.

TEST(Harness, ShortRunIsCleanAndDeterministic) {
  HarnessOptions opts;
  opts.seed = 7;
  opts.trials = 25;
  HarnessResult a = run_conformance(opts);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.trials_run, 25);
  EXPECT_GT(a.checks_run, 25);  // each trial runs many checks

  HarnessResult b = run_conformance(opts);
  EXPECT_EQ(a.checks_run, b.checks_run);  // same seed, same trial stream
}

TEST(Harness, ReplayReproMatchesDirectCheck) {
  TrialFailure f;
  f.workload = intra_workload(17, 19, 23, 64);
  f.shrunk.workload = f.workload;
  Repro repro = make_repro(f);
  CheckReport r = replay_repro(repro);
  EXPECT_TRUE(r.ok()) << r.summary();
}

}  // namespace
}  // namespace fusecu
