#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "obs/metrics.hpp"

/// AdmissionController: the CoDel-style brownout state machine, driven with
/// synthetic timestamps so every transition is exercised deterministically
/// without sleeping.  The contract under test (DESIGN.md §7): enter when
/// queue delay stays above the target for a full confirmation span (one
/// interval; interval/4 shortly after an exit; immediately at 2x target)
/// with no below-target dequeue in between, exit with hysteresis only once
/// a full window's *minimum* drops below half the target — and the backoff
/// hint / interval are pure functions of the configuration.

namespace fusecu {
namespace {

constexpr std::int64_t kMs = 1000;  // us per ms

AdmissionController make(std::int64_t target_ms) {
  return AdmissionController(AdmissionConfig{.target_delay_ms = target_ms});
}

TEST(Admission, DisabledControllerIsInertAndNeverBrownsOut) {
  AdmissionController admission = make(0);
  EXPECT_FALSE(admission.enabled());
  for (int i = 0; i < 100; ++i) {
    admission.record(/*delay_us=*/10'000 * kMs, /*now_us=*/i * 100 * kMs);
  }
  EXPECT_FALSE(admission.overloaded()) << "target 0 must disable the state machine entirely";
}

TEST(Admission, ConfigurationDerivedConstants) {
  EXPECT_EQ(make(10).interval_ms(), 50) << "interval floors at 50ms";
  EXPECT_EQ(make(100).interval_ms(), 400) << "4x target past the floor";
  EXPECT_EQ(make(10).retry_after_ms(), 20) << "hint is 2x target";
  EXPECT_EQ(make(1).retry_after_ms(), 2);
  EXPECT_EQ(make(900).retry_after_ms(), 1000) << "hint clamps at 1s";
  EXPECT_EQ(make(0).retry_after_ms(), 1) << "hint floors at 1ms even when disabled";
}

TEST(Admission, EntersOnlyWhenDelayStaysAboveTargetForAFullConfirmationSpan) {
  // target 10ms -> interval (confirmation span) 50ms; delays here stay in
  // (target, 2x target) so the gross-violation shortcut never applies.
  AdmissionController admission = make(10);
  admission.record(15 * kMs, 0);  // above target: timer armed at t=0
  EXPECT_FALSE(admission.overloaded());
  // One fast dequeue proves the queue fully drained: the timer disarms — a
  // burst of slow requests around it is not overload.
  admission.record(5 * kMs, 10 * kMs);
  admission.record(16 * kMs, 20 * kMs);  // re-armed at t=20
  admission.record(17 * kMs, 51 * kMs);  // only 31ms continuously above
  EXPECT_FALSE(admission.overloaded())
      << "one fast dequeue inside the span proves the queue drained";

  // Delays stay above the target for a whole interval -> standing queue.
  admission.record(18 * kMs, 60 * kMs);
  admission.record(19 * kMs, 80 * kMs);  // 60ms continuously above -> enter
  EXPECT_TRUE(admission.overloaded());
}

TEST(Admission, GrossDelayEntersOnTheSecondObservation) {
  // Admission is never revoked, so time spent deliberating becomes served
  // tail latency: a delay at 2x the target with the timer armed confirms at
  // once instead of waiting out the span.
  AdmissionController admission = make(10);
  admission.record(25 * kMs, 0);  // arms the timer; one outlier never enters
  EXPECT_FALSE(admission.overloaded());
  admission.record(25 * kMs, 1 * kMs);  // >= 2x target while armed -> enter
  EXPECT_TRUE(admission.overloaded());
}

TEST(Admission, ExitsWithHysteresisAtHalfTheTarget) {
  AdmissionController admission = make(10);
  admission.record(50 * kMs, 0);         // timer armed
  admission.record(50 * kMs, 51 * kMs);  // gross (>= 2x target) -> enter
  ASSERT_TRUE(admission.overloaded());

  // A window whose minimum is below the target but above target/2 keeps the
  // brownout: no flapping at the boundary.
  admission.record(8 * kMs, 60 * kMs);
  admission.record(9 * kMs, 102 * kMs);  // edge: min 8ms in (5, 10] -> hold
  EXPECT_TRUE(admission.overloaded()) << "between target/2 and target must not flap";

  // Only a minimum under half the target clears it.
  admission.record(3 * kMs, 110 * kMs);
  admission.record(4 * kMs, 153 * kMs);  // edge: min 3ms < 5ms -> exit
  EXPECT_FALSE(admission.overloaded());
}

TEST(Admission, BrownoutEntryBumpsTheCounterOncePerEpisode) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::int64_t before = reg.counter("serve/brownout_entries").value();
  AdmissionController admission = make(10);
  admission.record(50 * kMs, 0);
  admission.record(50 * kMs, 51 * kMs);  // enter
  ASSERT_TRUE(admission.overloaded());
  // More slow windows while already in brownout must not re-count.
  admission.record(50 * kMs, 110 * kMs);
  admission.record(50 * kMs, 161 * kMs);
  EXPECT_EQ(reg.counter("serve/brownout_entries").value(), before + 1);

  // Recover, then a second episode counts again — and because the exit was
  // recent, a mild (sub-gross) overshoot re-enters after interval/4 (12.5ms)
  // instead of a full interval: an overload that outlives one shed wave is
  // re-caught fast.
  admission.record(1 * kMs, 170 * kMs);
  admission.record(1 * kMs, 221 * kMs);  // window min 1ms < 5ms -> exit
  ASSERT_FALSE(admission.overloaded());
  admission.record(15 * kMs, 272 * kMs);  // above target again: timer re-armed
  ASSERT_FALSE(admission.overloaded());
  admission.record(15 * kMs, 287 * kMs);  // 15ms above >= interval/4 -> enter
  ASSERT_TRUE(admission.overloaded());
  EXPECT_EQ(reg.counter("serve/brownout_entries").value(), before + 2);
}

TEST(Admission, QueueDelayHistogramSeesEveryObservation) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const HistogramSnapshot before = reg.histogram("serve/queue_delay_us").snapshot();
  AdmissionController admission = make(5);
  for (int i = 0; i < 10; ++i) {
    admission.record(2 * kMs, i * 10 * kMs);
  }
  const HistogramSnapshot after = reg.histogram("serve/queue_delay_us").snapshot();
  EXPECT_EQ(after.count, before.count + 10);
}

}  // namespace
}  // namespace fusecu
