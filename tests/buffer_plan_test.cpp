#include <gtest/gtest.h>

#include "principles/principle_optimizer.hpp"
#include "sim/buffer_plan.hpp"

namespace fusecu {
namespace {

TEST(BufferPlan, StreamedVsStationaryTensors) {
  // Output-stationary: C's tile loops both effective -> C streamed? No:
  // with tiles covering a *portion* of C, C's tile changes across the
  // (M, L) loops -> streamed.  An untiled-resident tensor is not.
  TensorOp op = TensorOp::matmul("mm", 64, 32, 64);
  Dataflow os = make_dataflow(op, {"M", "L", "K"}, {{"M", 16}, {"L", 16}, {"K", 1}});
  EXPECT_TRUE(tensor_is_streamed(op, os, mm::kTensorA));
  EXPECT_TRUE(tensor_is_streamed(op, os, mm::kTensorB));
  EXPECT_TRUE(tensor_is_streamed(op, os, mm::kTensorC));

  // Three-NRA with B fully resident: B single-buffered.
  Dataflow resident = make_dataflow(op, {"M", "K", "L"}, {{"M", 8}, {"K", 32}, {"L", 64}});
  EXPECT_FALSE(tensor_is_streamed(op, resident, mm::kTensorB));
  EXPECT_TRUE(tensor_is_streamed(op, resident, mm::kTensorA));
}

TEST(BufferPlan, RegionsArePackedAndDisjoint) {
  TensorOp op = TensorOp::matmul("mm", 64, 32, 64);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 16}, {"L", 16}, {"K", 4}});
  BufferPlan plan = plan_buffer(op, df);
  ASSERT_EQ(plan.regions.size(), 3u);
  Index expected_offset = 0;
  for (const BufferRegion& r : plan.regions) {
    EXPECT_EQ(r.offset, expected_offset);
    expected_offset += r.extent();
    EXPECT_TRUE(r.double_buffered);  // every tensor streams in this nest
    EXPECT_EQ(r.extent(), 2 * r.tile_elements);
  }
  EXPECT_EQ(plan.total_elements, expected_offset);
  // Double buffering exactly doubles the analytical footprint here.
  EXPECT_EQ(plan.total_elements, 2 * df.buffer_footprint(op));
}

TEST(BufferPlan, ResidentTensorSingleBuffered) {
  TensorOp op = TensorOp::matmul("mm", 256, 32, 32);
  // B resident (untiled both dims), A/C stream.
  Dataflow df = make_dataflow(op, {"M", "K", "L"}, {{"M", 8}, {"K", 32}, {"L", 32}});
  BufferPlan plan = plan_buffer(op, df);
  EXPECT_FALSE(plan.region_for(mm::kTensorB).double_buffered);
  EXPECT_EQ(plan.region_for(mm::kTensorB).extent(), 32 * 32);
  EXPECT_TRUE(plan.region_for(mm::kTensorA).double_buffered);
  // Capacity: footprint + the streamed tiles once more.
  const Index footprint = df.buffer_footprint(op);
  EXPECT_EQ(plan.total_elements, footprint + 8 * 32 + 8 * 32);
}

TEST(BufferPlan, FitsAndLookup) {
  TensorOp op = TensorOp::matmul("mm", 16, 16, 16);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 4}, {"L", 4}, {"K", 4}});
  BufferPlan plan = plan_buffer(op, df);
  EXPECT_TRUE(plan.fits(plan.total_elements));
  EXPECT_FALSE(plan.fits(plan.total_elements - 1));
  EXPECT_EQ(plan.region_for(mm::kTensorC).name, "C");
  EXPECT_THROW(plan.region_for(7), std::invalid_argument);
}

TEST(BufferPlan, PrincipleSchedulesNeedAtMostTwiceTheFootprint) {
  for (BufferSize bs : {BufferSize{1024}, BufferSize{64 * 1024}, BufferSize{512 * 1024}}) {
    TensorOp op = TensorOp::matmul("mm", 1024, 768, 768);
    IntraOptResult r = optimize_intra(op, bs);
    BufferPlan plan = plan_buffer(op, r.dataflow);
    EXPECT_GE(plan.total_elements, r.access.buffer_footprint);
    EXPECT_LE(plan.total_elements, 2 * r.access.buffer_footprint);
  }
}

}  // namespace
}  // namespace fusecu
