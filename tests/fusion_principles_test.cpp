#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fusion/fusion_principles.hpp"
#include "search/exhaustive.hpp"

namespace fusecu {
namespace {

// Attention-shaped pair at a per-head scale: S = Q K^T (M=seq, K=head_dim,
// L=seq) fused with O = S V (N=head_dim).
FusedPair attention_pair(Index seq, Index head_dim) {
  return FusedPair::make(seq, head_dim, seq, head_dim);
}

TEST(FusionPrinciples, SameRegimeDetection) {
  FusedPair p = attention_pair(256, 64);
  // Tiny buffer: both ops Single-NRA.
  EXPECT_TRUE(same_nra_regime(p, 512));
  // Huge buffer: both Three-NRA.
  EXPECT_TRUE(same_nra_regime(p, 4 * 1024 * 1024));
}

TEST(FusionPrinciples, DifferentRegimeForAsymmetricPair) {
  // op1 is a huge MM (stays Single-NRA), op2 tiny (instantly Three-NRA).
  FusedPair p = FusedPair::make(64, 4096, 64, 8);
  const BufferSize bs = 3000;
  IntraOptResult r1 = optimize_intra(p.op1(), bs);
  IntraOptResult r2 = optimize_intra(p.op2(), bs);
  ASSERT_NE(r1.nra, r2.nra);
  EXPECT_FALSE(same_nra_regime(p, bs));
}

TEST(FusionPrinciples, TileFusionWinsInTinyBuffers) {
  FusedPair p = attention_pair(1024, 128);
  const BufferSize bs = 16 * 1024;  // tiny for both ops (D_min = 128... )
  auto fused = optimize_fused_pair(p, bs);
  ASSERT_TRUE(fused.has_value());
  EXPECT_LE(fused->access.buffer_footprint, bs);
  // Fusion saves the 1024x1024 intermediate round trip.
  FusionDecision d = decide_fusion(p, bs);
  EXPECT_TRUE(d.fusable);
  EXPECT_TRUE(d.profitable) << "fused " << d.fused_ma << " vs unfused " << d.unfused_ma;
}

TEST(FusionPrinciples, ResidentFusionAppearsWithLargeBuffers) {
  FusedPair p = attention_pair(128, 64);
  const BufferSize bs = 64 * 1024;  // > |C| = 16K with plenty of slack
  auto fused = optimize_fused_pair(p, bs);
  ASSERT_TRUE(fused.has_value());
  // With everything resident the fused MA reaches the fused ideal bound.
  EXPECT_EQ(fused->access.total, p.ideal_min_access());
}

TEST(FusionPrinciples, UnfusedReferenceMatchesIntraOptima) {
  FusedPair p = attention_pair(256, 64);
  const BufferSize bs = 32 * 1024;
  EXPECT_EQ(unfused_pair_access(p, bs),
            optimize_intra(p.op1(), bs).access.total + optimize_intra(p.op2(), bs).access.total);
}

TEST(FusionPrinciples, NoCandidateWhenBufferAbsurdlySmall) {
  FusedPair p = attention_pair(256, 64);
  EXPECT_FALSE(optimize_fused_pair(p, 4).has_value());
  FusionDecision d = decide_fusion(p, 4);
  EXPECT_FALSE(d.fusable);
  EXPECT_FALSE(d.profitable);
}

// --- The fused optimality property: the principled fused construction
// matches or beats exhaustive search over the fused space.
struct FusedCase {
  Index m, k, l, n;
  BufferSize bs;
};

class FusedOptimality : public ::testing::TestWithParam<FusedCase> {};

TEST_P(FusedOptimality, MatchesOrBeatsExhaustiveFused) {
  const auto& c = GetParam();
  FusedPair p = FusedPair::make(c.m, c.k, c.l, c.n);
  auto principled = optimize_fused_pair(p, c.bs);
  auto searched = exhaustive_fused(p, c.bs);
  ASSERT_EQ(principled.has_value(), searched.has_value());
  if (principled) {
    EXPECT_LE(principled->access.total, searched->access.total)
        << "pair (" << c.m << "," << c.k << "," << c.l << "," << c.n << ") bs=" << c.bs
        << " rule " << principled->chosen.rule;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FusedOptimality,
    ::testing::Values(FusedCase{256, 64, 256, 64, 2 * 1024},    // attention, tiny
                      FusedCase{256, 64, 256, 64, 16 * 1024},   // attention, medium
                      FusedCase{256, 64, 256, 64, 128 * 1024},  // attention, resident
                      FusedCase{128, 128, 128, 128, 4 * 1024},  // square
                      FusedCase{512, 64, 64, 512, 8 * 1024},    // skinny intermediate
                      FusedCase{64, 256, 64, 256, 8 * 1024},    // wide weights
                      FusedCase{100, 50, 25, 200, 3 * 1024},    // non powers of two
                      FusedCase{16, 16, 16, 16, 64},            // barely fits
                      FusedCase{1024, 64, 1024, 64, 64 * 1024}));

class FusedOptimalityRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FusedOptimalityRandom, MatchesOrBeatsExhaustiveFused) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    FusedPair p = FusedPair::make(rng.uniform(2, 200), rng.uniform(2, 200), rng.uniform(2, 200),
                                  rng.uniform(2, 200));
    const BufferSize bs = rng.uniform(16, 32 * 1024);
    auto principled = optimize_fused_pair(p, bs);
    auto searched = exhaustive_fused(p, bs);
    if (searched && !principled) {
      FAIL() << "search found a fused dataflow the principles missed: bs=" << bs;
    }
    if (principled && searched) {
      EXPECT_LE(principled->access.total, searched->access.total)
          << "pair (" << p.m() << "," << p.k() << "," << p.l() << "," << p.n() << ") bs=" << bs
          << " rule " << principled->chosen.rule;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedOptimalityRandom,
                         ::testing::Values(201ull, 202ull, 203ull, 204ull, 205ull, 206ull,
                                           207ull, 208ull));

// --- Principle 4: same-regime fusion never loses from D_min^2/4 upward and
// wins strictly once the buffer clears the Single/Two shift band.
//
// Reproduction note (recorded in EXPERIMENTS.md): for attention-shaped
// pairs, where the intermediate S = QK^T is far larger than the four
// external tensors, fusion in the *deep tiny* regime (BS well below
// D_min^2/4) can be strictly unprofitable — the unfused optimum keeps the
// small input stationary and pays the intermediate only a few times, while
// fusion forces the huge intermediate stationary.  The paper's evaluation
// (32 KB+ buffers) never enters that corner.
class Principle4Sweep : public ::testing::TestWithParam<BufferSize> {};

TEST_P(Principle4Sweep, SameRegimePairsNeverLose) {
  const BufferSize bs = GetParam();
  FusedPair p = attention_pair(512, 64);  // D_min = 64, D_min^2/4 = 1024
  FusionDecision d = decide_fusion(p, bs);
  ASSERT_TRUE(d.principle4_predicts);  // square pair: regimes always match
  ASSERT_TRUE(d.fusable);
  EXPECT_LE(d.fused_ma, d.unfused_ma) << "bs=" << bs;
  if (bs >= 4 * 1024) {  // past the shift band: strictly profitable
    EXPECT_LT(d.fused_ma, d.unfused_ma) << "bs=" << bs;
  }
}

INSTANTIATE_TEST_SUITE_P(BufferSweep, Principle4Sweep,
                         ::testing::Values<BufferSize>(1024, 4 * 1024, 16 * 1024, 64 * 1024,
                                                       256 * 1024, 1024 * 1024));

TEST(FusionPrinciples, DeepTinyRegimeCanBeUnprofitable) {
  // The documented limitation above, pinned: at BS = D_min^2/16 the fused
  // optimum is strictly worse, and a cost-aware planner must not fuse.
  FusedPair p = attention_pair(512, 64);
  FusionDecision d = decide_fusion(p, 256);
  ASSERT_TRUE(d.fusable);
  EXPECT_GT(d.fused_ma, d.unfused_ma);
  EXPECT_FALSE(d.profitable);
}

}  // namespace
}  // namespace fusecu
