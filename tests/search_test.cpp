#include <gtest/gtest.h>

#include "search/dat_optimizer.hpp"

namespace fusecu {
namespace {

TEST(ExhaustiveIntra, FindsKnownOptimumOnSmallCube) {
  TensorOp op = TensorOp::matmul("mm", 16, 16, 16);
  // Buffer holds everything: the ideal bound must be reached.
  auto r = exhaustive_intra(op, 1024);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->access.total, op.ideal_min_access());
  // No feasible dataflow at bs = 2.
  EXPECT_FALSE(exhaustive_intra(op, 2).has_value());
}

TEST(ExhaustiveFused, ReachesFusedIdealWithLargeBuffer) {
  FusedPair p = FusedPair::make(32, 32, 32, 32);
  auto r = exhaustive_fused(p, 8 * 1024);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->access.total, p.ideal_min_access());
}

TEST(GaIntra, DeterministicForFixedSeed) {
  TensorOp op = TensorOp::matmul("mm", 256, 128, 64);
  GaParams params;
  params.generations = 20;
  auto a = ga_intra(op, 4096, params, 77);
  auto b = ga_intra(op, 4096, params, 77);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->access.total, b->access.total);
  EXPECT_EQ(a->dataflow.loop_order, b->dataflow.loop_order);
  EXPECT_EQ(a->dataflow.tile, b->dataflow.tile);
}

TEST(GaIntra, FeasibleAndNeverBeatsExhaustive) {
  TensorOp op = TensorOp::matmul("mm", 256, 128, 64);
  GaParams params;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto ga = ga_intra(op, 4096, params, seed);
    ASSERT_TRUE(ga.has_value());
    EXPECT_LE(ga->access.buffer_footprint, 4096);
    auto exact = exhaustive_intra(op, 4096);
    ASSERT_TRUE(exact.has_value());
    EXPECT_GE(ga->access.total, exact->access.total);
    // The GA searches the same grid; it should land close to the optimum.
    EXPECT_LE(static_cast<double>(ga->access.total),
              1.25 * static_cast<double>(exact->access.total));
  }
}

TEST(GaFused, FeasibleAndNeverBeatsExhaustive) {
  FusedPair p = FusedPair::make(128, 64, 128, 64);
  GaParams params;
  auto ga = ga_fused(p, 8192, params, 5);
  ASSERT_TRUE(ga.has_value());
  EXPECT_LE(ga->access.buffer_footprint, 8192);
  auto exact = exhaustive_fused(p, 8192);
  ASSERT_TRUE(exact.has_value());
  EXPECT_GE(ga->access.total, exact->access.total);
}

TEST(DatOptimizer, ExhaustiveRefinementTightensResult) {
  TensorOp op = TensorOp::matmul("mm", 96, 96, 96);
  DatParams weak;
  weak.ga.generations = 2;
  weak.ga.population = 8;
  DatParams strong = weak;
  strong.exhaustive_refinement = true;
  DatOptimizer weak_opt(weak), strong_opt(strong);
  auto w = weak_opt.optimize_intra(op, 2048);
  auto s = strong_opt.optimize_intra(op, 2048);
  ASSERT_TRUE(w.has_value());
  ASSERT_TRUE(s.has_value());
  EXPECT_LE(s->access.total, w->access.total);
  auto exact = exhaustive_intra(op, 2048);
  EXPECT_EQ(s->access.total, exact->access.total);
}

TEST(DatOptimizer, PlanChainMatchesPlannerStructure) {
  OperatorGraph g = MatMulChainBuilder(256, {64, 256, 64}, "attn").graph();
  DatParams params;
  params.exhaustive_refinement = true;
  DatOptimizer dat(params);
  FusionPlan plan = dat.plan_chain(g, 16 * 1024);
  AccessCount sum = 0;
  for (const PlanStep& s : plan.steps) sum += s.access;
  EXPECT_EQ(sum, plan.total_access);
  // DAT should also discover that fusing the attention pair pays off.
  EXPECT_EQ(plan.fused_pair_count(), 1);
}

TEST(DatOptimizer, ChainRequiresFeasibleBuffer) {
  OperatorGraph g;
  g.add_op(TensorOp::matmul("mm", 64, 64, 64));
  DatOptimizer dat;
  EXPECT_THROW(dat.plan_chain(g, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fusecu
