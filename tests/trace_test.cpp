#include <gtest/gtest.h>

#include <sstream>

#include "sim/timeline.hpp"
#include "sim/trace.hpp"

namespace fusecu {
namespace {

TEST(TraceRecorder, RecordsAndBounds) {
  TraceRecorder rec(3);
  for (int i = 0; i < 5; ++i) {
    rec.record({"e" + std::to_string(i), "cat", 0, static_cast<double>(i), 1.0});
  }
  EXPECT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.dropped(), 2u);
  EXPECT_EQ(rec.events()[0].name, "e0");
}

TEST(ChromeTrace, EmitsCompleteEvents) {
  TraceRecorder rec;
  rec.record({"load#0", "dma", 0, 0.0, 10.0});
  rec.record({"pass#0", "compute", 1, 10.0, 5.5});
  std::ostringstream os;
  write_chrome_trace(os, rec);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"load#0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5.5"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(ChromeTrace, TimelineEventsAreConsistent) {
  TensorOp op = TensorOp::matmul("tl", 64, 32, 64);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 16}, {"L", 16}, {"K", 16}});
  TraceRecorder rec;
  TimelineResult r = simulate_timeline(op, df, make_fusecu(), 1.0, &rec);

  // One compute event per iteration; loads only when tiles changed.
  std::size_t compute_events = 0;
  double last_end = 0.0;
  for (const TraceEvent& e : rec.events()) {
    EXPECT_GE(e.start_cycle, 0.0);
    EXPECT_GE(e.duration_cycles, 0.0);
    if (e.category == "compute") {
      // Compute events are serialized on the array.
      EXPECT_GE(e.start_cycle + 1e-9, last_end);
      last_end = e.start_cycle + e.duration_cycles;
      ++compute_events;
    }
  }
  EXPECT_EQ(static_cast<Index>(compute_events), r.iterations);
  EXPECT_NEAR(last_end, static_cast<double>(r.cycles), 1.0);
  EXPECT_EQ(rec.dropped(), 0u);
}

}  // namespace
}  // namespace fusecu
