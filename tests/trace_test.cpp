#include <gtest/gtest.h>

#include <sstream>

#include "common/json_parse.hpp"
#include "sim/timeline.hpp"
#include "sim/trace.hpp"

namespace fusecu {
namespace {

TEST(TraceRecorder, RecordsAndBounds) {
  TraceRecorder rec(3);
  for (int i = 0; i < 5; ++i) {
    rec.record({"e" + std::to_string(i), "cat", 0, static_cast<double>(i), 1.0});
  }
  EXPECT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.dropped(), 2u);
  EXPECT_EQ(rec.events()[0].name, "e0");
}

TEST(ChromeTrace, EmitsCompleteEvents) {
  TraceRecorder rec;
  rec.record({"load#0", "dma", 0, 0.0, 10.0});
  rec.record({"pass#0", "compute", 1, 10.0, 5.5});
  std::ostringstream os;
  write_chrome_trace(os, rec);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"load#0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5.5"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(TraceRecorder, CounterSamplesAreBoundedSeparately) {
  TraceRecorder rec(2);
  for (int i = 0; i < 5; ++i) {
    rec.record_counter("traffic", static_cast<double>(i), static_cast<double>(10 * i));
  }
  EXPECT_EQ(rec.counter_samples().size(), 2u);
  EXPECT_EQ(rec.dropped_counters(), 3u);
  EXPECT_FALSE(rec.empty());
}

TEST(ChromeTrace, EscapesSpecialCharactersInNames) {
  TraceRecorder rec;
  rec.set_track_name(0, "engine \"zero\"\\unit");
  rec.record({"load \"q\"\\path\n", "dma\t", 0, 0.0, 1.0});
  rec.record_counter("counter \"c\"", 1.0, 2.0);
  std::ostringstream os;
  write_chrome_trace(os, rec);
  // The emitted document must survive a real JSON parse with the original
  // strings intact.
  JsonValuePtr root = parse_json(os.str());
  ASSERT_TRUE(root->is_array());
  bool saw_event = false, saw_counter = false, saw_meta = false;
  for (const JsonValuePtr& e : root->as_array()) {
    const std::string name = e->get("name")->as_string();
    if (name == "load \"q\"\\path\n") {
      EXPECT_EQ(e->get("cat")->as_string(), "dma\t");
      saw_event = true;
    }
    if (name == "counter \"c\"") saw_counter = true;
    if (name == "thread_name") {
      EXPECT_EQ(e->get("args")->get("name")->as_string(), "engine \"zero\"\\unit");
      saw_meta = true;
    }
  }
  EXPECT_TRUE(saw_event);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_meta);
}

TEST(ChromeTrace, EmitsCounterEventsAndTrackMetadata) {
  TraceRecorder rec;
  rec.set_track_name(0, "DMA");
  rec.record_counter("traffic_elements", 5.0, 128.0);
  rec.record_counter("traffic_elements", 10.0, 256.0);
  std::ostringstream os;
  write_chrome_trace(os, rec);
  JsonValuePtr root = parse_json(os.str());
  int counter_events = 0;
  for (const JsonValuePtr& e : root->as_array()) {
    if (e->get("ph")->as_string() != "C") continue;
    ++counter_events;
    EXPECT_EQ(e->get("name")->as_string(), "traffic_elements");
    EXPECT_TRUE(e->get("args")->has("value"));
  }
  EXPECT_EQ(counter_events, 2);
}

TEST(ChromeTrace, TruncationIsVisibleInMetadata) {
  TraceRecorder rec(1);
  rec.record({"e0", "cat", 0, 0.0, 1.0});
  rec.record({"e1", "cat", 0, 1.0, 1.0});
  rec.record_counter("c", 0.0, 1.0);
  rec.record_counter("c", 1.0, 2.0);
  rec.record_counter("c", 2.0, 3.0);
  std::ostringstream os;
  write_chrome_trace(os, rec);
  JsonValuePtr root = parse_json(os.str());
  bool saw_truncated = false;
  for (const JsonValuePtr& e : root->as_array()) {
    if (e->get("name")->as_string() != "trace_truncated") continue;
    saw_truncated = true;
    EXPECT_EQ(e->get("ph")->as_string(), "M");
    EXPECT_DOUBLE_EQ(e->get("args")->get("dropped_events")->as_number(), 1.0);
    EXPECT_DOUBLE_EQ(e->get("args")->get("dropped_counter_samples")->as_number(), 2.0);
  }
  EXPECT_TRUE(saw_truncated);
}

TEST(ChromeTrace, NoTruncationMetadataWhenNothingDropped) {
  TraceRecorder rec;
  rec.record({"e0", "cat", 0, 0.0, 1.0});
  std::ostringstream os;
  write_chrome_trace(os, rec);
  EXPECT_EQ(os.str().find("trace_truncated"), std::string::npos);
}

TEST(ChromeTrace, TimelineEventsAreConsistent) {
  TensorOp op = TensorOp::matmul("tl", 64, 32, 64);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 16}, {"L", 16}, {"K", 16}});
  TraceRecorder rec;
  TimelineResult r = simulate_timeline(op, df, make_fusecu(), 1.0, &rec);

  // One compute event per iteration; loads only when tiles changed.
  std::size_t compute_events = 0;
  double last_end = 0.0;
  for (const TraceEvent& e : rec.events()) {
    EXPECT_GE(e.start_cycle, 0.0);
    EXPECT_GE(e.duration_cycles, 0.0);
    if (e.category == "compute") {
      // Compute events are serialized on the array.
      EXPECT_GE(e.start_cycle + 1e-9, last_end);
      last_end = e.start_cycle + e.duration_cycles;
      ++compute_events;
    }
  }
  EXPECT_EQ(static_cast<Index>(compute_events), r.iterations);
  EXPECT_NEAR(last_end, static_cast<double>(r.cycles), 1.0);
  EXPECT_EQ(rec.dropped(), 0u);
}

}  // namespace
}  // namespace fusecu
