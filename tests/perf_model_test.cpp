#include <gtest/gtest.h>

#include "sim/perf_model.hpp"

namespace fusecu {
namespace {

TEST(SpatialUtilization, FullTileOnRigidArray) {
  EXPECT_DOUBLE_EQ(spatial_utilization(128, 128, make_tpu_v4i()), 1.0);
  EXPECT_DOUBLE_EQ(spatial_utilization(256, 128, make_tpu_v4i()), 1.0);
}

TEST(SpatialUtilization, HeadDimUndershootsRigidArray) {
  // A 64-wide tile wastes half of a 128x128 array...
  EXPECT_DOUBLE_EQ(spatial_utilization(128, 64, make_tpu_v4i()), 0.5);
  // ...but maps perfectly on FuseCU's narrow composition (64 x 256) and on
  // Planaria's pods.
  EXPECT_DOUBLE_EQ(spatial_utilization(256, 64, make_fusecu()), 1.0);
  EXPECT_DOUBLE_EQ(spatial_utilization(256, 64, make_planaria()), 1.0);
}

TEST(SpatialUtilization, TransposedMappingConsidered) {
  // (64, 256) and (256, 64) are the same tile to the mapper.
  EXPECT_DOUBLE_EQ(spatial_utilization(64, 256, make_fusecu()),
                   spatial_utilization(256, 64, make_fusecu()));
}

TEST(SpatialUtilization, TinyTileIsExpensiveEverywhere) {
  EXPECT_LE(spatial_utilization(1, 1, make_tpu_v4i()), 1.0 / (128 * 128));
  EXPECT_LE(spatial_utilization(1, 1, make_planaria()), 1.0 / (32 * 32) + 1e-12);
}

TEST(StepPerf, ComputeBoundStep) {
  ArchPlanStep step;
  step.op_indices = {0};
  step.macs = 128LL * 128 * 4 * 100;  // 100 full-array cycles of work
  step.access = 1000;                        // negligible traffic
  step.spatial_rows = 128;
  step.spatial_cols = 128;
  StepPerf p = evaluate_step_perf(step, make_tpu_v4i());
  EXPECT_FALSE(p.memory_bound);
  EXPECT_EQ(p.cycles, p.compute_cycles);
  EXPECT_EQ(p.compute_cycles, 100);
}

TEST(StepPerf, MemoryBoundStep) {
  ArchPlanStep step;
  step.op_indices = {0};
  step.macs = 128LL * 128 * 4;  // one cycle of compute
  step.access = 10'000'000;     // 20 MB of traffic at 2 B/elem
  step.spatial_rows = 128;
  step.spatial_cols = 128;
  StepPerf p = evaluate_step_perf(step, make_tpu_v4i());
  EXPECT_TRUE(p.memory_bound);
  EXPECT_EQ(p.cycles, p.memory_cycles);
  EXPECT_EQ(p.memory_cycles, 20000);  // 20e6 bytes / 1000 B-per-cycle
}

TEST(StepPerf, LowUtilizationInflatesComputeCycles) {
  ArchPlanStep step;
  step.op_indices = {0};
  step.macs = 128LL * 128 * 128 * 4;
  step.access = 1;
  // A 256 x 64 tile (attention with head_dim 64): half of every rigid
  // 128 x 128 unit idles, but FuseCU's narrow (256 x 64) composition fits.
  step.spatial_rows = 256;
  step.spatial_cols = 64;
  StepPerf rigid = evaluate_step_perf(step, make_tpu_v4i());
  StepPerf flexible = evaluate_step_perf(step, make_fusecu());
  EXPECT_EQ(rigid.compute_cycles, 2 * flexible.compute_cycles);
}

TEST(PlanPerf, AggregationAndUtilization) {
  ArchSpec arch = make_fusecu();
  ArchPlan plan;
  ArchPlanStep step;
  step.op_indices = {0};
  step.macs = arch.total_pes() * 10;
  step.access = 100;
  step.spatial_rows = 128;
  step.spatial_cols = 128;
  plan.steps = {step, step};
  plan.total_access = 200;
  plan.total_macs = step.macs * 2;

  PlanPerf p = evaluate_plan_perf(plan, arch, /*copies=*/3);
  EXPECT_EQ(p.access, 600);
  EXPECT_EQ(p.macs, step.macs * 6);
  EXPECT_EQ(p.cycles, 60);
  EXPECT_NEAR(p.utilization(arch), 1.0, 1e-9);

  PlanPerf sum;
  sum += p;
  sum += p;
  EXPECT_EQ(sum.cycles, 120);
  EXPECT_EQ(sum.access, 1200);
}

TEST(PlanPerf, RejectsDegenerateInputs) {
  ArchPlanStep step;
  step.op_indices = {0};
  step.macs = 0;
  EXPECT_THROW(evaluate_step_perf(step, make_tpu_v4i()), std::invalid_argument);
  PlanPerf empty;
  EXPECT_THROW(empty.utilization(make_tpu_v4i()), std::invalid_argument);
  ArchPlan plan;
  EXPECT_THROW(evaluate_plan_perf(plan, make_tpu_v4i(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace fusecu
