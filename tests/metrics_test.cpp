#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "common/json_parse.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace fusecu {
namespace {

TEST(Counter, AccumulatesAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 4000);
}

TEST(Histogram, ExactSummaryStatistics) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Histogram, QuantilesWithinBucketResolution) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.observe(static_cast<double>(v));
  // Geometric buckets hold ~9% relative error; allow 10%.
  EXPECT_NEAR(h.quantile(0.50), 500.0, 50.0);
  EXPECT_NEAR(h.quantile(0.95), 950.0, 95.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 99.0);
  // Extremes are exact: clamped to observed min/max.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(Histogram, SingleValueQuantilesAreExact) {
  Histogram h;
  h.observe(42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.snapshot().p99, 42.0);
}

TEST(Histogram, HandlesZeroNegativeAndEmpty) {
  Histogram empty;
  EXPECT_EQ(empty.count(), 0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  Histogram h;
  h.observe(0.0);
  h.observe(-3.0);
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.min, -3.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  // Underflow-bucket representatives clamp into the observed range.
  EXPECT_LE(h.quantile(0.5), 0.0);
  EXPECT_GE(h.quantile(0.5), -3.0);
}

TEST(Histogram, MergeMatchesCombinedObservation) {
  Histogram a, b, combined;
  for (int v = 1; v <= 500; ++v) {
    a.observe(static_cast<double>(v));
    combined.observe(static_cast<double>(v));
  }
  for (int v = 501; v <= 1000; ++v) {
    b.observe(static_cast<double>(v));
    combined.observe(static_cast<double>(v));
  }
  a.merge(b);
  HistogramSnapshot merged = a.snapshot();
  HistogramSnapshot direct = combined.snapshot();
  EXPECT_EQ(merged.count, direct.count);
  EXPECT_DOUBLE_EQ(merged.sum, direct.sum);
  EXPECT_DOUBLE_EQ(merged.min, direct.min);
  EXPECT_DOUBLE_EQ(merged.max, direct.max);
  // Bucket-wise merge is exact, so quantiles agree exactly too.
  EXPECT_DOUBLE_EQ(merged.p50, direct.p50);
  EXPECT_DOUBLE_EQ(merged.p95, direct.p95);
  EXPECT_DOUBLE_EQ(merged.p99, direct.p99);
}

TEST(Histogram, MergeIntoEmptyAndFromEmpty) {
  Histogram a, b;
  b.observe(7.0);
  a.merge(b);  // into empty
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.snapshot().min, 7.0);
  Histogram none;
  a.merge(none);  // from empty: no-op
  EXPECT_EQ(a.count(), 1);
}

TEST(MetricsRegistry, ReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("x");
  c1.add(5);
  EXPECT_EQ(&reg.counter("x"), &c1);
  EXPECT_EQ(reg.counter("x").value(), 5);
  reg.histogram("h").observe(1.0);
  EXPECT_EQ(reg.counter_names(), std::vector<std::string>{"x"});
  EXPECT_EQ(reg.histogram_names(), std::vector<std::string>{"h"});
  reg.clear();
  EXPECT_TRUE(reg.counter_names().empty());
}

TEST(MetricsRegistry, JsonExportParsesAndRoundTrips) {
  MetricsRegistry reg;
  reg.counter("planner/calls").add(3);
  reg.gauge("search/evals_per_sec").set(123.5);
  Histogram& h = reg.histogram("time/optimize \"quoted\\path\"");
  h.observe(0.25);
  h.observe(0.5);

  std::ostringstream os;
  reg.write_json(os);
  JsonValuePtr root = parse_json(os.str());

  EXPECT_DOUBLE_EQ(root->get("counters")->get("planner/calls")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(root->get("gauges")->get("search/evals_per_sec")->as_number(), 123.5);
  JsonValuePtr hist = root->get("histograms")->get("time/optimize \"quoted\\path\"");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->get("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->get("sum")->as_number(), 0.75);
  EXPECT_DOUBLE_EQ(hist->get("min")->as_number(), 0.25);
  EXPECT_DOUBLE_EQ(hist->get("max")->as_number(), 0.5);
}

TEST(MetricsRegistry, CsvExportHasHeaderAndRows) {
  MetricsRegistry reg;
  reg.counter("c").add(2);
  reg.histogram("h").observe(4.0);
  std::ostringstream os;
  reg.write_csv(os, /*exported_at=*/static_cast<std::time_t>(0));
  const std::string csv = os.str();
  // Pinned timestamp makes the artifact byte-stable.
  EXPECT_EQ(csv.rfind("# exported_at 1970-01-01T00:00:00Z\n", 0), 0u);
  EXPECT_NE(csv.find("kind,name,count,sum,min,max,mean,p50,p95,p99,p99.9\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,c,1,2"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,1,4"), std::string::npos);
}

TEST(MetricsRegistry, JsonExportCarriesTimestampAndTailQuantile) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  for (int v = 1; v <= 1000; ++v) h.observe(static_cast<double>(v));
  std::ostringstream os;
  reg.write_json(os, /*exported_at=*/static_cast<std::time_t>(86400));
  JsonValuePtr root = parse_json(os.str());
  EXPECT_EQ(root->get("exported_at")->as_string(), "1970-01-02T00:00:00Z");
  JsonValuePtr hist = root->get("histograms")->get("lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->get("sum")->as_number(), 500500.0);
  EXPECT_NEAR(hist->get("p99.9")->as_number(), 999.0, 100.0);
}

TEST(MetricsRegistry, ClearBumpsEpoch) {
  MetricsRegistry reg;
  const std::uint64_t before = reg.clear_epoch();
  reg.counter("x").add(1);
  reg.clear();
  EXPECT_EQ(reg.clear_epoch(), before + 1);
}

TEST(ScopedTimer, RecordsIntoRegistry) {
  MetricsRegistry reg;
  {
    ScopedTimer t(reg, "phase");
    EXPECT_EQ(t.path(), "phase");
    EXPECT_GE(t.elapsed_seconds(), 0.0);
  }
  HistogramSnapshot s = reg.histogram("time/phase").snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_GE(s.sum, 0.0);
}

TEST(ScopedTimer, NestingBuildsHierarchicalPaths) {
  MetricsRegistry reg;
  EXPECT_EQ(ScopedTimer::current_path(), "");
  {
    ScopedTimer outer(reg, "plan");
    EXPECT_EQ(ScopedTimer::current_path(), "plan");
    {
      ScopedTimer inner(reg, "optimize");
      EXPECT_EQ(inner.path(), "plan/optimize");
      EXPECT_EQ(ScopedTimer::current_path(), "plan/optimize");
    }
    EXPECT_EQ(ScopedTimer::current_path(), "plan");
  }
  EXPECT_EQ(ScopedTimer::current_path(), "");
  EXPECT_EQ(reg.histogram("time/plan").count(), 1);
  EXPECT_EQ(reg.histogram("time/plan/optimize").count(), 1);
}

TEST(ScopedTimer, StacksArePerThread) {
  MetricsRegistry reg;
  ScopedTimer outer(reg, "main_thread");
  std::string other_path;
  std::thread([&] {
    ScopedTimer t(reg, "worker");
    other_path = t.path();
  }).join();
  // The worker thread does not inherit this thread's stack.
  EXPECT_EQ(other_path, "worker");
}

}  // namespace
}  // namespace fusecu
