#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/units.hpp"

namespace fusecu {
namespace {

TEST(ArgParser, FlagsOptionsAndPositionals) {
  ArgParser p({"--validate"}, {"--op", "--buffer"});
  const char* argv[] = {"prog", "--op", "1024", "768", "768", "--buffer", "512KB", "--validate"};
  p.parse(8, argv);
  EXPECT_TRUE(p.has_flag("--validate"));
  EXPECT_EQ(p.option("--op").value(), "1024");
  EXPECT_EQ(p.option_bytes("--buffer", 0), 512 * kKiB);
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"768", "768"}));
}

TEST(ArgParser, DefaultsWhenAbsent) {
  ArgParser p({}, {"--buffer", "--count"});
  const char* argv[] = {"prog"};
  p.parse(1, argv);
  EXPECT_FALSE(p.has_flag("--anything"));
  EXPECT_EQ(p.option_bytes("--buffer", 42), 42);
  EXPECT_EQ(p.option_int("--count", 7), 7);
}

TEST(ArgParser, RejectsUnknownAndMalformed) {
  ArgParser p({"--f"}, {"--o"});
  const char* unknown[] = {"prog", "--nope"};
  EXPECT_THROW(p.parse(2, unknown), std::invalid_argument);
  ArgParser q({}, {"--o"});
  const char* missing_value[] = {"prog", "--o"};
  EXPECT_THROW(q.parse(2, missing_value), std::invalid_argument);
  ArgParser r({}, {"--n"});
  const char* bad_int[] = {"prog", "--n", "12x"};
  r.parse(3, bad_int);
  EXPECT_THROW(r.option_int("--n", 0), std::invalid_argument);
}

TEST(ArgParser, OptionUint64) {
  ArgParser p({}, {"--seed"});
  const char* decimal[] = {"prog", "--seed", "12345"};
  p.parse(3, decimal);
  EXPECT_EQ(p.option_uint64("--seed", 0), 12345u);

  ArgParser q({}, {"--seed"});
  const char* hex[] = {"prog", "--seed", "0x5eed"};
  q.parse(3, hex);
  EXPECT_EQ(q.option_uint64("--seed", 0), 0x5eedu);

  ArgParser absent({}, {"--seed"});
  const char* none[] = {"prog"};
  absent.parse(1, none);
  EXPECT_EQ(absent.option_uint64("--seed", 42), 42u);

  for (const char* bad : {"-1", "12x", "", "seed"}) {
    ArgParser r({}, {"--seed"});
    const char* argv[] = {"prog", "--seed", bad};
    r.parse(3, argv);
    EXPECT_THROW(r.option_uint64("--seed", 0), std::invalid_argument) << bad;
  }
}

TEST(ParseBytes, SuffixesAndErrors) {
  EXPECT_EQ(parse_bytes("1024"), 1024);
  EXPECT_EQ(parse_bytes("512KB"), 512 * kKiB);
  EXPECT_EQ(parse_bytes("512kb"), 512 * kKiB);
  EXPECT_EQ(parse_bytes("8MB"), 8 * kMiB);
  EXPECT_EQ(parse_bytes("2GiB"), 2 * kGiB);
  EXPECT_EQ(parse_bytes("1.5K"), 1536);
  EXPECT_THROW(parse_bytes(""), std::invalid_argument);
  EXPECT_THROW(parse_bytes("12XB"), std::invalid_argument);
  EXPECT_THROW(parse_bytes("abc"), std::invalid_argument);
}

}  // namespace
}  // namespace fusecu
