#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "principles/principle_optimizer.hpp"
#include "search/exhaustive.hpp"
#include "test_util.hpp"

namespace fusecu {
namespace {

// --- The paper's worked example (Sec. III-A4): BERT MM 1024x768x768 with a
// 512K-element buffer lies between D_min^2/2 = 294,912 and |Tensor_min| =
// 589,824, so the optimal dataflow is Two-NRA with K untiled; tensor B's
// memory access drops to 2KL while A and C are non-redundant.
TEST(PrincipleOptimizer, PaperWorkedExampleBert) {
  TensorOp op = TensorOp::matmul("bert", 1024, 768, 768);
  const BufferSize bs = 512 * 1024;

  EXPECT_EQ(classify_buffer(op, bs), BufferClass::kMedium);
  IntraOptResult r = optimize_intra(op, bs);
  EXPECT_EQ(r.nra, NraKind::kTwo);
  EXPECT_TRUE(r.dataflow.untiled(op, mm::kDimK));
  EXPECT_EQ(r.access.per_tensor[mm::kTensorA], 1024LL * 768);
  EXPECT_EQ(r.access.per_tensor[mm::kTensorB], 2 * 768LL * 768);
  EXPECT_EQ(r.access.per_tensor[mm::kTensorC], 1024LL * 768);
  EXPECT_LE(r.access.buffer_footprint, bs);
}

TEST(BufferClass, ThresholdsMatchPaperTable) {
  TensorOp op = TensorOp::matmul("bert", 1024, 768, 768);
  const Index dmin2 = 768 * 768;
  const Index tensor_min = 768 * 768;
  EXPECT_EQ(classify_buffer(op, dmin2 / 4), BufferClass::kTiny);
  EXPECT_EQ(classify_buffer(op, dmin2 / 4 + 1), BufferClass::kSmall);
  EXPECT_EQ(classify_buffer(op, dmin2 / 2), BufferClass::kSmall);
  EXPECT_EQ(classify_buffer(op, dmin2 / 2 + 1), BufferClass::kMedium);
  EXPECT_EQ(classify_buffer(op, tensor_min), BufferClass::kMedium);
  EXPECT_EQ(classify_buffer(op, tensor_min + 1), BufferClass::kLarge);

  ShiftRange range = single_two_shift_range(op);
  EXPECT_EQ(range.low, dmin2 / 4);
  EXPECT_EQ(range.high, dmin2 / 2);
}

// --- Principle 1: stationary tiles maximized, third dim at 1; the
// smallest tensor (here C, since K dominates) becomes stationary.
TEST(Principle1, SingleNraConstruction) {
  TensorOp op = TensorOp::matmul("mm", 512, 4096, 512);
  const BufferSize bs = 16 * 1024;  // tiny vs D_min^2/4 = 64K
  ASSERT_EQ(classify_buffer(op, bs), BufferClass::kTiny);

  auto candidates = make_single_nra(op, bs, mm::kTensorC);
  ASSERT_FALSE(candidates.empty());
  for (const auto& c : candidates) {
    AccessBreakdown b = evaluate_access(op, c.dataflow);
    EXPECT_LE(b.buffer_footprint, bs);
    EXPECT_EQ(c.dataflow.tile[mm::kDimK], 1);  // non-stationary dim minimized
  }
  IntraOptResult r = optimize_intra(op, bs);
  EXPECT_EQ(r.nra, NraKind::kSingle);
  EXPECT_EQ(stationary_tensor(op, r.dataflow), mm::kTensorC);
  // Both stationary tiles are maximized near sqrt(BS) (trip-count rounding
  // may trade a few elements between them, but neither collapses).
  EXPECT_GE(r.dataflow.tile[mm::kDimM], 96);
  EXPECT_GE(r.dataflow.tile[mm::kDimL], 96);
  EXPECT_EQ(r.dataflow.tile[mm::kDimK], 1);
}

TEST(Principle1, ChoosesSmallestTensorAsStationary) {
  // B (K x L = 64 x 64) is far smaller than A and C: keeping it stationary
  // removes the smallest single-access term, as Principle 1 prescribes.
  TensorOp op = TensorOp::matmul("mm", 4096, 64, 64);
  const BufferSize bs = 512;  // tiny vs D_min^2/4 = 1024
  IntraOptResult r = optimize_intra(op, bs);
  EXPECT_EQ(r.nra, NraKind::kSingle);
  EXPECT_EQ(stationary_tensor(op, r.dataflow), mm::kTensorB);
}

// --- Principle 2: feasibility boundary and closed-form tile.
TEST(Principle2, TwoNraConstruction) {
  TensorOp op = TensorOp::matmul("mm", 1024, 768, 768);
  // Below 2*D_U + 1 the construction cannot fit.
  EXPECT_FALSE(make_two_nra(op, 2 * 768, mm::kDimK, mm::kDimM).has_value());
  auto c = make_two_nra(op, 512 * 1024, mm::kDimK, mm::kDimM);
  ASSERT_TRUE(c.has_value());
  const Index t_m = c->dataflow.tile[mm::kDimM];
  EXPECT_EQ(t_m, (512 * 1024 - 768) / 769);
  EXPECT_EQ(c->dataflow.tile[mm::kDimL], 1);
  EXPECT_TRUE(c->dataflow.untiled(op, mm::kDimK));
  EXPECT_EQ(classify_nra(op, c->dataflow), NraKind::kTwo);
}

// --- Principle 3: resident smallest tensor, everything accessed once.
TEST(Principle3, ThreeNraConstruction) {
  TensorOp op = TensorOp::matmul("mm", 2048, 256, 256);
  const Index b_size = 256 * 256;
  EXPECT_FALSE(make_three_nra(op, b_size + 511, mm::kTensorB).has_value());
  auto c = make_three_nra(op, b_size + 512, mm::kTensorB);
  ASSERT_TRUE(c.has_value());
  AccessBreakdown b = evaluate_access(op, c->dataflow);
  EXPECT_EQ(b.total, op.ideal_min_access());
  EXPECT_EQ(classify_nra(op, c->dataflow), NraKind::kThree);
}

TEST(PrincipleOptimizer, LargeBufferReachesIdealLowerBound) {
  TensorOp op = TensorOp::matmul("mm", 512, 384, 384);
  const BufferSize bs = 4 * 1024 * 1024;
  ASSERT_EQ(classify_buffer(op, bs), BufferClass::kLarge);
  IntraOptResult r = optimize_intra(op, bs);
  EXPECT_EQ(r.nra, NraKind::kThree);
  EXPECT_EQ(r.access.total, op.ideal_min_access());
}

TEST(PrincipleOptimizer, ThrowsWhenBufferCannotHoldWorkingSet) {
  TensorOp op = TensorOp::matmul("mm", 64, 64, 64);
  EXPECT_THROW(optimize_intra(op, 2), std::invalid_argument);
  EXPECT_NO_THROW(optimize_intra(op, 3));
}

TEST(PrincipleOptimizer, MonotoneInBufferSize) {
  TensorOp op = TensorOp::matmul("mm", 1024, 768, 768);
  AccessCount prev = optimize_intra(op, 1024).access.total;
  for (BufferSize bs = 2048; bs <= 2 * 1024 * 1024; bs *= 2) {
    AccessCount cur = optimize_intra(op, bs).access.total;
    EXPECT_LE(cur, prev) << "more buffer must never cost more accesses, bs=" << bs;
    prev = cur;
  }
}

// --- The headline optimality claim: the one-shot principled dataflow is at
// least as good as full exhaustive search over loop orders and the
// divisor/power-of-two tile grid, across random shapes and buffer classes.
struct OptimalityCase {
  Index m, k, l;
  BufferSize bs;
};

class PrincipleOptimality : public ::testing::TestWithParam<OptimalityCase> {};

TEST_P(PrincipleOptimality, MatchesOrBeatsExhaustiveSearch) {
  const auto& p = GetParam();
  TensorOp op = TensorOp::matmul("mm", p.m, p.k, p.l);
  IntraOptResult principled = optimize_intra(op, p.bs);
  auto searched = exhaustive_intra(op, p.bs);
  ASSERT_TRUE(searched.has_value());
  EXPECT_LE(principled.access.total, searched->access.total)
      << "shape " << op.to_string() << " bs=" << p.bs << " principled rule " << principled.rule
      << " vs searched " << searched->dataflow.to_string(op);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndBuffers, PrincipleOptimality,
    ::testing::Values(
        // Paper example across the four buffer classes.
        OptimalityCase{1024, 768, 768, 64 * 1024},        // tiny
        OptimalityCase{1024, 768, 768, 200 * 1024},       // small
        OptimalityCase{1024, 768, 768, 512 * 1024},       // medium
        OptimalityCase{1024, 768, 768, 1024 * 1024},      // large
        // Attention-score shapes (square L) and skinny heads.
        OptimalityCase{256, 64, 256, 16 * 1024},
        OptimalityCase{4096, 128, 4096, 128 * 1024},
        OptimalityCase{4096, 128, 4096, 1024 * 1024},
        // Degenerate / extreme aspect ratios.
        OptimalityCase{1, 512, 512, 4096},
        OptimalityCase{512, 1, 512, 4096},
        OptimalityCase{512, 512, 1, 4096},
        OptimalityCase{7, 13, 17, 64},
        OptimalityCase{127, 127, 127, 1000},
        OptimalityCase{128, 4096, 128, 32 * 1024},
        OptimalityCase{2048, 2048, 16, 8 * 1024},
        OptimalityCase{16, 16, 16, 3},
        OptimalityCase{16, 16, 16, 900}));

class PrincipleOptimalityRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrincipleOptimalityRandom, MatchesOrBeatsExhaustiveSearch) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    TensorOp op = test_util::random_matmul(rng, 300);
    const BufferSize bs = gen_buffer_size(rng, op);
    IntraOptResult principled = optimize_intra(op, bs);
    auto searched = exhaustive_intra(op, bs);
    ASSERT_TRUE(searched.has_value());
    EXPECT_LE(principled.access.total, searched->access.total)
        << "shape " << op.to_string() << " bs=" << bs;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrincipleOptimalityRandom,
                         ::testing::Values(101ull, 102ull, 103ull, 104ull, 105ull, 106ull,
                                           107ull, 108ull, 109ull, 110ull));

// --- Buffer classification predicts the winning regime (Sec. III-A4),
// with the paper's own caveats: the Single/Two shift point floats inside
// the "small" band, and Three-NRA needs slack above |Tensor_min| for the
// moving tiles.
class RegimePrediction : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegimePrediction, ClassMatchesRealizedRegime) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const Index m = rng.uniform(16, 400);
    const Index k = rng.uniform(16, 400);
    const Index l = rng.uniform(16, 400);
    TensorOp op = TensorOp::matmul("rand", m, k, l);
    const Index dmin = op.min_extent();
    const Index tmin = op.tensor_size(op.smallest_tensor());

    // Deep inside tiny: Single-NRA wins.
    if (dmin * dmin / 8 >= 3) {
      IntraOptResult r = optimize_intra(op, dmin * dmin / 8);
      EXPECT_EQ(r.nra, NraKind::kSingle) << op.to_string();
    }
    // Deep inside medium: Two-NRA wins.
    {
      BufferSize bs = (dmin * dmin / 2 + tmin) / 2 + dmin;  // mid-band
      if (bs > dmin * dmin / 2 && bs <= tmin) {
        IntraOptResult r = optimize_intra(op, bs);
        EXPECT_EQ(r.nra, NraKind::kTwo) << op.to_string() << " bs=" << bs;
      }
    }
    // Comfortably large: Three-NRA, ideal minimum.
    {
      IntraOptResult r = optimize_intra(op, 2 * tmin + 2 * dmin);
      EXPECT_EQ(r.nra, NraKind::kThree) << op.to_string();
      EXPECT_EQ(r.access.total, op.ideal_min_access());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegimePrediction,
                         ::testing::Values(21ull, 22ull, 23ull, 24ull, 25ull));

// --- Sec. IV-B: with BS = N^2 PE registers, untiling is optimal only when
// D_min < 2N — the insight that sizes FuseCU's adaptive arrays at 2N.
class RegisterLevel2N : public ::testing::TestWithParam<Index> {};

TEST_P(RegisterLevel2N, UntilingRespectsTheTwoNBound) {
  const Index array_n = GetParam();
  const BufferSize registers = array_n * array_n;
  // Guaranteed untiling below sqrt(2) * N (medium band at BS = N^2).
  {
    const Index dmin = static_cast<Index>(1.2 * static_cast<double>(array_n));
    TensorOp op = TensorOp::matmul("reg", 64 * array_n, dmin, 64 * array_n);
    IntraOptResult r = optimize_intra(op, registers);
    EXPECT_NE(r.nra, NraKind::kSingle) << "N=" << array_n;
  }
  // Never untiling above 2N (tiny band).
  {
    const Index dmin = 2 * array_n + array_n / 2;
    TensorOp op = TensorOp::matmul("reg", 64 * array_n, dmin, 64 * array_n);
    IntraOptResult r = optimize_intra(op, registers);
    EXPECT_EQ(r.nra, NraKind::kSingle) << "N=" << array_n;
    for (int d = 0; d < 3; ++d) EXPECT_FALSE(r.dataflow.untiled(op, d));
  }
}

INSTANTIATE_TEST_SUITE_P(ArraySizes, RegisterLevel2N,
                         ::testing::Values<Index>(32, 64, 128, 256));

TEST(PrincipleCandidates, ConstantSizedSet) {
  TensorOp op = TensorOp::matmul("mm", 1024, 768, 768);
  auto c = principle_candidates(op, 512 * 1024);
  EXPECT_FALSE(c.empty());
  EXPECT_LE(c.size(), 30u);  // one-shot: a constant handful, not a search
  for (const auto& cand : c) {
    EXPECT_LE(cand.dataflow.buffer_footprint(op), 512 * 1024);
  }
}

}  // namespace
}  // namespace fusecu
