#include <gtest/gtest.h>

#include "sim/compute_unit.hpp"

namespace fusecu {
namespace {

TEST(Matrix, ReferenceMatmul) {
  Matrix a(2, 3);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
  a.at(1, 0) = 4; a.at(1, 1) = 5; a.at(1, 2) = 6;
  Matrix b(3, 2);
  b.at(0, 0) = 7;  b.at(0, 1) = 8;
  b.at(1, 0) = 9;  b.at(1, 1) = 10;
  b.at(2, 0) = 11; b.at(2, 1) = 12;
  Matrix c = matmul_reference(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154);
  EXPECT_THROW(matmul_reference(a, a), std::invalid_argument);
}

TEST(XsPeTest, WeightStationaryMac) {
  XsPe pe;
  pe.set_mode(PeMode::kWeightStationary);
  pe.load_stationary(3.0);
  XsPe::Outputs o = pe.step({/*west=*/2.0, /*north=*/10.0});
  EXPECT_DOUBLE_EQ(o.south, 16.0);  // 10 + 3*2
  EXPECT_DOUBLE_EQ(o.east, 2.0);    // activation forwards
}

TEST(XsPeTest, InputStationaryMac) {
  XsPe pe;
  pe.set_mode(PeMode::kInputStationary);
  pe.load_stationary(4.0);
  XsPe::Outputs o = pe.step({/*west=*/5.0, /*north=*/2.0});
  EXPECT_DOUBLE_EQ(o.east, 13.0);  // 5 + 4*2: psum flows eastward
  EXPECT_DOUBLE_EQ(o.south, 2.0);  // operand forwards
}

TEST(XsPeTest, OutputStationaryAccumulates) {
  XsPe pe;
  pe.set_mode(PeMode::kOutputStationary);
  pe.step({2.0, 3.0});
  pe.step({4.0, 5.0});
  EXPECT_DOUBLE_EQ(pe.accumulator(), 26.0);
  XsPe::Outputs o = pe.step({1.0, 1.0});
  EXPECT_DOUBLE_EQ(o.east, 1.0);
  EXPECT_DOUBLE_EQ(o.south, 1.0);
}

TEST(XsPeTest, FusionMuxPromotesAccumulator) {
  XsPe pe;
  pe.set_mode(PeMode::kOutputStationary);
  pe.step({6.0, 7.0});
  pe.promote_accumulator_to_stationary();
  EXPECT_DOUBLE_EQ(pe.stationary(), 42.0);
  EXPECT_DOUBLE_EQ(pe.accumulator(), 0.0);
}

struct MmShape {
  Index m, k, l;
};

class SystolicCorrectness : public ::testing::TestWithParam<MmShape> {};

TEST_P(SystolicCorrectness, WsMatchesReference) {
  const auto& s = GetParam();
  if (s.k > 8 || s.l > 8) GTEST_SKIP() << "WS needs K, L <= N";
  ComputeUnit cu(8);
  Matrix a = make_test_matrix(s.m, s.k, 1);
  Matrix b = make_test_matrix(s.k, s.l, 2);
  auto r = cu.run_ws(a, b);
  EXPECT_EQ(r.output, matmul_reference(a, b));
  EXPECT_EQ(r.cycles, s.m + s.k + s.l - 2 + s.k);
}

TEST_P(SystolicCorrectness, OsMatchesReference) {
  const auto& s = GetParam();
  if (s.m > 8 || s.l > 8) GTEST_SKIP() << "OS needs M, L <= N";
  ComputeUnit cu(8);
  Matrix a = make_test_matrix(s.m, s.k, 3);
  Matrix b = make_test_matrix(s.k, s.l, 4);
  auto r = cu.run_os(a, b);
  EXPECT_EQ(r.output, matmul_reference(a, b));
  EXPECT_EQ(r.cycles, s.k + s.m + s.l - 2 + s.m);
}

TEST_P(SystolicCorrectness, IsMatchesReference) {
  const auto& s = GetParam();
  if (s.m > 8 || s.k > 8) GTEST_SKIP() << "IS needs M, K <= N";
  ComputeUnit cu(8);
  Matrix a = make_test_matrix(s.m, s.k, 5);
  Matrix b = make_test_matrix(s.k, s.l, 6);
  auto r = cu.run_is(a, b);
  EXPECT_EQ(r.output, matmul_reference(a, b));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SystolicCorrectness,
                         ::testing::Values(MmShape{1, 1, 1}, MmShape{8, 8, 8}, MmShape{3, 5, 7},
                                           MmShape{8, 2, 6}, MmShape{20, 8, 8}, MmShape{5, 8, 3},
                                           MmShape{7, 1, 8}, MmShape{2, 8, 1}));

TEST(ComputeUnitTest, RejectsOversizedTiles) {
  ComputeUnit cu(4);
  Matrix a5(5, 4), b4(4, 4), b5(4, 5);
  EXPECT_THROW(cu.run_os(a5, b4), std::invalid_argument);       // M > N
  EXPECT_THROW(cu.run_ws(Matrix(4, 5), Matrix(5, 4)), std::invalid_argument);  // K > N
  EXPECT_THROW(cu.run_is(a5, b4), std::invalid_argument);       // M > N
  EXPECT_THROW(cu.run_ws(a5, b5), std::invalid_argument);       // L > N
}

// --- The architectural headline: fused execution on the PEs, intermediate
// never leaving the array.
class TileFusionCorrectness : public ::testing::TestWithParam<MmShape> {};

TEST_P(TileFusionCorrectness, MatchesReferenceChain) {
  const auto& s = GetParam();
  ComputeUnit cu(8);
  Matrix a = make_test_matrix(s.m, s.k, 7);
  Matrix b = make_test_matrix(s.k, 8, 8);   // C is m x 8 (fits the array)
  Matrix d = make_test_matrix(8, s.l, 9);
  auto r = cu.run_tile_fusion(a, b, d);
  Matrix expected = matmul_reference(matmul_reference(a, b), d);
  EXPECT_EQ(r.output, expected);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TileFusionCorrectness,
                         ::testing::Values(MmShape{8, 8, 8}, MmShape{8, 20, 8}, MmShape{3, 4, 5},
                                           MmShape{8, 1, 16}, MmShape{1, 7, 1}));

TEST(TileFusionTraffic, IntermediateNeverCrossesTheEdge) {
  const Index m = 8, k = 16, l = 8, n2 = 12;
  ComputeUnit cu(8);
  Matrix a = make_test_matrix(m, k, 11);
  Matrix b = make_test_matrix(k, l, 12);
  Matrix d = make_test_matrix(l, n2, 13);

  // Unfused: OS for C, drain it, then IS consuming it.
  cu.reset_traffic();
  auto c_result = cu.run_os(a, b);
  auto e_unfused = cu.run_is(c_result.output, d);
  const AccessCount unfused_traffic =
      cu.input_traffic() + cu.output_traffic() + cu.preload_traffic();

  // Fused: same math, C promoted in place.
  cu.reset_traffic();
  auto e_fused = cu.run_tile_fusion(a, b, d);
  const AccessCount fused_traffic =
      cu.input_traffic() + cu.output_traffic() + cu.preload_traffic();

  EXPECT_EQ(e_fused.output, e_unfused.output);
  // Fusion saves exactly C's drain (m*l) plus its re-load (m*l preload).
  EXPECT_EQ(unfused_traffic - fused_traffic, 2 * m * l);
  // And saves cycles: the drain + reload phases disappear.
  EXPECT_LT(e_fused.cycles, c_result.cycles + e_unfused.cycles);
}

TEST(XsPeTest, DrainShiftsAccumulatorEast) {
  XsPe pe;
  pe.set_mode(PeMode::kOutputStationary);
  pe.step({3.0, 4.0});  // accumulator = 12
  pe.set_mode(PeMode::kDrain);
  XsPe::Outputs o = pe.step({/*west=*/7.0, /*north=*/0.0});
  EXPECT_DOUBLE_EQ(o.east, 12.0);           // emits its own accumulator
  EXPECT_DOUBLE_EQ(pe.accumulator(), 7.0);  // adopts the neighbor's
}

TEST(ComputeUnitTest, DrainEastMatchesDirectAccumulatorRead) {
  const Index m = 5, k = 9, l = 7;
  ComputeUnit cu(8);
  Matrix a = make_test_matrix(m, k, 31);
  Matrix b = make_test_matrix(k, l, 32);
  auto os = cu.run_os(a, b);
  auto drained = cu.drain_east(m, l);
  EXPECT_EQ(drained.output, os.output);
  EXPECT_EQ(drained.cycles, 2 * 8 - 1);
  EXPECT_THROW(cu.drain_east(9, 4), std::invalid_argument);
  EXPECT_THROW(cu.drain_east(4, 0), std::invalid_argument);
}

TEST(ComputeUnitTest, TrafficCountsMatchOperandVolumes) {
  const Index m = 6, k = 4, l = 5;
  ComputeUnit cu(8);
  Matrix a = make_test_matrix(m, k, 21);
  Matrix b = make_test_matrix(k, l, 22);
  cu.reset_traffic();
  cu.run_ws(a, b);
  EXPECT_EQ(cu.preload_traffic(), k * l);  // B resident
  EXPECT_EQ(cu.input_traffic(), m * k);    // A streamed
  EXPECT_EQ(cu.output_traffic(), m * l);   // C collected
}

}  // namespace
}  // namespace fusecu
