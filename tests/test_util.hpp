#pragma once

#include <cstdint>

#include "check/gen.hpp"
#include "fusion/fused_pair.hpp"
#include "sim/matrix.hpp"

/// \file test_util.hpp
/// Shared random-workload helpers for the property-based tests, built on the
/// conformance harness generators (src/check/gen.hpp) so the tests and
/// `fusecu_check` exercise the same adversarial distributions (unit dims,
/// primes, powers of two, regime-biased buffer sizes).
///
/// Matrix seeding convention: deterministic input matrices derive from one
/// workload seed via fixed odd multipliers, so a failing parameterized test
/// prints everything needed to replay it (`Seeds/<suite>.<test>/<seed>`).

namespace fusecu::test_util {

/// Random matmul with extents capped at \p max_extent, drawn from the
/// harness's size-biased extent distribution.
inline TensorOp random_matmul(Rng& rng, Index max_extent = 96) {
  GenLimits limits;
  limits.max_extent = max_extent;
  return gen_matmul(rng, limits);
}

/// Random fused pair (A x B) x D with extents capped at \p max_extent.
inline FusedPair random_pair(Rng& rng, Index max_extent = 96) {
  GenLimits limits;
  limits.max_extent = max_extent;
  return gen_fused_pair(rng, limits);
}

/// Random valid phased schedule for \p pair; the M/L tiles are additionally
/// capped at \p array_cap so the schedule stays executable on a small
/// simulated array.
inline PhasedFusedDataflow random_phased(Rng& rng, const FusedPair& pair, Index array_cap = 8) {
  PhasedFusedDataflow df;
  df.t_m = rng.uniform(1, std::min<Index>(pair.m(), array_cap));
  df.t_k = rng.uniform(1, pair.k());
  df.t_l = rng.uniform(1, std::min<Index>(pair.l(), array_cap));
  df.t_n = rng.uniform(1, pair.n());
  df.l_outer = rng.chance(0.5);
  return df;
}

/// Deterministic operand matrices for an intra-op matmul.
struct IntraInputs {
  Matrix a, b;
};
inline IntraInputs make_intra_inputs(const TensorOp& op, std::uint64_t seed) {
  return {make_test_matrix(op.extent(mm::kDimM), op.extent(mm::kDimK), seed * 31 + 1),
          make_test_matrix(op.extent(mm::kDimK), op.extent(mm::kDimL), seed * 37 + 2)};
}

/// Deterministic operand matrices for a fused pair (A x B) x D.
struct FusedInputs {
  Matrix a, b, d;
};
inline FusedInputs make_fused_inputs(const FusedPair& pair, std::uint64_t seed) {
  return {make_test_matrix(pair.m(), pair.k(), seed * 31 + 1),
          make_test_matrix(pair.k(), pair.l(), seed * 37 + 2),
          make_test_matrix(pair.l(), pair.n(), seed * 41 + 3)};
}

}  // namespace fusecu::test_util
