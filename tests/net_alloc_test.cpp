#include <gtest/gtest.h>
#ifdef FUSECU_ALLOC_BACKTRACE
#include <execinfo.h>
#endif
#include <poll.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "serve/plan_service.hpp"

/// Zero-allocation contract of the reactor hot path (net/reactor.hpp):
/// once warmed up, steady-state request handling on the reactor thread —
/// read, decode, admit, post to the pool, receive the completion, write —
/// performs no heap allocations.  Verified the only way that can't rot: a
/// replaced global operator new counts allocations made by one registered
/// thread while armed, and the armed window covers a full pipelined
/// request burst on the loop thread.
///
/// This test gets its own binary because replacing ::operator new is
/// process-global; keep it out of the TSan job (the sanitizer interposes
/// its own allocator and the count would measure the tool, not the code).

namespace {

std::atomic<bool> g_armed{false};
std::atomic<unsigned long> g_monitored{0};
std::atomic<long> g_allocs{0};

inline void note_alloc() {
  if (g_armed.load(std::memory_order_relaxed) &&
      g_monitored.load(std::memory_order_relaxed) ==
          reinterpret_cast<unsigned long>(pthread_self())) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
#ifdef FUSECU_ALLOC_BACKTRACE
    void* frames[32];
    const int n = backtrace(frames, 32);
    backtrace_symbols_fd(frames, n, 2);
    std::fprintf(stderr, "---- end alloc backtrace ----\n");
#endif
  }
}

inline void* counted_alloc(std::size_t n) {
  void* p = std::malloc(n ? n : 1);
  if (p != nullptr) note_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace fusecu {
namespace {

/// Minimal blocking loopback client (mirrors net_server_test's, kept local
/// because this binary must stay dependency-light around the new hooks).
class Client {
 public:
  explicit Client(std::uint16_t port) {
    std::string error;
    fd_ = connect_tcp("127.0.0.1", port, error);
    EXPECT_GE(fd_, 0) << error;
  }
  ~Client() {
    if (fd_ >= 0) close_fd(fd_);
  }

  void send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Reads until \p n newline-terminated lines arrived (or 30s passed).
  int read_lines(int n) {
    int seen = 0;
    std::string buf;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (seen < n && std::chrono::steady_clock::now() < deadline) {
      struct pollfd pfd = {fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 1000) <= 0) continue;
      char chunk[16 * 1024];
      const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r <= 0) {
        if (r < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        break;
      }
      for (ssize_t i = 0; i < r; ++i) {
        if (chunk[i] == '\n') ++seen;
      }
    }
    return seen;
  }

 private:
  int fd_ = -1;
};

std::string burst(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    // Fixed-width ids: every warmup/armed burst reuses identical request
    // and response byte lengths, so recycled buffer capacities line up.
    char id[8];
    std::snprintf(id, sizeof(id), "r%02d", i);
    out += "{\"id\":\"" + std::string(id) +
           "\",\"op\":\"matmul\",\"m\":96,\"k\":96,\"l\":96,\"buffer\":\"512KB\"}\n";
  }
  return out;
}

TEST(NetAlloc, CountingHookObservesAllocationsOnTheMonitoredThread) {
  // Hook self-check: a trivially-passing zero count must mean "no
  // allocations", not "the replaced operator new never linked in".
  g_monitored.store(reinterpret_cast<unsigned long>(pthread_self()), std::memory_order_relaxed);
  g_allocs.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
  // Direct operator-new call: a new-expression could legally elide the
  // allocation; this cannot.
  void* raw = ::operator new(32);
  g_armed.store(false, std::memory_order_relaxed);
  ::operator delete(raw);
  EXPECT_GE(g_allocs.load(std::memory_order_relaxed), 1)
      << "the counting operator new is not in effect; the zero-alloc assertion below is vacuous";
}

TEST(NetAlloc, SteadyStateReactorThreadMakesZeroHeapAllocations) {
  // Armed before the server starts (fault.hpp threading contract): pool
  // invocations 0 and 1 are the first two warmup requests, so both
  // workers sleep 50 ms at the top of warmup pass 1 and nothing can
  // complete until the decode loop has admitted the whole burst.
  fault::FaultPlan stall;
  stall.events.push_back({fault::Kind::kPoolStall, 0, 50'000});
  stall.events.push_back({fault::Kind::kPoolStall, 1, 50'000});
  fault::ScopedFaultPlan scoped_plan(stall);

  PlanService service(ServeOptions{.threads = 2});
  NetServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;
  // reactors=0 runs the same Reactor hot path inline on the thread that
  // calls run(), which is the thread we register with the counting hook.
  options.reactors = 0;
  options.idle_timeout_ms = 0;   // keep the timer wheel empty (cascades may allocate)
  options.request_timeout_ms = 0;
  NetServer server(service, options);
  std::thread loop([&] {
    g_monitored.store(reinterpret_cast<unsigned long>(pthread_self()), std::memory_order_relaxed);
    server.run();
  });

  constexpr int kBurst = 32;
  const std::string requests = burst(kBurst);
  Client client(server.port());

  // Warmup pass 1 runs with both pool workers stalled (the plan armed
  // above) so the decode loop acquires its full kBurst-node working set
  // from the arena before any completion can recycle a node.  Without the
  // stall, how deep a burst dips into the never-touched (capacity-zero)
  // tail of the LIFO free list depends on pool/reactor interleaving, and
  // first-touch of a virgin node is a legitimate one-time warmup
  // allocation, not a steady-state one.  With depth kBurst warmed, LIFO
  // order guarantees any later burst with <= kBurst requests outstanding
  // only ever pops warm nodes.  Pass 2 (the stall events are one-shot and
  // spent) settles every other reused buffer (decoder, pending ring,
  // completion scratch) at its steady-state capacity and leaves the plan
  // cache warm.
  client.send_all(requests);
  ASSERT_EQ(client.read_lines(kBurst), kBurst) << "stalled warmup pass";
  client.send_all(requests);
  ASSERT_EQ(client.read_lines(kBurst), kBurst) << "settle warmup pass";

  g_allocs.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
  client.send_all(requests);
  ASSERT_EQ(client.read_lines(kBurst), kBurst);
  g_armed.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0)
      << "the reactor thread allocated on the steady-state request path";

  server.request_drain();
  loop.join();
  EXPECT_EQ(server.stats().responses, 3 * kBurst);
}

}  // namespace
}  // namespace fusecu
