#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>

#include "check/conformance.hpp"
#include "common/json_parse.hpp"
#include "tensor/tensor_op.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace fusecu {
namespace {

/// The injected-bug fixture from check_shrink_test: an analytical-only run
/// whose intra mutator flips the M tile, so every trial fails and the check
/// layer emits spans and error log lines into the armed recorder.
CheckOptions flipped_tile_max() {
  CheckOptions opts;
  opts.with_executor = false;
  opts.with_serve = false;
  opts.with_arch = false;
  opts.intra_mutator = [](const TensorOp& op, IntraOptResult& r) {
    Index& t_m = r.dataflow.tile[static_cast<std::size_t>(mm::kDimM)];
    t_m = (t_m == op.extent(mm::kDimM)) ? 1 : op.extent(mm::kDimM);
  };
  return opts;
}

Workload intra_workload(Index m, Index k, Index l, BufferSize bs) {
  Workload w;
  w.kind = WorkloadKind::kIntra;
  w.m = m;
  w.k = k;
  w.l = l;
  w.bs = bs;
  return w;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(FlightRecorder, FailingTrialLandsSpansLogsAndMetricsInDump) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.arm(256);
  ASSERT_TRUE(flight.armed());
  ASSERT_TRUE(span_recording_enabled());  // arming alone enables spans

  CheckReport report = check_workload(intra_workload(37, 23, 41, 200), flipped_tile_max());
  ASSERT_FALSE(report.ok()) << "injected bug must fail so the dump has content";
  flight.refresh_metrics_index();

  std::ostringstream os;
  flight.dump_json(os);
  JsonValuePtr dump = parse_json(os.str());

  EXPECT_TRUE(dump->get("armed")->as_bool());
  EXPECT_GE(dump->get("recorded")->as_number(), 1.0);
  EXPECT_TRUE(dump->has("exported_at"));

  bool saw_trial_span = false, saw_error_log = false, saw_connected_child = false;
  for (const JsonValuePtr& e : dump->get("events")->as_array()) {
    const std::string kind = e->get("kind")->as_string();
    if (kind == "span" && e->get("name")->as_string() == "check/trial") {
      saw_trial_span = true;
      // The failing trial's root span carries the workload description.
      EXPECT_NE(e->get("detail")->as_string().find("intra"), std::string::npos);
    }
    if (kind == "log" && e->get("component")->as_string() == "check" &&
        e->get("level")->as_string() == "error") {
      saw_error_log = true;
      EXPECT_FALSE(e->get("msg")->as_string().empty());
    }
    if (kind == "span" && e->has("parent") &&
        e->get("parent")->as_string() != "0000000000000000") {
      saw_connected_child = true;
    }
  }
  EXPECT_TRUE(saw_trial_span) << "dump must retain the failing trial's root span";
  EXPECT_TRUE(saw_error_log) << "dump must retain the conformance failure log line";
  EXPECT_TRUE(saw_connected_child) << "spans in the dump must keep parent links";

  // The metrics snapshot rides along, including the check-layer counters
  // the failing run just bumped.
  JsonValuePtr counters = dump->get("metrics")->get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->get("check/trials")->as_number(), 1.0);

  flight.disarm();
  EXPECT_FALSE(flight.armed());
}

TEST(FlightRecorder, OverwrittenCountsRetentionOverflow) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.arm();  // capacity was fixed by the first arm() in this process
  const std::uint64_t cap = flight.events_per_thread();
  ASSERT_GE(cap, 16u);

  const std::uint64_t before_recorded = flight.recorded();
  const std::uint64_t before_overwritten = flight.overwritten();
  const int bursts = static_cast<int>(cap) + 50;
  for (int i = 0; i < bursts; ++i) {
    ScopedSpan span("burst");
  }

  EXPECT_EQ(flight.recorded() - before_recorded, static_cast<std::uint64_t>(bursts));
  // This thread's ring wrapped, so at least the overflow past capacity on
  // this ring is accounted as overwritten.
  EXPECT_GE(flight.overwritten() - before_overwritten, 50u);
  flight.disarm();

  // Disarmed: spans stop landing in the rings.
  const std::uint64_t after = flight.recorded();
  { ScopedSpan span("ignored"); }
  EXPECT_EQ(flight.recorded(), after);
}

TEST(FlightRecorder, SignalSafeDumpWritesEventsAndCapturedCounters) {
  FlightRecorder& flight = FlightRecorder::global();
  flight.arm();
  MetricsRegistry::global().counter("flight_test/marker").add(7);
  flight.refresh_metrics_index();  // capture the marker for the signal path
  { ScopedSpan span("flight_test/span"); }

  const std::string path = testing::TempDir() + "flight_signal_dump.txt";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  flight.dump_signal_safe(fd);
  ::close(fd);
  flight.disarm();

  const std::string dump = slurp(path);
  EXPECT_NE(dump.find("event seq="), std::string::npos);
  EXPECT_NE(dump.find("kind=span name=flight_test/span"), std::string::npos);
  EXPECT_NE(dump.find("counter flight_test/marker=7"), std::string::npos);
}

TEST(FlightRecorder, CrashHandlerPreopensItsFd) {
  FlightRecorder& flight = FlightRecorder::global();
  EXPECT_FALSE(flight.install_crash_handler("/nonexistent-dir/flight.dump"));

  const std::string path = testing::TempDir() + "flight_crash_dump.txt";
  ASSERT_TRUE(flight.install_crash_handler(path));
  EXPECT_TRUE(flight.armed());  // installation arms the recorder
  const int fd = flight.crash_fd();
  EXPECT_GE(fd, 0);
  // Async-signal-safety by construction: the handler has nothing left to
  // open — the fd accepts writes right now.
  EXPECT_EQ(::write(fd, "", 0), 0);

  // A second installation re-points the fd without reinstalling handlers.
  const std::string path2 = testing::TempDir() + "flight_crash_dump2.txt";
  ASSERT_TRUE(flight.install_crash_handler(path2));
  EXPECT_GE(flight.crash_fd(), 0);
  flight.disarm();
}

}  // namespace
}  // namespace fusecu
