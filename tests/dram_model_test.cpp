#include <gtest/gtest.h>

#include "principles/principle_optimizer.hpp"
#include "sim/dram_model.hpp"

namespace fusecu {
namespace {

TEST(DramModel, SequentialStreamIsRowHitDominated) {
  AddressStream stream;
  for (std::uint64_t a = 0; a < 4096; ++a) stream.records.push_back({0, a, false});
  DramParams params;  // 1024-element rows
  DramStats stats = replay_dram(stream, params);
  EXPECT_EQ(stats.accesses, 4096);
  EXPECT_EQ(stats.row_misses, 4);  // one activate per row
  EXPECT_GT(stats.hit_rate(), 0.99);
  EXPECT_EQ(stats.cycles, 4096 * params.t_cas + 4 * params.t_activate);
}

TEST(DramModel, RowStridedStreamThrashes) {
  // One access per row, round-robin over many rows mapping to few banks.
  AddressStream stream;
  DramParams params;
  params.banks = 2;
  for (int rep = 0; rep < 4; ++rep) {
    for (std::uint64_t row = 0; row < 16; ++row) {
      stream.records.push_back({0, row * static_cast<std::uint64_t>(params.row_elements), false});
    }
  }
  DramStats stats = replay_dram(stream, params);
  EXPECT_EQ(stats.row_hits, 0);  // every access reopens a row
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
}

TEST(DramModel, ScheduleOrderChangesLocality) {
  // The same operator, same traffic volume, different loop orders: the
  // burst-friendly order must see a better row-hit rate.
  TensorOp op = TensorOp::matmul("mm", 64, 64, 64);
  Dataflow row_friendly = make_dataflow(op, {"M", "K", "L"}, {{"M", 8}, {"K", 8}, {"L", 64}});
  Dataflow column_strided = make_dataflow(op, {"L", "K", "M"}, {{"M", 64}, {"K", 8}, {"L", 1}});
  DramParams params;
  params.row_elements = 64;
  DramStats good = dram_stats(op, row_friendly, params);
  DramStats bad = dram_stats(op, column_strided, params);
  EXPECT_GT(good.hit_rate(), bad.hit_rate());
}

TEST(DramModel, PrincipledScheduleHasHealthyLocality) {
  TensorOp op = TensorOp::matmul("mm", 256, 128, 256);
  IntraOptResult r = optimize_intra(op, 8 * 1024);
  DramStats stats = dram_stats(op, r.dataflow);
  EXPECT_GT(stats.hit_rate(), 0.5);
  EXPECT_GT(stats.cycles, 0);
}

TEST(DramModel, RejectsInvalidInputs) {
  AddressStream empty;
  DramStats s = replay_dram(empty);
  EXPECT_EQ(s.accesses, 0);
  EXPECT_THROW(s.hit_rate(), std::invalid_argument);

  AddressStream truncated;
  truncated.dropped = 1;
  EXPECT_THROW(replay_dram(truncated), std::invalid_argument);

  DramParams bad;
  bad.banks = 0;
  EXPECT_THROW(replay_dram(empty, bad), std::invalid_argument);
}

}  // namespace
}  // namespace fusecu
