#include <gtest/gtest.h>

#include "arch/area_model.hpp"

namespace fusecu {
namespace {

TEST(AreaModel, TpuBaselineHasNoOverhead) {
  AreaBreakdown tpu = area_breakdown(make_tpu_v4i());
  EXPECT_DOUBLE_EQ(tpu.overhead_um2(), 0.0);
  EXPECT_DOUBLE_EQ(tpu.overhead_fraction(), 0.0);
  EXPECT_GT(tpu.total_um2(), 0.0);
}

TEST(AreaModel, BaselineComponentsIdenticalAcrossPlatforms) {
  // Multiplier/adder/accumulator/register/control/softmax areas are shared
  // systolic-array structure, identical everywhere (Fig. 12's premise).
  const double tpu_base = area_breakdown(make_tpu_v4i()).baseline_um2();
  for (const ArchSpec& a : all_platforms()) {
    EXPECT_DOUBLE_EQ(area_breakdown(a).baseline_um2(), tpu_base) << a.name;
  }
}

TEST(AreaModel, FuseCuOverheadNearTwelvePercent) {
  AreaBreakdown fcu = area_breakdown(make_fusecu());
  // Paper: 12.0% over TPUv4i.
  EXPECT_NEAR(fcu.overhead_fraction(), 0.12, 0.01);
}

TEST(AreaModel, FuseCuInterconnectAndControlBelowTenthPercent) {
  AreaBreakdown fcu = area_breakdown(make_fusecu());
  const double frac =
      fcu.component_fraction("FuseCU interconnect") + fcu.component_fraction("fusion control");
  EXPECT_GT(frac, 0.0);
  EXPECT_LT(frac, 0.001);  // paper: < 0.1%
}

TEST(AreaModel, PlanariaInterconnectDominatesItsOverhead) {
  AreaBreakdown planaria = area_breakdown(make_planaria());
  // Paper: Planaria's flexible interconnect costs 12.6%.
  EXPECT_NEAR(planaria.overhead_fraction(), 0.126, 0.01);
  EXPECT_GT(planaria.component_fraction("Planaria interconnect"), 0.10);
}

TEST(AreaModel, GemminiDualModeCheaperThanFullXs) {
  const double gemmini = area_breakdown(make_gemmini()).overhead_fraction();
  const double unfcu = area_breakdown(make_unfcu()).overhead_fraction();
  EXPECT_GT(gemmini, 0.0);
  EXPECT_LT(gemmini, unfcu);
}

TEST(AreaModel, UnfCuIsFuseCuWithoutFusionControl) {
  AreaBreakdown unfcu = area_breakdown(make_unfcu());
  AreaBreakdown fcu = area_breakdown(make_fusecu());
  EXPECT_DOUBLE_EQ(unfcu.component_fraction("fusion control"), 0.0);
  EXPECT_GT(fcu.component_fraction("fusion control"), 0.0);
  EXPECT_LT(unfcu.overhead_um2(), fcu.overhead_um2());
}

TEST(AreaModel, ComponentFractionsSumToOne) {
  for (const ArchSpec& a : all_platforms()) {
    AreaBreakdown b = area_breakdown(a);
    double sum = 0.0;
    for (const AreaComponent& c : b.components) sum += c.area_um2 / b.total_um2();
    EXPECT_NEAR(sum, 1.0, 1e-9) << a.name;
  }
}

}  // namespace
}  // namespace fusecu
