#include <gtest/gtest.h>

#include "dataflow/dataflow.hpp"

namespace fusecu {
namespace {

TEST(Dataflow, TripsUntiledAndFootprint) {
  TensorOp op = TensorOp::matmul("mm", 100, 50, 30);
  Dataflow df = make_dataflow(op, {"M", "K", "L"}, {{"M", 32}, {"K", 50}, {"L", 7}});
  EXPECT_EQ(df.trips(op, mm::kDimM), 4);  // ceil(100 / 32)
  EXPECT_EQ(df.trips(op, mm::kDimK), 1);
  EXPECT_EQ(df.trips(op, mm::kDimL), 5);  // ceil(30 / 7)
  EXPECT_FALSE(df.untiled(op, mm::kDimM));
  EXPECT_TRUE(df.untiled(op, mm::kDimK));
  EXPECT_EQ(df.buffer_footprint(op), 32 * 50 + 50 * 7 + 32 * 7);
  EXPECT_EQ(df.tensor_tile_size(op, mm::kTensorB), 50 * 7);
}

TEST(Dataflow, ToStringUsesDimNames) {
  TensorOp op = TensorOp::matmul("mm", 8, 8, 8);
  Dataflow df = make_dataflow(op, {"L", "M", "K"}, {{"M", 4}});
  const std::string s = df.to_string(op);
  EXPECT_NE(s.find("order=[L,M,K]"), std::string::npos);
  EXPECT_NE(s.find("M:4"), std::string::npos);
  EXPECT_NE(s.find("K:1"), std::string::npos);
}

TEST(Dataflow, MakeDataflowErrors) {
  TensorOp op = TensorOp::matmul("mm", 8, 8, 8);
  EXPECT_THROW(make_dataflow(op, {"M", "L", "Z"}, {}), std::invalid_argument);
  EXPECT_THROW(make_dataflow(op, {"M", "L", "K"}, {{"Z", 2}}), std::invalid_argument);
  EXPECT_THROW(make_dataflow(op, {"M", "L"}, {}), std::invalid_argument);
  EXPECT_THROW(make_dataflow(op, {"M", "M", "K"}, {}), std::invalid_argument);
  EXPECT_THROW(make_dataflow(op, {"M", "L", "K"}, {{"M", 0}}), std::invalid_argument);
  EXPECT_THROW(make_dataflow(op, {"M", "L", "K"}, {{"M", 9}}), std::invalid_argument);
}

TEST(Dataflow, ValidateRejectsArityMismatch) {
  TensorOp op = TensorOp::matmul("mm", 8, 8, 8);
  Dataflow df;
  df.loop_order = {0, 1, 2};
  df.tile = {1, 1};  // short tile vector
  EXPECT_THROW(validate_dataflow(op, df), std::invalid_argument);
}

}  // namespace
}  // namespace fusecu
