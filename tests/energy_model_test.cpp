#include <gtest/gtest.h>

#include "sim/energy_model.hpp"
#include "workloads/model_eval.hpp"

namespace fusecu {
namespace {

ArchPlanStep make_step(AccessCount access, MacCount macs) {
  ArchPlanStep step;
  step.op_indices = {0};
  step.access = access;
  step.macs = macs;
  step.spatial_rows = 128;
  step.spatial_cols = 128;
  return step;
}

TEST(EnergyModel, StepEnergyComponents) {
  ArchSpec arch = make_tpu_v4i();
  EnergyConstants k;
  ArchPlanStep step = make_step(/*access=*/1000, /*macs=*/128 * 128);
  EnergyBreakdown e = step_energy(step, arch, k);
  EXPECT_DOUBLE_EQ(e.dram_pj, 1000.0 * k.dram_pj_per_element);
  // per-MAC buffer traffic on a 128x128 array: 1/128 + 1/128 + 1/128.
  EXPECT_DOUBLE_EQ(e.buffer_pj, 128.0 * 128.0 * (3.0 / 128.0) * k.buffer_pj_per_element);
  EXPECT_DOUBLE_EQ(e.compute_pj, 128.0 * 128.0 * k.mac_pj);
  EXPECT_DOUBLE_EQ(e.total_pj(), e.dram_pj + e.buffer_pj + e.compute_pj);
  EXPECT_GT(e.data_movement_fraction(), 0.0);
  EXPECT_LT(e.data_movement_fraction(), 1.0);
}

TEST(EnergyModel, DramDominatesForMemoryHeavySteps) {
  ArchSpec arch = make_tpu_v4i();
  // Few MACs, huge traffic: the paper's "memory access is the bottleneck".
  EnergyBreakdown heavy = step_energy(make_step(10'000'000, 128 * 128), arch);
  EXPECT_GT(heavy.data_movement_fraction(), 0.99);
  // Huge compute, tiny traffic: compute-dominated.
  EnergyBreakdown light = step_energy(make_step(10, 1'000'000'000), arch);
  EXPECT_LT(light.data_movement_fraction(), 0.3);
}

TEST(EnergyModel, PlanEnergyScalesWithCopies) {
  ArchSpec arch = make_fusecu();
  ArchPlan plan;
  plan.steps = {make_step(1000, 100000)};
  EnergyBreakdown one = plan_energy(plan, arch, 1);
  EnergyBreakdown four = plan_energy(plan, arch, 4);
  EXPECT_DOUBLE_EQ(four.total_pj(), 4.0 * one.total_pj());
}

TEST(EnergyModel, RejectsDegenerateInputs) {
  ArchSpec arch = make_tpu_v4i();
  ArchPlanStep empty = make_step(0, 0);
  EXPECT_THROW(step_energy(empty, arch), std::invalid_argument);
  EnergyBreakdown zero;
  EXPECT_THROW(zero.data_movement_fraction(), std::invalid_argument);
}

TEST(EnergyModel, FusionSavesEnergyOnEveryModel) {
  // The energy counterpart of Fig. 10: FuseCU's DRAM savings translate to
  // lower total energy than every rigid platform, on every model.
  for (const ModelConfig& m : table2_models()) {
    ModelEval tpu = evaluate_model(m, make_tpu_v4i());
    ModelEval unf = evaluate_model(m, make_unfcu());
    ModelEval fcu = evaluate_model(m, make_fusecu());
    EXPECT_GT(tpu.energy_pj, 0.0) << m.name;
    EXPECT_LT(fcu.energy_pj, unf.energy_pj) << m.name;
    EXPECT_LT(unf.energy_pj, tpu.energy_pj) << m.name;
    // Data movement dominates on the rigid platform (the paper's premise).
    EXPECT_GT(tpu.energy_movement_fraction, 0.5) << m.name;
  }
}

}  // namespace
}  // namespace fusecu
