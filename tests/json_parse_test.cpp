#include <gtest/gtest.h>

#include <sstream>

#include "common/json_parse.hpp"
#include "common/json_writer.hpp"

namespace fusecu {
namespace {

TEST(JsonParse, ParsesScalars) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_TRUE(parse_json("true")->as_bool());
  EXPECT_FALSE(parse_json("false")->as_bool());
  EXPECT_DOUBLE_EQ(parse_json("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-2.5e3")->as_number(), -2500.0);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, ParsesNestedStructures) {
  JsonValuePtr v = parse_json(R"({"a": [1, 2, {"b": "c"}], "d": {}})");
  ASSERT_TRUE(v->is_object());
  const auto& arr = v->get("a")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[0]->as_number(), 1.0);
  EXPECT_EQ(arr[2]->get("b")->as_string(), "c");
  EXPECT_TRUE(v->get("d")->as_object().empty());
  EXPECT_EQ(v->get("missing"), nullptr);
}

TEST(JsonParse, DecodesStringEscapes) {
  JsonValuePtr v = parse_json(R"("quote \" backslash \\ slash \/ tab \t newline \n unicode A")");
  EXPECT_EQ(v->as_string(), "quote \" backslash \\ slash / tab \t newline \n unicode A");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::invalid_argument);
  EXPECT_THROW(parse_json("{"), std::invalid_argument);
  EXPECT_THROW(parse_json("[1,]"), std::invalid_argument);
  EXPECT_THROW(parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse_json("{\"a\":1} trailing"), std::invalid_argument);
  EXPECT_THROW(parse_json("nul"), std::invalid_argument);
  EXPECT_THROW(parse_json("01x"), std::invalid_argument);
}

TEST(JsonParse, RoundTripsJsonWriterOutput) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("name", "op \"q\"\\path");
    w.field("value", 2.5);
    w.field("flag", true);
    w.key("items");
    w.begin_array();
    w.value(1);
    w.value("two");
    w.end_array();
    w.end_object();
  }
  JsonValuePtr v = parse_json(os.str());
  EXPECT_EQ(v->get("name")->as_string(), "op \"q\"\\path");
  EXPECT_DOUBLE_EQ(v->get("value")->as_number(), 2.5);
  EXPECT_TRUE(v->get("flag")->as_bool());
  EXPECT_EQ(v->get("items")->as_array()[1]->as_string(), "two");
}

}  // namespace
}  // namespace fusecu
