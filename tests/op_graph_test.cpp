#include <gtest/gtest.h>

#include "tensor/op_graph.hpp"

namespace fusecu {
namespace {

OperatorGraph two_op_chain() {
  OperatorGraph g;
  g.add_op(TensorOp::matmul("mm1", 128, 64, 128, "A", "B", "C"));
  g.add_op(TensorOp::matmul("mm2", 128, 128, 64, "C", "D", "E"));
  return g;
}

TEST(OperatorGraph, EdgesThroughSharedTensor) {
  OperatorGraph g = two_op_chain();
  auto edges = g.edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].producer, 0);
  EXPECT_EQ(edges[0].consumer, 1);
  EXPECT_EQ(edges[0].tensor_name, "C");
  EXPECT_EQ(g.intermediate_tensors(), std::vector<std::string>{"C"});
}

TEST(OperatorGraph, ProducerAndConsumers) {
  OperatorGraph g = two_op_chain();
  EXPECT_EQ(g.producer_of("C").value(), 0);
  EXPECT_FALSE(g.producer_of("A").has_value());
  EXPECT_EQ(g.consumers_of("C"), std::vector<int>{1});
  EXPECT_TRUE(g.consumers_of("E").empty());
}

TEST(OperatorGraph, LinearChainDetection) {
  EXPECT_TRUE(two_op_chain().is_linear_chain());

  OperatorGraph forked;
  forked.add_op(TensorOp::matmul("mm1", 16, 16, 16, "A", "B", "C"));
  forked.add_op(TensorOp::matmul("mm2", 16, 16, 16, "C", "D", "E"));
  forked.add_op(TensorOp::matmul("mm3", 16, 16, 16, "C", "F", "G"));  // C consumed twice
  EXPECT_FALSE(forked.is_linear_chain());
}

TEST(OperatorGraph, IdealAccessAccountsForIntermediates) {
  OperatorGraph g = two_op_chain();
  const AccessCount c_size = 128 * 128;
  // Unfused: C written by mm1 and read by mm2 (counted in both ops' ideals).
  EXPECT_EQ(g.ideal_min_access_unfused(), g.op(0).ideal_min_access() + g.op(1).ideal_min_access());
  // Fused: C disappears (one store + one load saved).
  EXPECT_EQ(g.ideal_min_access_fused(), g.ideal_min_access_unfused() - 2 * c_size);
}

TEST(OperatorGraph, RejectsShapeDisagreement) {
  OperatorGraph g;
  g.add_op(TensorOp::matmul("mm1", 128, 64, 128, "A", "B", "C"));
  // C is 128x128; consuming it as 64x128 must fail.
  EXPECT_THROW(g.add_op(TensorOp::matmul("mm2", 64, 128, 32, "C", "D", "E")),
               std::invalid_argument);
}

TEST(OperatorGraph, RejectsDoubleProducerAndForwardReference) {
  OperatorGraph g;
  g.add_op(TensorOp::matmul("mm1", 16, 16, 16, "A", "B", "C"));
  EXPECT_THROW(g.add_op(TensorOp::matmul("mm2", 16, 16, 16, "X", "Y", "C")),
               std::invalid_argument);
  // Consuming "Z" then producing it later is a forward reference.
  OperatorGraph h;
  h.add_op(TensorOp::matmul("mm1", 16, 16, 16, "Z", "B", "C"));
  EXPECT_THROW(h.add_op(TensorOp::matmul("mm2", 16, 16, 16, "C", "D", "Z")),
               std::invalid_argument);
}

TEST(MatMulChainBuilder, BuildsSharedIntermediates) {
  MatMulChainBuilder chain(256, {64, 256, 64}, "attn");
  ASSERT_EQ(chain.num_ops(), 2);
  TensorOp op0 = chain.op(0);
  TensorOp op1 = chain.op(1);
  EXPECT_EQ(op0.extent(mm::kDimM), 256);
  EXPECT_EQ(op0.extent(mm::kDimK), 64);
  EXPECT_EQ(op0.extent(mm::kDimL), 256);
  EXPECT_EQ(op0.tensor(op0.output_index()).name, op1.tensor(mm::kTensorA).name);

  OperatorGraph g = chain.graph();
  EXPECT_TRUE(g.is_linear_chain());
  EXPECT_EQ(g.num_ops(), 2);
  EXPECT_EQ(g.intermediate_tensors().size(), 1u);
}

TEST(MatMulChainBuilder, RejectsDegenerateChains) {
  EXPECT_THROW(MatMulChainBuilder(0, {4, 4}), std::invalid_argument);
  EXPECT_THROW(MatMulChainBuilder(4, {4}), std::invalid_argument);
  EXPECT_THROW(MatMulChainBuilder(4, {4, 0}), std::invalid_argument);
  EXPECT_THROW(MatMulChainBuilder(4, {4, 8}).op(1), std::invalid_argument);
}

TEST(OperatorGraph, MacsSumOverOps) {
  OperatorGraph g = two_op_chain();
  EXPECT_EQ(g.macs(), 128LL * 64 * 128 + 128LL * 128 * 64);
}

}  // namespace
}  // namespace fusecu
