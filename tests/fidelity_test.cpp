#include <gtest/gtest.h>

#include "sim/fidelity.hpp"
#include "workloads/transformer.hpp"

namespace fusecu {
namespace {

TEST(Fidelity, PlanStepsCarryTheirSchedules) {
  OperatorGraph attn = MatMulChainBuilder(1024, {64, 1024, 64}, "attn").graph();
  ArchPlan fused = plan_chain_for_arch(attn, make_fusecu());
  ASSERT_EQ(fused.fused_pair_count(), 1);
  EXPECT_TRUE(fused.steps[0].fused_phased.has_value());

  ArchPlan unfused = plan_chain_for_arch(attn, make_unfcu());
  for (const ArchPlanStep& s : unfused.steps) {
    ASSERT_TRUE(s.dataflow.has_value());
    // The carried schedule reproduces the step's MA when re-evaluated.
    EXPECT_EQ(evaluate_access(attn.op(s.op_indices[0]), *s.dataflow).total, s.access);
  }
}

TEST(Fidelity, TimelineBracketsTheRoofline) {
  OperatorGraph attn = MatMulChainBuilder(1024, {64, 1024, 64}, "attn").graph();
  for (const ArchSpec& arch : {make_tpu_v4i(), make_unfcu(), make_fusecu()}) {
    ArchPlan plan = plan_chain_for_arch(attn, arch);
    FidelityPerf f = evaluate_plan_fidelity(attn, plan, arch, /*copies=*/4);
    EXPECT_GE(f.timeline_cycles, f.roofline_cycles) << arch.name;
    // Double buffering keeps the replay within ~2x of the ideal overlap.
    EXPECT_LE(f.overlap_gap(), 2.0) << arch.name;
    EXPECT_EQ(f.roofline_fallbacks, 0) << arch.name;
    EXPECT_GT(f.access, 0);
  }
}

TEST(Fidelity, SpeedupsShrinkUnderReplay) {
  // The roofline overshoots FuseCU's advantage (EXPERIMENTS.md deviation 3);
  // the replayed speedup must not exceed the roofline speedup by more than
  // noise.
  OperatorGraph ffn = MatMulChainBuilder(16384, {768, 3072, 768}, "ffn").graph();
  ArchPlan tpu_plan = plan_chain_for_arch(ffn, make_tpu_v4i());
  ArchPlan fcu_plan = plan_chain_for_arch(ffn, make_fusecu());
  FidelityPerf tpu = evaluate_plan_fidelity(ffn, tpu_plan, make_tpu_v4i());
  FidelityPerf fcu = evaluate_plan_fidelity(ffn, fcu_plan, make_fusecu());
  const double roofline_speedup = static_cast<double>(tpu.roofline_cycles) /
                                  static_cast<double>(fcu.roofline_cycles);
  const double replay_speedup = static_cast<double>(tpu.timeline_cycles) /
                                static_cast<double>(fcu.timeline_cycles);
  EXPECT_GT(replay_speedup, 1.0);
  EXPECT_LE(replay_speedup, roofline_speedup * 1.10);
}

TEST(Fidelity, RejectsDegenerateCopies) {
  OperatorGraph g;
  g.add_op(TensorOp::matmul("mm", 64, 64, 64));
  ArchPlan plan = plan_chain_for_arch(g, make_fusecu());
  EXPECT_THROW(evaluate_plan_fidelity(g, plan, make_fusecu(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace fusecu
