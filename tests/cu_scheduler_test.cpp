#include <gtest/gtest.h>

#include "sim/cu_scheduler.hpp"

namespace fusecu {
namespace {

TEST(CuScheduler, BalancesEqualJobs) {
  std::vector<CuJob> jobs(8, CuJob{100, 10, "j"});
  CuScheduleResult r = schedule_jobs(jobs, 4);
  EXPECT_EQ(r.compute_peak, 200);  // two jobs per unit
  EXPECT_EQ(r.memory_total, 80);
  EXPECT_EQ(r.makespan, 200);
  EXPECT_DOUBLE_EQ(r.load_balance(), 1.0);
}

TEST(CuScheduler, LptHandlesSkewedJobs) {
  // One big job plus small ones: LPT puts the big one alone.
  std::vector<CuJob> jobs = {{300, 0, "big"}, {100, 0, "a"}, {100, 0, "b"}, {100, 0, "c"},
                             {100, 0, "d"},   {100, 0, "e"}, {100, 0, "f"}};
  CuScheduleResult r = schedule_jobs(jobs, 4);
  EXPECT_EQ(r.compute_peak, 300);
  EXPECT_EQ(r.makespan, 300);
}

TEST(CuScheduler, MemoryBoundWorkloadsSerialize) {
  std::vector<CuJob> jobs(4, CuJob{10, 500, "mem"});
  CuScheduleResult r = schedule_jobs(jobs, 4);
  EXPECT_EQ(r.memory_total, 2000);
  EXPECT_EQ(r.makespan, 2000);  // shared DMA dominates
}

TEST(CuScheduler, SingleUnitDegeneratesToSum) {
  std::vector<CuJob> jobs = {{50, 5, "a"}, {70, 5, "b"}};
  CuScheduleResult r = schedule_jobs(jobs, 1);
  EXPECT_EQ(r.compute_peak, 120);
  EXPECT_THROW(schedule_jobs(jobs, 0), std::invalid_argument);
}

TEST(CuScheduler, PerUnitPlanSchedulingMatchesJobArithmetic) {
  // 192 attention-head instances on FuseCU: per-unit jobs across 4 units.
  OperatorGraph attn = MatMulChainBuilder(1024, {64, 1024, 64}, "attn").graph();
  ArchSpec arch = make_fusecu();
  ArchPlan plan = plan_chain_for_arch(attn, arch);
  CuScheduleResult r = schedule_plan_per_unit(plan, arch, 192);
  ASSERT_EQ(r.unit_busy.size(), 4u);
  // 192 identical jobs over 4 units: perfectly balanced.
  EXPECT_DOUBLE_EQ(r.load_balance(), 1.0);
  EXPECT_GT(r.makespan, 0);
  EXPECT_THROW(schedule_plan_per_unit(plan, arch, 0), std::invalid_argument);
}

TEST(CuScheduler, LoadBalanceDetectsImbalance) {
  CuScheduleResult r = schedule_jobs({{100, 0, "only"}}, 4);
  EXPECT_DOUBLE_EQ(r.load_balance(), 0.25);
  CuScheduleResult idle = schedule_jobs({}, 2);
  EXPECT_DOUBLE_EQ(idle.load_balance(), 1.0);
  EXPECT_EQ(idle.makespan, 0);
}

}  // namespace
}  // namespace fusecu
