#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "principles/principle_optimizer.hpp"
#include "serve/plan_service.hpp"

namespace fusecu {
namespace {

constexpr BufferSize kBs = 256 * 1024;  // 512 KB bf16

std::int64_t counter_value(const std::string& name) {
  return MetricsRegistry::global().counter(name).value();
}

/// Serialize an intra plan the way the service does, with a fixed id and
/// cached flag, so responses can be compared byte-for-byte.
std::string intra_json(const std::string& id, const IntraOptResult& result, bool cached) {
  PlanResponse response;
  response.id = id;
  response.ok = true;
  response.kind = PlanRequest::Kind::kMatmul;
  response.cached = cached;
  response.intra = result;
  return response.to_json();
}

PlanRequest matmul_request(const std::string& id, Index m, Index k, Index l,
                           BufferSize bs = kBs) {
  PlanRequest r;
  r.id = id;
  r.m = m;
  r.k = k;
  r.l = l;
  r.buffer_elems = bs;
  return r;
}

TEST(PlanService, ByteIdenticalToDirectOptimizer) {
  TensorOp op = TensorOp::matmul("matmul", 2048, 512, 512);
  TensorOp opT = TensorOp::matmul("matmul", 512, 512, 2048);
  // Direct answers, computed while no service (and hence no cache) exists.
  const IntraOptResult direct = optimize_intra(op, kBs);
  const IntraOptResult directT = optimize_intra(opT, kBs);

  ServeOptions options;
  options.threads = 2;
  PlanService service(options);

  IntraPlanned first = service.plan_intra(op, kBs);
  EXPECT_FALSE(first.cached);
  IntraPlanned second = service.plan_intra(op, kBs);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(intra_json("x", first.result, false), intra_json("x", direct, false));
  EXPECT_EQ(intra_json("x", second.result, false), intra_json("x", direct, false));

  // The transposed orientation shares the cache key but owns its own slot:
  // it is computed once (not derived from the other orientation's plan) and
  // must match the direct optimizer byte-for-byte too.
  IntraPlanned firstT = service.plan_intra(opT, kBs);
  EXPECT_FALSE(firstT.cached);
  IntraPlanned secondT = service.plan_intra(opT, kBs);
  EXPECT_TRUE(secondT.cached);
  EXPECT_EQ(intra_json("x", firstT.result, false), intra_json("x", directT, false));
  EXPECT_EQ(intra_json("x", secondT.result, false), intra_json("x", directT, false));

  // Full response framing: the service's JSONL line equals one assembled
  // from the direct result.
  PlanResponse response = service.plan(matmul_request("r1", 2048, 512, 512));
  EXPECT_EQ(response.to_json(), intra_json("r1", direct, true));
}

TEST(PlanService, BatchSingleFlightsIdenticalRequests) {
  ServeOptions options;
  options.threads = 4;
  PlanService service(options);

  std::vector<PlanRequest> batch;
  for (int i = 0; i < 16; ++i) batch.push_back(matmul_request("same", 1024, 768, 768));

  const std::int64_t calls_before = counter_value("principles/optimize_intra/calls");
  const CacheStats intra_before = service.stats().intra;
  std::vector<PlanResponse> responses = service.plan_batch(batch);
  const std::int64_t calls = counter_value("principles/optimize_intra/calls") - calls_before;
  const CacheStats intra_after = service.stats().intra;

  // Responses may differ in the "cached" flag (the leader computed, the
  // rest hit); the plans themselves may not.
  auto normalized = [](const PlanResponse& r) {
    std::string json = r.to_json();
    const std::string hot = "\"cached\":true";
    const auto pos = json.find(hot);
    if (pos != std::string::npos) json.replace(pos, hot.size(), "\"cached\":false");
    return json;
  };
  ASSERT_EQ(responses.size(), batch.size());
  for (const PlanResponse& r : responses) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(normalized(r), normalized(responses[0]))
        << "identical requests must produce identical plans";
  }
  EXPECT_EQ(calls, 1) << "16 identical concurrent requests must cost one optimization";
  EXPECT_EQ(intra_after.insertions - intra_before.insertions, 1);
}

TEST(PlanService, ConcurrentHammerProducesIdenticalPlans) {
  const std::vector<PlanRequest> shapes = {
      matmul_request("a", 1024, 64, 1024),  matmul_request("b", 4096, 128, 4096),
      matmul_request("c", 512, 512, 2048),  matmul_request("d", 2048, 512, 512),
      matmul_request("e", 768, 3072, 768),
  };
  // Expected plans from the direct optimizer, computed before the service
  // (and its process-wide interceptors) exists.
  std::map<std::string, std::string> expected;
  for (const PlanRequest& r : shapes) {
    expected[r.id] = intra_json(r.id, optimize_intra(r.to_op(), r.buffer_elems), false);
  }

  ServeOptions options;
  options.threads = 4;
  PlanService service(options);

  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  std::vector<std::thread> threads;
  std::vector<std::string> failures[kThreads];
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const PlanRequest& r = shapes[static_cast<std::size_t>((t + i) % shapes.size())];
        const std::string json = service.plan(r).to_json();
        const std::string want = expected[r.id];
        // Responses may legitimately differ in the "cached" flag; plans may
        // not.  Compare with the flag normalized.
        std::string got = json;
        const std::string hot = "\"cached\":true";
        const auto pos = got.find(hot);
        if (pos != std::string::npos) got.replace(pos, hot.size(), "\"cached\":false");
        if (got != want) failures[t].push_back("want " + want + "\n got " + json);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << failures[t][0];
  }
}

TEST(PlanService, FusedPlansAndNegativeAnswersAreCached) {
  ServeOptions options;
  options.threads = 1;
  PlanService service(options);

  FusedPair pair = FusedPair::make(1024, 64, 1024, 64);
  FusedPlanned first = service.plan_fused(pair, kBs);
  ASSERT_TRUE(first.result.has_value());
  EXPECT_FALSE(first.cached);
  FusedPlanned second = service.plan_fused(pair, kBs);
  ASSERT_TRUE(second.result.has_value());
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(first.result->access.total, second.result->access.total);
  EXPECT_EQ(first.result->chosen.rule, second.result->chosen.rule);

  // "Not fusable at this buffer" is a planning answer, not an error — the
  // second ask must come from the cache without re-running the optimizer.
  const BufferSize tiny = 4;  // no fused candidate fits 4 elements
  const std::int64_t calls_before = counter_value("principles/optimize_fused_pair/calls");
  FusedPlanned miss = service.plan_fused(pair, tiny);
  FusedPlanned cached_miss = service.plan_fused(pair, tiny);
  EXPECT_FALSE(miss.result.has_value());
  EXPECT_FALSE(cached_miss.result.has_value());
  EXPECT_TRUE(cached_miss.cached);
  EXPECT_EQ(counter_value("principles/optimize_fused_pair/calls") - calls_before, 1);
}

TEST(PlanService, DestructionRestoresInterceptors) {
  TensorOp op = TensorOp::matmul("m", 256, 128, 256);
  {
    PlanService service(ServeOptions{.threads = 1});
    optimize_intra(op, kBs);
    const std::int64_t before = counter_value("principles/optimize_intra/intercepted");
    optimize_intra(op, kBs);
    EXPECT_EQ(counter_value("principles/optimize_intra/intercepted") - before, 1)
        << "while the service is alive, repeats are served by the cache";
  }
  const std::int64_t after_dtor = counter_value("principles/optimize_intra/intercepted");
  optimize_intra(op, kBs);
  optimize_intra(op, kBs);
  EXPECT_EQ(counter_value("principles/optimize_intra/intercepted"), after_dtor)
      << "destroying the service must uninstall the interceptors";
}

TEST(PlanService, BadRequestsBecomeErrorResponsesWithTheirId) {
  PlanService service(ServeOptions{.threads = 1});
  PlanRequest bad = matmul_request("oops", 0, 64, 64);
  PlanResponse response = service.plan(bad);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.id, "oops");
  EXPECT_FALSE(response.error.empty());
  const std::string json = response.to_json();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"oops\""), std::string::npos);
}

// --- Cached response serialization (the json_suffix fast path) ------------
//
// Warm hits are serialized by splicing the request id into a suffix cached
// alongside the plan instead of re-rendering the whole response.  The
// contract is strict byte identity with the full serializer: the first warm
// hit (which renders fully and stores the suffix) and every later spliced
// hit must produce the same bytes for the same id, and a spliced hit with a
// *different* id must match what a fresh service's full serializer emits
// for that id — including ids that need JSON escaping.

std::string line_json(PlanService& service, const std::string& line, int lineno) {
  bool parse_error = false;
  std::string out = service.plan_line_json(line, "suffix_test.jsonl", lineno, 0, &parse_error);
  EXPECT_FALSE(parse_error) << line;
  return out;
}

std::string matmul_line(const std::string& raw_id, int m, int k, int l) {
  return "{\"id\":\"" + raw_id + "\",\"op\":\"matmul\",\"m\":" + std::to_string(m) +
         ",\"k\":" + std::to_string(k) + ",\"l\":" + std::to_string(l) + ",\"buffer\":\"512KB\"}";
}

TEST(PlanService, WarmHitSpliceIsByteIdenticalToFullSerializer) {
  const std::string line = matmul_line("steady", 384, 256, 320);
  PlanService a(ServeOptions{.threads = 1});
  const std::string miss = line_json(a, line, 1);
  const std::string hit_full = line_json(a, line, 2);     // renders fully, stores the suffix
  const std::string hit_spliced = line_json(a, line, 3);  // spliced from the cached suffix
  EXPECT_NE(miss.find("\"cached\":false"), std::string::npos);
  EXPECT_NE(hit_full.find("\"cached\":true"), std::string::npos);
  EXPECT_EQ(hit_full, hit_spliced);
  // The only byte-level difference between miss and hit is the cached flag.
  std::string expected = miss;
  const std::size_t at = expected.find("\"cached\":false");
  ASSERT_NE(at, std::string::npos);
  expected.replace(at, std::strlen("\"cached\":false"), "\"cached\":true");
  EXPECT_EQ(hit_spliced, expected);
}

TEST(PlanService, SplicedHitWithEscapedIdMatchesFreshFullSerialization) {
  // id = q"uo\te — the splice must use the *escaped* id, exactly as the
  // full serializer does.
  const std::string tricky = "q\\\"uo\\\\te";
  const std::string warm_line = matmul_line("warm", 384, 256, 320);
  const std::string tricky_line = matmul_line(tricky, 384, 256, 320);

  PlanService a(ServeOptions{.threads = 1});
  (void)line_json(a, warm_line, 1);    // cold miss
  (void)line_json(a, warm_line, 2);    // warm hit: stores the suffix
  const std::string spliced = line_json(a, tricky_line, 3);  // spliced, tricky id

  PlanService b(ServeOptions{.threads = 1});
  (void)line_json(b, warm_line, 1);                            // cold miss
  const std::string full = line_json(b, tricky_line, 2);       // first warm hit: full render
  EXPECT_EQ(spliced, full);
  EXPECT_NE(spliced.find("\"id\":\"q\\\"uo\\\\te\""), std::string::npos) << spliced;
}

TEST(PlanService, TransposedHitsSpliceFromTheirOwnOrientationSlot) {
  // (m,k,l) and (l,k,m) land on the same canonical cache entry, which holds
  // one suffix slot per orientation; warm hits of either orientation must
  // splice their own slot's bytes, never the sibling's.
  const std::string fwd = matmul_line("f", 384, 256, 320);
  const std::string swapped = matmul_line("f", 320, 256, 384);
  PlanService a(ServeOptions{.threads = 1});
  (void)line_json(a, fwd, 1);                             // plans the forward orientation
  (void)line_json(a, swapped, 2);                         // plans the swapped orientation
  const std::string fwd_full = line_json(a, fwd, 3);      // warm hit: stores its suffix slot
  const std::string swp_full = line_json(a, swapped, 4);  // warm hit: stores the other slot
  EXPECT_NE(fwd_full.find("\"cached\":true"), std::string::npos) << fwd_full;
  EXPECT_NE(swp_full.find("\"cached\":true"), std::string::npos) << swp_full;
  const std::string fwd_spliced = line_json(a, fwd, 5);
  const std::string swp_spliced = line_json(a, swapped, 6);
  EXPECT_EQ(fwd_full, fwd_spliced);
  EXPECT_EQ(swp_full, swp_spliced);
  EXPECT_NE(fwd_spliced, swp_spliced) << "orientations must not share suffix bytes";
}

TEST(PlanService, FusedPairHitsSpliceByteIdentically) {
  const std::string line =
      "{\"id\":\"fp\",\"op\":\"fused_pair\",\"m\":512,\"k\":64,\"l\":512,\"n\":64,"
      "\"buffer\":\"512KB\"}";
  PlanService a(ServeOptions{.threads = 1});
  (void)line_json(a, line, 1);
  const std::string hit_full = line_json(a, line, 2);
  const std::string hit_spliced = line_json(a, line, 3);
  EXPECT_NE(hit_full.find("\"cached\":true"), std::string::npos);
  EXPECT_EQ(hit_full, hit_spliced);
}

}  // namespace
}  // namespace fusecu
