#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "principles/principle_optimizer.hpp"
#include "serve/plan_service.hpp"

namespace fusecu {
namespace {

constexpr BufferSize kBs = 256 * 1024;  // 512 KB bf16

std::int64_t counter_value(const std::string& name) {
  return MetricsRegistry::global().counter(name).value();
}

/// Serialize an intra plan the way the service does, with a fixed id and
/// cached flag, so responses can be compared byte-for-byte.
std::string intra_json(const std::string& id, const IntraOptResult& result, bool cached) {
  PlanResponse response;
  response.id = id;
  response.ok = true;
  response.kind = PlanRequest::Kind::kMatmul;
  response.cached = cached;
  response.intra = result;
  return response.to_json();
}

PlanRequest matmul_request(const std::string& id, Index m, Index k, Index l,
                           BufferSize bs = kBs) {
  PlanRequest r;
  r.id = id;
  r.m = m;
  r.k = k;
  r.l = l;
  r.buffer_elems = bs;
  return r;
}

TEST(PlanService, ByteIdenticalToDirectOptimizer) {
  TensorOp op = TensorOp::matmul("matmul", 2048, 512, 512);
  TensorOp opT = TensorOp::matmul("matmul", 512, 512, 2048);
  // Direct answers, computed while no service (and hence no cache) exists.
  const IntraOptResult direct = optimize_intra(op, kBs);
  const IntraOptResult directT = optimize_intra(opT, kBs);

  ServeOptions options;
  options.threads = 2;
  PlanService service(options);

  IntraPlanned first = service.plan_intra(op, kBs);
  EXPECT_FALSE(first.cached);
  IntraPlanned second = service.plan_intra(op, kBs);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(intra_json("x", first.result, false), intra_json("x", direct, false));
  EXPECT_EQ(intra_json("x", second.result, false), intra_json("x", direct, false));

  // The transposed orientation shares the cache key but owns its own slot:
  // it is computed once (not derived from the other orientation's plan) and
  // must match the direct optimizer byte-for-byte too.
  IntraPlanned firstT = service.plan_intra(opT, kBs);
  EXPECT_FALSE(firstT.cached);
  IntraPlanned secondT = service.plan_intra(opT, kBs);
  EXPECT_TRUE(secondT.cached);
  EXPECT_EQ(intra_json("x", firstT.result, false), intra_json("x", directT, false));
  EXPECT_EQ(intra_json("x", secondT.result, false), intra_json("x", directT, false));

  // Full response framing: the service's JSONL line equals one assembled
  // from the direct result.
  PlanResponse response = service.plan(matmul_request("r1", 2048, 512, 512));
  EXPECT_EQ(response.to_json(), intra_json("r1", direct, true));
}

TEST(PlanService, BatchSingleFlightsIdenticalRequests) {
  ServeOptions options;
  options.threads = 4;
  PlanService service(options);

  std::vector<PlanRequest> batch;
  for (int i = 0; i < 16; ++i) batch.push_back(matmul_request("same", 1024, 768, 768));

  const std::int64_t calls_before = counter_value("principles/optimize_intra/calls");
  const CacheStats intra_before = service.stats().intra;
  std::vector<PlanResponse> responses = service.plan_batch(batch);
  const std::int64_t calls = counter_value("principles/optimize_intra/calls") - calls_before;
  const CacheStats intra_after = service.stats().intra;

  // Responses may differ in the "cached" flag (the leader computed, the
  // rest hit); the plans themselves may not.
  auto normalized = [](const PlanResponse& r) {
    std::string json = r.to_json();
    const std::string hot = "\"cached\":true";
    const auto pos = json.find(hot);
    if (pos != std::string::npos) json.replace(pos, hot.size(), "\"cached\":false");
    return json;
  };
  ASSERT_EQ(responses.size(), batch.size());
  for (const PlanResponse& r : responses) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(normalized(r), normalized(responses[0]))
        << "identical requests must produce identical plans";
  }
  EXPECT_EQ(calls, 1) << "16 identical concurrent requests must cost one optimization";
  EXPECT_EQ(intra_after.insertions - intra_before.insertions, 1);
}

TEST(PlanService, ConcurrentHammerProducesIdenticalPlans) {
  const std::vector<PlanRequest> shapes = {
      matmul_request("a", 1024, 64, 1024),  matmul_request("b", 4096, 128, 4096),
      matmul_request("c", 512, 512, 2048),  matmul_request("d", 2048, 512, 512),
      matmul_request("e", 768, 3072, 768),
  };
  // Expected plans from the direct optimizer, computed before the service
  // (and its process-wide interceptors) exists.
  std::map<std::string, std::string> expected;
  for (const PlanRequest& r : shapes) {
    expected[r.id] = intra_json(r.id, optimize_intra(r.to_op(), r.buffer_elems), false);
  }

  ServeOptions options;
  options.threads = 4;
  PlanService service(options);

  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  std::vector<std::thread> threads;
  std::vector<std::string> failures[kThreads];
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const PlanRequest& r = shapes[static_cast<std::size_t>((t + i) % shapes.size())];
        const std::string json = service.plan(r).to_json();
        const std::string want = expected[r.id];
        // Responses may legitimately differ in the "cached" flag; plans may
        // not.  Compare with the flag normalized.
        std::string got = json;
        const std::string hot = "\"cached\":true";
        const auto pos = got.find(hot);
        if (pos != std::string::npos) got.replace(pos, hot.size(), "\"cached\":false");
        if (got != want) failures[t].push_back("want " + want + "\n got " + json);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << failures[t][0];
  }
}

TEST(PlanService, FusedPlansAndNegativeAnswersAreCached) {
  ServeOptions options;
  options.threads = 1;
  PlanService service(options);

  FusedPair pair = FusedPair::make(1024, 64, 1024, 64);
  FusedPlanned first = service.plan_fused(pair, kBs);
  ASSERT_TRUE(first.result.has_value());
  EXPECT_FALSE(first.cached);
  FusedPlanned second = service.plan_fused(pair, kBs);
  ASSERT_TRUE(second.result.has_value());
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(first.result->access.total, second.result->access.total);
  EXPECT_EQ(first.result->chosen.rule, second.result->chosen.rule);

  // "Not fusable at this buffer" is a planning answer, not an error — the
  // second ask must come from the cache without re-running the optimizer.
  const BufferSize tiny = 4;  // no fused candidate fits 4 elements
  const std::int64_t calls_before = counter_value("principles/optimize_fused_pair/calls");
  FusedPlanned miss = service.plan_fused(pair, tiny);
  FusedPlanned cached_miss = service.plan_fused(pair, tiny);
  EXPECT_FALSE(miss.result.has_value());
  EXPECT_FALSE(cached_miss.result.has_value());
  EXPECT_TRUE(cached_miss.cached);
  EXPECT_EQ(counter_value("principles/optimize_fused_pair/calls") - calls_before, 1);
}

TEST(PlanService, DestructionRestoresInterceptors) {
  TensorOp op = TensorOp::matmul("m", 256, 128, 256);
  {
    PlanService service(ServeOptions{.threads = 1});
    optimize_intra(op, kBs);
    const std::int64_t before = counter_value("principles/optimize_intra/intercepted");
    optimize_intra(op, kBs);
    EXPECT_EQ(counter_value("principles/optimize_intra/intercepted") - before, 1)
        << "while the service is alive, repeats are served by the cache";
  }
  const std::int64_t after_dtor = counter_value("principles/optimize_intra/intercepted");
  optimize_intra(op, kBs);
  optimize_intra(op, kBs);
  EXPECT_EQ(counter_value("principles/optimize_intra/intercepted"), after_dtor)
      << "destroying the service must uninstall the interceptors";
}

TEST(PlanService, BadRequestsBecomeErrorResponsesWithTheirId) {
  PlanService service(ServeOptions{.threads = 1});
  PlanRequest bad = matmul_request("oops", 0, 64, 64);
  PlanResponse response = service.plan(bad);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.id, "oops");
  EXPECT_FALSE(response.error.empty());
  const std::string json = response.to_json();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"oops\""), std::string::npos);
}

}  // namespace
}  // namespace fusecu
