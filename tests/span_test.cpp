#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/span.hpp"

namespace fusecu {
namespace {

/// Collects finished spans for assertions.  Thread-safe like any sink.
class CollectingSink : public SpanSink {
 public:
  void on_span(const SpanRecord& span) override {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(span);
  }

  std::vector<SpanRecord> spans() {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

 private:
  std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// RAII sink installation so a failing assertion can't leak the sink into
/// the next test.
class SinkScope {
 public:
  explicit SinkScope(SpanSink* sink) : prev_(set_span_sink(sink)) {}
  ~SinkScope() { set_span_sink(prev_); }

 private:
  SpanSink* prev_;
};

TEST(Span, InertWithoutSink) {
  ASSERT_FALSE(span_recording_enabled());
  ScopedSpan span("noop");
  EXPECT_FALSE(span.recording());
  EXPECT_FALSE(current_span().valid());  // an inert span never becomes ambient
}

TEST(Span, RootThenChildNesting) {
  CollectingSink sink;
  SinkScope scope(&sink);
  ASSERT_TRUE(span_recording_enabled());

  SpanContext root_ctx, child_ctx;
  {
    ScopedSpan root("request/matmul");
    ASSERT_TRUE(root.recording());
    root_ctx = root.context();
    EXPECT_EQ(current_span().span_id, root_ctx.span_id);
    {
      ScopedSpan child("cache_lookup");
      child.note("miss");
      child_ctx = child.context();
    }
    // Child closed: ambient is the root again.
    EXPECT_EQ(current_span().span_id, root_ctx.span_id);
  }
  EXPECT_FALSE(current_span().valid());

  const std::vector<SpanRecord> spans = sink.spans();
  ASSERT_EQ(spans.size(), 2u);  // children finish before parents
  EXPECT_EQ(spans[0].name, "cache_lookup");
  EXPECT_EQ(spans[0].detail, "miss");
  EXPECT_EQ(spans[1].name, "request/matmul");
  // Proper tree: same trace, child points at root, root is a trace root.
  EXPECT_EQ(spans[0].context.trace_id, spans[1].context.trace_id);
  EXPECT_EQ(spans[0].context.parent_span_id, spans[1].context.span_id);
  EXPECT_EQ(spans[1].context.parent_span_id, 0u);
  EXPECT_NE(spans[0].context.span_id, spans[1].context.span_id);
  EXPECT_EQ(child_ctx.span_id, spans[0].context.span_id);
}

TEST(Span, AnchoredStartAndManualRecord) {
  CollectingSink sink;
  SinkScope scope(&sink);
  const std::int64_t enqueue_us = span_clock_us();
  {
    ScopedSpan root("request/fused_pair", enqueue_us);
    record_span("queue_wait", enqueue_us, span_clock_us(), "pool");
  }
  const std::vector<SpanRecord> spans = sink.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "queue_wait");
  EXPECT_EQ(spans[0].detail, "pool");
  EXPECT_EQ(spans[0].start_us, enqueue_us);
  EXPECT_EQ(spans[1].start_us, enqueue_us);  // the anchored root
  EXPECT_EQ(spans[0].context.parent_span_id, spans[1].context.span_id);
  EXPECT_GE(spans[1].duration_us, spans[0].duration_us);
}

TEST(Span, SeparateRootsGetSeparateTraces) {
  CollectingSink sink;
  SinkScope scope(&sink);
  { ScopedSpan a("request/matmul"); }
  { ScopedSpan b("request/matmul"); }
  const std::vector<SpanRecord> spans = sink.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].context.trace_id, spans[1].context.trace_id);
}

TEST(Span, ThreadsCarryIndependentAmbientSpans) {
  CollectingSink sink;
  SinkScope scope(&sink);
  ScopedSpan root("outer");
  SpanContext other_ambient;
  int other_thread = -1;
  std::thread([&] {
    other_ambient = current_span();  // ambient does not leak across threads
    ScopedSpan worker("worker");
    other_thread = obs_thread_index();
  }).join();
  EXPECT_FALSE(other_ambient.valid());
  EXPECT_NE(other_thread, obs_thread_index());
  const std::vector<SpanRecord> spans = sink.spans();
  ASSERT_EQ(spans.size(), 1u);  // only the worker span finished so far
  EXPECT_EQ(spans[0].context.parent_span_id, 0u);  // a fresh root over there
  EXPECT_EQ(spans[0].thread_index, other_thread);
}

TEST(Span, UniqueIdsUnderConcurrency) {
  CollectingSink sink;
  SinkScope scope(&sink);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        ScopedSpan span("burst");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::map<std::uint64_t, int> seen;
  for (const SpanRecord& s : sink.spans()) ++seen[s.context.span_id];
  EXPECT_EQ(seen.size(), 800u);
  for (const auto& [id, count] : seen) {
    EXPECT_EQ(count, 1) << "duplicate span id " << id;
    EXPECT_NE(id, 0u);
  }
}

}  // namespace
}  // namespace fusecu
