#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fusion/fusion_principles.hpp"
#include "principles/principle_optimizer.hpp"
#include "sim/tiled_executor.hpp"

namespace fusecu {
namespace {

// --- The repository's strongest integration claim: executing a complete
// dataflow schedule on the simulated hardware produces (a) bit-exact
// results and (b) per-tensor memory traffic equal to the analytical reuse
// model's prediction.

struct ExecCase {
  Index m, k, l;
  std::vector<std::string> order;
  Index t_m, t_k, t_l;
};

class TiledExecution : public ::testing::TestWithParam<ExecCase> {};

TEST_P(TiledExecution, TrafficMatchesAnalyticalModelAndResultIsExact) {
  const auto& p = GetParam();
  TensorOp op = TensorOp::matmul("exec", p.m, p.k, p.l);
  Dataflow df = make_dataflow(op, p.order, {{"M", p.t_m}, {"K", p.t_k}, {"L", p.t_l}});

  Matrix a = make_test_matrix(p.m, p.k, 91);
  Matrix b = make_test_matrix(p.k, p.l, 92);
  ComputeUnit cu(8);
  TiledExecutionResult r = execute_tiled(op, df, a, b, cu);

  EXPECT_EQ(r.output, matmul_reference(a, b));
  AccessBreakdown predicted = evaluate_access(op, df);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(r.traffic_per_tensor[static_cast<std::size_t>(t)],
              predicted.per_tensor[static_cast<std::size_t>(t)])
        << "tensor " << t << " " << df.to_string(op);
  }
  EXPECT_EQ(r.total_traffic, predicted.total);
  EXPECT_GT(r.compute_cycles, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, TiledExecution,
    ::testing::Values(
        // Output-stationary (Fig. 2(b)).
        ExecCase{16, 12, 16, {"M", "L", "K"}, 8, 4, 8},
        // Two-NRA: K untiled (Fig. 3 top).
        ExecCase{16, 12, 16, {"M", "L", "K"}, 8, 12, 1},
        // Three-NRA: B fully resident.
        ExecCase{24, 8, 8, {"M", "K", "L"}, 4, 8, 8},
        // Weight-stationary with the reduction outermost (partial spills).
        ExecCase{16, 16, 16, {"K", "L", "M"}, 8, 8, 8},
        // Non-dividing tiles (edge clipping).
        ExecCase{17, 13, 19, {"L", "M", "K"}, 5, 6, 7},
        // Degenerate single-tile schedule.
        ExecCase{8, 8, 8, {"M", "K", "L"}, 8, 8, 8},
        // Tall M tile: OS cannot host it, the executor falls back to WS.
        ExecCase{32, 8, 8, {"M", "L", "K"}, 16, 4, 4},
        // Wide L tile with small M, K: only IS hosts it.
        ExecCase{8, 8, 32, {"M", "K", "L"}, 4, 4, 16}));

TEST(TiledExecution, RejectsTilesNoModeCanHost) {
  TensorOp op = TensorOp::matmul("huge", 32, 32, 32);
  // All three tile dims exceed the 8x8 array: no stationary mode fits.
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 16}, {"K", 16}, {"L", 16}});
  ComputeUnit cu(8);
  EXPECT_THROW(execute_tiled(op, df, make_test_matrix(32, 32, 1), make_test_matrix(32, 32, 2), cu),
               std::invalid_argument);
}

TEST(TiledExecution, PrincipleOptimizedScheduleExecutes) {
  // End-to-end: optimize with the principles, execute the result.
  TensorOp op = TensorOp::matmul("opt", 24, 16, 24);
  IntraOptResult r = optimize_intra(op, 256);
  Matrix a = make_test_matrix(24, 16, 93);
  Matrix b = make_test_matrix(16, 24, 94);
  ComputeUnit cu(16);
  TiledExecutionResult exec = execute_tiled(op, r.dataflow, a, b, cu);
  EXPECT_EQ(exec.output, matmul_reference(a, b));
  EXPECT_EQ(exec.total_traffic, r.access.total);
}

TEST(TiledExecution, RejectsShapeMismatch) {
  TensorOp op = TensorOp::matmul("exec", 8, 8, 8);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 4}, {"K", 4}, {"L", 4}});
  ComputeUnit cu(8);
  EXPECT_THROW(execute_tiled(op, df, Matrix(7, 8), Matrix(8, 8), cu), std::invalid_argument);
  EXPECT_THROW(execute_tiled(op, df, Matrix(8, 8), Matrix(8, 7), cu), std::invalid_argument);
}

// --- Fused execution vs the fused analytical model.
struct FusedExecCase {
  Index m, k, l, n;
  PhasedFusedDataflow df;
};

class FusedTiledExecution : public ::testing::TestWithParam<FusedExecCase> {};

TEST_P(FusedTiledExecution, TrafficMatchesFusedModelAndIntermediateNeverSpills) {
  const auto& p = GetParam();
  FusedPair pair = FusedPair::make(p.m, p.k, p.l, p.n);
  Matrix a = make_test_matrix(p.m, p.k, 95);
  Matrix b = make_test_matrix(p.k, p.l, 96);
  Matrix d = make_test_matrix(p.l, p.n, 97);

  FuseCuQuad quad(8);
  FusedExecutionResult r = execute_fused_phased(pair, p.df, a, b, d, quad);

  EXPECT_EQ(r.output, matmul_reference(matmul_reference(a, b), d));
  FusedAccess predicted = evaluate_phased(pair, p.df);
  EXPECT_EQ(r.traffic_a + r.traffic_b, predicted.op1_external);
  EXPECT_EQ(r.traffic_d + r.traffic_e, predicted.op2_external);
  EXPECT_EQ(r.total_traffic, predicted.total);
  EXPECT_EQ(r.traffic_c, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, FusedTiledExecution,
    ::testing::Values(
        // Tile fusion: C tile stationary, unit K/N tiles.
        FusedExecCase{16, 8, 16, 8, {8, 1, 8, 1, false}},
        // Untiled-L pattern, L-outer order.
        FusedExecCase{16, 8, 8, 8, {4, 1, 8, 1, true}},
        // Untiled K and N (the column-fusion-style pattern).
        FusedExecCase{16, 8, 16, 8, {8, 8, 1, 8, false}},
        // Non-dividing everything.
        FusedExecCase{13, 7, 11, 9, {5, 3, 4, 2, false}},
        FusedExecCase{13, 7, 11, 9, {5, 3, 4, 2, true}}));

TEST(FusedTiledExecution, ResidentPatternMatchesModel) {
  FusedPair pair = FusedPair::make(12, 6, 10, 8);
  ResidentFusedDataflow rf;
  rf.df1 = make_dataflow(pair.op1(), {"M", "L", "K"}, {{"M", 4}, {"L", 5}, {"K", 3}});
  rf.df2 = make_dataflow(pair.op2(), {"K", "M", "L"}, {{"M", 6}, {"K", 5}, {"L", 4}});

  Matrix a = make_test_matrix(12, 6, 401);
  Matrix b = make_test_matrix(6, 10, 402);
  Matrix d = make_test_matrix(10, 8, 403);
  FuseCuQuad quad(8);
  FusedExecutionResult r = execute_fused_resident(pair, rf, a, b, d, quad);

  EXPECT_EQ(r.output, matmul_reference(matmul_reference(a, b), d));
  FusedAccess predicted = evaluate_resident(pair, rf);
  EXPECT_EQ(r.traffic_a + r.traffic_b, predicted.op1_external);
  EXPECT_EQ(r.traffic_d + r.traffic_e, predicted.op2_external);
  EXPECT_EQ(r.total_traffic, predicted.total);
  EXPECT_EQ(r.traffic_c, 0);
}

TEST(FusedTiledExecution, PrincipleConstructedResidentScheduleExecutes) {
  // Pick the resident candidate from the principled set (tile fusion ties
  // at this size and wins the tie-break) and execute it.
  FusedPair pair = FusedPair::make(16, 8, 16, 8);
  std::optional<ResidentFusedDataflow> resident;
  for (const FusedCandidate& c : fused_principle_candidates(pair, 2048)) {
    if (c.resident) resident = c.resident;
  }
  ASSERT_TRUE(resident.has_value());
  Matrix a = make_test_matrix(16, 8, 404);
  Matrix b = make_test_matrix(8, 16, 405);
  Matrix d = make_test_matrix(16, 8, 406);
  FuseCuQuad quad(16);
  FusedExecutionResult r = execute_fused_resident(pair, *resident, a, b, d, quad);
  EXPECT_EQ(r.output, matmul_reference(matmul_reference(a, b), d));
  EXPECT_EQ(r.total_traffic, evaluate_resident(pair, *resident).total);
  // At this buffer the resident construction reaches the fused ideal.
  EXPECT_EQ(r.total_traffic, pair.ideal_min_access());
}

TEST(FusedTiledExecution, PrincipleOptimizedFusedScheduleExecutes) {
  FusedPair pair = FusedPair::make(16, 8, 16, 8);
  auto best = optimize_fused_pair(pair, 128);
  ASSERT_TRUE(best.has_value());
  ASSERT_TRUE(best->chosen.phased.has_value()) << "expected a phased pattern at this size";
  Matrix a = make_test_matrix(16, 8, 98);
  Matrix b = make_test_matrix(8, 16, 99);
  Matrix d = make_test_matrix(16, 8, 100);
  FuseCuQuad quad(8);
  FusedExecutionResult r = execute_fused_phased(pair, *best->chosen.phased, a, b, d, quad);
  EXPECT_EQ(r.output, matmul_reference(matmul_reference(a, b), d));
  EXPECT_EQ(r.total_traffic, best->access.total);
}

}  // namespace
}  // namespace fusecu
