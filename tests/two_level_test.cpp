#include <gtest/gtest.h>

#include "principles/two_level.hpp"

namespace fusecu {
namespace {

TEST(TwoLevel, OuterTileOpShape) {
  TensorOp op = TensorOp::matmul("mm", 1024, 768, 768);
  Dataflow df = make_dataflow(op, {"M", "L", "K"}, {{"M", 512}, {"K", 768}, {"L", 1}});
  TensorOp tile = outer_tile_op(op, df);
  EXPECT_EQ(tile.extent(mm::kDimM), 512);
  EXPECT_EQ(tile.extent(mm::kDimK), 768);
  EXPECT_EQ(tile.extent(mm::kDimL), 1);
  // Tensor structure carries over.
  EXPECT_EQ(tile.num_tensors(), 3);
  EXPECT_EQ(tile.output_index(), mm::kTensorC);
}

TEST(TwoLevel, ComposedOptimizationIsConsistent) {
  TensorOp op = TensorOp::matmul("mm", 2048, 512, 2048);
  const BufferSize bs2 = 256 * 1024;   // 512 KB buffer in elements
  const BufferSize bs1 = 128 * 128;    // one CU's registers
  TwoLevelResult r = optimize_two_level(op, bs2, bs1);

  EXPECT_EQ(r.dram_traffic, r.outer.access.total);
  EXPECT_LE(r.outer.access.buffer_footprint, bs2);
  EXPECT_LE(r.inner.access.buffer_footprint, bs1);
  EXPECT_GE(r.outer_iterations, 1);
  EXPECT_EQ(r.buffer_traffic, r.inner.access.total * r.outer_iterations);
  // The buffer level sees at least as much traffic as DRAM — it is closer
  // to the compute.
  EXPECT_GE(r.buffer_traffic, r.dram_traffic);
  // And at most one access per MAC operand (gross upper bound).
  EXPECT_LE(r.buffer_traffic, 3 * op.macs());
}

TEST(TwoLevel, RegisterLevelRegimeFollowsSection4) {
  // With the buffer generous and registers at N^2, the inner op's smallest
  // dimension decides the inner regime per the 2N rule.
  TensorOp op = TensorOp::matmul("mm", 4096, 64, 4096);  // D_min = 64 < 2N
  TwoLevelResult r = optimize_two_level(op, 2 * 1024 * 1024, 128 * 128);
  EXPECT_NE(r.inner.nra, NraKind::kSingle);
}

TEST(TwoLevel, WeightedTrafficOrdersHierarchies) {
  TensorOp op = TensorOp::matmul("mm", 2048, 512, 2048);
  TwoLevelResult small_buffer = optimize_two_level(op, 32 * 1024, 128 * 128);
  TwoLevelResult big_buffer = optimize_two_level(op, 1024 * 1024, 128 * 128);
  // A bigger buffer can only reduce DRAM traffic.
  EXPECT_LE(big_buffer.dram_traffic, small_buffer.dram_traffic);
  EXPECT_GT(small_buffer.weighted_traffic(), 0.0);
}

TEST(TwoLevel, RejectsDegenerateCapacities) {
  TensorOp op = TensorOp::matmul("mm", 64, 64, 64);
  EXPECT_THROW(optimize_two_level(op, 1024, 2), std::invalid_argument);
  EXPECT_THROW(optimize_two_level(op, 16, 1024), std::invalid_argument);
}

TEST(TwoLevel, MonotoneInRegisterCapacity) {
  TensorOp op = TensorOp::matmul("mm", 1024, 256, 1024);
  AccessCount prev = optimize_two_level(op, 512 * 1024, 16 * 16).buffer_traffic;
  for (Index n = 32; n <= 256; n *= 2) {
    AccessCount cur = optimize_two_level(op, 512 * 1024, n * n).buffer_traffic;
    EXPECT_LE(cur, prev) << "registers " << n * n;
    prev = cur;
  }
}

}  // namespace
}  // namespace fusecu
