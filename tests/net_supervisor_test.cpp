#include "net/supervisor.hpp"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "serve/plan_service.hpp"

/// Supervisor + watchdog cancellation (PR 10).  The unit half drives the
/// Supervisor with synthetic heartbeat atomics: a frozen epoch on an
/// eligible source is a stall, reported once per episode and re-armed when
/// the heartbeat resumes; ineligible (idle) sources are never stalled.  The
/// e2e half arms real fault plans against a served loopback socket: a
/// worker hang past 2x the budget must produce an in-order ok=false
/// "timed_out" cancellation without leaking the slot, a reactor-loop stall
/// must be detected without disturbing service, and a sustained
/// pool-stall storm must push the adaptive admission controller into
/// brownout — cold shapes shed with a retry_after_ms hint, warm shapes
/// still served — and out again once the standing delay recovers.

namespace fusecu {
namespace {

using Clock = std::chrono::steady_clock;

std::string make_req(const std::string& id, int m, int k, int l) {
  return "{\"id\":\"" + id + "\",\"op\":\"matmul\",\"m\":" + std::to_string(m) +
         ",\"k\":" + std::to_string(k) + ",\"l\":" + std::to_string(l) +
         ",\"buffer\":\"512KB\"}\n";
}

/// Server-under-test: PlanService + NetServer + the loop thread.
struct TestServer {
  PlanService service;
  NetServer server;
  std::thread loop;

  TestServer(ServeOptions serve_options, NetServerOptions net_options)
      : service(serve_options), server(service, net_options), loop([this] { server.run(); }) {}

  ~TestServer() { stop(); }

  void stop() {
    if (loop.joinable()) {
      server.request_drain();
      loop.join();
    }
  }
};

/// Blocking test client with poll-timed reads (no test may hang the suite).
class Client {
 public:
  explicit Client(std::uint16_t port) {
    std::string error;
    fd_ = connect_tcp("127.0.0.1", port, error);
    EXPECT_GE(fd_, 0) << error;
  }
  ~Client() {
    if (fd_ >= 0) close_fd(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  std::optional<std::string> read_line(int timeout_ms = 10'000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      if (eof_) return std::nullopt;
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
      if (left.count() <= 0) return std::nullopt;
      struct pollfd pfd = {fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (pr < 0 && errno == EINTR) continue;
      if (pr <= 0) return std::nullopt;
      char chunk[16 * 1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf_.append(chunk, static_cast<std::size_t>(n));
      } else if (n == 0) {
        eof_ = true;
      } else if (errno != EINTR && errno != EAGAIN) {
        eof_ = true;
      }
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
  bool eof_ = false;
};

fault::FaultEvent event(fault::Kind kind, std::uint64_t at, std::uint64_t arg = 0) {
  fault::FaultEvent e;
  e.kind = kind;
  e.at = at;
  e.arg = arg;
  return e;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Supervisor unit: synthetic heartbeats.

TEST(Supervisor, FrozenEligibleHeartbeatIsStalledOncePerEpisode) {
  std::atomic<std::uint64_t> epoch{7};
  std::atomic<bool> busy{true};
  Supervisor supervisor({{"worker.0", &epoch, &busy}}, /*watchdog_ms=*/50);
  supervisor.start();
  // Frozen past the budget: exactly one report, not one per sample.
  ASSERT_TRUE(wait_until([&] { return supervisor.stalls_detected() == 1; }, 5'000));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(supervisor.stalls_detected(), 1) << "a continuing stall must not re-report";

  // The heartbeat resumes -> the source re-arms -> a second freeze is a new
  // episode.
  epoch.fetch_add(1);
  ASSERT_TRUE(wait_until([&] { return supervisor.stalls_detected() == 2; }, 5'000));
  supervisor.stop();
}

TEST(Supervisor, IneligibleSourceIsNeverStalled) {
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<bool> busy{false};  // idle worker: a frozen epoch is fine
  Supervisor supervisor({{"worker.0", &epoch, &busy}}, /*watchdog_ms=*/40);
  supervisor.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(supervisor.stalls_detected(), 0);
  supervisor.stop();
}

TEST(Supervisor, AdvancingHeartbeatIsNeverStalled) {
  std::atomic<std::uint64_t> epoch{0};
  Supervisor supervisor({{"loop.0", &epoch, nullptr}}, /*watchdog_ms=*/40);
  supervisor.start();
  const auto until = Clock::now() + std::chrono::milliseconds(250);
  while (Clock::now() < until) {
    epoch.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(supervisor.stalls_detected(), 0);
  supervisor.stop();
}

TEST(Supervisor, ZeroBudgetDisablesSupervision) {
  std::atomic<std::uint64_t> epoch{0};
  Supervisor supervisor({{"loop.0", &epoch, nullptr}}, /*watchdog_ms=*/0);
  supervisor.start();  // no-op: no thread
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(supervisor.stalls_detected(), 0);
  supervisor.stop();
}

// ---------------------------------------------------------------------------
// E2E: watchdog cancellation of a hung pool task.

TEST(Watchdog, HungPoolTaskIsCancelledInOrderWithoutLeakingTheSlot) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::int64_t cancelled_before = reg.counter("net/watchdog/cancelled").value();

  fault::FaultPlan plan;
  // Pool invocation 0 hangs 400ms; the guard fires at 2 x 50ms = 100ms.
  plan.events.push_back(event(fault::Kind::kWorkerHang, 0, 400'000));
  fault::ScopedFaultPlan armed(plan);

  NetServerOptions net;
  net.host = "127.0.0.1";
  net.port = 0;
  net.reactors = 1;
  net.watchdog_ms = 50;
  NetServer::Stats stats;
  {
    TestServer ts(ServeOptions{.threads = 2}, net);
    Client a(ts.server.port());
    Client b(ts.server.port());
    a.send_all(make_req("hung-0", 64, 64, 64) + make_req("hung-1", 96, 64, 96));
    b.send_all(make_req("other", 128, 64, 128));

    // The hung request's slot is answered by the watchdog, in order, well
    // before the 400ms hang resolves; the pipelined request behind it and
    // the other connection are served normally.
    const auto first = a.read_line();
    ASSERT_TRUE(first.has_value());
    EXPECT_NE(first->find("\"id\":\"hung-0\""), std::string::npos) << *first;
    EXPECT_NE(first->find("\"ok\":false"), std::string::npos) << *first;
    EXPECT_NE(first->find("timed_out"), std::string::npos) << *first;
    const auto second = a.read_line();
    ASSERT_TRUE(second.has_value());
    EXPECT_NE(second->find("\"id\":\"hung-1\""), std::string::npos) << *second;
    EXPECT_NE(second->find("\"ok\":true"), std::string::npos) << *second;
    const auto other = b.read_line();
    ASSERT_TRUE(other.has_value());
    EXPECT_NE(other->find("\"ok\":true"), std::string::npos) << *other;

    // The worker is visibly hung far past the budget: the supervisor must
    // have reported the heartbeat stall.
    EXPECT_GE(ts.server.supervisor().stalls_detected(), 1);

    ts.stop();
    stats = ts.server.stats();
  }
  EXPECT_EQ(stats.timed_out, 1);
  EXPECT_EQ(stats.accepted, stats.closed) << "the cancelled slot must not leak its connection";
  EXPECT_EQ(reg.counter("net/watchdog/cancelled").value(), cancelled_before + 1);
}

TEST(Watchdog, ReactorLoopStallIsDetectedAndServiceSurvives) {
  fault::FaultPlan plan;
  // An early loop turn stalls 300ms against a 50ms budget.
  plan.events.push_back(event(fault::Kind::kReactorStall, 2, 300'000));
  fault::ScopedFaultPlan armed(plan);

  NetServerOptions net;
  net.host = "127.0.0.1";
  net.port = 0;
  net.reactors = 1;
  net.watchdog_ms = 50;
  TestServer ts(ServeOptions{.threads = 2}, net);
  ASSERT_TRUE(wait_until(
      [&] { return fault::fired_count(fault::Kind::kReactorStall) > 0; }, 5'000));
  ASSERT_TRUE(wait_until([&] { return ts.server.supervisor().stalls_detected() >= 1; }, 5'000));

  // The loop resumed: requests still round-trip.
  Client client(ts.server.port());
  client.send_all(make_req("after-stall", 64, 64, 64));
  const auto line = client.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"ok\":true"), std::string::npos) << *line;
}

// ---------------------------------------------------------------------------
// E2E: brownout under a sustained pool-stall storm.

TEST(Brownout, ColdShapesShedWithHintWarmShapesServeThenRecovers) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::int64_t entries_before = reg.counter("serve/brownout_entries").value();

  fault::FaultPlan plan;
  // Every one of the first 20 pool dequeues stalls the (single) worker
  // 50ms: the standing queue delay quickly exceeds the 1ms target.
  for (std::uint64_t i = 0; i < 20; ++i) {
    plan.events.push_back(event(fault::Kind::kPoolStall, i, 50'000));
  }
  fault::ScopedFaultPlan armed(plan);

  NetServerOptions net;
  net.host = "127.0.0.1";
  net.port = 0;
  net.reactors = 1;
  net.queue_depth = 128;  // depth never trips: only brownout sheds here
  net.target_delay_ms = 1;
  NetServer::Stats stats;
  {
    TestServer ts(ServeOptions{.threads = 1}, net);
    Client storm(ts.server.port());
    std::string burst;
    for (int i = 0; i < 25; ++i) burst += make_req("w" + std::to_string(i), 64, 64, 64);
    storm.send_all(burst);
    ASSERT_TRUE(wait_until([&] { return ts.server.admission().overloaded(); }, 10'000))
        << "the standing 50ms queue delay never tripped the 1ms target";

    // Cold shape (never completed): shed immediately with the backoff hint.
    Client probe(ts.server.port());
    probe.send_all(make_req("cold", 192, 96, 192));
    const auto shed = probe.read_line();
    ASSERT_TRUE(shed.has_value());
    EXPECT_NE(shed->find("\"ok\":false"), std::string::npos) << *shed;
    EXPECT_NE(shed->find("overloaded"), std::string::npos) << *shed;
    EXPECT_NE(shed->find("brownout"), std::string::npos) << *shed;
    EXPECT_NE(shed->find("\"retry_after_ms\":"), std::string::npos) << *shed;

    // Warm shape (the storm's, already completed at least once): admitted
    // and served even in brownout — it queues behind the storm, so give it
    // the long timeout.
    probe.send_all(make_req("warm", 64, 64, 64));
    const auto served = probe.read_line(30'000);
    ASSERT_TRUE(served.has_value());
    EXPECT_NE(served->find("\"id\":\"warm\""), std::string::npos) << *served;
    EXPECT_NE(served->find("\"ok\":true"), std::string::npos) << *served;

    // Recovery: once the stalls are exhausted fresh requests dequeue
    // immediately, and an interval of near-zero standing delay clears the
    // brownout with hysteresis.
    const auto deadline = Clock::now() + std::chrono::seconds(20);
    int recover_seq = 0;
    while (ts.server.admission().overloaded() && Clock::now() < deadline) {
      probe.send_all(make_req("r" + std::to_string(recover_seq++), 64, 64, 64));
      ASSERT_TRUE(probe.read_line(30'000).has_value());
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_FALSE(ts.server.admission().overloaded()) << "brownout never cleared";

    ts.stop();
    stats = ts.server.stats();
  }
  EXPECT_GE(stats.shed, 1);
  EXPECT_GE(reg.counter("serve/brownout_entries").value(), entries_before + 1);
}

}  // namespace
}  // namespace fusecu
