#include <gtest/gtest.h>

#include <cmath>

#include "sim/fusecu_quad.hpp"
#include "sim/softmax_unit.hpp"

namespace fusecu {
namespace {

TEST(SoftmaxUnit, RowsSumToOne) {
  SoftmaxUnit unit;
  Matrix s = make_test_matrix(5, 9, 7);
  Matrix p = unit.apply(s);
  for (Index r = 0; r < p.rows(); ++r) {
    double sum = 0.0;
    for (Index c = 0; c < p.cols(); ++c) {
      EXPECT_GT(p.at(r, c), 0.0);
      sum += p.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(SoftmaxUnit, MatchesDirectFormula) {
  SoftmaxUnit unit;
  Matrix s(1, 3);
  s.at(0, 0) = 1.0;
  s.at(0, 1) = 2.0;
  s.at(0, 2) = 3.0;
  Matrix p = unit.apply(s);
  const double z = std::exp(1.0) + std::exp(2.0) + std::exp(3.0);
  EXPECT_NEAR(p.at(0, 0), std::exp(1.0) / z, 1e-12);
  EXPECT_NEAR(p.at(0, 2), std::exp(3.0) / z, 1e-12);
}

TEST(SoftmaxUnit, NumericallyStableForLargeScores) {
  SoftmaxUnit unit;
  Matrix s(1, 2);
  s.at(0, 0) = 1000.0;
  s.at(0, 1) = 1001.0;
  Matrix p = unit.apply(s);
  EXPECT_FALSE(std::isnan(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0, 1e-12);
  EXPECT_GT(p.at(0, 1), p.at(0, 0));
}

TEST(SoftmaxUnit, CycleModel) {
  SoftmaxUnit unit(/*lanes=*/4, /*row_latency=*/10);
  Matrix s = make_test_matrix(3, 9, 8);
  unit.apply(s);
  // Per row: 3 passes of ceil(9/4) = 3 cycles, plus latency 10.
  EXPECT_EQ(unit.last_cycles(), 3 * (3 * 3 + 10));
  EXPECT_EQ(unit.elements_processed(), 27);
  EXPECT_THROW(SoftmaxUnit(0), std::invalid_argument);
}

TEST(AttentionTileFusion, MatchesReferenceWithSoftmaxOnChip) {
  FuseCuQuad quad(8);
  SoftmaxUnit softmax;
  Matrix q = make_test_matrix(8, 5, 11);
  Matrix k_t = make_test_matrix(5, 8, 12);
  Matrix v = make_test_matrix(8, 6, 13);

  quad.reset_traffic();
  auto r = quad.run_attention_tile_fusion(q, k_t, v, softmax);
  EXPECT_TRUE(approx_equal(r.output, attention_reference(q, k_t, v), 1e-9));

  // Traffic: Q and K^T streamed in, O drained; S never crosses an edge.
  EXPECT_EQ(quad.input_traffic(), 8 * 5 + 5 * 8 + 8 * 6);
  EXPECT_EQ(quad.output_traffic(), 8 * 6);
  EXPECT_GT(r.cycles, softmax.last_cycles());
}

TEST(AttentionTileFusion, RejectsOversizedScoreTile) {
  FuseCuQuad quad(4);
  SoftmaxUnit softmax;
  EXPECT_THROW(quad.run_attention_tile_fusion(make_test_matrix(5, 4, 1), make_test_matrix(4, 4, 2),
                                              make_test_matrix(4, 4, 3), softmax),
               std::invalid_argument);
  EXPECT_THROW(quad.run_attention_tile_fusion(make_test_matrix(4, 4, 1), make_test_matrix(4, 4, 2),
                                              make_test_matrix(5, 4, 3), softmax),
               std::invalid_argument);
}

TEST(MultiHeadAttention, HeadsDistributeAcrossUnitsAndOverlap) {
  FuseCuQuad quad(8);
  SoftmaxUnit softmax;
  std::vector<FuseCuQuad::AttentionHead> heads;
  for (int h = 0; h < 8; ++h) {
    heads.push_back({make_test_matrix(8, 4, 900 + static_cast<std::uint64_t>(h)),
                     make_test_matrix(4, 8, 910 + static_cast<std::uint64_t>(h)),
                     make_test_matrix(8, 4, 920 + static_cast<std::uint64_t>(h))});
  }
  auto multi = quad.run_attention_heads(heads, softmax);
  ASSERT_EQ(multi.outputs.size(), 8u);
  for (std::size_t h = 0; h < heads.size(); ++h) {
    EXPECT_TRUE(approx_equal(multi.outputs[h],
                             attention_reference(heads[h].q, heads[h].k_t, heads[h].v), 1e-9))
        << "head " << h;
  }
  // 8 identical-shaped heads over 4 units overlap: the makespan is about a
  // quarter of running them back-to-back on one unit.
  CycleCount serial = 0;
  {
    FuseCuQuad one(8);
    SoftmaxUnit sm;
    for (const auto& head : heads) {
      serial += one.run_attention_tile_fusion(head.q, head.k_t, head.v, sm).cycles;
    }
  }
  EXPECT_LE(4 * multi.cycles, serial + 4);
}

TEST(ApproxEqual, ShapeAndTolerance) {
  Matrix a(2, 2), b(2, 2), c(2, 3);
  a.at(0, 0) = 1.0;
  b.at(0, 0) = 1.0 + 1e-12;
  EXPECT_TRUE(approx_equal(a, b));
  EXPECT_FALSE(approx_equal(a, c));
  b.at(0, 0) = 1.1;
  EXPECT_FALSE(approx_equal(a, b));
}

}  // namespace
}  // namespace fusecu
