#include <gtest/gtest.h>

#include <set>

#include "check/gen.hpp"
#include "check/harness.hpp"
#include "common/rng.hpp"
#include "principles/buffer_class.hpp"

namespace fusecu {
namespace {

// --- Rng edge cases: the generators lean on these contracts, so pin them.

TEST(RngEdge, EmptyUniformRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(5, 4), std::invalid_argument);
  EXPECT_THROW(rng.uniform(1, -1), std::invalid_argument);
  EXPECT_EQ(rng.uniform(7, 7), 7);  // singleton range is fine
}

TEST(RngEdge, PickFromEmptyContainerThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.pick(0), std::invalid_argument);
  EXPECT_EQ(rng.pick(1), 0u);
}

TEST(RngEdge, ChanceAtProbabilityExtremes) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(rng.chance(0.0));  // uniform01() in [0, 1) is never < 0
    EXPECT_TRUE(rng.chance(1.0));   // ... and always < 1
  }
}

TEST(RngEdge, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(0, 1 << 20), b.uniform(0, 1 << 20));
}

// --- Extent distribution: bounded, and actually size-biased.

TEST(GenExtent, BoundsAndBias) {
  Rng rng(7);
  const Index max_extent = 96;
  int units = 0, pow2 = 0;
  for (int i = 0; i < 4000; ++i) {
    const Index e = gen_extent(rng, max_extent);
    ASSERT_GE(e, 1);
    ASSERT_LE(e, max_extent);
    if (e == 1) ++units;
    if (e > 1 && (e & (e - 1)) == 0) ++pow2;
  }
  // ~10% unit and ~25% power-of-two by construction; allow wide slack.
  EXPECT_GT(units, 4000 / 25);
  EXPECT_GT(pow2, 4000 / 10);
}

TEST(GenExtent, UnitMaxIsDegenerateButValid) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(gen_extent(rng, 1), 1);
}

// --- Buffer-size distribution: floor of 3, boundary mass, full regime
// coverage over a modest number of draws.

TEST(GenBufferSize, FloorAndBoundaryMass) {
  Rng rng(11);
  TensorOp op = TensorOp::matmul("g", 64, 64, 64);
  const BufferSize b1 = 64 * 64 / 4, b2 = 64 * 64 / 2, b3 = op.tensor_size(op.smallest_tensor());
  std::set<BufferSize> exact_hits;
  for (int i = 0; i < 2000; ++i) {
    const BufferSize bs = gen_buffer_size(rng, op);
    ASSERT_GE(bs, 3);
    if (bs == b1 || bs == b2 || bs == b3) exact_hits.insert(bs);
  }
  // All three classification boundaries must be hit *exactly* at least once.
  EXPECT_EQ(exact_hits.size(), 3u) << "boundaries hit: " << exact_hits.size();
}

TEST(GenBufferSize, CoversAllFourRegimes) {
  Rng rng(13);
  TensorOp op = TensorOp::matmul("g", 48, 80, 64);
  std::set<BufferClass> seen;
  for (int i = 0; i < 500; ++i) seen.insert(classify_buffer(op, gen_buffer_size(rng, op)));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(GenBufferSize, TinyOpStaysAboveMinimalWorkingSet) {
  Rng rng(17);
  TensorOp op = TensorOp::matmul("g", 1, 1, 1);
  for (int i = 0; i < 200; ++i) EXPECT_GE(gen_buffer_size(rng, op), 3);
}

// --- Workload generation: determinism, kind forcing, chain well-formedness.

TEST(GenWorkload, SameSeedSameWorkloadStream) {
  Rng a(99), b(99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(gen_workload(a).to_string(), gen_workload(b).to_string());
  }
}

TEST(GenWorkload, ForcedKindsMaterialize) {
  Rng rng(21);
  for (int i = 0; i < 20; ++i) {
    Workload wi = gen_workload_of(WorkloadKind::kIntra, rng);
    EXPECT_EQ(wi.kind, WorkloadKind::kIntra);
    EXPECT_NO_THROW(wi.intra_op());

    Workload wf = gen_workload_of(WorkloadKind::kFused, rng);
    EXPECT_EQ(wf.kind, WorkloadKind::kFused);
    EXPECT_NO_THROW(wf.fused_pair());

    Workload wc = gen_workload_of(WorkloadKind::kChain, rng);
    EXPECT_EQ(wc.kind, WorkloadKind::kChain);
    ASSERT_GE(wc.chain.num_ops(), 1);
    EXPECT_EQ(wc.chain.direct().ops().size(), static_cast<std::size_t>(wc.chain.num_ops()));
    // with_elementwise() only adds pointwise ops, never matmuls.
    EXPECT_GE(wc.chain.with_elementwise().ops().size(), wc.chain.direct().ops().size());
  }
}

TEST(GenArchSpec, BufferAlwaysUsable) {
  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    ArchSpec arch = gen_arch_spec(rng);
    EXPECT_GE(arch.buffer_elements(), 3);
    EXPECT_FALSE(arch.name.empty());
  }
}

// --- Trial-seed derivation is a pure function and collision-resistant over
// the ranges CI uses.

TEST(TrialSeed, PureAndDistinct) {
  EXPECT_EQ(trial_seed(1, 0), trial_seed(1, 0));
  std::set<std::uint64_t> seeds;
  for (int base = 1; base <= 4; ++base) {
    for (int t = 0; t < 500; ++t) seeds.insert(trial_seed(static_cast<std::uint64_t>(base), t));
  }
  EXPECT_EQ(seeds.size(), 4u * 500u);
  // The derived seed alone regenerates the trial workload.
  Workload w1 = workload_for_trial(3, 17);
  Workload w2 = workload_for_trial(3, 17);
  EXPECT_EQ(w1.to_string(), w2.to_string());
  EXPECT_EQ(w1.seed, trial_seed(3, 17));
}

}  // namespace
}  // namespace fusecu
