#include <gtest/gtest.h>

#include "arch/arch_spec.hpp"
#include "common/units.hpp"

namespace fusecu {
namespace {

TEST(ArchSpec, TableIIIAttributes) {
  ArchSpec tpu = make_tpu_v4i();
  EXPECT_FALSE(tpu.supports(Stationarity::kOutput));
  EXPECT_TRUE(tpu.supports(Stationarity::kWeight));
  EXPECT_EQ(tpu.tiling_flex, TilingFlexibility::kLow);
  EXPECT_FALSE(tpu.supports_fusion);

  ArchSpec gemmini = make_gemmini();
  EXPECT_TRUE(gemmini.supports(Stationarity::kWeight));
  EXPECT_TRUE(gemmini.supports(Stationarity::kOutput));
  EXPECT_FALSE(gemmini.supports(Stationarity::kInput));
  EXPECT_EQ(gemmini.tiling_flex, TilingFlexibility::kLow);

  ArchSpec planaria = make_planaria();
  EXPECT_FALSE(planaria.supports(Stationarity::kOutput));
  EXPECT_EQ(planaria.tiling_flex, TilingFlexibility::kHigh);
  EXPECT_FALSE(planaria.supports_fusion);

  ArchSpec unfcu = make_unfcu();
  EXPECT_TRUE(unfcu.supports(Stationarity::kInput));
  EXPECT_EQ(unfcu.tiling_flex, TilingFlexibility::kMiddle);
  EXPECT_FALSE(unfcu.supports_fusion);

  ArchSpec fcu = make_fusecu();
  EXPECT_TRUE(fcu.supports(Stationarity::kInput));
  EXPECT_EQ(fcu.tiling_flex, TilingFlexibility::kMiddle);
  EXPECT_TRUE(fcu.supports_fusion);
}

TEST(ArchSpec, PaperComputeConfiguration) {
  // 128 x 128 x 4 PEs and 1 TB/s on-chip bandwidth (Sec. V-A).
  for (const ArchSpec& a : all_platforms()) {
    EXPECT_EQ(a.total_pes(), 128 * 128 * 4) << a.name;
    EXPECT_DOUBLE_EQ(a.bandwidth_bytes_per_cycle, 1000.0) << a.name;
    EXPECT_EQ(a.bytes_per_element, 2) << a.name;
  }
}

TEST(ArchSpec, BufferElementsConvertsBytes) {
  ArchSpec a = make_tpu_v4i(512 * kKiB);
  EXPECT_EQ(a.buffer_elements(), 512 * 1024 / 2);
}

TEST(ArchSpec, TileGranularityPerFlexibility) {
  EXPECT_EQ(make_tpu_v4i().tile_granularity(), 128);
  EXPECT_EQ(make_gemmini().tile_granularity(), 128);
  EXPECT_EQ(make_unfcu().tile_granularity(), 64);
  EXPECT_EQ(make_fusecu().tile_granularity(), 64);
  EXPECT_EQ(make_planaria().tile_granularity(), 32);
}

TEST(ArchSpec, UnitShapesMatchFlexibility) {
  // Low: only the native square.
  auto low = make_tpu_v4i().unit_shapes();
  ASSERT_EQ(low.size(), 1u);
  EXPECT_EQ(low[0].rows, 128);
  EXPECT_EQ(low[0].cols, 128);

  // Middle: square + narrow + wide compositions, same PE count.
  auto mid = make_fusecu().unit_shapes();
  ASSERT_EQ(mid.size(), 3u);
  for (const ArrayShape& s : mid) EXPECT_EQ(s.rows * s.cols, 128 * 128);

  // High: every power-of-two rectangle down to the 32-wide pod.
  auto high = make_planaria().unit_shapes();
  EXPECT_GE(high.size(), 5u);
  for (const ArrayShape& s : high) {
    EXPECT_EQ(s.rows * s.cols, 128 * 128);
    EXPECT_GE(s.rows, 32);
    EXPECT_GE(s.cols, 32);
  }
}

TEST(ArchSpec, EnumNames) {
  EXPECT_STREQ(to_string(Stationarity::kWeight), "WS");
  EXPECT_STREQ(to_string(Stationarity::kOutput), "OS");
  EXPECT_STREQ(to_string(Stationarity::kInput), "IS");
  EXPECT_STREQ(to_string(TilingFlexibility::kLow), "low");
  EXPECT_STREQ(to_string(TilingFlexibility::kMiddle), "middle");
  EXPECT_STREQ(to_string(TilingFlexibility::kHigh), "high");
}

}  // namespace
}  // namespace fusecu
