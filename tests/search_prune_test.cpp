// Byte-identity of the pruned exhaustive oracle: ExhaustiveMode::kPruned
// must return the exact plan kFull returns — same dataflow (order + tiles,
// i.e. the same argmin under the exact iteration order and tie-breaks), same
// access breakdown — over a large adversarial workload population.  This is
// the soundness proof obligation of the floor early-exit and the
// footprint-monotone breaks (DESIGN.md "Pruning soundness").

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/gen.hpp"
#include "obs/metrics.hpp"
#include "search/exhaustive.hpp"
#include "test_util.hpp"

namespace fusecu {
namespace {

std::string intra_sig(const std::optional<IntraSearchResult>& r) {
  if (!r) return "none";
  std::ostringstream os;
  os << "order=[";
  for (int d : r->dataflow.loop_order) os << d << ",";
  os << "] tile=[";
  for (Index t : r->dataflow.tile) os << t << ",";
  os << "] per_tensor=[";
  for (AccessCount a : r->access.per_tensor) os << a << ",";
  os << "] total=" << r->access.total << " fp=" << r->access.buffer_footprint;
  return os.str();
}

std::string fused_sig(const std::optional<FusedSearchResult>& r) {
  if (!r) return "none";
  std::ostringstream os;
  os << "op1=" << r->access.op1_external << " op2=" << r->access.op2_external
     << " total=" << r->access.total << " fp=" << r->access.buffer_footprint;
  if (r->phased) {
    os << " phased{" << r->phased->t_m << "," << r->phased->t_k << "," << r->phased->t_l
       << "," << r->phased->t_n << "," << (r->phased->l_outer ? "L" : "M") << "}";
  }
  if (r->resident) {
    os << " resident{[";
    for (Index t : r->resident->df1.tile) os << t << ",";
    os << "],[";
    for (Index t : r->resident->df2.tile) os << t << ",";
    os << "]}";
  }
  return os.str();
}

// 1000+ intra workloads from the harness's adversarial distribution (unit
// dims, primes, powers of two, boundary-biased buffer sizes).
TEST(SearchPrune, IntraByteIdenticalToFullOverThousandWorkloads) {
  GenLimits limits;
  limits.max_extent = 48;
  Rng rng(20260806);
  for (int i = 0; i < 1000; ++i) {
    const Workload w = gen_workload_of(WorkloadKind::kIntra, rng, limits);
    const TensorOp op = w.intra_op();
    const std::string full = intra_sig(exhaustive_intra(op, w.bs, ExhaustiveMode::kFull));
    const std::string pruned = intra_sig(exhaustive_intra(op, w.bs, ExhaustiveMode::kPruned));
    ASSERT_EQ(pruned, full) << "workload " << i << ": " << w.to_string();
  }
}

// Tiny exhaustively-enumerated grid: every (m, k, l) up to 6 at several
// buffer sizes, including infeasible ones (bs too small for any tiling).
TEST(SearchPrune, IntraByteIdenticalOnDenseSmallGrid) {
  for (Index m = 1; m <= 6; ++m) {
    for (Index k = 1; k <= 6; ++k) {
      for (Index l = 1; l <= 6; ++l) {
        const TensorOp op = TensorOp::matmul("g", m, k, l);
        for (BufferSize bs : {BufferSize(1), BufferSize(3), BufferSize(7), BufferSize(20),
                              BufferSize(200)}) {
          ASSERT_EQ(intra_sig(exhaustive_intra(op, bs, ExhaustiveMode::kPruned)),
                    intra_sig(exhaustive_intra(op, bs, ExhaustiveMode::kFull)))
              << m << "x" << k << "x" << l << " bs=" << bs;
        }
      }
    }
  }
}

TEST(SearchPrune, FusedByteIdenticalToFullOverThreeHundredWorkloads) {
  GenLimits limits;
  limits.max_extent = 48;
  Rng rng(998244353);
  for (int i = 0; i < 300; ++i) {
    const Workload w = gen_workload_of(WorkloadKind::kFused, rng, limits);
    const FusedPair pair = w.fused_pair();
    const std::string full = fused_sig(exhaustive_fused(pair, w.bs, ExhaustiveMode::kFull));
    const std::string pruned =
        fused_sig(exhaustive_fused(pair, w.bs, ExhaustiveMode::kPruned));
    ASSERT_EQ(pruned, full) << "workload " << i << ": " << w.to_string();
  }
}

// The pruning must actually skip work (and publish how much): on a
// power-of-two cube the floor is tight and most of the grid dies early.
TEST(SearchPrune, PrunedSkipsTuplesAndCountsThem) {
  Counter& skipped = MetricsRegistry::global().counter("search/exhaustive_pruned_evals");
  Counter& evaluated = MetricsRegistry::global().counter("search/exhaustive_intra/evaluations");
  const std::int64_t skipped_before = skipped.value();
  const std::int64_t evaluated_before = evaluated.value();

  // Buffer large enough for the untiled Three-NRA dataflow: the incumbent
  // reaches the ideal-minimum floor early and the rest of the grid dies to
  // the early-exit, not just to the footprint breaks.
  const TensorOp op = TensorOp::matmul("p2", 64, 64, 64);
  const BufferSize big = 3 * 64 * 64 + 64;
  const auto pruned = exhaustive_intra(op, big, ExhaustiveMode::kPruned);
  const std::int64_t skipped_by_pruned = skipped.value() - skipped_before;
  const std::int64_t evaluated_by_pruned = evaluated.value() - evaluated_before;

  const auto full = exhaustive_intra(op, big, ExhaustiveMode::kFull);
  const std::int64_t evaluated_by_full = evaluated.value() - evaluated_before - evaluated_by_pruned;

  ASSERT_TRUE(pruned.has_value());
  EXPECT_EQ(intra_sig(pruned), intra_sig(full));
  EXPECT_GT(skipped_by_pruned, 0);
  EXPECT_LT(evaluated_by_pruned, evaluated_by_full);
}

}  // namespace
}  // namespace fusecu
