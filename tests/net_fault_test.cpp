#include "common/fault.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "net/socket.hpp"

/// common/fault.hpp: the deterministic fault injector behind the chaos
/// harness.  Covered here: plan generation as a pure function of the seed,
/// JSON round-tripping, the one-shot invocation- and byte-triggered firing
/// semantics, arm/disarm lifecycle, and the net/socket.hpp syscall shims
/// observed through a real socketpair.

namespace fusecu {
namespace {

fault::FaultEvent event(fault::Kind kind, std::uint64_t at, std::uint64_t arg = 0) {
  fault::FaultEvent e;
  e.kind = kind;
  e.at = at;
  e.arg = arg;
  return e;
}

TEST(FaultPlan, GenerateIsAPureFunctionOfTheSeed) {
  const fault::FaultPlan a = fault::FaultPlan::generate(123456789);
  const fault::FaultPlan b = fault::FaultPlan::generate(123456789);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].arg, b.events[i].arg);
  }
  EXPECT_EQ(a.seed, 123456789u);

  // Magnitudes stay trial-friendly: stalls <= 20ms, skew <= 3s, caps >= 1.
  for (int seed = 1; seed < 50; ++seed) {
    const fault::FaultPlan plan = fault::FaultPlan::generate(static_cast<std::uint64_t>(seed));
    EXPECT_LE(plan.events.size(), 12u);
    for (const fault::FaultEvent& e : plan.events) {
      switch (e.kind) {
        case fault::Kind::kPoolStall:
          EXPECT_LE(e.arg, 20'000u);
          break;
        case fault::Kind::kClockSkew:
          EXPECT_LE(e.arg, 3'000u);
          break;
        case fault::Kind::kShortRead:
        case fault::Kind::kShortWrite:
          EXPECT_GE(e.arg, 1u);
          break;
        case fault::Kind::kWorkerHang:
          // Watchdog-scale: always crosses a 2 x 40 ms hang-guard deadline,
          // which is what makes the chaos watchdog invariant plan-decidable.
          EXPECT_GE(e.arg, 100'000u);
          EXPECT_LE(e.arg, 300'000u);
          break;
        case fault::Kind::kReactorStall:
          EXPECT_GE(e.arg, 20'000u);
          EXPECT_LE(e.arg, 120'000u);
          break;
        default:
          break;
      }
    }
  }
}

TEST(FaultPlan, JsonRoundTripsLosslessly) {
  fault::FaultPlan plan;
  plan.seed = 0xdeadbeefcafef00dull;  // full-width: must survive as a string
  plan.events.push_back(event(fault::Kind::kReadReset, 4096, 0));
  plan.events.push_back(event(fault::Kind::kShortWrite, 3, 7));
  plan.events.push_back(event(fault::Kind::kClockSkew, 11, 2500));

  const fault::FaultPlan parsed = fault::FaultPlan::from_json(plan.to_json());
  EXPECT_EQ(parsed.seed, plan.seed);
  ASSERT_EQ(parsed.events.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed.events[i].kind, plan.events[i].kind);
    EXPECT_EQ(parsed.events[i].at, plan.events[i].at);
    EXPECT_EQ(parsed.events[i].arg, plan.events[i].arg);
  }

  EXPECT_THROW(fault::FaultPlan::from_json("{\"schema\":\"bogus/9\",\"events\":[]}"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::from_json(
                   "{\"schema\":\"fusecu_fault_plan/1\",\"events\":[{\"kind\":\"nope\"}]}"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::from_json("not json at all"), std::exception);
}

TEST(Fault, DisarmedHooksAreInertAndGenerateRoundTripsThroughKindCounts) {
  ASSERT_FALSE(fault::armed());
  EXPECT_EQ(fault::on_read(100).error, 0);
  EXPECT_EQ(fault::on_read(100).cap, 0u);
  EXPECT_EQ(fault::on_write(100).error, 0);
  EXPECT_EQ(fault::on_accept(), 0);
  EXPECT_FALSE(fault::on_poll());
  EXPECT_EQ(fault::clock_skew_ms(), 0);
  EXPECT_EQ(fault::on_pool_task(), 0u);
  EXPECT_EQ(fault::test_bug(), fault::TestBug::kNone);

  fault::FaultPlan plan;
  plan.events.push_back(event(fault::Kind::kReadEintr, 0));
  plan.events.push_back(event(fault::Kind::kReadEintr, 1));
  plan.events.push_back(event(fault::Kind::kSpuriousWake, 0));
  const std::vector<int> counts = plan.kind_counts();
  EXPECT_EQ(counts[static_cast<int>(fault::Kind::kReadEintr)], 2);
  EXPECT_EQ(counts[static_cast<int>(fault::Kind::kSpuriousWake)], 1);
  EXPECT_EQ(plan.reset_events(), 0);
  plan.events.push_back(event(fault::Kind::kWriteReset, 10));
  EXPECT_EQ(plan.reset_events(), 1);
}

TEST(Fault, InvocationTriggeredEventsFireOnceAtTheirIndex) {
  fault::FaultPlan plan;
  plan.events.push_back(event(fault::Kind::kReadEintr, 1));
  plan.events.push_back(event(fault::Kind::kShortRead, 2, 9));
  fault::ScopedFaultPlan armed(plan);

  EXPECT_EQ(fault::on_read(64).error, 0) << "invocation 0: nothing scheduled";
  EXPECT_EQ(fault::on_read(64).error, EINTR) << "invocation 1";
  const fault::IoFault capped = fault::on_read(64);
  EXPECT_EQ(capped.error, 0);
  EXPECT_EQ(capped.cap, 9u) << "invocation 2";
  EXPECT_EQ(fault::on_read(64).error, 0) << "one-shot: never again";
  EXPECT_EQ(fault::on_read(64).cap, 0u);
  EXPECT_EQ(fault::fired_count(fault::Kind::kReadEintr), 1);
  EXPECT_EQ(fault::fired_count(fault::Kind::kShortRead), 1);
  EXPECT_EQ(fault::fired_total(), 2);
}

TEST(Fault, ByteTriggeredResetFiresAtTheCumulativeOffset) {
  fault::FaultPlan plan;
  plan.events.push_back(event(fault::Kind::kWriteReset, 100));
  fault::ScopedFaultPlan armed(plan);

  EXPECT_EQ(fault::on_write(64).error, 0) << "0 bytes written so far";
  fault::note_write_bytes(60);
  EXPECT_EQ(fault::on_write(64).error, 0) << "60 < 100";
  fault::note_write_bytes(50);
  EXPECT_EQ(fault::on_write(64).error, EPIPE) << "110 >= 100";
  EXPECT_EQ(fault::on_write(64).error, 0) << "one-shot";
  // Reads are a separate byte stream: a read reset at the same offset is
  // driven by read bytes only.
  EXPECT_EQ(fault::fired_count(fault::Kind::kWriteReset), 1);
}

TEST(Fault, ClockSkewAccumulatesAndAcceptFaultsPickTheirErrno) {
  fault::FaultPlan plan;
  plan.events.push_back(event(fault::Kind::kClockSkew, 0, 500));
  plan.events.push_back(event(fault::Kind::kClockSkew, 2, 700));
  plan.events.push_back(event(fault::Kind::kAcceptEmfile, 0));
  plan.events.push_back(event(fault::Kind::kAcceptDefer, 1));
  plan.events.push_back(event(fault::Kind::kSpuriousWake, 1));
  plan.events.push_back(event(fault::Kind::kPoolStall, 0, 999'999));
  fault::ScopedFaultPlan armed(plan);

  EXPECT_EQ(fault::clock_skew_ms(), 500);
  EXPECT_EQ(fault::clock_skew_ms(), 500) << "skew is permanent, not per-call";
  EXPECT_EQ(fault::clock_skew_ms(), 1200) << "second jump accumulates";

  EXPECT_EQ(fault::on_accept(), EMFILE);
  EXPECT_EQ(fault::on_accept(), EAGAIN);
  EXPECT_EQ(fault::on_accept(), 0);

  EXPECT_FALSE(fault::on_poll());
  EXPECT_TRUE(fault::on_poll());
  EXPECT_FALSE(fault::on_poll());

  EXPECT_EQ(fault::on_pool_task(), 50'000u) << "stalls are hard-capped at 50ms";
}

TEST(Fault, WorkerHangsAndReactorStallsFireAtTheirSitesWithHardCaps) {
  fault::FaultPlan plan;
  plan.events.push_back(event(fault::Kind::kWorkerHang, 0, 999'999'999));
  plan.events.push_back(event(fault::Kind::kPoolStall, 1, 30'000));
  plan.events.push_back(event(fault::Kind::kWorkerHang, 1, 120'000));
  plan.events.push_back(event(fault::Kind::kReactorStall, 0, 7'000'000));
  plan.events.push_back(event(fault::Kind::kReactorStall, 2, 25'000));
  fault::ScopedFaultPlan armed(plan);

  EXPECT_EQ(fault::on_pool_task(), 500'000u) << "hangs are hard-capped at 500ms";
  EXPECT_EQ(fault::on_pool_task(), 150'000u)
      << "a stall and a hang due at the same pool invocation stack (30ms + 120ms)";
  EXPECT_EQ(fault::on_pool_task(), 0u);

  EXPECT_EQ(fault::on_loop_turn(), 300'000u) << "loop stalls are hard-capped at 300ms";
  EXPECT_EQ(fault::on_loop_turn(), 0u) << "invocation 1: nothing scheduled";
  EXPECT_EQ(fault::on_loop_turn(), 25'000u);
  EXPECT_EQ(fault::on_loop_turn(), 0u) << "one-shot";

  EXPECT_EQ(fault::fired_count(fault::Kind::kWorkerHang), 2);
  EXPECT_EQ(fault::fired_count(fault::Kind::kReactorStall), 2);

  // The new kinds round-trip by name through the JSON schema.
  const fault::FaultPlan parsed = fault::FaultPlan::from_json(plan.to_json());
  ASSERT_EQ(parsed.events.size(), plan.events.size());
  EXPECT_EQ(parsed.events[0].kind, fault::Kind::kWorkerHang);
  EXPECT_EQ(parsed.events[3].kind, fault::Kind::kReactorStall);
}

TEST(Fault, DisarmRestoresTheFastPathAndKeepsFiredCountsUntilNextArm) {
  fault::FaultPlan plan;
  plan.events.push_back(event(fault::Kind::kReadEintr, 0));
  fault::arm(plan, fault::TestBug::kReorderResponses);
  EXPECT_TRUE(fault::armed());
  EXPECT_EQ(fault::test_bug(), fault::TestBug::kReorderResponses);
  EXPECT_EQ(fault::on_read(8).error, EINTR);
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::test_bug(), fault::TestBug::kNone);
  EXPECT_EQ(fault::on_read(8).error, 0);
  EXPECT_EQ(fault::fired_count(fault::Kind::kReadEintr), 1)
      << "fired counters survive disarm for harvesting";
  fault::arm(fault::FaultPlan{});
  EXPECT_EQ(fault::fired_count(fault::Kind::kReadEintr), 0) << "arm resets them";
  fault::disarm();
}

/// The shims over a real socketpair: injected outcomes come back through
/// the syscall return/errno convention the event loop already speaks.
class FaultShimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0) << std::strerror(errno);
  }
  void TearDown() override {
    close_fd(fds_[0]);
    close_fd(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FaultShimTest, DisarmedShimsAreTheBareSyscalls) {
  const std::string msg = "hello fault layer";
  ASSERT_EQ(sys_send(fds_[0], msg.data(), msg.size()), static_cast<ssize_t>(msg.size()));
  char buf[64];
  ASSERT_EQ(sys_recv(fds_[1], buf, sizeof(buf)), static_cast<ssize_t>(msg.size()));
  EXPECT_EQ(std::string(buf, msg.size()), msg);
}

TEST_F(FaultShimTest, ShortReadCapsTheTransferWithoutLosingBytes) {
  fault::FaultPlan plan;
  plan.events.push_back(event(fault::Kind::kShortRead, 0, 4));
  fault::ScopedFaultPlan armed(plan);
  const std::string msg = "twelve bytes";
  ASSERT_EQ(sys_send(fds_[0], msg.data(), msg.size()), static_cast<ssize_t>(msg.size()));
  char buf[64];
  ASSERT_EQ(sys_recv(fds_[1], buf, sizeof(buf)), 4) << "capped to 4 bytes";
  ASSERT_EQ(sys_recv(fds_[1], buf + 4, sizeof(buf) - 4), static_cast<ssize_t>(msg.size() - 4))
      << "the remainder is still in the socket, not dropped";
  EXPECT_EQ(std::string(buf, msg.size()), msg);
}

TEST_F(FaultShimTest, InjectedErrorsNeverTouchTheKernel) {
  fault::FaultPlan plan;
  // The reset is byte-triggered and due from 0 bytes on, so it outranks the
  // benign faults and claims invocation 0; the EINTR fires on the next one.
  plan.events.push_back(event(fault::Kind::kReadEintr, 1));
  plan.events.push_back(event(fault::Kind::kReadReset, 0));
  fault::ScopedFaultPlan armed(plan);
  const std::string msg = "payload";
  ASSERT_EQ(sys_send(fds_[0], msg.data(), msg.size()), static_cast<ssize_t>(msg.size()));
  char buf[64];
  errno = 0;
  ASSERT_EQ(sys_recv(fds_[1], buf, sizeof(buf)), -1);
  EXPECT_EQ(errno, ECONNRESET);
  errno = 0;
  ASSERT_EQ(sys_recv(fds_[1], buf, sizeof(buf)), -1);
  EXPECT_EQ(errno, EINTR);
  // Both fired without consuming socket data: the payload is intact.
  ASSERT_EQ(sys_recv(fds_[1], buf, sizeof(buf)), static_cast<ssize_t>(msg.size()));
  EXPECT_EQ(std::string(buf, msg.size()), msg);
}

TEST_F(FaultShimTest, WriteResetSurfacesAsEpipeAtTheByteOffset) {
  fault::FaultPlan plan;
  plan.events.push_back(event(fault::Kind::kWriteReset, 5));
  fault::ScopedFaultPlan armed(plan);
  ASSERT_EQ(sys_send(fds_[0], "12345", 5), 5);
  errno = 0;
  ASSERT_EQ(sys_send(fds_[0], "x", 1), -1) << "5 cumulative bytes >= offset 5";
  EXPECT_EQ(errno, EPIPE);
  ASSERT_EQ(sys_send(fds_[0], "x", 1), 1) << "one-shot";
}

}  // namespace
}  // namespace fusecu
