// Fallback driver for toolchains without libFuzzer (GCC): replay every file
// named on the command line through LLVMFuzzerTestOneInput, mimicking
// libFuzzer's file-replay mode so the CI seed-corpus check runs the same
// command under either compiler.  No exploration happens here — coverage-
// guided mutation needs the real engine.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind('-', 0) == 0) continue;  // ignore libFuzzer-style flags
    std::ifstream in(arg, std::ios::binary);
    if (!in) {
      std::cerr << "fuzz: cannot open corpus file " << arg << "\n";
      return 2;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::cerr << "fuzz: replayed " << replayed << " corpus file(s) (standalone driver; build "
               "with Clang for coverage-guided fuzzing)\n";
  return 0;
}
