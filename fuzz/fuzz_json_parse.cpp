// Fuzz target for common/json_parse.hpp — the parser behind every request
// line the server accepts from the network (via plan_request_from_json) and
// every repro/fault-plan artifact the tools load.  Malformed input must
// throw ParseError (a std::invalid_argument), never crash, hang or leak;
// well-formed input must produce a value tree that walks cleanly.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/json_parse.hpp"

namespace {

/// Touch every node so ASan sees any dangling/uninitialized structure.
std::size_t walk(const fusecu::JsonValue& value) {
  std::size_t nodes = 1;
  switch (value.kind()) {
    case fusecu::JsonValue::Kind::kBool:
      (void)value.as_bool();
      break;
    case fusecu::JsonValue::Kind::kNumber:
      (void)value.as_number();
      break;
    case fusecu::JsonValue::Kind::kString:
      (void)value.as_string().size();
      break;
    case fusecu::JsonValue::Kind::kArray:
      for (const fusecu::JsonValuePtr& item : value.as_array()) nodes += walk(*item);
      break;
    case fusecu::JsonValue::Kind::kObject:
      for (const auto& [key, member] : value.as_object()) {
        (void)key.size();
        nodes += walk(*member);
      }
      break;
    case fusecu::JsonValue::Kind::kNull:
      break;
  }
  return nodes;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const fusecu::JsonValuePtr doc = fusecu::parse_json(text, "<fuzz>");
    (void)walk(*doc);
  } catch (const std::invalid_argument&) {
    // ParseError: the only acceptable failure mode for malformed input.
  }
  return 0;
}
