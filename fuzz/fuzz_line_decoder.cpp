// Fuzz target for serve/line_decoder.hpp — the '\n' splitter both the stdin
// stream and every TCP connection feed raw bytes into.  The first two input
// bytes steer the harness (line cap and feed chunk size) so the fuzzer can
// explore cap boundaries and re-chunking; the rest is the byte stream.
//
// Invariants checked on every input:
//   * buffered() stays bounded by max_line_bytes + one feed chunk;
//   * an oversized line is reported with empty text (discarded, never
//     truncated half-JSON);
//   * a normal line never contains '\n' and never exceeds the cap;
//   * the total line count is chunking-independent: re-feeding the same
//     stream byte-by-byte yields the same sequence of (text, oversized).

// The invariants below must hold in every build type, including
// RelWithDebInfo (which defines NDEBUG).
#undef NDEBUG

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/line_decoder.hpp"

namespace {

std::vector<std::pair<std::string, bool>> decode_all(const std::uint8_t* data, std::size_t size,
                                                     std::size_t cap, std::size_t chunk) {
  fusecu::LineDecoder decoder(cap);
  std::vector<std::pair<std::string, bool>> lines;
  fusecu::LineDecoder::DecodedLine line;
  std::size_t off = 0;
  while (off < size) {
    const std::size_t n = std::min(chunk, size - off);
    decoder.feed(reinterpret_cast<const char*>(data) + off, n);
    off += n;
    while (decoder.next(line)) {
      lines.emplace_back(std::move(line.text), line.oversized);
      assert(lines.back().second ? lines.back().first.empty()
                                 : lines.back().first.size() <= cap);
      assert(lines.back().first.find('\n') == std::string::npos);
    }
    assert(decoder.buffered() <= cap + chunk);
  }
  if (decoder.finish(line)) {
    lines.emplace_back(std::move(line.text), line.oversized);
  }
  return lines;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 2) return 0;
  // Byte 0: line cap in [1, 64]; byte 1: feed chunk size in [1, 32].
  const std::size_t cap = 1 + (data[0] % 64);
  const std::size_t chunk = 1 + (data[1] % 32);
  data += 2;
  size -= 2;

  const auto chunked = decode_all(data, size, cap, chunk);
  const auto bytewise = decode_all(data, size, cap, 1);
  assert(chunked.size() == bytewise.size());
  for (std::size_t i = 0; i < chunked.size(); ++i) {
    assert(chunked[i] == bytewise[i]);
  }
  return 0;
}
