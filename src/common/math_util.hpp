#pragma once

#include <vector>

#include "common/types.hpp"

/// \file math_util.hpp
/// Small integer helpers shared by the cost models and optimizers.

namespace fusecu {

/// ceil(a / b) for positive integers.
constexpr Index ceil_div(Index a, Index b) { return (a + b - 1) / b; }

/// Round \p a up to the next multiple of \p b.
constexpr Index round_up(Index a, Index b) { return ceil_div(a, b) * b; }

/// Round \p a down to the previous multiple of \p b (at least b if a >= b).
constexpr Index round_down(Index a, Index b) { return (a / b) * b; }

/// Clamp \p v into [lo, hi].
constexpr Index clamp_index(Index v, Index lo, Index hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Integer floor square root.
Index isqrt(Index v);

/// All positive divisors of \p v in ascending order.
std::vector<Index> divisors(Index v);

/// Candidate tile sizes for a dimension of extent \p d: all divisors plus the
/// geometric ladder {1,2,4,...} clamped to d, deduplicated ascending.  Search
/// baselines sweep these rather than every integer in [1, d].
std::vector<Index> tile_candidates(Index d);

/// Geometric mean of a series of positive ratios (used for "average
/// saving/speedup" summaries, matching how accelerator papers aggregate).
double geo_mean(const std::vector<double>& xs);

/// Arithmetic mean.
double arith_mean(const std::vector<double>& xs);

}  // namespace fusecu
