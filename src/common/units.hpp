#pragma once

#include <string>

#include "common/types.hpp"

/// \file units.hpp
/// Byte-size units and human-readable formatting.

namespace fusecu {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

/// "512 KiB", "2.0 MiB", "96 B" — used in bench/table output.
std::string format_bytes(std::int64_t bytes);

/// "1.23e+09" style compact count formatting for access counts.
std::string format_count(std::int64_t count);

}  // namespace fusecu
