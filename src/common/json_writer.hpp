#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

/// \file json_writer.hpp
/// Minimal streaming JSON emitter for reports and traces (chrome-tracing
/// files, evaluation dumps).  Handles nesting, comma placement and string
/// escaping; validates that begin/end calls match.

namespace fusecu {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key for the next value inside an object.
  void key(const std::string& name);

  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);

  /// Convenience: key + value.
  template <typename T>
  void field(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

  /// Splice pre-serialized JSON in value position (e.g. a sub-document
  /// produced by another writer).  The caller vouches for its validity.
  void raw_value(const std::string& json);

  /// True once the root value is complete and all scopes are closed.
  bool complete() const { return stack_.empty() && root_written_; }

  static std::string escape(const std::string& raw);

 private:
  void before_value();

  enum class Scope { kObject, kArray };
  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
  bool root_written_ = false;
};

}  // namespace fusecu
