#pragma once

#include <random>

#include "common/check.hpp"
#include "common/types.hpp"

/// \file rng.hpp
/// Deterministic random source for the genetic-algorithm baseline and the
/// property-based tests.  A thin wrapper so every consumer seeds explicitly —
/// reproducibility of the search baseline matters for the Fig. 9 comparison.

namespace fusecu {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  Index uniform(Index lo, Index hi) {
    FCU_CHECK(lo <= hi, "uniform: empty range");
    return std::uniform_int_distribution<Index>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Bernoulli with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Pick an index into a container of the given size.
  std::size_t pick(std::size_t size) {
    FCU_CHECK(size > 0, "pick from empty container");
    return static_cast<std::size_t>(uniform(0, static_cast<Index>(size) - 1));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fusecu
