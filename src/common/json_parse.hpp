#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

/// \file json_parse.hpp
/// Minimal recursive-descent JSON parser.
///
/// Exists so tests (and tools) can *validate and inspect* the JSON this
/// project emits — metrics registries, chrome traces, evaluation reports —
/// without an external dependency.  It parses the full JSON grammar
/// (objects, arrays, strings with escapes, numbers, booleans, null) into a
/// small value tree; it is not tuned for large inputs.

namespace fusecu {

class JsonValue;
using JsonValuePtr = std::shared_ptr<JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; FCU_CHECK-throw on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValuePtr>& as_array() const;
  const std::map<std::string, JsonValuePtr>& as_object() const;

  /// Object member lookup: nullptr when absent (throws if not an object).
  JsonValuePtr get(const std::string& key) const;
  bool has(const std::string& key) const { return get(key) != nullptr; }

  static JsonValuePtr make_null();
  static JsonValuePtr make_bool(bool b);
  static JsonValuePtr make_number(double n);
  static JsonValuePtr make_string(std::string s);
  static JsonValuePtr make_array(std::vector<JsonValuePtr> items);
  static JsonValuePtr make_object(std::map<std::string, JsonValuePtr> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValuePtr> array_;
  std::map<std::string, JsonValuePtr> object_;
};

/// Parse \p text as one JSON document.  Throws ParseError (a
/// std::invalid_argument, see common/parse_error.hpp) carrying \p source,
/// line and column on malformed input (including trailing garbage).
JsonValuePtr parse_json(const std::string& text, const std::string& source = "<json>");

}  // namespace fusecu
