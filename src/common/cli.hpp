#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

/// \file cli.hpp
/// Minimal command-line option parser for the example/tool binaries.
/// Supports `--flag`, `--key value` and positional arguments; unknown
/// options are errors so typos fail loudly.

namespace fusecu {

class ArgParser {
 public:
  /// \p flags: options without values; \p options: options expecting one
  /// value.  Names include the leading dashes, e.g. "--validate".
  ArgParser(std::vector<std::string> flags, std::vector<std::string> options);

  /// Parse argv; throws std::invalid_argument on unknown or malformed
  /// options.
  void parse(int argc, const char* const* argv);

  bool has_flag(const std::string& name) const;
  std::optional<std::string> option(const std::string& name) const;

  /// Option parsed as integer, with default.
  Index option_int(const std::string& name, Index default_value) const;

  /// Option parsed as an unsigned 64-bit integer (decimal or 0x-prefixed
  /// hex), with default.  Shared by every tool's `--seed` flag so the
  /// stochastic search strategies (annealing, genetic) are reproducible
  /// run-to-run.
  std::uint64_t option_uint64(const std::string& name, std::uint64_t default_value) const;

  /// Byte-size option accepting suffixes KB/MB/GB (decimal 1024 steps),
  /// e.g. "512KB", "8MB", or a plain number of bytes.
  std::int64_t option_bytes(const std::string& name, std::int64_t default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::vector<std::string> known_flags_;
  std::vector<std::string> known_options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> set_flags_;
  std::vector<std::string> positional_;
};

/// Parse "512KB"-style byte sizes (used by ArgParser::option_bytes).
std::int64_t parse_bytes(const std::string& text);

}  // namespace fusecu
