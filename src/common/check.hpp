#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// \file check.hpp
/// Precondition / invariant checking.
///
/// Library entry points validate their arguments with FCU_CHECK and throw
/// std::invalid_argument on violation; internal invariants use
/// FCU_ASSERT_INTERNAL which throws std::logic_error (a bug in this library,
/// not in the caller).  Both carry a formatted message with the failing
/// expression and location.

namespace fusecu::detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "FCU_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_internal_failure(const char* expr, const char* file, int line,
                                                const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace fusecu::detail

/// Validate a caller-supplied precondition; throws std::invalid_argument.
#define FCU_CHECK(expr, msg)                                                  \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::fusecu::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                         \
  } while (false)

/// Validate an internal invariant; throws std::logic_error.
#define FCU_ASSERT_INTERNAL(expr, msg)                                           \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::fusecu::detail::throw_internal_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                            \
  } while (false)
