#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>

/// \file parse_error.hpp
/// Uniform error reporting for every text format this project reads —
/// INI-lite run configurations, JSON documents, JSONL request streams.
///
/// Before this helper each parser produced its own message shape ("line 7:
/// unknown option", "JSON parse error at offset 132"), and the tools printed
/// them without saying *which file* failed.  ParseError carries the source
/// name, 1-based line/column and the token the parser expected, and formats
/// them in the conventional compiler style
///
///   eval.cfg:7:1: expected key = value — got "platfroms TPUv4i"
///
/// so a user can jump straight to the offending input.  It derives from
/// std::invalid_argument, keeping every existing `catch`/EXPECT_THROW site
/// working unchanged.

namespace fusecu {

class ParseError : public std::invalid_argument {
 public:
  /// \p column and \p detail may be zero/empty when the parser cannot tell.
  ParseError(std::string source, int line, int column, std::string expected,
             std::string detail = "");

  const std::string& source() const { return source_; }
  int line() const { return line_; }
  int column() const { return column_; }
  /// What the parser was looking for ("key = value", "',' or '}'", ...).
  const std::string& expected() const { return expected_; }

  static std::string format(const std::string& source, int line, int column,
                            const std::string& expected, const std::string& detail);

 private:
  std::string source_;
  int line_ = 0;
  int column_ = 0;
  std::string expected_;
};

/// 1-based (line, column) of byte \p offset within \p text, counting '\n'
/// line breaks.  Offsets past the end report the position just after the
/// last character.
std::pair<int, int> line_column_at(const std::string& text, std::size_t offset);

}  // namespace fusecu
