#include "common/parse_error.hpp"

#include <sstream>

namespace fusecu {

std::string ParseError::format(const std::string& source, int line, int column,
                               const std::string& expected, const std::string& detail) {
  std::ostringstream os;
  os << (source.empty() ? "<input>" : source) << ":" << line;
  if (column > 0) os << ":" << column;
  os << ": expected " << expected;
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

ParseError::ParseError(std::string source, int line, int column, std::string expected,
                       std::string detail)
    : std::invalid_argument(format(source, line, column, expected, detail)),
      source_(std::move(source)),
      line_(line),
      column_(column),
      expected_(std::move(expected)) {}

std::pair<int, int> line_column_at(const std::string& text, std::size_t offset) {
  int line = 1;
  int column = 1;
  const std::size_t end = offset < text.size() ? offset : text.size();
  for (std::size_t i = 0; i < end; ++i) {
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return {line, column};
}

}  // namespace fusecu
