#pragma once

#include <cstddef>
#include <utility>
#include <vector>

/// \file ring_buffer.hpp
/// Capacity-preserving FIFO ring used on the net/ reactor hot path in place
/// of std::deque.
///
/// The point is allocation reuse, not just O(1) push/pop: slots are
/// default-constructed once and *never destroyed* by pop_front(), so an
/// element type holding std::strings (a response slot, a queued pool job)
/// keeps its heap buffers across reuse.  push_slot() hands back the next
/// slot as-is — the caller overwrites the fields it needs and inherits the
/// old capacities.  After warm-up, a steady-state push/pop cycle touches no
/// allocator at all; growth (amortized doubling) only happens while depth is
/// still increasing.
///
/// Single-threaded by design (each reactor owns its rings); not a
/// concurrent queue.

namespace fusecu {

template <typename T>
class RingBuffer {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Element \p i positions from the front (0 = oldest).  No bounds check
  /// beyond the debug-build vector's own.
  T& operator[](std::size_t i) { return slots_[(head_ + i) & mask_]; }
  const T& operator[](std::size_t i) const { return slots_[(head_ + i) & mask_]; }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }

  /// Append one element and return the slot, *without* resetting it: the
  /// slot still holds whatever a previously popped element left behind
  /// (reused string capacity, stale fields).  Callers must assign every
  /// field they later read.
  T& push_slot() {
    if (count_ == slots_.size()) grow();
    T& slot = slots_[(head_ + count_) & mask_];
    ++count_;
    return slot;
  }

  /// Logically remove the front element.  Its heap state is left in place
  /// for the next push_slot() that lands on the slot.
  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  /// Logical clear; slot capacities survive.
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    const std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> bigger(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_.swap(bigger);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> slots_;  ///< size == capacity, always a power of two
  std::size_t mask_ = 0;  ///< capacity - 1 (0 while empty)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace fusecu
