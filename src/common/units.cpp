#include "common/units.hpp"

#include <cstdio>

namespace fusecu {

std::string format_bytes(std::int64_t bytes) {
  char buf[64];
  if (bytes >= kGiB && bytes % kGiB == 0) {
    std::snprintf(buf, sizeof(buf), "%lld GiB", static_cast<long long>(bytes / kGiB));
  } else if (bytes >= kMiB && bytes % kMiB == 0) {
    std::snprintf(buf, sizeof(buf), "%lld MiB", static_cast<long long>(bytes / kMiB));
  } else if (bytes >= kKiB && bytes % kKiB == 0) {
    std::snprintf(buf, sizeof(buf), "%lld KiB", static_cast<long long>(bytes / kKiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

std::string format_count(std::int64_t count) {
  char buf[64];
  if (count < 100000) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(count));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3e", static_cast<double>(count));
  }
  return buf;
}

}  // namespace fusecu
