#include "common/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "common/units.hpp"

namespace fusecu {

ArgParser::ArgParser(std::vector<std::string> flags, std::vector<std::string> options)
    : known_flags_(std::move(flags)), known_options_(std::move(options)) {}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    if (std::find(known_flags_.begin(), known_flags_.end(), arg) != known_flags_.end()) {
      set_flags_.push_back(arg);
      continue;
    }
    if (std::find(known_options_.begin(), known_options_.end(), arg) != known_options_.end()) {
      FCU_CHECK(i + 1 < argc, "option " + arg + " expects a value");
      values_[arg] = argv[++i];
      continue;
    }
    FCU_CHECK(false, "unknown option: " + arg);
  }
}

bool ArgParser::has_flag(const std::string& name) const {
  return std::find(set_flags_.begin(), set_flags_.end(), name) != set_flags_.end();
}

std::optional<std::string> ArgParser::option(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

Index ArgParser::option_int(const std::string& name, Index default_value) const {
  auto v = option(name);
  if (!v) return default_value;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  FCU_CHECK(end && *end == '\0' && !v->empty(), "option " + name + " expects an integer");
  return parsed;
}

std::uint64_t ArgParser::option_uint64(const std::string& name,
                                       std::uint64_t default_value) const {
  auto v = option(name);
  if (!v) return default_value;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 0);
  FCU_CHECK(end && *end == '\0' && !v->empty() && (*v)[0] != '-',
            "option " + name + " expects a non-negative integer (decimal or 0x hex)");
  return parsed;
}

std::int64_t ArgParser::option_bytes(const std::string& name, std::int64_t default_value) const {
  auto v = option(name);
  if (!v) return default_value;
  return parse_bytes(*v);
}

std::int64_t parse_bytes(const std::string& text) {
  FCU_CHECK(!text.empty(), "empty byte size");
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  FCU_CHECK(end != text.c_str() && value >= 0, "malformed byte size: " + text);
  std::string suffix(end);
  std::transform(suffix.begin(), suffix.end(), suffix.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  double scale = 1.0;
  if (suffix == "" || suffix == "B") {
    scale = 1.0;
  } else if (suffix == "KB" || suffix == "KIB" || suffix == "K") {
    scale = static_cast<double>(kKiB);
  } else if (suffix == "MB" || suffix == "MIB" || suffix == "M") {
    scale = static_cast<double>(kMiB);
  } else if (suffix == "GB" || suffix == "GIB" || suffix == "G") {
    scale = static_cast<double>(kGiB);
  } else {
    FCU_CHECK(false, "unknown byte suffix: " + text);
  }
  return static_cast<std::int64_t>(value * scale);
}

}  // namespace fusecu
