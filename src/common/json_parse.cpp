#include "common/json_parse.hpp"

#include <cctype>
#include <cstdlib>

#include "common/check.hpp"
#include "common/parse_error.hpp"

namespace fusecu {

bool JsonValue::as_bool() const {
  FCU_CHECK(is_bool(), "JSON value is not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  FCU_CHECK(is_number(), "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  FCU_CHECK(is_string(), "JSON value is not a string");
  return string_;
}

const std::vector<JsonValuePtr>& JsonValue::as_array() const {
  FCU_CHECK(is_array(), "JSON value is not an array");
  return array_;
}

const std::map<std::string, JsonValuePtr>& JsonValue::as_object() const {
  FCU_CHECK(is_object(), "JSON value is not an object");
  return object_;
}

JsonValuePtr JsonValue::get(const std::string& key) const {
  const auto& members = as_object();
  auto it = members.find(key);
  return it == members.end() ? nullptr : it->second;
}

JsonValuePtr JsonValue::make_null() { return std::make_shared<JsonValue>(); }

JsonValuePtr JsonValue::make_bool(bool b) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = Kind::kBool;
  v->bool_ = b;
  return v;
}

JsonValuePtr JsonValue::make_number(double n) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = Kind::kNumber;
  v->number_ = n;
  return v;
}

JsonValuePtr JsonValue::make_string(std::string s) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = Kind::kString;
  v->string_ = std::move(s);
  return v;
}

JsonValuePtr JsonValue::make_array(std::vector<JsonValuePtr> items) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = Kind::kArray;
  v->array_ = std::move(items);
  return v;
}

JsonValuePtr JsonValue::make_object(std::map<std::string, JsonValuePtr> members) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = Kind::kObject;
  v->object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& source) : text_(text), source_(source) {}

  JsonValuePtr parse_document() {
    JsonValuePtr v = parse_value();
    skip_ws();
    check(pos_ == text_.size(), "end of document");
    return v;
  }

 private:
  void check(bool ok, const std::string& what) const {
    if (ok) return;
    const auto [line, column] = line_column_at(text_, pos_);
    throw ParseError(source_, line, column, what,
                     "at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    check(pos_ < text_.size(), "a value before end of input");
    return text_[pos_];
  }

  void expect(char c) {
    check(pos_ < text_.size() && text_[pos_] == c,
          std::string("'") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValuePtr parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        check(consume_literal("true"), "a JSON literal (true/false/null)");
        return JsonValue::make_bool(true);
      case 'f':
        check(consume_literal("false"), "a JSON literal (true/false/null)");
        return JsonValue::make_bool(false);
      case 'n':
        check(consume_literal("null"), "a JSON literal (true/false/null)");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValuePtr parse_object() {
    expect('{');
    std::map<std::string, JsonValuePtr> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValuePtr parse_array() {
    expect('[');
    std::vector<JsonValuePtr> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      check(pos_ < text_.size(), "a closing '\"'");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        check(static_cast<unsigned char>(c) >= 0x20, "an escaped control character");
        out.push_back(c);
        continue;
      }
      check(pos_ < text_.size(), "an escape character");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          check(pos_ + 4 <= text_.size(), "four hex digits after \\u");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            check(std::isxdigit(static_cast<unsigned char>(h)), "four hex digits after \\u");
            code = code * 16 + static_cast<unsigned>(
                h <= '9' ? h - '0' : (std::tolower(h) - 'a' + 10));
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two separate 3-byte sequences; good enough for the
          // ASCII-heavy output this project emits).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: check(false, "a valid escape character");
      }
    }
  }

  JsonValuePtr parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    check(pos_ > start, "a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    check(end != nullptr && *end == '\0' && end != token.c_str(), "a number");
    return JsonValue::make_number(value);
  }

  const std::string& text_;
  const std::string& source_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValuePtr parse_json(const std::string& text, const std::string& source) {
  return Parser(text, source).parse_document();
}

}  // namespace fusecu
