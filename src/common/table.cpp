#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "common/check.hpp"

namespace fusecu {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  FCU_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  FCU_CHECK(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

void TextTable::add_row_numeric(const std::string& label, const std::vector<double>& values,
                                int precision) {
  FCU_CHECK(values.size() + 1 == header_.size(), "numeric row arity must match header");
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    row.emplace_back(buf);
  }
  add_row(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace fusecu
