#pragma once

#include <ostream>
#include <string>
#include <vector>

/// \file table.hpp
/// Minimal fixed-width ASCII table writer.  Every bench binary prints the
/// rows of the paper table/figure it regenerates through this class, so the
/// output format of the harness is uniform and diffable.

namespace fusecu {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: convert each cell with to_string-like formatting.
  void add_row_numeric(const std::string& label, const std::vector<double>& values,
                       int precision = 3);

  /// Render with column alignment and a separator under the header.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fusecu
