#pragma once

#include <cstdint>

/// \file types.hpp
/// Fundamental scalar types used throughout the FuseCU library.
///
/// All sizes (tensor dimensions, tile sizes, buffer capacities, access
/// counts) are signed 64-bit integers.  Memory-access counts for large
/// transformer layers overflow 32 bits easily (a single LLaMA2 FFN layer at
/// sequence length 16K already performs ~5e11 MACs), and signed arithmetic
/// keeps subtraction in cost comparisons well-defined.

namespace fusecu {

/// Tensor dimension extent, tile size, or loop trip count (elements).
using Index = std::int64_t;

/// Count of scalar memory accesses (elements, not bytes).
using AccessCount = std::int64_t;

/// Count of multiply-accumulate operations.
using MacCount = std::int64_t;

/// Simulated clock cycles.
using CycleCount = std::int64_t;

/// Buffer capacity in elements (the paper works in elements; byte
/// conversions happen only at the architecture boundary, see arch/).
using BufferSize = std::int64_t;

}  // namespace fusecu
