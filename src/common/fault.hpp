#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

/// \file fault.hpp
/// Deterministic, seeded fault injection for the net/serve stack.
///
/// A FaultPlan is a small schedule of one-shot fault events, each bound to a
/// *site class* (socket reads, socket writes, accept, the poller, the event
/// loop's clock, the planning pool) and a *trigger*: either the Nth
/// invocation of that site since arm(), or — for the connection-killing
/// errors — a cumulative byte offset through that site.  The sites
/// themselves are thin shims (net/socket.hpp sys_recv/sys_send/sys_accept,
/// Poller::wait, NetServer::now_ms, PlanService's pool tasks) that consult
/// this injector before touching the kernel.
///
/// Determinism and replay.  A plan is a pure function of its seed
/// (`FaultPlan::generate`), serializes to JSON, and round-trips through
/// `from_json` — the chaos harness (src/check/chaos.hpp) stores the plan in
/// its repro artifact and the shrinker re-runs trials with edited plans.
/// Which events actually *fire* in a multithreaded run can vary with
/// scheduling; the invariants the chaos harness asserts hold for every
/// firing pattern, so reports stay byte-identical across runs.
///
/// Cost when disarmed.  Every site hook begins with a single relaxed load
/// of a global atomic flag and returns immediately — the same discipline as
/// the obs/span.hpp instrumentation, guarded by the same plan_throughput
/// warm-path CI benchmark (<= 5%).  All heavier state (the plan, per-site
/// counters, a mutex) is only touched while a plan is armed.
///
/// Threading.  arm()/disarm() must not race with an armed server: arm
/// before starting the event loop (or while it is quiescent), disarm after
/// it stopped.  The site hooks themselves are thread-safe (loop thread +
/// pool workers).

namespace fusecu {
class JsonValue;
}

namespace fusecu::fault {

/// Injectable fault kinds.  The `at` trigger of an event is a site
/// invocation index for every kind except kReadReset/kWriteReset, where it
/// is a cumulative byte offset through that site.
enum class Kind {
  kShortRead,    ///< cap one recv to `arg` bytes (a short read, not an error)
  kShortWrite,   ///< cap one send to `arg` bytes
  kReadEintr,    ///< one recv returns -1/EINTR
  kWriteEintr,   ///< one send returns -1/EINTR
  kReadReset,    ///< recv fails ECONNRESET once >= `at` bytes were read
  kWriteReset,   ///< send fails EPIPE once >= `at` bytes were written
  kAcceptDefer,  ///< one accept reports EAGAIN (retried on next readiness)
  kAcceptEmfile, ///< one accept reports EMFILE (fd exhaustion)
  kSpuriousWake, ///< one poller wait returns no events without blocking
  kClockSkew,    ///< the loop clock jumps forward `arg` ms (permanently)
  kPoolStall,    ///< one pool task sleeps `arg` microseconds before planning
  kWorkerHang,   ///< one pool task hangs `arg` microseconds (watchdog-scale)
  kReactorStall, ///< one reactor loop turn stalls `arg` microseconds
};
inline constexpr int kNumKinds = 13;

const char* to_string(Kind kind);
std::optional<Kind> kind_from_string(const std::string& name);

/// One scheduled one-shot fault.
struct FaultEvent {
  Kind kind = Kind::kShortRead;
  std::uint64_t at = 0;   ///< site invocation index, or byte offset (resets)
  std::uint64_t arg = 0;  ///< bytes cap / skew ms / stall us (kind-specific)
};

/// A JSON-serializable, seed-derived fault schedule.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  /// Events of any of the connection-killing kinds (the chaos harness
  /// bounds "connections lost" by this).
  int reset_events() const;
  /// Per-kind event counts, indexed by static_cast<int>(Kind).
  std::vector<int> kind_counts() const;

  std::string to_json() const;
  /// Throws ParseError / std::invalid_argument on malformed input.
  static FaultPlan from_json(const std::string& text, const std::string& source = "<fault-plan>");
  /// Same, from an already-parsed JSON object (e.g. nested in a chaos repro).
  static FaultPlan from_json_value(const JsonValue& doc);

  /// Pure function of (seed, max_events): a splitmix64-seeded schedule with
  /// bounded, trial-friendly magnitudes (stalls <= 20 ms, skew <= 3 s,
  /// worker hangs <= 300 ms, reactor stalls <= 120 ms).
  static FaultPlan generate(std::uint64_t seed, int max_events = 12);
};

/// Intentional server bugs, armed alongside a plan so the chaos harness can
/// prove it *detects* broken invariants (mirrors CheckOptions::intra_mutator
/// for the optimizer oracles).  Never set in production runs.
enum class TestBug {
  kNone,
  kReorderResponses,  ///< NetServer flushes done slots out of request order
};

/// Injected outcome for one socket read/write.
struct IoFault {
  int error = 0;          ///< errno to fail with (EINTR/ECONNRESET/EPIPE); 0 = none
  std::uint64_t cap = 0;  ///< nonzero: cap the transfer length to this
};

/// True while a plan is armed — a single relaxed load; every site hook
/// checks it first.
bool armed();

/// Install \p plan (resetting all site counters and fired state) and start
/// injecting.  \p bug optionally arms an intentional server bug.
void arm(const FaultPlan& plan, TestBug bug = TestBug::kNone);

/// Stop injecting and clear the plan (fired counters survive until the next
/// arm() so callers can harvest them).
void disarm();

/// The armed intentional bug (kNone when disarmed).
TestBug test_bug();

// Site hooks.  Call only after a cheap armed() check (they recheck, but the
// caller owns the fast path).
IoFault on_read(std::size_t want_bytes);
IoFault on_write(std::size_t want_bytes);
void note_read_bytes(std::size_t n);   ///< cumulative; drives kReadReset
void note_write_bytes(std::size_t n);  ///< cumulative; drives kWriteReset
int on_accept();                       ///< errno to inject, or 0
bool on_poll();                        ///< true: report a spurious wakeup
std::int64_t clock_skew_ms();          ///< accumulated skew to add to now_ms
std::uint64_t on_pool_task();          ///< stall/hang in microseconds, or 0
std::uint64_t on_loop_turn();          ///< reactor-loop stall in microseconds, or 0

/// How many events of \p kind fired since the last arm().
std::int64_t fired_count(Kind kind);
std::int64_t fired_total();

/// RAII arm/disarm for tests and chaos trials.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan, TestBug bug = TestBug::kNone) {
    arm(plan, bug);
  }
  ~ScopedFaultPlan() { disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace fusecu::fault
