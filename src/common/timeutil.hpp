#pragma once

#include <ctime>
#include <string>

/// \file timeutil.hpp
/// Small wall-clock formatting helpers shared by the observability layer.
///
/// Every exported artifact (metrics dumps, log lines, flight-recorder
/// dumps) stamps wall-clock time the same way: RFC 3339 in UTC with a
/// trailing 'Z' and no fractional seconds, e.g. "2026-08-08T14:03:07Z".
/// One fixed format keeps artifacts diffable and trivially parseable.

namespace fusecu {

/// Format \p t (seconds since the epoch) as "YYYY-MM-DDTHH:MM:SSZ" (UTC).
std::string rfc3339_utc(std::time_t t);

/// Current wall-clock time in the same format.
std::string rfc3339_utc_now();

}  // namespace fusecu
