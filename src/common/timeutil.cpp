#include "common/timeutil.hpp"

#include <cstdio>

namespace fusecu {

std::string rfc3339_utc(std::time_t t) {
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &t);
#else
  gmtime_r(&t, &tm);
#endif
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec);
  return std::string(buf);
}

std::string rfc3339_utc_now() { return rfc3339_utc(std::time(nullptr)); }

}  // namespace fusecu
