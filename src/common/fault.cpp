#include "common/fault.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "common/json_parse.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"

namespace fusecu::fault {

namespace {

const char* const kKindNames[kNumKinds] = {
    "short_read",  "short_write",   "read_eintr",    "write_eintr",
    "read_reset",  "write_reset",   "accept_defer",  "accept_emfile",
    "spurious_wake", "clock_skew",  "pool_stall",    "worker_hang",
    "reactor_stall",
};

/// Site classes with independent invocation counters.
enum class Site { kRead, kWrite, kAccept, kPoll, kClock, kPool, kLoop };
inline constexpr int kNumSites = 7;

Site site_of(Kind kind) {
  switch (kind) {
    case Kind::kShortRead:
    case Kind::kReadEintr:
    case Kind::kReadReset:
      return Site::kRead;
    case Kind::kShortWrite:
    case Kind::kWriteEintr:
    case Kind::kWriteReset:
      return Site::kWrite;
    case Kind::kAcceptDefer:
    case Kind::kAcceptEmfile:
      return Site::kAccept;
    case Kind::kSpuriousWake:
      return Site::kPoll;
    case Kind::kClockSkew:
      return Site::kClock;
    case Kind::kPoolStall:
    case Kind::kWorkerHang:
      return Site::kPool;
    case Kind::kReactorStall:
      return Site::kLoop;
  }
  return Site::kRead;
}

bool is_byte_triggered(Kind kind) {
  return kind == Kind::kReadReset || kind == Kind::kWriteReset;
}

// Fast-path flag plus cheap read-side atomics.  Everything else lives in
// the mutex-guarded State and is only touched while armed.
std::atomic<bool> g_armed{false};
std::atomic<int> g_test_bug{static_cast<int>(TestBug::kNone)};
std::atomic<std::int64_t> g_skew_ms{0};
std::atomic<std::int64_t> g_fired[kNumKinds] = {};

struct State {
  std::mutex mu;
  std::vector<FaultEvent> events;
  std::vector<bool> fired;
  std::uint64_t calls[kNumSites] = {};
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
};

State& state() {
  static State s;
  return s;
}

void mark_fired(State& s, std::size_t i) {
  s.fired[i] = true;
  g_fired[static_cast<int>(s.events[i].kind)].fetch_add(1, std::memory_order_relaxed);
}

/// First unfired event of \p kind due at this site invocation (or, for
/// byte-triggered kinds, at the current cumulative byte count).  Call with
/// s.mu held; the invocation index was already consumed by the caller.
std::optional<std::size_t> due_event(State& s, Kind kind, std::uint64_t index,
                                     std::uint64_t cum_bytes) {
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (s.fired[i] || s.events[i].kind != kind) continue;
    if (is_byte_triggered(kind) ? cum_bytes >= s.events[i].at : s.events[i].at == index) {
      return i;
    }
  }
  return std::nullopt;
}

}  // namespace

const char* to_string(Kind kind) { return kKindNames[static_cast<int>(kind)]; }

std::optional<Kind> kind_from_string(const std::string& name) {
  for (int i = 0; i < kNumKinds; ++i) {
    if (name == kKindNames[i]) return static_cast<Kind>(i);
  }
  return std::nullopt;
}

int FaultPlan::reset_events() const {
  int n = 0;
  for (const FaultEvent& e : events) {
    if (e.kind == Kind::kReadReset || e.kind == Kind::kWriteReset) ++n;
  }
  return n;
}

std::vector<int> FaultPlan::kind_counts() const {
  std::vector<int> counts(kNumKinds, 0);
  for (const FaultEvent& e : events) ++counts[static_cast<int>(e.kind)];
  return counts;
}

std::string FaultPlan::to_json() const {
  std::ostringstream os;
  JsonWriter jw(os);
  jw.begin_object();
  jw.field("schema", "fusecu_fault_plan/1");
  // Seeds are full 64-bit splitmix64 outputs; a string survives the JSON
  // number path (double) losslessly.
  jw.field("seed", std::to_string(seed));
  jw.key("events");
  jw.begin_array();
  for (const FaultEvent& e : events) {
    jw.begin_object();
    jw.field("kind", to_string(e.kind));
    jw.field("at", static_cast<std::int64_t>(e.at));
    jw.field("arg", static_cast<std::int64_t>(e.arg));
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
  return os.str();
}

FaultPlan FaultPlan::from_json(const std::string& text, const std::string& source) {
  return from_json_value(*parse_json(text, source));
}

FaultPlan FaultPlan::from_json_value(const JsonValue& doc) {
  FaultPlan plan;
  if (const JsonValuePtr schema = doc.get("schema")) {
    if (schema->as_string() != "fusecu_fault_plan/1") {
      throw std::invalid_argument("unsupported fault-plan schema: " + schema->as_string());
    }
  }
  if (const JsonValuePtr seed = doc.get("seed")) {
    plan.seed = std::stoull(seed->as_string());
  }
  const JsonValuePtr events = doc.get("events");
  if (!events) throw std::invalid_argument("fault plan missing \"events\"");
  for (const JsonValuePtr& entry : events->as_array()) {
    FaultEvent e;
    const JsonValuePtr kind = entry->get("kind");
    if (!kind) throw std::invalid_argument("fault event missing \"kind\"");
    const std::optional<Kind> parsed = kind_from_string(kind->as_string());
    if (!parsed) throw std::invalid_argument("unknown fault kind: " + kind->as_string());
    e.kind = *parsed;
    if (const JsonValuePtr at = entry->get("at")) {
      e.at = static_cast<std::uint64_t>(at->as_number());
    }
    if (const JsonValuePtr arg = entry->get("arg")) {
      e.arg = static_cast<std::uint64_t>(arg->as_number());
    }
    plan.events.push_back(e);
  }
  return plan;
}

FaultPlan FaultPlan::generate(std::uint64_t seed, int max_events) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed);
  const int count = static_cast<int>(rng.uniform(0, std::max(0, max_events)));
  plan.events.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    FaultEvent e;
    e.kind = static_cast<Kind>(rng.uniform(0, kNumKinds - 1));
    switch (e.kind) {
      case Kind::kShortRead:
      case Kind::kShortWrite:
        e.at = static_cast<std::uint64_t>(rng.uniform(0, 63));
        e.arg = static_cast<std::uint64_t>(rng.uniform(1, 16));  // byte cap
        break;
      case Kind::kReadEintr:
      case Kind::kWriteEintr:
        e.at = static_cast<std::uint64_t>(rng.uniform(0, 63));
        break;
      case Kind::kReadReset:
      case Kind::kWriteReset:
        e.at = static_cast<std::uint64_t>(rng.uniform(0, 8192));  // byte offset
        break;
      case Kind::kAcceptDefer:
      case Kind::kAcceptEmfile:
        e.at = static_cast<std::uint64_t>(rng.uniform(0, 7));
        break;
      case Kind::kSpuriousWake:
        e.at = static_cast<std::uint64_t>(rng.uniform(0, 199));
        break;
      case Kind::kClockSkew:
        e.at = static_cast<std::uint64_t>(rng.uniform(0, 199));
        e.arg = static_cast<std::uint64_t>(rng.uniform(500, 3000));  // ms
        break;
      case Kind::kPoolStall:
        e.at = static_cast<std::uint64_t>(rng.uniform(0, 47));
        e.arg = static_cast<std::uint64_t>(rng.uniform(100, 20'000));  // us
        break;
      case Kind::kWorkerHang:
        // Watchdog-scale: long enough that any reasonable --watchdog-ms
        // budget (tens of ms) classifies the task as hung.
        e.at = static_cast<std::uint64_t>(rng.uniform(0, 47));
        e.arg = static_cast<std::uint64_t>(rng.uniform(100'000, 300'000));  // us
        break;
      case Kind::kReactorStall:
        e.at = static_cast<std::uint64_t>(rng.uniform(0, 199));
        e.arg = static_cast<std::uint64_t>(rng.uniform(20, 120)) * 1000;  // us
        break;
    }
    plan.events.push_back(e);
  }
  return plan;
}

bool armed() { return g_armed.load(std::memory_order_relaxed); }

void arm(const FaultPlan& plan, TestBug bug) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.events = plan.events;
  s.fired.assign(s.events.size(), false);
  for (auto& c : s.calls) c = 0;
  s.read_bytes = 0;
  s.write_bytes = 0;
  g_skew_ms.store(0, std::memory_order_relaxed);
  for (auto& f : g_fired) f.store(0, std::memory_order_relaxed);
  g_test_bug.store(static_cast<int>(bug), std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void disarm() {
  g_armed.store(false, std::memory_order_release);
  g_test_bug.store(static_cast<int>(TestBug::kNone), std::memory_order_relaxed);
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.events.clear();
  s.fired.clear();
}

TestBug test_bug() {
  if (!armed()) return TestBug::kNone;
  return static_cast<TestBug>(g_test_bug.load(std::memory_order_relaxed));
}

namespace {

IoFault on_io(Site site, Kind reset_kind, Kind eintr_kind, Kind short_kind, int reset_errno) {
  IoFault fault;
  if (!armed()) return fault;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint64_t cum_bytes = site == Site::kRead ? s.read_bytes : s.write_bytes;
  const std::uint64_t index = s.calls[static_cast<int>(site)]++;
  // A reset beats the benign faults: it is the one that tears state down.
  if (auto i = due_event(s, reset_kind, index, cum_bytes)) {
    mark_fired(s, *i);
    fault.error = reset_errno;
    return fault;
  }
  if (auto i = due_event(s, eintr_kind, index, cum_bytes)) {
    mark_fired(s, *i);
    fault.error = EINTR;
    return fault;
  }
  if (auto i = due_event(s, short_kind, index, cum_bytes)) {
    mark_fired(s, *i);
    fault.cap = std::max<std::uint64_t>(1, s.events[*i].arg);
  }
  return fault;
}

}  // namespace

IoFault on_read(std::size_t) {
  return on_io(Site::kRead, Kind::kReadReset, Kind::kReadEintr, Kind::kShortRead, ECONNRESET);
}

IoFault on_write(std::size_t) {
  return on_io(Site::kWrite, Kind::kWriteReset, Kind::kWriteEintr, Kind::kShortWrite, EPIPE);
}

void note_read_bytes(std::size_t n) {
  if (!armed()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.read_bytes += n;
}

void note_write_bytes(std::size_t n) {
  if (!armed()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.write_bytes += n;
}

int on_accept() {
  if (!armed()) return 0;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint64_t index = s.calls[static_cast<int>(Site::kAccept)]++;
  if (auto i = due_event(s, Kind::kAcceptEmfile, index, 0)) {
    mark_fired(s, *i);
    return EMFILE;
  }
  if (auto i = due_event(s, Kind::kAcceptDefer, index, 0)) {
    mark_fired(s, *i);
    return EAGAIN;
  }
  return 0;
}

bool on_poll() {
  if (!armed()) return false;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint64_t index = s.calls[static_cast<int>(Site::kPoll)]++;
  if (auto i = due_event(s, Kind::kSpuriousWake, index, 0)) {
    mark_fired(s, *i);
    return true;
  }
  return false;
}

std::int64_t clock_skew_ms() {
  if (!armed()) return 0;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint64_t index = s.calls[static_cast<int>(Site::kClock)]++;
  if (auto i = due_event(s, Kind::kClockSkew, index, 0)) {
    mark_fired(s, *i);
    g_skew_ms.fetch_add(static_cast<std::int64_t>(s.events[*i].arg), std::memory_order_relaxed);
  }
  return g_skew_ms.load(std::memory_order_relaxed);
}

std::uint64_t on_pool_task() {
  if (!armed()) return 0;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint64_t index = s.calls[static_cast<int>(Site::kPool)]++;
  // Both pool-site kinds share the invocation counter; a stall and a hang
  // due at the same index sum (the task sleeps once for the total).
  std::uint64_t total = 0;
  if (auto i = due_event(s, Kind::kPoolStall, index, 0)) {
    mark_fired(s, *i);
    total += std::min<std::uint64_t>(s.events[*i].arg, 50'000);  // hard 50ms cap
  }
  if (auto i = due_event(s, Kind::kWorkerHang, index, 0)) {
    mark_fired(s, *i);
    total += std::min<std::uint64_t>(s.events[*i].arg, 500'000);  // hard 500ms cap
  }
  return total;
}

std::uint64_t on_loop_turn() {
  if (!armed()) return 0;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::uint64_t index = s.calls[static_cast<int>(Site::kLoop)]++;
  if (auto i = due_event(s, Kind::kReactorStall, index, 0)) {
    mark_fired(s, *i);
    return std::min<std::uint64_t>(s.events[*i].arg, 300'000);  // hard 300ms cap
  }
  return 0;
}

std::int64_t fired_count(Kind kind) {
  return g_fired[static_cast<int>(kind)].load(std::memory_order_relaxed);
}

std::int64_t fired_total() {
  std::int64_t total = 0;
  for (int i = 0; i < kNumKinds; ++i) total += g_fired[i].load(std::memory_order_relaxed);
  return total;
}

}  // namespace fusecu::fault
