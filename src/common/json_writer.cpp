#include "common/json_writer.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace fusecu {

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

JsonWriter::~JsonWriter() = default;

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  FCU_CHECK(!root_written_ || !stack_.empty(), "only one root value allowed");
  if (!stack_.empty()) {
    if (stack_.back() == Scope::kObject) {
      FCU_CHECK(pending_key_, "object members need a key");
    }
    if (!first_in_scope_.back() && !pending_key_) os_ << ",";
    first_in_scope_.back() = false;
  }
  pending_key_ = false;
}

void JsonWriter::key(const std::string& name) {
  FCU_CHECK(!stack_.empty() && stack_.back() == Scope::kObject, "key outside an object");
  FCU_CHECK(!pending_key_, "two keys in a row");
  if (!first_in_scope_.back()) os_ << ",";
  first_in_scope_.back() = false;
  os_ << '"' << escape(name) << "\":";
  pending_key_ = true;
}

void JsonWriter::begin_object() {
  before_value();
  os_ << "{";
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
}

void JsonWriter::end_object() {
  FCU_CHECK(!stack_.empty() && stack_.back() == Scope::kObject, "no object to end");
  FCU_CHECK(!pending_key_, "dangling key");
  os_ << "}";
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) root_written_ = true;
}

void JsonWriter::begin_array() {
  before_value();
  os_ << "[";
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
}

void JsonWriter::end_array() {
  FCU_CHECK(!stack_.empty() && stack_.back() == Scope::kArray, "no array to end");
  os_ << "]";
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (stack_.empty()) root_written_ = true;
}

void JsonWriter::value(const std::string& v) {
  before_value();
  os_ << '"' << escape(v) << '"';
  if (stack_.empty()) root_written_ = true;
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  before_value();
  FCU_CHECK(std::isfinite(v), "JSON cannot represent non-finite numbers");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  os_ << buf;
  if (stack_.empty()) root_written_ = true;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) root_written_ = true;
}

void JsonWriter::raw_value(const std::string& json) {
  before_value();
  os_ << json;
  if (stack_.empty()) root_written_ = true;
}

void JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) root_written_ = true;
}

}  // namespace fusecu
