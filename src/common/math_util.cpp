#include "common/math_util.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace fusecu {

Index isqrt(Index v) {
  FCU_CHECK(v >= 0, "isqrt of negative value");
  if (v < 2) return v;
  auto r = static_cast<Index>(std::sqrt(static_cast<double>(v)));
  while (r * r > v) --r;
  while ((r + 1) * (r + 1) <= v) ++r;
  return r;
}

std::vector<Index> divisors(Index v) {
  FCU_CHECK(v >= 1, "divisors of non-positive value");
  std::vector<Index> lo, hi;
  for (Index d = 1; d * d <= v; ++d) {
    if (v % d == 0) {
      lo.push_back(d);
      if (d != v / d) hi.push_back(v / d);
    }
  }
  lo.insert(lo.end(), hi.rbegin(), hi.rend());
  return lo;
}

std::vector<Index> tile_candidates(Index d) {
  FCU_CHECK(d >= 1, "tile_candidates of non-positive extent");
  std::vector<Index> c = divisors(d);
  for (Index t = 1; t < d; t *= 2) c.push_back(t);
  c.push_back(d);
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  return c;
}

double geo_mean(const std::vector<double>& xs) {
  FCU_CHECK(!xs.empty(), "geo_mean of empty series");
  double acc = 0.0;
  for (double x : xs) {
    FCU_CHECK(x > 0.0, "geo_mean requires positive values");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double arith_mean(const std::vector<double>& xs) {
  FCU_CHECK(!xs.empty(), "arith_mean of empty series");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

}  // namespace fusecu
