#include "check/conformance.hpp"

#include <cmath>
#include <sstream>

#include "arch/dataflow_space.hpp"
#include "fusion/fusion_principles.hpp"
#include "fusion/graph_planner.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "search/exhaustive.hpp"
#include "serve/plan_service.hpp"
#include "sim/tiled_executor.hpp"

namespace fusecu {

namespace {

/// splitmix64 step: decorrelates sub-draws (executor dataflow, arch spec)
/// from the workload seed without sharing the generator stream.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class Checker {
 public:
  Checker(const Workload& w, const CheckOptions& opts, CheckReport* report)
      : w_(w), opts_(opts), report_(report) {}

  void fail(const std::string& check, const std::string& detail) {
    report_->failures.push_back({check, w_.to_string() + ": " + detail});
  }

  /// Expect lhs == rhs.
  template <typename T>
  void expect_eq(const std::string& check, const T& lhs, const T& rhs,
                 const std::string& what) {
    ++report_->checks_run;
    if (!(lhs == rhs)) {
      std::ostringstream os;
      os << what << " mismatch: " << lhs << " != " << rhs;
      fail(check, os.str());
    }
  }

  /// Expect lhs <= rhs.
  void expect_le(const std::string& check, AccessCount lhs, AccessCount rhs,
                 const std::string& what) {
    ++report_->checks_run;
    if (lhs > rhs) {
      std::ostringstream os;
      os << what << ": " << lhs << " > " << rhs;
      fail(check, os.str());
    }
  }

  void expect_true(const std::string& check, bool cond, const std::string& what) {
    ++report_->checks_run;
    if (!cond) fail(check, what);
  }

  const Workload& w_;
  const CheckOptions& opts_;
  CheckReport* report_;
};

std::string dims_to_string(const std::vector<Index>& v) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ",";
    os << v[i];
  }
  os << "]";
  return os.str();
}

/// Random executable dataflow: tiles capped at the array edge so every
/// stationary mode fits, loop order uniform.
Dataflow gen_executor_dataflow(const TensorOp& op, Rng& rng, Index array_n) {
  static const std::vector<std::vector<int>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  Dataflow df;
  df.loop_order = orders[rng.pick(orders.size())];
  for (int d = 0; d < op.num_dims(); ++d) {
    df.tile.push_back(rng.uniform(1, std::min(op.extent(d), array_n)));
  }
  return df;
}

Index tile_visits(const TensorOp& op, const Dataflow& df) {
  Index visits = 1;
  for (int d = 0; d < op.num_dims(); ++d) visits *= df.trips(op, d);
  return visits;
}

// ---------------------------------------------------------------------------
// Intra-operator checks.

/// Serve path: byte-identity of cached / canonicalized plans.  Installs a
/// PlanService (process-global interceptors) — must never run concurrently
/// with any other planning, hence its own CheckPhase.
void check_intra_serve(Checker& c, const TensorOp& op, BufferSize bs) {
  MetricsRegistry::global().counter("check/serve_checks").add();
  const std::string direct = intra_plan_signature(optimize_intra(op, bs));
  TensorOp transposed = TensorOp::matmul("wl", op.extent(mm::kDimL), op.extent(mm::kDimK),
                                         op.extent(mm::kDimM));
  const std::string direct_t = intra_plan_signature(optimize_intra(transposed, bs));
  {
    ServeOptions so;
    so.threads = 1;
    so.cache_bytes = 1 << 20;
    so.shards = 1;
    PlanService service(so);
    IntraPlanned cold = service.plan_intra(op, bs);
    c.expect_true("serve/cold_uncached", !cold.cached, "first lookup claimed a cache hit");
    c.expect_eq("serve/byte_identity", intra_plan_signature(cold.result), direct,
                "served plan vs direct optimize_intra");
    IntraPlanned warm = service.plan_intra(op, bs);
    c.expect_true("serve/warm_cached", warm.cached, "second lookup missed the cache");
    c.expect_eq("serve/byte_identity", intra_plan_signature(warm.result), direct,
                "cached plan vs direct optimize_intra");
    IntraPlanned trans = service.plan_intra(transposed, bs);
    c.expect_eq("serve/transpose_identity", intra_plan_signature(trans.result), direct_t,
                "transpose-class plan vs direct optimize_intra of the transposed op");
  }
  // Interceptor teardown: after the service dies, planning is direct again
  // and still produces the same bytes.
  c.expect_eq("serve/teardown", intra_plan_signature(optimize_intra(op, bs)), direct,
              "post-service plan vs pre-service plan");
}

void check_intra_workload(Checker& c, const TensorOp& op, BufferSize bs) {
  MetricsRegistry& reg = MetricsRegistry::global();
  if (c.opts_.phase == CheckPhase::kServeOnly) {
    if (c.opts_.with_serve) check_intra_serve(c, op, bs);
    return;
  }

  IntraOptResult principled = optimize_intra(op, bs);
  if (c.opts_.intra_mutator) c.opts_.intra_mutator(op, principled);

  // Self-consistency: the reported access/footprint must re-evaluate
  // identically, the dataflow must be valid and fit the buffer.
  validate_dataflow(op, principled.dataflow);
  AccessBreakdown re = evaluate_access(op, principled.dataflow);
  c.expect_eq("intra/self_consistent", re.total, principled.access.total, "re-evaluated total");
  c.expect_eq("intra/self_consistent", re.buffer_footprint, principled.access.buffer_footprint,
              "re-evaluated footprint");
  c.expect_le("intra/fits_buffer", principled.access.buffer_footprint, bs, "footprint > BS");

  // The paper's central claim: the one-shot construction matches or beats
  // ground-truth exhaustive search.
  auto searched = exhaustive_intra(op, bs);
  c.expect_true("intra/exhaustive_feasible", searched.has_value(),
                "exhaustive found nothing but principled plan exists");
  if (searched) {
    c.expect_le("intra/opt_vs_exhaustive", principled.access.total, searched->access.total,
                "principled MA above exhaustive optimum (rule " + principled.rule + ")");
    // Nothing, searched or constructed, may beat the analytical floor.
    const AccessCount floor = intra_traffic_lower_bound(op, bs);
    c.expect_le("intra/lower_bound", floor, searched->access.total,
                "exhaustive optimum below the Dinh-Demmel floor");
    c.expect_le("intra/lower_bound", floor, principled.access.total,
                "principled MA below the Dinh-Demmel floor");
  }

  // More buffer can never cost more accesses.
  if (bs / 2 >= 3) {
    IntraOptResult half = optimize_intra(op, bs / 2);
    c.expect_le("intra/monotone_in_bs", principled.access.total, half.access.total,
                "doubling the buffer increased MA");
  }

  // Principle 1-3 regime rules at the paper's prescribed probe points
  // (Sec. III-A4), guarded exactly like the table: deep-tiny => Single,
  // mid-medium => Two, comfortably-large => Three at the ideal minimum.
  const Index dmin = op.min_extent();
  const Index tmin = op.tensor_size(op.smallest_tensor());
  if (dmin >= 16) {
    IntraOptResult tiny = optimize_intra(op, dmin * dmin / 8);
    c.expect_true("intra/regime_tiny_single", tiny.nra == NraKind::kSingle,
                  std::string("deep-tiny probe won ") + to_string(tiny.nra));
    const BufferSize mid = (dmin * dmin / 2 + tmin) / 2 + dmin;
    if (mid > dmin * dmin / 2 && mid <= tmin) {
      IntraOptResult medium = optimize_intra(op, mid);
      c.expect_true("intra/regime_medium_two", medium.nra == NraKind::kTwo,
                    std::string("mid-medium probe won ") + to_string(medium.nra));
    }
  }
  {
    IntraOptResult large = optimize_intra(op, 2 * tmin + 2 * dmin);
    c.expect_true("intra/regime_large_three", large.nra == NraKind::kThree,
                  std::string("comfortably-large probe won ") + to_string(large.nra));
    c.expect_eq("intra/regime_large_three", large.access.total, op.ideal_min_access(),
                "large-buffer MA vs ideal minimum");
  }

  // Analytical model vs functional simulation: traffic must agree exactly,
  // per tensor, on a random executable schedule.
  if (c.opts_.with_executor) {
    Rng sub(mix64(c.w_.seed ^ 0x5eedf00dull));
    Dataflow df = gen_executor_dataflow(op, sub, c.opts_.array_n);
    if (tile_visits(op, df) <= c.opts_.max_tile_visits) {
      reg.counter("check/executor_runs").add();
      Matrix a = make_test_matrix(op.extent(mm::kDimM), op.extent(mm::kDimK),
                                  mix64(c.w_.seed) ^ 1);
      Matrix b = make_test_matrix(op.extent(mm::kDimK), op.extent(mm::kDimL),
                                  mix64(c.w_.seed) ^ 2);
      ComputeUnit cu(c.opts_.array_n);
      TiledExecutionResult run = execute_tiled(op, df, a, b, cu);
      AccessBreakdown model = evaluate_access(op, df);
      c.expect_eq("intra/executor_traffic", run.total_traffic, model.total,
                  "simulated vs modeled total traffic (" + df.to_string(op) + ")");
      for (int t = 0; t < op.num_tensors(); ++t) {
        c.expect_eq("intra/executor_traffic",
                    run.traffic_per_tensor[static_cast<std::size_t>(t)],
                    model.per_tensor[static_cast<std::size_t>(t)],
                    "simulated vs modeled traffic of " + op.tensor(t).name);
      }
      c.expect_true("intra/executor_output", run.output == matmul_reference(a, b),
                    "executed output differs from reference matmul");
      // Fidelity contract: on small schedules, re-execute cycle by cycle
      // and require the functional fast path to have been bit-identical —
      // same output bits, same cycle count, same array-edge traffic.
      if (tile_visits(op, df) <= 64) {
        ComputeUnit ref(c.opts_.array_n);
        ref.set_fidelity(SimFidelity::kCycleAccurate);
        TiledExecutionResult slow = execute_tiled(op, df, a, b, ref);
        c.expect_true("intra/fastpath_vs_stepper", run.output == slow.output,
                      "functional output differs from stepper (" + df.to_string(op) + ")");
        c.expect_eq("intra/fastpath_vs_stepper", run.compute_cycles, slow.compute_cycles,
                    "functional vs stepper cycle count");
        c.expect_eq("intra/fastpath_vs_stepper", cu.input_traffic(), ref.input_traffic(),
                    "functional vs stepper input traffic");
        c.expect_eq("intra/fastpath_vs_stepper", cu.output_traffic(), ref.output_traffic(),
                    "functional vs stepper output traffic");
        c.expect_eq("intra/fastpath_vs_stepper", cu.preload_traffic(), ref.preload_traffic(),
                    "functional vs stepper preload traffic");
      }
    } else {
      reg.counter("check/executor_skips").add();
    }
  }

  // Arch-constrained optimizer: deterministic, in-budget, tile-legal.
  if (c.opts_.with_arch) {
    Rng sub(mix64(c.w_.seed ^ 0xa5c4a5c4ull));
    ArchSpec arch = gen_arch_spec(sub);
    ArchIntraOpt r1 = optimize_intra_for_arch(op, arch);
    ArchIntraOpt r2 = optimize_intra_for_arch(op, arch);
    c.expect_eq("arch/deterministic", dims_to_string(r1.dataflow.tile),
                dims_to_string(r2.dataflow.tile),
                "arch plan tiles across two runs (" + arch.name + ")");
    c.expect_eq("arch/deterministic", r1.access.total, r2.access.total,
                "arch plan MA across two runs (" + arch.name + ")");
    c.expect_le("arch/fits_buffer", r1.access.buffer_footprint, arch.buffer_elements(),
                "arch plan footprint > platform buffer (" + arch.name + ")");
    for (int d = 0; d < op.num_dims(); ++d) {
      const Index t = r1.dataflow.tile[static_cast<std::size_t>(d)];
      c.expect_eq("arch/tile_legal", legalize_tile(t, op.extent(d), arch.tile_granularity()), t,
                  "tile of " + op.dim(d).name + " vs granularity on " + arch.name);
    }
    // The platform-constrained optimum can never beat the unconstrained one.
    c.expect_le("arch/vs_unconstrained",
                optimize_intra(op, arch.buffer_elements()).access.total, r1.access.total,
                "unconstrained MA above " + arch.name + "'s constrained MA");
  }

  if (c.opts_.with_serve && c.opts_.phase != CheckPhase::kCore) {
    check_intra_serve(c, op, bs);
  }
}

// ---------------------------------------------------------------------------
// Fused-pair checks.

/// Serve path byte-identity for fused plans (see check_intra_serve for the
/// phase rationale).
void check_fused_serve(Checker& c, const FusedPair& pair, BufferSize bs) {
  MetricsRegistry::global().counter("check/serve_checks").add();
  const std::string direct = fused_plan_signature(optimize_fused_pair(pair, bs));
  {
    ServeOptions so;
    so.threads = 1;
    so.cache_bytes = 1 << 20;
    so.shards = 1;
    PlanService service(so);
    FusedPlanned cold = service.plan_fused(pair, bs);
    c.expect_eq("serve/fused_byte_identity", fused_plan_signature(cold.result), direct,
                "served fused plan vs direct optimize_fused_pair");
    FusedPlanned warm = service.plan_fused(pair, bs);
    c.expect_true("serve/warm_cached", warm.cached, "second fused lookup missed the cache");
    c.expect_eq("serve/fused_byte_identity", fused_plan_signature(warm.result), direct,
                "cached fused plan vs direct optimize_fused_pair");
  }
  c.expect_eq("serve/teardown", fused_plan_signature(optimize_fused_pair(pair, bs)), direct,
              "post-service fused plan vs pre-service plan");
}

void check_fused_workload(Checker& c, const FusedPair& pair, BufferSize bs) {
  if (c.opts_.phase == CheckPhase::kServeOnly) {
    if (c.opts_.with_serve) check_fused_serve(c, pair, bs);
    return;
  }
  auto fopt = optimize_fused_pair(pair, bs);
  auto fexh = exhaustive_fused(pair, bs);
  c.expect_eq("fused/feasibility_agreement", fopt.has_value(), fexh.has_value(),
              "principled vs exhaustive fused feasibility");
  if (fopt && fexh) {
    c.expect_le("fused/opt_vs_exhaustive", fopt->access.total, fexh->access.total,
                "principled fused MA above exhaustive optimum (rule " + fopt->chosen.rule + ")");
    const AccessCount floor = fused_traffic_lower_bound(pair);
    c.expect_le("fused/lower_bound", floor, fexh->access.total,
                "exhaustive fused MA below the externals-once floor");
    c.expect_le("fused/lower_bound", floor, fopt->access.total,
                "principled fused MA below the externals-once floor");
    c.expect_le("fused/fits_buffer", fopt->access.buffer_footprint, bs,
                "fused footprint > BS");
    // Self-consistency: re-pricing the chosen configuration reproduces it.
    FusedAccess re = fopt->chosen.phased ? evaluate_phased(pair, *fopt->chosen.phased)
                                         : evaluate_resident(pair, *fopt->chosen.resident);
    c.expect_eq("fused/self_consistent", re.total, fopt->access.total,
                "re-evaluated fused total");
  }

  // Principle 4 and the fuse-or-not decision must tell one coherent story.
  FusionDecision d = decide_fusion(pair, bs);
  c.expect_eq("fused/decision_consistent", d.fusable, fopt.has_value(), "fusable flag");
  c.expect_eq("fused/principle4_predicate", d.principle4_predicts, same_nra_regime(pair, bs),
              "Principle-4 prediction vs regime predicate");
  if (fopt) {
    c.expect_eq("fused/decision_consistent", d.fused_ma, fopt->access.total, "decision fused MA");
    c.expect_eq("fused/decision_consistent", d.unfused_ma, unfused_pair_access(pair, bs),
                "decision unfused MA");
    c.expect_eq("fused/decision_consistent", d.profitable, d.fused_ma < d.unfused_ma,
                "profitability flag");
  }

  // Fused functional simulation vs the phased analytical model.
  if (c.opts_.with_executor && pair.m() <= 2 * c.opts_.array_n &&
      pair.l() <= c.opts_.array_n && pair.k() <= 2 * c.opts_.array_n &&
      pair.n() <= 2 * c.opts_.array_n) {
    Rng sub(mix64(c.w_.seed ^ 0xf0e1d2c3ull));
    PhasedFusedDataflow df;
    df.t_m = sub.uniform(1, std::min(pair.m(), c.opts_.array_n));
    df.t_k = sub.uniform(1, pair.k());
    df.t_l = sub.uniform(1, std::min(pair.l(), c.opts_.array_n));
    df.t_n = sub.uniform(1, pair.n());
    df.l_outer = sub.chance(0.5);
    MetricsRegistry::global().counter("check/executor_runs").add();
    Matrix a = make_test_matrix(pair.m(), pair.k(), mix64(c.w_.seed) ^ 3);
    Matrix b = make_test_matrix(pair.k(), pair.l(), mix64(c.w_.seed) ^ 4);
    Matrix dmat = make_test_matrix(pair.l(), pair.n(), mix64(c.w_.seed) ^ 5);
    FuseCuQuad quad(c.opts_.array_n);
    FusedExecutionResult run = execute_fused_phased(pair, df, a, b, dmat, quad);
    FusedAccess model = evaluate_phased(pair, df);
    c.expect_eq("fused/executor_traffic", run.total_traffic, model.total,
                "simulated vs modeled fused traffic (" + df.to_string() + ")");
    c.expect_eq("fused/executor_traffic", run.traffic_c, AccessCount{0},
                "intermediate spilled to memory");
    c.expect_true("fused/executor_output",
                  run.output == matmul_reference(matmul_reference(a, b), dmat),
                  "fused execution differs from reference (A*B)*D");
  }

  if (c.opts_.with_serve && c.opts_.phase != CheckPhase::kCore) {
    check_fused_serve(c, pair, bs);
  }
}

// ---------------------------------------------------------------------------
// Chain checks.

void check_chain_workload(Checker& c, const ChainSpec& chain, BufferSize bs) {
  if (c.opts_.phase == CheckPhase::kServeOnly) return;  // chains have no serve path
  OperatorGraph direct = chain.direct();
  OperatorGraph with_ew = chain.with_elementwise();

  GraphPlan pd = plan_graph(direct, bs, PlannerPolicy::kCostOnly, 3);
  GraphPlan pe = plan_graph(with_ew, bs, PlannerPolicy::kCostOnly, 3);

  // Pointwise epilogues are free: they may never change the chain cost.
  c.expect_eq("chain/pointwise_invariant", pe.total_access, pd.total_access,
              "chain cost with vs without pointwise ops");
  c.expect_eq("chain/pointwise_invariant", pe.elementwise_access, AccessCount{0},
              "non-absorbed pointwise traffic");
  c.expect_eq("chain/pointwise_invariant", static_cast<AccessCount>(pe.spilled_rowwise),
              AccessCount{0}, "spilled row-wise ops in a pointwise-only chain");

  // Floors and ceilings: a plan can never beat perfect fusion, and the DP
  // includes the all-solo partition so it can never lose to it.
  c.expect_le("chain/lower_bound", direct.ideal_min_access_fused(), pd.total_access,
              "chain plan below the perfect-fusion floor");
  AccessCount solo_sum = 0;
  for (const TensorOp& op : direct.ops()) solo_sum += optimize_intra(op, bs).access.total;
  c.expect_le("chain/vs_all_solo", pd.total_access, solo_sum,
              "chain plan above the all-solo partition");

  // Determinism.
  GraphPlan pd2 = plan_graph(direct, bs, PlannerPolicy::kCostOnly, 3);
  c.expect_eq("chain/deterministic", pd2.total_access, pd.total_access,
              "chain cost across two planning runs");
}

}  // namespace

// ---------------------------------------------------------------------------

bool CheckReport::has_failure(const std::string& check) const {
  for (const CheckFailure& f : failures) {
    if (f.check == check) return true;
  }
  return false;
}

std::string CheckReport::summary() const {
  std::ostringstream os;
  os << checks_run << " checks, " << failures.size() << " failure(s)";
  for (const CheckFailure& f : failures) {
    os << "\n  [" << f.check << "] " << f.detail;
  }
  return os.str();
}

AccessCount fused_traffic_lower_bound(const FusedPair& pair) {
  return pair.ideal_min_access();
}

std::string intra_plan_signature(const IntraOptResult& r) {
  std::ostringstream os;
  os << "rule=" << r.rule << " nra=" << static_cast<int>(r.nra)
     << " class=" << to_string(r.buffer_class) << " order=[";
  for (std::size_t i = 0; i < r.dataflow.loop_order.size(); ++i) {
    if (i) os << ",";
    os << r.dataflow.loop_order[i];
  }
  os << "] tile=" << dims_to_string(r.dataflow.tile)
     << " per_tensor=" << dims_to_string(r.access.per_tensor) << " total=" << r.access.total
     << " footprint=" << r.access.buffer_footprint;
  return os.str();
}

std::string fused_plan_signature(const std::optional<FusedOptResult>& r) {
  if (!r) return "unfusable";
  std::ostringstream os;
  os << "rule=" << r->chosen.rule << " r1=" << static_cast<int>(r->regime1)
     << " r2=" << static_cast<int>(r->regime2) << " op1=" << r->access.op1_external
     << " op2=" << r->access.op2_external << " total=" << r->access.total
     << " footprint=" << r->access.buffer_footprint;
  if (r->chosen.phased) {
    const PhasedFusedDataflow& p = *r->chosen.phased;
    os << " phased{" << p.t_m << "," << p.t_k << "," << p.t_l << "," << p.t_n << ","
       << (p.l_outer ? "L" : "M") << "}";
  }
  if (r->chosen.resident) {
    os << " resident{" << dims_to_string(r->chosen.resident->df1.tile) << ","
       << dims_to_string(r->chosen.resident->df2.tile) << "}";
  }
  return os.str();
}

CheckReport check_workload(const Workload& w, const CheckOptions& opts) {
  MetricsRegistry& reg = MetricsRegistry::global();
  CheckReport report;
  Checker c(w, opts, &report);

  // One span per trial: everything the trial touches (optimizers, the
  // executor, the serve path) nests under it, so a flight-recorder dump
  // taken on failure shows the failing trial's full tree.
  ScopedSpan trial_span("check/trial");
  trial_span.note(w.to_string().c_str());

  // Per-trial coverage counters are charged once per trial, in the phase
  // that runs the core checks — a kServeOnly call is the second half of a
  // trial already counted by its kCore half.
  const bool count_trial = opts.phase != CheckPhase::kServeOnly;
  if (count_trial) reg.counter("check/trials").add();
  try {
    switch (w.kind) {
      case WorkloadKind::kIntra: {
        TensorOp op = w.intra_op();
        report.buffer_class = classify_buffer(op, w.bs);
        check_intra_workload(c, op, w.bs);
        break;
      }
      case WorkloadKind::kFused: {
        FusedPair pair = w.fused_pair();
        report.buffer_class = classify_buffer(pair.op1(), w.bs);
        check_fused_workload(c, pair, w.bs);
        break;
      }
      case WorkloadKind::kChain: {
        report.buffer_class = classify_buffer(w.chain.direct().op(0), w.bs);
        check_chain_workload(c, w.chain, w.bs);
        break;
      }
    }
  } catch (const std::exception& e) {
    c.fail("exception", std::string("unexpected throw: ") + e.what());
  }

  if (count_trial && report.buffer_class) {
    reg.counter(std::string("check/regime/") + to_string(*report.buffer_class)).add();
  }
  reg.counter("check/checks_run").add(report.checks_run);
  if (!report.ok()) {
    reg.counter("check/failed_trials").add();
    reg.counter("check/failures").add(static_cast<std::int64_t>(report.failures.size()));
    for (const CheckFailure& f : report.failures) {
      log_error("check", f.detail, {{"check", f.check}, {"workload", w.to_string()}});
    }
  }
  return report;
}

}  // namespace fusecu
