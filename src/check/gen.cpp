#include "check/gen.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace fusecu {

namespace {

/// Primes that stress divisor-grid searches: no factors to tile along.
constexpr Index kPrimes[] = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41,
                             43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89};

Index largest_pow2_at_most(Index v) {
  Index p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

}  // namespace

Index gen_extent(Rng& rng, Index max_extent) {
  FCU_CHECK(max_extent >= 1, "gen_extent: max_extent must be positive");
  const double roll = rng.uniform01();
  if (roll < 0.10) return 1;
  if (roll < 0.25) {
    // A prime <= max_extent (fall back to uniform when none fits).
    std::vector<Index> fits;
    for (Index p : kPrimes) {
      if (p <= max_extent) fits.push_back(p);
    }
    if (!fits.empty()) return fits[rng.pick(fits.size())];
  }
  if (roll < 0.50) {
    const Index cap = largest_pow2_at_most(max_extent);
    Index p = 1;
    while (p < cap && rng.chance(0.5)) p *= 2;
    return p;
  }
  return rng.uniform(1, max_extent);
}

TensorOp gen_matmul(Rng& rng, const GenLimits& limits) {
  return TensorOp::matmul("gen", gen_extent(rng, limits.max_extent),
                          gen_extent(rng, limits.max_extent),
                          gen_extent(rng, limits.max_extent));
}

FusedPair gen_fused_pair(Rng& rng, const GenLimits& limits) {
  return FusedPair::make(gen_extent(rng, limits.max_extent), gen_extent(rng, limits.max_extent),
                         gen_extent(rng, limits.max_extent), gen_extent(rng, limits.max_extent));
}

BufferSize gen_buffer_size(Rng& rng, const TensorOp& op) {
  const Index dmin = op.min_extent();
  const Index tmin = op.tensor_size(op.smallest_tensor());
  const BufferSize b1 = dmin * dmin / 4;   // tiny/small shift
  const BufferSize b2 = dmin * dmin / 2;   // small/medium shift
  const BufferSize b3 = tmin;              // medium/large shift
  BufferSize full_fit = 0;                 // everything resident at once
  for (int t = 0; t < op.num_tensors(); ++t) full_fit += op.tensor_size(t);

  const BufferSize floor = 3;  // minimal matmul working set
  BufferSize bs = floor;
  const double roll = rng.uniform01();
  if (roll < 0.25) {
    // Exactly on a classification boundary, or one element beside it.
    const BufferSize bounds[] = {b1, b2, b3};
    const BufferSize base = bounds[rng.pick(3)];
    const BufferSize offsets[] = {-1, 0, 1};
    bs = base + offsets[rng.pick(3)];
  } else if (roll < 0.85) {
    // Inside a uniformly chosen buffer-class band (skip empty bands).
    switch (rng.pick(4)) {
      case 0:  // tiny: [floor, b1]
        bs = b1 >= floor ? rng.uniform(floor, b1) : floor;
        break;
      case 1:  // small: (b1, b2]
        bs = b2 > b1 ? rng.uniform(b1 + 1, b2) : b2;
        break;
      case 2:  // medium: (b2, b3]
        bs = b3 > b2 ? rng.uniform(b2 + 1, b3) : b3;
        break;
      default:  // large: (b3, 2*full_fit]
        bs = rng.uniform(b3 + 1, std::max<BufferSize>(b3 + 1, 2 * full_fit));
        break;
    }
  } else {
    // Unconstrained draw across the whole range.
    bs = rng.uniform(floor, std::max<BufferSize>(floor, 2 * full_fit));
  }
  return std::max(bs, floor);
}

ArchSpec gen_arch_spec(Rng& rng) {
  std::vector<ArchSpec> platforms = all_platforms();
  ArchSpec arch = platforms[rng.pick(platforms.size())];
  // Randomize the buffer across three orders of magnitude so the
  // arch-constrained optimizer sees every regime too.
  const std::int64_t kb = rng.uniform(16, 16 * 1024);
  arch.buffer_bytes = kb * 1024;
  return arch;
}

OperatorGraph ChainSpec::direct() const {
  FCU_CHECK(num_ops() >= 1, "chain needs at least one op");
  OperatorGraph graph;
  std::string prev = "X0";
  for (int i = 0; i < num_ops(); ++i) {
    const std::string out = "X" + std::to_string(i + 1);
    graph.add_op(TensorOp::matmul("mm" + std::to_string(i), m, dims[static_cast<std::size_t>(i)],
                                  dims[static_cast<std::size_t>(i) + 1], prev,
                                  "W" + std::to_string(i), out));
    prev = out;
  }
  return graph;
}

OperatorGraph ChainSpec::with_elementwise() const {
  FCU_CHECK(num_ops() >= 1, "chain needs at least one op");
  OperatorGraph graph;
  std::string prev = "X0";
  for (int i = 0; i < num_ops(); ++i) {
    const std::string out = "X" + std::to_string(i + 1);
    graph.add_op(TensorOp::matmul("mm" + std::to_string(i), m, dims[static_cast<std::size_t>(i)],
                                  dims[static_cast<std::size_t>(i) + 1], prev,
                                  "W" + std::to_string(i), out));
    prev = out;
    if (i + 1 < num_ops() && i < static_cast<int>(act_after.size()) &&
        act_after[static_cast<std::size_t>(i)]) {
      const std::string acted = out + "_act";
      graph.add_op(TensorOp::elementwise("act" + std::to_string(i), m,
                                         dims[static_cast<std::size_t>(i) + 1], out, acted));
      prev = acted;
    }
  }
  return graph;
}

TensorOp Workload::intra_op() const {
  FCU_CHECK(kind != WorkloadKind::kChain, "chain workloads have no single op");
  return TensorOp::matmul("wl", m, k, l);
}

FusedPair Workload::fused_pair() const {
  FCU_CHECK(kind == WorkloadKind::kFused, "not a fused workload");
  return FusedPair::make(m, k, l, n);
}

std::string Workload::to_string() const {
  std::ostringstream os;
  os << fusecu::to_string(kind) << "{";
  switch (kind) {
    case WorkloadKind::kIntra:
      os << "m=" << m << " k=" << k << " l=" << l;
      break;
    case WorkloadKind::kFused:
      os << "m=" << m << " k=" << k << " l=" << l << " n=" << n;
      break;
    case WorkloadKind::kChain: {
      os << "m=" << chain.m << " dims=[";
      for (std::size_t i = 0; i < chain.dims.size(); ++i) {
        if (i) os << ",";
        os << chain.dims[i];
      }
      os << "] acts=[";
      for (std::size_t i = 0; i < chain.act_after.size(); ++i) {
        if (i) os << ",";
        os << (chain.act_after[i] ? 1 : 0);
      }
      os << "]";
      break;
    }
  }
  os << " bs=" << bs << " seed=" << seed << "}";
  return os.str();
}

const char* to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kIntra:
      return "intra";
    case WorkloadKind::kFused:
      return "fused";
    case WorkloadKind::kChain:
      return "chain";
  }
  return "?";
}

Workload gen_workload_of(WorkloadKind kind, Rng& rng, const GenLimits& limits) {
  Workload w;
  w.kind = kind;
  switch (kind) {
    case WorkloadKind::kIntra: {
      w.m = gen_extent(rng, limits.max_extent);
      w.k = gen_extent(rng, limits.max_extent);
      w.l = gen_extent(rng, limits.max_extent);
      w.bs = gen_buffer_size(rng, w.intra_op());
      break;
    }
    case WorkloadKind::kFused: {
      w.m = gen_extent(rng, limits.max_extent);
      w.k = gen_extent(rng, limits.max_extent);
      w.l = gen_extent(rng, limits.max_extent);
      w.n = gen_extent(rng, limits.max_extent);
      // Size the buffer against the producer, scaled up occasionally so the
      // resident-intermediate family is reachable.
      w.bs = gen_buffer_size(rng, w.intra_op());
      if (rng.chance(0.3)) w.bs += w.m * w.l + 2;  // room for resident C
      break;
    }
    case WorkloadKind::kChain: {
      const int ops = static_cast<int>(rng.uniform(2, limits.max_chain_ops));
      w.chain.m = gen_extent(rng, limits.max_chain_extent);
      w.chain.dims.clear();
      for (int i = 0; i <= ops; ++i) {
        w.chain.dims.push_back(gen_extent(rng, limits.max_chain_extent));
      }
      w.chain.act_after.clear();
      for (int i = 0; i + 1 < ops; ++i) w.chain.act_after.push_back(rng.chance(0.6));
      TensorOp first = w.chain.direct().op(0);
      w.bs = gen_buffer_size(rng, first);
      break;
    }
  }
  return w;
}

Workload gen_workload(Rng& rng, const GenLimits& limits) {
  const double roll = rng.uniform01();
  WorkloadKind kind = WorkloadKind::kIntra;
  if (roll >= 0.60 && roll < 0.85) {
    kind = WorkloadKind::kFused;
  } else if (roll >= 0.85) {
    kind = WorkloadKind::kChain;
  }
  return gen_workload_of(kind, rng, limits);
}

}  // namespace fusecu
