#pragma once

#include <string>

#include "check/conformance.hpp"
#include "check/gen.hpp"

/// \file repro.hpp
/// Self-contained JSON reproductions of conformance failures.
///
/// A repro artifact carries everything needed to re-run one failing
/// workload on a different machine or a later commit: the workload itself
/// (kind, extents, buffer size), the seed it came from, the failing check
/// ids and their detail strings, plus the shrunk form when available.
/// `fusecu_check --replay repro.json` feeds it straight back into
/// check_workload; CI uploads the file as a workflow artifact.

namespace fusecu {

/// One failure plus the workloads that exhibit it.
struct Repro {
  Workload original;               ///< as generated
  Workload shrunk;                 ///< minimized (== original when not shrunk)
  std::vector<CheckFailure> failures;  ///< from the original run
  std::string tool_version;        ///< free-form provenance, e.g. "fusecu_check"
};

/// Serialize to a stable JSON document (one object, versioned schema).
std::string repro_to_json(const Repro& repro);

/// Parse a document produced by repro_to_json.  Throws ParseError on
/// malformed JSON and std::invalid_argument on schema violations.
Repro repro_from_json(const std::string& text, const std::string& source = "<repro>");

}  // namespace fusecu
