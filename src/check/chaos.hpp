#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/fault.hpp"

/// \file chaos.hpp
/// Seeded chaos trials for the net/serve stack (`fusecu_check
/// --chaos-trials`): each trial arms a seed-derived FaultPlan
/// (common/fault.hpp), boots a real PlanService + NetServer on a loopback
/// port, drives it with pipelined multi-connection client threads, drains,
/// and asserts the PR 7 serving invariants:
///
///   * per-connection response order: the responses each client read are
///     exactly a prefix of its request ids, in order — shed responses
///     included, so id preservation under overload is covered too;
///   * no lost responses: a connection may come up short only when the plan
///     schedules a connection-killing fault (ECONNRESET/EPIPE), and the
///     number of cut connections is bounded by the plan's reset events;
///   * byte identity: every ok=true response equals, byte for byte, what a
///     fresh PlanService::serve_stream produces for the same request line;
///   * overload shape: every non-ok response on a healthy run is either the
///     structured "overloaded" shed response or a watchdog "timed_out"
///     cancellation, both carrying the request id;
///   * graceful drain: request_drain() completes within a watchdog and
///     every accepted connection is closed;
///   * watchdog & admission accounting (PR 10): when no connection was cut,
///     the sheds and cancellations each client read match the server's shed
///     and timed_out counters exactly (so an already-admitted request is
///     never shed retroactively), and a plan whose only destabilizing fault
///     is a worker hang long enough to cross the 2x hang-guard deadline
///     *must* produce at least one watchdog cancellation when such a hang
///     fired — the watchdog firing is deterministic per plan.
///
/// Determinism. The per-trial seed, fault plan and client scripts are pure
/// functions of (base seed, trial index) via the same splitmix64 derivation
/// as the conformance harness, and the progress report prints only
/// plan-derived facts — two runs with the same flags produce byte-identical
/// reports even though thread scheduling (and hence which events fire)
/// differs.  Which-events-fired counts are published to the metrics
/// registry under chaos/... instead.
///
/// On failure the fault schedule is minimized PR 3-style (drop events,
/// halve triggers/magnitudes; greedy first-accept to a fixpoint, keeping a
/// candidate exactly when the re-run still violates the same invariant) and
/// packaged as a self-contained JSON repro replayable with --chaos-replay.
///
/// Trials run strictly serially: a PlanService installs process-global
/// planner interceptors, and the fault injector is process-global too.

namespace fusecu {

/// Configuration of one chaos run.
struct ChaosOptions {
  std::uint64_t seed = 1;  ///< base seed; trial i uses trial_seed(seed, i)
  int trials = 100;
  int max_events = 12;     ///< fault-plan size cap per trial
  bool shrink = true;      ///< minimize failing fault schedules
  /// Cap on stored (and shrunk) failures; trials beyond it still run and
  /// are still counted.
  int max_failures = 4;
  /// Intentional server bug to arm (harness self-test; see fault::TestBug).
  fault::TestBug bug = fault::TestBug::kNone;
  /// Per-trial watchdog for client reads and the drain join.
  std::int64_t watchdog_ms = 20'000;
  /// Server-side supervision budget (NetServerOptions::watchdog_ms) armed
  /// in every trial: heartbeat stalls are reported and a request unanswered
  /// past 2x this budget is cancelled in order.  Generated worker hangs
  /// (100-300 ms) always cross the 80 ms hang-guard deadline, so the
  /// watchdog-fires invariant is decidable from the plan.  0 = unsupervised.
  std::int64_t server_watchdog_ms = 40;
  /// Reactor shards for the trial server (NetServerOptions::reactors):
  /// 0 = the legacy single inline loop, N = N reactor threads.  The
  /// invariants are reactor-count-independent, so the same trials double as
  /// the multi-reactor drain/order suite.
  int reactors = 0;
};

/// One violated serving invariant.
struct ChaosViolation {
  std::string invariant;  ///< stable id, e.g. "net/response_order"
  std::string detail;
};

/// Outcome of a single trial.
struct ChaosTrialReport {
  std::vector<ChaosViolation> violations;
  int checks_run = 0;  ///< invariant families evaluated (fixed per trial)
  bool ok() const { return violations.empty(); }
};

/// Greedy fault-schedule minimization (mirrors check/shrink.hpp).
struct ChaosShrinkResult {
  fault::FaultPlan plan;  ///< smallest schedule still violating `invariant`
  std::string invariant;
  int attempts = 0;  ///< candidate plans re-run
  int accepted = 0;  ///< transformations that kept the violation
};

/// One failing trial with its minimized fault schedule.
struct ChaosFailure {
  int trial = 0;
  std::uint64_t seed = 0;  ///< derived trial seed (regenerates the scripts)
  int reactors = 0;        ///< server shards the failure was found at
  fault::FaultPlan plan;
  ChaosShrinkResult shrunk;
  std::vector<ChaosViolation> violations;
};

/// Aggregate outcome of a chaos run.
struct ChaosResult {
  int trials_run = 0;
  int failed_trials = 0;
  std::int64_t checks_run = 0;
  std::vector<ChaosFailure> failures;
  bool ok() const { return failed_trials == 0; }
};

/// Run one trial: arm \p plan, serve the scripts derived from
/// \p trial_seed, check every invariant.  Leaves the injector disarmed.
ChaosTrialReport run_chaos_trial(std::uint64_t trial_seed, const fault::FaultPlan& plan,
                                 const ChaosOptions& opts = {});

/// Run \p opts.trials chaos trials.  When \p progress is non-null, one
/// deterministic line is printed per trial plus failure details.
ChaosResult run_chaos(const ChaosOptions& opts, std::ostream* progress = nullptr);

/// Minimize \p failing for trial \p trial_seed, preserving a violation of
/// \p invariant (empty: any violation).  If the violation does not
/// reproduce, the original plan is returned with accepted == 0.
ChaosShrinkResult shrink_fault_plan(std::uint64_t trial_seed, const fault::FaultPlan& failing,
                                    const std::string& invariant, const ChaosOptions& opts,
                                    int max_passes = 6);

/// Self-contained JSON repro artifact for one failure (schema
/// fusecu_chaos_repro/1) and its inverse.
std::string chaos_repro_to_json(const ChaosFailure& failure);
ChaosFailure chaos_repro_from_json(const std::string& text,
                                   const std::string& source = "<chaos-repro>");

/// Re-run a repro (shrunk plan when present, else the original).
ChaosTrialReport replay_chaos_repro(const ChaosFailure& failure, const ChaosOptions& opts = {});

}  // namespace fusecu
