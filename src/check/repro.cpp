#include "check/repro.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/json_parse.hpp"
#include "common/json_writer.hpp"

namespace fusecu {

namespace {

constexpr int kSchemaVersion = 1;

void write_workload(JsonWriter& jw, const Workload& w) {
  jw.begin_object();
  jw.field("kind", to_string(w.kind));
  jw.field("seed", static_cast<std::int64_t>(w.seed));
  jw.field("bs", w.bs);
  switch (w.kind) {
    case WorkloadKind::kIntra:
      jw.field("m", w.m);
      jw.field("k", w.k);
      jw.field("l", w.l);
      break;
    case WorkloadKind::kFused:
      jw.field("m", w.m);
      jw.field("k", w.k);
      jw.field("l", w.l);
      jw.field("n", w.n);
      break;
    case WorkloadKind::kChain:
      jw.field("m", w.chain.m);
      jw.key("dims");
      jw.begin_array();
      for (Index d : w.chain.dims) jw.value(d);
      jw.end_array();
      jw.key("act_after");
      jw.begin_array();
      for (bool b : w.chain.act_after) jw.value(b);
      jw.end_array();
      break;
  }
  jw.end_object();
}

Index number_field(const JsonValuePtr& obj, const std::string& key) {
  JsonValuePtr v = obj->get(key);
  FCU_CHECK(v != nullptr && v->is_number(), "repro: missing numeric field '" + key + "'");
  return static_cast<Index>(v->as_number());
}

Workload parse_workload(const JsonValuePtr& obj) {
  FCU_CHECK(obj != nullptr && obj->is_object(), "repro: workload must be an object");
  JsonValuePtr kind = obj->get("kind");
  FCU_CHECK(kind != nullptr && kind->is_string(), "repro: missing workload kind");

  Workload w;
  w.seed = static_cast<std::uint64_t>(number_field(obj, "seed"));
  w.bs = number_field(obj, "bs");
  const std::string& k = kind->as_string();
  if (k == "intra" || k == "fused") {
    w.kind = k == "intra" ? WorkloadKind::kIntra : WorkloadKind::kFused;
    w.m = number_field(obj, "m");
    w.k = number_field(obj, "k");
    w.l = number_field(obj, "l");
    if (w.kind == WorkloadKind::kFused) w.n = number_field(obj, "n");
  } else if (k == "chain") {
    w.kind = WorkloadKind::kChain;
    w.chain.m = number_field(obj, "m");
    JsonValuePtr dims = obj->get("dims");
    FCU_CHECK(dims != nullptr && dims->is_array(), "repro: chain needs a dims array");
    for (const JsonValuePtr& d : dims->as_array()) {
      FCU_CHECK(d->is_number(), "repro: chain dims must be numbers");
      w.chain.dims.push_back(static_cast<Index>(d->as_number()));
    }
    FCU_CHECK(w.chain.num_ops() >= 1, "repro: chain needs at least two dims");
    if (JsonValuePtr acts = obj->get("act_after")) {
      FCU_CHECK(acts->is_array(), "repro: act_after must be an array");
      for (const JsonValuePtr& a : acts->as_array()) {
        FCU_CHECK(a->is_bool(), "repro: act_after entries must be booleans");
        w.chain.act_after.push_back(a->as_bool());
      }
    }
  } else {
    FCU_CHECK(false, "repro: unknown workload kind '" + k + "'");
  }
  return w;
}

}  // namespace

std::string repro_to_json(const Repro& repro) {
  std::ostringstream os;
  {
    JsonWriter jw(os);
    jw.begin_object();
    jw.field("schema", kSchemaVersion);
    jw.field("tool", repro.tool_version);
    jw.key("original");
    write_workload(jw, repro.original);
    jw.key("shrunk");
    write_workload(jw, repro.shrunk);
    jw.key("failures");
    jw.begin_array();
    for (const CheckFailure& f : repro.failures) {
      jw.begin_object();
      jw.field("check", f.check);
      jw.field("detail", f.detail);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
  }
  return os.str();
}

Repro repro_from_json(const std::string& text, const std::string& source) {
  JsonValuePtr root = parse_json(text, source);
  FCU_CHECK(root->is_object(), "repro: root must be an object");
  FCU_CHECK(root->has("schema") && root->get("schema")->is_number() &&
                static_cast<int>(root->get("schema")->as_number()) == kSchemaVersion,
            "repro: unsupported schema version");

  Repro repro;
  if (JsonValuePtr tool = root->get("tool"); tool && tool->is_string()) {
    repro.tool_version = tool->as_string();
  }
  repro.original = parse_workload(root->get("original"));
  repro.shrunk = root->has("shrunk") ? parse_workload(root->get("shrunk")) : repro.original;
  if (JsonValuePtr failures = root->get("failures"); failures && failures->is_array()) {
    for (const JsonValuePtr& f : failures->as_array()) {
      FCU_CHECK(f->is_object(), "repro: failure entries must be objects");
      CheckFailure cf;
      if (JsonValuePtr c = f->get("check"); c && c->is_string()) cf.check = c->as_string();
      if (JsonValuePtr d = f->get("detail"); d && d->is_string()) cf.detail = d->as_string();
      repro.failures.push_back(std::move(cf));
    }
  }
  return repro;
}

}  // namespace fusecu
