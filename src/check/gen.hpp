#pragma once

#include <string>
#include <vector>

#include "arch/arch_spec.hpp"
#include "common/rng.hpp"
#include "fusion/fused_pair.hpp"
#include "tensor/op_graph.hpp"

/// \file gen.hpp
/// Property-based workload generators for the differential conformance
/// harness (src/check).
///
/// Every generator draws from a caller-owned Rng, so one seed determines the
/// whole workload stream.  The distributions are deliberately adversarial
/// rather than uniform:
///
///  * **Extents** mix unit dimensions, small primes, exact powers of two and
///    uniform draws, because the optimizer's integer rounding (trip-count
///    breakpoints, divisor grids) fails first on primes and degenerate dims.
///  * **Buffer sizes** are regime-biased: a target buffer class is drawn
///    first and the size sampled inside that band, with extra mass exactly
///    on the paper's classification boundaries BS = D_min^2/4, D_min^2/2 and
///    |Tensor_min| (and one element on either side) — the shift points where
///    Principles 1/2/3 hand over (Sec. III-A4).
///
/// The Workload struct is a plain-old-data description (extents + buffer
/// size), deliberately decoupled from TensorOp/FusedPair so the shrinker can
/// transform it and the repro writer can serialize it without touching
/// library invariants until materialization.

namespace fusecu {

/// Bounds for generated workloads.  The defaults keep a single conformance
/// trial (which runs exhaustive search as the oracle) in the low
/// milliseconds, so CI can afford hundreds of trials.
struct GenLimits {
  Index max_extent = 96;    ///< intra/fused matmul dimension cap
  int max_chain_ops = 4;    ///< matmul count cap for chain workloads
  Index max_chain_extent = 64;  ///< chain dimension cap (planning only)
};

/// Size-biased extent in [1, max_extent]: ~10% unit, ~15% prime, ~25% power
/// of two, rest uniform.
Index gen_extent(Rng& rng, Index max_extent);

/// Random matmul-shaped operator with canonical labels (M/K/L, A/B/C).
TensorOp gen_matmul(Rng& rng, const GenLimits& limits = {});

/// Random fused matmul pair (A x B) x D.
FusedPair gen_fused_pair(Rng& rng, const GenLimits& limits = {});

/// Regime-biased buffer size for \p op: draws a target buffer class, then a
/// size inside its band; ~25% of draws land exactly on a classification
/// boundary or one element beside it.  Always >= 3 (the minimal matmul
/// working set), so optimize_intra never rejects it.
BufferSize gen_buffer_size(Rng& rng, const TensorOp& op);

/// One of the five platform presets with a randomized buffer size.
ArchSpec gen_arch_spec(Rng& rng);

/// Workload kinds the conformance checker understands.
enum class WorkloadKind { kIntra, kFused, kChain };

/// A matmul chain X_{i+1} = X_i * W_{i+1} with optional pointwise
/// activations between ops; `direct()` rebuilds the same chain without the
/// activations (the planner must price both identically).
struct ChainSpec {
  Index m = 1;
  std::vector<Index> dims;       ///< N_0 .. N_k (k = ops)
  std::vector<bool> act_after;   ///< pointwise act after op i (size k-1)

  int num_ops() const { return static_cast<int>(dims.size()) - 1; }
  OperatorGraph direct() const;
  OperatorGraph with_elementwise() const;
};

/// A generated (or shrunk, or replayed) conformance workload.
struct Workload {
  WorkloadKind kind = WorkloadKind::kIntra;
  std::uint64_t seed = 0;  ///< generator seed that produced it (diagnostics)
  Index m = 1, k = 1, l = 1;
  Index n = 1;             ///< kFused only
  ChainSpec chain;         ///< kChain only
  BufferSize bs = 3;

  TensorOp intra_op() const;     ///< kIntra / kFused producer view
  FusedPair fused_pair() const;  ///< kFused only

  std::string to_string() const;
};

const char* to_string(WorkloadKind kind);

/// Random workload of a random kind (~60% intra, ~25% fused, ~15% chain).
Workload gen_workload(Rng& rng, const GenLimits& limits = {});

/// Random workload of a forced kind (used to balance regime/kind coverage).
Workload gen_workload_of(WorkloadKind kind, Rng& rng, const GenLimits& limits = {});

}  // namespace fusecu
