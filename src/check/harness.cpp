#include "check/harness.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "obs/log.hpp"
#include "serve/thread_pool.hpp"

namespace fusecu {

std::uint64_t trial_seed(std::uint64_t seed, int trial) {
  // splitmix64 over (seed, trial): decorrelates adjacent trials and adjacent
  // base seeds, so --seed 1 and --seed 2 share no workload stream prefix.
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(trial) + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Workload workload_for_trial(std::uint64_t seed, int trial, const GenLimits& limits) {
  const std::uint64_t ts = trial_seed(seed, trial);
  Rng rng(ts);
  Workload w = gen_workload(rng, limits);
  w.seed = ts;
  return w;
}

namespace {

/// Append the serve-phase outcome to the core-phase outcome.  Core checks
/// run before serve checks in a kAll call too, so the merged report is
/// byte-identical to a single-phase run.
CheckReport merge_reports(CheckReport core, CheckReport serve) {
  core.checks_run += serve.checks_run;
  for (CheckFailure& f : serve.failures) core.failures.push_back(std::move(f));
  if (!core.buffer_class) core.buffer_class = serve.buffer_class;
  return core;
}

}  // namespace

HarnessResult run_conformance(const HarnessOptions& opts, std::ostream* progress) {
  HarnessResult result;
  const int jobs = std::max(1, opts.jobs);

  // Every trial is split into a thread-safe core phase and a serve phase.
  // The core phases fan out over the pool; the serve phases run strictly
  // serially afterwards, because a live PlanService intercepts *every*
  // planning call in the process.  The same split runs at jobs=1, so
  // counters and reports do not depend on the worker count.
  CheckOptions core_opts = opts.check;
  core_opts.phase = CheckPhase::kCore;
  CheckOptions serve_opts = opts.check;
  serve_opts.phase = CheckPhase::kServeOnly;

  std::vector<Workload> workloads;
  workloads.reserve(static_cast<std::size_t>(std::max(0, opts.trials)));
  for (int trial = 0; trial < opts.trials; ++trial) {
    workloads.push_back(workload_for_trial(opts.seed, trial, opts.limits));
  }

  std::vector<CheckReport> core_reports(workloads.size());
  if (jobs > 1) {
    ThreadPool pool(jobs);
    std::vector<std::future<CheckReport>> futures;
    futures.reserve(workloads.size());
    for (const Workload& w : workloads) {
      futures.push_back(
          pool.submit([&core_opts, &w]() { return check_workload(w, core_opts); }));
    }
    // Ordered collection: worker completion order never leaks into results.
    for (std::size_t i = 0; i < futures.size(); ++i) core_reports[i] = futures[i].get();
  } else {
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      core_reports[i] = check_workload(workloads[i], core_opts);
    }
  }

  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    CheckReport report =
        merge_reports(std::move(core_reports[i]), check_workload(w, serve_opts));
    ++result.trials_run;
    result.checks_run += report.checks_run;
    if (report.ok()) continue;

    ++result.failed_trials;
    log_warn("check", "trial failed",
             {{"trial", std::to_string(i)},
              {"seed", std::to_string(w.seed)},
              {"workload", w.to_string()},
              {"first_check", report.failures.front().check}});
    if (progress) {
      *progress << "FAIL trial " << i << " (seed " << w.seed << "): " << report.summary()
                << "\n";
    }
    // Store and shrink at most max_failures counterexamples; later failing
    // trials are still counted above so the totals stay jobs-independent.
    if (static_cast<int>(result.failures.size()) >= opts.max_failures) continue;
    TrialFailure failure;
    failure.workload = w;
    failure.report = report;
    if (opts.shrink) {
      failure.shrunk = shrink_workload(w, report.failures.front().check, opts.check);
      if (progress) {
        *progress << "  shrunk to " << failure.shrunk.workload.to_string() << " ("
                  << failure.shrunk.attempts << " attempts)\n";
      }
    } else {
      failure.shrunk.workload = w;
      failure.shrunk.check = report.failures.front().check;
    }
    result.failures.push_back(std::move(failure));
  }
  return result;
}

Repro make_repro(const TrialFailure& failure) {
  Repro repro;
  repro.original = failure.workload;
  repro.shrunk = failure.shrunk.workload;
  repro.failures = failure.report.failures;
  repro.tool_version = "fusecu_check/1";
  return repro;
}

CheckReport replay_repro(const Repro& repro, const CheckOptions& opts) {
  return check_workload(repro.shrunk, opts);
}

}  // namespace fusecu
