#include "check/harness.hpp"

namespace fusecu {

std::uint64_t trial_seed(std::uint64_t seed, int trial) {
  // splitmix64 over (seed, trial): decorrelates adjacent trials and adjacent
  // base seeds, so --seed 1 and --seed 2 share no workload stream prefix.
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(trial) + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Workload workload_for_trial(std::uint64_t seed, int trial, const GenLimits& limits) {
  const std::uint64_t ts = trial_seed(seed, trial);
  Rng rng(ts);
  Workload w = gen_workload(rng, limits);
  w.seed = ts;
  return w;
}

HarnessResult run_conformance(const HarnessOptions& opts, std::ostream* progress) {
  HarnessResult result;
  for (int trial = 0; trial < opts.trials; ++trial) {
    Workload w = workload_for_trial(opts.seed, trial, opts.limits);
    CheckReport report = check_workload(w, opts.check);
    ++result.trials_run;
    result.checks_run += report.checks_run;
    if (report.ok()) continue;

    ++result.failed_trials;
    if (progress) {
      *progress << "FAIL trial " << trial << " (seed " << w.seed << "): " << report.summary()
                << "\n";
    }
    TrialFailure failure;
    failure.workload = w;
    failure.report = report;
    if (opts.shrink) {
      failure.shrunk = shrink_workload(w, report.failures.front().check, opts.check);
      if (progress) {
        *progress << "  shrunk to " << failure.shrunk.workload.to_string() << " ("
                  << failure.shrunk.attempts << " attempts)\n";
      }
    } else {
      failure.shrunk.workload = w;
      failure.shrunk.check = report.failures.front().check;
    }
    result.failures.push_back(std::move(failure));
    if (result.failed_trials >= opts.max_failures) {
      if (progress) {
        *progress << "stopping after " << result.failed_trials << " failing trials\n";
      }
      break;
    }
  }
  return result;
}

Repro make_repro(const TrialFailure& failure) {
  Repro repro;
  repro.original = failure.workload;
  repro.shrunk = failure.shrunk.workload;
  repro.failures = failure.report.failures;
  repro.tool_version = "fusecu_check/1";
  return repro;
}

CheckReport replay_repro(const Repro& repro, const CheckOptions& opts) {
  return check_workload(repro.shrunk, opts);
}

}  // namespace fusecu
