#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "check/gen.hpp"
#include "fusion/fusion_principles.hpp"
#include "principles/buffer_class.hpp"
#include "principles/principle_optimizer.hpp"

/// \file conformance.hpp
/// Differential conformance checks: every generated workload is pushed
/// through every independent implementation of the same quantity and the
/// answers are cross-checked.  The oracle hierarchy, weakest to strongest:
///
///   1. closed-form floors — no dataflow may beat max(ideal once-each MA,
///      the Dinh–Demmel-style tiling bound 2*MKL/sqrt(BS));
///   2. exhaustive search (src/search/exhaustive) — ground truth over the
///      full loop-order x tile grid; the principled one-shot optimum must
///      match or beat it (the paper's central claim);
///   3. the functional simulator (src/sim/tiled_executor) — executes a
///      schedule tile by tile and *counts* boundary traffic; the analytical
///      access model must agree exactly, per tensor;
///   4. the serving path (src/serve) — cached, canonicalized planning must
///      be byte-identical to direct optimization, across cache temperature
///      and transpose orientation.
///
/// All checks are sound (no false positives): each inequality is a theorem
/// of the access model, each equality a documented contract.  A failure is
/// therefore always a bug — in the optimizer, the model, the simulator, the
/// cache, or the check itself.

namespace fusecu {

/// One detected oracle disagreement.
struct CheckFailure {
  std::string check;   ///< stable identifier, e.g. "intra/opt_vs_exhaustive"
  std::string detail;  ///< human-readable mismatch description
};

/// Outcome of checking one workload.
struct CheckReport {
  std::vector<CheckFailure> failures;
  int checks_run = 0;
  std::optional<BufferClass> buffer_class;  ///< primary op's regime

  bool ok() const { return failures.empty(); }
  /// True when some failure carries the given check id.
  bool has_failure(const std::string& check) const;
  std::string summary() const;
};

/// Which slice of a trial's checks to run.  The parallel harness splits
/// every trial into a thread-safe core phase (floors, exhaustive, executor,
/// arch) and a serial serve phase: PlanService installs *process-global*
/// planner interceptors, so no other optimization may run concurrently with
/// a live service.  kAll (replay, shrinking, tests) runs both in one call —
/// core checks first, serve checks last, the same order the two-phase split
/// produces.
enum class CheckPhase {
  kAll,
  kCore,       ///< everything except the serve-path checks
  kServeOnly,  ///< only the serve-path checks
};

/// Knobs for the expensive cross-checks.
struct CheckOptions {
  bool with_executor = true;  ///< functional-simulator traffic cross-check
  bool with_serve = true;     ///< serve-path byte-identity cross-check
  bool with_arch = true;      ///< arch-constrained optimizer determinism
  CheckPhase phase = CheckPhase::kAll;
  Index array_n = 8;          ///< simulated systolic array edge
  /// Skip simulator runs whose tile-visit count exceeds this (keeps a trial
  /// in the low milliseconds; skipped runs are counted in the metrics).
  Index max_tile_visits = 2000;
  /// Test seam: mutates the principled intra result before cross-checking.
  /// Used to verify the harness *detects* injected optimizer bugs; never set
  /// in production runs.
  std::function<void(const TensorOp&, IntraOptResult&)> intra_mutator;
};

/// Sound floor for a fused pair: every external tensor at least once.
/// (The intra floor, intra_traffic_lower_bound, lives in
/// dataflow/access_model.hpp — the pruned exhaustive search shares it.)
AccessCount fused_traffic_lower_bound(const FusedPair& pair);

/// Canonical byte-comparison forms used by the serve-identity checks.
std::string intra_plan_signature(const IntraOptResult& r);
std::string fused_plan_signature(const std::optional<FusedOptResult>& r);

/// Run every applicable check for \p w.  Updates the "check/..." counters in
/// the global metrics registry (trials, per-regime coverage, failures).
CheckReport check_workload(const Workload& w, const CheckOptions& opts = {});

}  // namespace fusecu
