#include "check/chaos.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "check/harness.hpp"
#include "common/json_parse.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/plan_service.hpp"

namespace fusecu {

namespace {

/// The requests one client connection pipelines, with their expected-id
/// sequence alongside.
struct ConnScript {
  std::vector<std::string> lines;  ///< request lines, no trailing '\n'
  std::vector<std::string> ids;
};

/// One trial's workload: pool size, admission depth, adaptive-admission
/// target and per-connection scripts — a pure function of the trial seed.
struct TrialScript {
  int threads = 2;
  int queue_depth = 64;
  std::int64_t target_delay_ms = 0;  ///< CoDel target; 0 = fixed-depth only
  std::vector<ConnScript> conns;
};

TrialScript script_for(std::uint64_t seed) {
  // Decorrelate from FaultPlan::generate(seed), which consumes the same
  // seed through the same engine.
  Rng rng(seed ^ 0xc4a05f0c9d1e2b37ull);
  TrialScript script;
  script.threads = static_cast<int>(rng.uniform(1, 3));
  // Small depths force shed coverage behind in-flight work; 64 exercises
  // the steady state.
  static constexpr int kDepths[] = {2, 4, 8, 64};
  script.queue_depth = kDepths[rng.pick(4)];
  // Half the trials run with fixed-depth shedding only, the rest arm
  // CoDel-style adaptive admission with a tight target so injected pool
  // stalls and hangs can push the standing delay into brownout.
  static constexpr std::int64_t kTargets[] = {0, 0, 5, 20};
  script.target_delay_ms = kTargets[rng.pick(4)];
  const int conns = static_cast<int>(rng.uniform(2, 4));
  // Global request index: every request gets a distinct min dimension, so no
  // two requests share a transpose class or cache key.  Every response is
  // then a deterministic cache miss ("cached":false) and byte-identity
  // against the reference stream is exact regardless of arrival order.
  int g = 0;
  for (int c = 0; c < conns; ++c) {
    ConnScript conn;
    const int requests = static_cast<int>(rng.uniform(3, 12));
    for (int r = 0; r < requests; ++r, ++g) {
      const bool fused = rng.chance(0.25);
      const long long m = 4 + g;
      const long long k = 3 + static_cast<long long>(rng.uniform(0, 6));
      const long long l = m + 1 + static_cast<long long>(rng.uniform(0, 4));
      static constexpr long long kBuffers[] = {1024, 2048, 4096};
      const long long buffer_elems = kBuffers[rng.pick(3)];
      std::string id = "c" + std::to_string(c) + "-r" + std::to_string(r);
      std::string line = "{\"id\":\"" + id + "\",\"op\":\"" +
                         (fused ? "fused_pair" : "matmul") + "\",\"m\":" + std::to_string(m) +
                         ",\"k\":" + std::to_string(k) + ",\"l\":" + std::to_string(l);
      if (fused) {
        line += ",\"n\":" + std::to_string(3 + static_cast<long long>(rng.uniform(0, 3)));
      }
      line += ",\"buffer_elems\":" + std::to_string(buffer_elems) + "}";
      conn.lines.push_back(std::move(line));
      conn.ids.push_back(std::move(id));
    }
    script.conns.push_back(std::move(conn));
  }
  return script;
}

/// What one client thread observed.  Clients use the raw syscalls — the
/// injection shims are server-side only, so faults always land on the code
/// under test.
struct ClientResult {
  std::vector<std::string> lines;  ///< complete response lines received
  bool connect_failed = false;
  bool send_error = false;   ///< server cut the connection while we wrote
  bool clean_eof = false;
  bool hit_watchdog = false;
  std::string error;
};

bool send_all_raw(int fd, const std::string& data, std::string& error) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      error = std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

ClientResult run_client(std::uint16_t port, const ConnScript& script, std::int64_t watchdog_ms) {
  ClientResult result;
  std::string error;
  const int fd = connect_tcp("127.0.0.1", port, error);
  if (fd < 0) {
    result.connect_failed = true;
    result.error = "connect: " + error;
    return result;
  }
  std::string payload;
  for (const std::string& line : script.lines) {
    payload += line;
    payload += '\n';
  }
  if (!send_all_raw(fd, payload, result.error)) {
    // A send error (EPIPE/ECONNRESET) means the server tore the connection
    // down under us; keep reading — responses already in flight still count
    // toward the ordering prefix.
    result.send_error = true;
  } else {
    ::shutdown(fd, SHUT_WR);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(watchdog_ms);
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) {
      result.hit_watchdog = true;
      break;
    }
    pollfd p = {};
    p.fd = fd;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, static_cast<int>(std::min<std::int64_t>(left, 200)));
    if (pr < 0) {
      if (errno == EINTR) continue;
      result.error = std::strerror(errno);
      break;
    }
    if (pr == 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      result.clean_eof = true;
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      // ECONNRESET here is the expected shape of an injected reset.
      result.error = std::strerror(errno);
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  close_fd(fd);
  // Only complete lines count as delivered; a trailing partial line means
  // the connection died mid-response.
  std::size_t start = 0;
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    if (buffer[i] == '\n') {
      result.lines.push_back(buffer.substr(start, i - start));
      start = i + 1;
    }
  }
  return result;
}

/// Extract the "id" of a response line without a full JSON parse — the ids
/// are the harness's own escape-free "cN-rM" strings.
std::string id_of(const std::string& line) {
  const std::size_t pos = line.find("\"id\":\"");
  if (pos == std::string::npos) return {};
  const std::size_t start = pos + 6;
  const std::size_t end = line.find('"', start);
  return end == std::string::npos ? std::string() : line.substr(start, end - start);
}

bool is_ok_response(const std::string& line) {
  return line.find("\"ok\":true") != std::string::npos;
}

}  // namespace

ChaosTrialReport run_chaos_trial(std::uint64_t trial_seed, const fault::FaultPlan& plan,
                                 const ChaosOptions& opts) {
  ChaosTrialReport report;
  const TrialScript script = script_for(trial_seed);
  std::vector<ClientResult> results(script.conns.size());
  NetServer::Stats stats;
  bool drain_stuck = false;
  {
    // Armed first, disarmed last: pool tasks abandoned by a hard stop may
    // still be draining while the service shuts down.
    fault::ScopedFaultPlan armed(plan, opts.bug);
    ServeOptions serve_opts;
    serve_opts.threads = script.threads;
    PlanService service(serve_opts);
    NetServerOptions net_opts;
    net_opts.host = "127.0.0.1";
    net_opts.port = 0;
    net_opts.queue_depth = script.queue_depth;
    net_opts.reactors = opts.reactors;
    net_opts.request_timeout_ms = 0;
    // Supervision and adaptive admission are part of the surface under
    // chaos: the watchdog cancels requests hung past 2x the budget, the
    // admission controller may brown out under injected stalls.
    net_opts.watchdog_ms = opts.server_watchdog_ms;
    net_opts.target_delay_ms = script.target_delay_ms;
    // Far above the watchdog plus any accumulated injected skew (<= 3 s per
    // event), so clock jumps can never idle-close a live connection.
    net_opts.idle_timeout_ms = 600'000;
    NetServer server(service, net_opts);
    const std::uint16_t port = server.port();
    std::atomic<bool> loop_done{false};
    std::thread loop([&] {
      server.run();
      loop_done.store(true, std::memory_order_release);
    });
    std::vector<std::thread> clients;
    clients.reserve(script.conns.size());
    for (std::size_t c = 0; c < script.conns.size(); ++c) {
      clients.emplace_back([&, c] { results[c] = run_client(port, script.conns[c], opts.watchdog_ms); });
    }
    for (std::thread& t : clients) t.join();
    server.request_drain();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(opts.watchdog_ms);
    while (!loop_done.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!loop_done.load(std::memory_order_acquire)) {
      drain_stuck = true;
      server.request_drain();  // second request: hard stop
    }
    loop.join();
    stats = server.stats();
  }

  report.checks_run = 6;

  // 1. Graceful drain: the loop returned inside the watchdog and closed
  // every connection it accepted.
  if (drain_stuck) {
    report.violations.push_back(
        {"net/drain_stuck", "request_drain() did not complete within the watchdog"});
  }
  if (stats.accepted != stats.closed) {
    report.violations.push_back(
        {"net/drain_leak", "accepted " + std::to_string(stats.accepted) + " connections, closed " +
                               std::to_string(stats.closed)});
  }

  // 2. Per-connection response order and id preservation (sheds included):
  // what each client read must be exactly a prefix of its request ids.
  int cut_conns = 0;
  for (std::size_t c = 0; c < script.conns.size(); ++c) {
    const ConnScript& conn = script.conns[c];
    const ClientResult& got = results[c];
    const std::string tag = "conn " + std::to_string(c);
    if (got.connect_failed) {
      report.violations.push_back({"net/connect_failed", tag + ": " + got.error});
      continue;
    }
    if (got.hit_watchdog) {
      report.violations.push_back(
          {"net/client_stuck", tag + " hit the read watchdog before EOF"});
    }
    if (got.lines.size() > conn.ids.size()) {
      report.violations.push_back(
          {"net/extra_response", tag + " received " + std::to_string(got.lines.size()) +
                                     " responses for " + std::to_string(conn.ids.size()) +
                                     " requests"});
    }
    const std::size_t prefix = std::min(got.lines.size(), conn.ids.size());
    for (std::size_t i = 0; i < prefix; ++i) {
      const std::string id = id_of(got.lines[i]);
      if (id != conn.ids[i]) {
        report.violations.push_back(
            {"net/response_order", tag + " position " + std::to_string(i) + ": expected id \"" +
                                       conn.ids[i] + "\", got \"" + id + "\""});
        break;  // every later slot is off by the same shift; one report
      }
    }
    if (got.lines.size() < conn.ids.size()) ++cut_conns;
  }

  // 3. No lost responses: a connection may come up short only when the plan
  // schedules a connection-killing fault, each of which cuts at most one
  // connection.
  if (cut_conns > plan.reset_events()) {
    report.violations.push_back(
        {"net/lost_response", std::to_string(cut_conns) + " connections missing responses, but the "
                                  "plan schedules only " +
                                  std::to_string(plan.reset_events()) +
                                  " connection-killing faults"});
  }

  // 4 + 5. Byte identity and overload shape.  The reference runs on a fresh
  // PlanService *after* teardown — at most one service may be alive (it
  // installs process-global planner interceptors) and the injector is
  // disarmed by now, so the reference stream is the clean stdin-path output.
  std::map<std::string, std::string> expected;
  {
    ServeOptions ref_opts;
    ref_opts.threads = 1;
    PlanService reference(ref_opts);
    std::stringstream in, out;
    for (const ConnScript& conn : script.conns) {
      for (const std::string& line : conn.lines) in << line << '\n';
    }
    reference.serve_stream(in, out, "<chaos-ref>");
    std::string line;
    while (std::getline(out, line)) expected[id_of(line)] = line;
  }
  for (std::size_t c = 0; c < script.conns.size(); ++c) {
    const std::string tag = "conn " + std::to_string(c);
    for (const std::string& line : results[c].lines) {
      const std::string id = id_of(line);
      if (is_ok_response(line)) {
        const auto it = expected.find(id);
        if (it == expected.end()) {
          report.violations.push_back(
              {"net/byte_identity", tag + " response \"" + id + "\" has no reference line"});
        } else if (it->second != line) {
          report.violations.push_back(
              {"net/byte_identity", tag + " response \"" + id +
                                        "\" differs from the serve_stream reference: got " + line +
                                        ", want " + it->second});
        }
      } else if (line.find("overloaded") == std::string::npos &&
                 line.find("timed_out") == std::string::npos) {
        report.violations.push_back(
            {"net/unexpected_error",
             tag + " non-ok response is neither an overload shed nor a watchdog cancellation: " +
                 line});
      }
    }
  }

  // 6. Watchdog & admission accounting.  (a) When nothing cut a connection
  // short, every shed and every watchdog cancellation the server counted
  // must have reached a client as exactly one in-order response — together
  // with checks 2/3 this proves brownout never sheds an already-admitted
  // request (a revoked admission would surface as an extra or missing
  // line and skew the counters).  (b) The watchdog fires deterministically
  // per plan: if a worker hang fired, nothing in the plan can kill the hung
  // request's connection or stall its reactor, and every hang in the plan
  // outlasts the 2x hang-guard deadline, then at least one request must
  // have been cancelled.
  std::int64_t client_shed = 0;
  std::int64_t client_timed_out = 0;
  for (const ClientResult& got : results) {
    for (const std::string& line : got.lines) {
      if (is_ok_response(line)) continue;
      if (line.find("overloaded") != std::string::npos) ++client_shed;
      if (line.find("timed_out") != std::string::npos) ++client_timed_out;
    }
  }
  if (!drain_stuck && cut_conns == 0 && plan.reset_events() == 0) {
    if (client_shed != stats.shed) {
      report.violations.push_back(
          {"net/shed_accounting", "clients read " + std::to_string(client_shed) +
                                      " overload sheds but the server counted " +
                                      std::to_string(stats.shed)});
    }
    if (client_timed_out != stats.timed_out) {
      report.violations.push_back(
          {"net/cancel_accounting", "clients read " + std::to_string(client_timed_out) +
                                        " watchdog cancellations but the server counted " +
                                        std::to_string(stats.timed_out)});
    }
  }
  if (opts.server_watchdog_ms > 0 && plan.reset_events() == 0) {
    bool has_hang = false;
    bool all_hangs_cross_guard = true;
    bool has_loop_stall = false;
    const std::uint64_t guard_us =
        static_cast<std::uint64_t>(2 * opts.server_watchdog_ms) * 1000;
    for (const fault::FaultEvent& e : plan.events) {
      if (e.kind == fault::Kind::kWorkerHang) {
        has_hang = true;
        if (e.arg < guard_us) all_hangs_cross_guard = false;
      }
      if (e.kind == fault::Kind::kReactorStall) has_loop_stall = true;
    }
    if (has_hang && all_hangs_cross_guard && !has_loop_stall &&
        fault::fired_count(fault::Kind::kWorkerHang) > 0 && stats.timed_out == 0) {
      report.violations.push_back(
          {"net/watchdog_missed",
           "a worker hang of >= " + std::to_string(guard_us) +
               " us fired on an uncut connection but no request was cancelled by the watchdog"});
    }
  }
  return report;
}

ChaosResult run_chaos(const ChaosOptions& opts, std::ostream* progress) {
  ChaosResult result;
  Counter& trials_counter = MetricsRegistry::global().counter("chaos/trials");
  Counter& violations_counter = MetricsRegistry::global().counter("chaos/violations");
  for (int trial = 0; trial < opts.trials; ++trial) {
    const std::uint64_t seed = trial_seed(opts.seed, trial);
    const fault::FaultPlan plan = fault::FaultPlan::generate(seed, opts.max_events);
    const ChaosTrialReport report = run_chaos_trial(seed, plan, opts);
    trials_counter.add();
    // Fired counters survive disarm until the next arm: publish per-kind
    // coverage.  Which events fire depends on thread scheduling, so this is
    // metrics-only — the printed report carries plan-derived facts only and
    // stays byte-identical across runs.
    for (int k = 0; k < fault::kNumKinds; ++k) {
      const auto kind = static_cast<fault::Kind>(k);
      if (const std::int64_t fired = fault::fired_count(kind)) {
        MetricsRegistry::global()
            .counter(std::string("chaos/fired/") + fault::to_string(kind))
            .add(fired);
      }
    }
    ++result.trials_run;
    result.checks_run += report.checks_run;
    if (report.ok()) {
      if (progress) {
        *progress << "ok   chaos trial " << trial << " (seed " << seed << ", "
                  << plan.events.size() << " fault events)\n";
      }
      continue;
    }
    ++result.failed_trials;
    violations_counter.add(static_cast<std::int64_t>(report.violations.size()));
    log_warn("chaos", "trial failed",
             {{"trial", std::to_string(trial)},
              {"seed", std::to_string(seed)},
              {"events", std::to_string(plan.events.size())},
              {"first_invariant", report.violations.front().invariant}});
    if (progress) {
      *progress << "FAIL chaos trial " << trial << " (seed " << seed << ", "
                << plan.events.size() << " fault events): "
                << report.violations.front().invariant << ": "
                << report.violations.front().detail << "\n";
    }
    if (static_cast<int>(result.failures.size()) >= opts.max_failures) continue;
    ChaosFailure failure;
    failure.trial = trial;
    failure.seed = seed;
    failure.reactors = opts.reactors;
    failure.plan = plan;
    failure.violations = report.violations;
    if (opts.shrink) {
      failure.shrunk =
          shrink_fault_plan(seed, plan, report.violations.front().invariant, opts);
      if (progress) {
        *progress << "  shrunk to " << failure.shrunk.plan.events.size() << " fault events ("
                  << failure.shrunk.attempts << " attempts)\n";
      }
    } else {
      failure.shrunk.plan = plan;
      failure.shrunk.invariant = report.violations.front().invariant;
    }
    result.failures.push_back(std::move(failure));
  }
  return result;
}

ChaosShrinkResult shrink_fault_plan(std::uint64_t trial_seed, const fault::FaultPlan& failing,
                                    const std::string& invariant, const ChaosOptions& opts,
                                    int max_passes) {
  ChaosShrinkResult result;
  result.plan = failing;
  result.invariant = invariant;
  const auto still_fails = [&](const fault::FaultPlan& candidate) {
    ++result.attempts;
    const ChaosTrialReport report = run_chaos_trial(trial_seed, candidate, opts);
    for (const ChaosViolation& v : report.violations) {
      if (invariant.empty() || v.invariant == invariant) return true;
    }
    return false;
  };
  // The empty schedule first: when the defect is in the server rather than
  // fault-triggered (an armed TestBug, a real regression on the clean
  // path), this single probe is already the fixpoint.
  if (!result.plan.events.empty()) {
    fault::FaultPlan candidate = result.plan;
    candidate.events.clear();
    if (still_fails(candidate)) {
      result.plan = std::move(candidate);
      ++result.accepted;
    }
  }
  for (int pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    // Drop each event (greedy first-accept, as in shrink_workload).
    for (std::size_t i = 0; i < result.plan.events.size();) {
      fault::FaultPlan candidate = result.plan;
      candidate.events.erase(candidate.events.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        result.plan = std::move(candidate);
        ++result.accepted;
        changed = true;
      } else {
        ++i;
      }
    }
    // Halve triggers and magnitudes.  `arg` floors at 1 — an arg of 0 turns
    // a cap/skew/stall event into a no-op, which would shrink *past* the
    // failure instead of toward it.
    for (std::size_t i = 0; i < result.plan.events.size(); ++i) {
      for (const bool shrink_arg : {false, true}) {
        fault::FaultPlan candidate = result.plan;
        std::uint64_t& value = shrink_arg ? candidate.events[i].arg : candidate.events[i].at;
        if (value <= (shrink_arg ? 1u : 0u)) continue;
        value /= 2;
        if (still_fails(candidate)) {
          result.plan = std::move(candidate);
          ++result.accepted;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return result;
}

std::string chaos_repro_to_json(const ChaosFailure& failure) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "fusecu_chaos_repro/1");
  w.field("tool", "fusecu_check --chaos-trials");
  w.field("trial", failure.trial);
  // Seeds are full-width uint64: serialized as strings, like the fault-plan
  // schema, so a double-typed JSON number can't round them.
  w.field("seed", std::to_string(failure.seed));
  w.field("reactors", failure.reactors);
  w.key("violations");
  w.begin_array();
  for (const ChaosViolation& v : failure.violations) {
    w.begin_object();
    w.field("invariant", v.invariant);
    w.field("detail", v.detail);
    w.end_object();
  }
  w.end_array();
  w.key("plan");
  w.raw_value(failure.plan.to_json());
  w.key("shrunk_plan");
  w.raw_value(failure.shrunk.plan.to_json());
  w.field("shrunk_invariant", failure.shrunk.invariant);
  w.end_object();
  return os.str();
}

ChaosFailure chaos_repro_from_json(const std::string& text, const std::string& source) {
  const JsonValuePtr doc = parse_json(text, source);
  const JsonValuePtr schema = doc->get("schema");
  if (!schema || !schema->is_string() || schema->as_string() != "fusecu_chaos_repro/1") {
    throw std::invalid_argument(source + ": expected schema \"fusecu_chaos_repro/1\"");
  }
  ChaosFailure failure;
  if (const JsonValuePtr trial = doc->get("trial")) {
    failure.trial = static_cast<int>(trial->as_number());
  }
  if (const JsonValuePtr seed = doc->get("seed")) {
    failure.seed = seed->is_string() ? std::stoull(seed->as_string())
                                    : static_cast<std::uint64_t>(seed->as_number());
  }
  if (const JsonValuePtr reactors = doc->get("reactors")) {
    failure.reactors = static_cast<int>(reactors->as_number());
  }
  if (const JsonValuePtr plan = doc->get("plan")) {
    failure.plan = fault::FaultPlan::from_json_value(*plan);
  }
  if (const JsonValuePtr shrunk = doc->get("shrunk_plan")) {
    failure.shrunk.plan = fault::FaultPlan::from_json_value(*shrunk);
  }
  if (const JsonValuePtr invariant = doc->get("shrunk_invariant")) {
    failure.shrunk.invariant = invariant->as_string();
  }
  if (const JsonValuePtr violations = doc->get("violations")) {
    for (const JsonValuePtr& v : violations->as_array()) {
      ChaosViolation violation;
      if (const JsonValuePtr inv = v->get("invariant")) violation.invariant = inv->as_string();
      if (const JsonValuePtr detail = v->get("detail")) violation.detail = detail->as_string();
      failure.violations.push_back(std::move(violation));
    }
  }
  return failure;
}

ChaosTrialReport replay_chaos_repro(const ChaosFailure& failure, const ChaosOptions& opts) {
  // The shrunk plan is the artifact's point; an empty shrunk schedule with
  // no preserved invariant means shrinking never ran — fall back to the
  // original plan.
  const bool have_shrunk =
      !failure.shrunk.invariant.empty() || !failure.shrunk.plan.events.empty();
  // Replay with the reactor count the failure was found at, not the
  // caller's default — sharding changes scheduling enough to matter.
  ChaosOptions replay_opts = opts;
  replay_opts.reactors = failure.reactors;
  return run_chaos_trial(failure.seed, have_shrunk ? failure.shrunk.plan : failure.plan,
                         replay_opts);
}

}  // namespace fusecu
