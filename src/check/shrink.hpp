#pragma once

#include <string>

#include "check/conformance.hpp"
#include "check/gen.hpp"

/// \file shrink.hpp
/// Greedy test-case minimization for failing conformance workloads.
///
/// A randomly generated counterexample is rarely the smallest one: the same
/// optimizer bug that fires at (m=77, k=43, l=96, bs=1531) usually also
/// fires at (m=2, k=1, l=4, bs=3), and the small form is what a human debugs.
/// The shrinker repeatedly applies size-reducing transformations — set a
/// dimension to 1, halve it, decrement it; shrink the buffer; drop trailing
/// chain ops; clear activations — keeping a candidate exactly when re-running
/// the conformance checker still reports the *same* check id.  Greedy
/// first-accept per transformation, iterated to a fixpoint, is the classic
/// QuickCheck/delta-debugging strategy: not globally minimal, but local
/// minima in practice land within a few elements of minimal.

namespace fusecu {

/// Outcome of shrinking one failing workload.
struct ShrinkResult {
  Workload workload;        ///< smallest reproducer found
  std::string check;        ///< the check id the shrink preserved
  int attempts = 0;         ///< candidate workloads re-checked
  int accepted = 0;         ///< transformations that kept the failure
};

/// Minimize \p failing, preserving a failure of \p check (when empty: any
/// failure).  \p opts must match the options under which the failure was
/// found, or the predicate may not reproduce at all — in that case the
/// original workload is returned unchanged with attempts > 0, accepted == 0.
ShrinkResult shrink_workload(const Workload& failing, const std::string& check,
                             const CheckOptions& opts, int max_passes = 8);

}  // namespace fusecu
