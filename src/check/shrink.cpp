#include "check/shrink.hpp"

#include <algorithm>
#include <functional>
#include <vector>

namespace fusecu {

namespace {

/// Does the candidate still fail the targeted check (or any check)?
bool reproduces(const Workload& w, const std::string& check, const CheckOptions& opts) {
  CheckReport report = check_workload(w, opts);
  if (check.empty()) return !report.ok();
  return report.has_failure(check);
}

/// Smaller candidate values for one scalar, strongest reduction first.
std::vector<Index> scalar_candidates(Index v, Index floor) {
  std::vector<Index> out;
  if (v > floor) out.push_back(floor);
  if (v / 2 > floor) out.push_back(v / 2);
  if (v - 1 > floor) out.push_back(v - 1);
  return out;
}

/// Try shrinking one scalar field in place; returns true when a smaller
/// value kept the failure alive.
bool shrink_scalar(Workload& w, Index& field, Index floor, const std::string& check,
                   const CheckOptions& opts, ShrinkResult& result) {
  bool changed = false;
  for (Index candidate : scalar_candidates(field, floor)) {
    const Index saved = field;
    field = candidate;
    ++result.attempts;
    if (reproduces(w, check, opts)) {
      ++result.accepted;
      changed = true;
      break;  // greedy: keep the strongest reduction that still fails
    }
    field = saved;
  }
  return changed;
}

bool shrink_chain_structure(Workload& w, const std::string& check, const CheckOptions& opts,
                            ShrinkResult& result) {
  bool changed = false;
  // Drop trailing matmuls while at least one op remains.
  while (w.chain.num_ops() > 1) {
    Workload candidate = w;
    candidate.chain.dims.pop_back();
    if (!candidate.chain.act_after.empty()) candidate.chain.act_after.pop_back();
    ++result.attempts;
    if (!reproduces(candidate, check, opts)) break;
    ++result.accepted;
    w = candidate;
    changed = true;
  }
  // Clear activations wholesale, then one by one.
  if (std::any_of(w.chain.act_after.begin(), w.chain.act_after.end(),
                  [](bool b) { return b; })) {
    Workload candidate = w;
    std::fill(candidate.chain.act_after.begin(), candidate.chain.act_after.end(), false);
    ++result.attempts;
    if (reproduces(candidate, check, opts)) {
      ++result.accepted;
      w = candidate;
      changed = true;
    } else {
      for (std::size_t i = 0; i < w.chain.act_after.size(); ++i) {
        if (!w.chain.act_after[i]) continue;
        candidate = w;
        candidate.chain.act_after[i] = false;
        ++result.attempts;
        if (reproduces(candidate, check, opts)) {
          ++result.accepted;
          w = candidate;
          changed = true;
        }
      }
    }
  }
  return changed;
}

}  // namespace

ShrinkResult shrink_workload(const Workload& failing, const std::string& check,
                             const CheckOptions& opts, int max_passes) {
  ShrinkResult result;
  result.workload = failing;
  result.check = check;

  // Confirm the failure reproduces at all before spending passes on it.
  ++result.attempts;
  if (!reproduces(result.workload, check, opts)) return result;

  for (int pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    Workload& w = result.workload;
    switch (w.kind) {
      case WorkloadKind::kIntra:
        changed |= shrink_scalar(w, w.m, 1, check, opts, result);
        changed |= shrink_scalar(w, w.k, 1, check, opts, result);
        changed |= shrink_scalar(w, w.l, 1, check, opts, result);
        break;
      case WorkloadKind::kFused:
        changed |= shrink_scalar(w, w.m, 1, check, opts, result);
        changed |= shrink_scalar(w, w.k, 1, check, opts, result);
        changed |= shrink_scalar(w, w.l, 1, check, opts, result);
        changed |= shrink_scalar(w, w.n, 1, check, opts, result);
        break;
      case WorkloadKind::kChain: {
        changed |= shrink_chain_structure(w, check, opts, result);
        changed |= shrink_scalar(w, w.chain.m, 1, check, opts, result);
        for (Index& d : w.chain.dims) {
          changed |= shrink_scalar(w, d, 1, check, opts, result);
        }
        break;
      }
    }
    changed |= shrink_scalar(w, w.bs, 3, check, opts, result);
    if (!changed) break;  // fixpoint
  }
  return result;
}

}  // namespace fusecu
