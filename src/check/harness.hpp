#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "check/conformance.hpp"
#include "check/gen.hpp"
#include "check/repro.hpp"
#include "check/shrink.hpp"

/// \file harness.hpp
/// The conformance trial loop behind `fusecu_check`: derive a workload per
/// trial from (base seed, trial index), run every oracle cross-check, and on
/// failure shrink the counterexample to its minimal form.
///
/// Seed-reporting convention: every workload carries the *derived* per-trial
/// seed (a splitmix64 mix of base seed and trial index), and that seed alone
/// regenerates the workload — `trial_seed()` is a pure function, so a single
/// failing trial replays without re-running the preceding ones.
///
/// Parallelism: with jobs > 1 the trials' core phases (CheckPhase::kCore)
/// fan out over a serve ThreadPool; the serve phases (which install
/// process-global planner interceptors) then run serially, and results
/// merge back in trial order.  Every trial always runs to completion and
/// the split is applied for every jobs value, so the report, the printed
/// coverage counters and any repro artifact are byte-identical no matter
/// how many workers ran.

namespace fusecu {

/// Configuration of one conformance run.
struct HarnessOptions {
  std::uint64_t seed = 1;  ///< base seed; trial i uses trial_seed(seed, i)
  int trials = 100;
  GenLimits limits;
  CheckOptions check;
  bool shrink = true;      ///< minimize failing workloads
  /// Cap on stored (and shrunk) failures; trials beyond it still run and are
  /// still counted, so the aggregate result does not depend on where the
  /// cap fell.
  int max_failures = 8;
  int jobs = 1;            ///< worker threads for the trials' core phases
};

/// One failing trial with its minimized form.
struct TrialFailure {
  Workload workload;
  CheckReport report;
  ShrinkResult shrunk;
};

/// Aggregate outcome of a run (per-regime coverage lives in the global
/// metrics registry under check/...).
struct HarnessResult {
  int trials_run = 0;
  int failed_trials = 0;
  std::int64_t checks_run = 0;
  std::vector<TrialFailure> failures;

  bool ok() const { return failed_trials == 0; }
};

/// Pure derived seed for trial \p trial of base \p seed (splitmix64 mix).
std::uint64_t trial_seed(std::uint64_t seed, int trial);

/// Regenerate the workload of one (seed, trial) pair without checking it.
Workload workload_for_trial(std::uint64_t seed, int trial, const GenLimits& limits = {});

/// Run \p opts.trials conformance trials.  When \p progress is non-null,
/// failures are reported there as they happen.
HarnessResult run_conformance(const HarnessOptions& opts, std::ostream* progress = nullptr);

/// Build the repro artifact for one failing trial.
Repro make_repro(const TrialFailure& failure);

/// Re-run the (shrunk, falling back to original) workload of a repro.
CheckReport replay_repro(const Repro& repro, const CheckOptions& opts = {});

}  // namespace fusecu
