#include "dataflow/access_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace fusecu {

int AccessBreakdown::non_redundant_tensors(const TensorOp& op) const {
  FCU_CHECK(per_tensor.size() == static_cast<std::size_t>(op.num_tensors()),
            "breakdown does not match op");
  int count = 0;
  for (int t = 0; t < op.num_tensors(); ++t) {
    if (per_tensor[static_cast<std::size_t>(t)] == op.tensor_size(t)) ++count;
  }
  return count;
}

AccessBreakdown evaluate_access(const TensorOp& op, const Dataflow& df) {
  validate_dataflow(op, df);
  const int n = op.num_dims();

  AccessBreakdown out;
  out.per_tensor.resize(static_cast<std::size_t>(op.num_tensors()));
  out.buffer_footprint = df.buffer_footprint(op);

  for (int t = 0; t < op.num_tensors(); ++t) {
    AccessCount accesses = op.tensor_size(t);
    // Walk loops outermost -> innermost; an outer loop d (not indexing the
    // tensor) multiplies accesses iff some effective loop of the tensor's
    // dimension set sits inside it.
    for (int pos = 0; pos < n; ++pos) {
      int d = df.loop_order[static_cast<std::size_t>(pos)];
      if (op.tensor_has_dim(t, d)) continue;
      if (df.trips(op, d) <= 1) continue;
      bool tensor_loop_inside = false;
      for (int inner = pos + 1; inner < n; ++inner) {
        int di = df.loop_order[static_cast<std::size_t>(inner)];
        if (op.tensor_has_dim(t, di) && df.trips(op, di) > 1) {
          tensor_loop_inside = true;
          break;
        }
      }
      if (tensor_loop_inside) accesses *= df.trips(op, d);
    }
    out.per_tensor[static_cast<std::size_t>(t)] = accesses;
    out.total += accesses;
  }
  return out;
}

bool fits_buffer(const TensorOp& op, const Dataflow& df, BufferSize buffer_size) {
  return df.buffer_footprint(op) <= buffer_size;
}

NraKind classify_nra(const TensorOp& op, const Dataflow& df) {
  const int count = evaluate_access(op, df).non_redundant_tensors(op);
  switch (count) {
    case 1:
      return NraKind::kSingle;
    case 2:
      return NraKind::kTwo;
    case 3:
      return NraKind::kThree;
    default:
      // A nest where *no* tensor achieves single access (possible under
      // pathological orders, e.g. the stationary dims interleaved with
      // redundant loops) is strictly dominated; report it as Single so
      // callers can still rank it, but it never wins under optimization.
      FCU_CHECK(count == 0, "MM has exactly three tensors");
      return NraKind::kSingle;
  }
}

int stationary_tensor(const TensorOp& op, const Dataflow& df) {
  AccessBreakdown b = evaluate_access(op, df);
  if (b.non_redundant_tensors(op) != 1) return -1;
  for (int t = 0; t < op.num_tensors(); ++t) {
    if (b.per_tensor[static_cast<std::size_t>(t)] == op.tensor_size(t)) return t;
  }
  return -1;
}

AccessCount intra_traffic_lower_bound(const TensorOp& op, BufferSize bs) {
  AccessCount floor = op.ideal_min_access();
  if (op.num_dims() == 3 && bs >= 1) {
    // Dinh-Demmel projective-loop bound, provable for every dataflow of the
    // access model: some tensor tile of area t1*t2 <= BS bounds two of the
    // redundancy terms, and AM-GM gives MA >= 2*MKL/sqrt(t1*t2).  Rounded
    // down one element to stay sound under floating-point evaluation.
    const double mkl = static_cast<double>(op.macs());
    const AccessCount dd =
        static_cast<AccessCount>(2.0 * mkl / std::sqrt(static_cast<double>(bs))) - 1;
    floor = std::max(floor, dd);
  }
  return floor;
}

const char* to_string(NraKind kind) {
  switch (kind) {
    case NraKind::kSingle:
      return "Single-NRA";
    case NraKind::kTwo:
      return "Two-NRA";
    case NraKind::kThree:
      return "Three-NRA";
  }
  return "?";
}

}  // namespace fusecu
