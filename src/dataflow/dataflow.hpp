#pragma once

#include <string>
#include <vector>

#include "tensor/tensor_op.hpp"

/// \file dataflow.hpp
/// Intra-operator dataflow = tiling + scheduling (Sec. II-A).
///
/// * Tiling: one tile size per loop dimension, 1 <= T_d <= D_d.  T_d == D_d
///   means the dimension is *untiled* ("unrolled" in the paper) — its tile
///   loop has a single iteration and effectively disappears from the nest.
/// * Scheduling: the order of the tile loops, outermost first.  The paper's
///   "stationary" tensors fall out of the order: a tensor is stationary when
///   no loop outside its own dimensions re-iterates its tile (see
///   access_model.hpp).
///
/// Mapping (buffer <-> PE) is modeled separately in src/sim; this struct
/// covers the memory <-> buffer level that Principles 1-3 optimize.

namespace fusecu {

struct Dataflow {
  /// Permutation of [0, num_dims) — dimension indices, outermost loop first.
  std::vector<int> loop_order;
  /// Tile size per dimension, indexed by dimension (not loop position).
  std::vector<Index> tile;

  /// Trip count of dimension \p d's tile loop: ceil(D_d / T_d).
  Index trips(const TensorOp& op, int d) const;

  /// True when dimension \p d is untiled (tile covers the whole extent).
  bool untiled(const TensorOp& op, int d) const;

  /// Buffer footprint: sum over tensors of the tile element counts
  /// (the paper's Eq. 2 / Eq. 4 left-hand side).
  Index buffer_footprint(const TensorOp& op) const;

  /// Tile element count of a single tensor.
  Index tensor_tile_size(const TensorOp& op, int t) const;

  /// e.g. "order=[M,L,K] tiles{M:512,K:768,L:1}" using the op's dim names.
  std::string to_string(const TensorOp& op) const;
};

/// Throws std::invalid_argument unless \p df is a valid dataflow for \p op:
/// loop_order is a permutation of the op's dimensions and every tile size is
/// within [1, extent].
void validate_dataflow(const TensorOp& op, const Dataflow& df);

/// Build a dataflow from dimension *names*, e.g.
///   make_dataflow(op, {"M", "L", "K"}, {{"M", 512}, {"K", 768}, {"L", 1}}).
/// Unlisted tile sizes default to 1.
Dataflow make_dataflow(const TensorOp& op, const std::vector<std::string>& order,
                       const std::vector<std::pair<std::string, Index>>& tiles);

}  // namespace fusecu
