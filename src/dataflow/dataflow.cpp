#include "dataflow/dataflow.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace fusecu {

Index Dataflow::trips(const TensorOp& op, int d) const {
  return ceil_div(op.extent(d), tile.at(static_cast<std::size_t>(d)));
}

bool Dataflow::untiled(const TensorOp& op, int d) const {
  return tile.at(static_cast<std::size_t>(d)) >= op.extent(d);
}

Index Dataflow::tensor_tile_size(const TensorOp& op, int t) const {
  Index size = 1;
  for (int d : op.tensor(t).dims) {
    size *= std::min(tile.at(static_cast<std::size_t>(d)), op.extent(d));
  }
  return size;
}

Index Dataflow::buffer_footprint(const TensorOp& op) const {
  Index total = 0;
  for (int t = 0; t < op.num_tensors(); ++t) total += tensor_tile_size(op, t);
  return total;
}

std::string Dataflow::to_string(const TensorOp& op) const {
  std::ostringstream os;
  os << "order=[";
  for (std::size_t i = 0; i < loop_order.size(); ++i) {
    os << (i ? "," : "") << op.dim(loop_order[i]).name;
  }
  os << "] tiles{";
  for (int d = 0; d < op.num_dims(); ++d) {
    os << (d ? "," : "") << op.dim(d).name << ":" << tile[static_cast<std::size_t>(d)];
  }
  os << "}";
  return os.str();
}

void validate_dataflow(const TensorOp& op, const Dataflow& df) {
  const auto n = static_cast<std::size_t>(op.num_dims());
  FCU_CHECK(df.loop_order.size() == n, "loop order arity must match op dims");
  FCU_CHECK(df.tile.size() == n, "tile arity must match op dims");
  std::vector<bool> seen(n, false);
  for (int d : df.loop_order) {
    FCU_CHECK(d >= 0 && d < op.num_dims(), "loop order references unknown dim");
    FCU_CHECK(!seen[static_cast<std::size_t>(d)], "loop order repeats a dim");
    seen[static_cast<std::size_t>(d)] = true;
  }
  for (int d = 0; d < op.num_dims(); ++d) {
    Index t = df.tile[static_cast<std::size_t>(d)];
    FCU_CHECK(t >= 1 && t <= op.extent(d),
              "tile size out of range for dim " + op.dim(d).name);
  }
}

Dataflow make_dataflow(const TensorOp& op, const std::vector<std::string>& order,
                       const std::vector<std::pair<std::string, Index>>& tiles) {
  Dataflow df;
  df.tile.assign(static_cast<std::size_t>(op.num_dims()), 1);
  for (const std::string& name : order) {
    int d = op.find_dim(name);
    FCU_CHECK(d >= 0, "unknown dimension name: " + name);
    df.loop_order.push_back(d);
  }
  for (const auto& [name, size] : tiles) {
    int d = op.find_dim(name);
    FCU_CHECK(d >= 0, "unknown dimension name: " + name);
    df.tile[static_cast<std::size_t>(d)] = size;
  }
  validate_dataflow(op, df);
  return df;
}

}  // namespace fusecu
