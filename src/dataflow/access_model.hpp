#pragma once

#include <string>
#include <vector>

#include "dataflow/dataflow.hpp"

/// \file access_model.hpp
/// Reuse-based memory-access (MA) evaluator — the shared cost model.
///
/// For a loop nest ordered outermost-first with per-dimension tile sizes, a
/// tensor indexed by dimension set S is re-fetched on every iteration of any
/// loop d NOT in S that has at least one *effective* (trip count > 1) loop
/// from S nested inside it — because that inner loop changes the tensor's
/// tile within d's body, destroying reuse.  Hence
///
///   MA(tensor) = |tensor| * prod{ trips(d) : d not in S,
///                                 exists d' in S inner to d, trips(d') > 1 }
///
/// Untiled dimensions (T = D) have trip count 1 and drop out of the nest,
/// which is exactly the paper's "removing the loop over dimension K" in the
/// Two-NRA derivation.  The output tensor is charged identically: when its
/// reduction loop is outside its reuse scope, partial sums spill and each
/// visit counts — matching the accounting of Eq. 1 and Eq. 3.
///
/// This one function scores every dataflow in the design space; the
/// principle optimizer, the DAT-like search baseline, and the architecture
/// evaluator all call it, so comparisons between them are apples-to-apples.

namespace fusecu {

/// Per-tensor and total access counts for one (op, dataflow) pair.
struct AccessBreakdown {
  std::vector<AccessCount> per_tensor;  ///< indexed like op.tensors()
  AccessCount total = 0;
  Index buffer_footprint = 0;  ///< elements the dataflow keeps live

  /// How many tensors are accessed exactly once (|accesses| == |tensor|)?
  /// This is the paper's NRA count: 1 -> Single-NRA, 2 -> Two-NRA,
  /// 3 -> Three-NRA.
  int non_redundant_tensors(const TensorOp& op) const;
};

/// Evaluate memory accesses for \p df on \p op.  Validates the dataflow.
AccessBreakdown evaluate_access(const TensorOp& op, const Dataflow& df);

/// True when the dataflow's live tiles fit into \p buffer_size elements.
bool fits_buffer(const TensorOp& op, const Dataflow& df, BufferSize buffer_size);

/// The paper's NRA regimes (Sec. III-A).
enum class NraKind {
  kSingle = 1,  ///< one tensor non-redundant (the stationary one)
  kTwo = 2,     ///< two tensors non-redundant
  kThree = 3,   ///< all tensors accessed exactly once: the lower bound
};

/// Classify a dataflow by its realized non-redundant-access count.
NraKind classify_nra(const TensorOp& op, const Dataflow& df);

/// Sound communication floor for (op, bs): no valid dataflow in the access
/// model can move fewer elements.  max(ideal once-each access, the
/// projective-loop tiling bound 2*M*K*L/sqrt(BS) of Dinh & Demmel).  Both
/// the conformance floor checks and the pruned exhaustive search's
/// early-exit use this bound — it is *admissible*: never above the true
/// optimum, so stopping at it cannot skip a better plan.
AccessCount intra_traffic_lower_bound(const TensorOp& op, BufferSize bs);

/// Index of the stationary tensor: accessed exactly once while at least one
/// other tensor is redundant; -1 when no tensor qualifies (e.g. Three-NRA
/// where everything is accessed once, or degenerate nests).
int stationary_tensor(const TensorOp& op, const Dataflow& df);

const char* to_string(NraKind kind);

}  // namespace fusecu
