#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fusion/fusion_principles.hpp"
#include "principles/principle_optimizer.hpp"
#include "tensor/tensor_op.hpp"

/// \file plan_request.hpp
/// Wire format of the planning service: one JSON object per line (JSONL).
///
/// Request line:
///
///   {"id":"r1","op":"matmul","m":1024,"k":768,"l":768,
///    "buffer":"512KB","elem_bytes":2}
///   {"id":"r2","op":"matmul","m":128,"k":64,"l":256,"batch":8,
///    "shared_weight":true,"buffer_elems":65536}
///   {"id":"r3","op":"fused_pair","m":512,"k":512,"l":512,"n":512,
///    "buffer_elems":262144}
///
/// `buffer` takes a byte size with KB/MB suffixes and is divided by
/// `elem_bytes` (default 2, the bf16 datapath); `buffer_elems` gives the
/// element count directly and wins when both are present.  Batched matmuls
/// must be shared-weight (the projection case) — they fold exactly into the
/// 3-dim view the principles optimize; per-slice weights are rejected.
///
/// Response line (see write_json on PlanResponse):
///
///   {"id":"r1","ok":true,"kind":"matmul","rule":"P2(untile=K)","nra":2,
///    "buffer_class":"Medium","total_access":2359296,
///    "per_tensor":[786432,589824,786432],"buffer_footprint":65536,
///    "loop_order":[0,1,2],"tile":[64,768,64],"cached":false}
///
/// Errors keep the request id and come back as {"id":...,"ok":false,
/// "error":"..."} — a malformed line still produces a response line, so the
/// stream stays 1:1 with the input.

namespace fusecu {

class JsonValue;

/// A parsed planning request.
struct PlanRequest {
  enum class Kind { kMatmul, kFusedPair };

  std::string id;
  Kind kind = Kind::kMatmul;
  Index m = 0, k = 0, l = 0;
  Index n = 0;      ///< fused_pair only
  Index batch = 1;  ///< matmul only; folds into M
  BufferSize buffer_elems = 0;

  /// The operator this request describes (batch already folded).  Only
  /// valid for kMatmul.
  TensorOp to_op() const;
  /// The fused pair this request describes.  Only valid for kFusedPair.
  FusedPair to_pair() const;
};

/// Parse one JSONL request line.  Throws ParseError carrying \p source and
/// \p lineno for malformed JSON, and std::invalid_argument for well-formed
/// JSON with bad fields.
PlanRequest parse_plan_request(const std::string& line, const std::string& source = "<request>",
                               int lineno = 1);

/// Same, from an already parsed JSON object.
PlanRequest plan_request_from_json(const JsonValue& doc);

/// Allocation-light scan for the top-level "id" string field of a request
/// line, used by the net/ reactors to label deadline-expiry responses
/// without running the full JSON parser on the event-loop thread (parsing
/// happens pool-side).  Unescapes exactly like the real parser (common
/// escapes plus \uXXXX as UTF-8), writing into \p id_out and using
/// \p key_scratch for member keys — both are caller-owned so steady-state
/// calls reuse their capacity and never allocate.  Returns false (leaving
/// \p id_out cleared) when the line is malformed, has no "id", or its id
/// is not a string; the pool-side parse still produces the authoritative
/// error response in those cases.
bool extract_request_id(const std::string& line, std::string& key_scratch, std::string& id_out);

/// FNV-1a hash of a request line with the "id" *value* bytes masked out, so
/// two requests that differ only in their id — the shape the plan cache
/// keys on — hash identically.  Used by the net/ reactors' brownout path to
/// predict suffix-splice cache hits without parsing on the loop thread:
/// a shape seen completing successfully before is "warm".  Falls back to
/// hashing the whole line when the id cannot be located (the authoritative
/// parse happens pool-side either way).  Allocation-free.
std::uint64_t request_shape_hash(const std::string& line);

/// A planning answer, ready to serialize.
struct PlanResponse {
  std::string id;
  bool ok = false;
  std::string error;  ///< set when !ok

  PlanRequest::Kind kind = PlanRequest::Kind::kMatmul;
  bool cached = false;  ///< answered from the plan cache

  /// kMatmul payload.
  std::optional<IntraOptResult> intra;
  /// kFusedPair payload; nullopt inside ok=true means "pair not fusable at
  /// this buffer size" (a legitimate planning answer, not an error).
  std::optional<FusedOptResult> fused;
  bool fusable = false;

  /// One JSON object, no trailing newline (the caller owns framing).
  std::string to_json() const;
};

/// Error response preserving the request id (empty when unknown).
PlanResponse error_response(const std::string& id, const std::string& message);

/// Serialized overload-shed response carrying a client backoff hint:
/// {"id":...,"ok":false,"error":<message>,"retry_after_ms":N}.  Used by the
/// reactors when adaptive admission is armed; serve_loadgen honors the hint
/// with capped exponential backoff.  No trailing newline.
std::string overload_response_json(const std::string& id, const std::string& message,
                                   std::int64_t retry_after_ms);

/// ParseError-style message for a request line that crossed the
/// --max-line-bytes cap, e.g. "<stdin>:7:1: expected a request line of at
/// most 1048576 bytes (--max-line-bytes)".  Shared by the stdin stream and
/// the TCP connection path so both shed oversized lines identically.
std::string oversized_line_message(const std::string& source, int lineno,
                                   std::size_t max_line_bytes);

}  // namespace fusecu
