#pragma once

#include <optional>
#include <string>

#include "arch/arch_spec.hpp"
#include "dataflow/access_model.hpp"
#include "fusion/fused_pair.hpp"
#include "fusion/graph_planner.hpp"  // is_matmul_shaped

/// \file canonical.hpp
/// Workload canonicalization for the plan cache (src/serve).
///
/// Plans produced by the principle optimizer are pure functions of the
/// operator's *access structure* and the buffer size — not of the operator
/// name, and not of the whole (shape, buffer) product space.  The
/// canonicalizer exploits exactly the equivalences that are provably sound
/// for byte-identical plan reuse (see DESIGN.md "Canonicalization
/// soundness"):
///
///  1. **Operator name**: optimize_intra never reads it.  Dimension and
///     tensor names DO appear in the winning rule string ("P1(stationary=A)")
///     and therefore stay in the key.
///  2. **Transpose class**: matmul(m,k,l) and matmul(l,k,m) under the same
///     labels describe isomorphic access structures, so both map to one key
///     built from the sorted free extents (min(m,l), k, max(m,l)) plus the
///     shared labels.  The optimizer is *not* guaranteed
///     transpose-equivariant (candidate enumeration and tie-breaks are
///     orientation-sensitive), so the cache entry keeps one plan slot per
///     orientation instead of transforming plans across orientations —
///     byte-identical reuse without an equivariance assumption.
///  3. **Buffer saturation**: for bs >= m*k + k*l + m*l every tensor fits
///     simultaneously and the plan is constant in bs, so the key clamps the
///     buffer to that full-fit point.  Below it, distinct buffer sizes keep
///     distinct keys.
///
/// Distinct workloads never share a key: every extent, every dimension and
/// tensor name, and the (clamped) buffer size are all spelled into the key
/// text with unambiguous separators.

namespace fusecu {

/// Canonical cache key for one intra-operator planning request.
struct CanonicalIntraKey {
  std::string text;      ///< the cache key (shared by the transpose class)
  bool swapped = false;  ///< orientation slot: false = m <= l, true = m > l
};

/// Buffer size with the saturation clamp applied: min(bs, m*k + k*l + m*l).
BufferSize clamp_buffer_for_intra(const TensorOp& op, BufferSize bs);

/// Canonical key for optimize_intra(op, bs).  Throws std::invalid_argument
/// when \p op is not matmul-shaped; use try_canonical_intra_key from
/// never-throw contexts (the interceptor).
CanonicalIntraKey canonical_intra_key(const TensorOp& op, BufferSize bs);

/// Non-throwing variant: nullopt when \p op is out of scope for the cache.
std::optional<CanonicalIntraKey> try_canonical_intra_key(const TensorOp& op, BufferSize bs);

/// Canonical key for optimize_fused_pair(pair, bs).  Fused construction is
/// asymmetric in all four extents, so the key is exact (no transpose class,
/// no buffer clamp) — it still folds the request-level equivalences (operator
/// names) away by spelling only extents and operand names.
std::string canonical_fused_key(const FusedPair& pair, BufferSize bs);

/// Canonical key for optimize_intra_for_arch(op, arch): the intra key
/// ingredients plus every ArchSpec field that influences plan construction
/// (array shape, buffer, granularity, flexibility, stationarities, fusion
/// support).  Bandwidth, frequency and energy parameters are deliberately
/// excluded — they price plans but never change them.  nullopt when \p op is
/// not matmul-shaped.
std::optional<std::string> try_canonical_arch_key(const TensorOp& op, const ArchSpec& arch);

}  // namespace fusecu
