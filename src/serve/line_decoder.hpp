#pragma once

#include <cstddef>
#include <string>

/// \file line_decoder.hpp
/// Incremental '\n' splitter with a line-length cap, shared by the stdin
/// JSONL stream (PlanService::serve_stream) and the TCP connection read path
/// (net/server.hpp).
///
/// Both paths receive bytes in arbitrary chunks and must never buffer an
/// unbounded amount waiting for a newline that a hostile or broken client
/// withholds.  The decoder therefore reports an *oversized* line as soon as
/// the cap is crossed — before its terminator arrives — and silently
/// discards the rest of that line, so memory stays bounded by
/// `max_line_bytes` plus one input chunk while the stream keeps its
/// one-response-per-line accounting (an oversized line still occupies
/// exactly one line slot).
///
/// Semantics match the `std::getline` loop it replaces: lines are split on
/// '\n' (a trailing '\r' stays in the text, as before), and a final partial
/// line at end of input is delivered by finish().

namespace fusecu {

class LineDecoder {
 public:
  /// One decoded input line.  When \p oversized is set the line crossed the
  /// cap; \p text is empty (the payload was discarded, not truncated — a
  /// JSON parser should never see half a document).
  struct DecodedLine {
    std::string text;
    bool oversized = false;
  };

  /// \p max_line_bytes counts the line body, excluding the '\n'.
  explicit LineDecoder(std::size_t max_line_bytes) : max_line_bytes_(max_line_bytes) {}

  /// Append \p n raw bytes.  Call next() until it returns false before
  /// feeding again to keep the internal buffer small.
  void feed(const char* data, std::size_t n);

  /// Pop the next complete line (or oversized-line event) into \p out.
  /// Returns false when more input is needed.
  bool next(DecodedLine& out);

  /// End of input: deliver the trailing newline-less partial line, if any.
  /// Returns false when there is nothing pending (including when the tail
  /// belongs to an already-reported oversized line).  The decoder is reset
  /// and reusable afterwards.
  bool finish(DecodedLine& out);

  /// Bytes currently buffered (bounded by max_line_bytes + one feed chunk).
  std::size_t buffered() const { return pending_.size(); }

  std::size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  std::size_t max_line_bytes_;
  std::string pending_;
  std::size_t scan_ = 0;      ///< resume offset for the '\n' search
  bool discarding_ = false;   ///< inside an oversized line already reported
};

}  // namespace fusecu
