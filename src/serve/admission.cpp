#include "serve/admission.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace fusecu {

namespace {

std::int64_t interval_for(std::int64_t target_delay_ms) {
  // CoDel uses interval ~= several RTTs; here the analogue is several
  // multiples of the target so one slow request cannot flip the state.
  return std::max<std::int64_t>(4 * target_delay_ms, 50);
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config), interval_ms_(interval_for(config.target_delay_ms)) {}

std::int64_t AdmissionController::retry_after_ms() const {
  return std::clamp<std::int64_t>(2 * config_.target_delay_ms, 1, 1000);
}

void AdmissionController::record(std::int64_t delay_us, std::int64_t now_us) {
  if (!enabled()) return;
  MetricsRegistry::global().histogram("serve/queue_delay_us").observe(static_cast<double>(delay_us));

  const std::int64_t target_us = config_.target_delay_ms * 1000;
  const std::int64_t interval_us = interval_ms_ * 1000;

  bool entered = false;
  bool exited = false;
  std::int64_t standing_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!overloaded_.load(std::memory_order_relaxed)) {
      // Entry: CoDel's first-above confirmation timer.  Any below-target
      // dequeue proves the queue drained and disarms it; delays that stay
      // above the target for a whole confirmation span are a standing
      // queue.  Fixed windows would let the post-exit drain tail (near-zero
      // delays) pollute a window minimum and stall re-entry for up to two
      // intervals while an ongoing flood refills the queue — the timer
      // re-arms the moment delays cross the target again, and a recent exit
      // (within 16 intervals) shortens confirmation to interval/4 so an
      // oscillating overload is re-caught quickly.
      if (delay_us < target_us) {
        first_above_us_ = -1;
        return;
      }
      if (first_above_us_ < 0) {
        first_above_us_ = now_us;
        return;
      }
      // Gross violation: a delay at 2x the target is past any plausible
      // good burst, so confirm on this observation instead of waiting out
      // the span — every request admitted while we deliberate must still be
      // served, so deliberation time converts directly into served-tail
      // latency.  A false entry only sheds colds for one exit window.
      const bool gross = delay_us >= 2 * target_us;
      const bool recent_exit = last_exit_us_ >= 0 && now_us - last_exit_us_ < 16 * interval_us;
      const std::int64_t confirm_us = gross ? 0 : (recent_exit ? interval_us / 4 : interval_us);
      if (now_us - first_above_us_ < confirm_us) return;
      overloaded_.store(true, std::memory_order_relaxed);
      entered = true;
      standing_us = delay_us;
      first_above_us_ = -1;
      interval_start_us_ = now_us;  // open the exit-judgement window
      window_min_us_ = delay_us;
    } else {
      // Exit: the closed window's *minimum* must halve the target
      // (hysteresis), judged once per interval so one lucky dequeue
      // cannot flap the state off while the queue still stands.
      window_min_us_ = std::min(window_min_us_, delay_us);
      if (now_us - interval_start_us_ < interval_us) return;
      standing_us = window_min_us_;
      if (window_min_us_ < target_us / 2) {
        overloaded_.store(false, std::memory_order_relaxed);
        exited = true;
        last_exit_us_ = now_us;
        first_above_us_ = -1;
      }
      interval_start_us_ = now_us;
      window_min_us_ = delay_us;
    }
  }

  if (entered) {
    MetricsRegistry::global().counter("serve/brownout_entries").add(1);
    log_warn("serve", "brownout: standing queue delay above target, shedding cold requests",
             {{"min_delay_us", std::to_string(standing_us)},
              {"target_ms", std::to_string(config_.target_delay_ms)}});
  } else if (exited) {
    log_info("serve", "brownout cleared: standing queue delay recovered",
             {{"min_delay_us", std::to_string(standing_us)},
              {"target_ms", std::to_string(config_.target_delay_ms)}});
  }
}

}  // namespace fusecu
