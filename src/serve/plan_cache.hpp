#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "obs/metrics.hpp"

/// \file plan_cache.hpp
/// Sharded, thread-safe LRU cache for optimizer results.
///
/// Planning a transformer layer issues hundreds of optimize_* calls, most of
/// them repeats (every decoder layer shares the projection shapes).  The
/// cache makes repeats O(key hash) under concurrency: keys are distributed
/// across N independent shards, each with its own mutex, LRU list and byte
/// budget, so threads planning different shapes never contend.
///
/// Accounting is by caller-declared entry cost (bytes); when a shard
/// overflows its budget (capacity_bytes / shards) it evicts from the
/// least-recently-used end.  Hits, misses, insertions and evictions are
/// reported through the obs metrics registry under `<metric_prefix>/...`.

namespace fusecu {

/// Point-in-time cache statistics (shared across value-type instantiations).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    insertions += o.insertions;
    evictions += o.evictions;
    entries += o.entries;
    bytes += o.bytes;
    return *this;
  }
};

template <typename Value>
class ShardedLruCache {
 public:
  struct Options {
    int shards = 8;
    std::size_t capacity_bytes = 64ull * 1024 * 1024;
    std::string metric_prefix = "serve/cache";
    MetricsRegistry* registry = &MetricsRegistry::global();
  };

  using Stats = CacheStats;

  explicit ShardedLruCache(Options options)
      : options_(std::move(options)),
        hits_(options_.registry->counter(options_.metric_prefix + "/hits")),
        misses_(options_.registry->counter(options_.metric_prefix + "/misses")),
        insertions_(options_.registry->counter(options_.metric_prefix + "/insertions")),
        evictions_(options_.registry->counter(options_.metric_prefix + "/evictions")) {
    FCU_CHECK(options_.shards >= 1, "cache needs at least one shard");
    shards_ = std::vector<Shard>(static_cast<std::size_t>(options_.shards));
    shard_capacity_ = options_.capacity_bytes / static_cast<std::size_t>(options_.shards);
  }

  /// Copy of the cached value, refreshing its recency; nullopt on miss.
  std::optional<Value> get(const std::string& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.add();
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.add();
    return it->second->value;
  }

  /// Insert or overwrite; evicts LRU entries until the shard fits.
  void put(const std::string& key, Value value, std::size_t cost_bytes) {
    upsert(
        key, [&](Value& stored, bool) { stored = std::move(value); }, cost_bytes);
  }

  /// Find-or-create \p key under the shard lock and apply \p mutate to the
  /// stored value (second argument: true when the entry already existed).
  /// This is how multi-slot entries (one plan per transpose orientation) are
  /// extended without a lost-update window between get() and put().
  template <typename Fn>
  void upsert(const std::string& key, Fn&& mutate, std::size_t cost_bytes) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      shard.bytes -= it->second->cost;
      mutate(it->second->value, true);
      it->second->cost = entry_cost(key, cost_bytes);
      shard.bytes += it->second->cost;
    } else {
      shard.lru.push_front(Entry{key, Value{}, entry_cost(key, cost_bytes)});
      mutate(shard.lru.front().value, false);
      shard.index.emplace(key, shard.lru.begin());
      shard.bytes += shard.lru.front().cost;
      insertions_.add();
    }
    while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.cost;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      evictions_.add();
    }
  }

  /// Run \p fn on the cached value under the shard lock, *without* counting
  /// a hit/miss or refreshing recency.  Returns false on miss.  This is the
  /// read half of the serialized-response fast path: the logical cache hit
  /// was already counted by the plan lookup, and a second stats-bearing
  /// get() here would double-count it.  \p fn must be quick (it runs under
  /// the shard mutex) and must only read.
  template <typename Fn>
  bool peek(const std::string& key, Fn&& fn) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    fn(static_cast<const Value&>(it->second->value));
    return true;
  }

  /// Mutate an existing entry in place, growing its recorded cost by
  /// \p add_cost_bytes; a no-op on an absent key (returns false).  Unlike
  /// upsert this never creates an entry — attaching derived data (a
  /// serialized response body) to a key that was evicted in the meantime
  /// must not resurrect it as an empty shell.  Recency and hit/miss stats
  /// are left untouched for the same reason as peek().
  template <typename Fn>
  bool update(const std::string& key, Fn&& mutate, std::size_t add_cost_bytes) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    mutate(it->second->value);
    it->second->cost += add_cost_bytes;
    shard.bytes += add_cost_bytes;
    while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.cost;
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      evictions_.add();
    }
    return true;
  }

  /// Aggregate statistics across all shards (counters are process totals for
  /// this cache instance's metric prefix).
  Stats stats() const {
    Stats s;
    s.hits = hits_.value();
    s.misses = misses_.value();
    s.insertions = insertions_.value();
    s.evictions = evictions_.value();
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      s.entries += shard.lru.size();
      s.bytes += shard.bytes;
    }
    return s;
  }

  int shards() const { return options_.shards; }
  std::size_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  struct Entry {
    std::string key;
    Value value;
    std::size_t cost = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string, typename std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
  };

  /// Every entry is charged at least its key plus bookkeeping, so a
  /// zero-cost caller still triggers eviction eventually.
  static std::size_t entry_cost(const std::string& key, std::size_t cost_bytes) {
    return cost_bytes + key.size() + sizeof(Entry);
  }

  Shard& shard_for(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  Options options_;
  std::size_t shard_capacity_ = 0;
  std::vector<Shard> shards_;
  Counter& hits_;
  Counter& misses_;
  Counter& insertions_;
  Counter& evictions_;
};

}  // namespace fusecu
