#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

/// \file admission.hpp
/// CoDel-style adaptive admission control driven by measured queue delay.
///
/// The fixed `--queue-depth` shed answers "is the queue long?", which is the
/// wrong question under bursty load: a deep queue that drains fast is fine,
/// a shallow queue that drains slowly is not.  Following CoDel (Nichols &
/// Jacobson, CACM 2012) the controller watches *standing* queue delay —
/// delay that stays above the target with no fast dequeue in between —
/// because one below-target dequeue proves the queue fully drained, while a
/// burst that drains is invisible to it.
///
/// State machine (see DESIGN.md §7):
///
///        delay >= target continuously for a confirmation span
///        (one interval; interval/4 within 16 intervals of an exit;
///        immediately once delay reaches 2x target)
///   OK ────────────────────────────────────▶ BROWNOUT
///      ◀────────────────────────────────────
///        window min < target/2 at an interval edge (hysteresis)
///
/// Entry is CoDel's first-above timer rather than a fixed window: any
/// below-target dequeue disarms it, a recent exit shortens the
/// confirmation so an overload that outlives one shed wave is re-caught in
/// interval/4 instead of drifting for up to two windows while the queue
/// refills, and a *gross* delay (2x target with the timer armed) confirms
/// at once — admission is never revoked, so time spent deliberating is
/// served-tail latency for every request admitted meanwhile.
///
/// In BROWNOUT the reactor sheds *cold* requests (shapes never completed
/// before — planner misses) while still admitting *warm* ones (suffix-splice
/// cache hits), and every shed response carries a `retry_after_ms` hint so
/// well-behaved clients back off instead of hammering.  The controller
/// never revokes admission: a request that entered the queue is always
/// served or answered by the watchdog, never shed retroactively.
///
/// Threading.  `record()` is called by every pool worker at dequeue;
/// `overloaded()` is a single relaxed atomic load on the reactor hot path.
/// The window state behind `record()` is mutex-guarded — at most one
/// observation per served request, far off the zero-alloc reactor loop.
///
/// Determinism.  The transition depends only on observed delays and the
/// span clock; unit tests drive it with synthetic timestamps
/// (tests/admission_test.cpp) so the state machine is exercised without
/// sleeping.

namespace fusecu {

struct AdmissionConfig {
  /// Target standing queue delay in ms; 0 disables adaptive admission.
  std::int64_t target_delay_ms = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  /// Adaptive admission armed (target > 0)?
  bool enabled() const { return config_.target_delay_ms > 0; }

  std::int64_t target_delay_ms() const { return config_.target_delay_ms; }

  /// One request's queue delay, observed at dequeue.  \p now_us is the span
  /// clock at dequeue (tests pass synthetic values).  Updates the
  /// `serve/queue_delay_us` histogram and the brownout state machine.
  void record(std::int64_t delay_us, std::int64_t now_us);

  /// True while the controller is in BROWNOUT — the reactor sheds cold
  /// requests.  A single relaxed load; safe on the hot path.
  bool overloaded() const { return overloaded_.load(std::memory_order_relaxed); }

  /// The backoff hint attached to shed responses: 2x the target delay,
  /// clamped to [1, 1000] ms.  Deterministic per configuration.
  std::int64_t retry_after_ms() const;

  /// Observation interval: max(4 x target, 50) ms.  Entry confirmation
  /// span; the exit window minimum is evaluated once per interval.
  std::int64_t interval_ms() const { return interval_ms_; }

 private:
  const AdmissionConfig config_;
  const std::int64_t interval_ms_;

  std::atomic<bool> overloaded_{false};

  std::mutex mu_;
  // State guarded by mu_.  Entry (while OK): first_above_us_ is when delays
  // last crossed the target with no below-target dequeue since (-1 = timer
  // disarmed); last_exit_us_ arms the shortened re-entry confirmation.
  // Exit (while BROWNOUT): the minimum delay seen since the judgement
  // window opened, and when it opened.
  std::int64_t first_above_us_ = -1;
  std::int64_t last_exit_us_ = -1;
  std::int64_t interval_start_us_ = -1;
  std::int64_t window_min_us_ = 0;
};

}  // namespace fusecu
