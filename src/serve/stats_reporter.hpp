#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <thread>

#include "serve/plan_cache.hpp"

/// \file stats_reporter.hpp
/// Background periodic stats line for the serving front-ends (stdin and
/// TCP), one line per period:
///
///   stats: qps=120.0 hit_rate=0.83 shed_rate=0 p50_us=42 p95_us=310
///          p99_us=900 qdelay_p95_us=12 requests=1200 errors=0 entries=57
///
/// qps / hit_rate / shed_rate are deltas over the period (measured wall
/// time, so a late-firing tick does not inflate qps; shed_rate is
/// sheds over all TCP responses written, 0 on the stdin path); the latency
/// percentiles come from merging the per-class request histograms
/// (Histogram::merge is exact bucket-by-bucket), so they are cumulative
/// over the process lifetime, and qdelay_p95_us is the cumulative p95 of
/// the pool queue delay the admission controller watches
/// (serve/queue_delay_us).
///
/// Shutdown flushes the tail: the destructor emits the final partial
/// period as one last stats line whenever that window saw any requests or
/// errors, so short runs (or the burst between the last tick and exit) are
/// reported instead of silently dropped.  An idle tail emits nothing.
///
/// Concurrency.  The *producers* may be many — every reactor shard and
/// every pool worker bumps the global counters (atomics), and one stats
/// line aggregates them all.  The *writer* is single: only the ticker
/// thread and the destructor (strictly after joining the ticker) call
/// emit().  That single-writer rule is what keeps the prev_* delta state
/// and the output stream race-free; it is enforced with emit_mu_ rather
/// than assumed, so a future caller that breaks the rule serializes
/// instead of corrupting the deltas or interleaving lines.

namespace fusecu {

class PlanService;

class StatsReporter {
 public:
  StatsReporter(PlanService& service, double interval_s, std::ostream& os);
  /// Stops the ticker and flushes the final partial period.
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

 private:
  void run();
  /// Emit one stats line covering [last period end, now); updates the
  /// deltas.  When \p only_if_active, an all-quiet window writes nothing
  /// (the destructor's final flush).
  void emit(bool only_if_active);

  PlanService& service_;
  double interval_s_;
  std::ostream& os_;

  /// Serializes emit() (see the single-writer rule above); guards the
  /// prev_* deltas, period_start_ and the output stream.
  std::mutex emit_mu_;
  std::int64_t prev_requests_ = 0;
  std::int64_t prev_errors_ = 0;
  std::int64_t prev_responses_ = 0;  ///< net/responses at the period start
  std::int64_t prev_shed_ = 0;       ///< net/shed at the period start
  CacheStats prev_cache_;
  std::chrono::steady_clock::time_point period_start_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace fusecu
