#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

/// \file thread_pool.hpp
/// Fixed-size worker pool used by the plan service.
///
/// Deliberately minimal: a locked deque feeding N long-lived workers, with
/// futures for result plumbing.  Planning jobs are CPU-bound and coarse
/// (microseconds to milliseconds each), so queue contention is negligible
/// and work stealing would be over-engineering.

namespace fusecu {

class ThreadPool {
 public:
  /// \p threads is clamped to >= 1.
  explicit ThreadPool(int threads);
  /// Drains nothing: pending jobs still run, then workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue \p fn; the future carries its return value or exception.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fusecu
