#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/ring_buffer.hpp"

/// \file thread_pool.hpp
/// Fixed-size worker pool used by the plan service.
///
/// Deliberately minimal: a locked FIFO feeding N long-lived workers.
/// Planning jobs are CPU-bound and coarse (microseconds to milliseconds
/// each), so queue contention is negligible and work stealing would be
/// over-engineering.
///
/// Two submission paths share the queue:
///
///   * submit(fn) — std::function + future plumbing for batch/stream
///     callers that want the return value;
///   * post(fn, arg) — a bare function pointer + context pointer for the
///     net/ reactors, whose hot path must not allocate.  The queue is a
///     capacity-preserving ring (common/ring_buffer.hpp), so after warm-up
///     a post() costs one mutex acquisition and a condition-variable
///     signal, zero heap traffic.

namespace fusecu {

class ThreadPool {
 public:
  /// Per-worker liveness signal for the net/ Supervisor: the worker bumps
  /// `epoch` (relaxed) before and after every job and raises `busy` for the
  /// job's duration.  A worker whose epoch stalls while busy is hung inside
  /// a task; an idle worker (busy=false) is never flagged.  Heap-allocated
  /// once per worker so the atomics have stable addresses the supervisor
  /// can sample after the pool started.
  struct Heartbeat {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<bool> busy{false};
  };

  /// \p threads is clamped to >= 1.
  explicit ThreadPool(int threads);
  /// Drains nothing: pending jobs still run, then workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// One heartbeat per worker, index-aligned with the worker threads.
  /// Stable for the pool's lifetime.
  const std::vector<std::unique_ptr<Heartbeat>>& heartbeats() const { return heartbeats_; }

  /// Enqueue \p fn; the future carries its return value or exception.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      Job& job = queue_.push_slot();
      job.fn = nullptr;
      job.arg = nullptr;
      job.boxed = [task]() { (*task)(); };
    }
    cv_.notify_one();
    return future;
  }

  /// Enqueue \p fn(\p arg) without touching the allocator (ring slot reuse;
  /// the stale boxed closure in the slot is released, never created).  The
  /// caller owns \p arg's lifetime until the job runs — the net/ reactors
  /// pass arena-pooled request objects.
  void post(void (*fn)(void*), void* arg) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      Job& job = queue_.push_slot();
      job.fn = fn;
      job.arg = arg;
      job.boxed = nullptr;  // drops a stale closure's heap state, if any
    }
    cv_.notify_one();
  }

 private:
  /// One queued job: either a bare (fn, arg) pair or a boxed closure.
  struct Job {
    void (*fn)(void*) = nullptr;
    void* arg = nullptr;
    std::function<void()> boxed;
  };

  void worker_loop(Heartbeat* heartbeat);

  std::mutex mu_;
  std::condition_variable cv_;
  RingBuffer<Job> queue_;
  bool stopping_ = false;
  std::vector<std::unique_ptr<Heartbeat>> heartbeats_;
  std::vector<std::thread> workers_;
};

}  // namespace fusecu
