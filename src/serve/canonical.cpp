#include "serve/canonical.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "tensor/tensor_op.hpp"

namespace fusecu {

namespace {

/// Append a name with a length prefix so concatenated names can never
/// collide ("AB"+"C" vs "A"+"BC").
void put_name(std::ostringstream& os, const std::string& name) {
  os << name.size() << ':' << name << '|';
}

}  // namespace

BufferSize clamp_buffer_for_intra(const TensorOp& op, BufferSize bs) {
  const Index m = op.extent(mm::kDimM);
  const Index k = op.extent(mm::kDimK);
  const Index l = op.extent(mm::kDimL);
  const BufferSize full_fit = m * k + k * l + m * l;
  return std::min(bs, full_fit);
}

CanonicalIntraKey canonical_intra_key(const TensorOp& op, BufferSize bs) {
  FCU_CHECK(is_matmul_shaped(op), "canonical_intra_key expects a matmul-shaped operator");
  const Index m = op.extent(mm::kDimM);
  const Index k = op.extent(mm::kDimK);
  const Index l = op.extent(mm::kDimL);

  CanonicalIntraKey key;
  key.swapped = m > l;

  // The transpose class: matmul(m, k, l) and matmul(l, k, m) with the same
  // dimension/tensor labels have isomorphic access structures, so both spell
  // the sorted free extents (min, k, max).  Names stay in their fixed
  // positional order — they identify the *labeling*, which both orientations
  // share; the orientation itself is resolved by the entry's plan slots, not
  // by the key.
  const Index e_lo = key.swapped ? l : m;
  const Index e_hi = key.swapped ? m : l;

  std::ostringstream os;
  os << "i1|" << clamp_buffer_for_intra(op, bs) << '|' << e_lo << ',' << k << ',' << e_hi << '|';
  for (const Dim& d : op.dims()) put_name(os, d.name);
  for (const TensorDecl& t : op.tensors()) put_name(os, t.name);
  key.text = os.str();
  return key;
}

std::optional<CanonicalIntraKey> try_canonical_intra_key(const TensorOp& op, BufferSize bs) {
  if (!is_matmul_shaped(op)) return std::nullopt;
  if (bs < 3) return std::nullopt;  // below the minimal working set; let the optimizer throw
  return canonical_intra_key(op, bs);
}

std::string canonical_fused_key(const FusedPair& pair, BufferSize bs) {
  std::ostringstream os;
  os << "f2|" << bs << '|' << pair.m() << ',' << pair.k() << ',' << pair.l() << ',' << pair.n()
     << '|';
  for (const TensorOp* op : {&pair.op1(), &pair.op2()}) {
    for (const Dim& d : op->dims()) put_name(os, d.name);
    for (const TensorDecl& t : op->tensors()) put_name(os, t.name);
  }
  return os.str();
}

std::optional<std::string> try_canonical_arch_key(const TensorOp& op, const ArchSpec& arch) {
  if (!is_matmul_shaped(op)) return std::nullopt;
  if (arch.buffer_elements() < 3) return std::nullopt;

  // Arch candidate construction is orientation-sensitive (the PE array has
  // distinct row/column roles), so the key is exact: no transpose class, no
  // buffer clamp.
  std::ostringstream os;
  os << "a1|" << op.extent(mm::kDimM) << ',' << op.extent(mm::kDimK) << ','
     << op.extent(mm::kDimL) << '|';
  for (const Dim& d : op.dims()) put_name(os, d.name);
  for (const TensorDecl& t : op.tensors()) put_name(os, t.name);
  put_name(os, arch.name);
  os << arch.unit_rows << 'x' << arch.unit_cols << 'x' << arch.num_units << '|'
     << arch.buffer_elements() << '|' << arch.tile_granularity() << '|'
     << static_cast<int>(arch.tiling_flex) << '|' << (arch.supports_fusion ? 'F' : '-') << '|';
  for (Stationarity s : {Stationarity::kWeight, Stationarity::kOutput, Stationarity::kInput}) {
    os << (arch.supports(s) ? '1' : '0');
  }
  return os.str();
}

}  // namespace fusecu
