#include "serve/plan_service.hpp"

#include <chrono>
#include <exception>
#include <future>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#include "common/fault.hpp"
#include "common/json_writer.hpp"
#include "fusion/fusion_principles.hpp"
#include "obs/log.hpp"
#include "obs/span.hpp"
#include "principles/principle_optimizer.hpp"
#include "serve/line_decoder.hpp"

namespace fusecu {

namespace {

/// Fault seam for the worker pool (common/fault.hpp): a scheduled
/// kPoolStall event makes this task sleep briefly before planning,
/// modeling a stalled pool / pathologically slow plan.  Runs at the top of
/// every pooled request; disarmed cost is a single relaxed load.
void maybe_inject_pool_stall() {
  if (!fault::armed()) return;
  if (const std::uint64_t stall_us = fault::on_pool_task()) {
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
  }
}

std::size_t approx_bytes(const IntraOptResult& r) {
  return sizeof(IntraOptResult) + r.rule.size() +
         r.dataflow.loop_order.size() * sizeof(int) + r.dataflow.tile.size() * sizeof(Index) +
         r.access.per_tensor.size() * sizeof(AccessCount);
}

std::size_t approx_bytes(const std::optional<FusedOptResult>& r) {
  if (!r) return sizeof(FusedOptResult);
  std::size_t n = sizeof(FusedOptResult) + r->chosen.rule.size();
  if (r->chosen.resident) {
    n += (r->chosen.resident->df1.tile.size() + r->chosen.resident->df2.tile.size()) *
         (sizeof(Index) + sizeof(int));
  }
  return n;
}

std::size_t approx_bytes(const ArchIntraOpt& r) {
  return sizeof(ArchIntraOpt) + r.rule.size() + r.dataflow.loop_order.size() * sizeof(int) +
         r.dataflow.tile.size() * sizeof(Index) + r.access.per_tensor.size() * sizeof(AccessCount);
}

}  // namespace

/// Serves optimize_intra() from the sharded cache.  One transpose class maps
/// to one key; each orientation owns a slot, so cached plans are the exact
/// bytes the optimizer produced for that orientation (never transformed).
class PlanService::IntraInterceptor : public IntraPlanInterceptor {
 public:
  explicit IntraInterceptor(ShardedLruCache<IntraEntry>& cache) : cache_(cache) {}

  std::optional<IntraOptResult> lookup(const TensorOp& op, BufferSize bs) override {
    std::optional<CanonicalIntraKey> key = try_canonical_intra_key(op, bs);
    if (!key) return std::nullopt;
    std::optional<IntraEntry> entry = cache_.get(key->text);
    if (!entry) return std::nullopt;
    return entry->slots[key->swapped ? 1 : 0];
  }

  void store(const TensorOp& op, BufferSize bs, const IntraOptResult& result) override {
    std::optional<CanonicalIntraKey> key = try_canonical_intra_key(op, bs);
    if (!key) return;
    const int slot = key->swapped ? 1 : 0;
    cache_.upsert(
        key->text,
        [&](IntraEntry& entry, bool) { entry.slots[static_cast<std::size_t>(slot)] = result; },
        2 * approx_bytes(result));
  }

 private:
  ShardedLruCache<IntraEntry>& cache_;
};

class PlanService::FusedInterceptor : public FusedPlanInterceptor {
 public:
  explicit FusedInterceptor(ShardedLruCache<FusedEntry>& cache) : cache_(cache) {}

  std::optional<std::optional<FusedOptResult>> lookup(const FusedPair& pair,
                                                      BufferSize bs) override {
    std::optional<FusedEntry> entry = cache_.get(canonical_fused_key(pair, bs));
    if (!entry) return std::nullopt;
    return entry->result;
  }

  void store(const FusedPair& pair, BufferSize bs,
             const std::optional<FusedOptResult>& result) override {
    cache_.put(canonical_fused_key(pair, bs), FusedEntry{result}, approx_bytes(result));
  }

 private:
  ShardedLruCache<FusedEntry>& cache_;
};

class PlanService::ArchInterceptor : public ArchPlanInterceptor {
 public:
  explicit ArchInterceptor(ShardedLruCache<ArchEntry>& cache) : cache_(cache) {}

  std::optional<ArchIntraOpt> lookup(const TensorOp& op, const ArchSpec& arch) override {
    std::optional<std::string> key = try_canonical_arch_key(op, arch);
    if (!key) return std::nullopt;
    std::optional<ArchEntry> entry = cache_.get(*key);
    if (!entry) return std::nullopt;
    return entry->result;
  }

  void store(const TensorOp& op, const ArchSpec& arch, const ArchIntraOpt& result) override {
    std::optional<std::string> key = try_canonical_arch_key(op, arch);
    if (!key) return;
    cache_.put(*key, ArchEntry{result}, approx_bytes(result));
  }

 private:
  ShardedLruCache<ArchEntry>& cache_;
};

namespace {

template <typename Entry>
typename ShardedLruCache<Entry>::Options cache_options(const ServeOptions& o,
                                                       std::size_t capacity,
                                                       const std::string& prefix) {
  typename ShardedLruCache<Entry>::Options opts;
  opts.shards = o.shards;
  opts.capacity_bytes = capacity;
  opts.metric_prefix = prefix;
  return opts;
}

}  // namespace

PlanService::PlanService(ServeOptions options)
    : options_(options),
      intra_cache_(cache_options<IntraEntry>(options_, options_.cache_bytes / 2,
                                             "serve/cache/intra")),
      fused_cache_(cache_options<FusedEntry>(options_, options_.cache_bytes / 4,
                                             "serve/cache/fused")),
      arch_cache_(cache_options<ArchEntry>(options_, options_.cache_bytes / 4,
                                           "serve/cache/arch")),
      pool_(options_.threads),
      shared_flights_(MetricsRegistry::global().counter("serve/single_flight/shared")),
      requests_(MetricsRegistry::global().counter("serve/requests")),
      request_errors_(MetricsRegistry::global().counter("serve/request_errors")),
      latency_matmul_us_(MetricsRegistry::global().histogram("serve/latency_us/matmul")),
      latency_fused_us_(MetricsRegistry::global().histogram("serve/latency_us/fused_pair")),
      latency_hit_us_(MetricsRegistry::global().histogram("serve/latency_us/hit")),
      latency_miss_us_(MetricsRegistry::global().histogram("serve/latency_us/miss")) {
  if (options_.install_interceptors) {
    intra_hook_ = std::make_unique<IntraInterceptor>(intra_cache_);
    fused_hook_ = std::make_unique<FusedInterceptor>(fused_cache_);
    arch_hook_ = std::make_unique<ArchInterceptor>(arch_cache_);
    prev_intra_hook_ = set_intra_plan_interceptor(intra_hook_.get());
    prev_fused_hook_ = set_fused_plan_interceptor(fused_hook_.get());
    prev_arch_hook_ = set_arch_plan_interceptor(arch_hook_.get());
  }
}

PlanService::~PlanService() {
  if (options_.install_interceptors) {
    set_intra_plan_interceptor(prev_intra_hook_);
    set_fused_plan_interceptor(prev_fused_hook_);
    set_arch_plan_interceptor(prev_arch_hook_);
  }
  // ThreadPool's destructor joins the workers, so no planning call can
  // outlive the interceptor targets above.
}

bool PlanService::begin_flight(const std::string& key) {
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) {
      flights_.emplace(key, std::make_shared<Flight>());
      return true;
    }
    flight = it->second;
  }
  shared_flights_.add();
  std::unique_lock<std::mutex> lock(flight->mu);
  flight->cv.wait(lock, [&]() { return flight->done; });
  return false;
}

void PlanService::end_flight(const std::string& key) {
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard<std::mutex> lock(flights_mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) return;
    flight = it->second;
    flights_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
  }
  flight->cv.notify_all();
}

IntraPlanned PlanService::plan_intra(const TensorOp& op, BufferSize bs) {
  std::optional<CanonicalIntraKey> key;
  {
    ScopedSpan canon("canonicalize");
    key = try_canonical_intra_key(op, bs);
  }
  if (key && intra_hook_) {
    {
      ScopedSpan lookup("cache_lookup");
      std::optional<IntraOptResult> hit = intra_hook_->lookup(op, bs);
      lookup.note(hit ? "hit" : "miss");
      if (hit) return IntraPlanned{*std::move(hit), true};
    }
    const std::string flight_key = key->text + (key->swapped ? "#1" : "#0");
    const bool recording = span_recording_enabled();
    const std::int64_t flight_start_us = recording ? span_clock_us() : 0;
    if (!begin_flight(flight_key)) {
      if (recording) {
        record_span("single_flight_join", flight_start_us, span_clock_us(), "joined");
      }
      // A leader finished this exact computation while we waited; its plan
      // is in the cache unless it was evicted or the leader threw — fall
      // through to compute (idempotent) in those rare cases.
      {
        ScopedSpan lookup("cache_lookup");
        std::optional<IntraOptResult> hit = intra_hook_->lookup(op, bs);
        lookup.note(hit ? "hit" : "miss");
        if (hit) return IntraPlanned{*std::move(hit), true};
      }
      return IntraPlanned{optimize_intra(op, bs), false};
    }
    try {
      // The interceptor inside optimize_intra stores the fresh plan.
      IntraOptResult result = optimize_intra(op, bs);
      end_flight(flight_key);
      return IntraPlanned{std::move(result), false};
    } catch (...) {
      end_flight(flight_key);
      throw;
    }
  }
  return IntraPlanned{optimize_intra(op, bs), false};
}

FusedPlanned PlanService::plan_fused(const FusedPair& pair, BufferSize bs) {
  if (fused_hook_) {
    std::string flight_key;
    {
      ScopedSpan canon("canonicalize");
      flight_key = canonical_fused_key(pair, bs);
    }
    {
      ScopedSpan lookup("cache_lookup");
      auto hit = fused_hook_->lookup(pair, bs);
      lookup.note(hit ? "hit" : "miss");
      if (hit) return FusedPlanned{*std::move(hit), true};
    }
    const bool recording = span_recording_enabled();
    const std::int64_t flight_start_us = recording ? span_clock_us() : 0;
    if (!begin_flight(flight_key)) {
      if (recording) {
        record_span("single_flight_join", flight_start_us, span_clock_us(), "joined");
      }
      {
        ScopedSpan lookup("cache_lookup");
        auto hit = fused_hook_->lookup(pair, bs);
        lookup.note(hit ? "hit" : "miss");
        if (hit) return FusedPlanned{*std::move(hit), true};
      }
      return FusedPlanned{optimize_fused_pair(pair, bs), false};
    }
    try {
      FusedPlanned planned{optimize_fused_pair(pair, bs), false};
      end_flight(flight_key);
      return planned;
    } catch (...) {
      end_flight(flight_key);
      throw;
    }
  }
  return FusedPlanned{optimize_fused_pair(pair, bs), false};
}

PlanResponse PlanService::plan(const PlanRequest& request) {
  const bool matmul = request.kind == PlanRequest::Kind::kMatmul;
  // Root the span tree here only for direct calls; plan_batch/serve_stream
  // open the request root inside the pool task (anchored at enqueue time,
  // with a queue_wait child), and this call inherits it as ambient.
  std::optional<ScopedSpan> root;
  if (span_recording_enabled() && !current_span().valid()) {
    root.emplace(matmul ? "request/matmul" : "request/fused_pair");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  PlanResponse response;
  response.id = request.id;
  response.kind = request.kind;
  try {
    if (matmul) {
      IntraPlanned planned = plan_intra(request.to_op(), request.buffer_elems);
      response.intra = std::move(planned.result);
      response.cached = planned.cached;
    } else {
      FusedPlanned planned = plan_fused(request.to_pair(), request.buffer_elems);
      response.fusable = planned.result.has_value();
      response.fused = std::move(planned.result);
      response.cached = planned.cached;
    }
    response.ok = true;
  } catch (const std::exception& e) {
    response = error_response(request.id, e.what());
    request_errors_.add();
    log_error("serve", e.what(), {{"id", request.id}});
  }
  const double us = std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                              wall_start)
                        .count();
  requests_.add();
  (matmul ? latency_matmul_us_ : latency_fused_us_).observe(us);
  (response.cached ? latency_hit_us_ : latency_miss_us_).observe(us);
  if (root) root->note(response.ok ? (response.cached ? "ok cached" : "ok") : "error");
  return response;
}

std::vector<PlanResponse> PlanService::plan_batch(const std::vector<PlanRequest>& requests) {
  std::vector<std::future<PlanResponse>> futures;
  futures.reserve(requests.size());
  for (const PlanRequest& request : requests) {
    const std::int64_t enqueue_us = span_recording_enabled() ? span_clock_us() : 0;
    futures.push_back(pool_.submit([this, request, enqueue_us]() {
      return plan_enqueued(request, enqueue_us);
    }));
  }
  std::vector<PlanResponse> responses;
  responses.reserve(requests.size());
  for (std::future<PlanResponse>& f : futures) responses.push_back(f.get());
  return responses;
}

void PlanService::open_request_root(std::optional<ScopedSpan>& root, const PlanRequest& request,
                                    std::int64_t enqueue_us) {
  // Pool workers run the whole request on one thread, so opening the root
  // here (anchored at enqueue time) makes every span below it — including
  // the interceptor-level optimize spans — part of one connected tree.
  if (!span_recording_enabled()) return;
  const bool matmul = request.kind == PlanRequest::Kind::kMatmul;
  // Recording may have been armed after the request was enqueued; fall
  // back to "now" rather than anchoring at the clock origin.
  const std::int64_t anchor_us = enqueue_us > 0 ? enqueue_us : span_clock_us();
  root.emplace(matmul ? "request/matmul" : "request/fused_pair", anchor_us);
  record_span("queue_wait", anchor_us, span_clock_us());
}

PlanResponse PlanService::plan_enqueued(const PlanRequest& request, std::int64_t enqueue_us) {
  maybe_inject_pool_stall();
  std::optional<ScopedSpan> root;
  open_request_root(root, request, enqueue_us);
  return plan(request);
}

std::string PlanService::plan_enqueued_json(const PlanRequest& request, std::int64_t enqueue_us) {
  maybe_inject_pool_stall();
  std::optional<ScopedSpan> root;
  open_request_root(root, request, enqueue_us);
  PlanResponse response = plan(request);
  ScopedSpan serialize("serialize");
  return serialize_response(request, response);
}

std::string PlanService::plan_line_json(const std::string& line, const std::string& source,
                                        int lineno, std::int64_t enqueue_us, bool* parse_error) {
  maybe_inject_pool_stall();
  if (parse_error != nullptr) *parse_error = false;
  PlanRequest request;
  try {
    request = parse_plan_request(line, source, lineno);
  } catch (const std::exception& e) {
    if (parse_error != nullptr) *parse_error = true;
    request_errors_.add();
    log_warn("serve", "malformed request line", {{"source", source}, {"error", e.what()}});
    return error_response("", e.what()).to_json();
  }
  std::optional<ScopedSpan> root;
  open_request_root(root, request, enqueue_us);
  PlanResponse response = plan(request);
  ScopedSpan serialize("serialize");
  return serialize_response(request, response);
}

std::string PlanService::serialize_response(const PlanRequest& request,
                                            const PlanResponse& response) {
  // Only warm hits have a cacheable body: the response payload is exactly
  // the cached plan's rendering, invariant across request ids (batch
  // folding and transpose canonicalization land on the same entry and the
  // same bytes).  Everything else — cold misses, errors, uncached service —
  // takes the full serializer.
  if (!response.ok || !response.cached || !options_.install_interceptors) {
    return response.to_json();
  }
  // The id is the only request-specific part of the line and always leads:
  // to_json emits {"id":"<escaped>",...}.  The suffix cached alongside the
  // plan is every byte after that prefix.
  const std::string prefix = "{\"id\":\"" + JsonWriter::escape(response.id) + "\"";
  std::string suffix;
  if (response.kind == PlanRequest::Kind::kMatmul) {
    const std::optional<CanonicalIntraKey> key =
        try_canonical_intra_key(request.to_op(), request.buffer_elems);
    if (!key) return response.to_json();
    const std::size_t slot = key->swapped ? 1 : 0;
    intra_cache_.peek(key->text, [&](const IntraEntry& e) { suffix = e.json_suffix[slot]; });
    if (!suffix.empty()) return prefix + suffix;
    std::string full = response.to_json();
    if (full.compare(0, prefix.size(), prefix) == 0) {
      intra_cache_.update(
          key->text,
          [&](IntraEntry& e) { e.json_suffix[slot].assign(full, prefix.size(), std::string::npos); },
          full.size() - prefix.size());
    }
    return full;
  }
  const std::string key = canonical_fused_key(request.to_pair(), request.buffer_elems);
  fused_cache_.peek(key, [&](const FusedEntry& e) { suffix = e.json_suffix; });
  if (!suffix.empty()) return prefix + suffix;
  std::string full = response.to_json();
  if (full.compare(0, prefix.size(), prefix) == 0) {
    fused_cache_.update(
        key, [&](FusedEntry& e) { e.json_suffix.assign(full, prefix.size(), std::string::npos); },
        full.size() - prefix.size());
  }
  return full;
}

void PlanService::plan_async(PlanRequest request, std::function<void(std::string&&)> done) {
  const std::int64_t enqueue_us = span_recording_enabled() ? span_clock_us() : 0;
  pool_.submit([this, request = std::move(request), done = std::move(done), enqueue_us]() {
    done(plan_enqueued_json(request, enqueue_us));
  });
}

int PlanService::serve_stream(std::istream& in, std::ostream& out, const std::string& source) {
  // Workers return the serialized response line so the serialize span is a
  // child of the request root on the same thread (the writer loop below
  // only concatenates).
  struct Slot {
    std::optional<std::string> immediate;
    std::future<std::string> pending;
  };
  std::vector<Slot> slots;
  LineDecoder decoder(options_.max_line_bytes);
  int lineno = 0;
  const auto handle_line = [&](LineDecoder::DecodedLine&& line) {
    ++lineno;
    if (line.oversized) {
      request_errors_.add();
      log_warn("serve", "oversized request line", {{"line", std::to_string(lineno)}});
      Slot slot;
      slot.immediate = error_response("", oversized_line_message(source, lineno,
                                                                options_.max_line_bytes))
                           .to_json();
      slots.push_back(std::move(slot));
      return;
    }
    if (line.text.find_first_not_of(" \t\r") == std::string::npos) return;
    Slot slot;
    try {
      PlanRequest request = parse_plan_request(line.text, source, lineno);
      const std::int64_t enqueue_us = span_recording_enabled() ? span_clock_us() : 0;
      slot.pending = pool_.submit(
          [this, request, enqueue_us]() { return plan_enqueued_json(request, enqueue_us); });
    } catch (const std::exception& e) {
      request_errors_.add();
      log_warn("serve", "malformed request line", {{"error", e.what()}});
      slot.immediate = error_response("", e.what()).to_json();
    }
    slots.push_back(std::move(slot));
  };
  char chunk[64 * 1024];
  LineDecoder::DecodedLine line;
  while (in.read(chunk, sizeof(chunk)), in.gcount() > 0) {
    decoder.feed(chunk, static_cast<std::size_t>(in.gcount()));
    while (decoder.next(line)) handle_line(std::move(line));
  }
  if (decoder.finish(line)) handle_line(std::move(line));
  for (Slot& slot : slots) {
    out << (slot.immediate ? *slot.immediate : slot.pending.get()) << '\n';
  }
  return static_cast<int>(slots.size());
}

PlanService::Stats PlanService::stats() const {
  Stats s;
  s.intra = intra_cache_.stats();
  s.fused = fused_cache_.stats();
  s.arch = arch_cache_.stats();
  s.single_flight_shared = shared_flights_.value();
  return s;
}

}  // namespace fusecu
