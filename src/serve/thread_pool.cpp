#include "serve/thread_pool.hpp"

#include <algorithm>

namespace fusecu {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    void (*fn)(void*) = nullptr;
    void* arg = nullptr;
    std::function<void()> boxed;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      Job& job = queue_.front();
      fn = job.fn;
      arg = job.arg;
      if (fn == nullptr) boxed = std::move(job.boxed);
      queue_.pop_front();
    }
    if (fn != nullptr) {
      fn(arg);
    } else {
      boxed();
    }
  }
}

}  // namespace fusecu
