#include "serve/thread_pool.hpp"

#include <algorithm>

namespace fusecu {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  heartbeats_.reserve(static_cast<std::size_t>(n));
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    heartbeats_.push_back(std::make_unique<Heartbeat>());
    Heartbeat* hb = heartbeats_.back().get();
    workers_.emplace_back([this, hb]() { worker_loop(hb); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop(Heartbeat* heartbeat) {
  while (true) {
    void (*fn)(void*) = nullptr;
    void* arg = nullptr;
    std::function<void()> boxed;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      Job& job = queue_.front();
      fn = job.fn;
      arg = job.arg;
      if (fn == nullptr) boxed = std::move(job.boxed);
      queue_.pop_front();
    }
    heartbeat->epoch.fetch_add(1, std::memory_order_relaxed);
    heartbeat->busy.store(true, std::memory_order_relaxed);
    if (fn != nullptr) {
      fn(arg);
    } else {
      boxed();
    }
    heartbeat->busy.store(false, std::memory_order_relaxed);
    heartbeat->epoch.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace fusecu
