#include "serve/line_decoder.hpp"

namespace fusecu {

void LineDecoder::feed(const char* data, std::size_t n) { pending_.append(data, n); }

bool LineDecoder::next(DecodedLine& out) {
  while (true) {
    if (discarding_) {
      // The oversized event for this line was already delivered; eat bytes
      // up to and including its newline without storing them.
      const std::size_t nl = pending_.find('\n');
      if (nl == std::string::npos) {
        pending_.clear();
        scan_ = 0;
        return false;
      }
      pending_.erase(0, nl + 1);
      scan_ = 0;
      discarding_ = false;
      continue;
    }
    const std::size_t nl = pending_.find('\n', scan_);
    if (nl == std::string::npos) {
      if (pending_.size() > max_line_bytes_) {
        // Cap crossed with no terminator in sight: report now, discard the
        // rest of the line as it streams in.
        out.text.clear();
        out.oversized = true;
        pending_.clear();
        scan_ = 0;
        discarding_ = true;
        return true;
      }
      scan_ = pending_.size();
      return false;
    }
    if (nl > max_line_bytes_) {
      out.text.clear();
      out.oversized = true;
    } else {
      out.text.assign(pending_, 0, nl);
      out.oversized = false;
    }
    pending_.erase(0, nl + 1);
    scan_ = 0;
    return true;
  }
}

bool LineDecoder::finish(DecodedLine& out) {
  if (discarding_) {
    // Tail of an oversized line that never got its newline; the event was
    // already reported when the cap was crossed.
    discarding_ = false;
    pending_.clear();
    scan_ = 0;
    return false;
  }
  if (pending_.empty()) return false;
  if (pending_.size() > max_line_bytes_) {
    out.text.clear();
    out.oversized = true;
  } else {
    out.text = std::move(pending_);
    out.oversized = false;
  }
  pending_.clear();
  scan_ = 0;
  return true;
}

}  // namespace fusecu
