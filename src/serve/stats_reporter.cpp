#include "serve/stats_reporter.hpp"

#include <ostream>

#include "obs/metrics.hpp"
#include "serve/plan_service.hpp"

namespace fusecu {

StatsReporter::StatsReporter(PlanService& service, double interval_s, std::ostream& os)
    : service_(service), interval_s_(interval_s), os_(os) {
  MetricsRegistry& reg = MetricsRegistry::global();
  prev_requests_ = reg.counter("serve/requests").value();
  prev_errors_ = reg.counter("serve/request_errors").value();
  prev_responses_ = reg.counter("net/responses").value();
  prev_shed_ = reg.counter("net/shed").value();
  prev_cache_ = service_.stats().combined();
  period_start_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { run(); });
}

StatsReporter::~StatsReporter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // The window between the last tick and shutdown would otherwise vanish;
  // flush it as one last line (skipped when it saw no traffic).
  emit(/*only_if_active=*/true);
}

void StatsReporter::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!cv_.wait_for(lock, std::chrono::duration<double>(interval_s_),
                       [this] { return stop_; })) {
    emit(/*only_if_active=*/false);
  }
}

void StatsReporter::emit(bool only_if_active) {
  std::lock_guard<std::mutex> emit_lock(emit_mu_);
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::int64_t now_requests = reg.counter("serve/requests").value();
  const std::int64_t now_errors = reg.counter("serve/request_errors").value();
  const CacheStats now_cache = service_.stats().combined();
  const auto now = std::chrono::steady_clock::now();
  const double elapsed_s =
      std::chrono::duration<double>(now - period_start_).count();
  if (only_if_active &&
      now_requests == prev_requests_ && now_errors == prev_errors_) {
    return;
  }
  const double qps =
      elapsed_s > 0.0 ? static_cast<double>(now_requests - prev_requests_) / elapsed_s : 0.0;
  const std::int64_t lookups =
      (now_cache.hits - prev_cache_.hits) + (now_cache.misses - prev_cache_.misses);
  const double hit_rate =
      lookups > 0 ? static_cast<double>(now_cache.hits - prev_cache_.hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  // Shed rate over the period: sheds / all responses written (served +
  // shed), from the TCP layer's counters — 0.0 on the stdin path, where
  // nothing is ever shed.
  const std::int64_t d_responses = reg.counter("net/responses").value() - prev_responses_;
  const std::int64_t now_shed = reg.counter("net/shed").value();
  const std::int64_t d_shed = now_shed - prev_shed_;
  const double shed_rate =
      d_responses > 0 ? static_cast<double>(d_shed) / static_cast<double>(d_responses) : 0.0;
  Histogram merged;
  merged.merge(reg.histogram("serve/latency_us/matmul"));
  merged.merge(reg.histogram("serve/latency_us/fused_pair"));
  const HistogramSnapshot lat = merged.snapshot();
  // Queue delay (enqueue → pool dequeue) is the admission controller's
  // signal; cumulative, like the latency percentiles.
  const HistogramSnapshot qdelay = reg.histogram("serve/queue_delay_us").snapshot();
  os_ << "stats: qps=" << qps << " hit_rate=" << hit_rate << " shed_rate=" << shed_rate
      << " p50_us=" << lat.p50 << " p95_us=" << lat.p95 << " p99_us=" << lat.p99
      << " qdelay_p95_us=" << qdelay.p95 << " requests=" << now_requests
      << " errors=" << now_errors << " entries=" << now_cache.entries << "\n"
      << std::flush;
  prev_requests_ = now_requests;
  prev_errors_ = now_errors;
  prev_responses_ += d_responses;
  prev_shed_ = now_shed;
  prev_cache_ = now_cache;
  period_start_ = now;
}

}  // namespace fusecu
