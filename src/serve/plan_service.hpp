#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "arch/dataflow_space.hpp"
#include "obs/span.hpp"
#include "serve/canonical.hpp"
#include "serve/plan_cache.hpp"
#include "serve/plan_request.hpp"
#include "serve/thread_pool.hpp"

/// \file plan_service.hpp
/// Concurrent planning front-end: thread-pool batch planner + sharded plan
/// cache + canonicalization, wired into the optimizers via the interceptor
/// hooks (see principles/principle_optimizer.hpp).
///
/// Construction installs the process-wide interceptors, so *every* planning
/// path in the process — optimize_intra, optimize_fused_pair,
/// optimize_intra_for_arch and everything layered on them (plan_chain,
/// evaluate_model) — transparently reuses cached plans while the service is
/// alive.  Destruction restores the previously installed interceptors.  At
/// most one PlanService should be alive at a time.
///
/// Identical concurrent requests are single-flighted: the first thread in
/// computes, the rest wait on its completion and then read the cached plan,
/// so a batch of N equal requests costs one optimization.

namespace fusecu {

struct ServeOptions {
  int threads = static_cast<int>(std::thread::hardware_concurrency());
  std::size_t cache_bytes = 64ull * 1024 * 1024;
  int shards = 8;
  /// Install the optimizer interceptors (disable for benchmarking the pool
  /// without caching).
  bool install_interceptors = true;
  /// Longest accepted JSONL request line; an overlong line yields a
  /// structured ok=false ParseError response instead of unbounded
  /// buffering.  Shared by the stdin stream and the TCP path.
  std::size_t max_line_bytes = 1 << 20;
};

/// A typed intra-op answer: the plan plus whether the cache served it.
struct IntraPlanned {
  IntraOptResult result;
  bool cached = false;
};

/// A typed fused-pair answer; nullopt result means "not fusable at bs".
struct FusedPlanned {
  std::optional<FusedOptResult> result;
  bool cached = false;
};

class PlanService {
 public:
  explicit PlanService(ServeOptions options = {});
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// Plan one request; never throws — failures come back as ok=false.
  PlanResponse plan(const PlanRequest& request);

  /// Plan a batch on the worker pool; responses in request order.
  std::vector<PlanResponse> plan_batch(const std::vector<PlanRequest>& requests);

  /// Read JSONL requests from \p in, write one JSONL response per input line
  /// to \p out (blank lines are skipped).  Malformed lines produce
  /// ok=false responses carrying "<source>:<line>: ..." messages; the
  /// stream never aborts.  Returns the number of responses written.
  int serve_stream(std::istream& in, std::ostream& out, const std::string& source = "<stdin>");

  /// Submit one request to the worker pool; \p done runs on the worker
  /// thread with the serialized JSONL response line.  The request travels
  /// exactly like a serve_stream line — same request/* span root anchored
  /// at enqueue time, same per-class latency histograms, same serializer —
  /// so TCP-served responses are byte-identical to the stdin path.  Used by
  /// the net/ event loop, whose completion callback hands the line back to
  /// the loop thread through its wakeup pipe.
  void plan_async(PlanRequest request, std::function<void(std::string&&)> done);

  /// The whole pool-side body of one TCP request, from raw line to
  /// serialized response: inject a scheduled pool stall, parse, open the
  /// request span root anchored at \p enqueue_us, plan, serialize.  A parse
  /// failure returns the same ok=false line serve_stream would emit (and
  /// sets *\p parse_error so the reactor can bump its connection-level
  /// stats); planning failures come back as ok=false responses as usual.
  /// Runs on a pool worker — the net/ reactors post the raw line here so
  /// their own threads never parse or serialize.
  std::string plan_line_json(const std::string& line, const std::string& source, int lineno,
                             std::int64_t enqueue_us, bool* parse_error);

  /// Typed API used by the examples/benchmarks: single-flighted, cached
  /// intra-op planning.  Byte-identical to optimize_intra(op, bs).
  IntraPlanned plan_intra(const TensorOp& op, BufferSize bs);

  /// Typed fused-pair planning, same guarantees.
  FusedPlanned plan_fused(const FusedPair& pair, BufferSize bs);

  ThreadPool& pool() { return pool_; }
  const ServeOptions& options() const { return options_; }

  struct Stats {
    CacheStats intra;
    CacheStats fused;
    CacheStats arch;
    std::int64_t single_flight_shared = 0;  ///< requests that waited on a leader

    CacheStats combined() const {
      CacheStats all = intra;
      all += fused;
      all += arch;
      return all;
    }
  };
  Stats stats() const;

 private:
  /// Cached value for one transpose class: slot[0] holds the m <= l
  /// orientation's plan, slot[1] the swapped one (see canonical.hpp).
  /// json_suffix[i] caches slot i's serialized response body — every byte
  /// after the `{"id":"..."` prefix of the cached=true rendering — filled
  /// lazily on the first warm hit, so later hits splice the request id in
  /// front of it instead of re-serializing the plan (see
  /// serialize_response).
  struct IntraEntry {
    std::array<std::optional<IntraOptResult>, 2> slots;
    std::array<std::string, 2> json_suffix;
  };
  struct FusedEntry {
    std::optional<FusedOptResult> result;
    std::string json_suffix;  ///< same contract as IntraEntry::json_suffix
  };
  struct ArchEntry {
    ArchIntraOpt result;
  };

  class IntraInterceptor;
  class FusedInterceptor;
  class ArchInterceptor;

  /// In-flight computation other threads can wait on.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };

  /// True when this thread is the leader for \p key (must call end_flight);
  /// false after having waited for an existing leader to finish.
  bool begin_flight(const std::string& key);
  void end_flight(const std::string& key);

  /// Opens the "request/<class>" span root anchored at \p enqueue_us (span
  /// clock) plus a queue_wait child — called at the top of a pool task so
  /// the whole tree of a pooled request lives on the worker thread.  No-op
  /// (root stays empty) when span recording is off.
  void open_request_root(std::optional<ScopedSpan>& root, const PlanRequest& request,
                         std::int64_t enqueue_us);
  /// plan() under a pool-side request root.
  PlanResponse plan_enqueued(const PlanRequest& request, std::int64_t enqueue_us);
  /// plan() under a pool-side request root, serialized to the JSONL
  /// response line inside a "serialize" child span.
  std::string plan_enqueued_json(const PlanRequest& request, std::int64_t enqueue_us);
  /// Serialize \p response, splicing the serialized suffix cached alongside
  /// the plan when this is a warm hit (byte-identical to to_json(), just
  /// without re-walking the plan); stores the suffix on the first warm hit.
  std::string serialize_response(const PlanRequest& request, const PlanResponse& response);

  ServeOptions options_;
  ShardedLruCache<IntraEntry> intra_cache_;
  ShardedLruCache<FusedEntry> fused_cache_;
  ShardedLruCache<ArchEntry> arch_cache_;
  ThreadPool pool_;

  std::unique_ptr<IntraInterceptor> intra_hook_;
  std::unique_ptr<FusedInterceptor> fused_hook_;
  std::unique_ptr<ArchInterceptor> arch_hook_;
  IntraPlanInterceptor* prev_intra_hook_ = nullptr;
  FusedPlanInterceptor* prev_fused_hook_ = nullptr;
  ArchPlanInterceptor* prev_arch_hook_ = nullptr;

  std::mutex flights_mu_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;
  Counter& shared_flights_;

  // Request observability (obs/span.hpp drives the span trees; these are
  // the always-on latency histograms by request class plus the counters
  // the --stats-interval reporter differentiates for qps / error rate).
  Counter& requests_;
  Counter& request_errors_;
  Histogram& latency_matmul_us_;
  Histogram& latency_fused_us_;
  Histogram& latency_hit_us_;
  Histogram& latency_miss_us_;
};

}  // namespace fusecu
