#include "serve/plan_request.hpp"

#include <cctype>
#include <sstream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/json_parse.hpp"
#include "common/json_writer.hpp"
#include "common/parse_error.hpp"

namespace fusecu {

namespace {

Index require_index(const JsonValue& doc, const std::string& field) {
  JsonValuePtr v = doc.get(field);
  FCU_CHECK(v != nullptr, "request is missing required field \"" + field + "\"");
  FCU_CHECK(v->is_number(), "request field \"" + field + "\" must be a number");
  const double d = v->as_number();
  const Index i = static_cast<Index>(d);
  FCU_CHECK(static_cast<double>(i) == d && i >= 1,
            "request field \"" + field + "\" must be a positive integer");
  return i;
}

Index optional_index(const JsonValue& doc, const std::string& field, Index fallback) {
  if (!doc.has(field)) return fallback;
  return require_index(doc, field);
}

}  // namespace

TensorOp PlanRequest::to_op() const {
  FCU_CHECK(kind == Kind::kMatmul, "to_op() called on a non-matmul request");
  const std::string op_name = id.empty() ? "request" : id;
  if (batch > 1) {
    return fold_batch(TensorOp::batched_matmul(op_name, batch, m, k, l, /*shared_weight=*/true));
  }
  return TensorOp::matmul(op_name, m, k, l);
}

FusedPair PlanRequest::to_pair() const {
  FCU_CHECK(kind == Kind::kFusedPair, "to_pair() called on a non-fused request");
  return FusedPair::make(m, k, l, n);
}

PlanRequest plan_request_from_json(const JsonValue& doc) {
  FCU_CHECK(doc.is_object(), "request must be a JSON object");
  PlanRequest req;
  if (JsonValuePtr id = doc.get("id")) {
    FCU_CHECK(id->is_string(), "request field \"id\" must be a string");
    req.id = id->as_string();
  }

  std::string op = "matmul";
  if (JsonValuePtr v = doc.get("op")) {
    FCU_CHECK(v->is_string(), "request field \"op\" must be a string");
    op = v->as_string();
  }
  if (op == "matmul") {
    req.kind = PlanRequest::Kind::kMatmul;
  } else if (op == "fused_pair") {
    req.kind = PlanRequest::Kind::kFusedPair;
  } else {
    FCU_CHECK(false, "request field \"op\" must be \"matmul\" or \"fused_pair\", got \"" + op +
                         "\"");
  }

  req.m = require_index(doc, "m");
  req.k = require_index(doc, "k");
  req.l = require_index(doc, "l");
  if (req.kind == PlanRequest::Kind::kFusedPair) {
    req.n = require_index(doc, "n");
    FCU_CHECK(!doc.has("batch"), "fused_pair requests do not take \"batch\"");
  } else {
    req.batch = optional_index(doc, "batch", 1);
    if (JsonValuePtr sw = doc.get("shared_weight")) {
      FCU_CHECK(sw->is_bool(), "request field \"shared_weight\" must be a boolean");
      FCU_CHECK(sw->as_bool() || req.batch == 1,
                "per-slice-weight batched matmuls cannot be folded; "
                "plan the slices as individual requests");
    }
  }

  if (JsonValuePtr be = doc.get("buffer_elems")) {
    FCU_CHECK(be->is_number() && be->as_number() >= 1,
              "request field \"buffer_elems\" must be a positive number");
    req.buffer_elems = static_cast<BufferSize>(be->as_number());
  } else if (JsonValuePtr b = doc.get("buffer")) {
    std::int64_t bytes = 0;
    if (b->is_string()) {
      bytes = parse_bytes(b->as_string());
    } else if (b->is_number()) {
      bytes = static_cast<std::int64_t>(b->as_number());
    } else {
      FCU_CHECK(false, "request field \"buffer\" must be a byte size string or number");
    }
    const Index elem_bytes = optional_index(doc, "elem_bytes", 2);
    FCU_CHECK(bytes >= 1, "request field \"buffer\" must be positive");
    req.buffer_elems = bytes / elem_bytes;
  } else {
    FCU_CHECK(false, "request needs \"buffer\" (bytes) or \"buffer_elems\" (elements)");
  }
  FCU_CHECK(req.buffer_elems >= 1, "request buffer resolves to zero elements");
  return req;
}

PlanRequest parse_plan_request(const std::string& line, const std::string& source, int lineno) {
  JsonValuePtr doc;
  try {
    doc = parse_json(line, source);
  } catch (const ParseError& e) {
    // parse_json saw a single line; re-anchor at the stream's line number.
    throw ParseError(source, lineno, e.column(), e.expected());
  }
  return plan_request_from_json(*doc);
}

namespace {

/// Scan one JSON string starting at text[pos] == '"'; advances \p pos past
/// the closing quote.  When \p out is non-null it receives the unescaped
/// payload (cleared first), byte-for-byte what parse_string() in
/// common/json_parse.cpp would produce.  Returns false on malformed input.
bool scan_json_string(const std::string& text, std::size_t& pos, std::string* out) {
  if (pos >= text.size() || text[pos] != '"') return false;
  ++pos;
  if (out != nullptr) out->clear();
  while (true) {
    if (pos >= text.size()) return false;
    const char c = text[pos++];
    if (c == '"') return true;
    if (c != '\\') {
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (out != nullptr) out->push_back(c);
      continue;
    }
    if (pos >= text.size()) return false;
    const char esc = text[pos++];
    char decoded = 0;
    switch (esc) {
      case '"': decoded = '"'; break;
      case '\\': decoded = '\\'; break;
      case '/': decoded = '/'; break;
      case 'b': decoded = '\b'; break;
      case 'f': decoded = '\f'; break;
      case 'n': decoded = '\n'; break;
      case 'r': decoded = '\r'; break;
      case 't': decoded = '\t'; break;
      case 'u': {
        if (pos + 4 > text.size()) return false;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text[pos++];
          if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
          code = code * 16 +
                 static_cast<unsigned>(h <= '9' ? h - '0' : (std::tolower(h) - 'a' + 10));
        }
        if (out != nullptr) {
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
        }
        continue;
      }
      default: return false;
    }
    if (out != nullptr) out->push_back(decoded);
  }
}

void skip_json_ws(const std::string& text, std::size_t& pos) {
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                               text[pos] == '\r')) {
    ++pos;
  }
}

/// Skip one JSON value (string, nested container, or scalar token) without
/// materializing it.  Returns false on malformed input.
bool skip_json_value(const std::string& text, std::size_t& pos) {
  skip_json_ws(text, pos);
  if (pos >= text.size()) return false;
  const char c = text[pos];
  if (c == '"') return scan_json_string(text, pos, nullptr);
  if (c == '{' || c == '[') {
    int depth = 0;
    while (pos < text.size()) {
      const char d = text[pos];
      if (d == '"') {
        if (!scan_json_string(text, pos, nullptr)) return false;
        continue;
      }
      ++pos;
      if (d == '{' || d == '[') {
        ++depth;
      } else if (d == '}' || d == ']') {
        if (--depth == 0) return true;
      }
    }
    return false;
  }
  // Number / true / false / null: consume up to the next separator.
  const std::size_t start = pos;
  while (pos < text.size() && text[pos] != ',' && text[pos] != '}' && text[pos] != ']' &&
         text[pos] != ' ' && text[pos] != '\t' && text[pos] != '\n' && text[pos] != '\r') {
    ++pos;
  }
  return pos > start;
}

}  // namespace

bool extract_request_id(const std::string& line, std::string& key_scratch,
                        std::string& id_out) {
  id_out.clear();
  std::size_t pos = 0;
  skip_json_ws(line, pos);
  if (pos >= line.size() || line[pos] != '{') return false;
  ++pos;
  skip_json_ws(line, pos);
  if (pos < line.size() && line[pos] == '}') return false;  // empty object
  while (true) {
    skip_json_ws(line, pos);
    if (!scan_json_string(line, pos, &key_scratch)) return false;
    skip_json_ws(line, pos);
    if (pos >= line.size() || line[pos] != ':') return false;
    ++pos;
    if (key_scratch == "id") {
      skip_json_ws(line, pos);
      return scan_json_string(line, pos, &id_out);
    }
    if (!skip_json_value(line, pos)) return false;
    skip_json_ws(line, pos);
    if (pos >= line.size()) return false;
    if (line[pos] == ',') {
      ++pos;
      continue;
    }
    return false;  // '}' — object ended without an "id" member
  }
}

namespace {

/// Locate the raw byte span of the "id" member's value (quotes included).
/// Returns false when the line is malformed or has no string id.
bool find_id_value_span(const std::string& line, std::size_t& begin, std::size_t& end) {
  std::size_t pos = 0;
  skip_json_ws(line, pos);
  if (pos >= line.size() || line[pos] != '{') return false;
  ++pos;
  skip_json_ws(line, pos);
  if (pos < line.size() && line[pos] == '}') return false;
  while (true) {
    skip_json_ws(line, pos);
    const std::size_t key_start = pos;
    if (!scan_json_string(line, pos, nullptr)) return false;
    // Raw compare avoids materializing the key: the literal `"id"` has no
    // escapes worth honoring in practice.
    const bool is_id = pos - key_start == 4 && line.compare(key_start, 4, "\"id\"") == 0;
    skip_json_ws(line, pos);
    if (pos >= line.size() || line[pos] != ':') return false;
    ++pos;
    if (is_id) {
      skip_json_ws(line, pos);
      begin = pos;
      if (!scan_json_string(line, pos, nullptr)) return false;
      end = pos;
      return true;
    }
    if (!skip_json_value(line, pos)) return false;
    skip_json_ws(line, pos);
    if (pos >= line.size()) return false;
    if (line[pos] == ',') {
      ++pos;
      continue;
    }
    return false;
  }
}

}  // namespace

std::uint64_t request_shape_hash(const std::string& line) {
  std::size_t skip_begin = 0;
  std::size_t skip_end = 0;
  find_id_value_span(line, skip_begin, skip_end);  // on failure both stay 0
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64-bit offset basis
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (i >= skip_begin && i < skip_end) continue;
    h ^= static_cast<unsigned char>(line[i]);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

namespace {

void write_intra(JsonWriter& w, const IntraOptResult& r) {
  w.field("rule", r.rule);
  w.field("nra", static_cast<int>(r.nra));
  w.field("buffer_class", to_string(r.buffer_class));
  w.field("total_access", static_cast<std::int64_t>(r.access.total));
  w.key("per_tensor");
  w.begin_array();
  for (AccessCount a : r.access.per_tensor) w.value(static_cast<std::int64_t>(a));
  w.end_array();
  w.field("buffer_footprint", static_cast<std::int64_t>(r.access.buffer_footprint));
  w.key("loop_order");
  w.begin_array();
  for (int d : r.dataflow.loop_order) w.value(d);
  w.end_array();
  w.key("tile");
  w.begin_array();
  for (Index t : r.dataflow.tile) w.value(static_cast<std::int64_t>(t));
  w.end_array();
}

void write_fused(JsonWriter& w, bool fusable, const std::optional<FusedOptResult>& r) {
  w.field("fusable", fusable);
  if (!fusable || !r) return;
  w.field("rule", r->chosen.rule);
  w.field("total_access", static_cast<std::int64_t>(r->access.total));
  w.field("op1_external", static_cast<std::int64_t>(r->access.op1_external));
  w.field("op2_external", static_cast<std::int64_t>(r->access.op2_external));
  w.field("buffer_footprint", static_cast<std::int64_t>(r->access.buffer_footprint));
  w.field("regime1", static_cast<int>(r->regime1));
  w.field("regime2", static_cast<int>(r->regime2));
}

}  // namespace

std::string PlanResponse::to_json() const {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("id", id);
    w.field("ok", ok);
    if (!ok) {
      w.field("error", error);
    } else {
      w.field("kind", kind == PlanRequest::Kind::kMatmul ? "matmul" : "fused_pair");
      if (kind == PlanRequest::Kind::kMatmul && intra) {
        write_intra(w, *intra);
      } else if (kind == PlanRequest::Kind::kFusedPair) {
        write_fused(w, fusable, fused);
      }
      w.field("cached", cached);
    }
    w.end_object();
  }
  return os.str();
}

PlanResponse error_response(const std::string& id, const std::string& message) {
  PlanResponse r;
  r.id = id;
  r.ok = false;
  r.error = message;
  return r;
}

std::string overload_response_json(const std::string& id, const std::string& message,
                                   std::int64_t retry_after_ms) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("id", id);
    w.field("ok", false);
    w.field("error", message);
    w.field("retry_after_ms", retry_after_ms);
    w.end_object();
  }
  return os.str();
}

std::string oversized_line_message(const std::string& source, int lineno,
                                   std::size_t max_line_bytes) {
  return ParseError::format(source, lineno, 1,
                            "a request line of at most " + std::to_string(max_line_bytes) +
                                " bytes (--max-line-bytes)",
                            "");
}

}  // namespace fusecu
