#include "search/genetic.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "obs/timer.hpp"

namespace fusecu {

namespace {

constexpr AccessCount kInfeasible = std::numeric_limits<AccessCount>::max() / 4;

const std::vector<std::vector<int>>& all_orders3() {
  static const std::vector<std::vector<int>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  return orders;
}

/// Integer genome: gene[0] = loop-order id; gene[1..] = indices into the
/// per-dimension tile-candidate ladders.
struct Genome {
  std::vector<int> genes;
};

/// Generic steady-state GA: the caller provides genome arity, per-gene
/// cardinality and a fitness functional (lower is better).
template <typename FitnessFn>
Genome run_ga(const std::vector<int>& cardinality, FitnessFn fitness, const GaParams& params,
              Rng& rng) {
  const auto arity = cardinality.size();
  auto random_genome = [&] {
    Genome g;
    g.genes.reserve(arity);
    for (std::size_t i = 0; i < arity; ++i) {
      g.genes.push_back(static_cast<int>(rng.pick(static_cast<std::size_t>(cardinality[i]))));
    }
    return g;
  };

  std::vector<Genome> pop;
  std::vector<AccessCount> fit;
  pop.reserve(static_cast<std::size_t>(params.population));
  for (int i = 0; i < params.population; ++i) pop.push_back(random_genome());
  fit.resize(pop.size());
  for (std::size_t i = 0; i < pop.size(); ++i) fit[i] = fitness(pop[i]);

  auto tournament_pick = [&]() -> std::size_t {
    std::size_t best = rng.pick(pop.size());
    for (int t = 1; t < params.tournament; ++t) {
      std::size_t c = rng.pick(pop.size());
      if (fit[c] < fit[best]) best = c;
    }
    return best;
  };

  Genome global_best = pop[0];
  AccessCount global_fit = fit[0];
  for (std::size_t i = 1; i < pop.size(); ++i) {
    if (fit[i] < global_fit) {
      global_best = pop[i];
      global_fit = fit[i];
    }
  }

  for (int gen = 0; gen < params.generations; ++gen) {
    std::vector<std::size_t> rank(pop.size());
    for (std::size_t i = 0; i < rank.size(); ++i) rank[i] = i;
    std::sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) { return fit[a] < fit[b]; });

    std::vector<Genome> next;
    next.reserve(pop.size());
    for (int e = 0; e < params.elite && e < static_cast<int>(pop.size()); ++e) {
      next.push_back(pop[rank[static_cast<std::size_t>(e)]]);
    }
    while (next.size() < pop.size()) {
      Genome child = pop[tournament_pick()];
      if (rng.chance(params.crossover_rate)) {
        const Genome& other = pop[tournament_pick()];
        for (std::size_t i = 0; i < arity; ++i) {
          if (rng.chance(0.5)) child.genes[i] = other.genes[i];
        }
      }
      for (std::size_t i = 0; i < arity; ++i) {
        if (rng.chance(params.mutation_rate)) {
          child.genes[i] = static_cast<int>(rng.pick(static_cast<std::size_t>(cardinality[i])));
        }
      }
      next.push_back(std::move(child));
    }
    pop = std::move(next);
    for (std::size_t i = 0; i < pop.size(); ++i) {
      fit[i] = fitness(pop[i]);
      if (fit[i] < global_fit) {
        global_fit = fit[i];
        global_best = pop[i];
      }
    }
  }
  return global_best;
}

}  // namespace

std::optional<IntraSearchResult> ga_intra(const TensorOp& op, BufferSize bs,
                                          const GaParams& params, std::uint64_t seed) {
  FCU_CHECK(op.num_dims() == 3, "ga_intra currently targets 3-dim operators");
  ScopedTimer timer("ga_intra");
  std::int64_t evaluations = 0;
  Rng rng(seed);
  std::vector<std::vector<Index>> cands;
  for (int d = 0; d < 3; ++d) cands.push_back(tile_candidates(op.extent(d)));

  std::vector<int> cardinality = {6, static_cast<int>(cands[0].size()),
                                  static_cast<int>(cands[1].size()),
                                  static_cast<int>(cands[2].size())};
  auto decode = [&](const Genome& g) {
    Dataflow df;
    df.loop_order = all_orders3()[static_cast<std::size_t>(g.genes[0])];
    df.tile = {cands[0][static_cast<std::size_t>(g.genes[1])],
               cands[1][static_cast<std::size_t>(g.genes[2])],
               cands[2][static_cast<std::size_t>(g.genes[3])]};
    return df;
  };
  auto fitness = [&](const Genome& g) -> AccessCount {
    ++evaluations;
    Dataflow df = decode(g);
    if (df.buffer_footprint(op) > bs) return kInfeasible;
    return evaluate_access(op, df).total;
  };

  Genome best = run_ga(cardinality, fitness, params, rng);
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("search/ga_intra/calls").add();
  reg.counter("search/ga_intra/generations").add(params.generations);
  reg.counter("search/ga_intra/evaluations").add(evaluations);
  const double elapsed = timer.elapsed_seconds();
  if (elapsed > 0.0) {
    reg.gauge("search/ga_intra/evaluations_per_sec")
        .set(static_cast<double>(evaluations) / elapsed);
  }
  if (fitness(best) >= kInfeasible) return std::nullopt;
  Dataflow df = decode(best);
  return IntraSearchResult{df, evaluate_access(op, df)};
}

std::optional<FusedSearchResult> ga_fused(const FusedPair& pair, BufferSize bs,
                                          const GaParams& params, std::uint64_t seed) {
  ScopedTimer timer("ga_fused");
  Rng rng(seed);
  const std::vector<Index> cm = tile_candidates(pair.m());
  const std::vector<Index> ck = tile_candidates(pair.k());
  const std::vector<Index> cl = tile_candidates(pair.l());
  const std::vector<Index> cn = tile_candidates(pair.n());

  std::vector<int> cardinality = {2, static_cast<int>(cm.size()), static_cast<int>(ck.size()),
                                  static_cast<int>(cl.size()), static_cast<int>(cn.size())};
  auto decode = [&](const Genome& g) {
    PhasedFusedDataflow df;
    df.l_outer = g.genes[0] == 1;
    df.t_m = cm[static_cast<std::size_t>(g.genes[1])];
    df.t_k = ck[static_cast<std::size_t>(g.genes[2])];
    df.t_l = cl[static_cast<std::size_t>(g.genes[3])];
    df.t_n = cn[static_cast<std::size_t>(g.genes[4])];
    return df;
  };
  auto fitness = [&](const Genome& g) -> AccessCount {
    FusedAccess a = evaluate_phased(pair, decode(g));
    return a.buffer_footprint > bs ? kInfeasible : a.total;
  };

  Genome best_genome = run_ga(cardinality, fitness, params, rng);
  std::optional<FusedSearchResult> best;
  if (fitness(best_genome) < kInfeasible) {
    PhasedFusedDataflow df = decode(best_genome);
    best = FusedSearchResult{df, std::nullopt, evaluate_phased(pair, df)};
  }

  // Resident family: the two sides decouple, so run an intra-style GA per
  // side against the residual budget.
  const BufferSize residual = bs - pair.intermediate_size();
  if (residual >= 2) {
    auto side = [&](const TensorOp& op, int exclude, std::uint64_t salt) -> std::optional<Dataflow> {
      Rng side_rng(seed ^ salt);
      std::vector<std::vector<Index>> cands;
      for (int d = 0; d < 3; ++d) cands.push_back(tile_candidates(op.extent(d)));
      std::vector<int> card = {6, static_cast<int>(cands[0].size()),
                               static_cast<int>(cands[1].size()),
                               static_cast<int>(cands[2].size())};
      auto dec = [&](const Genome& g) {
        Dataflow df;
        df.loop_order = all_orders3()[static_cast<std::size_t>(g.genes[0])];
        df.tile = {cands[0][static_cast<std::size_t>(g.genes[1])],
                   cands[1][static_cast<std::size_t>(g.genes[2])],
                   cands[2][static_cast<std::size_t>(g.genes[3])]};
        return df;
      };
      auto fit = [&](const Genome& g) -> AccessCount {
        Dataflow df = dec(g);
        Index fp = 0;
        for (int t = 0; t < 3; ++t) {
          if (t != exclude) fp += df.tensor_tile_size(op, t);
        }
        if (fp > residual) return kInfeasible;
        AccessBreakdown b = evaluate_access(op, df);
        return b.total - b.per_tensor[static_cast<std::size_t>(exclude)];
      };
      Genome g = run_ga(card, fit, params, side_rng);
      if (fit(g) >= kInfeasible) return std::nullopt;
      return dec(g);
    };
    std::optional<Dataflow> df1 = side(pair.op1(), mm::kTensorC, 0x9e3779b97f4a7c15ull);
    std::optional<Dataflow> df2 = side(pair.op2(), 0, 0xc2b2ae3d27d4eb4full);
    if (df1 && df2) {
      ResidentFusedDataflow rf{*df1, *df2};
      FusedAccess a = evaluate_resident(pair, rf);
      if (a.buffer_footprint <= bs && (!best || a.total < best->access.total)) {
        best = FusedSearchResult{std::nullopt, rf, a};
      }
    }
  }
  MetricsRegistry::global().counter("search/ga_fused/calls").add();
  MetricsRegistry::global().counter("search/ga_fused/generations").add(params.generations);
  return best;
}

}  // namespace fusecu
