#include "search/annealing.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "obs/timer.hpp"

namespace fusecu {

std::optional<IntraSearchResult> sa_intra(const TensorOp& op, BufferSize bs,
                                          const SaParams& params, std::uint64_t seed) {
  FCU_CHECK(op.num_dims() == 3, "sa_intra currently targets 3-dim operators");
  FCU_CHECK(params.iterations >= 1 && params.cooling > 0.0 && params.cooling < 1.0,
            "invalid annealing parameters");
  ScopedTimer timer("sa_intra");
  std::int64_t evaluations = 0;
  std::int64_t accepted = 0;
  Rng rng(seed);

  std::vector<std::vector<Index>> ladder;
  for (int d = 0; d < 3; ++d) ladder.push_back(tile_candidates(op.extent(d)));

  struct State {
    std::vector<int> order;
    std::vector<int> tile_idx;  // index into the per-dim ladder
  };
  auto decode = [&](const State& s) {
    Dataflow df;
    df.loop_order = s.order;
    df.tile = {ladder[0][static_cast<std::size_t>(s.tile_idx[0])],
               ladder[1][static_cast<std::size_t>(s.tile_idx[1])],
               ladder[2][static_cast<std::size_t>(s.tile_idx[2])]};
    return df;
  };
  auto cost = [&](const State& s) -> std::optional<AccessCount> {
    Dataflow df = decode(s);
    if (df.buffer_footprint(op) > bs) return std::nullopt;
    ++evaluations;
    return evaluate_access(op, df).total;
  };

  // Feasible start: unit tiles always fit when three elements do.
  State current{{0, 1, 2}, {0, 0, 0}};
  std::optional<AccessCount> current_cost = cost(current);
  if (!current_cost) return std::nullopt;

  State best = current;
  AccessCount best_cost = *current_cost;
  double temperature = params.initial_temperature * static_cast<double>(best_cost);

  for (int it = 0; it < params.iterations; ++it) {
    State next = current;
    if (rng.chance(0.3)) {
      // Swap two loop levels.
      const std::size_t a = rng.pick(3), b = rng.pick(3);
      std::swap(next.order[a], next.order[b]);
    } else {
      // Step one tile along its ladder.
      const std::size_t d = rng.pick(3);
      const int step = rng.chance(0.5) ? 1 : -1;
      const int max_idx = static_cast<int>(ladder[d].size()) - 1;
      next.tile_idx[d] = clamp_index(next.tile_idx[d] + step, 0, max_idx);
    }
    std::optional<AccessCount> next_cost = cost(next);
    if (!next_cost) continue;  // infeasible neighbor: stay

    const double delta = static_cast<double>(*next_cost - *current_cost);
    if (delta <= 0.0 || rng.uniform01() < std::exp(-delta / std::max(temperature, 1.0))) {
      ++accepted;
      current = std::move(next);
      current_cost = next_cost;
      if (*current_cost < best_cost) {
        best = current;
        best_cost = *current_cost;
      }
    }
    temperature *= params.cooling;
  }

  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("search/sa_intra/calls").add();
  reg.counter("search/sa_intra/iterations").add(params.iterations);
  reg.counter("search/sa_intra/accepted_moves").add(accepted);
  reg.counter("search/sa_intra/evaluations").add(evaluations);
  const double elapsed = timer.elapsed_seconds();
  if (elapsed > 0.0) {
    reg.gauge("search/sa_intra/evaluations_per_sec")
        .set(static_cast<double>(evaluations) / elapsed);
  }
  Dataflow df = decode(best);
  return IntraSearchResult{df, evaluate_access(op, df)};
}

}  // namespace fusecu
