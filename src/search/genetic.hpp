#pragma once

#include <optional>

#include "common/rng.hpp"
#include "search/exhaustive.hpp"

/// \file genetic.hpp
/// Genetic-algorithm dataflow search — the reconstruction of DAT's
/// optimizer core (DAC'24 [15] uses mixed-integer programming plus genetic
/// algorithms).  Genomes encode (loop order, tile-size choices) for intra-op
/// search and (loop order, four tiles, phased/resident variant) for fused
/// pairs; fitness is the shared reuse cost model with an infeasibility
/// penalty.  As the paper observes in Fig. 9, a GA "does not guarantee
/// global optimization" — the validation bench shows exactly that gap.

namespace fusecu {

struct GaParams {
  int population = 64;
  int generations = 80;
  int tournament = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.25;
  int elite = 2;
};

/// GA over the intra-operator space; nullopt when no sampled individual
/// (including the repaired ones) fits the buffer.
std::optional<IntraSearchResult> ga_intra(const TensorOp& op, BufferSize bs,
                                          const GaParams& params, std::uint64_t seed);

/// GA over the fused-pair space (phased family; the decoupled resident
/// family is handled by two intra-style GAs and merged).
std::optional<FusedSearchResult> ga_fused(const FusedPair& pair, BufferSize bs,
                                          const GaParams& params, std::uint64_t seed);

}  // namespace fusecu
