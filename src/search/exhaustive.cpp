#include "search/exhaustive.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "obs/timer.hpp"

namespace fusecu {

namespace {

const std::vector<std::vector<int>>& all_orders3() {
  static const std::vector<std::vector<int>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  return orders;
}

Counter& pruned_evals_counter() {
  return MetricsRegistry::global().counter("search/exhaustive_pruned_evals");
}

/// Best dataflow on one side of a resident fusion: minimize MA excluding the
/// intermediate, with the intermediate's full size already reserved.
/// Tie-break is first-wins on strictly-smaller MA alone, so the floor
/// early-exit can stop outright: once best_ma meets the sum of the
/// non-excluded tensor sizes (each is accessed at least once), no later
/// candidate can strictly win.
std::optional<Dataflow> exhaustive_side(const TensorOp& op, BufferSize budget,
                                        int exclude_tensor, int other_a, int other_b,
                                        ExhaustiveMode mode) {
  const bool prune = mode == ExhaustiveMode::kPruned;
  AccessCount floor = 0;
  if (prune) {
    for (int t = 0; t < op.num_tensors(); ++t) {
      if (t != exclude_tensor) floor += op.tensor_size(t);
    }
  }

  std::optional<Dataflow> best;
  AccessCount best_ma = 0;
  std::vector<std::vector<Index>> cands;
  for (int d = 0; d < 3; ++d) cands.push_back(tile_candidates(op.extent(d)));
  Dataflow df;
  df.tile.assign(3, 1);
  // The live footprint (intermediate excluded) is monotone non-decreasing
  // in every tile axis; probing with the remaining axes at their minimum
  // candidate makes each over-budget hit a whole-level break.
  auto side_fp = [&](Index t0, Index t1, Index t2) {
    df.tile = {t0, t1, t2};
    return df.tensor_tile_size(op, other_a) + df.tensor_tile_size(op, other_b);
  };
  auto at_floor = [&]() { return prune && best && best_ma <= floor; };

  for (const auto& order : all_orders3()) {
    if (at_floor()) break;
    df.loop_order = order;
    for (Index t0 : cands[0]) {
      if (at_floor()) break;
      if (prune && side_fp(t0, cands[1].front(), cands[2].front()) > budget) break;
      for (Index t1 : cands[1]) {
        if (at_floor()) break;
        if (prune && side_fp(t0, t1, cands[2].front()) > budget) break;
        for (Index t2 : cands[2]) {
          const Index fp = side_fp(t0, t1, t2);
          if (fp > budget) {
            if (prune) break;  // ascending t2, monotone footprint
            continue;
          }
          AccessBreakdown b = evaluate_access(op, df);
          AccessCount ma = b.total - b.per_tensor[static_cast<std::size_t>(exclude_tensor)];
          if (!best || ma < best_ma) {
            best = df;
            best_ma = ma;
          }
          if (at_floor()) break;
        }
      }
    }
  }
  return best;
}

}  // namespace

std::optional<IntraSearchResult> exhaustive_intra(const TensorOp& op, BufferSize bs,
                                                  ExhaustiveMode mode) {
  FCU_CHECK(op.num_dims() == 3, "exhaustive_intra currently targets 3-dim operators");
  ScopedTimer timer("exhaustive_intra");
  const bool prune = mode == ExhaustiveMode::kPruned;
  std::int64_t evaluations = 0;
  std::int64_t visited = 0;  // inner-loop tuples actually reached
  std::vector<std::vector<Index>> cands;
  for (int d = 0; d < 3; ++d) cands.push_back(tile_candidates(op.extent(d)));
  const std::int64_t tuples_total = 6 * static_cast<std::int64_t>(cands[0].size()) *
                                    static_cast<std::int64_t>(cands[1].size()) *
                                    static_cast<std::int64_t>(cands[2].size());
  const AccessCount floor = prune ? intra_traffic_lower_bound(op, bs) : 0;

  std::optional<IntraSearchResult> best;
  Dataflow df;
  df.tile.assign(3, 1);
  // buffer_footprint is independent of loop order and monotone
  // non-decreasing in every tile axis (it sums tensor tile sizes).
  auto footprint = [&](Index t0, Index t1, Index t2) {
    df.tile = {t0, t1, t2};
    return df.buffer_footprint(op);
  };
  const Index fp_min = footprint(cands[0].front(), cands[1].front(), cands[2].front());
  // True once no remaining candidate can have a strictly smaller total; the
  // only way left to win is the footprint tie-break (strict <, first-wins).
  auto at_floor = [&]() { return prune && best && best->access.total <= floor; };

  for (const auto& order : all_orders3()) {
    // Nothing anywhere can beat an incumbent already at the floor *and* at
    // the minimum possible footprint.
    if (at_floor() && best->access.buffer_footprint <= fp_min) break;
    df.loop_order = order;
    for (Index t0 : cands[0]) {
      if (prune) {
        const Index fp0 = footprint(t0, cands[1].front(), cands[2].front());
        if (fp0 > bs) break;  // every (t1, t2) and every later t0 overflows
        if (at_floor() && fp0 >= best->access.buffer_footprint) break;
      }
      for (Index t1 : cands[1]) {
        if (prune) {
          const Index fp1 = footprint(t0, t1, cands[2].front());
          if (fp1 > bs) break;
          if (at_floor() && fp1 >= best->access.buffer_footprint) break;
        }
        for (Index t2 : cands[2]) {
          ++visited;
          df.tile = {t0, t1, t2};
          const Index fp = df.buffer_footprint(op);
          if (fp > bs) {
            if (prune) break;
            continue;
          }
          // At the floor a candidate can only win the footprint tie-break;
          // fp is monotone in t2, so the first non-improving footprint ends
          // the level.
          if (at_floor() && fp >= best->access.buffer_footprint) break;
          ++evaluations;
          AccessBreakdown b = evaluate_access(op, df);
          if (!best || b.total < best->access.total ||
              (b.total == best->access.total &&
               b.buffer_footprint < best->access.buffer_footprint)) {
            best = IntraSearchResult{df, b};
          }
        }
      }
    }
  }
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("search/exhaustive_intra/calls").add();
  reg.counter("search/exhaustive_intra/evaluations").add(evaluations);
  if (prune) pruned_evals_counter().add(tuples_total - visited);
  const double elapsed = timer.elapsed_seconds();
  if (elapsed > 0.0) {
    reg.gauge("search/exhaustive_intra/evaluations_per_sec")
        .set(static_cast<double>(evaluations) / elapsed);
  }
  return best;
}

std::optional<FusedSearchResult> exhaustive_fused(const FusedPair& pair, BufferSize bs,
                                                  ExhaustiveMode mode) {
  ScopedTimer timer("exhaustive_fused");
  const bool prune = mode == ExhaustiveMode::kPruned;
  std::int64_t evaluations = 0;
  std::int64_t visited = 0;
  std::optional<FusedSearchResult> best;
  // Every external tensor is read/written at least once by any fused
  // dataflow, phased or resident, so ideal_min_access is admissible for the
  // whole family and the tie-break is first-wins on strictly-smaller total.
  const AccessCount floor = prune ? pair.ideal_min_access() : 0;

  const std::vector<Index> cm = tile_candidates(pair.m());
  const std::vector<Index> ck = tile_candidates(pair.k());
  const std::vector<Index> cl = tile_candidates(pair.l());
  const std::vector<Index> cn = tile_candidates(pair.n());
  const std::int64_t tuples_total = 2 * static_cast<std::int64_t>(cm.size()) *
                                    static_cast<std::int64_t>(ck.size()) *
                                    static_cast<std::int64_t>(cl.size()) *
                                    static_cast<std::int64_t>(cn.size());

  // The phased live set (evaluate_phased's buffer_footprint), monotone
  // non-decreasing in every tile axis.
  auto phased_fp = [](Index t_m, Index t_k, Index t_l, Index t_n) {
    return t_m * t_k + t_k * t_l + t_m * t_l + t_l * t_n + t_m * t_n;
  };
  auto at_floor = [&]() { return prune && best && best->access.total <= floor; };
  auto finish = [&]() {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("search/exhaustive_fused/calls").add();
    reg.counter("search/exhaustive_fused/evaluations").add(evaluations);
    if (prune) pruned_evals_counter().add(tuples_total - visited);
  };

  PhasedFusedDataflow df;
  for (bool l_outer : {false, true}) {
    if (at_floor()) break;
    df.l_outer = l_outer;
    for (Index t_m : cm) {
      if (at_floor()) break;
      if (prune && phased_fp(t_m, ck.front(), cl.front(), cn.front()) > bs) break;
      for (Index t_k : ck) {
        if (at_floor()) break;
        if (prune && phased_fp(t_m, t_k, cl.front(), cn.front()) > bs) break;
        for (Index t_l : cl) {
          if (at_floor()) break;
          // Footprint is monotone in t_n; prune before the inner loop.
          if (phased_fp(t_m, t_k, t_l, cn.front()) > bs) {
            if (prune) break;  // ascending t_l, monotone footprint
            continue;
          }
          for (Index t_n : cn) {
            ++visited;
            df.t_m = t_m;
            df.t_k = t_k;
            df.t_l = t_l;
            df.t_n = t_n;
            if (prune && phased_fp(t_m, t_k, t_l, t_n) > bs) break;  // t_n ascending
            ++evaluations;
            FusedAccess a = evaluate_phased(pair, df);
            if (a.buffer_footprint > bs) break;  // t_n ascending (kFull path)
            if (!best || a.total < best->access.total) {
              best = FusedSearchResult{df, std::nullopt, a};
            }
            if (at_floor()) break;
          }
        }
      }
    }
  }

  // The resident family can no longer *strictly* beat an incumbent at the
  // floor, and the phased family is enumerated first, so first-wins holds.
  if (at_floor()) {
    finish();
    return best;
  }

  const BufferSize residual = bs - pair.intermediate_size();
  if (residual >= 2) {
    std::optional<Dataflow> df1 =
        exhaustive_side(pair.op1(), residual, mm::kTensorC, mm::kTensorA, mm::kTensorB, mode);
    std::optional<Dataflow> df2 = exhaustive_side(pair.op2(), residual, 0, 1, 2, mode);
    if (df1 && df2) {
      ResidentFusedDataflow rf{*df1, *df2};
      FusedAccess a = evaluate_resident(pair, rf);
      if (a.buffer_footprint <= bs && (!best || a.total < best->access.total)) {
        best = FusedSearchResult{std::nullopt, rf, a};
      }
    }
  }
  finish();
  return best;
}

}  // namespace fusecu
