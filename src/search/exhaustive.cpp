#include "search/exhaustive.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "obs/timer.hpp"

namespace fusecu {

namespace {

const std::vector<std::vector<int>>& all_orders3() {
  static const std::vector<std::vector<int>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  return orders;
}

/// Best dataflow on one side of a resident fusion: minimize MA excluding the
/// intermediate, with the intermediate's full size already reserved.
std::optional<Dataflow> exhaustive_side(const TensorOp& op, BufferSize budget,
                                        int exclude_tensor, int other_a, int other_b) {
  std::optional<Dataflow> best;
  AccessCount best_ma = 0;
  std::vector<std::vector<Index>> cands;
  for (int d = 0; d < 3; ++d) cands.push_back(tile_candidates(op.extent(d)));
  Dataflow df;
  df.tile.assign(3, 1);
  for (const auto& order : all_orders3()) {
    df.loop_order = order;
    for (Index t0 : cands[0]) {
      for (Index t1 : cands[1]) {
        for (Index t2 : cands[2]) {
          df.tile = {t0, t1, t2};
          const Index fp = df.tensor_tile_size(op, other_a) + df.tensor_tile_size(op, other_b);
          if (fp > budget) continue;
          AccessBreakdown b = evaluate_access(op, df);
          AccessCount ma = b.total - b.per_tensor[static_cast<std::size_t>(exclude_tensor)];
          if (!best || ma < best_ma) {
            best = df;
            best_ma = ma;
          }
        }
      }
    }
  }
  return best;
}

}  // namespace

std::optional<IntraSearchResult> exhaustive_intra(const TensorOp& op, BufferSize bs) {
  FCU_CHECK(op.num_dims() == 3, "exhaustive_intra currently targets 3-dim operators");
  ScopedTimer timer("exhaustive_intra");
  std::int64_t evaluations = 0;
  std::vector<std::vector<Index>> cands;
  for (int d = 0; d < 3; ++d) cands.push_back(tile_candidates(op.extent(d)));

  std::optional<IntraSearchResult> best;
  Dataflow df;
  df.tile.assign(3, 1);
  for (const auto& order : all_orders3()) {
    df.loop_order = order;
    for (Index t0 : cands[0]) {
      for (Index t1 : cands[1]) {
        for (Index t2 : cands[2]) {
          df.tile = {t0, t1, t2};
          if (df.buffer_footprint(op) > bs) continue;
          ++evaluations;
          AccessBreakdown b = evaluate_access(op, df);
          if (!best || b.total < best->access.total ||
              (b.total == best->access.total &&
               b.buffer_footprint < best->access.buffer_footprint)) {
            best = IntraSearchResult{df, b};
          }
        }
      }
    }
  }
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("search/exhaustive_intra/calls").add();
  reg.counter("search/exhaustive_intra/evaluations").add(evaluations);
  const double elapsed = timer.elapsed_seconds();
  if (elapsed > 0.0) {
    reg.gauge("search/exhaustive_intra/evaluations_per_sec")
        .set(static_cast<double>(evaluations) / elapsed);
  }
  return best;
}

std::optional<FusedSearchResult> exhaustive_fused(const FusedPair& pair, BufferSize bs) {
  ScopedTimer timer("exhaustive_fused");
  std::int64_t evaluations = 0;
  std::optional<FusedSearchResult> best;

  const std::vector<Index> cm = tile_candidates(pair.m());
  const std::vector<Index> ck = tile_candidates(pair.k());
  const std::vector<Index> cl = tile_candidates(pair.l());
  const std::vector<Index> cn = tile_candidates(pair.n());

  PhasedFusedDataflow df;
  for (bool l_outer : {false, true}) {
    df.l_outer = l_outer;
    for (Index t_m : cm) {
      for (Index t_k : ck) {
        for (Index t_l : cl) {
          // Footprint is monotone in t_n; prune before the inner loop.
          if (t_m * t_k + t_k * t_l + t_m * t_l + t_l + t_m > bs) continue;
          for (Index t_n : cn) {
            df.t_m = t_m;
            df.t_k = t_k;
            df.t_l = t_l;
            df.t_n = t_n;
            ++evaluations;
            FusedAccess a = evaluate_phased(pair, df);
            if (a.buffer_footprint > bs) break;  // t_n ascending
            if (!best || a.total < best->access.total) {
              best = FusedSearchResult{df, std::nullopt, a};
            }
          }
        }
      }
    }
  }

  const BufferSize residual = bs - pair.intermediate_size();
  if (residual >= 2) {
    std::optional<Dataflow> df1 =
        exhaustive_side(pair.op1(), residual, mm::kTensorC, mm::kTensorA, mm::kTensorB);
    std::optional<Dataflow> df2 = exhaustive_side(pair.op2(), residual, 0, 1, 2);
    if (df1 && df2) {
      ResidentFusedDataflow rf{*df1, *df2};
      FusedAccess a = evaluate_resident(pair, rf);
      if (a.buffer_footprint <= bs && (!best || a.total < best->access.total)) {
        best = FusedSearchResult{std::nullopt, rf, a};
      }
    }
  }
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("search/exhaustive_fused/calls").add();
  reg.counter("search/exhaustive_fused/evaluations").add(evaluations);
  return best;
}

}  // namespace fusecu
