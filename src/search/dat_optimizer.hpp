#pragma once

#include "fusion/fusion_planner.hpp"
#include "search/genetic.hpp"

/// \file dat_optimizer.hpp
/// Facade reconstructing the DAT [15] searching-based optimizer used as the
/// paper's state-of-the-art comparison point (Fig. 9): genetic-algorithm
/// search over the full intra- and inter-operator tiling & scheduling space,
/// with fusion decisions taken by evaluated cost (never by principle).  An
/// optional exhaustive refinement mimics DAT's MIP polishing on small
/// operators.

namespace fusecu {

struct DatParams {
  GaParams ga;
  /// Also run exhaustive search and keep the better result when the
  /// operator's tile space is small enough (candidate-product bound).
  bool exhaustive_refinement = false;
  std::int64_t exhaustive_space_limit = 2'000'000;
  std::uint64_t seed = 0x5eed;
};

class DatOptimizer {
 public:
  explicit DatOptimizer(DatParams params = {});

  /// Searched intra-operator dataflow.
  std::optional<IntraSearchResult> optimize_intra(const TensorOp& op, BufferSize bs) const;

  /// Searched fused dataflow for one pair.
  std::optional<FusedSearchResult> optimize_pair(const FusedPair& pair, BufferSize bs) const;

  /// Chain partitioning with searched group costs (fuse a pair whenever the
  /// searched fused MA beats the searched unfused sum).
  FusionPlan plan_chain(const OperatorGraph& graph, BufferSize bs) const;

 private:
  DatParams params_;
};

}  // namespace fusecu
