#pragma once

#include "search/exhaustive.hpp"

/// \file annealing.hpp
/// Simulated-annealing dataflow search — a second searching baseline next
/// to the genetic algorithm, for the Fig. 9-style validation (several DSE
/// frameworks in the paper's Table I use stochastic local search).  The
/// neighborhood perturbs one decision at a time: swap two loop levels or
/// step one tile size along its candidate ladder.

namespace fusecu {

struct SaParams {
  int iterations = 4000;
  double initial_temperature = 1.0;   ///< relative to the initial cost
  double cooling = 0.999;             ///< geometric per-iteration factor
};

/// Anneal over the intra-operator space; nullopt when no feasible start is
/// found after a bounded number of restarts.
std::optional<IntraSearchResult> sa_intra(const TensorOp& op, BufferSize bs,
                                          const SaParams& params, std::uint64_t seed);

}  // namespace fusecu
