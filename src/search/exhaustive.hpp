#pragma once

#include <optional>

#include "fusion/fused_pair.hpp"

/// \file exhaustive.hpp
/// Brute-force searching-based DSE over the full tiling & scheduling space.
///
/// This is the ground-truth oracle the property tests hold the principles
/// against: for an intra-op dataflow it enumerates all 6 loop orders and all
/// tile-size combinations drawn from divisors plus the power-of-two ladder;
/// for a fused pair it enumerates both shared loop orders, the 4-dimensional
/// tile cross-product, and the decoupled resident-intermediate family.
/// Exhaustive search is exponential in operator count — exactly the
/// scalability problem (Sec. I) the principles remove.

namespace fusecu {

/// An intra-operator search outcome.
struct IntraSearchResult {
  Dataflow dataflow;
  AccessBreakdown access;
};

/// Best dataflow for (op, bs) over the full space; nullopt when nothing fits
/// the buffer.
std::optional<IntraSearchResult> exhaustive_intra(const TensorOp& op, BufferSize bs);

/// A fused-pair search outcome.
struct FusedSearchResult {
  std::optional<PhasedFusedDataflow> phased;
  std::optional<ResidentFusedDataflow> resident;
  FusedAccess access;
};

/// Best fused dataflow over phased x orders x tiles plus the resident
/// family; nullopt when no fused configuration fits.
std::optional<FusedSearchResult> exhaustive_fused(const FusedPair& pair, BufferSize bs);

}  // namespace fusecu
