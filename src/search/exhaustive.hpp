#pragma once

#include <optional>

#include "fusion/fused_pair.hpp"

/// \file exhaustive.hpp
/// Brute-force searching-based DSE over the full tiling & scheduling space.
///
/// This is the ground-truth oracle the property tests hold the principles
/// against: for an intra-op dataflow it enumerates all 6 loop orders and all
/// tile-size combinations drawn from divisors plus the power-of-two ladder;
/// for a fused pair it enumerates both shared loop orders, the 4-dimensional
/// tile cross-product, and the decoupled resident-intermediate family.
/// Exhaustive search is exponential in operator count — exactly the
/// scalability problem (Sec. I) the principles remove.
///
/// Pruning (kPruned, the default) keeps the oracle exact while skipping
/// most of the grid:
///
///  * **footprint-monotone breaks** — every candidate list is ascending and
///    every footprint is monotone non-decreasing in each tile axis, so the
///    first over-budget tuple at any loop level ends that level (probed
///    with the remaining axes at their minimum candidates);
///  * **admissible floor early-exit** — intra_traffic_lower_bound (Dinh &
///    Demmel) never exceeds the true optimum, so once the incumbent meets
///    it no later candidate can be *strictly* better; remaining candidates
///    are visited only if they could still win the footprint tie-break
///    (intra), or not at all (fused/side, whose tie-break is first-wins on
///    the primary key alone).
///
/// Both rules only skip candidates that provably cannot change the argmin
/// under the exact iteration order, so kPruned returns byte-identical plans
/// to kFull (enforced by tests/search_prune_test.cpp).  Skipped tuples are
/// counted in the "search/exhaustive_pruned_evals" metric.

namespace fusecu {

/// Search strategy knob: kFull is the naive reference enumeration, kPruned
/// the production oracle (identical results, provably).
enum class ExhaustiveMode {
  kPruned,
  kFull,
};

/// An intra-operator search outcome.
struct IntraSearchResult {
  Dataflow dataflow;
  AccessBreakdown access;
};

/// Best dataflow for (op, bs) over the full space; nullopt when nothing fits
/// the buffer.
std::optional<IntraSearchResult> exhaustive_intra(const TensorOp& op, BufferSize bs,
                                                  ExhaustiveMode mode = ExhaustiveMode::kPruned);

/// A fused-pair search outcome.
struct FusedSearchResult {
  std::optional<PhasedFusedDataflow> phased;
  std::optional<ResidentFusedDataflow> resident;
  FusedAccess access;
};

/// Best fused dataflow over phased x orders x tiles plus the resident
/// family; nullopt when no fused configuration fits.
std::optional<FusedSearchResult> exhaustive_fused(const FusedPair& pair, BufferSize bs,
                                                  ExhaustiveMode mode = ExhaustiveMode::kPruned);

}  // namespace fusecu
