#include "search/dat_optimizer.hpp"

#include <limits>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "obs/timer.hpp"

namespace fusecu {

namespace {

std::int64_t intra_space_size(const TensorOp& op) {
  std::int64_t size = 6;
  for (int d = 0; d < op.num_dims(); ++d) {
    size *= static_cast<std::int64_t>(tile_candidates(op.extent(d)).size());
  }
  return size;
}

std::int64_t fused_space_size(const FusedPair& pair) {
  return 2 * static_cast<std::int64_t>(tile_candidates(pair.m()).size()) *
         static_cast<std::int64_t>(tile_candidates(pair.k()).size()) *
         static_cast<std::int64_t>(tile_candidates(pair.l()).size()) *
         static_cast<std::int64_t>(tile_candidates(pair.n()).size());
}

}  // namespace

DatOptimizer::DatOptimizer(DatParams params) : params_(params) {}

std::optional<IntraSearchResult> DatOptimizer::optimize_intra(const TensorOp& op,
                                                              BufferSize bs) const {
  ScopedTimer timer("dat_optimize_intra");
  std::optional<IntraSearchResult> best = ga_intra(op, bs, params_.ga, params_.seed);
  if (params_.exhaustive_refinement && intra_space_size(op) <= params_.exhaustive_space_limit) {
    std::optional<IntraSearchResult> exact = exhaustive_intra(op, bs);
    if (exact && (!best || exact->access.total < best->access.total)) best = exact;
  }
  return best;
}

std::optional<FusedSearchResult> DatOptimizer::optimize_pair(const FusedPair& pair,
                                                             BufferSize bs) const {
  ScopedTimer timer("dat_optimize_pair");
  std::optional<FusedSearchResult> best = ga_fused(pair, bs, params_.ga, params_.seed);
  if (params_.exhaustive_refinement && fused_space_size(pair) <= params_.exhaustive_space_limit) {
    std::optional<FusedSearchResult> exact = exhaustive_fused(pair, bs);
    if (exact && (!best || exact->access.total < best->access.total)) best = exact;
  }
  return best;
}

FusionPlan DatOptimizer::plan_chain(const OperatorGraph& graph, BufferSize bs) const {
  FCU_CHECK(graph.num_ops() >= 1, "empty chain");
  FCU_CHECK(graph.is_linear_chain(), "DAT planner requires a linear operator chain");
  ScopedTimer timer("dat_plan_chain");

  const int n = graph.num_ops();
  constexpr AccessCount kInf = std::numeric_limits<AccessCount>::max() / 4;

  std::vector<AccessCount> solo(static_cast<std::size_t>(n), kInf);
  std::vector<AccessCount> paired(static_cast<std::size_t>(n), kInf);
  for (int i = 0; i < n; ++i) {
    if (auto r = optimize_intra(graph.op(i), bs)) solo[static_cast<std::size_t>(i)] = r->access.total;
    FCU_CHECK(solo[static_cast<std::size_t>(i)] < kInf,
              "buffer too small for op " + graph.op(i).name());
  }
  for (int i = 0; i + 1 < n; ++i) {
    std::optional<FusedPair> pair = try_make_fused_pair(graph.op(i), graph.op(i + 1));
    if (!pair) continue;
    if (auto r = optimize_pair(*pair, bs)) paired[static_cast<std::size_t>(i)] = r->access.total;
  }

  std::vector<AccessCount> dp(static_cast<std::size_t>(n) + 1, kInf);
  std::vector<int> choice(static_cast<std::size_t>(n) + 1, 0);
  dp[0] = 0;
  for (int i = 1; i <= n; ++i) {
    dp[static_cast<std::size_t>(i)] = dp[static_cast<std::size_t>(i - 1)] + solo[static_cast<std::size_t>(i - 1)];
    choice[static_cast<std::size_t>(i)] = 1;
    if (i >= 2 && paired[static_cast<std::size_t>(i - 2)] < kInf) {
      AccessCount fused_total = dp[static_cast<std::size_t>(i - 2)] + paired[static_cast<std::size_t>(i - 2)];
      if (fused_total < dp[static_cast<std::size_t>(i)]) {
        dp[static_cast<std::size_t>(i)] = fused_total;
        choice[static_cast<std::size_t>(i)] = 2;
      }
    }
  }

  FusionPlan plan;
  plan.total_access = dp[static_cast<std::size_t>(n)];
  std::vector<PlanStep> reversed;
  for (int i = n; i > 0;) {
    if (choice[static_cast<std::size_t>(i)] == 2) {
      reversed.push_back({{i - 2, i - 1}, paired[static_cast<std::size_t>(i - 2)], "searched fused"});
      i -= 2;
    } else {
      reversed.push_back({{i - 1}, solo[static_cast<std::size_t>(i - 1)], "searched solo"});
      i -= 1;
    }
  }
  plan.steps.assign(reversed.rbegin(), reversed.rend());
  return plan;
}

}  // namespace fusecu
