#include "obs/log.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/json_writer.hpp"
#include "common/timeutil.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/span.hpp"

namespace fusecu {

namespace {

std::string hex_id(std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return std::string(buf);
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "off";
}

std::optional<LogLevel> parse_log_level(const std::string& text) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
                         LogLevel::kOff}) {
    if (text == log_level_name(level)) return level;
  }
  return std::nullopt;
}

Logger& Logger::global() {
  static Logger* instance = new Logger();  // never destroyed
  return *instance;
}

void Logger::recompute_threshold() {
  int threshold = sink_threshold_.load(std::memory_order_relaxed);
  if (mirror_to_flight_.load(std::memory_order_relaxed)) {
    threshold = std::min(threshold, static_cast<int>(LogLevel::kInfo));
  }
  effective_threshold_.store(threshold, std::memory_order_relaxed);
}

void Logger::configure(LogLevel level, std::shared_ptr<std::ostream> sink) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = std::move(sink);
    sink_threshold_.store(sink_ ? static_cast<int>(level) : static_cast<int>(LogLevel::kOff),
                          std::memory_order_relaxed);
  }
  recompute_threshold();
}

void Logger::reset() { configure(LogLevel::kOff, nullptr); }

void Logger::set_mirror_to_flight(bool mirror) {
  mirror_to_flight_.store(mirror, std::memory_order_relaxed);
  recompute_threshold();
}

void Logger::log(LogLevel level, const char* component, std::string_view message,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level) || level == LogLevel::kOff) return;
  const std::int64_t ts_us = span_clock_us();
  const SpanContext span = current_span();
  const std::string msg(message);

  if (mirror_to_flight_.load(std::memory_order_relaxed) && level >= LogLevel::kInfo) {
    FlightRecorder& flight = FlightRecorder::global();
    if (flight.armed()) flight.record_log(static_cast<int>(level), component, msg, span, ts_us);
  }

  if (static_cast<int>(level) < sink_threshold_.load(std::memory_order_relaxed)) return;

  // Build the full line outside the lock; emit it in one write so lines
  // from concurrent workers never interleave mid-line.
  std::ostringstream line;
  line << "{\"time\":\"" << rfc3339_utc_now() << "\",\"ts_us\":" << ts_us << ",\"level\":\""
       << log_level_name(level) << "\",\"component\":\"" << JsonWriter::escape(component)
       << "\",\"thread\":" << obs_thread_index();
  if (span.valid()) {
    line << ",\"trace\":\"" << hex_id(span.trace_id) << "\",\"span\":\"" << hex_id(span.span_id)
         << "\"";
  }
  line << ",\"msg\":\"" << JsonWriter::escape(msg) << "\"";
  for (const LogField& field : fields) {
    line << ",\"" << JsonWriter::escape(field.key) << "\":\"" << JsonWriter::escape(field.value)
         << "\"";
  }
  line << "}\n";

  std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    *sink_ << line.str();
    sink_->flush();
  }
}

}  // namespace fusecu
