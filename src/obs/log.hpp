#pragma once

#include <atomic>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

/// \file log.hpp
/// Leveled structured logging with a JSONL sink.
///
/// One process-wide `Logger`, configured by `ObsSession` from the shared
/// `--log-out FILE` / `--log-level LEVEL` flags, replaces the ad-hoc
/// `stderr` writes the serve / check / search tools used to make.  Every
/// line is one JSON object:
///
///   {"time":"2026-08-08T14:03:07Z","ts_us":18234,"level":"info",
///    "component":"serve","thread":2,"trace":"9f41...","span":"03ab...",
///    "msg":"request failed","id":"r17"}
///
/// * `ts_us` is the span clock (obs/span.hpp), so log lines interleave
///   consistently with span records in traces and flight-recorder dumps.
/// * `trace`/`span` are present when the calling thread has an ambient
///   span — log lines attach themselves to the request being served.
/// * Extra key/value fields are appended flat after `msg`.
///
/// Cost when disabled: `enabled()` is one relaxed atomic load, and the
/// `log_*` helpers check it before anything else, so a disabled call site
/// costs the argument evaluation only.  Call sites with expensive messages
/// should guard themselves:
///
///   if (Logger::global().enabled(LogLevel::kDebug))
///     log_debug("serve", "slow path: " + expensive());
///
/// When the flight recorder is armed, log lines at `kInfo` and above are
/// also mirrored into the per-thread rings even if no sink is configured,
/// so a crash dump carries the most recent log context.

namespace fusecu {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Lowercase level name ("debug", "info", "warn", "error", "off").
const char* log_level_name(LogLevel level);

/// Parse a level name (case-sensitive, the names above); nullopt on junk.
std::optional<LogLevel> parse_log_level(const std::string& text);

/// One structured field; values are emitted as JSON strings.
struct LogField {
  const char* key;
  std::string value;
};

class Logger {
 public:
  static Logger& global();

  /// Route lines at \p level and above to \p sink (JSONL).  The sink is
  /// shared so the logger can outlive the configuring scope; pass nullptr
  /// to detach.  Thread-safe.
  void configure(LogLevel level, std::shared_ptr<std::ostream> sink);

  /// Detach the sink and stop emitting (flight-recorder mirroring, when
  /// armed, continues).
  void reset();

  /// Would a line at \p level go anywhere (sink or flight recorder)?
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= effective_threshold_.load(std::memory_order_relaxed);
  }

  LogLevel sink_level() const {
    return static_cast<LogLevel>(sink_threshold_.load(std::memory_order_relaxed));
  }

  /// Emit one structured line.  Thread-safe; cheap no-op below threshold.
  void log(LogLevel level, const char* component, std::string_view message,
           std::initializer_list<LogField> fields = {});

  /// Flight-recorder arming hook: lines at kInfo+ mirror into the rings
  /// while armed.  Called by FlightRecorder::arm()/disarm().
  void set_mirror_to_flight(bool mirror);

 private:
  void recompute_threshold();

  std::atomic<int> sink_threshold_{static_cast<int>(LogLevel::kOff)};
  std::atomic<int> effective_threshold_{static_cast<int>(LogLevel::kOff)};
  std::atomic<bool> mirror_to_flight_{false};
  std::mutex mu_;
  std::shared_ptr<std::ostream> sink_;
};

inline void log_debug(const char* component, std::string_view message,
                      std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::global();
  if (logger.enabled(LogLevel::kDebug)) logger.log(LogLevel::kDebug, component, message, fields);
}

inline void log_info(const char* component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::global();
  if (logger.enabled(LogLevel::kInfo)) logger.log(LogLevel::kInfo, component, message, fields);
}

inline void log_warn(const char* component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::global();
  if (logger.enabled(LogLevel::kWarn)) logger.log(LogLevel::kWarn, component, message, fields);
}

inline void log_error(const char* component, std::string_view message,
                      std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::global();
  if (logger.enabled(LogLevel::kError)) logger.log(LogLevel::kError, component, message, fields);
}

}  // namespace fusecu
