#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

/// \file obs_session.hpp
/// Shared observability CLI surface for every tool binary.
///
/// Each example and bench binary accepts these extra flags:
///
///   --metrics-out FILE   write the global metrics registry on exit
///                        (JSON by default, CSV when FILE ends in .csv)
///   --trace-out FILE     write the session's chrome-tracing / Perfetto
///                        trace on exit; also installs the span sink, so
///                        per-request span trees (obs/span.hpp) land in
///                        the same trace
///   --bench-out FILE     write a machine-readable benchmark summary on
///                        exit: {"tool", "wall_seconds", "values": {...}}
///                        where values holds whatever the tool reported via
///                        record_bench_value() — the repo's perf-trajectory
///                        format (CI archives BENCH_*.json artifacts)
///   --log-out FILE       structured JSONL log sink (obs/log.hpp)
///   --log-level LEVEL    debug|info|warn|error|off; with --log-out the
///                        sink threshold (default info), without it the
///                        lines go to stderr
///   --flight-out FILE    arm the flight recorder (obs/flight_recorder.hpp)
///                        and install the fatal-signal crash handler
///                        dumping the last spans/logs/metrics to FILE;
///                        tools may also dump there on their own failure
///                        paths (fusecu_check does, per failing trial)
///
/// ObsSession strips these flags from argv *before* the tool's own parser
/// runs (so binaries with strict unknown-option handling keep working),
/// owns the session TraceRecorder, and flushes the outputs on destruction:
///
///   int main(int argc, char** argv) {
///     ObsSession obs(argc, argv);
///     ...
///     simulate_timeline(op, df, arch, 1.0, obs.trace());  // null if unused
///   }

namespace fusecu {

struct ObsOptions {
  std::optional<std::string> metrics_out;
  std::optional<std::string> trace_out;
  std::optional<std::string> bench_out;
  std::optional<std::string> log_out;
  std::optional<std::string> log_level;
  std::optional<std::string> flight_out;
  std::string tool;  ///< argv[0] basename, stamped into the bench summary
};

/// Remove the shared observability flags (also the `--flag=X` form) from
/// argv in place, updating argc.  Throws std::invalid_argument when a flag
/// is present without a value.
ObsOptions extract_obs_options(int& argc, char** argv);

class ObsSession {
 public:
  ObsSession(int& argc, char** argv, std::size_t trace_capacity = 1 << 20);
  explicit ObsSession(ObsOptions options, std::size_t trace_capacity = 1 << 20);
  /// Flushes pending outputs; failures are reported on stderr, not thrown.
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool metrics_enabled() const { return options_.metrics_out.has_value(); }
  bool trace_enabled() const { return options_.trace_out.has_value(); }
  bool bench_enabled() const { return options_.bench_out.has_value(); }
  bool log_enabled() const {
    return options_.log_out.has_value() || options_.log_level.has_value();
  }
  bool flight_enabled() const { return options_.flight_out.has_value(); }
  /// Path passed to --flight-out (empty when absent) — tools that dump the
  /// flight recorder on their own failure paths write here.
  const std::string& flight_out() const {
    static const std::string kEmpty;
    return options_.flight_out ? *options_.flight_out : kEmpty;
  }

  /// Report one named benchmark number (a seconds value, a speedup ratio, a
  /// throughput figure — the name should say which).  Values are written to
  /// --bench-out on flush, in insertion order; re-recording a name
  /// overwrites it.  Cheap no-op storage when --bench-out is absent.
  void record_bench_value(const std::string& name, double value);

  /// The session recorder when tracing was requested, nullptr otherwise —
  /// shaped to pass straight into the simulators' trace parameter.
  TraceRecorder* trace() { return trace_enabled() ? &recorder_ : nullptr; }
  /// Always-valid recorder (records are simply never written when tracing
  /// is off).
  TraceRecorder& recorder() { return recorder_; }

  /// Write the requested outputs now (idempotent; the destructor calls it).
  /// Throws on I/O failure when called explicitly.
  void flush();

 private:
  ObsOptions options_;
  TraceRecorder recorder_;
  std::unique_ptr<TraceSpanSink> span_sink_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> bench_values_;
  bool flushed_ = false;
};

}  // namespace fusecu
