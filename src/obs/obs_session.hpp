#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/trace.hpp"

/// \file obs_session.hpp
/// Shared observability CLI surface for every tool binary.
///
/// Each example and bench binary accepts two extra flags:
///
///   --metrics-out FILE   write the global metrics registry on exit
///                        (JSON by default, CSV when FILE ends in .csv)
///   --trace-out FILE     write the session's chrome-tracing / Perfetto
///                        trace on exit
///   --bench-out FILE     write a machine-readable benchmark summary on
///                        exit: {"tool", "wall_seconds", "values": {...}}
///                        where values holds whatever the tool reported via
///                        record_bench_value() — the repo's perf-trajectory
///                        format (CI archives BENCH_*.json artifacts)
///
/// ObsSession strips these flags from argv *before* the tool's own parser
/// runs (so binaries with strict unknown-option handling keep working),
/// owns the session TraceRecorder, and flushes both outputs on destruction:
///
///   int main(int argc, char** argv) {
///     ObsSession obs(argc, argv);
///     ...
///     simulate_timeline(op, df, arch, 1.0, obs.trace());  // null if unused
///   }

namespace fusecu {

struct ObsOptions {
  std::optional<std::string> metrics_out;
  std::optional<std::string> trace_out;
  std::optional<std::string> bench_out;
  std::string tool;  ///< argv[0] basename, stamped into the bench summary
};

/// Remove `--metrics-out X` / `--trace-out X` / `--bench-out X` (also the
/// `--flag=X` form) from argv in place, updating argc.  Throws
/// std::invalid_argument when a flag is present without a value.
ObsOptions extract_obs_options(int& argc, char** argv);

class ObsSession {
 public:
  ObsSession(int& argc, char** argv, std::size_t trace_capacity = 1 << 20);
  explicit ObsSession(ObsOptions options, std::size_t trace_capacity = 1 << 20);
  /// Flushes pending outputs; failures are reported on stderr, not thrown.
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool metrics_enabled() const { return options_.metrics_out.has_value(); }
  bool trace_enabled() const { return options_.trace_out.has_value(); }
  bool bench_enabled() const { return options_.bench_out.has_value(); }

  /// Report one named benchmark number (a seconds value, a speedup ratio, a
  /// throughput figure — the name should say which).  Values are written to
  /// --bench-out on flush, in insertion order; re-recording a name
  /// overwrites it.  Cheap no-op storage when --bench-out is absent.
  void record_bench_value(const std::string& name, double value);

  /// The session recorder when tracing was requested, nullptr otherwise —
  /// shaped to pass straight into the simulators' trace parameter.
  TraceRecorder* trace() { return trace_enabled() ? &recorder_ : nullptr; }
  /// Always-valid recorder (records are simply never written when tracing
  /// is off).
  TraceRecorder& recorder() { return recorder_; }

  /// Write the requested outputs now (idempotent; the destructor calls it).
  /// Throws on I/O failure when called explicitly.
  void flush();

 private:
  ObsOptions options_;
  TraceRecorder recorder_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> bench_values_;
  bool flushed_ = false;
};

}  // namespace fusecu
