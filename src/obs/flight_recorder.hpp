#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/span.hpp"

/// \file flight_recorder.hpp
/// Crash-safe flight recorder: lock-free per-thread ring buffers retaining
/// the last N span and log events, dumpable
///
///   * as JSON (with a full metrics snapshot) by `fusecu_check` when a
///     conformance trial fails — so every shrunk repro ships with the
///     telemetry of the run that produced it; and
///   * over a pre-opened fd by a fatal-signal handler — so a crashed or
///     wedged worker leaves its last moments behind.
///
/// Concurrency: each thread writes only its own ring (selected by
/// obs_thread_index()), so recording is wait-free and unsynchronized; the
/// write index is a relaxed atomic and records carry a global sequence
/// number so a dump interleaves events from all threads in order.  Reading
/// a ring while its owner is mid-crash can observe a torn record; dumps are
/// diagnostics, not ground truth, and a torn tail record is acceptable.
///
/// Async-signal-safety of the crash path, by construction:
///
///   * the output fd is opened when the handler is installed (no open(2)
///     in the handler);
///   * the rings and the metrics index are allocated when the recorder is
///     armed (no allocation in the handler);
///   * formatting uses a local integer formatter into a stack buffer and
///     write(2) only (no stdio, no locks);
///   * the metrics index holds direct pointers to registry counters and
///     gauges (relaxed atomics) captured under `MetricsRegistry::
///     clear_epoch()`; if the registry was cleared after capture the
///     handler skips the metrics section instead of dereferencing stale
///     pointers.  Histograms are mutex-guarded and therefore excluded from
///     the signal path (the JSON dump includes them).
///
/// Arming also tells the Logger to mirror kInfo+ lines into the rings, so
/// a dump carries log context even when no `--log-out` sink is configured.

namespace fusecu {

/// One retained event, fixed-size so recording never allocates.
struct FlightEvent {
  static constexpr std::size_t kNameCap = 48;
  static constexpr std::size_t kDetailCap = 112;

  std::uint64_t seq = 0;  ///< global order across threads (0 = empty slot)
  std::int64_t t_us = 0;  ///< span start / log timestamp (span clock)
  std::int64_t duration_us = 0;  ///< spans only
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint8_t kind = 0;   ///< 0 = span, 1 = log
  std::uint8_t level = 0;  ///< logs: LogLevel as int
  std::uint16_t thread = 0;
  char name[kNameCap] = {};      ///< span name / log component (truncated)
  char detail[kDetailCap] = {};  ///< span detail / log message (truncated)
};

class FlightRecorder {
 public:
  static constexpr int kMaxThreads = 64;

  static FlightRecorder& global();

  /// Allocate the rings (\p events_per_thread slots per thread, rounded up
  /// to 16) and start retaining events.  Idempotent; the ring capacity is
  /// fixed by the first arm() — the rings are never freed or reallocated,
  /// so recording threads can race arm()/disarm() safely.
  void arm(std::size_t events_per_thread = 256);
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }
  std::size_t events_per_thread() const { return ring_capacity_; }

  /// Retain one finished span (called by the span layer when armed).
  void record_span(const SpanRecord& span);
  /// Retain one log line (called by the Logger when armed).
  void record_log(int level, const char* component, const std::string& message, SpanContext span,
                  std::int64_t ts_us);

  /// Total events ever recorded and how many were overwritten (retention
  /// window overflow), across all threads.
  std::uint64_t recorded() const;
  std::uint64_t overwritten() const;

  /// Full JSON dump: {"exported_at":..., "events":[...], "metrics":{...}}.
  /// Events are merged across threads in sequence order.  NOT async-signal
  /// safe (allocates, takes the registry lock for the metrics snapshot).
  void dump_json(std::ostream& os) const;

  /// Async-signal-safe dump to \p fd: one text line per event plus the
  /// captured counter/gauge values.  Uses write(2) only.
  void dump_signal_safe(int fd) const;

  /// Re-capture the counter/gauge pointer index used by the signal path
  /// (called by arm(); call again after registering new metrics that the
  /// crash dump should include).
  void refresh_metrics_index();

  /// Install a fatal-signal handler (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL)
  /// that dumps to \p path via a fd opened *now*.  Arms the recorder if it
  /// is not armed yet.  Returns false when the file cannot be opened.
  /// Only the first installation wins; later calls re-point the fd.
  bool install_crash_handler(const std::string& path);
  /// The pre-opened crash-dump fd (-1 when no handler is installed) —
  /// exposed so tests can assert the handler has nothing left to open.
  int crash_fd() const;

 private:
  struct ThreadRing {
    std::atomic<std::uint64_t> head{0};  ///< next slot ordinal (monotonic)
    std::vector<FlightEvent> slots;
  };

  FlightEvent* claim_slot(int thread_index, std::uint64_t* seq_out);
  void refresh_metrics_index_locked();

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> next_seq_{1};
  std::size_t ring_capacity_ = 0;
  std::unique_ptr<ThreadRing[]> rings_;  ///< kMaxThreads entries when armed
  mutable std::mutex arm_mu_;            ///< guards arm/disarm/index rebuild

  /// Signal-path metrics index: raw pointers + the registry epoch they
  /// were captured under.
  struct MetricsIndex {
    std::vector<std::pair<std::string, const void*>> counters;  ///< Counter*
    std::vector<std::pair<std::string, const void*>> gauges;    ///< Gauge*
    std::uint64_t epoch = 0;
  };
  std::shared_ptr<const MetricsIndex> metrics_index_;
  std::atomic<const MetricsIndex*> metrics_index_raw_{nullptr};
};

}  // namespace fusecu
