#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

#include "common/json_writer.hpp"
#include "common/timeutil.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace fusecu {

namespace {

void copy_truncated(char* dst, std::size_t cap, const char* src) {
  std::size_t i = 0;
  for (; src[i] != '\0' && i + 1 < cap; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

// ---- async-signal-safe formatting helpers (no stdio, no allocation) ----

std::size_t format_u64(char* buf, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

std::size_t format_i64(char* buf, std::int64_t v) {
  if (v < 0) {
    buf[0] = '-';
    return 1 + format_u64(buf + 1, static_cast<std::uint64_t>(-(v + 1)) + 1);
  }
  return format_u64(buf, static_cast<std::uint64_t>(v));
}

std::size_t format_hex64(char* buf, std::uint64_t v) {
  static const char digits[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[15 - i] = digits[(v >> (4 * i)) & 0xf];
  }
  return 16;
}

/// Tiny line builder over a caller-provided buffer; silently truncates.
class LineBuf {
 public:
  LineBuf(char* buf, std::size_t cap) : buf_(buf), cap_(cap) {}
  void str(const char* s) {
    while (*s != '\0' && len_ + 1 < cap_) buf_[len_++] = *s++;
  }
  void u64(std::uint64_t v) {
    char tmp[20];
    append(tmp, format_u64(tmp, v));
  }
  void i64(std::int64_t v) {
    char tmp[21];
    append(tmp, format_i64(tmp, v));
  }
  void hex64(std::uint64_t v) {
    char tmp[16];
    append(tmp, format_hex64(tmp, v));
  }
  const char* data() const { return buf_; }
  std::size_t size() const { return len_; }
  void clear() { len_ = 0; }

 private:
  void append(const char* s, std::size_t n) {
    for (std::size_t i = 0; i < n && len_ + 1 < cap_; ++i) buf_[len_++] = s[i];
  }
  char* buf_;
  std::size_t cap_;
  std::size_t len_ = 0;
};

void write_all(int fd, const char* data, std::size_t len) {
#ifndef _WIN32
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) return;  // best effort; nothing sane to do in a handler
    off += static_cast<std::size_t>(n);
  }
#else
  (void)fd;
  (void)data;
  (void)len;
#endif
}

std::atomic<int> g_crash_fd{-1};

#ifndef _WIN32
void crash_handler(int signo) {
  const int fd = g_crash_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char buf[64];
    LineBuf line(buf, sizeof(buf));
    line.str("=== flight recorder crash dump (signal ");
    line.i64(signo);
    line.str(") ===\n");
    write_all(fd, line.data(), line.size());
    FlightRecorder::global().dump_signal_safe(fd);
    ::fsync(fd);
  }
  // Re-raise with the default disposition so the process still dies with
  // the original signal (handlers were installed with SA_RESETHAND).
  ::raise(signo);
}
#endif

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* instance = new FlightRecorder();  // never destroyed
  return *instance;
}

void FlightRecorder::arm(std::size_t events_per_thread) {
  std::lock_guard<std::mutex> lock(arm_mu_);
  if (rings_ == nullptr) {
    // Ring capacity is fixed by the first arm(); the rings are never freed
    // or reallocated, so recorders racing arm()/disarm() stay safe.
    const std::size_t capacity = std::max<std::size_t>(16, events_per_thread);
    auto rings = std::make_unique<ThreadRing[]>(kMaxThreads);
    for (int i = 0; i < kMaxThreads; ++i) rings[i].slots.resize(capacity);
    rings_ = std::move(rings);
    ring_capacity_ = capacity;
  }
  refresh_metrics_index_locked();
  armed_.store(true, std::memory_order_release);
  Logger::global().set_mirror_to_flight(true);
}

void FlightRecorder::disarm() {
  std::lock_guard<std::mutex> lock(arm_mu_);
  armed_.store(false, std::memory_order_release);
  Logger::global().set_mirror_to_flight(false);
}

FlightEvent* FlightRecorder::claim_slot(int thread_index, std::uint64_t* seq_out) {
  if (!armed()) return nullptr;
  ThreadRing* rings = rings_.get();
  if (rings == nullptr || ring_capacity_ == 0) return nullptr;
  const int ring_index = std::min(thread_index, kMaxThreads - 1);
  ThreadRing& ring = rings[ring_index];
  const std::uint64_t ordinal = ring.head.fetch_add(1, std::memory_order_relaxed);
  *seq_out = next_seq_.fetch_add(1, std::memory_order_relaxed);
  return &ring.slots[static_cast<std::size_t>(ordinal % ring_capacity_)];
}

void FlightRecorder::record_span(const SpanRecord& span) {
  std::uint64_t seq = 0;
  FlightEvent* slot = claim_slot(span.thread_index, &seq);
  if (slot == nullptr) return;
  FlightEvent e;
  e.seq = seq;
  e.t_us = span.start_us;
  e.duration_us = span.duration_us;
  e.trace_id = span.context.trace_id;
  e.span_id = span.context.span_id;
  e.parent_span_id = span.context.parent_span_id;
  e.kind = 0;
  e.thread = static_cast<std::uint16_t>(std::min(span.thread_index, kMaxThreads - 1));
  copy_truncated(e.name, FlightEvent::kNameCap, span.name.c_str());
  copy_truncated(e.detail, FlightEvent::kDetailCap, span.detail.c_str());
  *slot = e;
}

void FlightRecorder::record_log(int level, const char* component, const std::string& message,
                                SpanContext span, std::int64_t ts_us) {
  const int thread_index = obs_thread_index();
  std::uint64_t seq = 0;
  FlightEvent* slot = claim_slot(thread_index, &seq);
  if (slot == nullptr) return;
  FlightEvent e;
  e.seq = seq;
  e.t_us = ts_us;
  e.trace_id = span.trace_id;
  e.span_id = span.span_id;
  e.parent_span_id = span.parent_span_id;
  e.kind = 1;
  e.level = static_cast<std::uint8_t>(level);
  e.thread = static_cast<std::uint16_t>(std::min(thread_index, kMaxThreads - 1));
  copy_truncated(e.name, FlightEvent::kNameCap, component);
  copy_truncated(e.detail, FlightEvent::kDetailCap, message.c_str());
  *slot = e;
}

std::uint64_t FlightRecorder::recorded() const {
  const ThreadRing* rings = rings_.get();
  if (rings == nullptr) return 0;
  std::uint64_t total = 0;
  for (int i = 0; i < kMaxThreads; ++i) total += rings[i].head.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t FlightRecorder::overwritten() const {
  const ThreadRing* rings = rings_.get();
  if (rings == nullptr || ring_capacity_ == 0) return 0;
  std::uint64_t total = 0;
  for (int i = 0; i < kMaxThreads; ++i) {
    const std::uint64_t head = rings[i].head.load(std::memory_order_relaxed);
    if (head > ring_capacity_) total += head - ring_capacity_;
  }
  return total;
}

void FlightRecorder::dump_json(std::ostream& os) const {
  // Collect retained events from every ring and order them globally.
  std::vector<FlightEvent> events;
  const ThreadRing* rings = rings_.get();
  if (rings != nullptr && ring_capacity_ > 0) {
    for (int i = 0; i < kMaxThreads; ++i) {
      const ThreadRing& ring = rings[i];
      const std::uint64_t head = ring.head.load(std::memory_order_acquire);
      const std::uint64_t retained = std::min<std::uint64_t>(head, ring_capacity_);
      for (std::uint64_t k = 0; k < retained; ++k) {
        const FlightEvent& e = ring.slots[static_cast<std::size_t>((head - retained + k) %
                                                                   ring_capacity_)];
        if (e.seq != 0) events.push_back(e);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) { return a.seq < b.seq; });

  JsonWriter w(os);
  w.begin_object();
  w.field("exported_at", rfc3339_utc_now());
  w.field("armed", armed());
  w.field("events_per_thread", static_cast<std::int64_t>(ring_capacity_));
  w.field("recorded", static_cast<std::int64_t>(recorded()));
  w.field("overwritten", static_cast<std::int64_t>(overwritten()));
  w.key("events");
  w.begin_array();
  for (const FlightEvent& e : events) {
    w.begin_object();
    w.field("seq", static_cast<std::int64_t>(e.seq));
    w.field("kind", e.kind == 0 ? "span" : "log");
    w.field("t_us", static_cast<std::int64_t>(e.t_us));
    if (e.kind == 0) {
      w.field("dur_us", static_cast<std::int64_t>(e.duration_us));
      w.field("name", e.name);
      if (e.detail[0] != '\0') w.field("detail", e.detail);
    } else {
      w.field("level", log_level_name(static_cast<LogLevel>(e.level)));
      w.field("component", e.name);
      w.field("msg", e.detail);
    }
    w.field("thread", static_cast<std::int64_t>(e.thread));
    if (e.trace_id != 0) {
      char hex[17] = {};
      format_hex64(hex, e.trace_id);
      w.field("trace", hex);
      format_hex64(hex, e.span_id);
      w.field("span", hex);
      format_hex64(hex, e.parent_span_id);
      w.field("parent", hex);
    }
    w.end_object();
  }
  w.end_array();
  w.key("metrics");
  std::ostringstream metrics;
  MetricsRegistry::global().write_json(metrics);
  std::string metrics_json = metrics.str();
  while (!metrics_json.empty() && metrics_json.back() == '\n') metrics_json.pop_back();
  w.raw_value(metrics_json);
  w.end_object();
  os << '\n';
}

void FlightRecorder::refresh_metrics_index() {
  std::lock_guard<std::mutex> lock(arm_mu_);
  refresh_metrics_index_locked();
}

void FlightRecorder::refresh_metrics_index_locked() {
  MetricsRegistry& reg = MetricsRegistry::global();
  auto index = std::make_shared<MetricsIndex>();
  index->epoch = reg.clear_epoch();
  for (const std::string& name : reg.counter_names()) {
    index->counters.emplace_back(name, static_cast<const void*>(&reg.counter(name)));
  }
  for (const std::string& name : reg.gauge_names()) {
    index->gauges.emplace_back(name, static_cast<const void*>(&reg.gauge(name)));
  }
  metrics_index_ = index;  // keeps the vector alive for the raw pointer
  metrics_index_raw_.store(index.get(), std::memory_order_release);
}

void FlightRecorder::dump_signal_safe(int fd) const {
  char buf[512];
  LineBuf line(buf, sizeof(buf));

  const ThreadRing* rings = rings_.get();
  if (rings != nullptr && ring_capacity_ > 0) {
    for (int i = 0; i < kMaxThreads; ++i) {
      const ThreadRing& ring = rings[i];
      const std::uint64_t head = ring.head.load(std::memory_order_acquire);
      const std::uint64_t retained = std::min<std::uint64_t>(head, ring_capacity_);
      for (std::uint64_t k = 0; k < retained; ++k) {
        const FlightEvent& e = ring.slots[static_cast<std::size_t>((head - retained + k) %
                                                                   ring_capacity_)];
        if (e.seq == 0) continue;
        line.clear();
        line.str("event seq=");
        line.u64(e.seq);
        line.str(e.kind == 0 ? " kind=span name=" : " kind=log component=");
        line.str(e.name);
        line.str(" t_us=");
        line.i64(e.t_us);
        if (e.kind == 0) {
          line.str(" dur_us=");
          line.i64(e.duration_us);
        }
        if (e.trace_id != 0) {
          line.str(" trace=");
          line.hex64(e.trace_id);
          line.str(" span=");
          line.hex64(e.span_id);
          line.str(" parent=");
          line.hex64(e.parent_span_id);
        }
        line.str(" thread=");
        line.u64(e.thread);
        if (e.kind == 1 && e.detail[0] != '\0') {
          line.str(" msg=");
          line.str(e.detail);
        } else if (e.detail[0] != '\0') {
          line.str(" detail=");
          line.str(e.detail);
        }
        line.str("\n");
        write_all(fd, line.data(), line.size());
      }
    }
  }

  // Metrics: only the pre-captured counter/gauge index, and only when the
  // registry has not been cleared since capture (stale pointers otherwise).
  const MetricsIndex* index = metrics_index_raw_.load(std::memory_order_acquire);
  if (index != nullptr && index->epoch == MetricsRegistry::global().clear_epoch()) {
    for (const auto& [name, ptr] : index->counters) {
      line.clear();
      line.str("counter ");
      line.str(name.c_str());
      line.str("=");
      line.i64(static_cast<const Counter*>(ptr)->value());
      line.str("\n");
      write_all(fd, line.data(), line.size());
    }
    for (const auto& [name, ptr] : index->gauges) {
      line.clear();
      line.str("gauge ");
      line.str(name.c_str());
      line.str("=");
      // Gauges are doubles; integer-truncate rather than pulling printf
      // into the signal path.
      line.i64(static_cast<std::int64_t>(static_cast<const Gauge*>(ptr)->value()));
      line.str("\n");
      write_all(fd, line.data(), line.size());
    }
  } else {
    const char* note = "metrics skipped (registry cleared since capture)\n";
    write_all(fd, note, std::strlen(note));
  }
}

bool FlightRecorder::install_crash_handler(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  if (!armed()) arm();
  const int prev = g_crash_fd.exchange(fd, std::memory_order_acq_rel);
  if (prev >= 0) {
    ::close(prev);
    return true;  // handlers already installed; only the fd was re-pointed
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crash_handler;
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  for (int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    ::sigaction(signo, &sa, nullptr);
  }
  return true;
#else
  (void)path;
  return false;
#endif
}

int FlightRecorder::crash_fd() const { return g_crash_fd.load(std::memory_order_relaxed); }

}  // namespace fusecu
