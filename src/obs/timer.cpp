#include "obs/timer.hpp"

#include <vector>

namespace fusecu {

namespace {

/// Stack of live timer paths for this thread; back() is the innermost.
thread_local std::vector<std::string> t_timer_stack;

}  // namespace

std::string ScopedTimer::current_path() {
  return t_timer_stack.empty() ? std::string() : t_timer_stack.back();
}

ScopedTimer::ScopedTimer(MetricsRegistry& registry, std::string name)
    : registry_(registry),
      path_(t_timer_stack.empty() ? std::move(name) : t_timer_stack.back() + "/" + name),
      start_(std::chrono::steady_clock::now()) {
  t_timer_stack.push_back(path_);
}

ScopedTimer::ScopedTimer(std::string name) : ScopedTimer(MetricsRegistry::global(), std::move(name)) {}

double ScopedTimer::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

ScopedTimer::~ScopedTimer() {
  registry_.histogram("time/" + path_).observe(elapsed_seconds());
  t_timer_stack.pop_back();
}

}  // namespace fusecu
