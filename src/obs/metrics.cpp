#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/json_writer.hpp"
#include "common/timeutil.hpp"

namespace fusecu {

int Histogram::bucket_index(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;  // underflow bucket
  const double log2v = std::log2(v);
  const double scaled = (log2v - kMinExponent) * kSubBuckets;
  if (scaled <= 0.0) return 0;
  const int index = 1 + static_cast<int>(scaled);
  return std::min(index, kNumBuckets - 1);
}

double Histogram::bucket_upper_bound(int index) {
  if (index <= 0) return std::exp2(static_cast<double>(kMinExponent));
  return std::exp2(kMinExponent + static_cast<double>(index) / kSubBuckets);
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_[static_cast<std::size_t>(bucket_index(v))] += 1;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) {
  // Copy the source under its own lock first so self-merge and lock order
  // are non-issues.
  std::array<std::int64_t, kNumBuckets> src_buckets;
  std::int64_t src_count;
  double src_sum, src_min, src_max;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    src_buckets = other.buckets_;
    src_count = other.count_;
    src_sum = other.sum_;
    src_min = other.min_;
    src_max = other.max_;
  }
  if (src_count == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[static_cast<std::size_t>(i)] += src_buckets[static_cast<std::size_t>(i)];
  if (count_ == 0) {
    min_ = src_min;
    max_ = src_max;
  } else {
    min_ = std::min(min_, src_min);
    max_ = std::max(max_, src_max);
  }
  count_ += src_count;
  sum_ += src_sum;
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::quantile_locked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Rank of the target observation (1-based, nearest-rank definition).
  const std::int64_t rank =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count_))));
  std::int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      // Clamp the bucket representative into the exact observed range.
      return std::clamp(bucket_upper_bound(i), min_, max_);
    }
  }
  return max_;
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quantile_locked(q);
}

HistogramSnapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.p50 = quantile_locked(0.50);
  s.p95 = quantile_locked(0.95);
  s.p99 = quantile_locked(0.99);
  s.p999 = quantile_locked(0.999);
  return s;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  clear_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : counters_) out.push_back(name);
  return out;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : gauges_) out.push_back(name);
  return out;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : histograms_) out.push_back(name);
  return out;
}

namespace {

/// JSON cannot carry non-finite numbers; clamp degenerate summaries to 0.
double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

void write_histogram_fields(JsonWriter& w, const HistogramSnapshot& s) {
  w.field("count", static_cast<std::int64_t>(s.count));
  w.field("sum", finite_or_zero(s.sum));
  w.field("min", finite_or_zero(s.min));
  w.field("max", finite_or_zero(s.max));
  w.field("mean", finite_or_zero(s.mean()));
  w.field("p50", finite_or_zero(s.p50));
  w.field("p95", finite_or_zero(s.p95));
  w.field("p99", finite_or_zero(s.p99));
  w.field("p99.9", finite_or_zero(s.p999));
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os, std::optional<std::time_t> exported_at) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.field("exported_at", rfc3339_utc(exported_at.value_or(std::time(nullptr))));
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.field(name, static_cast<std::int64_t>(c->value()));
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, finite_or_zero(g->value()));
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    write_histogram_fields(w, h->snapshot());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

void MetricsRegistry::write_csv(std::ostream& os, std::optional<std::time_t> exported_at) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "# exported_at " << rfc3339_utc(exported_at.value_or(std::time(nullptr))) << "\n";
  os << "kind,name,count,sum,min,max,mean,p50,p95,p99,p99.9\n";
  auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", finite_or_zero(v));
    return std::string(buf);
  };
  for (const auto& [name, c] : counters_) {
    os << "counter," << name << ",1," << c->value() << ",,,,,,,\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge," << name << ",1," << num(g->value()) << ",,,,,,,\n";
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    os << "histogram," << name << "," << s.count << "," << num(s.sum) << "," << num(s.min) << ","
       << num(s.max) << "," << num(s.mean()) << "," << num(s.p50) << "," << num(s.p95) << ","
       << num(s.p99) << "," << num(s.p999) << "\n";
  }
}

}  // namespace fusecu
