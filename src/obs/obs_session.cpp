#include "obs/obs_session.hpp"

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/check.hpp"

namespace fusecu {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

ObsOptions extract_obs_options(int& argc, char** argv) {
  ObsOptions opts;
  if (argc > 0) {
    const std::string argv0 = argv[0];
    const std::size_t slash = argv0.find_last_of('/');
    opts.tool = (slash == std::string::npos) ? argv0 : argv0.substr(slash + 1);
  }
  std::vector<char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  if (argc > 0) kept.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::optional<std::string>* target = nullptr;
    std::string flag;
    for (const char* name : {"--metrics-out", "--trace-out", "--bench-out"}) {
      if (arg == name || arg.rfind(std::string(name) + "=", 0) == 0) {
        flag = name;
        target = (flag == "--metrics-out") ? &opts.metrics_out
                 : (flag == "--trace-out") ? &opts.trace_out
                                           : &opts.bench_out;
        break;
      }
    }
    if (target == nullptr) {
      kept.push_back(argv[i]);
      continue;
    }
    if (arg.size() > flag.size()) {  // --flag=value
      *target = arg.substr(flag.size() + 1);
    } else {
      FCU_CHECK(i + 1 < argc, "option " + flag + " expects a value");
      *target = argv[++i];
    }
    FCU_CHECK(!(*target)->empty(), "option " + flag + " expects a non-empty path");
  }
  for (std::size_t i = 0; i < kept.size(); ++i) argv[i] = kept[i];
  argc = static_cast<int>(kept.size());
  argv[argc] = nullptr;
  return opts;
}

ObsSession::ObsSession(int& argc, char** argv, std::size_t trace_capacity)
    : ObsSession(extract_obs_options(argc, argv), trace_capacity) {}

ObsSession::ObsSession(ObsOptions options, std::size_t trace_capacity)
    : options_(std::move(options)),
      recorder_(trace_capacity),
      start_(std::chrono::steady_clock::now()) {}

void ObsSession::record_bench_value(const std::string& name, double value) {
  if (!bench_enabled()) return;
  for (auto& entry : bench_values_) {
    if (entry.first == name) {
      entry.second = value;
      return;
    }
  }
  bench_values_.emplace_back(name, value);
}

void ObsSession::flush() {
  if (flushed_) return;
  flushed_ = true;
  if (options_.metrics_out) {
    std::ofstream out(*options_.metrics_out);
    FCU_CHECK(out.good(), "cannot open metrics output file: " + *options_.metrics_out);
    if (ends_with(*options_.metrics_out, ".csv")) {
      MetricsRegistry::global().write_csv(out);
    } else {
      MetricsRegistry::global().write_json(out);
    }
    FCU_CHECK(out.good(), "failed writing metrics to " + *options_.metrics_out);
  }
  if (options_.trace_out) {
    std::ofstream out(*options_.trace_out);
    FCU_CHECK(out.good(), "cannot open trace output file: " + *options_.trace_out);
    write_chrome_trace(out, recorder_);
    FCU_CHECK(out.good(), "failed writing trace to " + *options_.trace_out);
  }
  if (options_.bench_out) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    std::ofstream out(*options_.bench_out);
    FCU_CHECK(out.good(), "cannot open bench output file: " + *options_.bench_out);
    out << "{\n  \"tool\": \"" << options_.tool << "\",\n  \"wall_seconds\": " << wall
        << ",\n  \"values\": {";
    for (std::size_t i = 0; i < bench_values_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    \"" << bench_values_[i].first
          << "\": " << bench_values_[i].second;
    }
    out << (bench_values_.empty() ? "" : "\n  ") << "}\n}\n";
    FCU_CHECK(out.good(), "failed writing bench summary to " + *options_.bench_out);
  }
}

ObsSession::~ObsSession() {
  try {
    flush();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs: %s\n", e.what());
  }
}

}  // namespace fusecu
