#include "obs/obs_session.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "obs/flight_recorder.hpp"

namespace fusecu {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

ObsOptions extract_obs_options(int& argc, char** argv) {
  ObsOptions opts;
  if (argc > 0) {
    const std::string argv0 = argv[0];
    const std::size_t slash = argv0.find_last_of('/');
    opts.tool = (slash == std::string::npos) ? argv0 : argv0.substr(slash + 1);
  }
  std::vector<char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  if (argc > 0) kept.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::optional<std::string>* target = nullptr;
    std::string flag;
    const std::pair<const char*, std::optional<std::string>*> flags[] = {
        {"--metrics-out", &opts.metrics_out}, {"--trace-out", &opts.trace_out},
        {"--bench-out", &opts.bench_out},     {"--log-out", &opts.log_out},
        {"--log-level", &opts.log_level},     {"--flight-out", &opts.flight_out},
    };
    for (const auto& [name, slot] : flags) {
      if (arg == name || arg.rfind(std::string(name) + "=", 0) == 0) {
        flag = name;
        target = slot;
        break;
      }
    }
    if (target == nullptr) {
      kept.push_back(argv[i]);
      continue;
    }
    if (arg.size() > flag.size()) {  // --flag=value
      *target = arg.substr(flag.size() + 1);
    } else {
      FCU_CHECK(i + 1 < argc, "option " + flag + " expects a value");
      *target = argv[++i];
    }
    FCU_CHECK(!(*target)->empty(), "option " + flag + " expects a non-empty value");
  }
  for (std::size_t i = 0; i < kept.size(); ++i) argv[i] = kept[i];
  argc = static_cast<int>(kept.size());
  argv[argc] = nullptr;
  return opts;
}

ObsSession::ObsSession(int& argc, char** argv, std::size_t trace_capacity)
    : ObsSession(extract_obs_options(argc, argv), trace_capacity) {}

ObsSession::ObsSession(ObsOptions options, std::size_t trace_capacity)
    : options_(std::move(options)),
      recorder_(trace_capacity),
      start_(std::chrono::steady_clock::now()) {
  if (log_enabled()) {
    LogLevel level = LogLevel::kInfo;
    if (options_.log_level) {
      const auto parsed = parse_log_level(*options_.log_level);
      FCU_CHECK(parsed.has_value(), "unknown --log-level: " + *options_.log_level +
                                        " (expected debug|info|warn|error|off)");
      level = *parsed;
    }
    std::shared_ptr<std::ostream> sink;
    if (options_.log_out) {
      auto file = std::make_shared<std::ofstream>(*options_.log_out);
      FCU_CHECK(file->good(), "cannot open log output file: " + *options_.log_out);
      sink = file;
    } else {
      // --log-level without --log-out: human-debug mode, lines to stderr.
      sink = std::shared_ptr<std::ostream>(&std::cerr, [](std::ostream*) {});
    }
    Logger::global().configure(level, std::move(sink));
  }
  if (flight_enabled()) {
    FCU_CHECK(FlightRecorder::global().install_crash_handler(*options_.flight_out),
              "cannot open flight output file: " + *options_.flight_out);
  }
  if (trace_enabled()) {
    span_sink_ = std::make_unique<TraceSpanSink>(recorder_);
    set_span_sink(span_sink_.get());
  }
}

void ObsSession::record_bench_value(const std::string& name, double value) {
  if (!bench_enabled()) return;
  for (auto& entry : bench_values_) {
    if (entry.first == name) {
      entry.second = value;
      return;
    }
  }
  bench_values_.emplace_back(name, value);
}

void ObsSession::flush() {
  if (flushed_) return;
  flushed_ = true;
  if (span_sink_) {
    // Detach before reading the recorder so no straggler thread appends
    // while the trace is serialized; the sink object stays alive for any
    // on_span call already past the pointer load.
    set_span_sink(nullptr);
  }
  if (log_enabled()) Logger::global().reset();
  if (options_.metrics_out) {
    std::ofstream out(*options_.metrics_out);
    FCU_CHECK(out.good(), "cannot open metrics output file: " + *options_.metrics_out);
    if (ends_with(*options_.metrics_out, ".csv")) {
      MetricsRegistry::global().write_csv(out);
    } else {
      MetricsRegistry::global().write_json(out);
    }
    FCU_CHECK(out.good(), "failed writing metrics to " + *options_.metrics_out);
  }
  if (options_.trace_out) {
    std::ofstream out(*options_.trace_out);
    FCU_CHECK(out.good(), "cannot open trace output file: " + *options_.trace_out);
    write_chrome_trace(out, recorder_);
    FCU_CHECK(out.good(), "failed writing trace to " + *options_.trace_out);
  }
  if (options_.bench_out) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    std::ofstream out(*options_.bench_out);
    FCU_CHECK(out.good(), "cannot open bench output file: " + *options_.bench_out);
    out << "{\n  \"tool\": \"" << options_.tool << "\",\n  \"wall_seconds\": " << wall
        << ",\n  \"values\": {";
    for (std::size_t i = 0; i < bench_values_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    \"" << bench_values_[i].first
          << "\": " << bench_values_[i].second;
    }
    out << (bench_values_.empty() ? "" : "\n  ") << "}\n}\n";
    FCU_CHECK(out.good(), "failed writing bench summary to " + *options_.bench_out);
  }
}

ObsSession::~ObsSession() {
  try {
    flush();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs: %s\n", e.what());
  }
}

}  // namespace fusecu
