#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <ctime>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

/// \file metrics.hpp
/// Process-wide metrics substrate: counters, gauges and mergeable
/// histograms, collected in a named registry and exported as JSON or CSV.
///
/// The paper's claims are quantitative (memory accesses saved per NRA
/// regime, optimizer wall-time orders of magnitude below search), so every
/// layer of the library — the principle constructors, the fusion planners,
/// the searching baselines and the simulators — reports what it did through
/// this registry instead of ad-hoc printf timing.  Tools opt in via
/// `--metrics-out` (see obs/obs_session.hpp); instrumentation left enabled
/// costs one relaxed atomic or one short critical section per event.
///
/// Histograms use fixed geometric buckets (8 per octave, ~9% relative
/// resolution) so two histograms — e.g. from sharded evaluation runs — merge
/// exactly bucket-by-bucket while min/max/sum/count stay exact.

namespace fusecu {

/// Monotonically increasing event count.  Thread-safe.
class Counter {
 public:
  void add(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value.  Thread-safe.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Summary statistics of a histogram at one point in time.
struct HistogramSnapshot {
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;  ///< p99.9 — the tail the serving SLO cares about

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Geometric-bucket histogram with exact count/sum/min/max and quantile
/// estimates accurate to one bucket (~9% relative).  Thread-safe; mergeable.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;    ///< buckets per power of two
  static constexpr int kMinExponent = -64; ///< smallest tracked octave (2^-64)
  static constexpr int kMaxExponent = 64;  ///< largest tracked octave (2^64)
  /// +1 underflow bucket for values <= 2^kMinExponent (incl. zero/negative).
  static constexpr int kNumBuckets = (kMaxExponent - kMinExponent) * kSubBuckets + 1;

  void observe(double v);
  void merge(const Histogram& other);

  std::int64_t count() const;
  HistogramSnapshot snapshot() const;
  /// Quantile estimate for q in [0, 1]; 0 when empty.
  double quantile(double q) const;

 private:
  static int bucket_index(double v);
  static double bucket_upper_bound(int index);
  double quantile_locked(double q) const;

  mutable std::mutex mu_;
  std::array<std::int64_t, kNumBuckets> buckets_{};
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metric store.  `global()` is the process-wide instance every
/// instrumented component reports into; tests can build private instances.
/// Metric objects live as long as the registry and are returned by
/// reference, so hot paths can cache the pointer.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Drop every metric (between test cases / evaluation phases).  Bumps
  /// clear_epoch() so pointer caches (the flight recorder's signal-path
  /// index) can detect they went stale.
  void clear();

  /// Monotonic count of clear() calls; metric references obtained before
  /// the epoch changed must not be dereferenced.
  std::uint64_t clear_epoch() const { return clear_epoch_.load(std::memory_order_acquire); }

  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// One JSON object: {"exported_at":"RFC3339","counters":{...},
  /// "gauges":{...},"histograms":{...}}.  \p exported_at overrides the
  /// wall-clock stamp (tests pin it for byte-stable artifacts).
  void write_json(std::ostream& os, std::optional<std::time_t> exported_at = std::nullopt) const;
  /// Flat CSV: kind,name,count,sum,min,max,mean,p50,p95,p99,p99.9 (value in
  /// `sum` for counters/gauges), preceded by a "# exported_at <RFC3339>"
  /// header line.
  void write_csv(std::ostream& os, std::optional<std::time_t> exported_at = std::nullopt) const;

 private:
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> clear_epoch_{0};
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fusecu
